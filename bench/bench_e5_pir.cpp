// E5 — PIR performance vs database size (DESIGN.md §3). Paper anchor (§4,
// RC3): PIR is the tool for private access to public data, but "more
// research needs to be conducted to efficiently support updates" — server
// work is linear in the database size for both schemes.
//
// Expected shape: XOR-PIR per-query time linear in n with tiny constants;
// Paillier cPIR linear in n with ~1000x larger constants (one modular
// exponentiation per record); the private-update append is cheap for both.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "crypto/paillier.h"
#include "pir/cpir.h"
#include "pir/xor_pir.h"

namespace {

using namespace prever;

std::vector<Bytes> Records(size_t n, size_t size) {
  std::vector<Bytes> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Bytes r = ToBytes("rec" + std::to_string(i));
    r.resize(size, static_cast<uint8_t>(i));
    records.push_back(std::move(r));
  }
  return records;
}

void BM_XorPirFetch(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  constexpr size_t kRecordSize = 64;
  auto records = Records(n, kRecordSize);
  pir::XorPirServer s0(records, kRecordSize), s1(records, kRecordSize);
  pir::XorPirClient client(1);
  size_t index = 0;
  obs::Histogram* op = benchutil::OpHistogram("e5", "xor_fetch");
  for (auto _ : state) {
    PREVER_TRACE_SPAN(op);
    auto rec = client.Fetch(index++ % n, s0, s1);
    benchmark::DoNotOptimize(rec);
  }
  state.counters["records"] = static_cast<double>(n);
  state.counters["queries/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_XorPirFetch)
    ->Arg(1 << 8)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16)
    ->Unit(benchmark::kMicrosecond);

void BM_XorPirAppend(benchmark::State& state) {
  constexpr size_t kRecordSize = 64;
  pir::XorPirServer s0(Records(1 << 10, kRecordSize), kRecordSize);
  uint64_t i = 0;
  for (auto _ : state) {
    Status s = s0.Append(ToBytes("new" + std::to_string(i++)));
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_XorPirAppend)->Unit(benchmark::kMicrosecond);

struct CpirFixture {
  CpirFixture() : drbg(uint64_t{3}) {
    key = crypto::PaillierGenerateKey(256, drbg).value();
  }
  crypto::Drbg drbg;
  crypto::PaillierKeyPair key;
};

CpirFixture& Cpir() {
  static CpirFixture* fixture = new CpirFixture();
  return *fixture;
}

void BM_PaillierCpirFetch(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  constexpr size_t kRecordSize = 16;
  pir::PaillierPirServer server(Records(n, kRecordSize), kRecordSize,
                                Cpir().key.pub);
  pir::PaillierPirClient client(Cpir().key, 5);
  size_t index = 0;
  obs::Histogram* op = benchutil::OpHistogram("e5", "cpir_fetch");
  for (auto _ : state) {
    PREVER_TRACE_SPAN(op);
    auto rec = client.Fetch(index++ % n, server);
    benchmark::DoNotOptimize(rec);
  }
  state.counters["records"] = static_cast<double>(n);
}
BENCHMARK(BM_PaillierCpirFetch)->Arg(1 << 4)->Arg(1 << 6)->Arg(1 << 8)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_PaillierCpirServerOnly(benchmark::State& state) {
  // Isolates server-side homomorphic work from client query generation.
  size_t n = static_cast<size_t>(state.range(0));
  constexpr size_t kRecordSize = 16;
  pir::PaillierPirServer server(Records(n, kRecordSize), kRecordSize,
                                Cpir().key.pub);
  pir::PaillierPirClient client(Cpir().key, 7);
  auto query = client.BuildQuery(n / 2, n).value();
  for (auto _ : state) {
    auto answer = server.Answer(query);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["records"] = static_cast<double>(n);
}
BENCHMARK(BM_PaillierCpirServerOnly)->Arg(1 << 4)->Arg(1 << 6)->Arg(1 << 8)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  prever::benchutil::ParseTraceFlag(&argc, argv);
  std::printf(
      "E5: PIR read/update cost vs database size.\nExpected shape: both "
      "schemes linear in n; XOR-PIR ~ns/record, Paillier cPIR ~ms/record "
      "(modular exponentiation each); appends are O(1).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  prever::benchutil::EmitMetricsJson("e5");
  prever::benchutil::MaybeWriteTrace("e5");
  return 0;
}
