// E6 — ledger integrity costs (DESIGN.md §3). Paper anchor (§4, RC4):
// "enable any participant to verify the integrity of stored data" via
// append-only authenticated data structures.
//
// Expected shape: appends amortize O(1) hash work; inclusion/consistency
// proof generation and verification grow logarithmically with ledger size;
// a full audit is linear; tamper detection always fires.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/auditor.h"
#include "ledger/ledger_db.h"

namespace {

using namespace prever;

ledger::LedgerDb BuildLedger(size_t n) {
  ledger::LedgerDb led;
  for (size_t i = 0; i < n; ++i) {
    led.Append(ToBytes("entry-" + std::to_string(i)), i);
  }
  return led;
}

void BM_Append(benchmark::State& state) {
  ledger::LedgerDb led;
  uint64_t i = 0;
  obs::Histogram* op = benchutil::OpHistogram("e6", "append");
  for (auto _ : state) {
    PREVER_TRACE_SPAN(op);
    benchmark::DoNotOptimize(led.Append(ToBytes("e" + std::to_string(i)), i));
    ++i;
  }
  state.counters["appends/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Append)->Unit(benchmark::kMicrosecond);

void BM_Digest(benchmark::State& state) {
  auto led = BuildLedger(static_cast<size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(led.Digest());
  state.counters["entries"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Digest)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16)
    ->Unit(benchmark::kMicrosecond);

void BM_InclusionProve(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto led = BuildLedger(n);
  size_t i = 0;
  obs::Histogram* op = benchutil::OpHistogram("e6", "inclusion_prove");
  for (auto _ : state) {
    PREVER_TRACE_SPAN(op);
    auto proof = led.ProveInclusion(i++ % n, n);
    benchmark::DoNotOptimize(proof);
  }
  state.counters["entries"] = static_cast<double>(n);
}
BENCHMARK(BM_InclusionProve)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16)
    ->Unit(benchmark::kMicrosecond);

void BM_InclusionVerify(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto led = BuildLedger(n);
  auto digest = led.Digest();
  auto entry = led.GetEntry(n / 2).value();
  auto proof = led.ProveInclusion(n / 2, n).value();
  obs::Histogram* op = benchutil::OpHistogram("e6", "inclusion_verify");
  for (auto _ : state) {
    PREVER_TRACE_SPAN(op);
    bool ok = ledger::LedgerDb::VerifyInclusion(entry, proof, digest);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["proof_hashes"] = static_cast<double>(proof.path.size());
}
BENCHMARK(BM_InclusionVerify)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16)
    ->Unit(benchmark::kMicrosecond);

void BM_ConsistencyProveVerify(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto led = BuildLedger(n);
  auto old_digest = led.DigestAt(n / 2).value();
  auto new_digest = led.Digest();
  for (auto _ : state) {
    auto proof = led.ProveConsistency(n / 2, n);
    bool ok = ledger::LedgerDb::VerifyConsistency(old_digest, new_digest,
                                                  *proof);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["entries"] = static_cast<double>(n);
}
BENCHMARK(BM_ConsistencyProveVerify)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16)
    ->Unit(benchmark::kMicrosecond);

void BM_FullAudit(benchmark::State& state) {
  auto led = BuildLedger(static_cast<size_t>(state.range(0)));
  obs::Histogram* op = benchutil::OpHistogram("e6", "full_audit");
  for (auto _ : state) {
    PREVER_TRACE_SPAN(op);
    Status s = core::IntegrityAuditor::AuditLedger(led);
    benchmark::DoNotOptimize(s);
  }
  state.counters["entries"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_FullAudit)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

void BM_TamperDetection(benchmark::State& state) {
  // Tamper with a random entry, audit, repair; detection must always fire.
  size_t n = 1 << 12;
  auto led = BuildLedger(n);
  uint64_t detected = 0, trials = 0;
  uint64_t i = 0;
  for (auto _ : state) {
    uint64_t victim = (i * 2654435761u) % n;
    Bytes original = led.GetEntry(victim)->payload;
    (void)led.TamperWithEntryForTest(victim, ToBytes("evil"));
    if (!core::IntegrityAuditor::AuditLedger(led).ok()) ++detected;
    (void)led.TamperWithEntryForTest(victim, original);
    ++trials;
    ++i;
  }
  state.counters["detection_rate"] =
      trials == 0 ? 0 : static_cast<double>(detected) / trials;
}
BENCHMARK(BM_TamperDetection)->Unit(benchmark::kMillisecond)->Iterations(20);

}  // namespace

int main(int argc, char** argv) {
  prever::benchutil::ParseTraceFlag(&argc, argv);
  std::printf(
      "E6: verifiable-ledger costs vs size.\nExpected shape: appends O(1) "
      "amortized; digests O(log n) from the incremental level cache; "
      "inclusion/consistency proof generation and verification O(log n); "
      "full audit O(n); detection_rate == 1.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  prever::benchutil::EmitMetricsJson("e6");
  prever::benchutil::MaybeWriteTrace("e6");
  return 0;
}
