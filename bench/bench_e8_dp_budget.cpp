// E8 — differential-privacy budget exhaustion under update streams
// (DESIGN.md §3). Paper anchor (§4, RC1): "naive uses of differential
// privacy lead to rapidly exhausting the limited privacy budget, especially
// when updates come at a high rate. This results either in an impossibility
// to support additional updates or in an uncontrolled increase of the noise
// magnitude."
//
// The bench replays an update stream into a DP running aggregate under both
// exhaustion policies and reports (a) how many updates survive before
// refusal and (b) how fast the noise scale blows up under degradation —
// versus the crypto path (RC1), whose cost is constant per update and never
// "runs out".

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/dp_index.h"
#include "crypto/paillier.h"

namespace {

using namespace prever;

void BM_DpRefusePolicy(benchmark::State& state) {
  // Budget epsilon_total = 1, per-release epsilon from the arg (x1000).
  double eps_per = static_cast<double>(state.range(0)) / 1000.0;
  uint64_t served = 0, refused = 0;
  // One span per 1000-update stream replay: per-update spans would dwarf
  // the ~ns DP bookkeeping they measure.
  obs::Histogram* op = benchutil::OpHistogram("e8", "dp_refuse_stream");
  for (auto _ : state) {
    PREVER_TRACE_SPAN(op);
    core::DpAggregateIndex index(1.0, eps_per, 1.0,
                                 core::DpExhaustionPolicy::kRefuse,
                                 state.range(0));
    for (int i = 0; i < 1000; ++i) {
      if (index.Update(1).ok()) {
        ++served;
      } else {
        ++refused;
      }
    }
  }
  state.counters["eps_per_release"] = eps_per;
  state.counters["served_frac"] =
      static_cast<double>(served) / static_cast<double>(served + refused);
}
BENCHMARK(BM_DpRefusePolicy)->Arg(100)->Arg(10)->Arg(1)
    ->Unit(benchmark::kMicrosecond)->Iterations(10);

void BM_DpDegradePolicy(benchmark::State& state) {
  int64_t updates = state.range(0);
  double final_scale = 0, first_scale = 0, max_abs_error = 0;
  obs::Histogram* op = benchutil::OpHistogram("e8", "dp_degrade_stream");
  for (auto _ : state) {
    PREVER_TRACE_SPAN(op);
    core::DpAggregateIndex index(1.0, 0.1, 1.0,
                                 core::DpExhaustionPolicy::kDegrade, 7);
    for (int64_t i = 0; i < updates; ++i) {
      auto release = index.Update(1);
      if (!release.ok()) break;
      if (i == 0) first_scale = release->noise_scale;
      final_scale = release->noise_scale;
      max_abs_error = std::max(
          max_abs_error, std::abs(release->noisy_value - index.true_value()));
    }
  }
  state.counters["updates"] = static_cast<double>(updates);
  state.counters["first_noise_scale"] = first_scale;
  state.counters["final_noise_scale"] = final_scale;
  state.counters["max_abs_error"] = max_abs_error;
}
BENCHMARK(BM_DpDegradePolicy)->Arg(10)->Arg(40)->Arg(160)
    ->Unit(benchmark::kMicrosecond)->Iterations(5);

void BM_CryptoPathPerUpdate(benchmark::State& state) {
  // The RC1 alternative: constant per-update cost, no budget to exhaust.
  crypto::Drbg drbg(uint64_t{11});
  auto key = crypto::PaillierGenerateKey(256, drbg).value();
  auto acc = crypto::PaillierEncrypt(key.pub, crypto::BigInt(0), drbg).value();
  obs::Histogram* op = benchutil::OpHistogram("e8", "crypto_update");
  for (auto _ : state) {
    PREVER_TRACE_SPAN(op);
    auto ct = crypto::PaillierEncrypt(key.pub, crypto::BigInt(1), drbg);
    acc = crypto::PaillierAdd(key.pub, acc, *ct);
    benchmark::DoNotOptimize(acc);
  }
  state.counters["budget_consumed"] = 0;  // The point of the comparison.
}
BENCHMARK(BM_CryptoPathPerUpdate)->Unit(benchmark::kMicrosecond)
    ->Iterations(200);

}  // namespace

int main(int argc, char** argv) {
  prever::benchutil::ParseTraceFlag(&argc, argv);
  std::printf(
      "E8: DP-index ablation under sustained updates.\nExpected shape: "
      "refuse-policy serves only eps_total/eps_per updates then stops "
      "(served_frac << 1 at high rate); degrade-policy noise scale grows "
      "geometrically (final >> first, max_abs_error explodes); the crypto "
      "path pays a constant ~ms per update forever with zero budget.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  prever::benchutil::EmitMetricsJson("e8");
  prever::benchutil::MaybeWriteTrace("e8");
  return 0;
}
