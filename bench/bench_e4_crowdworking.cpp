// E4 — end-to-end federated crowdworking (DESIGN.md §3). Paper anchor:
// §5's Separ instantiation and §2.3's FLSA scenario. Replays a synthetic
// multi-platform task trace through both RC2 engines, sweeping the number
// of platforms.
//
// Expected shape: token-engine per-task cost is dominated by RSA ops and
// scales with task hours (tokens burned), independent of platform count;
// the MPC engine's cost grows with platform count (more parties per
// comparison) but needs no trusted authority.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/prever.h"
#include "workload/crowdworking.h"

namespace {

using namespace prever;

std::vector<workload::TaskEvent> Trace(size_t platforms, size_t workers) {
  workload::CrowdworkingConfig config;
  config.num_platforms = platforms;
  config.num_workers = workers;
  config.num_weeks = 1;
  config.seed = 99;
  return workload::CrowdworkingWorkload(config).Generate();
}

std::vector<std::unique_ptr<core::FederatedPlatform>> MakePlatforms(size_t n) {
  std::vector<std::unique_ptr<core::FederatedPlatform>> platforms;
  for (size_t i = 0; i < n; ++i) {
    auto p = std::make_unique<core::FederatedPlatform>();
    p->id = "p" + std::to_string(i);
    (void)p->db.CreateTable(workload::CrowdworkingWorkload::kTableName,
                            workload::CrowdworkingWorkload::WorklogSchema());
    platforms.push_back(std::move(p));
  }
  return platforms;
}

void BM_MpcTrace(benchmark::State& state) {
  size_t num_platforms = static_cast<size_t>(state.range(0));
  auto trace = Trace(num_platforms, 10);
  for (auto _ : state) {
    state.PauseTiming();
    auto platforms = MakePlatforms(num_platforms);
    std::vector<core::FederatedPlatform*> raw;
    for (auto& p : platforms) raw.push_back(p.get());
    constraint::ConstraintCatalog regulations;
    (void)regulations.Add("flsa", constraint::ConstraintScope::kRegulation,
                          constraint::ConstraintVisibility::kPublic,
                          "SUM(worklog.hours WHERE worker = update.worker "
                          "WINDOW 7d) + update.hours <= 40");
    core::CentralizedOrdering ordering;
    core::FederatedMpcEngine engine(raw, &regulations, &ordering, 31);
    state.ResumeTiming();

    uint64_t idx = 0;
    for (const auto& e : trace) {
      (void)engine.SubmitVia(e.platform % num_platforms, e.ToUpdate(idx++));
    }
    state.counters["accepted"] = static_cast<double>(engine.stats().accepted);
    state.counters["capped"] =
        static_cast<double>(engine.stats().rejected_constraint);
  }
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(trace.size()) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MpcTrace)->Arg(2)->Arg(3)->Arg(5)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_TokenTrace(benchmark::State& state) {
  size_t num_platforms = static_cast<size_t>(state.range(0));
  auto trace = Trace(num_platforms, 10);
  for (auto _ : state) {
    state.PauseTiming();
    auto platforms = MakePlatforms(num_platforms);
    std::vector<core::FederatedPlatform*> raw;
    for (auto& p : platforms) raw.push_back(p.get());
    token::TokenAuthority authority(512, 40, kWeek, 41);
    core::CentralizedOrdering ordering;
    core::FederatedTokenEngine engine(raw, &authority, &ordering, "hours");
    state.ResumeTiming();

    uint64_t idx = 0;
    for (const auto& e : trace) {
      (void)engine.SubmitVia(e.platform % num_platforms, e.ToUpdate(idx++));
    }
    state.counters["accepted"] = static_cast<double>(engine.stats().accepted);
    state.counters["capped"] =
        static_cast<double>(engine.stats().rejected_constraint);
    state.counters["tokens"] = static_cast<double>(engine.tokens_spent());
  }
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(trace.size()) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TokenTrace)->Arg(2)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

// The classical non-private baseline the paper cites (§4 RC2, ref [19]):
// the Demarcation Protocol admits most updates with ZERO communication by
// splitting the bound into local limits — but every transfer negotiation
// reveals consumption figures to peers.
void BM_DemarcationTrace(benchmark::State& state) {
  size_t num_platforms = static_cast<size_t>(state.range(0));
  auto trace = Trace(num_platforms, 10);
  for (auto _ : state) {
    state.PauseTiming();
    auto platforms = MakePlatforms(num_platforms);
    std::vector<core::FederatedPlatform*> raw;
    for (auto& p : platforms) raw.push_back(p.get());
    constraint::ConstraintCatalog regulations;
    (void)regulations.Add("flsa", constraint::ConstraintScope::kRegulation,
                          constraint::ConstraintVisibility::kPublic,
                          "SUM(worklog.hours WHERE worker = update.worker "
                          "WINDOW 7d) + update.hours <= 40");
    core::CentralizedOrdering ordering;
    core::DemarcationEngine engine(raw, &regulations, &ordering);
    state.ResumeTiming();

    uint64_t idx = 0;
    for (const auto& e : trace) {
      (void)engine.SubmitVia(e.platform % num_platforms, e.ToUpdate(idx++));
    }
    state.counters["accepted"] = static_cast<double>(engine.stats().accepted);
    state.counters["capped"] =
        static_cast<double>(engine.stats().rejected_constraint);
    state.counters["zero_comm_frac"] =
        engine.stats().submitted == 0
            ? 0
            : static_cast<double>(engine.local_admissions()) /
                  static_cast<double>(engine.stats().submitted);
    state.counters["transfers"] = static_cast<double>(engine.transfers());
  }
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(trace.size()) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DemarcationTrace)->Arg(2)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

// Double-spend audit cost: rebuilding a platform's spent-set from the
// shared ledger as it grows (what a platform pays on (re)join).
void BM_SpentLedgerSync(benchmark::State& state) {
  int64_t spent = state.range(0);
  token::TokenAuthority authority(512, 1u << 20, kWeek, 43);
  ledger::LedgerDb ledger;
  token::TokenVerifier writer(authority.public_key(), &ledger);
  token::TokenWallet wallet(authority.public_key(), 47);
  (void)wallet.Withdraw(authority, "w", static_cast<size_t>(spent), 0);
  for (int64_t i = 0; i < spent; ++i) {
    auto t = wallet.Take();
    (void)writer.Spend(*t, 0);
  }
  for (auto _ : state) {
    token::TokenVerifier joiner(authority.public_key(), &ledger);
    Status s = joiner.SyncFromLedger();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SpentLedgerSync)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace

int main(int argc, char** argv) {
  prever::benchutil::ParseTraceFlag(&argc, argv);
  std::printf(
      "E4: multi-platform crowdworking trace (FLSA 40h/week) through both "
      "RC2 engines, sweeping platform count.\nExpected shape: MPC cost "
      "grows with #platforms; token cost tracks hours (tokens) burned, not "
      "#platforms; both enforce the same cap.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  prever::benchutil::EmitMetricsJson("e4");
  prever::benchutil::MaybeWriteTrace("e4");
  return 0;
}
