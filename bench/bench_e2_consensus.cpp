// E2 — consensus comparison (DESIGN.md §3). Paper anchor (§6): "the
// distributed solutions should be compared in terms of throughput and
// latency with standard distributed fault-tolerant protocols, e.g., Paxos
// [46] and PBFT [26]."
//
// Each benchmark commits a stream of update payloads through an ordering
// service and reports BOTH host-CPU cost and the simulated-network commit
// latency/throughput (the quantity the paper cares about). Expected shape:
// centralized ledger (no consensus) fastest; Raft (Paxos-family, 1
// round-trip to a majority) next; PBFT (3 phases, O(n^2) messages) slowest
// and degrading faster as replicas grow.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/prever.h"

namespace {

using namespace prever;

Bytes Payload(uint64_t i) {
  return ToBytes("update-" + std::to_string(i) + "-padding-to-64-bytes-" +
                 std::string(20, 'x'));
}

void BM_CentralizedLedger(benchmark::State& state) {
  core::CentralizedOrdering ordering;
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ordering.Append(Payload(i), i));
    ++i;
  }
  state.counters["commits/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CentralizedLedger)->Unit(benchmark::kMicrosecond);

void BM_Raft(benchmark::State& state) {
  size_t replicas = static_cast<size_t>(state.range(0));
  core::RaftOrdering ordering(replicas, net::SimNetConfig{});
  SimTime start = ordering.network().Now();
  uint64_t i = 0;
  for (auto _ : state) {
    Status s = ordering.Append(Payload(i), i);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    ++i;
  }
  SimTime elapsed = ordering.network().Now() - start;
  if (i > 0 && elapsed > 0) {
    state.counters["sim_latency_ms"] =
        static_cast<double>(elapsed) / static_cast<double>(i) / kMillisecond;
    state.counters["sim_commits_per_s"] =
        static_cast<double>(i) * kSecond / static_cast<double>(elapsed);
  }
  state.counters["net_msgs"] =
      static_cast<double>(ordering.network().messages_sent());
}
BENCHMARK(BM_Raft)->Arg(3)->Arg(5)->Arg(7)->Unit(benchmark::kMicrosecond)
    ->Iterations(200);

void BM_Pbft(benchmark::State& state) {
  size_t replicas = static_cast<size_t>(state.range(0));
  core::PbftOrdering ordering(replicas, net::SimNetConfig{});
  SimTime start = ordering.network().Now();
  uint64_t i = 0;
  for (auto _ : state) {
    Status s = ordering.Append(Payload(i), i);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    ++i;
  }
  SimTime elapsed = ordering.network().Now() - start;
  if (i > 0 && elapsed > 0) {
    state.counters["sim_latency_ms"] =
        static_cast<double>(elapsed) / static_cast<double>(i) / kMillisecond;
    state.counters["sim_commits_per_s"] =
        static_cast<double>(i) * kSecond / static_cast<double>(elapsed);
  }
  state.counters["net_msgs"] =
      static_cast<double>(ordering.network().messages_sent());
}
BENCHMARK(BM_Pbft)->Arg(4)->Arg(7)->Arg(10)->Arg(16)
    ->Unit(benchmark::kMicrosecond)->Iterations(200);

// Ablation: batching — one PBFT instance carries `batch` updates
// (StreamChain/FastFabric-style amortization of Fabric's overhead, §4).
void BM_PbftBatched(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  core::PbftOrdering ordering(4, net::SimNetConfig{});
  SimTime start = ordering.network().Now();
  uint64_t total = 0;
  for (auto _ : state) {
    std::vector<Bytes> payloads;
    payloads.reserve(batch);
    for (size_t j = 0; j < batch; ++j) payloads.push_back(Payload(total + j));
    Status s = ordering.AppendBatch(payloads, total);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    total += batch;
  }
  SimTime elapsed = ordering.network().Now() - start;
  if (total > 0 && elapsed > 0) {
    state.counters["sim_commits_per_s"] =
        static_cast<double>(total) * kSecond / static_cast<double>(elapsed);
  }
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_PbftBatched)->Arg(1)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMicrosecond)->Iterations(50);

// Ablation: sharding — k independent PBFT clusters progress in parallel
// (SharPer/Qanaat, §4 RC4); aggregate simulated throughput scales with k
// for single-shard updates.
void BM_ShardedPbft(benchmark::State& state) {
  size_t shards = static_cast<size_t>(state.range(0));
  core::ShardedPbftOrdering ordering(shards, 4, net::SimNetConfig{});
  uint64_t i = 0;
  for (auto _ : state) {
    Status s = ordering.AppendRouted("key" + std::to_string(i), Payload(i), i);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    ++i;
  }
  SimTime elapsed = ordering.MaxShardTime();
  if (i > 0 && elapsed > 0) {
    state.counters["agg_sim_commits_per_s"] =
        static_cast<double>(i) * kSecond / static_cast<double>(elapsed);
  }
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ShardedPbft)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond)->Iterations(200);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "E2: commit latency/throughput — centralized ledger vs Raft "
      "(Paxos-family CFT) vs PBFT (BFT), sweeping replica count.\n"
      "sim_latency_ms / sim_commits_per_s are measured on the simulated "
      "network (1-5 ms one-way links).\nExpected shape: centralized < Raft "
      "< PBFT latency; PBFT message count grows O(n^2).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
