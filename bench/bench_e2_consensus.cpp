// E2 — consensus comparison (DESIGN.md §3). Paper anchor (§6): "the
// distributed solutions should be compared in terms of throughput and
// latency with standard distributed fault-tolerant protocols, e.g., Paxos
// [46] and PBFT [26]."
//
// Each benchmark commits a stream of update payloads through an ordering
// service and reports BOTH host-CPU cost and the simulated-network commit
// latency/throughput (the quantity the paper cares about). Expected shape:
// centralized ledger (no consensus) fastest; Raft (Paxos-family, 1
// round-trip to a majority) next; PBFT (3 phases, O(n^2) messages) slowest
// and degrading faster as replicas grow.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_common.h"
#include "core/prever.h"
#include "testing/crash_recovery.h"
#include "workload/ycsb.h"

namespace {

using namespace prever;

Bytes Payload(uint64_t i) {
  return ToBytes("update-" + std::to_string(i) + "-padding-to-64-bytes-" +
                 std::string(20, 'x'));
}

// The ordering layer records sim-time commit latency into a process-lifetime
// registry histogram; benches isolate their own samples by snapshot deltas.
obs::Histogram* CommitLatency(const char* proto) {
  return obs::Registry::Default().GetHistogram(
      "prever_consensus_commit_latency_us", {{"proto", proto}});
}

// Tail-aware latency reporting: per-commit percentiles in milliseconds
// (a single mean hides election stalls and view-change hiccups entirely).
void ReportLatencyPercentiles(benchmark::State& state,
                              const obs::HistogramSnapshot& delta) {
  if (delta.count == 0) return;
  state.counters["sim_latency_p50_ms"] =
      static_cast<double>(delta.Percentile(50)) / kMillisecond;
  state.counters["sim_latency_p90_ms"] =
      static_cast<double>(delta.Percentile(90)) / kMillisecond;
  state.counters["sim_latency_p99_ms"] =
      static_cast<double>(delta.Percentile(99)) / kMillisecond;
  state.counters["sim_latency_p999_ms"] =
      static_cast<double>(delta.Percentile(99.9)) / kMillisecond;
}

void BM_CentralizedLedger(benchmark::State& state) {
  core::CentralizedOrdering ordering;
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ordering.Append(Payload(i), i));
    ++i;
  }
  state.counters["commits/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CentralizedLedger)->Unit(benchmark::kMicrosecond);

void BM_Raft(benchmark::State& state) {
  size_t replicas = static_cast<size_t>(state.range(0));
  core::RaftOrdering ordering(replicas, net::SimNetConfig{});
  obs::HistogramSnapshot before = CommitLatency("raft")->snapshot();
  SimTime start = ordering.network().Now();
  uint64_t i = 0;
  for (auto _ : state) {
    Status s = ordering.Append(Payload(i), i);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    ++i;
  }
  SimTime elapsed = ordering.network().Now() - start;
  if (i > 0 && elapsed > 0) {
    state.counters["sim_commits_per_s"] =
        static_cast<double>(i) * kSecond / static_cast<double>(elapsed);
  }
  ReportLatencyPercentiles(state, CommitLatency("raft")->snapshot().Delta(before));
  state.counters["net_msgs"] =
      static_cast<double>(ordering.network().messages_sent());
}
BENCHMARK(BM_Raft)->Arg(3)->Arg(5)->Arg(7)->Unit(benchmark::kMicrosecond)
    ->Iterations(200);

void BM_Pbft(benchmark::State& state) {
  size_t replicas = static_cast<size_t>(state.range(0));
  core::PbftOrdering ordering(replicas, net::SimNetConfig{});
  obs::HistogramSnapshot before = CommitLatency("pbft")->snapshot();
  SimTime start = ordering.network().Now();
  uint64_t i = 0;
  for (auto _ : state) {
    Status s = ordering.Append(Payload(i), i);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    ++i;
  }
  SimTime elapsed = ordering.network().Now() - start;
  if (i > 0 && elapsed > 0) {
    state.counters["sim_commits_per_s"] =
        static_cast<double>(i) * kSecond / static_cast<double>(elapsed);
  }
  ReportLatencyPercentiles(state, CommitLatency("pbft")->snapshot().Delta(before));
  state.counters["net_msgs"] =
      static_cast<double>(ordering.network().messages_sent());
}
BENCHMARK(BM_Pbft)->Arg(4)->Arg(7)->Arg(10)->Arg(16)
    ->Unit(benchmark::kMicrosecond)->Iterations(200);

// Ablation: batching — one PBFT instance carries `batch` updates
// (StreamChain/FastFabric-style amortization of Fabric's overhead, §4).
void BM_PbftBatched(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  core::PbftOrdering ordering(4, net::SimNetConfig{});
  SimTime start = ordering.network().Now();
  uint64_t total = 0;
  for (auto _ : state) {
    std::vector<Bytes> payloads;
    payloads.reserve(batch);
    for (size_t j = 0; j < batch; ++j) payloads.push_back(Payload(total + j));
    Status s = ordering.AppendBatch(payloads, total);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    total += batch;
  }
  SimTime elapsed = ordering.network().Now() - start;
  if (total > 0 && elapsed > 0) {
    state.counters["sim_commits_per_s"] =
        static_cast<double>(total) * kSecond / static_cast<double>(elapsed);
  }
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_PbftBatched)->Arg(1)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMicrosecond)->Iterations(50);

// Pipelined ordering: SubmitAsync bursts through the adaptive batcher with
// up to `window` consensus instances in flight, one Flush per burst. Sweeps
// batch x window x replicas; compare sim_commits_per_s against the
// stop-and-wait BM_Raft/BM_Pbft rows above (same payloads, same network).
constexpr size_t kPipelineBurst = 512;

template <typename Ordering>
void RunPipelinedBurst(benchmark::State& state, Ordering& ordering,
                       const char* proto) {
  obs::HistogramSnapshot before = CommitLatency(proto)->snapshot();
  SimTime start = ordering.network().Now();
  uint64_t total = 0;
  for (auto _ : state) {
    for (size_t j = 0; j < kPipelineBurst; ++j) {
      auto ticket = ordering.SubmitAsync(Payload(total + j), total + j);
      if (!ticket.ok()) {
        state.SkipWithError(ticket.status().ToString().c_str());
        return;
      }
    }
    Status s = ordering.Flush();
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    total += kPipelineBurst;
  }
  SimTime elapsed = ordering.network().Now() - start;
  if (total > 0 && elapsed > 0) {
    state.counters["sim_commits_per_s"] =
        static_cast<double>(total) * kSecond / static_cast<double>(elapsed);
  }
  ReportLatencyPercentiles(state, CommitLatency(proto)->snapshot().Delta(before));
  state.counters["batch"] = static_cast<double>(state.range(0));
  state.counters["window"] = static_cast<double>(state.range(1));
  state.counters["replicas"] = static_cast<double>(state.range(2));
  state.counters["net_msgs"] =
      static_cast<double>(ordering.network().messages_sent());
}

void BM_RaftPipelined(benchmark::State& state) {
  core::OrderingPipelineConfig pipeline;
  pipeline.max_batch = static_cast<size_t>(state.range(0));
  pipeline.max_inflight = static_cast<size_t>(state.range(1));
  core::RaftOrdering ordering(static_cast<size_t>(state.range(2)),
                              net::SimNetConfig{}, pipeline);
  RunPipelinedBurst(state, ordering, "raft");
}
BENCHMARK(BM_RaftPipelined)
    // Batch sweep at window 4, 5 replicas.
    ->Args({1, 4, 5})->Args({16, 4, 5})->Args({64, 4, 5})->Args({256, 4, 5})
    // Window sweep at batch 64.
    ->Args({64, 1, 5})->Args({64, 2, 5})->Args({64, 8, 5})
    // Replica sweep at batch 64, window 4.
    ->Args({64, 4, 3})->Args({64, 4, 7})
    ->Unit(benchmark::kMillisecond)->Iterations(4);

void BM_PbftPipelined(benchmark::State& state) {
  core::OrderingPipelineConfig pipeline;
  pipeline.max_batch = static_cast<size_t>(state.range(0));
  pipeline.max_inflight = static_cast<size_t>(state.range(1));
  core::PbftOrdering ordering(static_cast<size_t>(state.range(2)),
                              net::SimNetConfig{}, "pbft", pipeline);
  RunPipelinedBurst(state, ordering, "pbft");
}
BENCHMARK(BM_PbftPipelined)
    ->Args({1, 4, 4})->Args({16, 4, 4})->Args({64, 4, 4})->Args({256, 4, 4})
    ->Args({64, 1, 4})->Args({64, 2, 4})->Args({64, 8, 4})
    ->Args({64, 4, 7})->Args({64, 4, 10})
    ->Unit(benchmark::kMillisecond)->Iterations(4);

// Ablation: sharding — k independent PBFT clusters progress in parallel
// (SharPer/Qanaat, §4 RC4); aggregate simulated throughput scales with k
// for single-shard updates.
void BM_ShardedPbft(benchmark::State& state) {
  size_t shards = static_cast<size_t>(state.range(0));
  core::ShardedPbftOrdering ordering(shards, 4, net::SimNetConfig{});
  obs::HistogramSnapshot before = CommitLatency("pbft-sharded")->snapshot();
  uint64_t i = 0;
  for (auto _ : state) {
    Status s = ordering.AppendRouted("key" + std::to_string(i), Payload(i), i);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    ++i;
  }
  SimTime elapsed = ordering.MaxShardTime();
  if (i > 0 && elapsed > 0) {
    state.counters["agg_sim_commits_per_s"] =
        static_cast<double>(i) * kSecond / static_cast<double>(elapsed);
  }
  ReportLatencyPercentiles(
      state, CommitLatency("pbft-sharded")->snapshot().Delta(before));
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ShardedPbft)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond)->Iterations(200);

// End-to-end crash recovery (src/testing/crash_recovery.h): each iteration
// commits a payload stream through replicated Raft while seed-chosen
// replicas are killed at seed-chosen crash points — including mid-WAL-append
// and mid-checkpoint-write — and restarted through the real recovery path
// (newest intact checkpoint + commit-journal suffix replay +
// RaftReplica::Recover). The case surfaces the recovery metrics recorded
// via src/obs/ as benchmark counters: recovery-time percentiles from the
// prever_recovery_time_us histogram, checkpoint saves, replayed journal
// entries, and snapshot state-transfer bytes. scripts/bench_smoke.sh
// asserts the counters are present and that recoveries actually happened.
void BM_CrashRecovery(benchmark::State& state) {
  simtest::CrashRecoveryOptions options;
  options.num_replicas = static_cast<size_t>(state.range(0));
  options.num_payloads = 48;
  options.checkpoint_every = 6;
  options.work_dir =
      (std::filesystem::temp_directory_path() / "prever_bench_crash_recovery")
          .string();
  obs::Registry& reg = obs::Registry::Default();
  obs::Histogram* rec_time = reg.GetHistogram("prever_recovery_time_us");
  obs::Counter* saves = reg.GetCounter("prever_recovery_checkpoint_saves");
  obs::Counter* replayed = reg.GetCounter("prever_recovery_replayed_entries");
  obs::Counter* transfer =
      reg.GetCounter("prever_recovery_state_transfer_bytes");
  obs::HistogramSnapshot before = rec_time->snapshot();
  uint64_t saves0 = saves->value();
  uint64_t replayed0 = replayed->value();
  uint64_t transfer0 = transfer->value();
  uint64_t seed = 1;
  uint64_t recoveries = 0;
  uint64_t committed = 0;
  for (auto _ : state) {
    simtest::CrashRecoveryReport report =
        simtest::RunRaftCrashRecoveryScenario(seed++, options);
    if (!report.ok) {
      state.SkipWithError(report.Summary("raft").c_str());
      break;
    }
    recoveries += report.recoveries;
    committed += report.committed;
  }
  obs::HistogramSnapshot delta = rec_time->snapshot().Delta(before);
  state.counters["recoveries"] = static_cast<double>(recoveries);
  state.counters["committed"] = static_cast<double>(committed);
  state.counters["recovery_p50_us"] =
      static_cast<double>(delta.Percentile(50));
  state.counters["recovery_p99_us"] =
      static_cast<double>(delta.Percentile(99));
  state.counters["checkpoint_saves"] =
      static_cast<double>(saves->value() - saves0);
  state.counters["journal_entries_replayed"] =
      static_cast<double>(replayed->value() - replayed0);
  state.counters["state_transfer_bytes"] =
      static_cast<double>(transfer->value() - transfer0);
}
BENCHMARK(BM_CrashRecovery)->Arg(4)->Unit(benchmark::kMillisecond)
    ->Iterations(6);

// End-to-end causal-tracing case: a plaintext engine over pipelined Raft
// ordering, so a `--trace=FILE` run captures every transaction's full path
// — submit -> verify -> ledger phase -> queue-wait -> batch seal ->
// consensus -> replica ledger/WAL append — as one connected span tree per
// payload (plus net_send/net_deliver/raft_append_entries instants on the
// consensus hops). scripts/bench_smoke.sh runs this case under --trace and
// validates the exported JSON; tools/trace_analyze turns a 1k-payload run
// into per-stage critical-path attribution.
void BM_TracedPlaintextRaft(benchmark::State& state) {
  workload::YcsbConfig config;
  config.record_count = 256;
  config.insert_proportion = 0.5;
  config.max_amount = 100;
  config.seed = 42;
  workload::YcsbWorkload ycsb(config);
  storage::Database db;
  db.CreateTable(workload::YcsbWorkload::kTableName,
                 workload::YcsbWorkload::TableSchema());
  auto* table = *db.GetMutableTable(workload::YcsbWorkload::kTableName);
  for (const storage::Row& row : ycsb.InitialLoad()) (void)table->Insert(row);
  constraint::ConstraintCatalog catalog;
  (void)catalog.Add("cap", constraint::ConstraintScope::kRegulation,
                    constraint::ConstraintVisibility::kPublic,
                    "SUM(usertable.amount WHERE owner = update.owner "
                    "WINDOW 1d) + update.amount <= 100000");
  core::RaftOrdering ordering(3, net::SimNetConfig{});
  core::PlaintextEngine engine(&db, &catalog, &ordering);
  uint64_t accepted = 0;
  for (auto _ : state) {
    if (engine.SubmitUpdate(ycsb.Next()).ok()) ++accepted;
  }
  state.counters["accepted"] = static_cast<double>(accepted);
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TracedPlaintextRaft)->Unit(benchmark::kMicrosecond)
    ->Iterations(1000);

// Zero-overhead guard for the causal tracer (contract in src/obs/trace.h):
// with the tracer runtime-disabled, a TraceSpan begin/end pair must cost a
// relaxed atomic load and a branch — single-digit nanoseconds. The
// ns_per_span counter makes the cost directly greppable;
// scripts/bench_smoke.sh asserts a loose ceiling on it and the unit test
// ObsTracing.DisabledSpanIsBranchCheap enforces the same contract relative
// to an empty loop.
void BM_TraceDisabledOverhead(benchmark::State& state) {
  obs::Tracer& tracer = obs::Tracer::Get();
  bool was_enabled = tracer.enabled();
  tracer.SetEnabled(false);
  auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    obs::TraceSpan span(obs::TraceStage::kSubmit);
    benchmark::DoNotOptimize(&span);
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  tracer.SetEnabled(was_enabled);
  if (state.iterations() > 0) {
    state.counters["ns_per_span"] =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()) /
        static_cast<double>(state.iterations());
  }
}
BENCHMARK(BM_TraceDisabledOverhead)->Iterations(1000000);

}  // namespace

int main(int argc, char** argv) {
  prever::benchutil::ParseTraceFlag(&argc, argv);
  std::printf(
      "E2: commit latency/throughput — centralized ledger vs Raft "
      "(Paxos-family CFT) vs PBFT (BFT), sweeping replica count.\n"
      "sim_latency_p{50,90,99,999}_ms / sim_commits_per_s are measured on "
      "the simulated network (1-5 ms one-way links).\nExpected shape: "
      "centralized < Raft < PBFT latency; PBFT message count grows O(n^2); "
      "tail percentiles expose election/view-change stalls the mean "
      "hides.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  prever::benchutil::EmitMetricsJson("e2");
  prever::benchutil::MaybeWriteTrace("e2");
  return 0;
}
