// E7 — scaling with update frequency and data size (DESIGN.md §3). Paper
// anchor (§6): solutions must "scale with respect to the frequency of
// updates as well as the size of the data."
//
// Two sweeps per engine:
//   * data size   — preloaded table size n grows; per-update verification
//     cost follows the aggregate-scan / homomorphic-aggregation cost;
//   * update rate — sustained-throughput runs (a fixed burst of updates),
//     reporting updates/second as the burst grows.
//
// Expected shape: plaintext per-update cost grows mildly with the scanned
// window; RC1 grows with the per-group ciphertext count; throughput of
// every private engine sits orders of magnitude below plaintext.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/prever.h"
#include "workload/tpc_lite.h"

namespace {

using namespace prever;

// ------------------------------- data-size sweep (plaintext, TPC-lite) ---

void BM_PlaintextDataSize(benchmark::State& state) {
  int64_t preload = state.range(0);
  workload::TpcLiteConfig config;
  config.num_customers = 50;
  config.credit_limit = 1u << 30;  // Effectively unbounded: measure cost.
  workload::TpcLiteWorkload gen(config);

  storage::Database db;
  (void)db.CreateTable(workload::TpcLiteWorkload::kTableName,
                       workload::TpcLiteWorkload::OrdersSchema());
  constraint::ConstraintCatalog catalog;
  (void)catalog.Add("credit", constraint::ConstraintScope::kRegulation,
                    constraint::ConstraintVisibility::kPublic,
                    gen.CreditConstraint());
  core::CentralizedOrdering ordering;
  core::PlaintextEngine engine(&db, &catalog, &ordering);
  // Preload bypasses the engine (bulk load, no per-row verification).
  auto* table = *db.GetMutableTable(workload::TpcLiteWorkload::kTableName);
  for (int64_t i = 0; i < preload; ++i) {
    (void)table->Insert(gen.NextOrder().mutation.row);
  }
  for (auto _ : state) {
    Status s = engine.SubmitUpdate(gen.NextOrder());
    benchmark::DoNotOptimize(s);
  }
  state.counters["preloaded_rows"] = static_cast<double>(preload);
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PlaintextDataSize)
    ->Arg(1000)->Arg(4000)->Arg(16000)->Arg(64000)
    ->Unit(benchmark::kMicrosecond);

// ------------------------------- data-size sweep (RC1, per-group rows) ---

void BM_EncryptedGroupHistory(benchmark::State& state) {
  int64_t history = state.range(0);
  core::DataOwner owner(256, crypto::PedersenParams::Test256(), 3);
  core::CentralizedOrdering ordering;
  std::vector<core::RegulatedBound> bounds = {
      {constraint::BoundDirection::kUpper, 1 << 20, /*window=*/0, 24}};
  core::EncryptedEngine engine(&owner, &ordering, "group", "value", bounds,
                               /*value_bits=*/7, /*seed=*/5);
  // Preload `history` sealed rows in one group.
  for (int64_t i = 0; i < history; ++i) {
    core::Update u;
    u.id = "pre" + std::to_string(i);
    u.producer = "org";
    u.timestamp = (i + 1) * kMinute;
    u.fields = {{"group", storage::Value::String("g0")},
                {"value", storage::Value::Int64(i % 100)}};
    if (!engine.SubmitUpdate(u).ok()) {
      state.SkipWithError("preload failed");
      return;
    }
  }
  uint64_t i = 0;
  for (auto _ : state) {
    core::Update u;
    u.id = "op" + std::to_string(i);
    u.producer = "org";
    u.timestamp = (history + 1 + static_cast<int64_t>(i)) * kMinute;
    u.fields = {{"group", storage::Value::String("g0")},
                {"value", storage::Value::Int64(1)}};
    Status s = engine.SubmitUpdate(u);
    benchmark::DoNotOptimize(s);
    ++i;
  }
  state.counters["group_rows"] = static_cast<double>(history);
}
BENCHMARK(BM_EncryptedGroupHistory)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

// ------------------------------- rate sweep (burst throughput) -----------

void BM_PlaintextBurst(benchmark::State& state) {
  int64_t burst = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    workload::TpcLiteConfig config;
    config.credit_limit = 1u << 30;
    workload::TpcLiteWorkload gen(config);
    storage::Database db;
    (void)db.CreateTable(workload::TpcLiteWorkload::kTableName,
                         workload::TpcLiteWorkload::OrdersSchema());
    constraint::ConstraintCatalog catalog;
    (void)catalog.Add("credit", constraint::ConstraintScope::kRegulation,
                      constraint::ConstraintVisibility::kPublic,
                      gen.CreditConstraint());
    core::CentralizedOrdering ordering;
    core::PlaintextEngine engine(&db, &catalog, &ordering);
    state.ResumeTiming();
    for (int64_t i = 0; i < burst; ++i) {
      Status s = engine.SubmitUpdate(gen.NextOrder());
      benchmark::DoNotOptimize(s);
    }
  }
  state.counters["updates/s"] = benchmark::Counter(
      static_cast<double>(burst) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PlaintextBurst)->Arg(500)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

// ------------------------------- rate sweep (ordered-burst, consensus) ---
//
// Update-frequency scaling of the durable path itself: a burst of payloads
// ordered through replicated Raft, blocking Append (stop-and-wait: one
// consensus round per payload) vs SubmitAsync + one Flush (adaptive
// batching, multi-in-flight window). sim_payloads_per_s is the simulated-
// network throughput; the gap is the pipeline's claw-back (cf. E2).

void RunOrderedBurst(benchmark::State& state, bool pipelined) {
  int64_t burst = state.range(0);
  core::OrderingPipelineConfig pipeline;
  pipeline.max_batch = 64;
  pipeline.max_inflight = 4;
  core::RaftOrdering ordering(5, net::SimNetConfig{},
                              pipelined ? pipeline
                                        : core::OrderingPipelineConfig{});
  SimTime start = ordering.network().Now();
  uint64_t total = 0;
  for (auto _ : state) {
    for (int64_t i = 0; i < burst; ++i) {
      Bytes payload = ToBytes("burst-" + std::to_string(total + i));
      Status s;
      if (pipelined) {
        s = ordering.SubmitAsync(payload, total + i).status();
      } else {
        s = ordering.Append(payload, total + i);
      }
      if (!s.ok()) {
        state.SkipWithError(s.ToString().c_str());
        return;
      }
    }
    if (pipelined) {
      Status s = ordering.Flush();
      if (!s.ok()) {
        state.SkipWithError(s.ToString().c_str());
        return;
      }
    }
    total += static_cast<uint64_t>(burst);
  }
  SimTime elapsed = ordering.network().Now() - start;
  if (total > 0 && elapsed > 0) {
    state.counters["sim_payloads_per_s"] =
        static_cast<double>(total) * kSecond / static_cast<double>(elapsed);
  }
  state.counters["burst"] = static_cast<double>(burst);
}

void BM_OrderedBurstBlocking(benchmark::State& state) {
  RunOrderedBurst(state, /*pipelined=*/false);
}
BENCHMARK(BM_OrderedBurstBlocking)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_OrderedBurstPipelined(benchmark::State& state) {
  RunOrderedBurst(state, /*pipelined=*/true);
}
BENCHMARK(BM_OrderedBurstPipelined)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

int main(int argc, char** argv) {
  prever::benchutil::ParseTraceFlag(&argc, argv);
  std::printf(
      "E7: scaling sweeps — per-update cost vs data size, and burst "
      "throughput vs burst size.\nExpected shape: plaintext scan cost grows "
      "with table size; RC1 cost grows linearly with per-group ciphertext "
      "history; plaintext throughput is orders of magnitude above the "
      "private engines (cf. E1).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  prever::benchutil::EmitMetricsJson("e7");
  prever::benchutil::MaybeWriteTrace("e7");
  return 0;
}
