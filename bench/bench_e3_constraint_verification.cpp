// E3 — per-constraint verification cost by privacy mechanism (DESIGN.md
// §3). Paper anchor (§4, RC1): privacy-preserving techniques "have
// considerable overhead" — this bench quantifies the overhead of each
// mechanism PReVer composes, on the same logical check (a bounded
// aggregate).
//
// Expected shape, per verification:
//   plaintext eval  ~ microseconds (scan-bound)
//   MPC comparison  ~ tens of microseconds (bit circuit) + rounds
//   token spend     ~ RSA verify per unit
//   ZK range proof  ~ milliseconds (bit commitments, grows with bits)
//   Paillier path   ~ milliseconds (modular exponentiations)

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "constraint/parser.h"
#include "constraint/verifier.h"
#include "core/prever.h"
#include "crypto/montgomery.h"
#include "mpc/compare.h"

namespace {

using namespace prever;

// --------------------------------------------------------------- Plaintext

void BM_PlaintextEval(benchmark::State& state) {
  int64_t rows = state.range(0);
  storage::Database db;
  storage::Schema schema({{"id", storage::ValueType::kString},
                          {"worker", storage::ValueType::kString},
                          {"hours", storage::ValueType::kInt64},
                          {"at", storage::ValueType::kTimestamp}});
  (void)db.CreateTable("worklog", schema);
  auto* table = *db.GetMutableTable("worklog");
  for (int64_t i = 0; i < rows; ++i) {
    (void)table->Insert({storage::Value::String("t" + std::to_string(i)),
                         storage::Value::String("w" + std::to_string(i % 10)),
                         storage::Value::Int64(1),
                         storage::Value::Timestamp(i * kMinute)});
  }
  auto expr = constraint::ParseConstraint(
      "SUM(worklog.hours WHERE worker = update.worker WINDOW 7d) + "
      "update.hours <= 1000000");
  constraint::UpdateFields fields = {
      {"worker", storage::Value::String("w3")},
      {"hours", storage::Value::Int64(2)}};
  constraint::EvalContext ctx{&db, &fields, rows * kMinute};
  obs::Histogram* op = benchutil::OpHistogram("e3", "plaintext_eval");
  for (auto _ : state) {
    PREVER_TRACE_SPAN(op);
    auto ok = constraint::EvaluateBool(**expr, ctx);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_PlaintextEval)->Arg(64)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

// -------------------------------------- compiled + incremental aggregate

// The same bounded-aggregate check as BM_PlaintextEval, verified through
// the compiled path: bytecode top-level program plus an incrementally
// maintained windowed aggregate. Each iteration is one verify-and-commit
// cycle — the commit flows through the verifier's observer, so the cache's
// O(1) delta path (not a rebuild) carries the steady state, vs the
// interpreter's O(rows) rescan above. The counters prove which path ran:
// agg_rebuilds must stay O(1) while iterations climb into the thousands.
void BM_CompiledVerifyCommit(benchmark::State& state) {
  int64_t rows = state.range(0);
  storage::Database db;
  storage::Schema schema({{"id", storage::ValueType::kString},
                          {"worker", storage::ValueType::kString},
                          {"hours", storage::ValueType::kInt64},
                          {"at", storage::ValueType::kTimestamp}});
  (void)db.CreateTable("worklog", schema);
  constraint::ConstraintCatalog catalog;
  (void)catalog.Add("cap", constraint::ConstraintScope::kInternal,
                    constraint::ConstraintVisibility::kPublic,
                    "SUM(worklog.hours WHERE worker = update.worker "
                    "WINDOW 7d) + update.hours <= 1000000000");
  constraint::CompiledVerifier verifier(&catalog, &db);
  auto insert = [&db](int64_t i) {
    storage::Mutation m;
    m.op = storage::Mutation::Op::kInsert;
    m.table = "worklog";
    m.row = {storage::Value::String("t" + std::to_string(i)),
             storage::Value::String("w" + std::to_string(i % 10)),
             storage::Value::Int64(1),
             storage::Value::Timestamp(static_cast<SimTime>(i) * kMinute)};
    (void)db.Apply(m);
  };
  for (int64_t i = 0; i < rows; ++i) insert(i);
  constraint::UpdateFields fields = {
      {"worker", storage::Value::String("w3")},
      {"hours", storage::Value::Int64(2)}};
  int64_t next = rows;
  obs::Histogram* op = benchutil::OpHistogram("e3", "compiled_verify_commit");
  for (auto _ : state) {
    PREVER_TRACE_SPAN(op);
    constraint::EvalContext ctx{&db, &fields,
                                static_cast<SimTime>(next) * kMinute};
    Status ok = verifier.VerifyAll(ctx);
    benchmark::DoNotOptimize(ok);
    insert(next++);
  }
  auto stats = verifier.stats();
  state.counters["verifies/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["agg_cache_hits"] =
      static_cast<double>(stats.agg.cache_hits);
  state.counters["agg_rebuilds"] =
      static_cast<double>(stats.agg.cache_builds);
  state.counters["agg_delta_applies"] =
      static_cast<double>(stats.agg.delta_applies);
  state.counters["compiled"] =
      static_cast<double>(stats.compiled_constraints);
}
BENCHMARK(BM_CompiledVerifyCommit)->Arg(64)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

// Pure read steady state: verifies with no interleaved commits and a fixed
// `now`, so after the first call every verification rides the shared-lock
// fast path (TryReadEvaluate under std::shared_mutex) — the concurrent-
// reader throughput ceiling.
void BM_CompiledVerifySteady(benchmark::State& state) {
  int64_t rows = state.range(0);
  storage::Database db;
  storage::Schema schema({{"id", storage::ValueType::kString},
                          {"worker", storage::ValueType::kString},
                          {"hours", storage::ValueType::kInt64},
                          {"at", storage::ValueType::kTimestamp}});
  (void)db.CreateTable("worklog", schema);
  constraint::ConstraintCatalog catalog;
  (void)catalog.Add("cap", constraint::ConstraintScope::kInternal,
                    constraint::ConstraintVisibility::kPublic,
                    "SUM(worklog.hours WHERE worker = update.worker "
                    "WINDOW 7d) + update.hours <= 1000000000");
  constraint::CompiledVerifier verifier(&catalog, &db);
  for (int64_t i = 0; i < rows; ++i) {
    storage::Mutation m;
    m.op = storage::Mutation::Op::kInsert;
    m.table = "worklog";
    m.row = {storage::Value::String("t" + std::to_string(i)),
             storage::Value::String("w" + std::to_string(i % 10)),
             storage::Value::Int64(1),
             storage::Value::Timestamp(static_cast<SimTime>(i) * kMinute)};
    (void)db.Apply(m);
  }
  constraint::UpdateFields fields = {
      {"worker", storage::Value::String("w3")},
      {"hours", storage::Value::Int64(2)}};
  constraint::EvalContext ctx{&db, &fields,
                              static_cast<SimTime>(rows) * kMinute};
  (void)verifier.VerifyAll(ctx);  // Warm: build cache, park the cursor.
  obs::Histogram* op = benchutil::OpHistogram("e3", "compiled_verify_steady");
  for (auto _ : state) {
    PREVER_TRACE_SPAN(op);
    Status ok = verifier.VerifyAll(ctx);
    benchmark::DoNotOptimize(ok);
  }
  auto stats = verifier.stats();
  state.counters["verifies/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["fast_path"] =
      static_cast<double>(stats.fast_path_verifies);
}
BENCHMARK(BM_CompiledVerifySteady)->Arg(64)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

// --------------------------------------------------------------------- MPC

void BM_MpcCompare(benchmark::State& state) {
  size_t parties = static_cast<size_t>(state.range(0));
  size_t bits = static_cast<size_t>(state.range(1));
  Rng dealer(7);
  std::vector<uint64_t> inputs(parties, 10);
  mpc::MpcTranscript transcript;
  obs::Histogram* op = benchutil::OpHistogram("e3", "mpc_compare");
  for (auto _ : state) {
    PREVER_TRACE_SPAN(op);
    auto r = mpc::SecureComparison::SumLessEqual(inputs, 1000, bits, dealer,
                                                 &transcript);
    benchmark::DoNotOptimize(r);
  }
  state.counters["rounds/op"] = static_cast<double>(transcript.rounds) /
                                static_cast<double>(state.iterations());
  state.counters["bytes/op"] = static_cast<double>(transcript.bytes) /
                               static_cast<double>(state.iterations());
}
BENCHMARK(BM_MpcCompare)
    ->Args({2, 16})->Args({3, 16})->Args({5, 16})
    ->Args({3, 32})->Args({3, 48})
    ->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------------------- Token

void BM_TokenWithdrawSpend(benchmark::State& state) {
  token::TokenAuthority authority(512, 1u << 30, kWeek, 3);
  ledger::LedgerDb ledger;
  token::TokenVerifier verifier(authority.public_key(), &ledger);
  token::TokenWallet wallet(authority.public_key(), 5);
  obs::Histogram* op = benchutil::OpHistogram("e3", "token_withdraw_spend");
  for (auto _ : state) {
    PREVER_TRACE_SPAN(op);
    (void)wallet.Withdraw(authority, "w", 1, 0);
    auto t = wallet.Take();
    Status s = verifier.Spend(*t, 0);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_TokenWithdrawSpend)->Unit(benchmark::kMillisecond)
    ->Iterations(50);

void BM_TokenSpendOnly(benchmark::State& state) {
  token::TokenAuthority authority(512, 1u << 30, kWeek, 3);
  ledger::LedgerDb ledger;
  token::TokenVerifier verifier(authority.public_key(), &ledger);
  token::TokenWallet wallet(authority.public_key(), 5);
  (void)wallet.Withdraw(authority, "w", 2000, 0);
  for (auto _ : state) {
    auto t = wallet.Take();
    if (!t.ok()) {
      state.SkipWithError("wallet drained");
      break;
    }
    Status s = verifier.Spend(*t, 0);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_TokenSpendOnly)->Unit(benchmark::kMicrosecond)
    ->Iterations(1000);

// ---------------------------------------------------------------------- ZK

void BM_ZkUpperBoundProve(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  const auto& params = crypto::PedersenParams::Test256();
  crypto::Drbg drbg(uint64_t{9});
  auto opening = crypto::PedersenCommitFresh(params, crypto::BigInt(38), drbg);
  obs::Histogram* op = benchutil::OpHistogram("e3", "zk_prove");
  for (auto _ : state) {
    PREVER_TRACE_SPAN(op);
    auto proof = crypto::ProveUpperBound(params, opening.commitment,
                                         crypto::BigInt(38),
                                         opening.randomness,
                                         crypto::BigInt(40), bits, drbg);
    benchmark::DoNotOptimize(proof);
  }
}
BENCHMARK(BM_ZkUpperBoundProve)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond)->Iterations(20);

void BM_ZkUpperBoundVerify(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  const auto& params = crypto::PedersenParams::Test256();
  crypto::Drbg drbg(uint64_t{9});
  auto opening = crypto::PedersenCommitFresh(params, crypto::BigInt(38), drbg);
  auto proof = crypto::ProveUpperBound(params, opening.commitment,
                                       crypto::BigInt(38), opening.randomness,
                                       crypto::BigInt(40), bits, drbg);
  obs::Histogram* op = benchutil::OpHistogram("e3", "zk_verify");
  for (auto _ : state) {
    PREVER_TRACE_SPAN(op);
    bool ok = crypto::VerifyUpperBound(params, opening.commitment, *proof,
                                       crypto::BigInt(40), bits);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_ZkUpperBoundVerify)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond)->Iterations(20);

// ---------------------------------------------------------------- Paillier

void BM_PaillierVerificationChain(benchmark::State& state) {
  // The RC1 inner loop per verification: 1 encrypt (incoming value) +
  // k homomorphic adds (window) + 1 decrypt (owner side).
  int64_t window_rows = state.range(0);
  crypto::Drbg drbg(uint64_t{11});
  auto key = crypto::PaillierGenerateKey(256, drbg).value();
  std::vector<crypto::PaillierCiphertext> window;
  for (int64_t i = 0; i < window_rows; ++i) {
    window.push_back(
        crypto::PaillierEncrypt(key.pub, crypto::BigInt(i % 8), drbg).value());
  }
  obs::Histogram* op = benchutil::OpHistogram("e3", "paillier_chain");
  for (auto _ : state) {
    PREVER_TRACE_SPAN(op);
    auto fresh = crypto::PaillierEncrypt(key.pub, crypto::BigInt(5), drbg);
    crypto::PaillierCiphertext acc = *fresh;
    for (const auto& ct : window) acc = crypto::PaillierAdd(key.pub, acc, ct);
    auto total = crypto::PaillierDecrypt(key, acc);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PaillierVerificationChain)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond)->Iterations(20);

void BM_PaillierVerificationChain512(benchmark::State& state) {
  // Same chain at 512-bit modulus: parameter-scale ablation.
  crypto::Drbg drbg(uint64_t{13});
  auto key = crypto::PaillierGenerateKey(512, drbg).value();
  std::vector<crypto::PaillierCiphertext> window;
  for (int64_t i = 0; i < 16; ++i) {
    window.push_back(
        crypto::PaillierEncrypt(key.pub, crypto::BigInt(i % 8), drbg).value());
  }
  for (auto _ : state) {
    auto fresh = crypto::PaillierEncrypt(key.pub, crypto::BigInt(5), drbg);
    crypto::PaillierCiphertext acc = *fresh;
    for (const auto& ct : window) acc = crypto::PaillierAdd(key.pub, acc, ct);
    auto total = crypto::PaillierDecrypt(key, acc);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PaillierVerificationChain512)->Unit(benchmark::kMillisecond)
    ->Iterations(10);

// ------------------------------------------- modular-arithmetic ablation

// The engineering lever under every crypto mechanism: Montgomery (CIOS)
// exponentiation vs classic divide-and-reduce square-and-multiply.
void BM_PowModMontgomery(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  crypto::Drbg drbg(uint64_t{42});
  crypto::BigInt m = drbg.RandomBits(bits);
  if (m.IsEven()) m = m + crypto::BigInt(1);
  crypto::BigInt base = drbg.RandomBelow(m);
  crypto::BigInt exp = drbg.RandomBits(bits);
  auto ctx = crypto::MontgomeryContext::Create(m).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.PowMod(base, exp));
  }
}
BENCHMARK(BM_PowModMontgomery)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->Iterations(20);

void BM_PowModClassic(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  crypto::Drbg drbg(uint64_t{42});
  crypto::BigInt m = drbg.RandomBits(bits);
  if (m.IsEven()) m = m + crypto::BigInt(1);
  crypto::BigInt base = drbg.RandomBelow(m);
  crypto::BigInt exp = drbg.RandomBits(bits);
  for (auto _ : state) {
    // Classic square-and-multiply with a division-based reduction per step.
    crypto::BigInt b = base.Mod(m);
    crypto::BigInt result(1);
    for (size_t i = exp.BitLength(); i-- > 0;) {
      result = result.MulMod(result, m);
      if (exp.Bit(i)) result = result.MulMod(b, m);
    }
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PowModClassic)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace

int main(int argc, char** argv) {
  prever::benchutil::ParseTraceFlag(&argc, argv);
  std::printf(
      "E3: one bounded-aggregate verification under each mechanism.\n"
      "Expected shape: plaintext (us) < MPC (us, +rounds) < token (RSA "
      "verify/unit) < ZK range proof (ms, ~linear in bits) ~ Paillier "
      "chain (ms, grows with window and modulus).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  prever::benchutil::EmitMetricsJson("e3");
  prever::benchutil::MaybeWriteTrace("e3");
  return 0;
}
