// E1 — YCSB-style private-vs-non-private update execution (DESIGN.md §3).
// Paper anchor (§6): "comparisons should be performed with respect to
// non-private solutions using standardized database benchmarks like TPC and
// YCSB."
//
// Each benchmark pushes the same YCSB update stream (zipfian keys, insert/
// upsert mix, per-owner amount regulation) through one PReVer engine.
// Expected shape: plaintext ≫ RC3 (one ZK attestation per update) ≫ RC2-MPC
// ≫ RC1-encrypted (homomorphic aggregation + owner attestation per update).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "core/prever.h"
#include "workload/ycsb.h"

namespace {

using namespace prever;

constexpr const char* kRegulation =
    "SUM(usertable.amount WHERE owner = update.owner WINDOW 1d) + "
    "update.amount <= 100000";

workload::YcsbConfig BenchConfig() {
  workload::YcsbConfig config;
  config.record_count = 512;
  config.insert_proportion = 0.5;
  config.max_amount = 100;
  config.seed = 42;
  return config;
}

void LoadDatabase(storage::Database& db, workload::YcsbWorkload& ycsb) {
  db.CreateTable(workload::YcsbWorkload::kTableName,
                 workload::YcsbWorkload::TableSchema());
  auto* table = *db.GetMutableTable(workload::YcsbWorkload::kTableName);
  for (const storage::Row& row : ycsb.InitialLoad()) (void)table->Insert(row);
}

void BM_Plaintext(benchmark::State& state) {
  workload::YcsbWorkload ycsb(BenchConfig());
  storage::Database db;
  LoadDatabase(db, ycsb);
  constraint::ConstraintCatalog catalog;
  (void)catalog.Add("cap", constraint::ConstraintScope::kRegulation,
                    constraint::ConstraintVisibility::kPublic, kRegulation);
  core::CentralizedOrdering ordering;
  core::PlaintextEngine engine(&db, &catalog, &ordering);
  uint64_t accepted = 0;
  for (auto _ : state) {
    if (engine.SubmitUpdate(ycsb.Next()).ok()) ++accepted;
  }
  state.counters["accepted"] = static_cast<double>(accepted);
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Plaintext)->Unit(benchmark::kMicrosecond);

void BM_EncryptedRc1(benchmark::State& state) {
  workload::YcsbWorkload ycsb(BenchConfig());
  core::DataOwner owner(256, crypto::PedersenParams::Test256(), 7);
  core::CentralizedOrdering ordering;
  std::vector<core::RegulatedBound> bounds = {
      {constraint::BoundDirection::kUpper, 100000, kDay, 18}};
  core::EncryptedEngine engine(&owner, &ordering, "owner", "amount", bounds,
                               /*value_bits=*/7, /*seed=*/3);
  uint64_t accepted = 0;
  for (auto _ : state) {
    if (engine.SubmitUpdate(ycsb.Next()).ok()) ++accepted;
  }
  state.counters["accepted"] = static_cast<double>(accepted);
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EncryptedRc1)->Unit(benchmark::kMillisecond)->Iterations(30);

// Batch path: seal a whole batch producer-side, then let the manager verify
// the independent range proofs across --threads workers before the serial
// attestation pass. With --threads=1 this measures the batch API's serial
// cost; with more workers it shows the verification fan-out win.
void BM_EncryptedRc1Batch(benchmark::State& state) {
  workload::YcsbWorkload ycsb(BenchConfig());
  core::DataOwner owner(256, crypto::PedersenParams::Test256(), 7);
  core::CentralizedOrdering ordering;
  std::vector<core::RegulatedBound> bounds = {
      {constraint::BoundDirection::kUpper, 100000, kDay, 18}};
  core::EncryptedEngine engine(&owner, &ordering, "owner", "amount", bounds,
                               /*value_bits=*/7, /*seed=*/3);
  common::ThreadPool pool(prever::benchutil::Threads());
  engine.set_thread_pool(&pool);
  const size_t kBatch = 10;
  uint64_t accepted = 0;
  for (auto _ : state) {
    std::vector<core::Update> updates;
    updates.reserve(kBatch);
    for (size_t i = 0; i < kBatch; ++i) updates.push_back(ycsb.Next());
    auto sealed = engine.SealBatch(updates);
    if (sealed.ok() && engine.SubmitSealedBatch(*sealed).ok()) {
      accepted += kBatch;
    }
  }
  state.counters["accepted"] = static_cast<double>(accepted);
  state.counters["threads"] =
      static_cast<double>(prever::benchutil::Threads());
  state.counters["updates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kBatch),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EncryptedRc1Batch)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_PublicDataRc3(benchmark::State& state) {
  workload::YcsbWorkload ycsb(BenchConfig());
  storage::Database db;
  LoadDatabase(db, ycsb);
  constraint::ConstraintCatalog catalog;  // Public side: no constraints.
  std::vector<core::AttestationRequirement> reqs = {
      {"amount", constraint::BoundDirection::kUpper, 100, 7}};
  core::CentralizedOrdering ordering;
  core::PublicDataEngine engine(&db, &catalog, reqs, &ordering,
                                crypto::PedersenParams::Test256());
  crypto::Drbg drbg(uint64_t{5});
  uint64_t accepted = 0;
  for (auto _ : state) {
    core::Update u = ycsb.Next();
    u.mutation.op = storage::Mutation::Op::kUpsert;  // Avoid key clashes.
    core::PublicDataEngine::Submission s;
    int64_t amount = *u.fields.at("amount").AsInt64();
    s.update = std::move(u);
    s.update.fields.erase("amount");  // The private field stays hidden.
    auto att = engine.Attest(engine.requirements()[0], amount, drbg);
    if (att.ok()) {
      s.attestations.push_back(std::move(*att));
      if (engine.Submit(s).ok()) ++accepted;
    }
  }
  state.counters["accepted"] = static_cast<double>(accepted);
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PublicDataRc3)->Unit(benchmark::kMillisecond)->Iterations(50);

void BM_FederatedMpcRc2(benchmark::State& state) {
  workload::YcsbWorkload ycsb(BenchConfig());
  const size_t kPlatforms = 3;
  std::vector<std::unique_ptr<core::FederatedPlatform>> platforms;
  std::vector<core::FederatedPlatform*> raw;
  for (size_t i = 0; i < kPlatforms; ++i) {
    auto p = std::make_unique<core::FederatedPlatform>();
    p->id = "p" + std::to_string(i);
    (void)p->db.CreateTable(workload::YcsbWorkload::kTableName,
                            workload::YcsbWorkload::TableSchema());
    raw.push_back(p.get());
    platforms.push_back(std::move(p));
  }
  constraint::ConstraintCatalog regulations;
  (void)regulations.Add("cap", constraint::ConstraintScope::kRegulation,
                        constraint::ConstraintVisibility::kPublic,
                        kRegulation);
  core::CentralizedOrdering ordering;
  core::FederatedMpcEngine engine(raw, &regulations, &ordering, 13);
  uint64_t accepted = 0;
  size_t rr = 0;
  for (auto _ : state) {
    if (engine.SubmitVia(rr++ % kPlatforms, ycsb.Next()).ok()) ++accepted;
  }
  state.counters["accepted"] = static_cast<double>(accepted);
  state.counters["mpc_msgs"] =
      static_cast<double>(engine.transcript().messages);
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FederatedMpcRc2)->Unit(benchmark::kMicrosecond);

void BM_FederatedThresholdRc2(benchmark::State& state) {
  workload::YcsbWorkload ycsb(BenchConfig());
  const size_t kPlatforms = 3;
  std::vector<std::unique_ptr<core::FederatedPlatform>> platforms;
  std::vector<core::FederatedPlatform*> raw;
  for (size_t i = 0; i < kPlatforms; ++i) {
    auto p = std::make_unique<core::FederatedPlatform>();
    p->id = "p" + std::to_string(i);
    (void)p->db.CreateTable(workload::YcsbWorkload::kTableName,
                            workload::YcsbWorkload::TableSchema());
    raw.push_back(p.get());
    platforms.push_back(std::move(p));
  }
  constraint::ConstraintCatalog regulations;
  (void)regulations.Add("cap", constraint::ConstraintScope::kRegulation,
                        constraint::ConstraintVisibility::kPublic,
                        kRegulation);
  core::CentralizedOrdering ordering;
  core::FederatedThresholdEngine engine(
      raw, &regulations, &ordering, crypto::PedersenParams::Test256(), 19);
  uint64_t accepted = 0;
  size_t rr = 0;
  for (auto _ : state) {
    if (engine.SubmitVia(rr++ % kPlatforms, ycsb.Next()).ok()) ++accepted;
  }
  state.counters["accepted"] = static_cast<double>(accepted);
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FederatedThresholdRc2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(20);

void BM_FederatedTokenRc2(benchmark::State& state) {
  workload::YcsbWorkload ycsb(BenchConfig());
  const size_t kPlatforms = 3;
  std::vector<std::unique_ptr<core::FederatedPlatform>> platforms;
  std::vector<core::FederatedPlatform*> raw;
  for (size_t i = 0; i < kPlatforms; ++i) {
    auto p = std::make_unique<core::FederatedPlatform>();
    p->id = "p" + std::to_string(i);
    (void)p->db.CreateTable(workload::YcsbWorkload::kTableName,
                            workload::YcsbWorkload::TableSchema());
    raw.push_back(p.get());
    platforms.push_back(std::move(p));
  }
  // One token = one amount unit; generous weekly budget.
  token::TokenAuthority authority(512, 1u << 20, kWeek, 11);
  core::CentralizedOrdering ordering;
  core::FederatedTokenEngine engine(raw, &authority, &ordering, "amount");
  uint64_t accepted = 0;
  size_t rr = 0;
  for (auto _ : state) {
    if (engine.SubmitVia(rr++ % kPlatforms, ycsb.Next()).ok()) ++accepted;
  }
  state.counters["accepted"] = static_cast<double>(accepted);
  state.counters["tokens"] = static_cast<double>(engine.tokens_spent());
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FederatedTokenRc2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(20);

}  // namespace

int main(int argc, char** argv) {
  prever::benchutil::ParseTraceFlag(&argc, argv);
  std::printf(
      "E1: YCSB update stream through each PReVer engine vs the plaintext "
      "baseline.\nExpected shape: plaintext >> federated-MPC >> RC3-ZK >> "
      "token (RSA per unit) ~ RC1-encrypted (Paillier+ZK per update).\n\n");
  prever::benchutil::ParseThreadsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Per-engine submit/phase histograms are recorded by the engines
  // themselves (src/core/engine_metrics.h); dump everything.
  prever::benchutil::EmitMetricsJson("e1");
  prever::benchutil::MaybeWriteTrace("e1");
  return 0;
}
