#ifndef PREVER_BENCH_BENCH_COMMON_H_
#define PREVER_BENCH_BENCH_COMMON_H_

// Shared plumbing for the E* benchmark binaries: per-operation latency
// histograms and the uniform machine-readable metrics blob every bench
// prints before exiting (consumed by scripts/bench_smoke.sh and any
// harness that wants structured results instead of scraping counters).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace prever::benchutil {

/// Wall-clock per-operation histogram for one case of one bench, e.g.
/// OpHistogram("e5", "xor_fetch"). Pair with PREVER_TRACE_SPAN around the
/// measured operation; the registry dedups, so calling this inside the
/// benchmark setup is cheap and idempotent.
inline obs::Histogram* OpHistogram(const std::string& bench,
                                   const std::string& bench_case) {
  return obs::Registry::Default().GetHistogram(
      "prever_bench_op_ns", {{"bench", bench}, {"case", bench_case}});
}

/// Worker budget for benches with parallel verification paths, set by a
/// `--threads=N` argument. Defaults to 1 (serial) so results on shared or
/// single-core machines are not skewed by silent oversubscription.
inline size_t& ThreadsFlag() {
  static size_t threads = 1;
  return threads;
}
inline size_t Threads() { return ThreadsFlag(); }

/// Parses and REMOVES `--threads=N` from argv. Call before
/// benchmark::Initialize, which rejects flags it does not recognize.
inline void ParseThreadsFlag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* prefix = "--threads=";
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      long v = std::atol(argv[i] + std::strlen(prefix));
      if (v > 0) ThreadsFlag() = static_cast<size_t>(v);
      continue;  // Strip the flag.
    }
    argv[out++] = argv[i];
  }
  *argc = out;
}

/// Prints the uniform end-of-run metrics line:
///   PREVER_METRICS_JSON {"bench":"eN","schema":"prever.metrics.v1",
///                        "metrics":{...full registry dump...}}
/// Call from main() after RunSpecifiedBenchmarks(). The marker prefix keeps
/// the blob greppable amid Google Benchmark's human-oriented output.
inline void EmitMetricsJson(const char* bench) {
  obs::Json doc = obs::Json::Object();
  doc.Set("bench", obs::Json::Str(bench));
  doc.Set("schema", obs::Json::Str("prever.metrics.v1"));
  doc.Set("metrics", obs::Registry::Default().RenderJsonDoc());
  std::printf("\nPREVER_METRICS_JSON %s\n", doc.Dump().c_str());
  std::fflush(stdout);
}

}  // namespace prever::benchutil

#endif  // PREVER_BENCH_BENCH_COMMON_H_
