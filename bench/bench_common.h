#ifndef PREVER_BENCH_BENCH_COMMON_H_
#define PREVER_BENCH_BENCH_COMMON_H_

// Shared plumbing for the E* benchmark binaries: per-operation latency
// histograms and the uniform machine-readable metrics blob every bench
// prints before exiting (consumed by scripts/bench_smoke.sh and any
// harness that wants structured results instead of scraping counters).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/tracing.h"

namespace prever::benchutil {

/// Wall-clock per-operation histogram for one case of one bench, e.g.
/// OpHistogram("e5", "xor_fetch"). Pair with PREVER_TRACE_SPAN around the
/// measured operation; the registry dedups, so calling this inside the
/// benchmark setup is cheap and idempotent.
inline obs::Histogram* OpHistogram(const std::string& bench,
                                   const std::string& bench_case) {
  return obs::Registry::Default().GetHistogram(
      "prever_bench_op_ns", {{"bench", bench}, {"case", bench_case}});
}

/// Worker budget for benches with parallel verification paths, set by a
/// `--threads=N` argument. Defaults to 1 (serial) so results on shared or
/// single-core machines are not skewed by silent oversubscription.
inline size_t& ThreadsFlag() {
  static size_t threads = 1;
  return threads;
}
inline size_t Threads() { return ThreadsFlag(); }

/// Parses and REMOVES `--threads=N` from argv. Call before
/// benchmark::Initialize, which rejects flags it does not recognize.
inline void ParseThreadsFlag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* prefix = "--threads=";
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      long v = std::atol(argv[i] + std::strlen(prefix));
      if (v > 0) ThreadsFlag() = static_cast<size_t>(v);
      continue;  // Strip the flag.
    }
    argv[out++] = argv[i];
  }
  *argc = out;
}

/// Chrome-trace output path set by a `--trace=FILE` argument; empty when
/// tracing was not requested.
inline std::string& TraceFileFlag() {
  static std::string path;
  return path;
}

/// Parses and REMOVES `--trace=FILE` from argv (benchmark::Initialize
/// rejects unknown flags). When present, enables the causal tracer for the
/// whole run: every transaction sampled (override the period with
/// PREVER_TRACE_SAMPLE=N) into a large flight-recorder ring, exported as
/// Chrome trace-event JSON by MaybeWriteTrace() at exit. Without the flag
/// the tracer stays runtime-disabled: one relaxed load per potential span
/// (see src/obs/trace.h "Zero-overhead contract").
inline void ParseTraceFlag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* prefix = "--trace=";
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      TraceFileFlag() = argv[i] + std::strlen(prefix);
      continue;  // Strip the flag.
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  if (TraceFileFlag().empty()) return;
  obs::TracerConfig cfg;
  cfg.enabled = true;
  cfg.sample_period = 1;
  cfg.ring_capacity = 1 << 16;
  if (const char* sample = std::getenv("PREVER_TRACE_SAMPLE")) {
    long v = std::atol(sample);
    if (v > 0) cfg.sample_period = static_cast<uint64_t>(v);
  }
  obs::Tracer::Get().Configure(cfg);
}

/// Writes the Chrome trace-event JSON to the `--trace=FILE` path (no-op
/// without the flag) and prints a greppable marker line:
///   PREVER_TRACE_FILE <path> spans=<n> traces=<minted>/<sampled>
/// Load the file in Perfetto (ui.perfetto.dev) or feed it to
/// tools/trace_analyze for per-stage critical-path attribution.
inline void MaybeWriteTrace(const char* bench) {
  const std::string& path = TraceFileFlag();
  if (path.empty()) return;
  obs::Tracer& tracer = obs::Tracer::Get();
  Status written = tracer.WriteChromeTrace(path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s: trace write failed: %s\n", bench,
                 written.message().c_str());
    return;
  }
  std::printf("PREVER_TRACE_FILE %s traces=%llu/%llu\n", path.c_str(),
              static_cast<unsigned long long>(tracer.traces_minted()),
              static_cast<unsigned long long>(tracer.traces_sampled()));
  std::fflush(stdout);
}

/// Prints the uniform end-of-run metrics line:
///   PREVER_METRICS_JSON {"bench":"eN","schema":"prever.metrics.v1",
///                        "metrics":{...full registry dump...}}
/// Call from main() after RunSpecifiedBenchmarks(). The marker prefix keeps
/// the blob greppable amid Google Benchmark's human-oriented output.
inline void EmitMetricsJson(const char* bench) {
  obs::Json doc = obs::Json::Object();
  doc.Set("bench", obs::Json::Str(bench));
  doc.Set("schema", obs::Json::Str("prever.metrics.v1"));
  doc.Set("metrics", obs::Registry::Default().RenderJsonDoc());
  std::printf("\nPREVER_METRICS_JSON %s\n", doc.Dump().c_str());
  std::fflush(stdout);
}

}  // namespace prever::benchutil

#endif  // PREVER_BENCH_BENCH_COMMON_H_
