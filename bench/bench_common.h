#ifndef PREVER_BENCH_BENCH_COMMON_H_
#define PREVER_BENCH_BENCH_COMMON_H_

// Shared plumbing for the E* benchmark binaries: per-operation latency
// histograms and the uniform machine-readable metrics blob every bench
// prints before exiting (consumed by scripts/bench_smoke.sh and any
// harness that wants structured results instead of scraping counters).

#include <cstdio>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace prever::benchutil {

/// Wall-clock per-operation histogram for one case of one bench, e.g.
/// OpHistogram("e5", "xor_fetch"). Pair with PREVER_TRACE_SPAN around the
/// measured operation; the registry dedups, so calling this inside the
/// benchmark setup is cheap and idempotent.
inline obs::Histogram* OpHistogram(const std::string& bench,
                                   const std::string& bench_case) {
  return obs::Registry::Default().GetHistogram(
      "prever_bench_op_ns", {{"bench", bench}, {"case", bench_case}});
}

/// Prints the uniform end-of-run metrics line:
///   PREVER_METRICS_JSON {"bench":"eN","schema":"prever.metrics.v1",
///                        "metrics":{...full registry dump...}}
/// Call from main() after RunSpecifiedBenchmarks(). The marker prefix keeps
/// the blob greppable amid Google Benchmark's human-oriented output.
inline void EmitMetricsJson(const char* bench) {
  obs::Json doc = obs::Json::Object();
  doc.Set("bench", obs::Json::Str(bench));
  doc.Set("schema", obs::Json::Str("prever.metrics.v1"));
  doc.Set("metrics", obs::Registry::Default().RenderJsonDoc());
  std::printf("\nPREVER_METRICS_JSON %s\n", doc.Dump().c_str());
  std::fflush(stdout);
}

}  // namespace prever::benchutil

#endif  // PREVER_BENCH_BENCH_COMMON_H_
