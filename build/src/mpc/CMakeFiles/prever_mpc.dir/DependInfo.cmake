
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpc/compare.cc" "src/mpc/CMakeFiles/prever_mpc.dir/compare.cc.o" "gcc" "src/mpc/CMakeFiles/prever_mpc.dir/compare.cc.o.d"
  "/root/repo/src/mpc/secure_agg.cc" "src/mpc/CMakeFiles/prever_mpc.dir/secure_agg.cc.o" "gcc" "src/mpc/CMakeFiles/prever_mpc.dir/secure_agg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/prever_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prever_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
