file(REMOVE_RECURSE
  "libprever_mpc.a"
)
