# Empty compiler generated dependencies file for prever_mpc.
# This may be replaced when dependencies are built.
