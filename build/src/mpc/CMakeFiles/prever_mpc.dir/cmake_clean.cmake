file(REMOVE_RECURSE
  "CMakeFiles/prever_mpc.dir/compare.cc.o"
  "CMakeFiles/prever_mpc.dir/compare.cc.o.d"
  "CMakeFiles/prever_mpc.dir/secure_agg.cc.o"
  "CMakeFiles/prever_mpc.dir/secure_agg.cc.o.d"
  "libprever_mpc.a"
  "libprever_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prever_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
