# Empty dependencies file for prever_net.
# This may be replaced when dependencies are built.
