file(REMOVE_RECURSE
  "libprever_net.a"
)
