file(REMOVE_RECURSE
  "CMakeFiles/prever_net.dir/sim_net.cc.o"
  "CMakeFiles/prever_net.dir/sim_net.cc.o.d"
  "libprever_net.a"
  "libprever_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prever_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
