file(REMOVE_RECURSE
  "CMakeFiles/prever_storage.dir/database.cc.o"
  "CMakeFiles/prever_storage.dir/database.cc.o.d"
  "CMakeFiles/prever_storage.dir/schema.cc.o"
  "CMakeFiles/prever_storage.dir/schema.cc.o.d"
  "CMakeFiles/prever_storage.dir/table.cc.o"
  "CMakeFiles/prever_storage.dir/table.cc.o.d"
  "CMakeFiles/prever_storage.dir/value.cc.o"
  "CMakeFiles/prever_storage.dir/value.cc.o.d"
  "CMakeFiles/prever_storage.dir/wal.cc.o"
  "CMakeFiles/prever_storage.dir/wal.cc.o.d"
  "libprever_storage.a"
  "libprever_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prever_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
