# Empty dependencies file for prever_storage.
# This may be replaced when dependencies are built.
