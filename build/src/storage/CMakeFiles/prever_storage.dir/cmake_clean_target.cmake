file(REMOVE_RECURSE
  "libprever_storage.a"
)
