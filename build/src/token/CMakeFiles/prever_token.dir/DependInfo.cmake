
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/token/token.cc" "src/token/CMakeFiles/prever_token.dir/token.cc.o" "gcc" "src/token/CMakeFiles/prever_token.dir/token.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ledger/CMakeFiles/prever_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/prever_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prever_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/prever_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
