file(REMOVE_RECURSE
  "CMakeFiles/prever_token.dir/token.cc.o"
  "CMakeFiles/prever_token.dir/token.cc.o.d"
  "libprever_token.a"
  "libprever_token.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prever_token.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
