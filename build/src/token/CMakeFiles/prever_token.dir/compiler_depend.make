# Empty compiler generated dependencies file for prever_token.
# This may be replaced when dependencies are built.
