file(REMOVE_RECURSE
  "libprever_token.a"
)
