file(REMOVE_RECURSE
  "CMakeFiles/prever_core.dir/auditor.cc.o"
  "CMakeFiles/prever_core.dir/auditor.cc.o.d"
  "CMakeFiles/prever_core.dir/demarcation_engine.cc.o"
  "CMakeFiles/prever_core.dir/demarcation_engine.cc.o.d"
  "CMakeFiles/prever_core.dir/dp_index.cc.o"
  "CMakeFiles/prever_core.dir/dp_index.cc.o.d"
  "CMakeFiles/prever_core.dir/encrypted_engine.cc.o"
  "CMakeFiles/prever_core.dir/encrypted_engine.cc.o.d"
  "CMakeFiles/prever_core.dir/federated_mpc_engine.cc.o"
  "CMakeFiles/prever_core.dir/federated_mpc_engine.cc.o.d"
  "CMakeFiles/prever_core.dir/federated_threshold_engine.cc.o"
  "CMakeFiles/prever_core.dir/federated_threshold_engine.cc.o.d"
  "CMakeFiles/prever_core.dir/federated_token_engine.cc.o"
  "CMakeFiles/prever_core.dir/federated_token_engine.cc.o.d"
  "CMakeFiles/prever_core.dir/ordering.cc.o"
  "CMakeFiles/prever_core.dir/ordering.cc.o.d"
  "CMakeFiles/prever_core.dir/participant.cc.o"
  "CMakeFiles/prever_core.dir/participant.cc.o.d"
  "CMakeFiles/prever_core.dir/pattern_shaper.cc.o"
  "CMakeFiles/prever_core.dir/pattern_shaper.cc.o.d"
  "CMakeFiles/prever_core.dir/plaintext_engine.cc.o"
  "CMakeFiles/prever_core.dir/plaintext_engine.cc.o.d"
  "CMakeFiles/prever_core.dir/public_data_engine.cc.o"
  "CMakeFiles/prever_core.dir/public_data_engine.cc.o.d"
  "CMakeFiles/prever_core.dir/signed_update.cc.o"
  "CMakeFiles/prever_core.dir/signed_update.cc.o.d"
  "CMakeFiles/prever_core.dir/update.cc.o"
  "CMakeFiles/prever_core.dir/update.cc.o.d"
  "libprever_core.a"
  "libprever_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prever_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
