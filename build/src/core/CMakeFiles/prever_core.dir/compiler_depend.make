# Empty compiler generated dependencies file for prever_core.
# This may be replaced when dependencies are built.
