file(REMOVE_RECURSE
  "libprever_core.a"
)
