
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/auditor.cc" "src/core/CMakeFiles/prever_core.dir/auditor.cc.o" "gcc" "src/core/CMakeFiles/prever_core.dir/auditor.cc.o.d"
  "/root/repo/src/core/demarcation_engine.cc" "src/core/CMakeFiles/prever_core.dir/demarcation_engine.cc.o" "gcc" "src/core/CMakeFiles/prever_core.dir/demarcation_engine.cc.o.d"
  "/root/repo/src/core/dp_index.cc" "src/core/CMakeFiles/prever_core.dir/dp_index.cc.o" "gcc" "src/core/CMakeFiles/prever_core.dir/dp_index.cc.o.d"
  "/root/repo/src/core/encrypted_engine.cc" "src/core/CMakeFiles/prever_core.dir/encrypted_engine.cc.o" "gcc" "src/core/CMakeFiles/prever_core.dir/encrypted_engine.cc.o.d"
  "/root/repo/src/core/federated_mpc_engine.cc" "src/core/CMakeFiles/prever_core.dir/federated_mpc_engine.cc.o" "gcc" "src/core/CMakeFiles/prever_core.dir/federated_mpc_engine.cc.o.d"
  "/root/repo/src/core/federated_threshold_engine.cc" "src/core/CMakeFiles/prever_core.dir/federated_threshold_engine.cc.o" "gcc" "src/core/CMakeFiles/prever_core.dir/federated_threshold_engine.cc.o.d"
  "/root/repo/src/core/federated_token_engine.cc" "src/core/CMakeFiles/prever_core.dir/federated_token_engine.cc.o" "gcc" "src/core/CMakeFiles/prever_core.dir/federated_token_engine.cc.o.d"
  "/root/repo/src/core/ordering.cc" "src/core/CMakeFiles/prever_core.dir/ordering.cc.o" "gcc" "src/core/CMakeFiles/prever_core.dir/ordering.cc.o.d"
  "/root/repo/src/core/participant.cc" "src/core/CMakeFiles/prever_core.dir/participant.cc.o" "gcc" "src/core/CMakeFiles/prever_core.dir/participant.cc.o.d"
  "/root/repo/src/core/pattern_shaper.cc" "src/core/CMakeFiles/prever_core.dir/pattern_shaper.cc.o" "gcc" "src/core/CMakeFiles/prever_core.dir/pattern_shaper.cc.o.d"
  "/root/repo/src/core/plaintext_engine.cc" "src/core/CMakeFiles/prever_core.dir/plaintext_engine.cc.o" "gcc" "src/core/CMakeFiles/prever_core.dir/plaintext_engine.cc.o.d"
  "/root/repo/src/core/public_data_engine.cc" "src/core/CMakeFiles/prever_core.dir/public_data_engine.cc.o" "gcc" "src/core/CMakeFiles/prever_core.dir/public_data_engine.cc.o.d"
  "/root/repo/src/core/signed_update.cc" "src/core/CMakeFiles/prever_core.dir/signed_update.cc.o" "gcc" "src/core/CMakeFiles/prever_core.dir/signed_update.cc.o.d"
  "/root/repo/src/core/update.cc" "src/core/CMakeFiles/prever_core.dir/update.cc.o" "gcc" "src/core/CMakeFiles/prever_core.dir/update.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/consensus/CMakeFiles/prever_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/prever_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/prever_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/prever_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/prever_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pir/CMakeFiles/prever_pir.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/prever_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/token/CMakeFiles/prever_token.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/prever_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prever_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
