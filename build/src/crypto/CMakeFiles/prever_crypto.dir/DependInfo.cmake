
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bigint.cc" "src/crypto/CMakeFiles/prever_crypto.dir/bigint.cc.o" "gcc" "src/crypto/CMakeFiles/prever_crypto.dir/bigint.cc.o.d"
  "/root/repo/src/crypto/drbg.cc" "src/crypto/CMakeFiles/prever_crypto.dir/drbg.cc.o" "gcc" "src/crypto/CMakeFiles/prever_crypto.dir/drbg.cc.o.d"
  "/root/repo/src/crypto/elgamal.cc" "src/crypto/CMakeFiles/prever_crypto.dir/elgamal.cc.o" "gcc" "src/crypto/CMakeFiles/prever_crypto.dir/elgamal.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/crypto/CMakeFiles/prever_crypto.dir/hmac.cc.o" "gcc" "src/crypto/CMakeFiles/prever_crypto.dir/hmac.cc.o.d"
  "/root/repo/src/crypto/merkle.cc" "src/crypto/CMakeFiles/prever_crypto.dir/merkle.cc.o" "gcc" "src/crypto/CMakeFiles/prever_crypto.dir/merkle.cc.o.d"
  "/root/repo/src/crypto/montgomery.cc" "src/crypto/CMakeFiles/prever_crypto.dir/montgomery.cc.o" "gcc" "src/crypto/CMakeFiles/prever_crypto.dir/montgomery.cc.o.d"
  "/root/repo/src/crypto/paillier.cc" "src/crypto/CMakeFiles/prever_crypto.dir/paillier.cc.o" "gcc" "src/crypto/CMakeFiles/prever_crypto.dir/paillier.cc.o.d"
  "/root/repo/src/crypto/pedersen.cc" "src/crypto/CMakeFiles/prever_crypto.dir/pedersen.cc.o" "gcc" "src/crypto/CMakeFiles/prever_crypto.dir/pedersen.cc.o.d"
  "/root/repo/src/crypto/prime.cc" "src/crypto/CMakeFiles/prever_crypto.dir/prime.cc.o" "gcc" "src/crypto/CMakeFiles/prever_crypto.dir/prime.cc.o.d"
  "/root/repo/src/crypto/rsa.cc" "src/crypto/CMakeFiles/prever_crypto.dir/rsa.cc.o" "gcc" "src/crypto/CMakeFiles/prever_crypto.dir/rsa.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/crypto/CMakeFiles/prever_crypto.dir/sha256.cc.o" "gcc" "src/crypto/CMakeFiles/prever_crypto.dir/sha256.cc.o.d"
  "/root/repo/src/crypto/shamir.cc" "src/crypto/CMakeFiles/prever_crypto.dir/shamir.cc.o" "gcc" "src/crypto/CMakeFiles/prever_crypto.dir/shamir.cc.o.d"
  "/root/repo/src/crypto/zkp.cc" "src/crypto/CMakeFiles/prever_crypto.dir/zkp.cc.o" "gcc" "src/crypto/CMakeFiles/prever_crypto.dir/zkp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prever_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
