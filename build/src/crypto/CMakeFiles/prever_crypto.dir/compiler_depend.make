# Empty compiler generated dependencies file for prever_crypto.
# This may be replaced when dependencies are built.
