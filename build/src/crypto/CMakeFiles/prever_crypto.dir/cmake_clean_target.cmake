file(REMOVE_RECURSE
  "libprever_crypto.a"
)
