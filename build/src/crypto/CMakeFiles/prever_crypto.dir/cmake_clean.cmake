file(REMOVE_RECURSE
  "CMakeFiles/prever_crypto.dir/bigint.cc.o"
  "CMakeFiles/prever_crypto.dir/bigint.cc.o.d"
  "CMakeFiles/prever_crypto.dir/drbg.cc.o"
  "CMakeFiles/prever_crypto.dir/drbg.cc.o.d"
  "CMakeFiles/prever_crypto.dir/elgamal.cc.o"
  "CMakeFiles/prever_crypto.dir/elgamal.cc.o.d"
  "CMakeFiles/prever_crypto.dir/hmac.cc.o"
  "CMakeFiles/prever_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/prever_crypto.dir/merkle.cc.o"
  "CMakeFiles/prever_crypto.dir/merkle.cc.o.d"
  "CMakeFiles/prever_crypto.dir/montgomery.cc.o"
  "CMakeFiles/prever_crypto.dir/montgomery.cc.o.d"
  "CMakeFiles/prever_crypto.dir/paillier.cc.o"
  "CMakeFiles/prever_crypto.dir/paillier.cc.o.d"
  "CMakeFiles/prever_crypto.dir/pedersen.cc.o"
  "CMakeFiles/prever_crypto.dir/pedersen.cc.o.d"
  "CMakeFiles/prever_crypto.dir/prime.cc.o"
  "CMakeFiles/prever_crypto.dir/prime.cc.o.d"
  "CMakeFiles/prever_crypto.dir/rsa.cc.o"
  "CMakeFiles/prever_crypto.dir/rsa.cc.o.d"
  "CMakeFiles/prever_crypto.dir/sha256.cc.o"
  "CMakeFiles/prever_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/prever_crypto.dir/shamir.cc.o"
  "CMakeFiles/prever_crypto.dir/shamir.cc.o.d"
  "CMakeFiles/prever_crypto.dir/zkp.cc.o"
  "CMakeFiles/prever_crypto.dir/zkp.cc.o.d"
  "libprever_crypto.a"
  "libprever_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prever_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
