file(REMOVE_RECURSE
  "libprever_common.a"
)
