file(REMOVE_RECURSE
  "CMakeFiles/prever_common.dir/bytes.cc.o"
  "CMakeFiles/prever_common.dir/bytes.cc.o.d"
  "CMakeFiles/prever_common.dir/crc32.cc.o"
  "CMakeFiles/prever_common.dir/crc32.cc.o.d"
  "CMakeFiles/prever_common.dir/rng.cc.o"
  "CMakeFiles/prever_common.dir/rng.cc.o.d"
  "CMakeFiles/prever_common.dir/serial.cc.o"
  "CMakeFiles/prever_common.dir/serial.cc.o.d"
  "CMakeFiles/prever_common.dir/status.cc.o"
  "CMakeFiles/prever_common.dir/status.cc.o.d"
  "libprever_common.a"
  "libprever_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prever_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
