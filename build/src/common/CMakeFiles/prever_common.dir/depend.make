# Empty dependencies file for prever_common.
# This may be replaced when dependencies are built.
