# Empty dependencies file for prever_workload.
# This may be replaced when dependencies are built.
