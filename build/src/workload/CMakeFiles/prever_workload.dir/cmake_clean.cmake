file(REMOVE_RECURSE
  "CMakeFiles/prever_workload.dir/crowdworking.cc.o"
  "CMakeFiles/prever_workload.dir/crowdworking.cc.o.d"
  "CMakeFiles/prever_workload.dir/supplychain.cc.o"
  "CMakeFiles/prever_workload.dir/supplychain.cc.o.d"
  "CMakeFiles/prever_workload.dir/tpc_lite.cc.o"
  "CMakeFiles/prever_workload.dir/tpc_lite.cc.o.d"
  "CMakeFiles/prever_workload.dir/ycsb.cc.o"
  "CMakeFiles/prever_workload.dir/ycsb.cc.o.d"
  "libprever_workload.a"
  "libprever_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prever_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
