file(REMOVE_RECURSE
  "libprever_workload.a"
)
