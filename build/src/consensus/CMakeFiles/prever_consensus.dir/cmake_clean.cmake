file(REMOVE_RECURSE
  "CMakeFiles/prever_consensus.dir/pbft.cc.o"
  "CMakeFiles/prever_consensus.dir/pbft.cc.o.d"
  "CMakeFiles/prever_consensus.dir/raft.cc.o"
  "CMakeFiles/prever_consensus.dir/raft.cc.o.d"
  "libprever_consensus.a"
  "libprever_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prever_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
