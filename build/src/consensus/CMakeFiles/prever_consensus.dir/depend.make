# Empty dependencies file for prever_consensus.
# This may be replaced when dependencies are built.
