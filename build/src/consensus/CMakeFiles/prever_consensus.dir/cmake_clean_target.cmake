file(REMOVE_RECURSE
  "libprever_consensus.a"
)
