file(REMOVE_RECURSE
  "libprever_pir.a"
)
