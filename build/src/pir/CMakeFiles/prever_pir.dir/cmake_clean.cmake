file(REMOVE_RECURSE
  "CMakeFiles/prever_pir.dir/cpir.cc.o"
  "CMakeFiles/prever_pir.dir/cpir.cc.o.d"
  "CMakeFiles/prever_pir.dir/xor_pir.cc.o"
  "CMakeFiles/prever_pir.dir/xor_pir.cc.o.d"
  "libprever_pir.a"
  "libprever_pir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prever_pir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
