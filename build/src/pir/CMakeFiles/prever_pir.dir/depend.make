# Empty dependencies file for prever_pir.
# This may be replaced when dependencies are built.
