# Empty dependencies file for prever_ledger.
# This may be replaced when dependencies are built.
