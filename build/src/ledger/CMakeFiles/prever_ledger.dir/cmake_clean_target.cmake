file(REMOVE_RECURSE
  "libprever_ledger.a"
)
