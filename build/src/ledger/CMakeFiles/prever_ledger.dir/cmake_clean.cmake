file(REMOVE_RECURSE
  "CMakeFiles/prever_ledger.dir/block.cc.o"
  "CMakeFiles/prever_ledger.dir/block.cc.o.d"
  "CMakeFiles/prever_ledger.dir/ledger_db.cc.o"
  "CMakeFiles/prever_ledger.dir/ledger_db.cc.o.d"
  "libprever_ledger.a"
  "libprever_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prever_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
