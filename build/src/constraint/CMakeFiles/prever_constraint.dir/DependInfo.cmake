
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraint/ast.cc" "src/constraint/CMakeFiles/prever_constraint.dir/ast.cc.o" "gcc" "src/constraint/CMakeFiles/prever_constraint.dir/ast.cc.o.d"
  "/root/repo/src/constraint/constraint.cc" "src/constraint/CMakeFiles/prever_constraint.dir/constraint.cc.o" "gcc" "src/constraint/CMakeFiles/prever_constraint.dir/constraint.cc.o.d"
  "/root/repo/src/constraint/eval.cc" "src/constraint/CMakeFiles/prever_constraint.dir/eval.cc.o" "gcc" "src/constraint/CMakeFiles/prever_constraint.dir/eval.cc.o.d"
  "/root/repo/src/constraint/linear.cc" "src/constraint/CMakeFiles/prever_constraint.dir/linear.cc.o" "gcc" "src/constraint/CMakeFiles/prever_constraint.dir/linear.cc.o.d"
  "/root/repo/src/constraint/parser.cc" "src/constraint/CMakeFiles/prever_constraint.dir/parser.cc.o" "gcc" "src/constraint/CMakeFiles/prever_constraint.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/prever_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prever_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
