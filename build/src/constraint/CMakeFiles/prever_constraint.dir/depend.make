# Empty dependencies file for prever_constraint.
# This may be replaced when dependencies are built.
