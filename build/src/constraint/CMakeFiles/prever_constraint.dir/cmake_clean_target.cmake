file(REMOVE_RECURSE
  "libprever_constraint.a"
)
