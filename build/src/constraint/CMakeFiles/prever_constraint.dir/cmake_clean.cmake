file(REMOVE_RECURSE
  "CMakeFiles/prever_constraint.dir/ast.cc.o"
  "CMakeFiles/prever_constraint.dir/ast.cc.o.d"
  "CMakeFiles/prever_constraint.dir/constraint.cc.o"
  "CMakeFiles/prever_constraint.dir/constraint.cc.o.d"
  "CMakeFiles/prever_constraint.dir/eval.cc.o"
  "CMakeFiles/prever_constraint.dir/eval.cc.o.d"
  "CMakeFiles/prever_constraint.dir/linear.cc.o"
  "CMakeFiles/prever_constraint.dir/linear.cc.o.d"
  "CMakeFiles/prever_constraint.dir/parser.cc.o"
  "CMakeFiles/prever_constraint.dir/parser.cc.o.d"
  "libprever_constraint.a"
  "libprever_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prever_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
