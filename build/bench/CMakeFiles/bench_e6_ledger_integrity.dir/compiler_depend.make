# Empty compiler generated dependencies file for bench_e6_ledger_integrity.
# This may be replaced when dependencies are built.
