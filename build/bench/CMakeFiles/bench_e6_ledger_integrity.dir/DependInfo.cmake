
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e6_ledger_integrity.cpp" "bench/CMakeFiles/bench_e6_ledger_integrity.dir/bench_e6_ledger_integrity.cpp.o" "gcc" "bench/CMakeFiles/bench_e6_ledger_integrity.dir/bench_e6_ledger_integrity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/prever_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/prever_core.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/prever_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/prever_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/prever_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/prever_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pir/CMakeFiles/prever_pir.dir/DependInfo.cmake"
  "/root/repo/build/src/token/CMakeFiles/prever_token.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/prever_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/prever_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/prever_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prever_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
