file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_ledger_integrity.dir/bench_e6_ledger_integrity.cpp.o"
  "CMakeFiles/bench_e6_ledger_integrity.dir/bench_e6_ledger_integrity.cpp.o.d"
  "bench_e6_ledger_integrity"
  "bench_e6_ledger_integrity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_ledger_integrity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
