# Empty compiler generated dependencies file for bench_e3_constraint_verification.
# This may be replaced when dependencies are built.
