file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_dp_budget.dir/bench_e8_dp_budget.cpp.o"
  "CMakeFiles/bench_e8_dp_budget.dir/bench_e8_dp_budget.cpp.o.d"
  "bench_e8_dp_budget"
  "bench_e8_dp_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_dp_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
