# Empty dependencies file for bench_e8_dp_budget.
# This may be replaced when dependencies are built.
