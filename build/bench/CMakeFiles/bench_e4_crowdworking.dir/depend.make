# Empty dependencies file for bench_e4_crowdworking.
# This may be replaced when dependencies are built.
