file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_crowdworking.dir/bench_e4_crowdworking.cpp.o"
  "CMakeFiles/bench_e4_crowdworking.dir/bench_e4_crowdworking.cpp.o.d"
  "bench_e4_crowdworking"
  "bench_e4_crowdworking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_crowdworking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
