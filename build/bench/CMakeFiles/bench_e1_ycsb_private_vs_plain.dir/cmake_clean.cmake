file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_ycsb_private_vs_plain.dir/bench_e1_ycsb_private_vs_plain.cpp.o"
  "CMakeFiles/bench_e1_ycsb_private_vs_plain.dir/bench_e1_ycsb_private_vs_plain.cpp.o.d"
  "bench_e1_ycsb_private_vs_plain"
  "bench_e1_ycsb_private_vs_plain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_ycsb_private_vs_plain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
