# Empty compiler generated dependencies file for bench_e1_ycsb_private_vs_plain.
# This may be replaced when dependencies are built.
