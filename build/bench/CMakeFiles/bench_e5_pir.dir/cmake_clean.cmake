file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_pir.dir/bench_e5_pir.cpp.o"
  "CMakeFiles/bench_e5_pir.dir/bench_e5_pir.cpp.o.d"
  "bench_e5_pir"
  "bench_e5_pir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_pir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
