file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_consensus.dir/bench_e2_consensus.cpp.o"
  "CMakeFiles/bench_e2_consensus.dir/bench_e2_consensus.cpp.o.d"
  "bench_e2_consensus"
  "bench_e2_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
