# Empty dependencies file for bench_e2_consensus.
# This may be replaced when dependencies are built.
