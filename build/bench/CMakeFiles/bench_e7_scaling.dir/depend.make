# Empty dependencies file for bench_e7_scaling.
# This may be replaced when dependencies are built.
