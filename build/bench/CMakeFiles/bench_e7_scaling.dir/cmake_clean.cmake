file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_scaling.dir/bench_e7_scaling.cpp.o"
  "CMakeFiles/bench_e7_scaling.dir/bench_e7_scaling.cpp.o.d"
  "bench_e7_scaling"
  "bench_e7_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
