file(REMOVE_RECURSE
  "CMakeFiles/crowdworking.dir/crowdworking.cpp.o"
  "CMakeFiles/crowdworking.dir/crowdworking.cpp.o.d"
  "crowdworking"
  "crowdworking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdworking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
