# Empty compiler generated dependencies file for crowdworking.
# This may be replaced when dependencies are built.
