# Empty dependencies file for auditor_tour.
# This may be replaced when dependencies are built.
