file(REMOVE_RECURSE
  "CMakeFiles/auditor_tour.dir/auditor_tour.cpp.o"
  "CMakeFiles/auditor_tour.dir/auditor_tour.cpp.o.d"
  "auditor_tour"
  "auditor_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auditor_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
