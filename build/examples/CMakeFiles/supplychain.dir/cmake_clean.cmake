file(REMOVE_RECURSE
  "CMakeFiles/supplychain.dir/supplychain.cpp.o"
  "CMakeFiles/supplychain.dir/supplychain.cpp.o.d"
  "supplychain"
  "supplychain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supplychain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
