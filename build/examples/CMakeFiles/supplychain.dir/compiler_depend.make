# Empty compiler generated dependencies file for supplychain.
# This may be replaced when dependencies are built.
