# Empty compiler generated dependencies file for sustainability.
# This may be replaced when dependencies are built.
