file(REMOVE_RECURSE
  "CMakeFiles/sustainability.dir/sustainability.cpp.o"
  "CMakeFiles/sustainability.dir/sustainability.cpp.o.d"
  "sustainability"
  "sustainability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sustainability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
