tests/CMakeFiles/prever_tests.dir/mpc_test.cc.o: \
 /root/repo/tests/mpc_test.cc /usr/include/stdc-predef.h \
 /root/miniconda/include/gtest/gtest.h /root/repo/src/mpc/compare.h \
 /usr/include/c++/12/cstdint /usr/include/c++/12/vector \
 /root/repo/src/common/rng.h /root/repo/src/common/bytes.h \
 /usr/include/c++/12/string /usr/include/c++/12/string_view \
 /root/repo/src/common/status.h /usr/include/c++/12/utility \
 /usr/include/c++/12/variant /root/repo/src/mpc/secure_agg.h
