tests/CMakeFiles/prever_tests.dir/montgomery_test.cc.o: \
 /root/repo/tests/montgomery_test.cc /usr/include/stdc-predef.h \
 /root/repo/src/crypto/montgomery.h /usr/include/c++/12/vector \
 /root/repo/src/common/status.h /usr/include/c++/12/string \
 /usr/include/c++/12/utility /usr/include/c++/12/variant \
 /root/repo/src/crypto/bigint.h /usr/include/c++/12/cstdint \
 /usr/include/c++/12/string_view /root/repo/src/common/bytes.h \
 /root/miniconda/include/gtest/gtest.h /root/repo/src/common/rng.h \
 /root/repo/src/crypto/drbg.h /root/repo/src/crypto/prime.h
