tests/CMakeFiles/prever_tests.dir/storage_test.cc.o: \
 /root/repo/tests/storage_test.cc /usr/include/stdc-predef.h \
 /root/miniconda/include/gtest/gtest.h /usr/include/c++/12/cstdio \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/stdio.h /usr/include/c++/12/string \
 /root/repo/src/storage/database.h /usr/include/c++/12/map \
 /usr/include/c++/12/memory /root/repo/src/common/status.h \
 /usr/include/c++/12/utility /usr/include/c++/12/variant \
 /root/repo/src/storage/table.h /usr/include/c++/12/functional \
 /root/repo/src/storage/schema.h /usr/include/c++/12/vector \
 /root/repo/src/storage/value.h /usr/include/c++/12/cstdint \
 /root/repo/src/common/bytes.h /usr/include/c++/12/string_view \
 /root/repo/src/common/serial.h /root/repo/src/common/sim_clock.h \
 /root/repo/src/storage/wal.h
