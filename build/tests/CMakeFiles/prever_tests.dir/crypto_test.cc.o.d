tests/CMakeFiles/prever_tests.dir/crypto_test.cc.o: \
 /root/repo/tests/crypto_test.cc /usr/include/stdc-predef.h \
 /root/miniconda/include/gtest/gtest.h /root/repo/src/common/rng.h \
 /usr/include/c++/12/cstdint /root/repo/src/common/bytes.h \
 /usr/include/c++/12/string /usr/include/c++/12/string_view \
 /usr/include/c++/12/vector /root/repo/src/common/status.h \
 /usr/include/c++/12/utility /usr/include/c++/12/variant \
 /root/repo/src/crypto/drbg.h /root/repo/src/crypto/bigint.h \
 /root/repo/src/crypto/hmac.h /root/repo/src/crypto/paillier.h \
 /root/repo/src/crypto/pedersen.h /root/repo/src/crypto/prime.h \
 /root/repo/src/crypto/rsa.h /root/repo/src/crypto/sha256.h \
 /root/repo/src/crypto/shamir.h
