tests/CMakeFiles/prever_tests.dir/demarcation_test.cc.o: \
 /root/repo/tests/demarcation_test.cc /usr/include/stdc-predef.h \
 /root/repo/src/core/demarcation_engine.h /usr/include/c++/12/map \
 /usr/include/c++/12/string /usr/include/c++/12/vector \
 /root/repo/src/constraint/constraint.h /root/repo/src/common/status.h \
 /usr/include/c++/12/utility /usr/include/c++/12/variant \
 /root/repo/src/constraint/ast.h /usr/include/c++/12/memory \
 /root/repo/src/common/sim_clock.h /usr/include/c++/12/cstdint \
 /root/repo/src/storage/value.h /root/repo/src/common/bytes.h \
 /usr/include/c++/12/string_view /root/repo/src/common/serial.h \
 /root/repo/src/constraint/eval.h /root/repo/src/storage/database.h \
 /root/repo/src/storage/table.h /usr/include/c++/12/functional \
 /root/repo/src/storage/schema.h /root/repo/src/storage/wal.h \
 /usr/include/c++/12/cstdio \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/stdio.h /root/repo/src/constraint/linear.h \
 /root/repo/src/core/engine.h /root/repo/src/core/update.h \
 /root/repo/src/core/federated_mpc_engine.h \
 /root/repo/src/core/ordering.h /root/repo/src/consensus/pbft.h \
 /usr/include/c++/12/set /root/repo/src/net/sim_net.h \
 /usr/include/c++/12/queue /usr/include/c++/12/deque \
 /usr/include/c++/12/bits/stl_algobase.h \
 /usr/include/c++/12/bits/allocator.h \
 /usr/include/c++/12/bits/stl_construct.h \
 /usr/include/c++/12/bits/stl_uninitialized.h \
 /usr/include/c++/12/bits/stl_deque.h \
 /usr/include/c++/12/bits/concept_check.h \
 /usr/include/c++/12/bits/stl_iterator_base_types.h \
 /usr/include/c++/12/bits/stl_iterator_base_funcs.h \
 /usr/include/c++/12/initializer_list /usr/include/c++/12/compare \
 /usr/include/c++/12/debug/assertions.h \
 /usr/include/c++/12/bits/refwrap.h \
 /usr/include/c++/12/bits/range_access.h \
 /usr/include/c++/12/bits/deque.tcc /usr/include/c++/12/bits/stl_heap.h \
 /usr/include/c++/12/bits/stl_function.h \
 /usr/include/c++/12/bits/stl_queue.h /usr/include/c++/12/debug/debug.h \
 /usr/include/c++/12/bits/uses_allocator.h /root/repo/src/common/rng.h \
 /root/repo/src/consensus/raft.h /root/repo/src/ledger/ledger_db.h \
 /root/repo/src/crypto/merkle.h /root/repo/src/mpc/compare.h \
 /root/repo/src/mpc/secure_agg.h /root/miniconda/include/gtest/gtest.h
