# Empty dependencies file for prever_tests.
# This may be replaced when dependencies are built.
