tests/CMakeFiles/prever_tests.dir/fault_injection_test.cc.o: \
 /root/repo/tests/fault_injection_test.cc /usr/include/stdc-predef.h \
 /root/miniconda/include/gtest/gtest.h /root/repo/src/consensus/pbft.h \
 /usr/include/c++/12/functional /usr/include/c++/12/map \
 /usr/include/c++/12/memory /usr/include/c++/12/set \
 /usr/include/c++/12/vector /root/repo/src/common/bytes.h \
 /usr/include/c++/12/cstdint /usr/include/c++/12/string \
 /usr/include/c++/12/string_view /root/repo/src/common/status.h \
 /usr/include/c++/12/utility /usr/include/c++/12/variant \
 /root/repo/src/net/sim_net.h /usr/include/c++/12/queue \
 /usr/include/c++/12/deque /usr/include/c++/12/bits/stl_algobase.h \
 /usr/include/c++/12/bits/allocator.h \
 /usr/include/c++/12/bits/stl_construct.h \
 /usr/include/c++/12/bits/stl_uninitialized.h \
 /usr/include/c++/12/bits/stl_deque.h \
 /usr/include/c++/12/bits/concept_check.h \
 /usr/include/c++/12/bits/stl_iterator_base_types.h \
 /usr/include/c++/12/bits/stl_iterator_base_funcs.h \
 /usr/include/c++/12/initializer_list /usr/include/c++/12/compare \
 /usr/include/c++/12/debug/assertions.h \
 /usr/include/c++/12/bits/refwrap.h \
 /usr/include/c++/12/bits/range_access.h \
 /usr/include/c++/12/bits/deque.tcc /usr/include/c++/12/bits/stl_heap.h \
 /usr/include/c++/12/bits/stl_function.h \
 /usr/include/c++/12/bits/stl_queue.h /usr/include/c++/12/debug/debug.h \
 /usr/include/c++/12/bits/uses_allocator.h /root/repo/src/common/rng.h \
 /root/repo/src/common/sim_clock.h /root/repo/src/consensus/raft.h \
 /root/repo/src/constraint/parser.h /root/repo/src/constraint/ast.h \
 /root/repo/src/storage/value.h /root/repo/src/common/serial.h \
 /root/repo/src/storage/wal.h /usr/include/c++/12/cstdio \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/stdio.h
