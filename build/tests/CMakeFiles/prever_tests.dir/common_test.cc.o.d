tests/CMakeFiles/prever_tests.dir/common_test.cc.o: \
 /root/repo/tests/common_test.cc /usr/include/stdc-predef.h \
 /root/miniconda/include/gtest/gtest.h /usr/include/c++/12/set \
 /root/repo/src/common/bytes.h /usr/include/c++/12/cstdint \
 /usr/include/c++/12/string /usr/include/c++/12/string_view \
 /usr/include/c++/12/vector /root/repo/src/common/status.h \
 /usr/include/c++/12/utility /usr/include/c++/12/variant \
 /root/repo/src/common/rng.h /root/repo/src/common/serial.h \
 /root/repo/src/common/sim_clock.h
