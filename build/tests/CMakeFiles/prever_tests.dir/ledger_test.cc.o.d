tests/CMakeFiles/prever_tests.dir/ledger_test.cc.o: \
 /root/repo/tests/ledger_test.cc /usr/include/stdc-predef.h \
 /root/miniconda/include/gtest/gtest.h /root/repo/src/ledger/block.h \
 /usr/include/c++/12/vector /root/repo/src/common/bytes.h \
 /usr/include/c++/12/cstdint /usr/include/c++/12/string \
 /usr/include/c++/12/string_view /root/repo/src/common/status.h \
 /usr/include/c++/12/utility /usr/include/c++/12/variant \
 /root/repo/src/common/sim_clock.h /root/repo/src/ledger/ledger_db.h \
 /root/repo/src/crypto/merkle.h
