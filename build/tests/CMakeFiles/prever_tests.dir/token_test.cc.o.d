tests/CMakeFiles/prever_tests.dir/token_test.cc.o: \
 /root/repo/tests/token_test.cc /usr/include/stdc-predef.h \
 /root/repo/src/token/token.h /usr/include/c++/12/map \
 /usr/include/c++/12/set /usr/include/c++/12/string \
 /usr/include/c++/12/vector /root/repo/src/common/bytes.h \
 /usr/include/c++/12/cstdint /usr/include/c++/12/string_view \
 /root/repo/src/common/status.h /usr/include/c++/12/utility \
 /usr/include/c++/12/variant /root/repo/src/common/sim_clock.h \
 /root/repo/src/crypto/drbg.h /root/repo/src/crypto/bigint.h \
 /root/repo/src/crypto/rsa.h /root/repo/src/ledger/ledger_db.h \
 /root/repo/src/crypto/merkle.h /root/miniconda/include/gtest/gtest.h
