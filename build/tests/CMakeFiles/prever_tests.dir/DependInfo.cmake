
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bigint_test.cc" "tests/CMakeFiles/prever_tests.dir/bigint_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/bigint_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/bigint_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/bigint_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx.cxx" "tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx.gch" "gcc" "tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx.gch.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx.gch" "gcc" "tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx.gch.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/prever_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/common_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/consensus_test.cc" "tests/CMakeFiles/prever_tests.dir/consensus_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/consensus_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/consensus_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/consensus_test.cc.o.d"
  "/root/repo/tests/constraint_test.cc" "tests/CMakeFiles/prever_tests.dir/constraint_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/constraint_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/constraint_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/constraint_test.cc.o.d"
  "/root/repo/tests/core_extensions_test.cc" "tests/CMakeFiles/prever_tests.dir/core_extensions_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/core_extensions_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/core_extensions_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/core_extensions_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/prever_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/core_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/crypto_test.cc" "tests/CMakeFiles/prever_tests.dir/crypto_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/crypto_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/crypto_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/crypto_test.cc.o.d"
  "/root/repo/tests/demarcation_test.cc" "tests/CMakeFiles/prever_tests.dir/demarcation_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/demarcation_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/demarcation_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/demarcation_test.cc.o.d"
  "/root/repo/tests/elgamal_test.cc" "tests/CMakeFiles/prever_tests.dir/elgamal_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/elgamal_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/elgamal_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/elgamal_test.cc.o.d"
  "/root/repo/tests/fault_injection_test.cc" "tests/CMakeFiles/prever_tests.dir/fault_injection_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/fault_injection_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/fault_injection_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/fault_injection_test.cc.o.d"
  "/root/repo/tests/federated_threshold_test.cc" "tests/CMakeFiles/prever_tests.dir/federated_threshold_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/federated_threshold_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/federated_threshold_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/federated_threshold_test.cc.o.d"
  "/root/repo/tests/ledger_test.cc" "tests/CMakeFiles/prever_tests.dir/ledger_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/ledger_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/ledger_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/ledger_test.cc.o.d"
  "/root/repo/tests/merkle_test.cc" "tests/CMakeFiles/prever_tests.dir/merkle_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/merkle_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/merkle_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/merkle_test.cc.o.d"
  "/root/repo/tests/montgomery_test.cc" "tests/CMakeFiles/prever_tests.dir/montgomery_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/montgomery_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/montgomery_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/montgomery_test.cc.o.d"
  "/root/repo/tests/mpc_test.cc" "tests/CMakeFiles/prever_tests.dir/mpc_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/mpc_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/mpc_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/mpc_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/prever_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/net_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/pattern_shaper_test.cc" "tests/CMakeFiles/prever_tests.dir/pattern_shaper_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/pattern_shaper_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/pattern_shaper_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/pattern_shaper_test.cc.o.d"
  "/root/repo/tests/pir_test.cc" "tests/CMakeFiles/prever_tests.dir/pir_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/pir_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/pir_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/pir_test.cc.o.d"
  "/root/repo/tests/scenario_test.cc" "tests/CMakeFiles/prever_tests.dir/scenario_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/scenario_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/scenario_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/scenario_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/prever_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/storage_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/token_test.cc" "tests/CMakeFiles/prever_tests.dir/token_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/token_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/token_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/token_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/prever_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/workload_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/workload_test.cc.o.d"
  "/root/repo/tests/zkp_test.cc" "tests/CMakeFiles/prever_tests.dir/zkp_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/zkp_test.cc.o.d"
  "/root/repo/build/tests/CMakeFiles/prever_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/prever_tests.dir/zkp_test.cc.o" "gcc" "tests/CMakeFiles/prever_tests.dir/zkp_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/prever_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/prever_core.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/prever_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/prever_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/prever_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/pir/CMakeFiles/prever_pir.dir/DependInfo.cmake"
  "/root/repo/build/src/token/CMakeFiles/prever_token.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/prever_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/prever_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/prever_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/prever_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prever_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
