#!/usr/bin/env bash
# Full check: configure with ASan+UBSan, build, run every test, then
# smoke-run the benches and validate their metrics JSON output.
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DPREVER_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
# The crypto kernel differential tests are the gate for the accelerated
# Montgomery / fixed-base / CRT paths: run the binary explicitly so a ctest
# filter or discovery hiccup can never silently skip them in the sanitizer
# configuration.
"$BUILD_DIR"/tests/crypto_diff_test
scripts/bench_smoke.sh "$BUILD_DIR"
