#!/usr/bin/env bash
# Full check: configure with ASan+UBSan, build, run every test, then
# smoke-run the benches and validate their metrics JSON output.
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DPREVER_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
# The crypto kernel differential tests are the gate for the accelerated
# Montgomery / fixed-base / CRT paths: run the binary explicitly so a ctest
# filter or discovery hiccup can never silently skip them in the sanitizer
# configuration.
"$BUILD_DIR"/tests/crypto_diff_test
# Same rule for the compiled-constraint differential fuzz: the bytecode
# evaluator and the incremental aggregate cache must match the interpreter
# over the seeded sweep (window boundaries, absent fields, int64 overflow)
# with ASan+UBSan watching both paths.
"$BUILD_DIR"/tests/constraint_compiled_diff_test
# Recovery smoke: the checkpoint/journal unit tests and the randomized
# crash-point sweep run explicitly under ASan+UBSan. The recovery layer is
# raw FILE* I/O and byte-level frame parsing — exactly where the sanitizers
# earn their keep — and the sweep's damage injection (torn WAL tails,
# corrupted checkpoint finals) exercises every quarantine/fallback branch.
"$BUILD_DIR"/tests/prever_tests --gtest_filter='RecoveryTest.*'
"$BUILD_DIR"/tests/sim_consensus_test \
    --gtest_filter='*CrashRecovery*:*BoundedByCheckpointInterval*'
scripts/bench_smoke.sh "$BUILD_DIR"

# Causal-trace smoke: a traced E2 run must export a Chrome trace whose span
# trees reconstruct fully connected (every parent present — trace_analyze
# --strict fails on orphans), and the analyzer must produce its per-stage
# critical-path attribution from it. bench_smoke.sh already validated the
# JSON schema; this stage gates the analysis tool itself.
TRACE_FILE="$(mktemp)"
"$BUILD_DIR"/bench/bench_e2_consensus --trace="$TRACE_FILE" \
    --benchmark_filter='BM_TracedPlaintextRaft' >/dev/null 2>&1
if [ -s "$TRACE_FILE" ]; then
  "$BUILD_DIR"/tools/trace_analyze --strict "$TRACE_FILE"
else
  echo "check: trace smoke skipped (PREVER_TRACING=OFF build)" >&2
fi
rm -f "$TRACE_FILE"

# Mutation kill matrix: compiles the verification layer with the runtime
# mutation harness in its own tree and requires >= 95% of the registered
# mutants to be killed, with every survivor carrying a vetted rationale.
scripts/mutation_smoke.sh "${MUTATION_BUILD_DIR:-build-mutation}"

# ThreadSanitizer pass over the components that actually share state across
# threads (the thread pool, the lock-based observability registry, the
# ordering layer whose histograms are recorded from pool workers in the
# engine batch paths, the compiled verifier's shared-lock aggregate cache,
# and the recovery layer's concurrent state-transfer rebuild). TSan is
# incompatible with ASan, hence its own tree.
TSAN_DIR="${TSAN_BUILD_DIR:-build-tsan}"
cmake -B "$TSAN_DIR" -S . -DPREVER_SANITIZE=thread
cmake --build "$TSAN_DIR" -j "$(nproc)" --target prever_tests
"$TSAN_DIR"/tests/prever_tests \
    --gtest_filter='ThreadPool*:Obs*:*Ordering*:*GroupCommit*:*Pipelined*:*AggCacheConcurrency*:*ConcurrentStateTransfer*'
