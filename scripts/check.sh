#!/usr/bin/env bash
# Full check: configure with ASan+UBSan, build, run every test.
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DPREVER_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
