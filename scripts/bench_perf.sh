#!/usr/bin/env bash
# Runs the crypto-heavy benches (E1 YCSB engines, E3 verification costs,
# E5 PIR) and appends one labeled record to BENCH_crypto.json capturing
#   - every benchmark case's wall time and rate counters (ops/s etc.), and
#   - the p50/p99 phase latencies from each bench's PREVER_METRICS_JSON blob
# so before/after comparisons for crypto changes live in-repo, next to the
# code they measure.
#
# Usage: scripts/bench_perf.sh <label> [build-dir]   (default: build)
#   e.g. scripts/bench_perf.sh "after-montgomery-64bit"
set -euo pipefail

cd "$(dirname "$0")/.."
LABEL="${1:?usage: scripts/bench_perf.sh <label> [build-dir]}"
BUILD_DIR="${2:-build}"
OUT=BENCH_crypto.json

BENCHES=(
  bench_e1_ycsb_private_vs_plain
  bench_e3_constraint_verification
  bench_e5_pir
)

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for bench in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$bench"
  if [ ! -x "$bin" ]; then
    echo "bench_perf: $bin not found (build first)" >&2
    exit 1
  fi
  echo "bench_perf: running $bench ..." >&2
  "$bin" --benchmark_out="$TMP/$bench.json" --benchmark_out_format=json \
      > "$TMP/$bench.out" 2>/dev/null
done

python3 - "$LABEL" "$OUT" "$TMP" "${BENCHES[@]}" <<'EOF'
import json, os, sys

sys.path.insert(0, "scripts/lib")
from bench_append import append_record, load_benchmark_cases, stamp

label, out_path, tmp = sys.argv[1], sys.argv[2], sys.argv[3]
benches = sys.argv[4:]

record = stamp({"benches": {}}, label)

for bench in benches:
    # Rate counters (ops/s, updates/s) and plain counters surface as extra
    # numeric fields in the per-benchmark object.
    cases = load_benchmark_cases(
        os.path.join(tmp, bench + ".json"),
        extra_keys=("accepted", "threads", "mpc_msgs", "tokens"))

    phases = []
    with open(os.path.join(tmp, bench + ".out")) as f:
        metrics_line = None
        for line in f:
            if line.startswith("PREVER_METRICS_JSON "):
                metrics_line = line[len("PREVER_METRICS_JSON "):]
    if metrics_line:
        doc = json.loads(metrics_line)
        for h in doc["metrics"]["histograms"]:
            if h["count"] == 0:
                continue
            phases.append({
                "name": h["name"],
                "labels": h.get("labels", {}),
                "count": h["count"],
                "p50_us": round(h["p50"] / 1e3, 1),
                "p99_us": round(h["p99"] / 1e3, 1),
            })

    bench_id = bench.split("_")[1]  # bench_e1_... -> e1
    record["benches"][bench_id] = {"cases": cases, "phases": phases}

total = append_record(out_path, record)
print(f"bench_perf: appended record '{label}' to {out_path} "
      f"({total} records total)")
EOF

# ---------------------------------------------------------------- consensus
# E2 (stop-and-wait baselines + pipelined batch x window x replica sweeps)
# and the E7 ordered-burst pair feed BENCH_consensus.json. Each pipelined
# case records committed payloads per simulated second plus p50/p99
# per-payload commit latency; speedup_vs_stop_and_wait is derived against
# the blocking BM_Raft/BM_Pbft row with the same replica count.
CONS_OUT=BENCH_consensus.json

echo "bench_perf: running bench_e2_consensus ..." >&2
"$BUILD_DIR/bench/bench_e2_consensus" \
    --benchmark_out="$TMP/e2.json" --benchmark_out_format=json \
    > "$TMP/e2.out" 2>/dev/null
echo "bench_perf: running bench_e7_scaling (ordered-burst) ..." >&2
"$BUILD_DIR/bench/bench_e7_scaling" --benchmark_filter='OrderedBurst' \
    --benchmark_out="$TMP/e7.json" --benchmark_out_format=json \
    > "$TMP/e7.out" 2>/dev/null

python3 - "$LABEL" "$CONS_OUT" "$TMP" <<'EOF'
import os, sys

sys.path.insert(0, "scripts/lib")
from bench_append import append_record, load_benchmark_cases, stamp

label, out_path, tmp = sys.argv[1], sys.argv[2], sys.argv[3]

KEEP = ("sim_commits_per_s", "agg_sim_commits_per_s", "sim_payloads_per_s",
        "sim_latency_p50_ms", "sim_latency_p90_ms", "sim_latency_p99_ms",
        "sim_latency_p999_ms", "batch", "window", "replicas", "burst",
        "net_msgs")

record = stamp({}, label)

cases = load_benchmark_cases(os.path.join(tmp, "e2.json"), keep_keys=KEEP)
cases.update(load_benchmark_cases(os.path.join(tmp, "e7.json"),
                                  keep_keys=KEEP))

# Stop-and-wait throughput per (proto, replicas) from the blocking rows.
baselines = {}
for name, c in cases.items():
    for proto, prefix in (("raft", "BM_Raft/"), ("pbft", "BM_Pbft/")):
        if name.startswith(prefix) and "sim_commits_per_s" in c:
            n = int(name[len(prefix):].split("/")[0])
            baselines[(proto, n)] = c["sim_commits_per_s"]
for name, c in cases.items():
    proto = ("raft" if name.startswith("BM_RaftPipelined/")
             else "pbft" if name.startswith("BM_PbftPipelined/") else None)
    if proto is None or "sim_commits_per_s" not in c:
        continue
    base = baselines.get((proto, int(c.get("replicas", 0))))
    if base:
        c["speedup_vs_stop_and_wait"] = round(c["sim_commits_per_s"] / base, 2)

record["cases"] = cases

total = append_record(out_path, record)

claw = [f"{n}: {c['speedup_vs_stop_and_wait']}x"
        for n, c in sorted(cases.items())
        if "speedup_vs_stop_and_wait" in c]
print(f"bench_perf: appended record '{label}' to {out_path} "
      f"({total} records total)")
for line in claw:
    print("  " + line)
EOF

# ------------------------------------------------------------------ tracing
# BENCH_trace.json: tracing-off vs tracing-on throughput on the traced E2
# case (plaintext engine over pipelined Raft), plus the disabled-path span
# cost. This is the observability tax ledger: the "on" run samples every
# transaction (~12 events each), so overhead_pct is the worst case — real
# deployments sample 1-in-N.
TRACE_OUT=BENCH_trace.json

echo "bench_perf: running traced-E2 off/on comparison ..." >&2
"$BUILD_DIR/bench/bench_e2_consensus" \
    --benchmark_filter='BM_TracedPlaintextRaft|BM_TraceDisabledOverhead' \
    --benchmark_out="$TMP/trace_off.json" --benchmark_out_format=json \
    >/dev/null 2>&1
"$BUILD_DIR/bench/bench_e2_consensus" --trace="$TMP/trace_chrome.json" \
    --benchmark_filter='BM_TracedPlaintextRaft' \
    --benchmark_out="$TMP/trace_on.json" --benchmark_out_format=json \
    >/dev/null 2>&1

python3 - "$LABEL" "$TRACE_OUT" "$TMP" <<'EOF'
import json, os, sys

sys.path.insert(0, "scripts/lib")
from bench_append import append_record, stamp

label, out_path, tmp = sys.argv[1], sys.argv[2], sys.argv[3]

def case(path, name):
    with open(os.path.join(tmp, path)) as f:
        doc = json.load(f)
    for b in doc.get("benchmarks", []):
        if b.get("run_type") != "aggregate" and b["name"].startswith(name):
            return b
    return None

off = case("trace_off.json", "BM_TracedPlaintextRaft")
on = case("trace_on.json", "BM_TracedPlaintextRaft")
overhead = case("trace_off.json", "BM_TraceDisabledOverhead")

record = stamp({}, label)

if off and on and "ops/s" in off and "ops/s" in on:
    record["tracing_off_ops_per_s"] = round(off["ops/s"], 2)
    record["tracing_on_ops_per_s"] = round(on["ops/s"], 2)
    if on["ops/s"] > 0:
        record["overhead_pct"] = round(
            100.0 * (off["ops/s"] - on["ops/s"]) / off["ops/s"], 2)
if overhead and "ns_per_span" in overhead:
    record["disabled_ns_per_span"] = round(overhead["ns_per_span"], 3)

# Spans actually exported by the "on" run, from the Chrome file metadata.
chrome = os.path.join(tmp, "trace_chrome.json")
if os.path.exists(chrome) and os.path.getsize(chrome) > 0:
    meta = json.load(open(chrome)).get("prever", {})
    for key in ("traces_sampled", "spans_exported"):
        if key in meta:
            record[key] = meta[key]

records = []
if os.path.exists(out_path):
    with open(out_path) as f:
        records = json.load(f)
records.append(record)
with open(out_path, "w") as f:
    json.dump(records, f, indent=2)
    f.write("\n")
print(f"bench_perf: appended record '{label}' to {out_path} "
      f"({len(records)} records total)")
if "overhead_pct" in record:
    print(f"  tracing overhead: {record['overhead_pct']}% "
          f"(off {record['tracing_off_ops_per_s']}/s, "
          f"on {record['tracing_on_ops_per_s']}/s); "
          f"disabled span {record.get('disabled_ns_per_span', '?')} ns")
EOF

# ------------------------------------------------------------------- verify
# BENCH_verify.json: interpreter (tree-walking re-scan, O(rows) per eval)
# vs compiled verification (bytecode + incremental aggregate cache) on the
# same E3 windowed-SUM constraint. speedup_vs_interpreter compares the
# interpreter eval at each table size against the compiled steady-state
# verify — the apples-to-apples "one verification" cost. The commit-cycle
# rows additionally carry the cache counters that prove the O(1) delta path
# ran (agg_rebuilds stays at 1 while iterations climb into the thousands).
VERIFY_OUT=BENCH_verify.json

echo "bench_perf: running E3 interpreter-vs-compiled comparison ..." >&2
"$BUILD_DIR/bench/bench_e3_constraint_verification" \
    --benchmark_filter='BM_PlaintextEval|BM_CompiledVerify' \
    --benchmark_out="$TMP/verify.json" --benchmark_out_format=json \
    > "$TMP/verify.out" 2>/dev/null

python3 - "$LABEL" "$VERIFY_OUT" "$TMP" <<'EOF'
import os, sys

sys.path.insert(0, "scripts/lib")
from bench_append import append_record, load_benchmark_cases, stamp

label, out_path, tmp = sys.argv[1], sys.argv[2], sys.argv[3]

cases = load_benchmark_cases(
    os.path.join(tmp, "verify.json"),
    extra_keys=("agg_cache_hits", "agg_rebuilds", "agg_delta_applies",
                "compiled", "fast_path"))

# Interpreter wall time per table size, from the tree-walking baseline.
interp_ms = {}
for name, c in cases.items():
    if name.startswith("BM_PlaintextEval/"):
        interp_ms[name.split("/")[1]] = c["real_time_ms"]
for name, c in cases.items():
    if not (name.startswith("BM_CompiledVerifySteady/")
            or name.startswith("BM_CompiledVerifyCommit/")):
        continue
    base = interp_ms.get(name.split("/")[1])
    if base and c["real_time_ms"] > 0:
        c["speedup_vs_interpreter"] = round(base / c["real_time_ms"], 1)

record = stamp({"cases": cases}, label)
total = append_record(out_path, record)
print(f"bench_perf: appended record '{label}' to {out_path} "
      f"({total} records total)")
for name, c in sorted(cases.items()):
    if "speedup_vs_interpreter" in c:
        print(f"  {name}: {c['speedup_vs_interpreter']}x vs interpreter")
EOF
