#!/usr/bin/env bash
# Smoke-runs every E* bench briefly and validates the machine-readable
# metrics blob each one emits (the PREVER_METRICS_JSON line): it must parse,
# carry the expected schema, and contain at least one histogram with data.
# Usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"

if [ ! -d "$BENCH_DIR" ]; then
  echo "bench_smoke: $BENCH_DIR not found (build first)" >&2
  exit 1
fi

PYTHON="$(command -v python3 || true)"
if [ -z "$PYTHON" ]; then
  echo "bench_smoke: python3 not found; skipping JSON validation" >&2
  exit 0
fi

# Narrow filters keep each bench around a second: one cheap case per binary
# is enough to exercise the instrumentation path and the emit-at-exit hook.
declare -A FILTERS=(
  [bench_e1_ycsb_private_vs_plain]='BM_Plaintext$'
  [bench_e2_consensus]='BM_Raft/3'
  [bench_e3_constraint_verification]='BM_PlaintextEval/100'
  [bench_e4_crowdworking]='BM_DemarcationTrace/2'
  [bench_e5_pir]='BM_XorPirFetch/256'
  [bench_e6_ledger_integrity]='BM_Append'
  [bench_e7_scaling]='BM_PlaintextDataSize/1000'
  [bench_e8_dp_budget]='BM_DpRefusePolicy/100'
)

fail=0
for bench in "${!FILTERS[@]}"; do
  bin="$BENCH_DIR/$bench"
  if [ ! -x "$bin" ]; then
    echo "bench_smoke: FAIL $bench (binary missing)" >&2
    fail=1
    continue
  fi
  out="$("$bin" --benchmark_filter="${FILTERS[$bench]}" \
        --benchmark_min_time=0.01s 2>/dev/null)" || {
    echo "bench_smoke: FAIL $bench (non-zero exit)" >&2
    fail=1
    continue
  }
  line="$(printf '%s\n' "$out" | grep '^PREVER_METRICS_JSON ' | tail -1 || true)"
  if [ -z "$line" ]; then
    echo "bench_smoke: FAIL $bench (no PREVER_METRICS_JSON line)" >&2
    fail=1
    continue
  fi
  if ! printf '%s\n' "${line#PREVER_METRICS_JSON }" | "$PYTHON" -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["schema"] == "prever.metrics.v1", "bad schema"
assert doc["bench"], "missing bench id"
m = doc["metrics"]
for key in ("counters", "gauges", "histograms"):
    assert key in m, f"missing {key} section"
hists = [h for h in m["histograms"] if h["count"] > 0]
assert hists, "no histogram recorded any samples"
for h in hists:
    for key in ("name", "count", "sum", "min", "max", "p50", "p99"):
        assert key in h, f"histogram missing {key}"
'; then
    echo "bench_smoke: FAIL $bench (metrics JSON invalid)" >&2
    fail=1
    continue
  fi
  echo "bench_smoke: OK $bench"
done

# Pipelined-ordering sweep counters: one cheap pipelined case must report
# the batch/window/replica point it measured plus simulated throughput and
# per-payload latency percentiles (what bench_perf.sh aggregates into
# BENCH_consensus.json).
out_json="$(mktemp)"
if "$BENCH_DIR/bench_e2_consensus" \
      --benchmark_filter='BM_RaftPipelined/16/4/5' \
      --benchmark_out="$out_json" --benchmark_out_format=json \
      >/dev/null 2>&1 && "$PYTHON" - "$out_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
cases = [b for b in doc.get("benchmarks", [])
         if b.get("run_type") != "aggregate"]
assert cases, "no pipelined case ran"
for b in cases:
    for key in ("sim_commits_per_s", "sim_latency_p50_ms",
                "sim_latency_p99_ms", "batch", "window", "replicas"):
        assert key in b, f"{b['name']} missing counter {key}"
    assert b["sim_commits_per_s"] > 0, "no simulated throughput measured"
EOF
then
  echo "bench_smoke: OK pipelined sweep counters"
else
  echo "bench_smoke: FAIL pipelined sweep counters" >&2
  fail=1
fi
rm -f "$out_json"

# BENCH_consensus.json (written by bench_perf.sh) must stay parseable, and
# every pipelined case in it must carry throughput + latency + the derived
# stop-and-wait speedup.
if [ -f BENCH_consensus.json ]; then
  if "$PYTHON" - <<'EOF'
import json
records = json.load(open("BENCH_consensus.json"))
assert isinstance(records, list) and records, "no records"
for r in records:
    assert r.get("label") and "cases" in r, "record missing label/cases"
    for name, c in r["cases"].items():
        if name.startswith(("BM_RaftPipelined/", "BM_PbftPipelined/")):
            for key in ("sim_commits_per_s", "sim_latency_p50_ms",
                        "sim_latency_p99_ms", "speedup_vs_stop_and_wait"):
                assert key in c, f"{name} missing {key}"
        elif name.startswith("BM_OrderedBurst"):
            assert "sim_payloads_per_s" in c, f"{name} missing throughput"
EOF
  then
    echo "bench_smoke: OK BENCH_consensus.json"
  else
    echo "bench_smoke: FAIL BENCH_consensus.json invalid" >&2
    fail=1
  fi
fi

exit "$fail"
