#!/usr/bin/env bash
# Smoke-runs every E* bench briefly and validates the machine-readable
# metrics blob each one emits (the PREVER_METRICS_JSON line): it must parse,
# carry the expected schema, and contain at least one histogram with data.
# Usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"

if [ ! -d "$BENCH_DIR" ]; then
  echo "bench_smoke: $BENCH_DIR not found (build first)" >&2
  exit 1
fi

PYTHON="$(command -v python3 || true)"
if [ -z "$PYTHON" ]; then
  echo "bench_smoke: python3 not found; skipping JSON validation" >&2
  exit 0
fi

# Narrow filters keep each bench around a second: one cheap case per binary
# is enough to exercise the instrumentation path and the emit-at-exit hook.
declare -A FILTERS=(
  [bench_e1_ycsb_private_vs_plain]='BM_Plaintext$'
  [bench_e2_consensus]='BM_Raft/3'
  [bench_e3_constraint_verification]='BM_PlaintextEval/100'
  [bench_e4_crowdworking]='BM_DemarcationTrace/2'
  [bench_e5_pir]='BM_XorPirFetch/256'
  [bench_e6_ledger_integrity]='BM_Append'
  [bench_e7_scaling]='BM_PlaintextDataSize/1000'
  [bench_e8_dp_budget]='BM_DpRefusePolicy/100'
)

fail=0
for bench in "${!FILTERS[@]}"; do
  bin="$BENCH_DIR/$bench"
  if [ ! -x "$bin" ]; then
    echo "bench_smoke: FAIL $bench (binary missing)" >&2
    fail=1
    continue
  fi
  out="$("$bin" --benchmark_filter="${FILTERS[$bench]}" \
        --benchmark_min_time=0.01s 2>/dev/null)" || {
    echo "bench_smoke: FAIL $bench (non-zero exit)" >&2
    fail=1
    continue
  }
  line="$(printf '%s\n' "$out" | grep '^PREVER_METRICS_JSON ' | tail -1 || true)"
  if [ -z "$line" ]; then
    echo "bench_smoke: FAIL $bench (no PREVER_METRICS_JSON line)" >&2
    fail=1
    continue
  fi
  if ! printf '%s\n' "${line#PREVER_METRICS_JSON }" | "$PYTHON" -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["schema"] == "prever.metrics.v1", "bad schema"
assert doc["bench"], "missing bench id"
m = doc["metrics"]
for key in ("counters", "gauges", "histograms"):
    assert key in m, f"missing {key} section"
hists = [h for h in m["histograms"] if h["count"] > 0]
assert hists, "no histogram recorded any samples"
for h in hists:
    for key in ("name", "count", "sum", "min", "max", "p50", "p99"):
        assert key in h, f"histogram missing {key}"
'; then
    echo "bench_smoke: FAIL $bench (metrics JSON invalid)" >&2
    fail=1
    continue
  fi
  echo "bench_smoke: OK $bench"
done

# Pipelined-ordering sweep counters: one cheap pipelined case must report
# the batch/window/replica point it measured plus simulated throughput and
# per-payload latency percentiles (what bench_perf.sh aggregates into
# BENCH_consensus.json).
out_json="$(mktemp)"
if "$BENCH_DIR/bench_e2_consensus" \
      --benchmark_filter='BM_RaftPipelined/16/4/5' \
      --benchmark_out="$out_json" --benchmark_out_format=json \
      >/dev/null 2>&1 && "$PYTHON" - "$out_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
cases = [b for b in doc.get("benchmarks", [])
         if b.get("run_type") != "aggregate"]
assert cases, "no pipelined case ran"
for b in cases:
    for key in ("sim_commits_per_s", "sim_latency_p50_ms",
                "sim_latency_p99_ms", "batch", "window", "replicas"):
        assert key in b, f"{b['name']} missing counter {key}"
    assert b["sim_commits_per_s"] > 0, "no simulated throughput measured"
EOF
then
  echo "bench_smoke: OK pipelined sweep counters"
else
  echo "bench_smoke: FAIL pipelined sweep counters" >&2
  fail=1
fi
rm -f "$out_json"

# Crash-recovery scenario metrics: the end-to-end crash/recovery case must
# actually crash and recover replicas (recoveries > 0 over its seeds), and
# the recovery instrumentation recorded via src/obs/ must surface both as
# benchmark counters (recovery-time percentiles, checkpoint saves, journal
# replay, state-transfer volume) and in the PREVER_METRICS_JSON blob
# (prever_recovery_time_us histogram with samples + the recovery counters).
recovery_json="$(mktemp)"
recovery_out="$(mktemp)"
if "$BENCH_DIR/bench_e2_consensus" \
      --benchmark_filter='BM_CrashRecovery' \
      --benchmark_out="$recovery_json" --benchmark_out_format=json \
      >"$recovery_out" 2>/dev/null && "$PYTHON" - "$recovery_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
cases = [b for b in doc.get("benchmarks", [])
         if b.get("run_type") != "aggregate"]
assert cases, "crash-recovery case did not run"
b = cases[0]
for key in ("recoveries", "committed", "recovery_p50_us", "recovery_p99_us",
            "checkpoint_saves", "journal_entries_replayed",
            "state_transfer_bytes"):
    assert key in b, f"missing counter {key}"
assert b["recoveries"] > 0, "no replica ever crashed and recovered"
assert b["committed"] > 0, "no payloads committed through the scenario"
assert b["checkpoint_saves"] > 0, "no durable checkpoints were written"
assert b["recovery_p99_us"] >= b["recovery_p50_us"] >= 0, \
    "recovery-time percentiles are inconsistent"
print(f"recoveries={b['recoveries']:.0f} "
      f"p50={b['recovery_p50_us']:.0f}us p99={b['recovery_p99_us']:.0f}us "
      f"transfer={b['state_transfer_bytes']:.0f}B")
EOF
then
  line="$(grep '^PREVER_METRICS_JSON ' "$recovery_out" | tail -1 || true)"
  if [ -n "$line" ] && printf '%s\n' "${line#PREVER_METRICS_JSON }" \
      | "$PYTHON" -c '
import json, sys
doc = json.load(sys.stdin)
m = doc["metrics"]
counters = {c["name"] for c in m["counters"]}
for name in ("prever_recovery_checkpoint_saves",
             "prever_recovery_replayed_entries"):
    assert name in counters, f"{name} missing from metrics blob"
hists = {h["name"]: h for h in m["histograms"]}
rec = hists.get("prever_recovery_time_us")
assert rec is not None, "prever_recovery_time_us histogram missing"
assert rec["count"] > 0, "recovery-time histogram recorded no samples"
'; then
    echo "bench_smoke: OK crash-recovery metrics"
  else
    echo "bench_smoke: FAIL crash-recovery metrics blob" >&2
    fail=1
  fi
else
  echo "bench_smoke: FAIL crash-recovery scenario counters" >&2
  fail=1
fi
rm -f "$recovery_json" "$recovery_out"

# Causal-trace export: a traced E2 run (--trace=FILE on the plaintext-over-
# Raft case) must produce schema-valid Chrome trace JSON — only matched
# begin/end pairs exported as "X" events (drop counters live in the
# "prever" metadata), every non-root span's parent present in the same
# trace, per-lane sim timestamps monotone, one root per sampled trace, and
# the full submit -> verify -> queue-wait -> consensus -> ledger-append
# path present. Skipped gracefully on PREVER_TRACING=OFF builds (the stub
# exports nothing).
trace_file="$(mktemp)"
if "$BENCH_DIR/bench_e2_consensus" --trace="$trace_file" \
      --benchmark_filter='BM_TracedPlaintextRaft' >/dev/null 2>&1 \
   && "$PYTHON" - "$trace_file" <<'EOF'
import json, sys
text = open(sys.argv[1]).read()
if not text.strip():
    sys.exit(0)  # PREVER_TRACING=OFF: compiled-out stub writes nothing.
doc = json.loads(text)
meta = doc["prever"]
assert meta["schema"] == "prever.trace.v1", "bad trace schema"
assert meta["traces_sampled"] > 0, "no traces sampled"
events = doc["traceEvents"]
spans = [e for e in events if e.get("ph") == "X"]
instants = [e for e in events if e.get("ph") == "i"]
assert spans, "no spans exported"
assert len(spans) == meta["spans_exported"], "span count != metadata"
trace_of = {e["args"]["span_id"]: e["args"]["trace_id"] for e in spans}
roots = 0
for e in spans:
    a = e["args"]
    assert e["dur"] >= 0 and a["dur_ns"] >= 0, "negative duration"
    parent = a["parent_span_id"]
    if parent == 0:
        roots += 1
    else:
        assert parent in trace_of, \
            f"span {a['span_id']} parent {parent} missing from file"
        assert trace_of[parent] == a["trace_id"], "parent crosses traces"
assert roots == meta["traces_sampled"], \
    f"{roots} roots for {meta['traces_sampled']} sampled traces"
# The export preserves per-lane ring order within the span and instant
# sections; sim time must never run backwards inside a lane.
for section in (spans, instants):
    last = {}
    for e in section:
        a = e["args"]
        assert a["sim_us"] >= last.get(a["lane"], 0), "sim time regressed"
        last[a["lane"]] = a["sim_us"]
stages = {e["name"] for e in spans}
for needed in ("submit", "verify", "queue_wait", "consensus",
               "ledger_append"):
    assert needed in stages, f"stage {needed} missing from traced run"
assert "batch_seal" in {e["name"] for e in instants}, "no batch_seal instant"
print(f"{len(spans)} spans, {roots} connected trees")
EOF
then
  echo "bench_smoke: OK causal trace export"
else
  echo "bench_smoke: FAIL causal trace export" >&2
  fail=1
fi
rm -f "$trace_file"

# Zero-overhead guard (src/obs/trace.h): the disabled-tracer span must stay
# branch-cheap. The ceiling is loose — a relaxed load + branch is ~1-3 ns,
# an accidental lock/allocation/ring write on the disabled path is 10-100x.
overhead_json="$(mktemp)"
if "$BENCH_DIR/bench_e2_consensus" \
      --benchmark_filter='BM_TraceDisabledOverhead' \
      --benchmark_out="$overhead_json" --benchmark_out_format=json \
      >/dev/null 2>&1 && "$PYTHON" - "$overhead_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
cases = [b for b in doc.get("benchmarks", [])
         if b.get("run_type") != "aggregate"]
assert cases, "overhead case did not run"
ns = cases[0]["ns_per_span"]
assert ns < 250, f"disabled TraceSpan costs {ns:.1f} ns/span"
print(f"disabled span {ns:.2f} ns")
EOF
then
  echo "bench_smoke: OK disabled-tracing overhead"
else
  echo "bench_smoke: FAIL disabled-tracing overhead" >&2
  fail=1
fi
rm -f "$overhead_json"

# Compiled-verification path: a short verify-and-commit run must actually
# take the compiled route (compiled > 0, nothing silently falling back to
# the interpreter) and the aggregate cache must ride its O(1) delta path —
# exactly one full rebuild no matter how many iterations committed, every
# subsequent verify a cache hit.
verify_json="$(mktemp)"
if "$BENCH_DIR/bench_e3_constraint_verification" \
      --benchmark_filter='BM_CompiledVerifyCommit/100$' \
      --benchmark_min_time=0.01s \
      --benchmark_out="$verify_json" --benchmark_out_format=json \
      >/dev/null 2>&1 && "$PYTHON" - "$verify_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
cases = [b for b in doc.get("benchmarks", [])
         if b.get("run_type") != "aggregate"]
assert cases, "compiled verify case did not run"
b = cases[0]
for key in ("verifies/s", "agg_cache_hits", "agg_rebuilds",
            "agg_delta_applies", "compiled"):
    assert key in b, f"missing counter {key}"
assert b["compiled"] > 0, "constraint fell back to the interpreter"
assert b["agg_rebuilds"] <= 2, \
    f"{b['agg_rebuilds']:.0f} rebuilds: cache is rescanning, not delta-ing"
assert b["agg_delta_applies"] >= b["iterations"] - 2, \
    "committed inserts not flowing through the delta path"
assert b["agg_cache_hits"] >= b["iterations"] - 2, "verifies missing cache"
print(f"compiled={b['compiled']:.0f} rebuilds={b['agg_rebuilds']:.0f} "
      f"deltas={b['agg_delta_applies']:.0f} over {b['iterations']} commits")
EOF
then
  echo "bench_smoke: OK compiled verification path"
else
  echo "bench_smoke: FAIL compiled verification path" >&2
  fail=1
fi
rm -f "$verify_json"

# BENCH_consensus.json (written by bench_perf.sh) must stay parseable, and
# every pipelined case in it must carry throughput + latency + the derived
# stop-and-wait speedup.
if [ -f BENCH_consensus.json ]; then
  if "$PYTHON" - <<'EOF'
import json
records = json.load(open("BENCH_consensus.json"))
assert isinstance(records, list) and records, "no records"
for r in records:
    assert r.get("label") and "cases" in r, "record missing label/cases"
    for name, c in r["cases"].items():
        if name.startswith(("BM_RaftPipelined/", "BM_PbftPipelined/")):
            for key in ("sim_commits_per_s", "sim_latency_p50_ms",
                        "sim_latency_p99_ms", "speedup_vs_stop_and_wait"):
                assert key in c, f"{name} missing {key}"
        elif name.startswith("BM_OrderedBurst"):
            assert "sim_payloads_per_s" in c, f"{name} missing throughput"
EOF
  then
    echo "bench_smoke: OK BENCH_consensus.json"
  else
    echo "bench_smoke: FAIL BENCH_consensus.json invalid" >&2
    fail=1
  fi
fi

# BENCH_verify.json (also written by bench_perf.sh): every record must pair
# the interpreter baseline with compiled cases carrying the cache counters
# and the derived interpreter speedup.
if [ -f BENCH_verify.json ]; then
  if "$PYTHON" - <<'EOF'
import json
records = json.load(open("BENCH_verify.json"))
assert isinstance(records, list) and records, "no records"
for r in records:
    assert r.get("label") and "cases" in r, "record missing label/cases"
    names = set(r["cases"])
    assert any(n.startswith("BM_PlaintextEval/") for n in names), \
        "no interpreter baseline"
    compiled = [c for n, c in r["cases"].items()
                if n.startswith(("BM_CompiledVerifyCommit/",
                                 "BM_CompiledVerifySteady/"))]
    assert compiled, "no compiled cases"
    assert any("speedup_vs_interpreter" in c for c in compiled), \
        "no derived speedup"
    for n, c in r["cases"].items():
        if n.startswith("BM_CompiledVerifyCommit/"):
            for key in ("agg_rebuilds", "agg_delta_applies", "compiled"):
                assert key in c, f"{n} missing {key}"
EOF
  then
    echo "bench_smoke: OK BENCH_verify.json"
  else
    echo "bench_smoke: FAIL BENCH_verify.json invalid" >&2
    fail=1
  fi
fi

exit "$fail"
