#!/usr/bin/env bash
# Builds the runtime mutation harness (-DPREVER_MUTATIONS=ON) in its own
# tree, runs the kill matrix, and validates the machine-readable report
# (the PREVER_MUTATION_REPORT line): it must parse, cover every registered
# site, reach every site, kill >= 95% of mutants, and explain every
# survivor with a rationale.
# Usage: scripts/mutation_smoke.sh [build-dir]
# Default: $MUTATION_BUILD_DIR, falling back to build-mutation — the same
# resolution check.sh uses, so standalone runs and check.sh runs share one
# (gitignored) tree instead of configuring two.
set -uo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-${MUTATION_BUILD_DIR:-build-mutation}}"

cmake -B "$BUILD_DIR" -S . -DPREVER_MUTATIONS=ON \
  -DCMAKE_BUILD_TYPE=Release >/dev/null || {
  echo "mutation_smoke: FAIL (configure)" >&2
  exit 1
}
cmake --build "$BUILD_DIR" -j "$(nproc)" --target mutation_kill_test \
  >/dev/null || {
  echo "mutation_smoke: FAIL (build)" >&2
  exit 1
}

out="$("$BUILD_DIR"/tests/mutation_kill_test)" || {
  printf '%s\n' "$out"
  echo "mutation_smoke: FAIL (kill rate below threshold or clean-pass failure)" >&2
  exit 1
}
printf '%s\n' "$out"

PYTHON="$(command -v python3 || true)"
if [ -z "$PYTHON" ]; then
  echo "mutation_smoke: python3 not found; skipping JSON validation" >&2
  exit 0
fi

line="$(printf '%s\n' "$out" | grep '^PREVER_MUTATION_REPORT ' | tail -1 || true)"
if [ -z "$line" ]; then
  echo "mutation_smoke: FAIL (no PREVER_MUTATION_REPORT line)" >&2
  exit 1
fi
if ! printf '%s\n' "${line#PREVER_MUTATION_REPORT }" | "$PYTHON" -c '
import json, sys
doc = json.load(sys.stdin)
for key in ("sites", "reached", "killed", "kill_rate", "clean_failures",
            "survivors"):
    assert key in doc, "missing " + key
assert doc["sites"] > 0, "no mutation sites registered"
assert doc["clean_failures"] == 0, "detectors flagged unmutated code"
assert doc["reached"] == doc["sites"], "some sites never reached"
assert doc["killed"] + len(doc["survivors"]) == doc["sites"], \
    "killed + survivors != sites"
rate = doc["kill_rate"]
assert rate >= 0.95, "kill rate %.4f below 0.95" % rate
for s in doc["survivors"]:
    assert s.get("site"), "survivor missing site id"
    assert s.get("rationale"), "survivor %s missing rationale" % s.get("site")
    assert s.get("expected") is True, \
        "unexpected survivor %s: %s" % (s["site"], s["rationale"])
print("%d/%d killed" % (doc["killed"], doc["sites"]))
'; then
  echo "mutation_smoke: FAIL (mutation report invalid)" >&2
  exit 1
fi
echo "mutation_smoke: OK"
