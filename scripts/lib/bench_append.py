"""Shared plumbing for the BENCH_*.json perf ledgers.

Every bench_perf.sh section ends the same way: stamp a record with the run
label, a UTC timestamp and the current git revision, then append it to a
JSON-array ledger file checked into the repo. This module is that one
implementation; the inline python blocks in scripts/bench_perf.sh import it
(sys.path.insert of scripts/lib) instead of each carrying its own copy.
"""

import json
import os
import subprocess


def stamp(record, label):
    """Adds label/date/git provenance fields to `record` (returns it)."""
    record["label"] = label
    record["date"] = subprocess.run(
        ["date", "-u", "+%Y-%m-%dT%H:%M:%SZ"], capture_output=True,
        text=True).stdout.strip()
    try:
        record["git"] = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], capture_output=True,
            text=True).stdout.strip()
    except OSError:
        pass
    return record


def append_record(out_path, record):
    """Appends `record` to the JSON-array ledger at `out_path`.

    Returns the total number of records after the append.
    """
    records = []
    if os.path.exists(out_path):
        with open(out_path) as f:
            records = json.load(f)
    records.append(record)
    with open(out_path, "w") as f:
        json.dump(records, f, indent=2)
        f.write("\n")
    return len(records)


def load_benchmark_cases(path, keep_keys=None, extra_numeric_suffixes=("/s",),
                         extra_keys=()):
    """Loads a Google Benchmark --benchmark_out JSON file.

    Returns {case_name: {field: value}} skipping aggregate rows. With
    `keep_keys`, only those keys are copied (when present); otherwise
    real_time_ms/iterations plus any key ending in one of
    `extra_numeric_suffixes` (rate counters) or named in `extra_keys`
    (plain counters) is kept.
    """
    with open(path) as f:
        bm = json.load(f)
    unit = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
    cases = {}
    for b in bm.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        if keep_keys is not None:
            entry = {"iterations": b["iterations"]}
            for key in keep_keys:
                if key in b:
                    entry[key] = round(b[key], 3)
        else:
            entry = {
                "real_time_ms": round(b["real_time"] * unit[b["time_unit"]],
                                      4),
                "iterations": b["iterations"],
            }
            for key, value in b.items():
                if (any(key.endswith(s) for s in extra_numeric_suffixes)
                        or key in extra_keys):
                    entry[key] = round(value, 2)
        cases[b["name"]] = entry
    return cases
