// Differential tests for the accelerated crypto hot paths: the Montgomery
// CIOS/sliding-window PowMod, the fixed-base tables, and CRT Paillier
// decryption are each checked against slow reference implementations whose
// correctness is obvious (schoolbook square-and-multiply; the direct
// lambda/mu decryption). Run under scripts/check.sh's ASan+UBSan config so
// kernel bugs surface as either a mismatch or a sanitizer report.

#include <gtest/gtest.h>

#include "crypto/bigint.h"
#include "crypto/drbg.h"
#include "crypto/montgomery.h"
#include "crypto/paillier.h"

namespace prever::crypto {
namespace {

/// Schoolbook square-and-multiply via plain MulMod (divide-based): the
/// reference the Montgomery kernel must agree with.
BigInt RefPowMod(const BigInt& base, const BigInt& e, const BigInt& m) {
  BigInt b = base.Mod(m);
  BigInt result = BigInt(1).Mod(m);
  for (size_t i = e.BitLength(); i-- > 0;) {
    result = result.MulMod(result, m);
    if (e.Bit(i)) result = result.MulMod(b, m);
  }
  return result;
}

BigInt RandomOdd(Drbg& drbg, size_t bits) {
  BigInt m = drbg.RandomBits(bits);
  if (!m.IsOdd()) m = m + BigInt(1);
  return m;
}

TEST(PowModDiffTest, RandomTriplesAcrossWidths) {
  Drbg drbg(uint64_t{0xd1ff});
  for (size_t bits : {33u, 64u, 65u, 127u, 193u, 256u, 384u}) {
    for (int round = 0; round < 8; ++round) {
      BigInt m = RandomOdd(drbg, bits);
      BigInt base = drbg.RandomBelow(m);
      BigInt e = drbg.RandomBits(bits);
      EXPECT_EQ(base.PowMod(e, m), RefPowMod(base, e, m))
          << bits << "-bit round " << round;
    }
  }
}

TEST(PowModDiffTest, BaseAtLeastModulus) {
  Drbg drbg(uint64_t{0xbadd});
  for (int round = 0; round < 10; ++round) {
    BigInt m = RandomOdd(drbg, 128);
    // Base deliberately wider than the modulus: the kernel must reduce it.
    BigInt base = drbg.RandomBits(256);
    BigInt e = drbg.RandomBits(96);
    EXPECT_EQ(base.PowMod(e, m), RefPowMod(base, e, m)) << round;
    EXPECT_EQ(m.PowMod(e, m), BigInt(0)) << "m^e mod m";
    EXPECT_EQ((m + BigInt(1)).PowMod(e, m), BigInt(1)) << "(m+1)^e mod m";
  }
}

TEST(PowModDiffTest, EdgeExponents) {
  Drbg drbg(uint64_t{0xe0e0});
  BigInt m = RandomOdd(drbg, 192);
  BigInt base = drbg.RandomBelow(m);
  EXPECT_EQ(base.PowMod(BigInt(0), m), BigInt(1));
  EXPECT_EQ(base.PowMod(BigInt(1), m), base);
  EXPECT_EQ(base.PowMod(BigInt(2), m), base.MulMod(base, m));
  // Powers of two exercise the all-zero-window path of the sliding window.
  for (size_t k : {17u, 63u, 64u, 100u, 191u}) {
    BigInt e = BigInt(1) << k;
    EXPECT_EQ(base.PowMod(e, m), RefPowMod(base, e, m)) << "e=2^" << k;
  }
  // All-ones exponent maximizes window density.
  BigInt ones = (BigInt(1) << 160) - BigInt(1);
  EXPECT_EQ(base.PowMod(ones, m), RefPowMod(base, ones, m));
  // Degenerate bases.
  BigInt e = drbg.RandomBits(128);
  EXPECT_EQ(BigInt(0).PowMod(e, m), BigInt(0));
  EXPECT_EQ(BigInt(1).PowMod(e, m), BigInt(1));
  EXPECT_EQ((m - BigInt(1)).PowMod(e, m),
            RefPowMod(m - BigInt(1), e, m));
}

TEST(PowModDiffTest, EvenModulusFallback) {
  Drbg drbg(uint64_t{0xeeee});
  for (int round = 0; round < 8; ++round) {
    BigInt m = drbg.RandomBits(160);
    if (m.IsOdd()) m = m + BigInt(1);  // Force even: no Montgomery context.
    BigInt base = drbg.RandomBelow(m);
    BigInt e = drbg.RandomBits(80);
    EXPECT_EQ(base.PowMod(e, m), RefPowMod(base, e, m)) << round;
  }
  // Even modulus must be rejected by the context factory, not mis-handled.
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(100)).ok());
  EXPECT_FALSE(MontgomeryContext::Shared(BigInt(1)).ok());
}

TEST(PowModDiffTest, ContextPowModMatchesReferenceDirectly) {
  Drbg drbg(uint64_t{0xc0de});
  for (size_t bits : {65u, 128u, 256u}) {
    BigInt m = RandomOdd(drbg, bits);
    auto ctx = MontgomeryContext::Create(m);
    ASSERT_TRUE(ctx.ok());
    for (int round = 0; round < 6; ++round) {
      BigInt base = drbg.RandomBelow(m);
      // Short exponents too: below BigInt::PowMod's fast-path cutoff, but
      // the context API itself must handle them.
      BigInt e = drbg.RandomBits(round % 2 == 0 ? 8 : bits);
      EXPECT_EQ(ctx->PowMod(base, e), RefPowMod(base, e, m));
    }
  }
}

TEST(PowModDiffTest, MontgomeryDomainRoundTripAndAliasing) {
  Drbg drbg(uint64_t{0xa11a});
  BigInt m = RandomOdd(drbg, 256);
  auto ctx = MontgomeryContext::Create(m);
  ASSERT_TRUE(ctx.ok());
  BigInt a = drbg.RandomBelow(m);
  BigInt b = drbg.RandomBelow(m);
  MontgomeryContext::Limbs am = ctx->PackMont(a);
  MontgomeryContext::Limbs bm = ctx->PackMont(b);
  EXPECT_EQ(ctx->UnpackMont(am), a);
  // out aliasing a, then b, then squaring in place.
  MontgomeryContext::Limbs out = am;
  ctx->MulMontLimbs(out, bm, &out);
  EXPECT_EQ(ctx->UnpackMont(out), a.MulMod(b, m));
  out = bm;
  ctx->MulMontLimbs(am, out, &out);
  EXPECT_EQ(ctx->UnpackMont(out), a.MulMod(b, m));
  out = am;
  ctx->MulMontLimbs(out, out, &out);
  EXPECT_EQ(ctx->UnpackMont(out), a.MulMod(a, m));
  EXPECT_EQ(ctx->UnpackMont(ctx->OneMont()), BigInt(1));
}

TEST(FixedBaseDiffTest, TableAgreesWithGenericPowMod) {
  Drbg drbg(uint64_t{0xf1bb});
  for (size_t bits : {65u, 255u}) {
    BigInt m = RandomOdd(drbg, bits);
    auto ctx = MontgomeryContext::Shared(m);
    ASSERT_TRUE(ctx.ok());
    BigInt base = drbg.RandomBelow(m);
    for (size_t window : {1u, 3u, 4u, 5u}) {
      FixedBaseTable table(*ctx, base, /*max_exp_bits=*/bits, window);
      EXPECT_EQ(table.PowMod(BigInt(0)), BigInt(1));
      EXPECT_EQ(table.PowMod(BigInt(1)), base.Mod(m));
      for (int round = 0; round < 6; ++round) {
        BigInt e = drbg.RandomBits(1 + (round * bits) / 6);
        EXPECT_EQ(table.PowMod(e), base.PowMod(e, m))
            << bits << "-bit, window " << window << ", round " << round;
      }
      // Wider than max_exp_bits: must fall back to the generic path.
      BigInt wide = drbg.RandomBits(bits + 70);
      EXPECT_EQ(table.PowMod(wide), base.PowMod(wide, m));
    }
  }
}

class PaillierCrtDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Drbg keygen(uint64_t{0x9a11});
    key_ = PaillierGenerateKey(256, keygen).value();
    ASSERT_TRUE(key_.priv.HasCrt());
  }
  PaillierKeyPair key_;
  Drbg drbg_{uint64_t{0x77}};
};

TEST_F(PaillierCrtDiffTest, CrtMatchesNoCrtOnRandomPlaintexts) {
  for (int round = 0; round < 12; ++round) {
    BigInt m = drbg_.RandomBelow(key_.pub.n);
    auto ct = PaillierEncrypt(key_.pub, m, drbg_);
    ASSERT_TRUE(ct.ok());
    auto fast = PaillierDecrypt(key_, *ct);
    auto slow = PaillierDecryptNoCrt(key_, *ct);
    ASSERT_TRUE(fast.ok() && slow.ok());
    EXPECT_EQ(*fast, *slow) << round;
    EXPECT_EQ(*fast, m) << round;
  }
}

TEST_F(PaillierCrtDiffTest, PlaintextSpaceEdges) {
  for (const BigInt& m : {BigInt(0), BigInt(1), key_.pub.n - BigInt(1)}) {
    auto ct = PaillierEncrypt(key_.pub, m, drbg_);
    ASSERT_TRUE(ct.ok());
    EXPECT_EQ(PaillierDecrypt(key_, *ct).value(), m);
    EXPECT_EQ(PaillierDecryptNoCrt(key_, *ct).value(), m);
  }
}

TEST_F(PaillierCrtDiffTest, SignedFoldAroundHalfN) {
  // DecryptSigned folds residues > n/2 negative; check both sides of the
  // boundary decode identically through the CRT path.
  auto ct_neg = PaillierEncryptSigned(key_.pub, -12345, drbg_);
  ASSERT_TRUE(ct_neg.ok());
  EXPECT_EQ(PaillierDecryptSigned(key_, *ct_neg).value(), -12345);
  auto ct_pos = PaillierEncryptSigned(key_.pub, 12345, drbg_);
  ASSERT_TRUE(ct_pos.ok());
  EXPECT_EQ(PaillierDecryptSigned(key_, *ct_pos).value(), 12345);
}

TEST_F(PaillierCrtDiffTest, HomomorphicRoundTrips) {
  auto a = PaillierEncrypt(key_.pub, BigInt(1000), drbg_);
  auto b = PaillierEncrypt(key_.pub, BigInt(234), drbg_);
  ASSERT_TRUE(a.ok() && b.ok());
  PaillierCiphertext sum = PaillierAdd(key_.pub, *a, *b);
  EXPECT_EQ(PaillierDecrypt(key_, sum).value(), BigInt(1234));
  PaillierCiphertext scaled = PaillierMulPlain(key_.pub, *a, BigInt(7));
  EXPECT_EQ(PaillierDecrypt(key_, scaled).value(), BigInt(7000));
  PaillierCiphertext shifted = PaillierAddPlain(key_.pub, *b, BigInt(66));
  EXPECT_EQ(PaillierDecrypt(key_, shifted).value(), BigInt(300));
  auto rerand = PaillierRerandomize(key_.pub, *a, drbg_);
  ASSERT_TRUE(rerand.ok());
  EXPECT_NE(rerand->c, a->c);
  EXPECT_EQ(PaillierDecrypt(key_, *rerand).value(), BigInt(1000));
}


TEST_F(PaillierCrtDiffTest, TamperedCiphertextDiffersIdenticallyInBothPaths) {
  // An attacker-perturbed ciphertext must never silently decrypt to the
  // original plaintext, and the CRT fast path must mis-decrypt it to the
  // SAME value the reference path does (no path-dependent malleability).
  BigInt m(424242);
  auto ct = PaillierEncrypt(key_.pub, m, drbg_);
  ASSERT_TRUE(ct.ok());

  // Multiplying by g adds exactly 1 to the plaintext: the tamper is
  // homomorphically predictable, so pin both paths to m + 1.
  PaillierCiphertext shifted{ct->c.MulMod(key_.pub.g, key_.pub.n2)};
  EXPECT_EQ(PaillierDecrypt(key_, shifted).value(), m + BigInt(1));
  EXPECT_EQ(PaillierDecryptNoCrt(key_, shifted).value(), m + BigInt(1));

  // A structureless nudge decrypts to SOME garbage; both paths must agree
  // on it and it must not collide with the honest plaintext.
  PaillierCiphertext nudged{ct->c + BigInt(1)};
  auto fast = PaillierDecrypt(key_, nudged);
  auto slow = PaillierDecryptNoCrt(key_, nudged);
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_EQ(*fast, *slow);
  EXPECT_NE(*fast, m);

  // Out-of-group ciphertexts are rejected by both paths, not wrapped.
  PaillierCiphertext oversized{ct->c + key_.pub.n2};
  EXPECT_FALSE(PaillierDecrypt(key_, oversized).ok());
  EXPECT_FALSE(PaillierDecryptNoCrt(key_, oversized).ok());
}

TEST_F(PaillierCrtDiffTest, KeyWithoutFactorsStillDecrypts) {
  // A key reconstructed from (lambda, mu) alone — e.g. deserialized from a
  // legacy export — must transparently use the direct route.
  PaillierKeyPair stripped = key_;
  stripped.priv.p = BigInt(0);
  ASSERT_FALSE(stripped.priv.HasCrt());
  BigInt m(987654321);
  auto ct = PaillierEncrypt(key_.pub, m, drbg_);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(PaillierDecrypt(stripped, *ct).value(), m);
}

}  // namespace
}  // namespace prever::crypto
