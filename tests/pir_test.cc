#include <gtest/gtest.h>

#include "pir/cpir.h"
#include "pir/xor_pir.h"

namespace prever::pir {
namespace {

std::vector<Bytes> MakeRecords(size_t n, size_t size) {
  std::vector<Bytes> records;
  for (size_t i = 0; i < n; ++i) {
    Bytes r = ToBytes("record-" + std::to_string(i));
    r.resize(size, static_cast<uint8_t>(i));
    records.push_back(std::move(r));
  }
  return records;
}

// ---------------------------------------------------------------- XOR PIR

TEST(XorPirTest, FetchesEveryRecordCorrectly) {
  constexpr size_t kN = 17, kSize = 24;
  auto records = MakeRecords(kN, kSize);
  XorPirServer s0(records, kSize), s1(records, kSize);
  XorPirClient client(1);
  for (size_t i = 0; i < kN; ++i) {
    auto got = client.Fetch(i, s0, s1);
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, records[i]) << i;
  }
}

TEST(XorPirTest, QueriesLookRandomIndividually) {
  XorPirClient client(2);
  auto q1 = client.BuildQuery(3, 64);
  auto q2 = client.BuildQuery(3, 64);
  // Each server's view differs between runs (fresh randomness), and within
  // a run the two servers' vectors differ in exactly one position.
  EXPECT_NE(q1.for_server0, q2.for_server0);
  size_t diffs = 0;
  for (size_t i = 0; i < 64; ++i) {
    if (q1.for_server0[i] != q1.for_server1[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);
}

TEST(XorPirTest, AppendThenFetch) {
  constexpr size_t kSize = 16;
  auto records = MakeRecords(4, kSize);
  XorPirServer s0(records, kSize), s1(records, kSize);
  ASSERT_TRUE(s0.Append(ToBytes("new-entry")).ok());
  ASSERT_TRUE(s1.Append(ToBytes("new-entry")).ok());
  XorPirClient client(3);
  auto got = client.Fetch(4, s0, s1);
  ASSERT_TRUE(got.ok());
  Bytes expected = ToBytes("new-entry");
  expected.resize(kSize, 0);
  EXPECT_EQ(*got, expected);
}

TEST(XorPirTest, AppendRejectsOversizedRecord) {
  XorPirServer s({}, 8);
  EXPECT_FALSE(s.Append(Bytes(9)).ok());
}

TEST(XorPirTest, ErrorsOnBadInput) {
  auto records = MakeRecords(4, 8);
  XorPirServer s0(records, 8), s1(records, 8);
  XorPirClient client(4);
  EXPECT_FALSE(client.Fetch(4, s0, s1).ok());  // Out of range.
  EXPECT_FALSE(s0.Answer(std::vector<uint8_t>(3)).ok());  // Wrong size.
}

TEST(XorPirTest, ServerWorkIsLinear) {
  auto records = MakeRecords(32, 8);
  XorPirServer s0(records, 8), s1(records, 8);
  XorPirClient client(5);
  ASSERT_TRUE(client.Fetch(0, s0, s1).ok());
  EXPECT_EQ(s0.records_scanned(), 32u);
}

// ----------------------------------------------------------- Paillier PIR

class PaillierPirTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::Drbg drbg(uint64_t{99});
    key_ = new crypto::PaillierKeyPair(
        crypto::PaillierGenerateKey(256, drbg).value());
  }
  static crypto::PaillierKeyPair* key_;
};
crypto::PaillierKeyPair* PaillierPirTest::key_ = nullptr;

TEST_F(PaillierPirTest, FetchesEveryRecord) {
  constexpr size_t kN = 8, kSize = 16;  // 16 bytes < 256/8 - 2.
  auto records = MakeRecords(kN, kSize);
  PaillierPirServer server(records, kSize, key_->pub);
  PaillierPirClient client(*key_, 7);
  for (size_t i = 0; i < kN; ++i) {
    auto got = client.Fetch(i, server);
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, records[i]) << i;
  }
}

TEST_F(PaillierPirTest, AppendThenFetch) {
  constexpr size_t kSize = 8;
  PaillierPirServer server(MakeRecords(3, kSize), kSize, key_->pub);
  ASSERT_TRUE(server.Append(ToBytes("xyz")).ok());
  PaillierPirClient client(*key_, 8);
  auto got = client.Fetch(3, server);
  ASSERT_TRUE(got.ok());
  Bytes expected = ToBytes("xyz");
  expected.resize(kSize, 0);
  EXPECT_EQ(*got, expected);
}

TEST_F(PaillierPirTest, QueryIsSemanticallyHidden) {
  // Two queries for the same index produce different ciphertext vectors.
  PaillierPirClient client(*key_, 9);
  auto q1 = client.BuildQuery(2, 4);
  auto q2 = client.BuildQuery(2, 4);
  ASSERT_TRUE(q1.ok() && q2.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NE((*q1)[i].c, (*q2)[i].c) << i;
  }
}

TEST_F(PaillierPirTest, RejectsOversizedRecords) {
  constexpr size_t kTooBig = 64;  // > 256-bit plaintext space.
  PaillierPirServer server(MakeRecords(2, kTooBig), kTooBig, key_->pub);
  PaillierPirClient client(*key_, 10);
  EXPECT_FALSE(client.Fetch(0, server).ok());
}

TEST_F(PaillierPirTest, BuildQueryRejectsOutOfRange) {
  PaillierPirClient client(*key_, 11);
  EXPECT_FALSE(client.BuildQuery(5, 5).ok());
}

TEST_F(PaillierPirTest, AnswerRejectsWrongSelectionSize) {
  PaillierPirServer server(MakeRecords(3, 8), 8, key_->pub);
  EXPECT_FALSE(server.Answer({}).ok());
}

}  // namespace
}  // namespace prever::pir
