// Mutation kill driver: enumerates every site in mutate/sites.def,
// activates one mutant at a time, and runs a targeted detector that must
// observe a behavioral difference ("kill" the mutant). Survivors are
// reported with their site id and a rationale so they can be replayed:
//
//   PREVER_MUTATION=<site> ./tests/<binary>     (env-based activation)
//   ./tests/mutation_kill_test <site>           (single-site debug mode)
//
// The driver runs two passes:
//  1. clean pass — every detector runs unmutated and must NOT flag a kill
//     (a detector that fires on correct code is broken; exit 2), then
//  2. mutation matrix — per site: activate, detect, deactivate, recording
//     whether the instrumented decision point was even reached.
//
// Exit 0 iff the kill rate over all sites is >= 95%. The report ends with a
// machine-readable line:
//
//   PREVER_MUTATION_REPORT {"sites":N,...}
//
// consumed by scripts/mutation_smoke.sh.

#ifndef PREVER_MUTATIONS

#include <cstdio>

int main() {
  std::printf(
      "mutation harness compiled out; reconfigure with -DPREVER_MUTATIONS=ON\n");
  return 0;
}

#else  // PREVER_MUTATIONS

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/serial.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "consensus/pbft.h"
#include "consensus/raft.h"
#include "constraint/agg_cache.h"
#include "constraint/constraint.h"
#include "constraint/eval.h"
#include "constraint/linear.h"
#include "constraint/parser.h"
#include "constraint/program.h"
#include "core/encrypted_engine.h"
#include "core/federated_token_engine.h"
#include "core/ordering.h"
#include "crypto/bigint.h"
#include "crypto/drbg.h"
#include "crypto/merkle.h"
#include "crypto/paillier.h"
#include "crypto/pedersen.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "crypto/zkp.h"
#include "ledger/ledger_db.h"
#include "mutate/mutation.h"
#include "net/sim_net.h"
#include "recovery/checkpoint.h"
#include "storage/column_batch.h"
#include "storage/database.h"
#include "token/token.h"

namespace prever {
namespace {

using crypto::BigInt;
using crypto::Drbg;
using storage::Mutation;
using storage::Schema;
using storage::Value;
using storage::ValueType;

/// Result of running one detector: did it observe a behavioral difference,
/// and how would it explain the verdict to a human?
struct Detection {
  bool killed = false;
  std::string rationale;
};

Detection Killed(std::string why) { return {true, std::move(why)}; }
Detection Survived(std::string why) { return {false, std::move(why)}; }

// ===================================================================
// Constraint-golden fixture: a worklog database with rows pinned to the
// exact boundary slots the window/aggregate mutants move, plus literal-free
// comparison probes over update fields (so the comparison routes through
// EvaluateComparison, not the parser's constant folding).
// ===================================================================

class ConstraintFixture {
 public:
  ConstraintFixture() {
    Schema worklog({{"id", ValueType::kString},
                    {"worker", ValueType::kString},
                    {"hours", ValueType::kInt64},
                    {"at", ValueType::kTimestamp}});
    (void)db_.CreateTable("worklog", worklog);
    AddRow("t1", "w1", 10, 1 * kDay);
    AddRow("t2", "w1", 20, 3 * kDay);
    AddRow("t3", "w2", 35, 3 * kDay);
    AddRow("t4", "w1", 8, 20 * kDay);       // Future w.r.t. now; no window.
    AddRow("t5", "w1", 100, 2 * kDay);      // ts == now - 5d exactly.
    AddRow("t6", "w1", 50, 2 * kDay + 1);   // First slot inside the window.
    AddRow("t7", "w1", 30, 7 * kDay);       // ts == now exactly.
    AddRow("t8", "w1", 9, 8 * kDay);        // Just past now.
  }

  Result<Value> Eval(const std::string& text) const {
    auto e = constraint::ParseConstraint(text);
    if (!e.ok()) return e.status();
    constraint::EvalContext ctx{&db_, &update_, now_};
    return constraint::Evaluate(**e, ctx);
  }

  const storage::Database& db() const { return db_; }
  const constraint::UpdateFields& update() const { return update_; }
  SimTime now() const { return now_; }

 private:
  void AddRow(const std::string& id, const std::string& worker, int64_t hours,
              SimTime at) {
    Mutation m;
    m.op = Mutation::Op::kInsert;
    m.table = "worklog";
    m.row = {Value::String(id), Value::String(worker), Value::Int64(hours),
             Value::Timestamp(at)};
    (void)db_.Apply(m);
  }

  storage::Database db_;
  // a = c = 2, b = 1: every comparison probe sits exactly on the boundary
  // its mutant widens or narrows. `hours` feeds the catalog probe.
  constraint::UpdateFields update_ = {{"a", Value::Int64(2)},
                                      {"b", Value::Int64(1)},
                                      {"c", Value::Int64(2)},
                                      {"hours", Value::Int64(50)}};
  SimTime now_ = 7 * kDay;
};

Detection ExpectValue(const ConstraintFixture& fx, const std::string& text,
                      const Value& want) {
  auto got = fx.Eval(text);
  if (!got.ok()) {
    return Killed("evaluation of \"" + text +
                  "\" errored: " + got.status().message());
  }
  if (!(*got == want)) {
    return Killed("\"" + text + "\" diverged from its golden value");
  }
  return Survived("\"" + text + "\" still matches its golden value");
}

// The windowed SUM whose three edges (start-inclusive, start-off-by-one,
// end-exclusive) each shift onto a dedicated row: golden value 100
// (t6=50 + t2=20 + t7=30); mutants produce 200 / 50 / 70 / 101.
constexpr char kWindowSum[] =
    "SUM(worklog.hours WHERE worker = 'w1' WINDOW 5d)";

// ===================================================================
// Compiled-path golden helpers: the same probes as the interpreter
// detectors, routed through CompileConstraint + RunScalar with aggregates
// served by an AggregateCache — the exact plumbing CompiledVerifier uses,
// never touching constraint::Evaluate.
// ===================================================================

Result<Value> RegValToValue(const constraint::RegVal& r) {
  switch (r.tag) {
    case constraint::RegVal::Tag::kNum:
      return Value::Int64(r.num);
    case constraint::RegVal::Tag::kBool:
      return Value::Bool(r.b);
    case constraint::RegVal::Tag::kStr:
      return Value::String(*r.str);
  }
  return Status::Internal("unreachable register tag");
}

Result<Value> EvalCompiled(const storage::Database& db,
                           const constraint::UpdateFields& update, SimTime now,
                           const std::string& text,
                           constraint::AggregateCache& cache,
                           storage::ColumnBatchCache& batches) {
  auto e = constraint::ParseConstraint(text);
  if (!e.ok()) return e.status();
  constraint::CompiledConstraint cc = constraint::CompileConstraint(**e);
  if (!cc.ok) {
    return Status::NotSupported("probe fell outside the compilable class");
  }
  constraint::EvalContext ctx{&db, &update, now};
  constraint::AggFn agg_fn = [&](size_t i) {
    return cache.Evaluate(*cc.aggs[i], ctx, &batches);
  };
  PREVER_ASSIGN_OR_RETURN(
      constraint::RegVal top,
      constraint::RunScalar(cc.top, ctx, /*row=*/nullptr, &agg_fn));
  return RegValToValue(top);
}

Detection ExpectCompiled(const ConstraintFixture& fx, const std::string& text,
                         const Value& want) {
  constraint::AggregateCache cache;
  storage::ColumnBatchCache batches;
  auto got = EvalCompiled(fx.db(), fx.update(), fx.now(), text, cache, batches);
  if (!got.ok()) {
    return Killed("compiled evaluation of \"" + text +
                  "\" errored: " + got.status().message());
  }
  if (!(*got == want)) {
    return Killed("compiled \"" + text + "\" diverged from its golden value");
  }
  return Survived("compiled \"" + text + "\" still matches its golden value");
}

// ===================================================================
// Crypto fixtures — built ONCE, unmutated, before any pass. Proof forging
// and tampering happen here so per-site detectors only re-run the verifier.
// ===================================================================

struct CryptoFixture {
  const crypto::PedersenParams& params = crypto::PedersenParams::Test256();
  Drbg drbg{20260808};

  // Opening proof on C5 = Commit(5, r), with z1 bumped off the transcript.
  crypto::PedersenOpening c5;
  crypto::OpeningProof opening_bad;

  // Honest bit proofs with the REAL branch response tampered (the simulated
  // branch still verifies, so only the skipped-branch mutant accepts).
  crypto::PedersenOpening cb0, cb1;
  crypto::BitProof bit0_bad, bit1_bad;

  // Both-branches-simulated bit proof on Commit(7, r): each branch equation
  // holds by construction but e0 + e1 cannot match the Fiat–Shamir
  // challenge, so only the split check rejects it.
  crypto::PedersenOpening c7;
  crypto::BitProof bit_forged;

  // Range proof material: honest 4-bit proof for Commit(5, r), a copy with
  // one bit response tampered, and an unrelated Commit(9, r').
  crypto::PedersenOpening range5;
  crypto::RangeProof range5_proof;
  crypto::RangeProof range5_badbit;
  crypto::PedersenOpening c9;

  // Violating commitments for the bound verifiers: 50 > 40 and 10 < 20.
  crypto::PedersenOpening c50, c10;

  // RSA: a valid signature, the same signature with a leading zero byte
  // (valid value, wrong length), and — when the modulus leaves headroom —
  // a message whose signature survives adding n without growing a byte.
  crypto::RsaKeyPair rsa;
  Bytes msg_a, msg_b, sig_a, sig_prefixed;
  Bytes overrange_msg, overrange_sig;
  bool have_overrange = false;

  crypto::PaillierKeyPair paillier;

  // Single-leaf Merkle root captured unmutated; the domain-tag mutant
  // changes it.
  Bytes merkle_leaf = ToBytes("prever-mutation-leaf");
  Bytes merkle_baseline_root;

  CryptoFixture() {
    const BigInt& q = params.q;
    // --- opening proof ---
    c5 = crypto::PedersenCommitFresh(params, BigInt(5), drbg);
    opening_bad = crypto::ProveOpening(params, c5.commitment, BigInt(5),
                                       c5.randomness, drbg);
    opening_bad.z1 = opening_bad.z1.AddMod(BigInt(1), q);

    // --- bit proofs, real branch tampered ---
    cb0 = crypto::PedersenCommitFresh(params, BigInt(0), drbg);
    bit0_bad = *crypto::ProveBit(params, cb0.commitment, 0, cb0.randomness,
                                 drbg);
    bit0_bad.z0 = bit0_bad.z0.AddMod(BigInt(1), q);
    cb1 = crypto::PedersenCommitFresh(params, BigInt(1), drbg);
    bit1_bad = *crypto::ProveBit(params, cb1.commitment, 1, cb1.randomness,
                                 drbg);
    bit1_bad.z1 = bit1_bad.z1.AddMod(BigInt(1), q);

    // --- dual-simulated bit proof (kills only via the split check) ---
    c7 = crypto::PedersenCommitFresh(params, BigInt(7), drbg);
    {
      // Branch 0: y0 = C; branch 1: y1 = C * g^-1. Pick (e, z) freely and
      // solve t = h^z * y^-e so each branch equation holds on its own.
      BigInt y0 = c7.commitment.c;
      BigInt y1 = y0.MulMod(*params.g.InvMod(params.p), params.p);
      auto simulate = [&](const BigInt& y, const BigInt& e, const BigInt& z) {
        BigInt ye = y.PowMod(e, params.p);
        return params.h.PowMod(z, params.p)
            .MulMod(*ye.InvMod(params.p), params.p);
      };
      bit_forged.e0 = BigInt(5);
      bit_forged.z0 = BigInt(11);
      bit_forged.t0 = simulate(y0, bit_forged.e0, bit_forged.z0);
      bit_forged.e1 = BigInt(7);
      bit_forged.z1 = BigInt(13);
      bit_forged.t1 = simulate(y1, bit_forged.e1, bit_forged.z1);
    }

    // --- range proofs ---
    range5 = crypto::PedersenCommitFresh(params, BigInt(5), drbg);
    range5_proof = *crypto::ProveRange(params, range5.commitment, BigInt(5),
                                       range5.randomness, 4, drbg);
    range5_badbit = range5_proof;
    range5_badbit.bit_proofs[0].z0 =
        range5_badbit.bit_proofs[0].z0.AddMod(BigInt(1), q);
    c9 = crypto::PedersenCommitFresh(params, BigInt(9), drbg);
    c50 = crypto::PedersenCommitFresh(params, BigInt(50), drbg);
    c10 = crypto::PedersenCommitFresh(params, BigInt(10), drbg);

    // --- RSA ---
    // Regenerate until the modulus leaves >= n/4 of headroom below 2^512,
    // so the over-range search below succeeds after a handful of tries.
    Bytes two_512(65, 0);
    two_512[0] = 1;
    BigInt cap = BigInt::FromBytes(two_512);
    for (uint64_t seed = 31;; ++seed) {
      Drbg key_drbg(seed);
      rsa = *crypto::RsaGenerateKey(512, key_drbg);
      BigInt headroom = cap - rsa.pub.n;
      if (!(headroom + headroom + headroom + headroom < rsa.pub.n)) break;
    }
    msg_a = ToBytes("prever token serial A");
    msg_b = ToBytes("prever token serial B");
    sig_a = crypto::RsaSign(rsa, msg_a);
    sig_prefixed.push_back(0x00);
    sig_prefixed.insert(sig_prefixed.end(), sig_a.begin(), sig_a.end());
    for (int i = 0; i < 2000 && !have_overrange; ++i) {
      Bytes m = ToBytes("prever overrange probe " + std::to_string(i));
      Bytes sig = crypto::RsaSign(rsa, m);
      BigInt shifted = BigInt::FromBytes(sig) + rsa.pub.n;
      if (shifted.BitLength() <= 512) {
        overrange_msg = m;
        overrange_sig = *shifted.ToBytesPadded(rsa.pub.ModulusBytes());
        have_overrange = true;
      }
    }

    // --- Paillier ---
    Drbg pdrbg(77);
    paillier = *crypto::PaillierGenerateKey(384, pdrbg);

    // --- Merkle baseline ---
    crypto::MerkleTree t;
    t.Append(merkle_leaf);
    merkle_baseline_root = t.Root();
  }
};

// ===================================================================
// Consensus rigs: one replica under test plus spy nodes that capture every
// message the replica emits; forged protocol messages are injected through
// the simulated network from the spies' node ids.
// ===================================================================

net::SimNetConfig QuietNet() {
  net::SimNetConfig cfg;
  cfg.min_latency = 1 * kMillisecond;
  cfg.max_latency = 2 * kMillisecond;
  cfg.drop_rate = 0.0;
  cfg.seed = 17;
  return cfg;
}

// Raft message types (mirrors src/consensus/raft.cc).
constexpr uint32_t kRaftRequestVote = 10;
constexpr uint32_t kRaftVoteReply = 11;
constexpr uint32_t kRaftAppendEntries = 12;
constexpr uint32_t kRaftAppendReply = 13;
constexpr uint32_t kRaftInstallSnapshot = 14;

struct RaftRig {
  net::SimNetwork net{QuietNet()};
  std::vector<net::Message> captured;
  std::unique_ptr<consensus::RaftReplica> replica;

  explicit RaftRig(size_t num_replicas, bool start_timers) {
    consensus::RaftConfig cfg;
    cfg.num_replicas = num_replicas;
    replica = std::make_unique<consensus::RaftReplica>(0, cfg, &net, 11);
    net.AddNode([this](const net::Message& m) { replica->OnMessage(m); });
    for (size_t i = 1; i < num_replicas; ++i) {
      net.AddNode([this](const net::Message& m) { captured.push_back(m); });
    }
    if (start_timers) replica->Start();
  }

  void Run(SimTime delta) { net.RunUntil(net.Now() + delta); }

  void SendAppendEntries(net::NodeId from, uint64_t term, uint64_t prev_index,
                         uint64_t prev_term, uint64_t commit,
                         const std::vector<std::pair<uint64_t, Bytes>>& ents) {
    BinaryWriter w;
    w.WriteU64(term);
    w.WriteU64(prev_index);
    w.WriteU64(prev_term);
    w.WriteU64(commit);
    w.WriteU32(static_cast<uint32_t>(ents.size()));
    for (const auto& [t, cmd] : ents) {
      w.WriteU64(t);
      w.WriteBytes(cmd);
    }
    net.Send(from, 0, kRaftAppendEntries, w.bytes());
  }

  void SendRequestVote(net::NodeId from, uint64_t term, uint64_t last_index,
                       uint64_t last_term) {
    BinaryWriter w;
    w.WriteU64(term);
    w.WriteU64(last_index);
    w.WriteU64(last_term);
    net.Send(from, 0, kRaftRequestVote, w.bytes());
  }

  void SendVoteReply(net::NodeId from, uint64_t term, bool grant) {
    BinaryWriter w;
    w.WriteU64(term);
    w.WriteBool(grant);
    net.Send(from, 0, kRaftVoteReply, w.bytes());
  }

  void SendAppendReply(net::NodeId from, uint64_t term, bool success,
                       uint64_t match) {
    BinaryWriter w;
    w.WriteU64(term);
    w.WriteBool(success);
    w.WriteU64(match);
    w.WriteU64(0);  // hint
    net.Send(from, 0, kRaftAppendReply, w.bytes());
  }

  /// Drives the replica until it is a candidate, then feeds it granted
  /// votes from `voters` until it is leader (bounded; false on timeout).
  bool ElectLeader(const std::vector<net::NodeId>& voters) {
    for (int round = 0; round < 200; ++round) {
      if (replica->role() == consensus::RaftReplica::Role::kLeader) {
        return true;
      }
      if (replica->role() == consensus::RaftReplica::Role::kCandidate) {
        for (net::NodeId v : voters) SendVoteReply(v, replica->term(), true);
      }
      Run(10 * kMillisecond);
    }
    return false;
  }
};

// PBFT message types (mirrors src/consensus/pbft.cc).
constexpr uint32_t kPbftPrePrepare = 2;
constexpr uint32_t kPbftPrepare = 3;
constexpr uint32_t kPbftCommit = 4;
constexpr uint32_t kPbftViewChange = 5;
constexpr uint32_t kPbftNewView = 6;
constexpr uint32_t kPbftCheckpoint = 7;
constexpr uint32_t kPbftStateResponse = 9;

struct PbftRig {
  net::SimNetwork net{QuietNet()};
  std::vector<net::Message> captured;
  std::unique_ptr<consensus::PbftReplica> replica;  // Backup, node id 1.

  explicit PbftRig(uint64_t watermark_window = 128,
                   uint64_t checkpoint_interval = 0) {
    consensus::PbftConfig cfg;
    cfg.num_replicas = 4;
    cfg.high_watermark_window = watermark_window;
    cfg.checkpoint_interval = checkpoint_interval;
    net.AddNode([this](const net::Message& m) { captured.push_back(m); });
    replica = std::make_unique<consensus::PbftReplica>(1, cfg, &net);
    net.AddNode([this](const net::Message& m) { replica->OnMessage(m); });
    net.AddNode([this](const net::Message& m) { captured.push_back(m); });
    net.AddNode([this](const net::Message& m) { captured.push_back(m); });
  }

  void Run(SimTime delta) { net.RunUntil(net.Now() + delta); }

  static Bytes EncodeProposal(uint64_t view, uint64_t seq, const Bytes& body) {
    BinaryWriter w;
    w.WriteU64(view);
    w.WriteU64(seq);
    w.WriteBytes(body);
    return w.bytes();
  }

  void SendPrePrepare(net::NodeId from, uint64_t view, uint64_t seq,
                      const Bytes& command) {
    net.Send(from, 1, kPbftPrePrepare, EncodeProposal(view, seq, command));
  }
  void SendPrepare(net::NodeId from, uint64_t view, uint64_t seq,
                   const Bytes& digest) {
    net.Send(from, 1, kPbftPrepare, EncodeProposal(view, seq, digest));
  }
  void SendCommit(net::NodeId from, uint64_t view, uint64_t seq,
                  const Bytes& digest) {
    net.Send(from, 1, kPbftCommit, EncodeProposal(view, seq, digest));
  }
  void SendViewChange(net::NodeId from, uint64_t new_view) {
    BinaryWriter w;
    w.WriteU64(new_view);
    w.WriteU32(0);  // No prepared entries.
    net.Send(from, 1, kPbftViewChange, w.bytes());
  }
  void SendNewView(net::NodeId from, uint64_t new_view) {
    BinaryWriter w;
    w.WriteU64(new_view);
    w.WriteU32(0);
    net.Send(from, 1, kPbftNewView, w.bytes());
  }

  /// Counts captured messages of `type` sent by the replica, optionally
  /// requiring a payload digest match (for Prepare/Commit votes).
  size_t CountFromReplica(uint32_t type, const Bytes* digest = nullptr) const {
    size_t n = 0;
    for (const net::Message& m : captured) {
      if (m.from != 1 || m.type != type) continue;
      if (digest != nullptr) {
        BinaryReader r(m.payload);
        (void)r.ReadU64();
        (void)r.ReadU64();
        auto d = r.ReadBytes();
        if (!d.ok() || *d != *digest) continue;
      }
      ++n;
    }
    return n;
  }
};

// ===================================================================
// Recovery fixtures: scratch checkpoint directories plus raw access to
// the CRC32 record framing, so probes can hand-craft corrupt files.
// ===================================================================

/// Fresh scratch directory for a checkpoint-store probe. Recreated from
/// empty on every call so the clean pass and the matrix pass never see
/// each other's files.
std::string RecoveryScratchDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("prever_mutation_" + tag))
          .string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

/// Splits a checkpoint file into its framed payloads, ignoring the CRCs
/// (probes re-frame with valid CRCs on write).
bool ReadFramedRecords(const std::string& path, std::vector<Bytes>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  for (;;) {
    uint8_t header[8];
    size_t got = std::fread(header, 1, sizeof(header), f);
    if (got == 0) break;
    if (got != sizeof(header)) {
      std::fclose(f);
      return false;
    }
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(header[i]) << (8 * i);
    }
    Bytes payload(len);
    if (len != 0 && std::fread(payload.data(), 1, len, f) != len) {
      std::fclose(f);
      return false;
    }
    out->push_back(std::move(payload));
  }
  std::fclose(f);
  return true;
}

/// Rewrites a checkpoint file from payloads, framing each with a VALID
/// CRC32 — corruption introduced this way is invisible to the CRC check
/// and must be caught by the semantic validators behind it.
bool WriteFramedRecords(const std::string& path,
                        const std::vector<Bytes>& records) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  for (const Bytes& r : records) {
    uint8_t header[8];
    uint32_t len = static_cast<uint32_t>(r.size());
    uint32_t crc = Crc32(r);
    for (int i = 0; i < 4; ++i) {
      header[i] = static_cast<uint8_t>((len >> (8 * i)) & 0xff);
      header[4 + i] = static_cast<uint8_t>((crc >> (8 * i)) & 0xff);
    }
    if (std::fwrite(header, 1, sizeof(header), f) != sizeof(header) ||
        (!r.empty() && std::fwrite(r.data(), 1, r.size(), f) != r.size())) {
      std::fclose(f);
      return false;
    }
  }
  std::fclose(f);
  return true;
}

// ===================================================================
// Engine fixtures (shared; expensive keys generated once).
// ===================================================================

struct EngineFixture {
  core::DataOwner owner{320, crypto::PedersenParams::Test256(), 99};
  token::TokenAuthority authority{512, 3, 1000 * kDay, 123};
  uint64_t probe_counter = 0;

  /// Fresh participant per call so the shared authority's per-(participant,
  /// period) budget ledger never leaks state between passes.
  std::string FreshName(const std::string& prefix) {
    return prefix + std::to_string(probe_counter++);
  }
};

core::Update MakeWorklogUpdate(const std::string& id,
                               const std::string& worker, int64_t hours,
                               SimTime at) {
  core::Update u;
  u.id = id;
  u.producer = worker;
  u.timestamp = at;
  u.fields = {{"worker", Value::String(worker)},
              {"hours", Value::Int64(hours)}};
  u.mutation.op = Mutation::Op::kInsert;
  u.mutation.table = "worklog";
  u.mutation.row = {Value::String(id), Value::String(worker),
                    Value::Int64(hours), Value::Timestamp(at)};
  return u;
}

Status CreateWorklogTable(storage::Database& db) {
  Schema worklog({{"id", ValueType::kString},
                  {"worker", ValueType::kString},
                  {"hours", ValueType::kInt64},
                  {"at", ValueType::kTimestamp}});
  return db.CreateTable("worklog", worklog);
}

// ===================================================================
// Detector registry.
// ===================================================================

using Detector = std::function<Detection()>;

std::map<std::string, Detector> BuildDetectors(
    const ConstraintFixture& cfx, const CryptoFixture& kfx,
    EngineFixture& efx) {
  std::map<std::string, Detector> d;

  // ------------------------------------------------- constraint-golden
  auto expect = [&cfx](const std::string& text, const Value& want) {
    return [&cfx, text, want] { return ExpectValue(cfx, text, want); };
  };
  d["EVAL_CMP_EQ_WIDENED"] = expect("update.a = update.b", Value::Bool(false));
  d["EVAL_CMP_NE_NARROWED"] = expect("update.b != update.a", Value::Bool(true));
  d["EVAL_CMP_LT_INCLUSIVE"] = expect("update.a < update.c", Value::Bool(false));
  d["EVAL_CMP_LE_EXCLUSIVE"] = expect("update.a <= update.c", Value::Bool(true));
  d["EVAL_CMP_GT_INCLUSIVE"] = expect("update.a > update.c", Value::Bool(false));
  d["EVAL_CMP_GE_EXCLUSIVE"] = expect("update.a >= update.c", Value::Bool(true));
  d["EVAL_WINDOW_START_INCLUSIVE"] = expect(kWindowSum, Value::Int64(100));
  d["EVAL_WINDOW_END_EXCLUSIVE"] = expect(kWindowSum, Value::Int64(100));
  d["EVAL_WINDOW_START_OFFBYONE"] = expect(kWindowSum, Value::Int64(100));
  d["EVAL_SUM_OFFBYONE"] = expect(kWindowSum, Value::Int64(100));
  d["EVAL_COUNT_OFFBYONE"] =
      expect("COUNT(worklog WHERE worker = 'w2')", Value::Int64(1));
  d["EVAL_AVG_EMPTY_GUARD"] =
      expect("AVG(worklog.hours WHERE worker = 'w2')", Value::Int64(35));
  d["EVAL_MIN_UPDATE_SKIP"] = expect("MIN(worklog.hours)", Value::Int64(8));
  d["EVAL_MAX_UPDATE_SKIP"] = expect("MAX(worklog.hours)", Value::Int64(100));
  d["EVAL_EXISTS_ALWAYS"] =
      expect("EXISTS(worklog WHERE worker = 'zz')", Value::Bool(false));
  d["EVAL_WHERE_INVERTED"] =
      expect("COUNT(worklog WHERE worker = 'w2')", Value::Int64(1));
  d["EVAL_AND_SHORTCIRCUIT_SKIP"] =
      expect("update.a = update.b AND update.a = update.c", Value::Bool(false));
  d["EVAL_OR_SHORTCIRCUIT_SKIP"] =
      expect("update.a = update.c OR update.a = update.b", Value::Bool(true));
  d["EVAL_NOT_DROPPED"] =
      expect("NOT (update.a = update.b)", Value::Bool(true));
  d["EVAL_FORALL_IGNORE_VIOLATION"] = expect(
      "FORALL(worklog.worker : SUM(worklog.hours WHERE worker = group) <= 40)",
      Value::Bool(false));

  d["LINEAR_LT_BOUND_OFFBYONE"] = [] {
    auto e = constraint::ParseConstraint("COUNT(worklog) < 500");
    if (!e.ok()) return Killed("parse failed: " + e.status().message());
    auto form = constraint::ExtractLinearBound(**e);
    if (!form.ok()) {
      return Killed("extraction failed: " + form.status().message());
    }
    if (form->bound != 499) return Killed("strict < bound not tightened");
    return Survived("agg < 500 still extracts inclusive bound 499");
  };
  d["LINEAR_GT_BOUND_OFFBYONE"] = [] {
    auto e = constraint::ParseConstraint("SUM(worklog.hours) > 10");
    if (!e.ok()) return Killed("parse failed: " + e.status().message());
    auto form = constraint::ExtractLinearBound(**e);
    if (!form.ok()) {
      return Killed("extraction failed: " + form.status().message());
    }
    if (form->bound != 11) return Killed("strict > bound not tightened");
    return Survived("agg > 10 still extracts inclusive bound 11");
  };
  d["CATALOG_IGNORE_VIOLATION"] = [&cfx] {
    constraint::ConstraintCatalog catalog;
    Status added = catalog.Add("weekly-cap", constraint::ConstraintScope::kRegulation,
                               constraint::ConstraintVisibility::kPublic,
                               "update.hours <= 40");
    if (!added.ok()) return Killed("catalog rejected a valid constraint");
    constraint::EvalContext ctx{&cfx.db(), &cfx.update(), cfx.now()};
    Status s = catalog.CheckAll(ctx);  // update.hours = 50 violates the cap.
    if (s.ok()) return Killed("catalog accepted a violating update");
    return Survived("violating update still rejected by CheckAll");
  };

  // -------------------------------------------------- compiled-diff
  // Bytecode/aggregate-cache twins of the interpreter probes above. Each
  // drives the exact decision point its mutant flips through the compiled
  // path; the EVAL_* detectors keep the interpreter honest independently,
  // so the pair doubles as a standing differential check.
  auto expect_compiled = [&cfx](const std::string& text, const Value& want) {
    return [&cfx, text, want] { return ExpectCompiled(cfx, text, want); };
  };
  d["PROG_CMP_LE_EXCLUSIVE"] =
      expect_compiled("update.a <= update.c", Value::Bool(true));
  d["PROG_AND_SHORTCIRCUIT_SKIP"] = expect_compiled(
      "update.a = update.b AND update.a = update.c", Value::Bool(false));
  d["PROG_MIN_UPDATE_SKIP"] =
      expect_compiled("MIN(worklog.hours)", Value::Int64(8));
  d["PROG_EXISTS_ALWAYS"] = expect_compiled("EXISTS(worklog WHERE worker = 'zz')",
                                            Value::Bool(false));
  d["PROG_SUM_OFFBYONE"] = expect_compiled(kWindowSum, Value::Int64(100));
  d["PROG_WINDOW_START_INCLUSIVE"] = [&cfx] {
    // The cache keeps window edges by cursor arithmetic and never calls
    // InWindow, so this probe must take the scan path (batches == nullptr
    // → scalar row loop → InWindow) where the mutant lives.
    auto e = constraint::ParseConstraint(kWindowSum);
    if (!e.ok()) return Killed("parse failed: " + e.status().message());
    auto cc = constraint::CompileConstraint(**e);
    if (!cc.ok || cc.aggs.size() != 1) {
      return Killed("windowed SUM no longer compiles to a single spec");
    }
    auto table = cfx.db().GetTable("worklog");
    if (!table.ok()) return Killed("fixture table missing");
    auto bound = constraint::BindSpec(*cc.aggs[0], (*table)->schema());
    if (!bound.ok()) return Killed("bind failed: " + bound.status().message());
    constraint::EvalContext ctx{&cfx.db(), &cfx.update(), cfx.now()};
    auto got = constraint::EvaluateSpecByScan(*bound, ctx, /*batches=*/nullptr);
    if (!got.ok()) return Killed("scan errored: " + got.status().message());
    if (!(*got == Value::Int64(100))) {
      return Killed("scalar window scan pulled in the start-boundary row");
    }
    return Survived("scan-path window start still exclusive");
  };
  d["AGG_CACHE_EVICT_SKIP"] = [] {
    storage::Database db;
    if (!CreateWorklogTable(db).ok()) return Killed("table setup failed");
    auto add = [&db](const char* id, int64_t hours, SimTime at) {
      Mutation m;
      m.op = Mutation::Op::kInsert;
      m.table = "worklog";
      m.row = {Value::String(id), Value::String("w1"), Value::Int64(hours),
               Value::Timestamp(at)};
      return db.Apply(m);
    };
    if (!add("e1", 10, 1 * kDay).ok() || !add("e2", 20, 3 * kDay).ok()) {
      return Killed("row setup failed");
    }
    auto e = constraint::ParseConstraint("SUM(worklog.hours WINDOW 3d)");
    if (!e.ok()) return Killed("parse failed: " + e.status().message());
    auto cc = constraint::CompileConstraint(**e);
    if (!cc.ok || cc.aggs.size() != 1) return Killed("window sum not compiled");
    constraint::AggregateCache cache;
    storage::ColumnBatchCache batches;
    constraint::UpdateFields u;
    constraint::EvalContext c1{&db, &u, 3 * kDay};
    auto v1 = cache.Evaluate(*cc.aggs[0], c1, &batches);
    if (!v1.ok() || !(*v1 == Value::Int64(30))) {
      return Killed("warm window sum wrong at build time");
    }
    // Advance now so e1 leaves the window: the monotone cursor must
    // subtract the evicted row from the running sum.
    constraint::EvalContext c2{&db, &u, 5 * kDay};
    auto v2 = cache.Evaluate(*cc.aggs[0], c2, &batches);
    if (!v2.ok()) return Killed("advance errored: " + v2.status().message());
    if (!(*v2 == Value::Int64(20))) {
      return Killed("evicted row still counted in the window sum");
    }
    return Survived("window eviction still subtracts departing rows");
  };
  d["AGG_CACHE_DELTA_SKIP"] = [] {
    storage::Database db;
    if (!CreateWorklogTable(db).ok()) return Killed("table setup failed");
    Mutation m0;
    m0.op = Mutation::Op::kInsert;
    m0.table = "worklog";
    m0.row = {Value::String("e1"), Value::String("w1"), Value::Int64(10),
              Value::Timestamp(1 * kDay)};
    if (!db.Apply(m0).ok()) return Killed("row setup failed");
    auto e = constraint::ParseConstraint("SUM(worklog.hours)");
    if (!e.ok()) return Killed("parse failed: " + e.status().message());
    auto cc = constraint::CompileConstraint(**e);
    if (!cc.ok || cc.aggs.size() != 1) return Killed("sum not compiled");
    constraint::AggregateCache cache;
    storage::ColumnBatchCache batches;
    constraint::UpdateFields u;
    constraint::EvalContext ctx{&db, &u, 2 * kDay};
    auto v1 = cache.Evaluate(*cc.aggs[0], ctx, &batches);
    if (!v1.ok() || !(*v1 == Value::Int64(10))) return Killed("build sum wrong");
    Mutation m1;
    m1.op = Mutation::Op::kInsert;
    m1.table = "worklog";
    m1.row = {Value::String("e2"), Value::String("w1"), Value::Int64(25),
              Value::Timestamp(1 * kDay + 1)};
    if (!db.Apply(m1).ok()) return Killed("insert failed");
    cache.OnCommitted(m1, db);
    auto v2 = cache.Evaluate(*cc.aggs[0], ctx, &batches);
    if (!v2.ok()) return Killed("post-commit eval errored");
    if (!(*v2 == Value::Int64(35))) {
      return Killed("committed insert missing from the cached sum");
    }
    return Survived("insert deltas still folded into the cached aggregate");
  };
  d["AGG_CACHE_EPOCH_SKIP"] = [] {
    storage::Database db;
    if (!CreateWorklogTable(db).ok()) return Killed("table setup failed");
    auto add = [&db](const char* id, int64_t hours) {
      Mutation m;
      m.op = Mutation::Op::kInsert;
      m.table = "worklog";
      m.row = {Value::String(id), Value::String("w1"), Value::Int64(hours),
               Value::Timestamp(1 * kDay)};
      return db.Apply(m);
    };
    if (!add("e1", 10).ok() || !add("e2", 20).ok()) {
      return Killed("row setup failed");
    }
    auto e = constraint::ParseConstraint("SUM(worklog.hours)");
    if (!e.ok()) return Killed("parse failed: " + e.status().message());
    auto cc = constraint::CompileConstraint(**e);
    if (!cc.ok || cc.aggs.size() != 1) return Killed("sum not compiled");
    constraint::AggregateCache cache;
    storage::ColumnBatchCache batches;
    constraint::UpdateFields u;
    constraint::EvalContext ctx{&db, &u, 2 * kDay};
    auto v1 = cache.Evaluate(*cc.aggs[0], ctx, &batches);
    if (!v1.ok() || !(*v1 == Value::Int64(30))) return Killed("build sum wrong");
    Mutation del;
    del.op = Mutation::Op::kDelete;
    del.table = "worklog";
    del.key = Value::String("e2");
    if (!db.Apply(del).ok()) return Killed("delete failed");
    cache.OnCommitted(del, db);
    auto v2 = cache.Evaluate(*cc.aggs[0], ctx, &batches);
    if (!v2.ok()) return Killed("post-delete eval errored");
    if (!(*v2 == Value::Int64(10))) {
      return Killed("deleted row still counted by the cached sum");
    }
    return Survived("non-insert commits still epoch-invalidate the cache");
  };
  d["AGG_CACHE_GROUP_COLLAPSE"] = [] {
    storage::Database db;
    if (!CreateWorklogTable(db).ok()) return Killed("table setup failed");
    auto add = [&db](const char* id, const char* worker, int64_t hours) {
      Mutation m;
      m.op = Mutation::Op::kInsert;
      m.table = "worklog";
      m.row = {Value::String(id), Value::String(worker), Value::Int64(hours),
               Value::Timestamp(1 * kDay)};
      return db.Apply(m);
    };
    if (!add("g1", "w1", 10).ok() || !add("g2", "w2", 20).ok()) {
      return Killed("row setup failed");
    }
    auto e = constraint::ParseConstraint(
        "SUM(worklog.hours WHERE worker = update.worker)");
    if (!e.ok()) return Killed("parse failed: " + e.status().message());
    auto cc = constraint::CompileConstraint(**e);
    if (!cc.ok || cc.aggs.size() != 1) return Killed("grouped sum not compiled");
    constraint::AggregateCache cache;
    storage::ColumnBatchCache batches;
    constraint::UpdateFields u = {{"worker", Value::String("w1")}};
    constraint::EvalContext ctx{&db, &u, 2 * kDay};
    auto v = cache.Evaluate(*cc.aggs[0], ctx, &batches);
    if (!v.ok()) return Killed("grouped eval errored: " + v.status().message());
    if (!(*v == Value::Int64(10))) {
      return Killed("other workers' rows leaked into the w1 group sum");
    }
    return Survived("group keys still partition the cached aggregate");
  };

  // -------------------------------------------------- crypto-negative
  d["ZKP_OPENING_ACCEPT"] = [&kfx] {
    if (crypto::VerifyOpening(kfx.params, kfx.c5.commitment, kfx.opening_bad)) {
      return Killed("tampered opening proof accepted");
    }
    return Survived("tampered opening proof still rejected");
  };
  d["ZKP_BIT_SPLIT_SKIP"] = [&kfx] {
    if (crypto::VerifyBit(kfx.params, kfx.c7.commitment, kfx.bit_forged)) {
      return Killed("dual-simulated bit proof (e0+e1 != e) accepted");
    }
    return Survived("forged challenge split still rejected");
  };
  d["ZKP_BIT_BRANCH0_SKIP"] = [&kfx] {
    if (crypto::VerifyBit(kfx.params, kfx.cb0.commitment, kfx.bit0_bad)) {
      return Killed("bit=0 proof with tampered branch-0 response accepted");
    }
    return Survived("tampered branch-0 equation still rejected");
  };
  d["ZKP_BIT_BRANCH1_SKIP"] = [&kfx] {
    if (crypto::VerifyBit(kfx.params, kfx.cb1.commitment, kfx.bit1_bad)) {
      return Killed("bit=1 proof with tampered branch-1 response accepted");
    }
    return Survived("tampered branch-1 equation still rejected");
  };
  d["ZKP_RANGE_WIDTH_SKIP"] = [&kfx] {
    if (crypto::VerifyRange(kfx.params, kfx.range5.commitment,
                            kfx.range5_proof, 5)) {
      return Killed("4-bit transcript accepted against a 5-bit claim");
    }
    return Survived("wrong-width transcript still rejected");
  };
  d["ZKP_RANGE_BIT_SKIP"] = [&kfx] {
    if (crypto::VerifyRange(kfx.params, kfx.range5.commitment,
                            kfx.range5_badbit, 4)) {
      return Killed("range proof with a tampered bit proof accepted");
    }
    return Survived("tampered bit proof still rejected");
  };
  d["ZKP_RANGE_PRODUCT_ACCEPT"] = [&kfx] {
    if (crypto::VerifyRange(kfx.params, kfx.c9.commitment, kfx.range5_proof,
                            4)) {
      return Killed("range proof for Commit(5) accepted against Commit(9)");
    }
    return Survived("unbound transcript still rejected");
  };
  d["ZKP_UPPER_SLACK_ACCEPT"] = [&kfx] {
    if (crypto::VerifyUpperBound(kfx.params, kfx.c50.commitment,
                                 kfx.range5_proof, BigInt(40), 4)) {
      return Killed("50 <= 40 'proved' by an unrelated transcript");
    }
    return Survived("violating upper bound still rejected");
  };
  d["ZKP_LOWER_SLACK_ACCEPT"] = [&kfx] {
    if (crypto::VerifyLowerBound(kfx.params, kfx.c10.commitment,
                                 kfx.range5_proof, BigInt(20), 4)) {
      return Killed("10 >= 20 'proved' by an unrelated transcript");
    }
    return Survived("violating lower bound still rejected");
  };
  d["RSA_VERIFY_LENGTH_SKIP"] = [&kfx] {
    if (crypto::RsaVerify(kfx.rsa.pub, kfx.msg_a, kfx.sig_prefixed)) {
      return Killed("zero-prefixed (wrong-length) signature accepted");
    }
    return Survived("wrong-length signature still rejected");
  };
  d["RSA_VERIFY_RANGE_SKIP"] = [&kfx] {
    if (!kfx.have_overrange) {
      return Survived(
          "no sig + n fits the modulus width for this key; range mutant "
          "unreachable by a well-formed probe");
    }
    if (crypto::RsaVerify(kfx.rsa.pub, kfx.overrange_msg, kfx.overrange_sig)) {
      return Killed("signature value >= n accepted");
    }
    return Survived("over-range signature still rejected");
  };
  d["RSA_VERIFY_ACCEPT"] = [&kfx] {
    if (crypto::RsaVerify(kfx.rsa.pub, kfx.msg_b, kfx.sig_a)) {
      return Killed("signature for message A accepted for message B");
    }
    return Survived("cross-message signature still rejected");
  };
  d["PAILLIER_ENCRYPT_RANGE_SKIP"] = [&kfx] {
    Drbg drbg(5);
    auto ct = crypto::PaillierEncrypt(kfx.paillier.pub, kfx.paillier.pub.n,
                                      drbg);
    if (ct.ok()) return Killed("plaintext m = n encrypted without error");
    return Survived("out-of-range plaintext still rejected");
  };
  d["PAILLIER_DECRYPT_RANGE_SKIP"] = [&kfx] {
    Drbg drbg(6);
    auto ct = crypto::PaillierEncrypt(kfx.paillier.pub, BigInt(5), drbg);
    if (!ct.ok()) return Killed("honest encryption failed");
    crypto::PaillierCiphertext bad{ct->c + kfx.paillier.pub.n2};
    auto m = crypto::PaillierDecrypt(kfx.paillier, bad);
    if (m.ok()) return Killed("ciphertext >= n^2 decrypted without error");
    return Survived("out-of-range ciphertext still rejected");
  };
  d["MERKLE_INCLUSION_BOUNDS_SKIP"] = [&kfx] {
    Bytes root = crypto::MerkleTree::HashLeaf(kfx.merkle_leaf);
    if (crypto::MerkleTree::VerifyInclusion(kfx.merkle_leaf, 1, 1, {}, root)) {
      return Killed("index == tree_size accepted by inclusion verify");
    }
    return Survived("out-of-bounds index still rejected");
  };
  d["MERKLE_INCLUSION_ACCEPT"] = [] {
    crypto::MerkleTree t;
    t.Append(ToBytes("a"));
    t.Append(ToBytes("b"));
    t.Append(ToBytes("c"));
    auto proof = t.InclusionProof(0, 3);
    if (!proof.ok()) return Killed("inclusion proof generation failed");
    if (crypto::MerkleTree::VerifyInclusion(ToBytes("x"), 0, 3, *proof,
                                            t.Root())) {
      return Killed("wrong leaf accepted by inclusion verify");
    }
    return Survived("wrong leaf still rejected");
  };
  d["MERKLE_CONSISTENCY_ACCEPT"] = [] {
    crypto::MerkleTree t;
    for (const char* s : {"a", "b", "c", "d", "e"}) t.Append(ToBytes(s));
    auto proof = t.ConsistencyProof(2, 5);
    if (!proof.ok()) return Killed("consistency proof generation failed");
    Bytes wrong_old = crypto::MerkleTree::HashLeaf(ToBytes("not-the-root"));
    if (crypto::MerkleTree::VerifyConsistency(2, 5, wrong_old, t.Root(),
                                              *proof)) {
      return Killed("wrong old root accepted by consistency verify");
    }
    return Survived("wrong old root still rejected");
  };
  d["MERKLE_LEAF_DOMAIN_TAG"] = [&kfx] {
    crypto::MerkleTree t;
    t.Append(kfx.merkle_leaf);
    if (t.Root() != kfx.merkle_baseline_root) {
      return Killed("leaf domain tag changed the Merkle root");
    }
    return Survived("root still matches the unmutated baseline");
  };

  // ------------------------------------------------------ ledger-audit
  d["LEDGER_AUDIT_ROOT_SKIP"] = [] {
    ledger::LedgerDb db;
    for (int i = 0; i < 3; ++i) db.Append(ToBytes("entry"), i);
    (void)db.TamperWithEntryForTest(1, ToBytes("rewritten"));
    if (db.Audit().ok()) return Killed("tampered payload passed the audit");
    return Survived("tampered payload still fails the audit");
  };
  d["LEDGER_AUDIT_SEQUENCE_SKIP"] = [] {
    ledger::LedgerDb db;
    for (int i = 0; i < 3; ++i) db.Append(ToBytes("entry"), i);
    (void)db.RenumberEntryForTest(2, 7);  // Root recommitted; only the
    if (db.Audit().ok()) {                // dense-sequence check can object.
      return Killed("renumbered entry passed the audit");
    }
    return Survived("sequence gap still fails the audit");
  };
  d["LEDGER_PROOF_SIZE_SKIP"] = [] {
    ledger::LedgerDb db;
    for (int i = 0; i < 3; ++i) {
      db.Append(ToBytes("entry " + std::to_string(i)), i);
    }
    auto entry = db.GetEntry(1);
    auto proof = db.ProveInclusion(1, 2);
    auto digest2 = db.DigestAt(2);
    if (!entry.ok() || !proof.ok() || !digest2.ok()) {
      return Killed("proof material generation failed");
    }
    // Mismatched wrapper: proof carved at size 2, digest claims size 3 but
    // carries the size-2 root, so the inner Merkle check succeeds and only
    // the preamble can reject.
    ledger::LedgerDigest digest{3, digest2->root};
    if (ledger::LedgerDb::VerifyInclusion(*entry, *proof, digest)) {
      return Killed("proof/digest size mismatch accepted");
    }
    return Survived("size mismatch still rejected by the preamble");
  };

  // ------------------------------------------------------ consensus-sim
  d["RAFT_VOTE_QUORUM_MINUS_ONE"] = [] {
    RaftRig rig(3, /*start_timers=*/true);
    rig.Run(350 * kMillisecond);  // Elections fire; nobody ever votes.
    if (rig.replica->role() == consensus::RaftReplica::Role::kLeader) {
      return Killed("candidate won with 1 of 3 votes");
    }
    return Survived("single self-vote still loses the election");
  };
  d["RAFT_ELECTION_RESTRICTION_SKIP"] = [] {
    RaftRig rig(3, /*start_timers=*/false);
    rig.SendAppendEntries(1, 1, 0, 0, 0, {{1, ToBytes("cmd")}});
    rig.Run(10 * kMillisecond);
    if (rig.replica->log_size() != 1) return Killed("log seeding failed");
    rig.captured.clear();
    // Spy 2 campaigns with an EMPTY log at a higher term.
    rig.SendRequestVote(2, 2, 0, 0);
    rig.Run(10 * kMillisecond);
    for (const net::Message& m : rig.captured) {
      if (m.type != kRaftVoteReply || m.to != 2) continue;
      BinaryReader r(m.payload);
      (void)r.ReadU64();
      auto grant = r.ReadBool();
      if (grant.ok() && *grant) {
        return Killed("vote granted to a candidate with a stale log");
      }
      return Survived("stale-log candidate still denied");
    }
    return Killed("no vote reply observed");
  };
  d["RAFT_STALE_TERM_ACCEPT"] = [] {
    RaftRig rig(3, /*start_timers=*/false);
    rig.SendRequestVote(1, 5, 0, 0);  // Push the replica to term 5.
    rig.Run(10 * kMillisecond);
    rig.SendAppendEntries(2, 3, 0, 0, 0, {{3, ToBytes("stale")}});
    rig.Run(10 * kMillisecond);
    if (rig.replica->log_size() == 1) {
      return Killed("stale-term AppendEntries appended an entry");
    }
    return Survived("stale-term AppendEntries still refused");
  };
  d["RAFT_LOG_MATCH_SKIP"] = [] {
    RaftRig rig(3, /*start_timers=*/false);
    rig.SendAppendEntries(1, 1, 0, 0, 0, {{1, ToBytes("cmd1")}});
    rig.Run(10 * kMillisecond);
    if (rig.replica->log_size() != 1) return Killed("log seeding failed");
    // prev entry exists but with term 1, not the claimed term 9.
    rig.SendAppendEntries(1, 1, 1, 9, 0, {{1, ToBytes("cmd2")}});
    rig.Run(10 * kMillisecond);
    if (rig.replica->log_size() == 2) {
      return Killed("entry appended despite prev-term mismatch");
    }
    return Survived("prev-term mismatch still refused");
  };
  d["RAFT_COMMIT_QUORUM_MINUS_ONE"] = [] {
    RaftRig rig(5, /*start_timers=*/true);  // Majority is 3.
    if (!rig.ElectLeader({1, 2})) return Survived("no leader elected");
    if (!rig.replica->Submit(ToBytes("op")).ok()) {
      return Survived("leader submit failed");
    }
    rig.Run(10 * kMillisecond);
    rig.SendAppendReply(1, rig.replica->term(), true, 1);  // 2 of 5 match.
    rig.Run(10 * kMillisecond);
    if (rig.replica->commit_index() >= 1) {
      return Killed("entry committed with 2 of 5 replicas matching");
    }
    return Survived("entry still uncommitted below majority");
  };
  d["RAFT_COMMIT_FOREIGN_TERM"] = [] {
    RaftRig rig(3, /*start_timers=*/false);
    rig.SendAppendEntries(1, 1, 0, 0, 0, {{1, ToBytes("old")}});
    rig.Run(10 * kMillisecond);
    if (rig.replica->log_size() != 1) return Killed("log seeding failed");
    rig.replica->Start();  // Now campaign past term 1.
    if (!rig.ElectLeader({1})) return Survived("no leader elected");
    if (rig.replica->TermAt(1) >= rig.replica->term()) {
      return Survived("seeded entry unexpectedly at the current term");
    }
    rig.SendAppendReply(2, rig.replica->term(), true, 1);  // Quorum on idx 1.
    rig.Run(10 * kMillisecond);
    if (rig.replica->commit_index() >= 1) {
      return Killed("prior-term entry committed by count alone");
    }
    return Survived("prior-term entry still held back");
  };
  d["PBFT_PRIMARY_CHECK_SKIP"] = [] {
    PbftRig rig;
    rig.SendPrePrepare(2, 0, 1, ToBytes("impostor"));  // Primary of v0 is 0.
    rig.Run(10 * kMillisecond);
    if (rig.CountFromReplica(kPbftPrepare) > 0) {
      return Killed("backup prepared a pre-prepare from a non-primary");
    }
    return Survived("non-primary pre-prepare still ignored");
  };
  d["PBFT_WATERMARK_SKIP"] = [] {
    PbftRig rig(/*watermark_window=*/1);  // Backup cap: last_executed + 2.
    rig.SendPrePrepare(0, 0, 3, ToBytes("beyond"));
    rig.Run(10 * kMillisecond);
    if (rig.CountFromReplica(kPbftPrepare) > 0) {
      return Killed("pre-prepare beyond the high watermark prepared");
    }
    return Survived("beyond-watermark pre-prepare still deferred");
  };
  d["PBFT_CONFLICTING_DIGEST_ACCEPT"] = [] {
    PbftRig rig;
    rig.SendPrePrepare(0, 0, 1, ToBytes("cmd-A"));
    rig.Run(10 * kMillisecond);
    rig.captured.clear();
    rig.SendPrePrepare(0, 0, 1, ToBytes("cmd-B"));  // Equivocation.
    rig.Run(10 * kMillisecond);
    Bytes digest_b = crypto::Sha256::Hash(ToBytes("cmd-B"));
    if (rig.CountFromReplica(kPbftPrepare, &digest_b) > 0) {
      return Killed("conflicting second pre-prepare prepared");
    }
    return Survived("conflicting pre-prepare still refused");
  };
  d["PBFT_PREPARE_QUORUM_MINUS_ONE"] = [] {
    PbftRig rig;
    Bytes cmd = ToBytes("cmd");
    Bytes digest = crypto::Sha256::Hash(cmd);
    rig.SendPrePrepare(0, 0, 1, cmd);
    rig.Run(10 * kMillisecond);
    rig.SendPrepare(2, 0, 1, digest);  // prepares = {1, 2}: one short of 3.
    rig.Run(10 * kMillisecond);
    if (rig.CountFromReplica(kPbftCommit) > 0) {
      return Killed("commit sent with 2f prepares");
    }
    return Survived("no commit below the 2f+1 prepare quorum");
  };
  d["PBFT_COMMIT_QUORUM_MINUS_ONE"] = [] {
    PbftRig rig;
    Bytes cmd = ToBytes("cmd");
    Bytes digest = crypto::Sha256::Hash(cmd);
    rig.SendPrePrepare(0, 0, 1, cmd);
    rig.Run(10 * kMillisecond);
    rig.SendPrepare(2, 0, 1, digest);
    rig.SendPrepare(3, 0, 1, digest);  // Prepared; replica commits itself.
    rig.Run(10 * kMillisecond);
    rig.SendCommit(0, 0, 1, digest);  // commits = {0, 1}: one short of 3.
    rig.Run(10 * kMillisecond);
    if (rig.replica->num_executed() >= 1) {
      return Killed("executed with 2f commits");
    }
    return Survived("no execution below the 2f+1 commit quorum");
  };
  d["PBFT_EXEC_DEDUP_SKIP"] = [] {
    PbftRig rig;
    Bytes cmd = ToBytes("cmd");
    Bytes digest = crypto::Sha256::Hash(cmd);
    for (uint64_t seq = 1; seq <= 2; ++seq) {  // Same command, two slots.
      rig.SendPrePrepare(0, 0, seq, cmd);
      rig.Run(8 * kMillisecond);
      rig.SendPrepare(2, 0, seq, digest);
      rig.SendPrepare(3, 0, seq, digest);
      rig.Run(8 * kMillisecond);
      rig.SendCommit(0, 0, seq, digest);
      rig.SendCommit(2, 0, seq, digest);
      rig.Run(8 * kMillisecond);
    }
    if (rig.replica->num_executed() >= 2) {
      return Killed("duplicate request digest executed twice");
    }
    return Survived("duplicate digest still executed once");
  };
  d["PBFT_VIEWCHANGE_STALE_ACCEPT"] = [] {
    PbftRig rig;
    rig.SendNewView(0, 8);  // 8 % 4 == 0: node 0 may install view 8.
    rig.Run(8 * kMillisecond);
    if (rig.replica->view() != 8) return Killed("NewView(8) not installed");
    // Two ViewChange(10) messages put the replica in view_changing_ state
    // without installing anything (10 % 4 == 2, not us).
    rig.SendViewChange(0, 10);
    rig.SendViewChange(2, 10);
    rig.Run(8 * kMillisecond);
    // Stale view changes: 5 < 8, but 5 % 4 == 1 == our id, so the mutant
    // walks into MaybeBecomeNewPrimary(5) and installs a view REGRESSION.
    rig.SendViewChange(0, 5);
    rig.SendViewChange(2, 5);
    rig.SendViewChange(3, 5);
    rig.Run(8 * kMillisecond);
    if (rig.replica->view() == 5) {
      return Killed("stale ViewChange(5) regressed the view from 8 to 5");
    }
    return Survived("stale view changes still discarded");
  };

  // ---------------------------------------------------------- recovery
  d["RECOVERY_CRC_CHECK_SKIP"] = [] {
    std::string dir = RecoveryScratchDir("crc_skip");
    recovery::CheckpointStore store(dir);
    if (!store.Init().ok()) return Killed("checkpoint store init failed");
    ledger::LedgerDb ledger;
    ledger.Append(ToBytes("crc-entry-0"), 1);
    ledger.Append(ToBytes("crc-entry-1"), 2);
    recovery::CheckpointContents contents;
    contents.ledger = &ledger;
    contents.consensus_seq = 2;
    contents.app_state = ToBytes("app-state-blob");
    if (!store.Save(contents).ok()) return Killed("checkpoint save failed");
    // Flip the file's final byte: it lands in the app-state record body,
    // so every frame length stays intact and only the CRC can object.
    std::vector<std::string> files = store.ListFiles();
    if (files.empty()) return Killed("no checkpoint file on disk");
    std::string path = dir + "/" + files.back();
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    if (f == nullptr) return Killed("cannot reopen checkpoint file");
    std::fseek(f, -1, SEEK_END);
    int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_END);
    std::fputc(c ^ 0x5a, f);
    std::fclose(f);
    if (store.LoadLatest().ok()) {
      return Killed("corrupt checkpoint loaded despite a CRC mismatch");
    }
    return Survived("corrupt checkpoint still quarantined");
  };
  d["RECOVERY_ROOT_CHECK_SKIP"] = [] {
    std::string dir = RecoveryScratchDir("root_skip");
    recovery::CheckpointStore store(dir);
    if (!store.Init().ok()) return Killed("checkpoint store init failed");
    ledger::LedgerDb ledger;
    ledger.Append(ToBytes("root-entry-A"), 1);
    ledger.Append(ToBytes("root-entry-B"), 2);
    recovery::CheckpointContents contents;
    contents.ledger = &ledger;
    contents.consensus_seq = 2;
    if (!store.Save(contents).ok()) return Killed("checkpoint save failed");
    // Swap the first embedded ledger entry for a different one, re-framed
    // with a valid CRC: every record parses, but the recomputed Merkle
    // root no longer matches the manifest's commitment.
    std::vector<std::string> files = store.ListFiles();
    if (files.empty()) return Killed("no checkpoint file on disk");
    std::string path = dir + "/" + files.back();
    std::vector<Bytes> records;
    if (!ReadFramedRecords(path, &records) || records.size() < 2) {
      return Killed("cannot parse checkpoint frames");
    }
    ledger::LedgerDb other;
    other.Append(ToBytes("root-entry-X"), 1);
    auto swapped = other.GetEntry(0);
    if (!swapped.ok()) return Killed("cannot build substitute entry");
    records[1] = swapped->Encode();
    if (!WriteFramedRecords(path, records)) {
      return Killed("cannot rewrite checkpoint file");
    }
    if (store.LoadLatest().ok()) {
      return Killed("checkpoint loaded with a mismatched Merkle root");
    }
    return Survived("root-mismatched checkpoint still rejected");
  };
  d["RECOVERY_STALE_CHECKPOINT_ACCEPT"] = [] {
    std::string dir = RecoveryScratchDir("stale_accept");
    recovery::CheckpointStore store(dir);
    if (!store.Init().ok()) return Killed("checkpoint store init failed");
    ledger::LedgerDb ledger;
    for (int i = 0; i < 3; ++i) {
      ledger.Append(ToBytes("stale-" + std::to_string(i)), i + 1);
    }
    recovery::CheckpointContents contents;
    contents.ledger = &ledger;
    contents.consensus_seq = 3;
    if (!store.Save(contents).ok()) return Killed("first save failed");
    for (int i = 3; i < 6; ++i) {
      ledger.Append(ToBytes("stale-" + std::to_string(i)), i + 1);
    }
    contents.consensus_seq = 6;
    if (!store.Save(contents).ok()) return Killed("second save failed");
    auto loaded = store.LoadLatest();
    if (!loaded.ok()) return Killed("no checkpoint loaded");
    if (loaded->manifest.consensus_seq != 6) {
      return Killed("stale checkpoint restored over the newest intact one");
    }
    return Survived("newest intact checkpoint still wins");
  };
  d["RECOVERY_REPLAY_OFF_BY_ONE"] = [] {
    ledger::LedgerDb full;
    ledger::LedgerDb restored;
    for (int i = 0; i < 4; ++i) {
      Bytes payload = ToBytes("replay-" + std::to_string(i));
      full.Append(payload, i + 1);
      if (i < 2) restored.Append(payload, i + 1);  // Checkpoint covers 2.
    }
    std::vector<Bytes> records;
    for (uint64_t seq = 0; seq < full.size(); ++seq) {
      auto entry = full.GetEntry(seq);
      if (!entry.ok()) return Killed("cannot encode journal record");
      records.push_back(entry->Encode());
    }
    auto appended = recovery::ReplayLedgerSuffix(records, &restored);
    if (!appended.ok() || restored.size() != 4) {
      return Killed("replay dropped the first post-checkpoint entry");
    }
    if (restored.Digest().root != full.Digest().root) {
      return Killed("replayed ledger diverged from the source");
    }
    return Survived("suffix replay still lands every entry");
  };
  d["RAFT_COMPACT_BEYOND_APPLIED"] = [] {
    RaftRig rig(3, /*start_timers=*/false);
    rig.SendAppendEntries(
        1, 1, 0, 0, /*commit=*/2,
        {{1, ToBytes("c1")}, {1, ToBytes("c2")}, {1, ToBytes("c3")}});
    rig.Run(10 * kMillisecond);
    if (rig.replica->log_size() != 3) return Killed("log seeding failed");
    // Entry 3 is committed=2's successor: in the log but never applied.
    auto reclaimed = rig.replica->CompactTo(3, ToBytes("snap"));
    if (!reclaimed.ok()) return Killed("compaction failed outright");
    if (rig.replica->snapshot_index() > 2) {
      return Killed("compaction discarded an entry never applied");
    }
    return Survived("compaction still clamped to the applied prefix");
  };
  d["RAFT_SNAPSHOT_STALE_ACCEPT"] = [] {
    RaftRig rig(3, /*start_timers=*/false);
    std::vector<uint64_t> installs;
    rig.replica->SetSnapshotInstaller(
        [&installs](uint64_t index, const Bytes&) {
          installs.push_back(index);
        });
    auto send_snapshot = [&rig](uint64_t index, const std::string& blob) {
      BinaryWriter w;
      w.WriteU64(1);  // term
      w.WriteU64(index);
      w.WriteU64(1);  // snapshot term
      w.WriteBytes(ToBytes(blob));
      rig.net.Send(1, 0, kRaftInstallSnapshot, w.bytes());
    };
    send_snapshot(10, "snap-10");
    rig.Run(10 * kMillisecond);
    if (rig.replica->snapshot_index() != 10) {
      return Killed("fresh snapshot was not installed");
    }
    send_snapshot(5, "snap-5");  // Stale: covered by the idx-10 install.
    rig.Run(10 * kMillisecond);
    if (installs.size() >= 2) {
      return Killed("stale snapshot reinstalled, rewinding restored state");
    }
    return Survived("stale snapshot still acknowledged without installing");
  };
  d["PBFT_STATE_MATCH_QUORUM_MINUS_ONE"] = [] {
    PbftRig rig;  // f = 1: state install requires f+1 = 2 vouchers.
    BinaryWriter blob;
    blob.WriteU64(4);        // Claimed last-executed sequence.
    blob.WriteU32(0);        // No executed digests.
    blob.WriteBytes(Bytes{});  // Empty app snapshot.
    BinaryWriter w;
    w.WriteU64(0);  // view
    w.WriteU64(4);  // stable_seq
    w.WriteBytes(blob.bytes());
    w.WriteU32(0);  // Empty executed suffix.
    rig.net.Send(0, 1, kPbftStateResponse, w.bytes());
    rig.Run(8 * kMillisecond);
    if (rig.replica->last_executed() >= 4) {
      return Killed("checkpoint installed from a single (f) voucher");
    }
    return Survived("state transfer still demands f+1 matching vouchers");
  };
  d["PBFT_GC_BEYOND_STABLE"] = [] {
    PbftRig rig(/*watermark_window=*/128, /*checkpoint_interval=*/2);
    Bytes c1 = ToBytes("gc-cmd-1");
    Bytes c2 = ToBytes("gc-cmd-2");
    Bytes c3 = ToBytes("gc-cmd-3");
    auto execute = [&rig](uint64_t seq, const Bytes& cmd) {
      Bytes digest = crypto::Sha256::Hash(cmd);
      rig.SendPrePrepare(0, 0, seq, cmd);
      rig.Run(8 * kMillisecond);
      rig.SendPrepare(2, 0, seq, digest);
      rig.SendPrepare(3, 0, seq, digest);
      rig.Run(8 * kMillisecond);
      rig.SendCommit(0, 0, seq, digest);
      rig.SendCommit(2, 0, seq, digest);
      rig.Run(8 * kMillisecond);
    };
    execute(1, c1);
    execute(2, c2);  // Interval boundary: replica checkpoints itself here.
    execute(3, c3);
    if (rig.replica->last_executed() != 3) {
      return Killed("execution never reached seq 3");
    }
    if (!rig.replica->HasSlot(3)) return Killed("slot 3 missing before GC");
    // Forge the two missing checkpoint votes for the replica's OWN digest
    // at seq 2 (reconstructed from the deterministic blob encoding);
    // stabilization then garbage-collects the log below the watermark.
    std::set<Bytes> digests{crypto::Sha256::Hash(c1),
                            crypto::Sha256::Hash(c2)};
    BinaryWriter blob;
    blob.WriteU64(2);
    blob.WriteU32(2);
    for (const Bytes& dig : digests) blob.WriteBytes(dig);
    blob.WriteBytes(Bytes{});  // No app-snapshot callback set.
    BinaryWriter vote;
    vote.WriteU64(2);
    vote.WriteBytes(crypto::Sha256::Hash(blob.bytes()));
    rig.net.Send(0, 1, kPbftCheckpoint, vote.bytes());
    rig.net.Send(2, 1, kPbftCheckpoint, vote.bytes());
    rig.Run(8 * kMillisecond);
    if (rig.replica->stable_checkpoint_seq() != 2) {
      return Killed("checkpoint at seq 2 never stabilized");
    }
    if (!rig.replica->HasSlot(3)) {
      return Killed("GC erased the slot just above the stable watermark");
    }
    return Survived("slots above the stable watermark still retained");
  };

  // ----------------------------------------------------------- engine
  d["ENC_WINDOW_START_INCLUSIVE"] = [&efx] {
    core::CentralizedOrdering ordering;
    core::EncryptedEngine engine(
        &efx.owner, &ordering, "worker", "hours",
        {{constraint::BoundDirection::kUpper, 8, 100, 32}}, 8,
        efx.probe_counter + 1);
    std::string w = efx.FreshName("wsi");
    Status s1 = engine.SubmitUpdate(MakeWorklogUpdate("u1", w, 5, 50));
    // Window (50, 150] excludes the first row; total 4 <= 8 must pass.
    Status s2 = engine.SubmitUpdate(MakeWorklogUpdate("u2", w, 4, 150));
    if (!s1.ok()) return Killed("in-window accept flipped: " + s1.message());
    if (!s2.ok()) {
      return Killed("row at ts == now - window counted into the aggregate");
    }
    return Survived("expired edge row still excluded");
  };
  d["ENC_WINDOW_END_EXCLUSIVE"] = [&efx] {
    core::CentralizedOrdering ordering;
    core::EncryptedEngine engine(
        &efx.owner, &ordering, "worker", "hours",
        {{constraint::BoundDirection::kUpper, 8, 100, 32}}, 8,
        efx.probe_counter + 1);
    std::string w = efx.FreshName("wee");
    Status s1 = engine.SubmitUpdate(MakeWorklogUpdate("u1", w, 5, 200));
    // Same timestamp: 5 + 4 = 9 > 8 must be rejected.
    Status s2 = engine.SubmitUpdate(MakeWorklogUpdate("u2", w, 4, 200));
    if (!s1.ok()) return Killed("first accept flipped: " + s1.message());
    if (s2.ok()) {
      return Killed("row at ts == now dropped from the aggregate");
    }
    return Survived("same-timestamp row still counted");
  };
  d["ENC_BOUND_OFFBYONE"] = [&efx] {
    Drbg drbg(41);
    const auto& pub = efx.owner.paillier_pub();
    const auto& params = efx.owner.pedersen();
    BigInt r(12345);
    auto enc_v = crypto::PaillierEncrypt(pub, BigInt(9), drbg);
    auto enc_r = crypto::PaillierEncrypt(pub, r, drbg);
    if (!enc_v.ok() || !enc_r.ok()) return Killed("encryption failed");
    auto cm = crypto::PedersenCommit(params, BigInt(9), r);
    auto proof = efx.owner.AttestUpperBound(*enc_v, *enc_r, cm, 8, 16);
    // Correct: 9 > 8 is a ConstraintViolation. The mutant lets 9 through
    // the bound check and then fails INSIDE proof generation instead
    // (InvalidArgument) — the status code is the observable difference.
    if (!proof.ok() &&
        proof.status().code() == StatusCode::kConstraintViolation) {
      return Survived("total == bound + 1 still reported as a violation");
    }
    return Killed("bound + 1 no longer classified as a constraint violation");
  };
  d["ENC_BINDING_SKIP"] = [&efx] {
    Drbg drbg(43);
    const auto& pub = efx.owner.paillier_pub();
    const auto& params = efx.owner.pedersen();
    auto enc_v = crypto::PaillierEncrypt(pub, BigInt(5), drbg);
    auto enc_r = crypto::PaillierEncrypt(pub, BigInt(7), drbg);
    if (!enc_v.ok() || !enc_r.ok()) return Killed("encryption failed");
    // Commitment opens to 6, ciphertexts decrypt to 5: inconsistent.
    auto cm = crypto::PedersenCommit(params, BigInt(6), BigInt(7));
    auto proof = efx.owner.AttestUpperBound(*enc_v, *enc_r, cm, 10, 16);
    if (proof.ok()) {
      return Killed("attested totals that contradict the commitment");
    }
    return Survived("ciphertext/commitment mismatch still rejected");
  };
  d["ENC_RANGE_PROOF_SKIP"] = [&efx] {
    core::CentralizedOrdering ordering;
    core::EncryptedEngine engine(
        &efx.owner, &ordering, "worker", "hours",
        {{constraint::BoundDirection::kUpper, 100, 0, 32}}, 8,
        efx.probe_counter + 1);
    std::string w = efx.FreshName("rps");
    auto sealed = engine.Seal(MakeWorklogUpdate("u1", w, 5, 10));
    if (!sealed.ok()) return Killed("sealing failed");
    sealed->sealed.range_proof.bit_proofs[0].z0 =
        sealed->sealed.range_proof.bit_proofs[0].z0.AddMod(
            BigInt(1), efx.owner.pedersen().q);
    Status s = engine.SubmitSealed(*sealed);
    if (s.ok()) return Killed("update accepted with a broken range proof");
    return Survived("broken producer range proof still rejected");
  };
  d["ENC_ATTEST_ACCEPT"] = [&efx] {
    // A Byzantine owner attests every upper bound against a loosened
    // statement: the returned proof is well-formed — for the WRONG bound.
    // Only the manager-side VerifyUpperBound (the mutated decision) stands
    // between that proof and a compliance certificate.
    class ByzantineOwner : public core::DataOwner {
     public:
      using core::DataOwner::DataOwner;
      Result<crypto::RangeProof> AttestUpperBound(
          const crypto::PaillierCiphertext& total_value_ct,
          const crypto::PaillierCiphertext& total_rand_ct,
          const crypto::PedersenCommitment& total_cm, int64_t bound,
          size_t slack_bits) override {
        return core::DataOwner::AttestUpperBound(
            total_value_ct, total_rand_ct, total_cm, bound + 1024, slack_bits);
      }
    };
    // Static: one Paillier keygen shared by the clean pass and the matrix.
    static ByzantineOwner byzantine{320, crypto::PedersenParams::Test256(),
                                    1313};
    core::CentralizedOrdering ordering;
    core::EncryptedEngine engine(
        &byzantine, &ordering, "worker", "hours",
        {{constraint::BoundDirection::kUpper, 100, 0, 32}}, 8,
        efx.probe_counter + 1);
    std::string w = efx.FreshName("byz");
    Status s = engine.SubmitUpdate(MakeWorklogUpdate("u1", w, 5, 10));
    if (s.ok()) {
      return Killed("proof for a loosened bound accepted as the attestation");
    }
    if (s.code() != StatusCode::kIntegrityViolation) {
      return Killed("wrong-statement proof misclassified: " + s.message());
    }
    return Survived("wrong-statement attestation still rejected by verify");
  };
  d["TOKEN_BUDGET_OFFBYONE"] = [&efx] {
    token::TokenWallet wallet(efx.authority.public_key(),
                              7000 + efx.probe_counter);
    std::string who = efx.FreshName("budget");
    auto got = wallet.Withdraw(efx.authority, who, 4, 10);  // Budget is 3.
    if (!got.ok() && wallet.NumTokens() == 0) {
      return Killed("withdrawal failed outright: " + got.status().message());
    }
    if (wallet.NumTokens() > 3) {
      return Killed("authority issued past the period budget");
    }
    return Survived("issuance still capped at the period budget");
  };
  d["TOKEN_SIG_ACCEPT"] = [&efx] {
    token::TokenVerifier verifier(efx.authority.public_key(), nullptr);
    token::Token forged;
    forged.serial = ToBytes("forged-serial");
    forged.signature = Bytes(efx.authority.public_key().ModulusBytes(), 0x5a);
    Status s = verifier.Spend(forged, 10);
    if (s.ok()) return Killed("forged token signature accepted");
    return Survived("forged token signature still rejected");
  };
  d["TOKEN_DOUBLE_SPEND_SKIP"] = [&efx] {
    token::TokenWallet wallet(efx.authority.public_key(),
                              8000 + efx.probe_counter);
    std::string who = efx.FreshName("dspend");
    auto got = wallet.Withdraw(efx.authority, who, 1, 10);
    if (!got.ok() || wallet.NumTokens() != 1) {
      return Killed("withdrawal failed");
    }
    auto tok = wallet.Take();
    if (!tok.ok()) return Killed("wallet take failed");
    token::TokenVerifier verifier(efx.authority.public_key(), nullptr);
    if (!verifier.Spend(*tok, 10).ok()) return Killed("first spend rejected");
    Status again = verifier.Spend(*tok, 10);
    if (again.ok()) return Killed("same serial spent twice");
    return Survived("double spend still detected");
  };
  d["FTE_SIG_ACCEPT"] = [&efx] {
    core::FederatedPlatform platform;
    platform.id = "p0";
    if (!CreateWorklogTable(platform.db).ok()) {
      return Killed("platform setup failed");
    }
    core::CentralizedOrdering ordering;
    core::FederatedTokenEngine engine({&platform}, &efx.authority, &ordering,
                                      "hours");
    std::string who = efx.FreshName("ftesig");
    token::Token forged;
    forged.serial = ToBytes("forged-" + who);
    forged.signature = Bytes(efx.authority.public_key().ModulusBytes(), 0x5a);
    engine.WalletOf(who).PutForTest(forged);
    Status s = engine.SubmitVia(0, MakeWorklogUpdate("u-" + who, who, 1, 10));
    if (s.ok()) return Killed("spend with a forged signature accepted");
    return Survived("forged token spend still rejected");
  };
  d["FTE_DOUBLE_SPEND_SKIP"] = [&efx] {
    core::FederatedPlatform platform;
    platform.id = "p0";
    if (!CreateWorklogTable(platform.db).ok()) {
      return Killed("platform setup failed");
    }
    core::CentralizedOrdering ordering;
    core::FederatedTokenEngine engine({&platform}, &efx.authority, &ordering,
                                      "hours");
    std::string who = efx.FreshName("ftedup");
    token::TokenWallet& wallet = engine.WalletOf(who);
    auto got = wallet.Withdraw(efx.authority, who, 1, 10);
    if (!got.ok() || wallet.NumTokens() != 1) {
      return Killed("withdrawal failed");
    }
    auto tok = wallet.Take();
    if (!tok.ok()) return Killed("wallet take failed");
    wallet.PutForTest(*tok);  // Same serial, twice.
    wallet.PutForTest(*tok);
    Status s1 = engine.SubmitVia(0, MakeWorklogUpdate("a-" + who, who, 1, 10));
    if (!s1.ok()) return Killed("first spend rejected: " + s1.message());
    Status s2 = engine.SubmitVia(0, MakeWorklogUpdate("b-" + who, who, 1, 11));
    if (s2.ok()) return Killed("replayed serial accepted by the engine");
    return Survived("replayed serial still rejected");
  };

  return d;
}

// Sites whose survival is expected and documented; they count against the
// kill rate but are listed with their rationale instead of failing silently.
// Currently empty: the last documented survivor (ENC_ATTEST_ACCEPT) fell to
// the Byzantine-owner negative-path probe.
const std::map<std::string, std::string>& ExpectedSurvivors() {
  static const std::map<std::string, std::string> kExpected = {};
  return kExpected;
}

struct SiteOutcome {
  const mutate::SiteInfo* info = nullptr;
  bool reached = false;
  bool killed = false;
  std::string rationale;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

int RunDriver(int argc, char** argv) {
  ConstraintFixture cfx;
  CryptoFixture kfx;
  EngineFixture efx;
  auto detectors = BuildDetectors(cfx, kfx, efx);

  // Every site must have a detector; every detector must name a site.
  bool wired = true;
  for (size_t i = 0; i < mutate::kNumMutationSites; ++i) {
    const mutate::SiteInfo& info = mutate::AllSites()[i];
    if (detectors.find(info.name) == detectors.end()) {
      std::printf("UNWIRED site %s has no detector\n", info.name);
      wired = false;
    }
  }
  for (const auto& [name, fn] : detectors) {
    if (mutate::FindSiteByName(name) == nullptr) {
      std::printf("UNKNOWN detector %s names no registered site\n",
                  name.c_str());
      wired = false;
    }
  }
  if (!wired) return 2;

  // Single-site debug mode: mutate + detect one site, verbosely.
  if (argc > 1) {
    const mutate::SiteInfo* info = mutate::FindSiteByName(argv[1]);
    if (info == nullptr) {
      std::printf("unknown site '%s'\n", argv[1]);
      return 2;
    }
    mutate::ResetReachedFlags();
    mutate::ActivateSite(info->site);
    Detection det = detectors.at(info->name)();
    bool reached = mutate::SiteReached(info->site);
    mutate::ClearActiveSite();
    std::printf("site      %s\n  category %s\n  location %s\n  mutant   %s\n",
                info->name, mutate::CategoryName(info->category),
                info->location, info->description);
    std::printf("  reached  %s\n  verdict  %s\n  why      %s\n",
                reached ? "yes" : "no", det.killed ? "KILLED" : "SURVIVED",
                det.rationale.c_str());
    return det.killed ? 0 : 1;
  }

  // Clean pass: no detector may flag correct code.
  mutate::ClearActiveSite();
  size_t clean_failures = 0;
  for (size_t i = 0; i < mutate::kNumMutationSites; ++i) {
    const mutate::SiteInfo& info = mutate::AllSites()[i];
    Detection det = detectors.at(info.name)();
    if (det.killed) {
      std::printf("CLEAN-FAIL %-32s %s\n", info.name, det.rationale.c_str());
      ++clean_failures;
    }
  }
  if (clean_failures > 0) {
    std::printf(
        "PREVER_MUTATION_REPORT {\"sites\":%zu,\"clean_failures\":%zu,"
        "\"killed\":0,\"kill_rate\":0.0,\"survivors\":[]}\n",
        mutate::kNumMutationSites, clean_failures);
    return 2;
  }

  // Mutation matrix.
  std::vector<SiteOutcome> outcomes;
  size_t killed = 0, reached = 0;
  for (size_t i = 0; i < mutate::kNumMutationSites; ++i) {
    const mutate::SiteInfo& info = mutate::AllSites()[i];
    mutate::ResetReachedFlags();
    mutate::ActivateSite(info.site);
    Detection det = detectors.at(info.name)();
    SiteOutcome out;
    out.info = &info;
    out.reached = mutate::SiteReached(info.site);
    out.killed = det.killed;
    out.rationale = det.rationale;
    mutate::ClearActiveSite();
    if (out.killed) ++killed;
    if (out.reached) ++reached;
    std::printf("%-8s %-34s %-11s %s\n", out.killed ? "KILLED" : "SURVIVED",
                info.name, mutate::CategoryName(info.category),
                out.reached ? "" : "(site never reached)");
    outcomes.push_back(std::move(out));
  }

  const double rate =
      static_cast<double>(killed) / static_cast<double>(outcomes.size());
  std::printf("\n%zu/%zu mutants killed (%.1f%%), %zu sites reached\n", killed,
              outcomes.size(), 100.0 * rate, reached);

  std::string survivors_json;
  for (const SiteOutcome& out : outcomes) {
    if (out.killed) continue;
    auto expected = ExpectedSurvivors().find(out.info->name);
    bool is_expected = expected != ExpectedSurvivors().end();
    std::printf("\nSURVIVOR %s%s\n  location  %s\n  mutant    %s\n",
                out.info->name, is_expected ? " (expected)" : "",
                out.info->location, out.info->description);
    std::printf("  reached   %s\n  rationale %s\n  replay    "
                "PREVER_MUTATION=%s ./tests/mutation_kill_test %s\n",
                out.reached ? "yes" : "no",
                is_expected ? expected->second.c_str() : out.rationale.c_str(),
                out.info->name, out.info->name);
    if (!survivors_json.empty()) survivors_json += ",";
    survivors_json +=
        "{\"site\":\"" + std::string(out.info->name) +
        "\",\"reached\":" + (out.reached ? "true" : "false") +
        ",\"expected\":" + (is_expected ? "true" : "false") +
        ",\"rationale\":\"" +
        JsonEscape(is_expected ? expected->second : out.rationale) + "\"}";
  }

  std::printf(
      "PREVER_MUTATION_REPORT {\"sites\":%zu,\"reached\":%zu,\"killed\":%zu,"
      "\"kill_rate\":%.4f,\"clean_failures\":0,\"survivors\":[%s]}\n",
      outcomes.size(), reached, killed, rate, survivors_json.c_str());
  return rate >= 0.95 ? 0 : 1;
}

}  // namespace
}  // namespace prever

int main(int argc, char** argv) { return prever::RunDriver(argc, argv); }

#endif  // PREVER_MUTATIONS
