#include <gtest/gtest.h>

#include "consensus/pbft.h"
#include "consensus/raft.h"

namespace prever::consensus {
namespace {

Bytes Cmd(int i) { return ToBytes("cmd-" + std::to_string(i)); }

// ------------------------------------------------------------------- PBFT

TEST(PbftTest, CommitsSingleCommandOnAllReplicas) {
  net::SimNetwork net;
  PbftCluster cluster(PbftConfig{4, 200 * kMillisecond}, &net);
  cluster.Submit(Cmd(1));
  net.RunUntilIdle();
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(cluster.ExecutedBy(i).size(), 1u) << i;
    EXPECT_EQ(cluster.ExecutedBy(i)[0], Cmd(1));
  }
}

TEST(PbftTest, CommitsManyCommandsInSameOrderEverywhere) {
  net::SimNetwork net;
  PbftCluster cluster(PbftConfig{4, 500 * kMillisecond}, &net);
  for (int i = 0; i < 30; ++i) cluster.Submit(Cmd(i));
  net.RunUntilIdle();
  ASSERT_EQ(cluster.ExecutedBy(0).size(), 30u);
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(cluster.ExecutedBy(i), cluster.ExecutedBy(0)) << i;
  }
}

TEST(PbftTest, ToleratesOneSilentBackup) {
  net::SimNetwork net;
  PbftCluster cluster(PbftConfig{4, 200 * kMillisecond}, &net);
  cluster.replica(2).SetFaultMode(PbftFaultMode::kSilent);
  for (int i = 0; i < 5; ++i) cluster.Submit(Cmd(i));
  net.RunUntilIdle();
  // 3 honest replicas (quorum 2f+1 = 3) all execute.
  EXPECT_EQ(cluster.ExecutedBy(0).size(), 5u);
  EXPECT_EQ(cluster.ExecutedBy(1).size(), 5u);
  EXPECT_EQ(cluster.ExecutedBy(3).size(), 5u);
  EXPECT_TRUE(cluster.ExecutedBy(2).empty());
}

TEST(PbftTest, SilentPrimaryTriggersViewChange) {
  net::SimNetwork net;
  PbftCluster cluster(PbftConfig{4, 100 * kMillisecond}, &net);
  cluster.replica(0).SetFaultMode(PbftFaultMode::kSilent);  // View-0 primary.
  cluster.Submit(Cmd(1));
  net.RunUntil(5 * kSecond);
  // Honest replicas must have moved to a later view and executed.
  EXPECT_GE(cluster.replica(1).view(), 1u);
  EXPECT_EQ(cluster.ExecutedBy(1).size(), 1u);
  EXPECT_EQ(cluster.ExecutedBy(2).size(), 1u);
  EXPECT_EQ(cluster.ExecutedBy(3).size(), 1u);
}

TEST(PbftTest, EquivocatingPrimaryCannotCauseDivergence) {
  net::SimNetwork net;
  PbftCluster cluster(PbftConfig{4, 100 * kMillisecond}, &net);
  cluster.replica(0).SetFaultMode(PbftFaultMode::kEquivocate);
  cluster.Submit(Cmd(1));
  net.RunUntil(10 * kSecond);
  // Safety: honest replicas never execute different commands at the same
  // position, whatever liveness path was taken.
  const auto& log1 = cluster.ExecutedBy(1);
  const auto& log2 = cluster.ExecutedBy(2);
  const auto& log3 = cluster.ExecutedBy(3);
  size_t common12 = std::min(log1.size(), log2.size());
  for (size_t i = 0; i < common12; ++i) EXPECT_EQ(log1[i], log2[i]);
  size_t common13 = std::min(log1.size(), log3.size());
  for (size_t i = 0; i < common13; ++i) EXPECT_EQ(log1[i], log3[i]);
}

TEST(PbftTest, SevenReplicasToleratesTwoFaults) {
  net::SimNetwork net;
  PbftCluster cluster(PbftConfig{7, 300 * kMillisecond}, &net);
  cluster.replica(3).SetFaultMode(PbftFaultMode::kSilent);
  cluster.replica(5).SetFaultMode(PbftFaultMode::kSilent);
  for (int i = 0; i < 10; ++i) cluster.Submit(Cmd(i));
  net.RunUntilIdle();
  size_t executed = 0;
  for (size_t i = 0; i < 7; ++i) {
    if (cluster.ExecutedBy(i).size() == 10) ++executed;
  }
  EXPECT_GE(executed, 5u);  // 2f+1 = 5 honest replicas execute everything.
}

TEST(PbftTest, DuplicateSubmissionsExecuteOnce) {
  net::SimNetwork net;
  PbftCluster cluster(PbftConfig{4, 200 * kMillisecond}, &net);
  cluster.Submit(Cmd(1));
  cluster.Submit(Cmd(1));
  net.RunUntilIdle();
  EXPECT_EQ(cluster.ExecutedBy(0).size(), 1u);
}

TEST(PbftTest, CascadingViewChangesSurviveTwoFaultyPrimaries) {
  // 7 replicas tolerate f = 2 faults. The primaries of views 0 AND 1 are
  // silent: the cluster must walk through two view changes and still
  // execute on every honest replica.
  net::SimNetwork net;
  PbftCluster cluster(PbftConfig{7, 100 * kMillisecond}, &net);
  cluster.replica(0).SetFaultMode(PbftFaultMode::kSilent);  // View 0 primary.
  cluster.replica(1).SetFaultMode(PbftFaultMode::kSilent);  // View 1 primary.
  cluster.Submit(Cmd(1));
  net.RunUntil(20 * kSecond);
  size_t executed = 0;
  for (size_t i = 2; i < 7; ++i) {
    if (cluster.ExecutedBy(i).size() == 1) ++executed;
  }
  EXPECT_GE(executed, 5u);  // All honest replicas.
  EXPECT_GE(cluster.replica(2).view(), 2u);
}

TEST(PbftTest, ViewChangePreservesPreparedRequests) {
  // A request prepares in view 0, then the primary goes silent before the
  // commit quorum forms everywhere. After the view change the request must
  // execute exactly once (no loss, no duplication).
  net::SimNetwork net;
  PbftCluster cluster(PbftConfig{4, 150 * kMillisecond}, &net);
  cluster.Submit(Cmd(1));
  // Let the pre-prepare/prepare exchange happen...
  net.RunUntil(4 * kMillisecond);
  // ...then silence the primary mid-protocol.
  cluster.replica(0).SetFaultMode(PbftFaultMode::kSilent);
  net.RunUntil(20 * kSecond);
  for (size_t i = 1; i < 4; ++i) {
    ASSERT_EQ(cluster.ExecutedBy(i).size(), 1u) << i;
    EXPECT_EQ(cluster.ExecutedBy(i)[0], Cmd(1));
  }
}

// ------------------------------------------------------------------- Raft

void RunUntilLeader(net::SimNetwork& net, RaftCluster& cluster,
                    SimTime deadline = 10 * kSecond) {
  SimTime step = 50 * kMillisecond;
  for (SimTime t = step; t <= deadline; t += step) {
    net.RunUntil(t);
    if (cluster.Leader().ok()) return;
  }
}

TEST(RaftTest, ElectsExactlyOneLeaderPerTerm) {
  net::SimNetwork net;
  RaftCluster cluster(RaftConfig{}, &net);
  RunUntilLeader(net, cluster);
  auto leader = cluster.Leader();
  ASSERT_TRUE(leader.ok());
  size_t leaders = 0;
  for (size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.replica(i).role() == RaftReplica::Role::kLeader &&
        cluster.replica(i).term() == (*leader)->term()) {
      ++leaders;
    }
  }
  EXPECT_EQ(leaders, 1u);
}

TEST(RaftTest, ReplicatesAndAppliesEverywhere) {
  net::SimNetwork net;
  RaftCluster cluster(RaftConfig{}, &net);
  RunUntilLeader(net, cluster);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.Submit(Cmd(i)).ok());
  }
  net.RunUntil(net.Now() + 2 * kSecond);
  for (size_t i = 0; i < cluster.size(); ++i) {
    ASSERT_EQ(cluster.AppliedBy(i).size(), 20u) << i;
    EXPECT_EQ(cluster.AppliedBy(i), cluster.AppliedBy(0));
  }
}

TEST(RaftTest, SubmitFailsWithoutLeader) {
  net::SimNetwork net;
  RaftCluster cluster(RaftConfig{}, &net);
  // No events processed yet: no leader.
  EXPECT_EQ(cluster.Submit(Cmd(1)).code(), StatusCode::kUnavailable);
}

TEST(RaftTest, SurvivesLeaderCrash) {
  net::SimNetwork net;
  RaftCluster cluster(RaftConfig{5, 150 * kMillisecond, 300 * kMillisecond,
                                 50 * kMillisecond, 7},
                      &net);
  RunUntilLeader(net, cluster);
  auto first = cluster.Leader();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(cluster.Submit(Cmd(0)).ok());
  net.RunUntil(net.Now() + kSecond);

  net::NodeId crashed = (*first)->id();
  (*first)->Crash();
  net.Isolate(crashed);
  RunUntilLeader(net, cluster);
  auto second = cluster.Leader();
  ASSERT_TRUE(second.ok());
  EXPECT_NE((*second)->id(), crashed);
  ASSERT_TRUE(cluster.Submit(Cmd(1)).ok());
  net.RunUntil(net.Now() + 2 * kSecond);

  // The surviving majority applied both commands in order.
  for (size_t i = 0; i < cluster.size(); ++i) {
    if (static_cast<net::NodeId>(i) == crashed) continue;
    ASSERT_EQ(cluster.AppliedBy(i).size(), 2u) << i;
    EXPECT_EQ(cluster.AppliedBy(i)[0], Cmd(0));
    EXPECT_EQ(cluster.AppliedBy(i)[1], Cmd(1));
  }
}

TEST(RaftTest, CrashedFollowerCatchesUpAfterRestart) {
  net::SimNetwork net;
  RaftCluster cluster(RaftConfig{}, &net);
  RunUntilLeader(net, cluster);
  auto leader = cluster.Leader();
  ASSERT_TRUE(leader.ok());
  net::NodeId follower = ((*leader)->id() + 1) % 3;
  cluster.replica(follower).Crash();
  net.Isolate(follower);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(cluster.Submit(Cmd(i)).ok());
  net.RunUntil(net.Now() + kSecond);
  EXPECT_TRUE(cluster.AppliedBy(follower).empty());

  cluster.replica(follower).Restart();
  net.Reconnect(follower);
  net.RunUntil(net.Now() + 3 * kSecond);
  EXPECT_EQ(cluster.AppliedBy(follower).size(), 5u);
}

TEST(RaftTest, MinorityPartitionCannotCommit) {
  net::SimNetwork net;
  RaftCluster cluster(RaftConfig{5, 150 * kMillisecond, 300 * kMillisecond,
                                 50 * kMillisecond, 11},
                      &net);
  RunUntilLeader(net, cluster);
  auto leader = cluster.Leader();
  ASSERT_TRUE(leader.ok());
  net::NodeId lid = (*leader)->id();
  // Cut the leader plus one follower off from the other three.
  net::NodeId buddy = (lid + 1) % 5;
  for (net::NodeId other = 0; other < 5; ++other) {
    if (other == lid || other == buddy) continue;
    net.Partition(lid, other);
    net.Partition(buddy, other);
  }
  uint64_t commit_before = (*leader)->commit_index();
  ASSERT_TRUE((*leader)->Submit(Cmd(99)).ok());
  net.RunUntil(net.Now() + 2 * kSecond);
  // The minority leader cannot advance its commit index.
  EXPECT_EQ((*leader)->commit_index(), commit_before);
}

// Property: PBFT and Raft both deliver identical logs on all correct
// replicas across random seeds (agreement + total order).
class ConsensusAgreementProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ConsensusAgreementProperty, PbftLogsAgree) {
  net::SimNetConfig cfg;
  cfg.seed = GetParam();
  net::SimNetwork net(cfg);
  PbftCluster cluster(PbftConfig{4, 300 * kMillisecond}, &net);
  for (int i = 0; i < 12; ++i) cluster.Submit(Cmd(i));
  net.RunUntilIdle();
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(cluster.ExecutedBy(i), cluster.ExecutedBy(0));
  }
  EXPECT_EQ(cluster.ExecutedBy(0).size(), 12u);
}

TEST_P(ConsensusAgreementProperty, RaftLogsAgreeAsPrefixes) {
  net::SimNetConfig cfg;
  cfg.seed = GetParam();
  net::SimNetwork net(cfg);
  RaftConfig rcfg;
  rcfg.seed = GetParam() + 100;
  RaftCluster cluster(rcfg, &net);
  RunUntilLeader(net, cluster);
  for (int i = 0; i < 12; ++i) {
    if (!cluster.Submit(Cmd(i)).ok()) {
      RunUntilLeader(net, cluster);
      ASSERT_TRUE(cluster.Submit(Cmd(i)).ok());
    }
  }
  net.RunUntil(net.Now() + 3 * kSecond);
  // All applied logs are prefixes of the longest one.
  size_t longest = 0;
  for (size_t i = 1; i < cluster.size(); ++i) {
    if (cluster.AppliedBy(i).size() > cluster.AppliedBy(longest).size()) {
      longest = i;
    }
  }
  const auto& ref = cluster.AppliedBy(longest);
  EXPECT_EQ(ref.size(), 12u);
  for (size_t i = 0; i < cluster.size(); ++i) {
    const auto& log = cluster.AppliedBy(i);
    for (size_t j = 0; j < log.size(); ++j) EXPECT_EQ(log[j], ref[j]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsensusAgreementProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace prever::consensus
