#include "token/token.h"

#include <gtest/gtest.h>

namespace prever::token {
namespace {

class TokenTest : public ::testing::Test {
 protected:
  // 40 tokens per week: the FLSA encoding — one token per work hour.
  TokenTest() : authority_(512, 40, kWeek, 42) {}

  TokenAuthority authority_;
  ledger::LedgerDb spent_ledger_;
};

TEST_F(TokenTest, WithdrawAndSpend) {
  TokenWallet wallet(authority_.public_key(), 1);
  auto got = wallet.Withdraw(authority_, "worker-1", 3, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 3u);
  EXPECT_EQ(wallet.NumTokens(), 3u);
  EXPECT_EQ(authority_.RemainingBudget("worker-1", 0), 37u);

  TokenVerifier verifier(authority_.public_key(), &spent_ledger_);
  auto token = wallet.Take();
  ASSERT_TRUE(token.ok());
  EXPECT_TRUE(verifier.Spend(*token, 100).ok());
  EXPECT_EQ(verifier.num_spent(), 1u);
  EXPECT_EQ(spent_ledger_.size(), 1u);
}

TEST_F(TokenTest, DoubleSpendDetected) {
  TokenWallet wallet(authority_.public_key(), 2);
  ASSERT_TRUE(wallet.Withdraw(authority_, "worker-1", 1, 0).ok());
  TokenVerifier verifier(authority_.public_key(), &spent_ledger_);
  auto token = wallet.Take();
  ASSERT_TRUE(token.ok());
  ASSERT_TRUE(verifier.Spend(*token, 100).ok());
  Status again = verifier.Spend(*token, 200);
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(spent_ledger_.size(), 1u);
}

TEST_F(TokenTest, ForgedTokenRejected) {
  TokenVerifier verifier(authority_.public_key(), &spent_ledger_);
  crypto::Drbg drbg(uint64_t{3});
  Token forged;
  forged.serial = drbg.Generate(32);
  forged.signature = drbg.Generate(64);
  EXPECT_EQ(verifier.Spend(forged, 0).code(),
            StatusCode::kIntegrityViolation);
  EXPECT_EQ(spent_ledger_.size(), 0u);
}

TEST_F(TokenTest, BudgetExhaustionStopsIssuance) {
  TokenWallet wallet(authority_.public_key(), 4);
  auto got = wallet.Withdraw(authority_, "worker-1", 50, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 40u);  // Capped at the weekly budget.
  EXPECT_EQ(authority_.RemainingBudget("worker-1", 0), 0u);
}

TEST_F(TokenTest, BudgetResetsNextPeriod) {
  TokenWallet wallet(authority_.public_key(), 5);
  ASSERT_EQ(*wallet.Withdraw(authority_, "worker-1", 40, 0), 40u);
  EXPECT_EQ(authority_.RemainingBudget("worker-1", 0), 0u);
  // Next week, budget is fresh.
  SimTime next_week = kWeek + kHour;
  EXPECT_EQ(authority_.RemainingBudget("worker-1", next_week), 40u);
  EXPECT_EQ(*wallet.Withdraw(authority_, "worker-1", 10, next_week), 10u);
}

TEST_F(TokenTest, BudgetsArePerParticipant) {
  TokenWallet w1(authority_.public_key(), 6);
  TokenWallet w2(authority_.public_key(), 7);
  ASSERT_EQ(*w1.Withdraw(authority_, "worker-1", 40, 0), 40u);
  EXPECT_EQ(*w2.Withdraw(authority_, "worker-2", 40, 0), 40u);
}

TEST_F(TokenTest, CrossPlatformDoubleSpendCaughtViaSharedLedger) {
  // Two mutually distrustful platforms share a spent-token ledger — the
  // Separ architecture. A worker tries to spend one token on both.
  TokenWallet wallet(authority_.public_key(), 8);
  ASSERT_TRUE(wallet.Withdraw(authority_, "worker-1", 1, 0).ok());
  auto token = wallet.Take();
  ASSERT_TRUE(token.ok());

  TokenVerifier platform_a(authority_.public_key(), &spent_ledger_);
  TokenVerifier platform_b(authority_.public_key(), &spent_ledger_);
  ASSERT_TRUE(platform_a.Spend(*token, 100).ok());
  // Platform B syncs from the shared ledger before accepting.
  ASSERT_TRUE(platform_b.SyncFromLedger().ok());
  EXPECT_EQ(platform_b.Spend(*token, 200).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(TokenTest, SyncFromLedgerDetectsTampering) {
  TokenWallet wallet(authority_.public_key(), 9);
  ASSERT_TRUE(wallet.Withdraw(authority_, "worker-1", 2, 0).ok());
  TokenVerifier verifier(authority_.public_key(), &spent_ledger_);
  auto t1 = wallet.Take();
  ASSERT_TRUE(verifier.Spend(*t1, 0).ok());
  ASSERT_TRUE(spent_ledger_.TamperWithEntryForTest(0, ToBytes("evil")).ok());
  TokenVerifier late_joiner(authority_.public_key(), &spent_ledger_);
  EXPECT_EQ(late_joiner.SyncFromLedger().code(),
            StatusCode::kIntegrityViolation);
}

TEST_F(TokenTest, UnlinkabilityMechanics) {
  // The authority sees only blinded serials at issuance. Two withdrawals of
  // the same wallet produce tokens whose serials the authority never saw.
  TokenWallet wallet(authority_.public_key(), 10);
  ASSERT_TRUE(wallet.Withdraw(authority_, "worker-1", 2, 0).ok());
  auto t1 = wallet.Take();
  auto t2 = wallet.Take();
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_NE(t1->serial, t2->serial);
  // Both verify under the authority key even though it signed only blinded
  // values.
  TokenVerifier verifier(authority_.public_key(), &spent_ledger_);
  EXPECT_TRUE(verifier.Spend(*t1, 0).ok());
  EXPECT_TRUE(verifier.Spend(*t2, 0).ok());
}

}  // namespace
}  // namespace prever::token
