#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "storage/database.h"

namespace prever::storage {
namespace {

// ------------------------------------------------------------------ Value

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(*Value::Int64(42).AsInt64(), 42);
  EXPECT_EQ(*Value::String("x").AsString(), "x");
  EXPECT_EQ(*Value::Bool(true).AsBool(), true);
  EXPECT_EQ(*Value::Timestamp(7).AsTimestamp(), 7u);
}

TEST(ValueTest, TypeMismatchErrors) {
  EXPECT_FALSE(Value::Int64(1).AsString().ok());
  EXPECT_FALSE(Value::String("x").AsInt64().ok());
  EXPECT_FALSE(Value::Bool(true).AsTimestamp().ok());
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_EQ(*Value::Int64(-5).AsNumeric(), -5);
  EXPECT_EQ(*Value::Timestamp(100).AsNumeric(), 100);
  EXPECT_FALSE(Value::String("5").AsNumeric().ok());
  EXPECT_FALSE(Value::Bool(true).AsNumeric().ok());
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value::Int64(3), Value::Int64(3));
  EXPECT_NE(Value::Int64(3), Value::Int64(4));
  EXPECT_NE(Value::Int64(1), Value::Bool(true));
  EXPECT_LT(Value::Int64(1), Value::Int64(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
}

TEST(ValueTest, EncodeDecodeRoundTrip) {
  for (const Value& v :
       {Value::Int64(-123), Value::String("hello"), Value::Bool(false),
        Value::Timestamp(999999)}) {
    BinaryWriter w;
    v.EncodeTo(w);
    BinaryReader r(w.bytes());
    auto decoded = Value::DecodeFrom(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, v);
  }
}

TEST(ValueTest, DecodeRejectsBadTag) {
  Bytes data = {0x09};
  BinaryReader r(data);
  EXPECT_FALSE(Value::DecodeFrom(r).ok());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Int64(7).ToString(), "7");
  EXPECT_EQ(Value::String("a").ToString(), "\"a\"");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Timestamp(5).ToString(), "@5");
}

// ----------------------------------------------------------------- Schema

Schema WorklogSchema() {
  return Schema({{"id", ValueType::kString},
                 {"worker", ValueType::kString},
                 {"hours", ValueType::kInt64},
                 {"at", ValueType::kTimestamp}},
                0);
}

TEST(SchemaTest, ColumnIndex) {
  Schema s = WorklogSchema();
  EXPECT_EQ(*s.ColumnIndex("hours"), 2u);
  EXPECT_FALSE(s.ColumnIndex("nope").ok());
}

TEST(SchemaTest, ValidateRow) {
  Schema s = WorklogSchema();
  Row good = {Value::String("t1"), Value::String("w1"), Value::Int64(8),
              Value::Timestamp(0)};
  EXPECT_TRUE(s.ValidateRow(good).ok());

  Row short_row = {Value::String("t1")};
  EXPECT_FALSE(s.ValidateRow(short_row).ok());

  Row wrong_type = {Value::String("t1"), Value::String("w1"),
                    Value::String("8"), Value::Timestamp(0)};
  EXPECT_FALSE(s.ValidateRow(wrong_type).ok());
}

TEST(SchemaTest, KeyOf) {
  Schema s = WorklogSchema();
  Row row = {Value::String("t1"), Value::String("w1"), Value::Int64(8),
             Value::Timestamp(0)};
  EXPECT_EQ(*s.KeyOf(row), Value::String("t1"));
}

TEST(SchemaTest, EncodeDecodeRoundTrip) {
  Schema s = WorklogSchema();
  BinaryWriter w;
  s.EncodeTo(w);
  BinaryReader r(w.bytes());
  auto decoded = Schema::DecodeFrom(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_columns(), 4u);
  EXPECT_EQ(decoded->columns()[2].name, "hours");
  EXPECT_EQ(decoded->key_column(), 0u);
}

// ------------------------------------------------------------------ Table

Row MakeWorklogRow(const std::string& id, const std::string& worker,
                   int64_t hours, SimTime at) {
  return {Value::String(id), Value::String(worker), Value::Int64(hours),
          Value::Timestamp(at)};
}

TEST(TableTest, InsertGetDelete) {
  Table t("worklog", WorklogSchema());
  EXPECT_TRUE(t.Insert(MakeWorklogRow("t1", "w1", 8, 100)).ok());
  EXPECT_EQ(t.size(), 1u);
  auto row = t.Get(Value::String("t1"));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*(*row)[2].AsInt64(), 8);
  EXPECT_TRUE(t.Delete(Value::String("t1")).ok());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.Get(Value::String("t1")).ok());
}

TEST(TableTest, InsertDuplicateKeyFails) {
  Table t("worklog", WorklogSchema());
  ASSERT_TRUE(t.Insert(MakeWorklogRow("t1", "w1", 8, 100)).ok());
  Status s = t.Insert(MakeWorklogRow("t1", "w2", 4, 200));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(TableTest, UpdateRequiresExisting) {
  Table t("worklog", WorklogSchema());
  EXPECT_EQ(t.Update(MakeWorklogRow("t1", "w1", 8, 100)).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(t.Insert(MakeWorklogRow("t1", "w1", 8, 100)).ok());
  EXPECT_TRUE(t.Update(MakeWorklogRow("t1", "w1", 9, 100)).ok());
  EXPECT_EQ(*(*t.Get(Value::String("t1")))[2].AsInt64(), 9);
}

TEST(TableTest, UpsertInsertsOrReplaces) {
  Table t("worklog", WorklogSchema());
  EXPECT_TRUE(t.Upsert(MakeWorklogRow("t1", "w1", 8, 100)).ok());
  EXPECT_TRUE(t.Upsert(MakeWorklogRow("t1", "w1", 12, 100)).ok());
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*(*t.Get(Value::String("t1")))[2].AsInt64(), 12);
}

TEST(TableTest, InsertValidatesSchema) {
  Table t("worklog", WorklogSchema());
  Row bad = {Value::Int64(1), Value::String("w"), Value::Int64(1),
             Value::Timestamp(0)};
  EXPECT_EQ(t.Insert(bad).code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, ScanIsKeyOrderedAndStoppable) {
  Table t("worklog", WorklogSchema());
  ASSERT_TRUE(t.Insert(MakeWorklogRow("b", "w1", 2, 0)).ok());
  ASSERT_TRUE(t.Insert(MakeWorklogRow("a", "w1", 1, 0)).ok());
  ASSERT_TRUE(t.Insert(MakeWorklogRow("c", "w1", 3, 0)).ok());
  std::vector<std::string> seen;
  t.Scan([&](const Row& row) {
    seen.push_back(*row[0].AsString());
    return seen.size() < 2;
  });
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "b"}));
}

// --------------------------------------------------------------- Mutation

TEST(MutationTest, EncodeDecodeRowOps) {
  Mutation m;
  m.op = Mutation::Op::kInsert;
  m.table = "worklog";
  m.row = MakeWorklogRow("t1", "w1", 8, 100);
  auto decoded = Mutation::Decode(m.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, Mutation::Op::kInsert);
  EXPECT_EQ(decoded->table, "worklog");
  EXPECT_EQ(decoded->row, m.row);
}

TEST(MutationTest, EncodeDecodeDelete) {
  Mutation m;
  m.op = Mutation::Op::kDelete;
  m.table = "worklog";
  m.key = Value::String("t1");
  auto decoded = Mutation::Decode(m.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, Mutation::Op::kDelete);
  EXPECT_EQ(decoded->key, Value::String("t1"));
}

TEST(MutationTest, DecodeRejectsTrailingGarbage) {
  Mutation m;
  m.op = Mutation::Op::kDelete;
  m.table = "t";
  m.key = Value::Int64(1);
  Bytes data = m.Encode();
  data.push_back(0xff);
  EXPECT_FALSE(Mutation::Decode(data).ok());
}

// --------------------------------------------------------------- Database

TEST(DatabaseTest, CreateAndApply) {
  Database db;
  ASSERT_TRUE(db.CreateTable("worklog", WorklogSchema()).ok());
  EXPECT_FALSE(db.CreateTable("worklog", WorklogSchema()).ok());

  Mutation m;
  m.op = Mutation::Op::kInsert;
  m.table = "worklog";
  m.row = MakeWorklogRow("t1", "w1", 8, 100);
  EXPECT_TRUE(db.Apply(m).ok());
  EXPECT_EQ(db.version(), 1u);
  EXPECT_EQ((*db.GetTable("worklog"))->size(), 1u);
}

TEST(DatabaseTest, ApplyToMissingTableFails) {
  Database db;
  Mutation m;
  m.op = Mutation::Op::kInsert;
  m.table = "nope";
  EXPECT_EQ(db.Apply(m).code(), StatusCode::kNotFound);
  EXPECT_EQ(db.version(), 0u);
}

TEST(DatabaseTest, FailedApplyDoesNotBumpVersion) {
  Database db;
  ASSERT_TRUE(db.CreateTable("worklog", WorklogSchema()).ok());
  Mutation m;
  m.op = Mutation::Op::kUpdate;  // Nothing to update.
  m.table = "worklog";
  m.row = MakeWorklogRow("t1", "w1", 8, 100);
  EXPECT_FALSE(db.Apply(m).ok());
  EXPECT_EQ(db.version(), 0u);
}

// -------------------------------------------------------------------- WAL

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "prever_wal_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(WalTest, AppendAndRecover) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path_).ok());
    ASSERT_TRUE(wal.Append(ToBytes("one")).ok());
    ASSERT_TRUE(wal.Append(ToBytes("two")).ok());
  }
  bool truncated = true;
  auto records = WriteAheadLog::Recover(path_, &truncated);
  ASSERT_TRUE(records.ok());
  EXPECT_FALSE(truncated);
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ(ToString((*records)[0]), "one");
  EXPECT_EQ(ToString((*records)[1]), "two");
}

TEST_F(WalTest, AppendBatchIsByteIdenticalToSerialAppends) {
  std::vector<Bytes> records = {ToBytes("one"), ToBytes("two"), Bytes{},
                                ToBytes(std::string(1000, 'x'))};
  std::string serial_path = path_ + ".serial";
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(serial_path).ok());
    for (const Bytes& r : records) ASSERT_TRUE(wal.Append(r).ok());
  }
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path_).ok());
    ASSERT_TRUE(wal.AppendBatch(records).ok());
  }
  auto slurp = [](const std::string& p) {
    std::FILE* f = std::fopen(p.c_str(), "rb");
    std::string all;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) all.append(buf, n);
    std::fclose(f);
    return all;
  };
  EXPECT_EQ(slurp(path_), slurp(serial_path));
  std::remove(serial_path.c_str());

  bool truncated = true;
  auto recovered = WriteAheadLog::Recover(path_, &truncated);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(truncated);
  ASSERT_EQ(recovered->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*recovered)[i], records[i]) << i;
  }
}

TEST_F(WalTest, AppendBatchEmptyIsNoOp) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_).ok());
  ASSERT_TRUE(wal.AppendBatch({}).ok());
  ASSERT_TRUE(wal.Append(ToBytes("after")).ok());
  wal.Close();
  auto records = WriteAheadLog::Recover(path_);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
}

TEST_F(WalTest, MissingFileIsEmptyHistory) {
  auto records = WriteAheadLog::Recover(path_);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST_F(WalTest, TornTailIsSkipped) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path_).ok());
    ASSERT_TRUE(wal.Append(ToBytes("good")).ok());
  }
  // Append a torn record: header promising more bytes than present.
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  uint8_t torn[8] = {100, 0, 0, 0, 1, 2, 3, 4};
  std::fwrite(torn, 1, 8, f);
  std::fclose(f);

  bool truncated = false;
  auto records = WriteAheadLog::Recover(path_, &truncated);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(truncated);
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ(ToString((*records)[0]), "good");
}

TEST_F(WalTest, CorruptRecordStopsRecovery) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path_).ok());
    ASSERT_TRUE(wal.Append(ToBytes("first")).ok());
    ASSERT_TRUE(wal.Append(ToBytes("second")).ok());
  }
  // Flip a byte inside the second record's payload.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  std::fseek(f, -1, SEEK_END);
  int c = 0;
  std::fread(&c, 1, 1, f);
  std::fseek(f, -1, SEEK_END);
  uint8_t flipped = static_cast<uint8_t>(c) ^ 0xff;
  std::fwrite(&flipped, 1, 1, f);
  std::fclose(f);

  bool truncated = false;
  auto records = WriteAheadLog::Recover(path_, &truncated);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(truncated);
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ(ToString((*records)[0]), "first");
}

TEST_F(WalTest, TruncationMidRecordRecoversLongestValidPrefix) {
  // A crash during a write can leave the last record cut at ANY byte: inside
  // the payload, inside the crc, or inside the length field. Recovery must
  // return the records before it in every case.
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path_).ok());
    ASSERT_TRUE(wal.Append(ToBytes("alpha")).ok());
    ASSERT_TRUE(wal.Append(ToBytes("beta")).ok());
    ASSERT_TRUE(wal.Append(ToBytes("gamma-long-payload")).ok());
  }
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  long full = std::ftell(f);
  std::fclose(f);
  // Third record occupies 8 + 18 bytes; walk the cut point through it.
  for (long cut = full - 1; cut > full - 26; --cut) {
    ASSERT_EQ(::truncate(path_.c_str(), cut), 0);
    bool truncated = false;
    auto records = WriteAheadLog::Recover(path_, &truncated);
    ASSERT_TRUE(records.ok()) << "cut at " << cut;
    EXPECT_TRUE(truncated) << "cut at " << cut;
    ASSERT_EQ(records->size(), 2u) << "cut at " << cut;
    EXPECT_EQ(ToString((*records)[0]), "alpha");
    EXPECT_EQ(ToString((*records)[1]), "beta");
  }
}

TEST_F(WalTest, DatabaseReplaysTornLogUpToLastIntactRecord) {
  {
    Database db;
    ASSERT_TRUE(db.CreateTable("worklog", WorklogSchema()).ok());
    ASSERT_TRUE(db.EnableWal(path_).ok());
    for (int i = 0; i < 4; ++i) {
      Mutation m;
      m.op = Mutation::Op::kInsert;
      m.table = "worklog";
      m.row = MakeWorklogRow("t" + std::to_string(i), "w1", i, 100 * i);
      ASSERT_TRUE(db.Apply(m).ok());
    }
  }
  // Tear the final record mid-payload.
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  long full = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(::truncate(path_.c_str(), full - 3), 0);

  Database recovered;
  ASSERT_TRUE(recovered.CreateTable("worklog", WorklogSchema()).ok());
  ASSERT_TRUE(recovered.ReplayLog(path_).ok());
  const Table* t = *recovered.GetTable("worklog");
  EXPECT_EQ(t->size(), 3u);
  EXPECT_TRUE(t->Contains(Value::String("t2")));
  EXPECT_FALSE(t->Contains(Value::String("t3")));
}

TEST_F(WalTest, DatabaseCrashRecovery) {
  // Write through a WAL-enabled database, then rebuild from the log alone.
  {
    Database db;
    ASSERT_TRUE(db.CreateTable("worklog", WorklogSchema()).ok());
    ASSERT_TRUE(db.EnableWal(path_).ok());
    for (int i = 0; i < 5; ++i) {
      Mutation m;
      m.op = Mutation::Op::kInsert;
      m.table = "worklog";
      m.row = MakeWorklogRow("t" + std::to_string(i), "w1", i, 100 * i);
      ASSERT_TRUE(db.Apply(m).ok());
    }
    Mutation del;
    del.op = Mutation::Op::kDelete;
    del.table = "worklog";
    del.key = Value::String("t0");
    ASSERT_TRUE(db.Apply(del).ok());
  }  // "Crash".

  Database recovered;
  ASSERT_TRUE(recovered.CreateTable("worklog", WorklogSchema()).ok());
  ASSERT_TRUE(recovered.ReplayLog(path_).ok());
  EXPECT_EQ(recovered.version(), 6u);
  const Table* t = *recovered.GetTable("worklog");
  EXPECT_EQ(t->size(), 4u);
  EXPECT_FALSE(t->Contains(Value::String("t0")));
  EXPECT_TRUE(t->Contains(Value::String("t4")));
}

}  // namespace
}  // namespace prever::storage
