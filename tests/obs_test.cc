// Tests for src/obs: counters, log-bucketed histograms (percentile accuracy,
// merge/delta, concurrent recording), the labeled registry, exposition
// round-trips, and the RAII tracing spans.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "common/sim_clock.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace prever::obs {
namespace {

// ------------------------------------------------------------- primitives

TEST(CounterTest, IncrementAndRead) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10.5);
  g.Add(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), 7.25);
}

// ------------------------------------------------------------ bucket math

TEST(HistogramTest, BucketBoundsAreContiguousAndContainIndex) {
  // Every bucket's range must start one past the previous bucket's end, and
  // BucketIndex(v) must return a bucket whose [lower, upper] contains v.
  uint64_t expected_lower = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketLower(i), expected_lower) << "bucket " << i;
    ASSERT_GE(Histogram::BucketUpper(i), Histogram::BucketLower(i));
    expected_lower = Histogram::BucketUpper(i) + 1;
    if (expected_lower == 0) break;  // Wrapped past uint64 max: last bucket.
  }
  for (uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 100ull, 1023ull,
                     1024ull, 123456789ull, ~0ull}) {
    int i = Histogram::BucketIndex(v);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, Histogram::kNumBuckets);
    EXPECT_LE(Histogram::BucketLower(i), v);
    EXPECT_GE(Histogram::BucketUpper(i), v);
  }
}

// ------------------------------------------------------------ percentiles

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h;
  HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.Percentile(50), 0u);
  EXPECT_EQ(s.Percentile(99.9), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, SmallValuesAreExact) {
  // Values < 16 land in unit buckets, so percentiles are exact.
  Histogram h;
  for (uint64_t v = 1; v <= 10; ++v) h.Record(v);
  HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 10u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 10u);
  EXPECT_EQ(s.Percentile(10), 1u);
  EXPECT_EQ(s.Percentile(50), 5u);
  EXPECT_EQ(s.Percentile(90), 9u);
  EXPECT_EQ(s.Percentile(100), 10u);
}

// Exact nearest-rank quantile of a sorted sample, for comparison.
uint64_t ExactQuantile(std::vector<uint64_t> sorted, double p) {
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

TEST(HistogramTest, PercentileAccuracyOnUniformDistribution) {
  // Deterministic LCG over [1, 1e6]; bucketed percentiles must stay within
  // the documented relative-error bound (bucket width / lower < 1/16, use
  // 7% for slack at small values).
  Histogram h;
  std::vector<uint64_t> values;
  uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 20000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    uint64_t v = 1 + x % 1000000;
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  HistogramSnapshot s = h.snapshot();
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    double exact = static_cast<double>(ExactQuantile(values, p));
    double approx = static_cast<double>(s.Percentile(p));
    EXPECT_LE(std::abs(approx - exact) / exact, 0.07)
        << "p" << p << " exact=" << exact << " approx=" << approx;
  }
  // The top percentile must never exceed the exact max.
  EXPECT_LE(s.Percentile(99.99), s.max);
  EXPECT_EQ(s.Percentile(100), values.back());
}

TEST(HistogramTest, PercentileAccuracyOnHeavyTail) {
  // Two-mode distribution: 99% fast ops around 1000, 1% thousand-fold slow
  // outliers — the shape tail percentiles exist to expose.
  Histogram h;
  std::vector<uint64_t> values;
  for (int i = 0; i < 9900; ++i) {
    uint64_t v = 950 + static_cast<uint64_t>(i % 100);
    values.push_back(v);
    h.Record(v);
  }
  for (int i = 0; i < 100; ++i) {
    uint64_t v = 1000000 + static_cast<uint64_t>(i) * 1000;
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  HistogramSnapshot s = h.snapshot();
  EXPECT_LT(s.Percentile(50), 1100u);
  // p99.5 must land in the outlier mode, not the bulk.
  EXPECT_GT(s.Percentile(99.5), 900000u);
  double exact = static_cast<double>(ExactQuantile(values, 99.9));
  double approx = static_cast<double>(s.Percentile(99.9));
  EXPECT_LE(std::abs(approx - exact) / exact, 0.07);
}

// ------------------------------------------------------------ merge/delta

TEST(HistogramTest, MergeIsSampleUnion) {
  Histogram a, b;
  for (uint64_t v = 1; v <= 100; ++v) a.Record(v);
  for (uint64_t v = 101; v <= 200; ++v) b.Record(v);
  HistogramSnapshot sa = a.snapshot();
  sa.Merge(b.snapshot());

  Histogram whole;
  for (uint64_t v = 1; v <= 200; ++v) whole.Record(v);
  HistogramSnapshot sw = whole.snapshot();

  EXPECT_EQ(sa.count, sw.count);
  EXPECT_EQ(sa.sum, sw.sum);
  EXPECT_EQ(sa.min, sw.min);
  EXPECT_EQ(sa.max, sw.max);
  EXPECT_EQ(sa.buckets, sw.buckets);
  for (double p : {50.0, 90.0, 99.0}) {
    EXPECT_EQ(sa.Percentile(p), sw.Percentile(p));
  }
}

TEST(HistogramTest, DeltaIsolatesNewSamples) {
  Histogram h;
  for (int i = 0; i < 50; ++i) h.Record(10);
  HistogramSnapshot before = h.snapshot();
  for (int i = 0; i < 30; ++i) h.Record(5000);
  HistogramSnapshot delta = h.snapshot().Delta(before);
  EXPECT_EQ(delta.count, 30u);
  EXPECT_EQ(delta.sum, 30u * 5000u);
  // All delta samples are 5000; the median must land in its bucket.
  uint64_t p50 = delta.Percentile(50);
  EXPECT_GE(p50, 4500u);
  EXPECT_LE(p50, 5500u);
}

TEST(HistogramTest, DeltaOfUnchangedHistogramIsEmpty) {
  Histogram h;
  h.Record(7);
  HistogramSnapshot s = h.snapshot();
  HistogramSnapshot delta = s.Delta(s);
  EXPECT_EQ(delta.count, 0u);
  EXPECT_EQ(delta.Percentile(99), 0u);
}

// ------------------------------------------------------------- concurrency

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  Histogram h;
  Counter c;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &c, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(1 + (i + static_cast<uint64_t>(t) * 7) % 1000);
        c.Inc();
      }
    });
  }
  for (auto& th : threads) th.join();
  HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(s.count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
  EXPECT_GE(s.min, 1u);
  EXPECT_LE(s.max, 1000u);
}

// --------------------------------------------------------------- registry

TEST(RegistryTest, SameNameAndLabelsDedupToOneInstance) {
  Registry r;
  Counter* a = r.GetCounter("requests_total", {{"engine", "plaintext"}});
  Counter* b = r.GetCounter("requests_total", {{"engine", "plaintext"}});
  Counter* other = r.GetCounter("requests_total", {{"engine", "encrypted"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  a->Inc();
  EXPECT_EQ(b->value(), 1u);
}

TEST(RegistryTest, LabelOrderDoesNotMatter) {
  Registry r;
  Histogram* a =
      r.GetHistogram("phase_ns", {{"engine", "x"}, {"phase", "verify"}});
  Histogram* b =
      r.GetHistogram("phase_ns", {{"phase", "verify"}, {"engine", "x"}});
  EXPECT_EQ(a, b);
}

TEST(RegistryTest, KindsAreIndependentNamespaces) {
  Registry r;
  // The same name can exist as a counter and a gauge without collision.
  Counter* c = r.GetCounter("depth");
  Gauge* g = r.GetGauge("depth");
  c->Inc(3);
  g->Set(1.5);
  EXPECT_EQ(c->value(), 3u);
  EXPECT_DOUBLE_EQ(g->value(), 1.5);
}

TEST(RegistryTest, RenderTextContainsMetricLines) {
  Registry r;
  r.GetCounter("prever_test_total", {{"k", "v"}})->Inc(5);
  r.GetHistogram("prever_test_ns")->Record(100);
  std::string text = r.RenderText();
  EXPECT_NE(text.find("prever_test_total{k=\"v\"} 5"), std::string::npos);
  EXPECT_NE(text.find("prever_test_ns_count"), std::string::npos);
  EXPECT_NE(text.find("prever_test_ns_p99"), std::string::npos);
}

TEST(RegistryTest, JsonRoundTrip) {
  Registry r;
  r.GetCounter("hits_total", {{"shard", "0"}})->Inc(12);
  r.GetGauge("depth")->Set(3.5);
  Histogram* h = r.GetHistogram("lat_ns", {{"case", "fast"}});
  for (uint64_t v = 1; v <= 100; ++v) h->Record(v);

  auto parsed = Json::Parse(r.RenderJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const Json* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->size(), 1u);
  EXPECT_EQ(counters->at(0).Find("name")->AsString(), "hits_total");
  EXPECT_EQ(counters->at(0).Find("value")->AsUint64(), 12u);
  EXPECT_EQ(counters->at(0).Find("labels")->Find("shard")->AsString(), "0");

  const Json* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->at(0).Find("value")->AsDouble(), 3.5);

  const Json* hists = parsed->Find("histograms");
  ASSERT_NE(hists, nullptr);
  ASSERT_EQ(hists->size(), 1u);
  const Json& lat = hists->at(0);
  EXPECT_EQ(lat.Find("count")->AsUint64(), 100u);
  EXPECT_EQ(lat.Find("min")->AsUint64(), 1u);
  EXPECT_EQ(lat.Find("max")->AsUint64(), 100u);
  EXPECT_GT(lat.Find("p50")->AsUint64(), 0u);
  EXPECT_LE(lat.Find("p99")->AsUint64(), 100u);
}

TEST(RegistryTest, ConcurrentRegistrationIsSafe) {
  Registry r;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r, &seen, t] {
      for (int i = 0; i < 200; ++i) {
        Counter* c = r.GetCounter("contended", {{"k", std::to_string(i % 5)}});
        c->Inc();
        if (i == 0) seen[t] = c;
      }
    });
  }
  for (auto& th : threads) th.join();
  // All threads resolved label k=0 to the same instance.
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  uint64_t total = 0;
  for (int i = 0; i < 5; ++i) {
    total += r.GetCounter("contended", {{"k", std::to_string(i)}})->value();
  }
  EXPECT_EQ(total, kThreads * 200u);
}

// ------------------------------------------------------------------ spans

TEST(TraceTest, ScopedSpanRecordsOnce) {
  Histogram h;
  {
    ScopedSpan span(&h);
    span.End();
    span.End();  // Second End is a no-op.
  }
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(TraceTest, NullHistogramDisablesSpan) {
  ScopedSpan span(nullptr);  // Must not crash.
  span.End();
}

TEST(TraceTest, MacroRecordsScopeDuration) {
  Histogram h;
  {
    PREVER_TRACE_SPAN(&h);
  }
  {
    PREVER_TRACE_SPAN(&h);
  }
  EXPECT_EQ(h.snapshot().count, 2u);
}

TEST(TraceTest, SimSpanRecordsSimulatedMicroseconds) {
  Histogram h;
  SimClock clock;
  {
    SimScopedSpan span(&h, &clock);
    clock.Advance(250);
  }
  HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 250u);
  EXPECT_EQ(s.max, 250u);
}

// ------------------------------------------------------------------- json

TEST(JsonTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
}

TEST(JsonTest, EscapesRoundTrip) {
  Json doc = Json::Object();
  doc.Set("s", Json::Str("line\nquote\"tab\tback\\x01\x01"));
  auto parsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("s")->AsString(), "line\nquote\"tab\tback\\x01\x01");
}

TEST(JsonTest, LargeIntegersSurviveRoundTrip) {
  Json doc = Json::Object();
  doc.Set("big", Json::Int(1234567890123456789ull));
  auto parsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("big")->AsUint64(), 1234567890123456789ull);
}

}  // namespace
}  // namespace prever::obs
