#include "core/pattern_shaper.h"

#include <gtest/gtest.h>

#include "core/plaintext_engine.h"

namespace prever::core {
namespace {

using storage::Mutation;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class PatternShaperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema({{"id", ValueType::kString},
                   {"kind", ValueType::kString},
                   {"at", ValueType::kTimestamp}});
    ASSERT_TRUE(db_.CreateTable("events", schema).ok());
    engine_ = std::make_unique<PlaintextEngine>(&db_, &catalog_, &ordering_);
    shaper_ = std::make_unique<UpdatePatternShaper>(
        engine_.get(), /*interval=*/kSecond, [this](SimTime tick) {
          return MakeUpdate("dummy-" + std::to_string(dummy_counter_++),
                            "dummy", tick);
        });
  }

  Update MakeUpdate(const std::string& id, const std::string& kind,
                    SimTime at) {
    Update u;
    u.id = id;
    u.producer = "p";
    u.timestamp = at;
    u.mutation.op = Mutation::Op::kInsert;
    u.mutation.table = "events";
    u.mutation.row = {Value::String(id), Value::String(kind),
                      Value::Timestamp(at)};
    return u;
  }

  storage::Database db_;
  constraint::ConstraintCatalog catalog_;
  CentralizedOrdering ordering_;
  std::unique_ptr<PlaintextEngine> engine_;
  std::unique_ptr<UpdatePatternShaper> shaper_;
  int dummy_counter_ = 0;
};

TEST_F(PatternShaperTest, OneSubmissionPerTickRegardlessOfArrivals) {
  // Bursty arrivals: three updates at t=0.1s, nothing after.
  shaper_->Enqueue(MakeUpdate("r1", "real", kSecond / 10));
  shaper_->Enqueue(MakeUpdate("r2", "real", kSecond / 10));
  shaper_->Enqueue(MakeUpdate("r3", "real", kSecond / 10));
  size_t fired = shaper_->AdvanceTo(5 * kSecond);
  EXPECT_EQ(fired, 6u);  // Ticks at 0s,1s,...,5s.
  // An observer sees exactly 6 submissions — independent of the burst.
  EXPECT_EQ(engine_->stats().submitted, 6u);
  EXPECT_EQ(shaper_->real_submitted(), 3u);
  EXPECT_EQ(shaper_->dummies_submitted(), 3u);
}

TEST_F(PatternShaperTest, ObservableTimesAreTheTicks) {
  shaper_->Enqueue(MakeUpdate("r1", "real", 123456));  // Odd arrival time.
  shaper_->AdvanceTo(2 * kSecond);
  // The ledger records only tick-aligned timestamps.
  const ledger::LedgerDb& led = ordering_.Ledger();
  for (uint64_t i = 0; i < led.size(); ++i) {
    auto u = Update::Decode(led.GetEntry(i)->payload);
    ASSERT_TRUE(u.ok());
    EXPECT_EQ(u->timestamp % kSecond, 0u) << i;
  }
}

TEST_F(PatternShaperTest, LatencyCostAccounted) {
  // Arrival just after a tick waits almost a full interval.
  shaper_->Enqueue(MakeUpdate("r1", "real", 1));
  shaper_->AdvanceTo(kSecond);
  // Tick 0 fired a dummy (arrival at t=1 > tick 0); tick 1s carried r1.
  EXPECT_EQ(shaper_->real_submitted(), 1u);
  EXPECT_EQ(shaper_->total_added_latency(), kSecond - 1);
}

TEST_F(PatternShaperTest, QueueDrainsInOrder) {
  for (int i = 0; i < 3; ++i) {
    shaper_->Enqueue(MakeUpdate("r" + std::to_string(i), "real", 0));
  }
  shaper_->AdvanceTo(2 * kSecond);
  EXPECT_EQ(shaper_->queued(), 0u);
  // Real updates appear in FIFO order on the ledger.
  auto u0 = Update::Decode(ordering_.Ledger().GetEntry(0)->payload);
  auto u1 = Update::Decode(ordering_.Ledger().GetEntry(1)->payload);
  ASSERT_TRUE(u0.ok() && u1.ok());
  EXPECT_EQ(u0->id, "r0");
  EXPECT_EQ(u1->id, "r1");
}

TEST_F(PatternShaperTest, FutureArrivalsWaitForTheirTick) {
  shaper_->Enqueue(MakeUpdate("r1", "real", 10 * kSecond));
  shaper_->AdvanceTo(5 * kSecond);
  EXPECT_EQ(shaper_->real_submitted(), 0u);  // Not yet arrived "publicly".
  EXPECT_EQ(shaper_->queued(), 1u);
  shaper_->AdvanceTo(10 * kSecond);
  EXPECT_EQ(shaper_->real_submitted(), 1u);
}

}  // namespace
}  // namespace prever::core
