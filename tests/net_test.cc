#include "net/sim_net.h"

#include <gtest/gtest.h>

namespace prever::net {
namespace {

struct Recorder {
  std::vector<Message> received;
  SimNetwork::Handler Handler() {
    return [this](const Message& m) { received.push_back(m); };
  }
};

TEST(SimNetTest, DeliversInLatencyWindow) {
  SimNetConfig cfg;
  cfg.min_latency = 2 * kMillisecond;
  cfg.max_latency = 4 * kMillisecond;
  SimNetwork net(cfg);
  Recorder a, b;
  NodeId na = net.AddNode(a.Handler());
  net.AddNode(b.Handler());

  net.Send(na, 1, 7, ToBytes("hi"));
  EXPECT_EQ(net.RunUntil(1 * kMillisecond), 0u);  // Too early.
  EXPECT_TRUE(b.received.empty());
  net.RunUntil(5 * kMillisecond);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].type, 7u);
  EXPECT_EQ(ToString(b.received[0].payload), "hi");
  EXPECT_EQ(b.received[0].from, na);
}

TEST(SimNetTest, DeterministicForSeed) {
  auto run = [](uint64_t seed) {
    SimNetConfig cfg;
    cfg.seed = seed;
    SimNetwork net(cfg);
    std::vector<std::pair<SimTime, uint32_t>> order;
    net.AddNode([&](const Message& m) { order.emplace_back(net.Now(), m.type); });
    for (uint32_t i = 0; i < 20; ++i) net.Send(1, 0, i, {});
    net.RunUntilIdle();
    return order;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(SimNetTest, BroadcastReachesAllButSender) {
  SimNetwork net;
  Recorder r[3];
  for (auto& rec : r) net.AddNode(rec.Handler());
  net.Broadcast(0, 1, ToBytes("x"));
  net.RunUntilIdle();
  EXPECT_TRUE(r[0].received.empty());
  EXPECT_EQ(r[1].received.size(), 1u);
  EXPECT_EQ(r[2].received.size(), 1u);
}

TEST(SimNetTest, DropRateDropsEverythingAtOne) {
  SimNetConfig cfg;
  cfg.drop_rate = 1.0;
  SimNetwork net(cfg);
  Recorder a;
  net.AddNode(a.Handler());
  net.AddNode(a.Handler());
  for (int i = 0; i < 10; ++i) net.Send(0, 1, 1, {});
  net.RunUntilIdle();
  EXPECT_TRUE(a.received.empty());
  EXPECT_EQ(net.messages_dropped(), 10u);
}

TEST(SimNetTest, PartitionBlocksBothDirectionsUntilHealed) {
  SimNetwork net;
  Recorder a, b;
  net.AddNode(a.Handler());
  net.AddNode(b.Handler());
  net.Partition(0, 1);
  net.Send(0, 1, 1, {});
  net.Send(1, 0, 1, {});
  net.RunUntilIdle();
  EXPECT_TRUE(a.received.empty());
  EXPECT_TRUE(b.received.empty());
  net.Heal(0, 1);
  net.Send(0, 1, 1, {});
  net.RunUntilIdle();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(SimNetTest, IsolateSimulatesCrash) {
  SimNetwork net;
  Recorder a, b, c;
  net.AddNode(a.Handler());
  net.AddNode(b.Handler());
  net.AddNode(c.Handler());
  net.Isolate(1);
  net.Broadcast(0, 1, {});
  net.RunUntilIdle();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(c.received.size(), 1u);
  net.Reconnect(1);
  net.Broadcast(0, 1, {});
  net.RunUntilIdle();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(SimNetTest, ScheduledCallbacksFireInOrder) {
  SimNetwork net;
  std::vector<int> order;
  net.ScheduleAfter(30, [&] { order.push_back(3); });
  net.ScheduleAfter(10, [&] { order.push_back(1); });
  net.ScheduleAfter(20, [&] { order.push_back(2); });
  net.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(net.Now(), 30u);
}

TEST(SimNetTest, TieBreakIsFifo) {
  SimNetConfig cfg;
  cfg.min_latency = cfg.max_latency = 5;
  SimNetwork net(cfg);
  Recorder a;
  net.AddNode(a.Handler());
  net.AddNode(a.Handler());
  for (uint32_t i = 0; i < 5; ++i) net.Send(1, 0, i, {});
  net.RunUntilIdle();
  ASSERT_EQ(a.received.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(a.received[i].type, i);
}

TEST(SimNetTest, CrashDiscardsInFlightMessages) {
  SimNetwork net;
  Recorder a, b;
  net.AddNode(a.Handler());
  net.AddNode(b.Handler());
  net.Send(0, 1, 1, {});  // In flight when the crash hits.
  net.CrashNode(1);
  EXPECT_TRUE(net.IsCrashed(1));
  net.RunUntilIdle();
  // Unlike Isolate, the message sent BEFORE the crash is discarded too.
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST(SimNetTest, CrashedNodeSendsAndReceivesNothingUntilRestart) {
  SimNetwork net;
  Recorder a, b;
  net.AddNode(a.Handler());
  net.AddNode(b.Handler());
  net.CrashNode(0);
  net.Send(0, 1, 1, {});  // From a crashed node: dropped at send time.
  net.Send(1, 0, 1, {});  // Toward a crashed node: dropped as well.
  net.RunUntilIdle();
  EXPECT_TRUE(a.received.empty());
  EXPECT_TRUE(b.received.empty());
  net.RestartNode(0);
  EXPECT_FALSE(net.IsCrashed(0));
  net.Send(1, 0, 1, {});
  net.RunUntilIdle();
  EXPECT_EQ(a.received.size(), 1u);
}

TEST(SimNetTest, HealAllClearsEveryPartition) {
  SimNetwork net;
  Recorder r[3];
  for (auto& rec : r) net.AddNode(rec.Handler());
  net.Partition(0, 1);
  net.Partition(0, 2);
  net.HealAll();
  net.Broadcast(0, 1, {});
  net.RunUntilIdle();
  EXPECT_EQ(r[1].received.size(), 1u);
  EXPECT_EQ(r[2].received.size(), 1u);
}

TEST(SimNetTest, LinkLatencyOverrideAppliesBothWaysAndClears) {
  SimNetConfig cfg;
  cfg.min_latency = cfg.max_latency = 1 * kMillisecond;
  SimNetwork net(cfg);
  Recorder a, b;
  net.AddNode(a.Handler());
  net.AddNode(b.Handler());
  net.SetLinkLatency(0, 1, 100 * kMillisecond, 100 * kMillisecond);

  net.Send(0, 1, 1, {});
  net.RunUntil(99 * kMillisecond);
  EXPECT_TRUE(b.received.empty());  // Base latency no longer applies.
  net.RunUntil(101 * kMillisecond);
  EXPECT_EQ(b.received.size(), 1u);

  net.Send(1, 0, 1, {});  // Reverse direction uses the same override.
  net.RunUntil(200 * kMillisecond);
  EXPECT_TRUE(a.received.empty());
  net.RunUntil(202 * kMillisecond);
  EXPECT_EQ(a.received.size(), 1u);

  net.ClearLinkLatency(0, 1);
  net.Send(0, 1, 1, {});
  net.RunUntil(205 * kMillisecond);  // Back to the 1ms base latency.
  EXPECT_EQ(b.received.size(), 2u);
}

TEST(SimNetTest, ClearLinkLatenciesRestoresEveryLink) {
  SimNetConfig cfg;
  cfg.min_latency = cfg.max_latency = 1 * kMillisecond;
  SimNetwork net(cfg);
  Recorder a, b;
  net.AddNode(a.Handler());
  net.AddNode(b.Handler());
  net.SetLinkLatency(0, 1, kSecond, kSecond);
  net.ClearLinkLatencies();
  net.Send(0, 1, 1, {});
  net.RunUntil(2 * kMillisecond);
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(SimNetTest, DropRateAdjustableAtRuntime) {
  SimNetwork net;
  Recorder a;
  net.AddNode([](const Message&) {});
  net.AddNode(a.Handler());
  EXPECT_EQ(net.drop_rate(), 0.0);
  net.set_drop_rate(1.0);
  net.Send(0, 1, 1, {});
  net.RunUntilIdle();
  EXPECT_TRUE(a.received.empty());
  net.set_drop_rate(0.0);
  net.Send(0, 1, 1, {});
  net.RunUntilIdle();
  EXPECT_EQ(a.received.size(), 1u);
}

TEST(SimNetTest, TimerScaleStretchesScheduledDelays) {
  SimNetwork net;
  std::vector<int> order;
  net.SetTimerScale(3.0);
  EXPECT_EQ(net.timer_scale(), 3.0);
  net.ScheduleAfter(10 * kMillisecond, [&] { order.push_back(1); });
  net.SetTimerScale(1.0);  // Only affects timers scheduled afterwards.
  net.ScheduleAfter(10 * kMillisecond, [&] { order.push_back(2); });
  net.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(net.Now(), 30 * kMillisecond);
}

TEST(SimNetTest, CountersTrackTraffic) {
  SimNetwork net;
  net.AddNode([](const Message&) {});
  net.AddNode([](const Message&) {});
  net.Send(0, 1, 1, Bytes(10));
  net.Send(1, 0, 1, Bytes(5));
  net.RunUntilIdle();
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.bytes_sent(), 15u);
}

}  // namespace
}  // namespace prever::net
