// Fault-injection suite: consensus under lossy networks, parser under
// garbage input, WAL under random corruption. PReVer's integrity story
// (RC4) only matters if the substrate misbehaves gracefully.

#include <gtest/gtest.h>

#include "consensus/pbft.h"
#include "consensus/raft.h"
#include "constraint/parser.h"
#include "storage/wal.h"

namespace prever {
namespace {

Bytes Cmd(int i) { return ToBytes("cmd-" + std::to_string(i)); }

// ---------------------------------------------------- Raft with drops ----

TEST(LossyRaftTest, CommitsDespiteMessageLoss) {
  // 5% message loss: heartbeat retransmission must still drive all entries
  // to commit.
  net::SimNetConfig cfg;
  cfg.drop_rate = 0.05;
  cfg.seed = 31;
  net::SimNetwork net(cfg);
  consensus::RaftCluster cluster(consensus::RaftConfig{}, &net);
  // Elect.
  for (SimTime t = 50 * kMillisecond; t < 10 * kSecond;
       t += 50 * kMillisecond) {
    net.RunUntil(t);
    if (cluster.Leader().ok()) break;
  }
  ASSERT_TRUE(cluster.Leader().ok());
  int submitted = 0;
  for (int i = 0; i < 10; ++i) {
    auto leader = cluster.Leader();
    if (leader.ok() && (*leader)->Submit(Cmd(i)).ok()) ++submitted;
    net.RunUntil(net.Now() + 300 * kMillisecond);
  }
  net.RunUntil(net.Now() + 5 * kSecond);
  ASSERT_GT(submitted, 0);
  // Every replica's applied log is a prefix of the longest one, and the
  // longest covers everything that was submitted.
  size_t longest_idx = 0;
  for (size_t i = 1; i < cluster.size(); ++i) {
    if (cluster.AppliedBy(i).size() >
        cluster.AppliedBy(longest_idx).size()) {
      longest_idx = i;
    }
  }
  const auto& reference = cluster.AppliedBy(longest_idx);
  EXPECT_EQ(reference.size(), static_cast<size_t>(submitted));
  for (size_t i = 0; i < cluster.size(); ++i) {
    const auto& log = cluster.AppliedBy(i);
    for (size_t j = 0; j < log.size(); ++j) {
      EXPECT_EQ(log[j], reference[j]) << "replica " << i << " pos " << j;
    }
  }
}

// ---------------------------------------------------- PBFT safety ----

class LossyPbftProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LossyPbftProperty, SafetyHoldsUnderDropsAndPartitions) {
  // 3% loss plus a transient partition: PBFT may or may not make progress
  // (liveness needs synchrony), but NO two honest replicas may ever
  // disagree on a committed position.
  net::SimNetConfig cfg;
  cfg.drop_rate = 0.03;
  cfg.seed = GetParam();
  net::SimNetwork net(cfg);
  consensus::PbftCluster cluster(
      consensus::PbftConfig{4, 150 * kMillisecond}, &net);
  for (int i = 0; i < 8; ++i) cluster.Submit(Cmd(i));
  net.RunUntil(2 * kSecond);
  net.Partition(0, 2);
  net.RunUntil(4 * kSecond);
  net.HealAll();
  for (int i = 8; i < 12; ++i) cluster.Submit(Cmd(i));
  net.RunUntil(30 * kSecond);

  for (size_t a = 0; a < 4; ++a) {
    for (size_t b = a + 1; b < 4; ++b) {
      const auto& la = cluster.ExecutedBy(a);
      const auto& lb = cluster.ExecutedBy(b);
      size_t common = std::min(la.size(), lb.size());
      for (size_t i = 0; i < common; ++i) {
        EXPECT_EQ(la[i], lb[i]) << "divergence at " << i << " between "
                                << a << " and " << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossyPbftProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ------------------------------------------------------ Parser fuzzing ---

TEST(ParserFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(2718);
  const std::string alphabet =
      "abcXYZ019 ()<>=!+-*/%.'\"_\t\nSUMCOUNTWHEREANDORNOTWINDOWupdate";
  for (int iter = 0; iter < 3000; ++iter) {
    size_t len = rng.NextBelow(60);
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input.push_back(alphabet[rng.NextBelow(alphabet.size())]);
    }
    // Must return either OK or a clean error — never crash or hang.
    auto result = constraint::ParseConstraint(input);
    if (result.ok()) {
      // Whatever parsed must round-trip through its canonical form.
      auto again = constraint::ParseConstraint((*result)->ToString());
      EXPECT_TRUE(again.ok()) << input << " -> " << (*result)->ToString();
    }
  }
}

TEST(ParserFuzzTest, TokenMutationsOfValidConstraint) {
  const std::string base =
      "SUM(worklog.hours WHERE worker = update.worker WINDOW 7d) + "
      "update.hours <= 40";
  Rng rng(314);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mutated = base;
    size_t edits = 1 + rng.NextBelow(4);
    for (size_t e = 0; e < edits; ++e) {
      size_t pos = rng.NextBelow(mutated.size());
      switch (rng.NextBelow(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.NextInRange(32, 126));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(rng.NextInRange(32, 126)));
      }
      if (mutated.empty()) break;
    }
    auto result = constraint::ParseConstraint(mutated);
    (void)result;  // OK or error, never UB. (ASAN-clean by construction.)
  }
}

// ------------------------------------------------------- WAL corruption --

TEST(WalFuzzTest, RandomCorruptionNeverYieldsBogusRecords) {
  std::string path = ::testing::TempDir() + "prever_fuzz_wal.log";
  Rng rng(909);
  for (int round = 0; round < 30; ++round) {
    std::remove(path.c_str());
    std::vector<Bytes> written;
    {
      storage::WriteAheadLog wal;
      ASSERT_TRUE(wal.Open(path).ok());
      size_t records = 1 + rng.NextBelow(10);
      for (size_t i = 0; i < records; ++i) {
        Bytes payload = rng.NextBytes(1 + rng.NextBelow(100));
        ASSERT_TRUE(wal.Append(payload).ok());
        written.push_back(std::move(payload));
      }
    }
    // Corrupt one random byte.
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    long victim = static_cast<long>(rng.NextBelow(static_cast<uint64_t>(size)));
    std::fseek(f, victim, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, victim, SEEK_SET);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);

    auto recovered = storage::WriteAheadLog::Recover(path);
    ASSERT_TRUE(recovered.ok());
    // Every recovered record must match the written prefix byte-for-byte —
    // corruption may truncate history but never fabricate or alter it.
    // (CRC32 collisions after a single bit flip are impossible.)
    ASSERT_LE(recovered->size(), written.size());
    for (size_t i = 0; i < recovered->size(); ++i) {
      EXPECT_EQ((*recovered)[i], written[i]) << "round " << round;
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace prever
