#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/prever.h"
#include "crypto/drbg.h"
#include "storage/value.h"

namespace prever {
namespace {

TEST(ThreadPoolTest, SerialPoolRunsAllIndicesInline) {
  common::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&](size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ZeroAndOneElementBatches) {
  common::ThreadPool pool(4);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "no work expected"; });
  int hits = 0;
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

TEST(ThreadPoolTest, EachIndexClaimedExactlyOnce) {
  common::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  common::ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(17, [&](size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 17u * 16u / 2u);
  }
}

TEST(ThreadPoolTest, WorkRunsOnMultipleThreads) {
  common::ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  // Enough slow-ish iterations that every worker gets a chance to claim one.
  pool.ParallelFor(64, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 2u);
}

TEST(DrbgForkTest, ChildStreamsAreDeterministicAndDistinct) {
  crypto::Drbg parent1(uint64_t{42});
  crypto::Drbg parent2(uint64_t{42});
  crypto::Drbg child1a = parent1.Fork();
  crypto::Drbg child1b = parent1.Fork();
  crypto::Drbg child2a = parent2.Fork();
  // Same parent seed + same fork order => identical child streams.
  EXPECT_EQ(child1a.Generate(64), child2a.Generate(64));
  // Siblings differ from each other and from the parent's next output.
  Bytes a = child1a.Generate(64);
  EXPECT_NE(a, child1b.Generate(64));
  EXPECT_NE(a, parent1.Generate(64));
}

TEST(EncryptedBatchTest, BatchSubmitAcceptsAndStoresAllRows) {
  core::DataOwner owner(256, crypto::PedersenParams::Test256(), 7);
  core::CentralizedOrdering ordering;
  std::vector<core::RegulatedBound> bounds = {
      {constraint::BoundDirection::kUpper, 1000, 0, 12}};
  core::EncryptedEngine engine(&owner, &ordering, "owner", "amount", bounds,
                               /*value_bits=*/7, /*seed=*/3);
  common::ThreadPool pool(3);
  engine.set_thread_pool(&pool);

  std::vector<core::Update> updates;
  for (int i = 0; i < 4; ++i) {
    core::Update u;
    u.id = "u" + std::to_string(i);
    u.producer = "producer";
    u.timestamp = 10 + i;
    u.fields["owner"] = storage::Value::String("alice");
    u.fields["amount"] = storage::Value::Int64(5 + i);
    updates.push_back(std::move(u));
  }
  auto sealed = engine.SealBatch(updates);
  ASSERT_TRUE(sealed.ok()) << sealed.status().message();
  ASSERT_EQ(sealed->size(), 4u);
  EXPECT_TRUE(engine.SubmitSealedBatch(*sealed).ok());
  EXPECT_EQ(engine.NumRows("alice"), 4u);
}

TEST(EncryptedBatchTest, TamperedProofRejectsOnlyThatSubmission) {
  core::DataOwner owner(256, crypto::PedersenParams::Test256(), 7);
  core::CentralizedOrdering ordering;
  std::vector<core::RegulatedBound> bounds = {
      {constraint::BoundDirection::kUpper, 1000, 0, 12}};
  core::EncryptedEngine engine(&owner, &ordering, "owner", "amount", bounds,
                               /*value_bits=*/7, /*seed=*/3);
  common::ThreadPool pool(2);
  engine.set_thread_pool(&pool);

  std::vector<core::Update> updates;
  for (int i = 0; i < 3; ++i) {
    core::Update u;
    u.id = "u" + std::to_string(i);
    u.producer = "producer";
    u.timestamp = 10 + i;
    u.fields["owner"] = storage::Value::String("bob");
    u.fields["amount"] = storage::Value::Int64(7);
    updates.push_back(std::move(u));
  }
  auto sealed = engine.SealBatch(updates);
  ASSERT_TRUE(sealed.ok());
  // Corrupt the middle submission's range proof.
  ASSERT_FALSE((*sealed)[1].sealed.range_proof.bit_proofs.empty());
  (*sealed)[1].sealed.range_proof.bit_proofs[0].z0 =
      (*sealed)[1].sealed.range_proof.bit_proofs[0].z0 + crypto::BigInt(1);
  Status status = engine.SubmitSealedBatch(*sealed);
  EXPECT_FALSE(status.ok());
  // The two honest submissions still landed.
  EXPECT_EQ(engine.NumRows("bob"), 2u);
}

}  // namespace
}  // namespace prever
