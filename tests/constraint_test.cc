#include <gtest/gtest.h>

#include "constraint/constraint.h"
#include "constraint/eval.h"
#include "constraint/linear.h"
#include "constraint/parser.h"
#include "common/rng.h"

namespace prever::constraint {
namespace {

using storage::Database;
using storage::Mutation;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

// ----------------------------------------------------------------- Parser

TEST(ParserTest, SimpleComparison) {
  auto e = ParseConstraint("update.hours <= 40");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kBinary);
  EXPECT_EQ((*e)->binary_op, BinaryOp::kLe);
  EXPECT_EQ((*e)->ToString(), "(update.hours <= 40)");
}

TEST(ParserTest, OperatorPrecedence) {
  auto e = ParseConstraint("1 + 2 * 3 = 7");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "((1 + (2 * 3)) = 7)");
}

TEST(ParserTest, LogicalPrecedence) {
  auto e = ParseConstraint("true OR false AND false");
  ASSERT_TRUE(e.ok());
  // AND binds tighter than OR.
  EXPECT_EQ((*e)->ToString(), "(true OR (false AND false))");
}

TEST(ParserTest, NotAndParens) {
  auto e = ParseConstraint("NOT (a = 1 OR b = 2)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kUnary);
}

TEST(ParserTest, StringLiteralsBothQuotes) {
  auto e1 = ParseConstraint("update.worker = 'w1'");
  auto e2 = ParseConstraint("update.worker = \"w1\"");
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e1)->ToString(), (*e2)->ToString());
}

TEST(ParserTest, DurationLiterals) {
  auto e = ParseConstraint("update.age <= 2h");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*(*e)->rhs->literal.AsInt64(), static_cast<int64_t>(2 * kHour));
}

TEST(ParserTest, AggregateFull) {
  auto e = ParseConstraint(
      "SUM(worklog.hours WHERE worker = update.worker WINDOW 7d) + "
      "update.hours <= 40");
  ASSERT_TRUE(e.ok());
  const Expr& cmp = **e;
  EXPECT_EQ(cmp.binary_op, BinaryOp::kLe);
  const Expr& add = *cmp.lhs;
  EXPECT_EQ(add.binary_op, BinaryOp::kAdd);
  const Expr& agg = *add.lhs;
  EXPECT_EQ(agg.kind, ExprKind::kAggregate);
  EXPECT_EQ(agg.agg_kind, AggregateKind::kSum);
  EXPECT_EQ(agg.table, "worklog");
  EXPECT_EQ(agg.column, "hours");
  EXPECT_EQ(agg.window, kWeek);
  ASSERT_NE(agg.where, nullptr);
}

TEST(ParserTest, CountWithoutColumn) {
  auto e = ParseConstraint("COUNT(attendees) < 500");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->lhs->agg_kind, AggregateKind::kCount);
  EXPECT_TRUE((*e)->lhs->column.empty());
}

TEST(ParserTest, SumRequiresColumn) {
  EXPECT_FALSE(ParseConstraint("SUM(worklog) <= 40").ok());
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  auto e = ParseConstraint("not true and false or true");
  ASSERT_TRUE(e.ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* cases[] = {
      "(update.hours <= 40)",
      "(SUM(worklog.hours WHERE (worker = update.worker) WINDOW 7d) <= 40)",
      "((COUNT(attendees) < 500) AND (update.vaccinated = true))",
      "(NOT ((a = 1)) OR (b != \"x\"))",
  };
  for (const char* text : cases) {
    auto e = ParseConstraint(text);
    ASSERT_TRUE(e.ok()) << text;
    auto e2 = ParseConstraint((*e)->ToString());
    ASSERT_TRUE(e2.ok()) << (*e)->ToString();
    EXPECT_EQ((*e)->ToString(), (*e2)->ToString());
  }
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseConstraint("").ok());
  EXPECT_FALSE(ParseConstraint("1 +").ok());
  EXPECT_FALSE(ParseConstraint("(1 + 2").ok());
  EXPECT_FALSE(ParseConstraint("1 2").ok());
  EXPECT_FALSE(ParseConstraint("'unterminated").ok());
  EXPECT_FALSE(ParseConstraint("a # b").ok());
  EXPECT_FALSE(ParseConstraint("SUM(t.c WINDOW 7)").ok());  // Not a duration.
  EXPECT_FALSE(ParseConstraint("update.").ok());
  EXPECT_FALSE(ParseConstraint("99999999999999999999 = 1").ok());  // Overflow.
}

TEST(ParserTest, NotEqualsSpellings) {
  auto e1 = ParseConstraint("a != 1");
  auto e2 = ParseConstraint("a <> 1");
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e1)->ToString(), (*e2)->ToString());
}

TEST(ParserTest, ExistsForms) {
  auto e = ParseConstraint("EXISTS(attendees WHERE name = update.name)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kExists);
  EXPECT_EQ((*e)->table, "attendees");
  auto bare = ParseConstraint("EXISTS(attendees)");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ((*bare)->where, nullptr);
  auto windowed = ParseConstraint("NOT EXISTS(worklog WINDOW 1d)");
  ASSERT_TRUE(windowed.ok());
  EXPECT_FALSE(ParseConstraint("EXISTS()").ok());
}

TEST(ParserTest, ExistsRoundTripsThroughToString) {
  auto e = ParseConstraint(
      "NOT EXISTS(worklog WHERE worker = update.worker WINDOW 1d)");
  ASSERT_TRUE(e.ok());
  auto e2 = ParseConstraint((*e)->ToString());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e)->ToString(), (*e2)->ToString());
}

TEST(ParserTest, ForAllForms) {
  auto e = ParseConstraint(
      "FORALL(orders.customer : SUM(orders.amount WHERE customer = group) "
      "<= 1000)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kForAll);
  EXPECT_EQ((*e)->table, "orders");
  EXPECT_EQ((*e)->column, "customer");
  // Round trip.
  auto e2 = ParseConstraint((*e)->ToString());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e)->ToString(), (*e2)->ToString());
  // Errors.
  EXPECT_FALSE(ParseConstraint("FORALL(orders : true)").ok());  // No column.
  EXPECT_FALSE(ParseConstraint("FORALL(orders.customer true)").ok());
}

// -------------------------------------------------------------- Evaluator

class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema worklog({{"id", ValueType::kString},
                    {"worker", ValueType::kString},
                    {"hours", ValueType::kInt64},
                    {"at", ValueType::kTimestamp}});
    ASSERT_TRUE(db_.CreateTable("worklog", worklog).ok());
    AddEntry("t1", "w1", 10, 1 * kDay);
    AddEntry("t2", "w1", 20, 3 * kDay);
    AddEntry("t3", "w2", 35, 3 * kDay);
    AddEntry("t4", "w1", 8, 20 * kDay);  // Old entry, outside 7d windows.
    now_ = 7 * kDay;
  }

  void AddEntry(const std::string& id, const std::string& worker,
                int64_t hours, SimTime at) {
    Mutation m;
    m.op = Mutation::Op::kInsert;
    m.table = "worklog";
    m.row = {Value::String(id), Value::String(worker), Value::Int64(hours),
             Value::Timestamp(at)};
    ASSERT_TRUE(db_.Apply(m).ok());
  }

  Result<Value> Eval(const std::string& text) {
    auto e = ParseConstraint(text);
    if (!e.ok()) return e.status();
    EvalContext ctx{&db_, &update_, now_};
    return Evaluate(**e, ctx);
  }

  Database db_;
  UpdateFields update_ = {{"worker", Value::String("w1")},
                          {"hours", Value::Int64(5)},
                          {"vaccinated", Value::Bool(true)}};
  SimTime now_ = 0;
};

TEST_F(EvalTest, Arithmetic) {
  EXPECT_EQ(*Eval("1 + 2 * 3 - 4"), Value::Int64(3));
  EXPECT_EQ(*Eval("7 / 2"), Value::Int64(3));
  EXPECT_EQ(*Eval("7 % 3"), Value::Int64(1));
  EXPECT_EQ(*Eval("-(5)"), Value::Int64(-5));
}

TEST_F(EvalTest, DivisionByZeroFails) {
  EXPECT_FALSE(Eval("1 / 0").ok());
  EXPECT_FALSE(Eval("1 % 0").ok());
}

TEST_F(EvalTest, Comparisons) {
  EXPECT_EQ(*Eval("1 < 2"), Value::Bool(true));
  EXPECT_EQ(*Eval("2 <= 2"), Value::Bool(true));
  EXPECT_EQ(*Eval("'a' < 'b'"), Value::Bool(true));
  EXPECT_EQ(*Eval("'a' = 'a'"), Value::Bool(true));
  EXPECT_EQ(*Eval("true = true"), Value::Bool(true));
  EXPECT_EQ(*Eval("true != false"), Value::Bool(true));
}

TEST_F(EvalTest, BoolOrderingRejected) {
  EXPECT_FALSE(Eval("true < false").ok());
}

TEST_F(EvalTest, MixedTypeComparisonRejected) {
  EXPECT_FALSE(Eval("'a' < 1").ok());
}

TEST_F(EvalTest, LogicalOpsShortCircuit) {
  EXPECT_EQ(*Eval("false AND 1 / 0 = 1"), Value::Bool(false));
  EXPECT_EQ(*Eval("true OR 1 / 0 = 1"), Value::Bool(true));
  EXPECT_EQ(*Eval("NOT false"), Value::Bool(true));
}

TEST_F(EvalTest, UpdateFieldAccess) {
  EXPECT_EQ(*Eval("update.hours"), Value::Int64(5));
  EXPECT_EQ(*Eval("hours"), Value::Int64(5));  // Bare name at top level.
  EXPECT_EQ(*Eval("update.vaccinated"), Value::Bool(true));
  EXPECT_FALSE(Eval("update.nope").ok());
  EXPECT_FALSE(Eval("other.hours").ok());
}

TEST_F(EvalTest, AggregatesNoWindow) {
  EXPECT_EQ(*Eval("COUNT(worklog)"), Value::Int64(4));
  EXPECT_EQ(*Eval("SUM(worklog.hours)"), Value::Int64(73));
  EXPECT_EQ(*Eval("MIN(worklog.hours)"), Value::Int64(8));
  EXPECT_EQ(*Eval("MAX(worklog.hours)"), Value::Int64(35));
  EXPECT_EQ(*Eval("AVG(worklog.hours)"), Value::Int64(18));
}

TEST_F(EvalTest, AggregateWithPredicate) {
  EXPECT_EQ(*Eval("SUM(worklog.hours WHERE worker = 'w1')"), Value::Int64(38));
  EXPECT_EQ(*Eval("COUNT(worklog WHERE hours > 15)"), Value::Int64(2));
  EXPECT_EQ(*Eval("SUM(worklog.hours WHERE worker = update.worker)"),
            Value::Int64(38));
}

TEST_F(EvalTest, AggregateWithWindow) {
  // now = 7d; entries at 1d, 3d, 3d are inside (0, 7d]; 20d is outside.
  EXPECT_EQ(*Eval("SUM(worklog.hours WINDOW 7d)"), Value::Int64(65));
  EXPECT_EQ(*Eval("COUNT(worklog WINDOW 7d)"), Value::Int64(3));
  // Narrow window covering only the 3d entries (window (4d, 7d] ... entries
  // at 3d excluded; at 1d excluded).
  EXPECT_EQ(*Eval("COUNT(worklog WINDOW 3d)"), Value::Int64(0));
}

TEST_F(EvalTest, FlsaConstraintScenario) {
  // w1 has 30 hours inside the window; adding 5 keeps it at 35 <= 40.
  EXPECT_EQ(*Eval("SUM(worklog.hours WHERE worker = update.worker WINDOW 7d) "
                  "+ update.hours <= 40"),
            Value::Bool(true));
  // A 12-hour task would hit 42 > 40.
  update_["hours"] = Value::Int64(12);
  EXPECT_EQ(*Eval("SUM(worklog.hours WHERE worker = update.worker WINDOW 7d) "
                  "+ update.hours <= 40"),
            Value::Bool(false));
}

TEST_F(EvalTest, EmptyAggregates) {
  EXPECT_EQ(*Eval("COUNT(worklog WHERE worker = 'nobody')"), Value::Int64(0));
  EXPECT_EQ(*Eval("SUM(worklog.hours WHERE worker = 'nobody')"),
            Value::Int64(0));
  EXPECT_EQ(*Eval("AVG(worklog.hours WHERE worker = 'nobody')"),
            Value::Int64(0));
  EXPECT_FALSE(Eval("MIN(worklog.hours WHERE worker = 'nobody')").ok());
  EXPECT_FALSE(Eval("MAX(worklog.hours WHERE worker = 'nobody')").ok());
}

TEST_F(EvalTest, AggregateUnknownTableOrColumn) {
  EXPECT_FALSE(Eval("COUNT(nope)").ok());
  EXPECT_FALSE(Eval("SUM(worklog.nope)").ok());
}

TEST_F(EvalTest, WindowRequiresTimestampColumn) {
  Schema no_ts({{"k", ValueType::kString}, {"v", ValueType::kInt64}});
  ASSERT_TRUE(db_.CreateTable("no_ts", no_ts).ok());
  EXPECT_FALSE(Eval("COUNT(no_ts WINDOW 1d)").ok());
}

TEST_F(EvalTest, ExistsEvaluates) {
  EXPECT_EQ(*Eval("EXISTS(worklog WHERE worker = 'w1')"), Value::Bool(true));
  EXPECT_EQ(*Eval("EXISTS(worklog WHERE worker = 'nobody')"),
            Value::Bool(false));
  EXPECT_EQ(*Eval("NOT EXISTS(worklog WHERE hours > 100)"),
            Value::Bool(true));
  // Windowed: only entries in the last 7 days (now = 7d) count.
  EXPECT_EQ(*Eval("EXISTS(worklog WHERE worker = 'w1' WINDOW 7d)"),
            Value::Bool(true));
}

TEST_F(EvalTest, ExistsAsDuplicateGuard) {
  // The classic primary-key-style constraint: reject an update whose id
  // already exists.
  update_["id"] = Value::String("t1");
  EXPECT_EQ(*Eval("NOT EXISTS(worklog WHERE id = update.id)"),
            Value::Bool(false));  // t1 exists: guard trips.
  update_["id"] = Value::String("t99");
  EXPECT_EQ(*Eval("NOT EXISTS(worklog WHERE id = update.id)"),
            Value::Bool(true));
}

TEST_F(EvalTest, CorrelatedNestedAggregate) {
  // Join-style constraint: count workers in `worklog` that have a matching
  // entry (same worker id) with MORE hours elsewhere in the table —
  // exercises `outer.` correlation across nested scans.
  // For each row r: EXISTS(worklog WHERE worker = outer.worker AND
  //                                       hours > outer.hours)
  // holds for t1 (w1,10 — t2 has 20) and t4 (w1,8 — t1/t2 bigger), not for
  // t2 (w1's max) and not for t3 (w2's only entry).
  EXPECT_EQ(*Eval("COUNT(worklog WHERE EXISTS(worklog WHERE "
                  "worker = outer.worker AND hours > outer.hours))"),
            Value::Int64(2));
}

TEST_F(EvalTest, OuterWithoutEnclosingScanFails) {
  EXPECT_FALSE(Eval("outer.hours = 1").ok());
  EXPECT_FALSE(Eval("COUNT(worklog WHERE outer.hours = 1)").ok());
}

TEST_F(EvalTest, ForAllQuantifiesOverGroups) {
  // Per-worker totals: w1 = 38 (10+20+8), w2 = 35.
  EXPECT_EQ(*Eval("FORALL(worklog.worker : "
                  "SUM(worklog.hours WHERE worker = group) <= 40)"),
            Value::Bool(true));
  EXPECT_EQ(*Eval("FORALL(worklog.worker : "
                  "SUM(worklog.hours WHERE worker = group) <= 37)"),
            Value::Bool(false));  // w1's 38 breaks it.
  EXPECT_EQ(*Eval("FORALL(worklog.worker : "
                  "SUM(worklog.hours WHERE worker = group) <= 38)"),
            Value::Bool(true));
}

TEST_F(EvalTest, ForAllVacuousOverEmptyGroupSet) {
  Schema empty_schema({{"k", ValueType::kString}});
  ASSERT_TRUE(db_.CreateTable("empty_table", empty_schema).ok());
  EXPECT_EQ(*Eval("FORALL(empty_table.k : false)"), Value::Bool(true));
}

TEST_F(EvalTest, ForAllErrors) {
  EXPECT_FALSE(Eval("FORALL(nope.c : true)").ok());
  EXPECT_FALSE(Eval("FORALL(worklog.nope : true)").ok());
  EXPECT_FALSE(Eval("FORALL(worklog.worker : 1 + 1)").ok());  // Non-bool.
  // `group` outside FORALL is unresolved.
  EXPECT_FALSE(Eval("group = 'w1'").ok());
}

TEST_F(EvalTest, EvaluateBoolRejectsNonBool) {
  auto e = ParseConstraint("1 + 1");
  ASSERT_TRUE(e.ok());
  EvalContext ctx{&db_, &update_, now_};
  EXPECT_FALSE(EvaluateBool(**e, ctx).ok());
}

// ---------------------------------------------------------------- Catalog

TEST(CatalogTest, AddFindRemove) {
  ConstraintCatalog catalog;
  ASSERT_TRUE(catalog
                  .Add("flsa", ConstraintScope::kRegulation,
                       ConstraintVisibility::kPublic, "update.hours <= 40")
                  .ok());
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_TRUE(catalog.Find("flsa").ok());
  EXPECT_FALSE(catalog.Find("nope").ok());
  EXPECT_FALSE(catalog
                   .Add("flsa", ConstraintScope::kRegulation,
                        ConstraintVisibility::kPublic, "true")
                   .ok());
  EXPECT_TRUE(catalog.Remove("flsa").ok());
  EXPECT_FALSE(catalog.Remove("flsa").ok());
}

TEST(CatalogTest, AddRejectsParseErrors) {
  ConstraintCatalog catalog;
  EXPECT_FALSE(catalog
                   .Add("bad", ConstraintScope::kInternal,
                        ConstraintVisibility::kPublic, "1 +")
                   .ok());
}

TEST(CatalogTest, CheckAllReportsFirstViolation) {
  ConstraintCatalog catalog;
  ASSERT_TRUE(catalog
                  .Add("pass", ConstraintScope::kInternal,
                       ConstraintVisibility::kPublic, "update.hours >= 0")
                  .ok());
  ASSERT_TRUE(catalog
                  .Add("fail", ConstraintScope::kRegulation,
                       ConstraintVisibility::kPublic, "update.hours <= 40")
                  .ok());
  UpdateFields update = {{"hours", Value::Int64(50)}};
  EvalContext ctx{nullptr, &update, 0};
  Status s = catalog.CheckAll(ctx);
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  EXPECT_NE(s.message().find("fail"), std::string::npos);
}

TEST(CatalogTest, ConstraintCopyIsDeep) {
  ConstraintCatalog catalog;
  ASSERT_TRUE(catalog
                  .Add("c", ConstraintScope::kInternal,
                       ConstraintVisibility::kPrivate, "update.x = 1")
                  .ok());
  Constraint copy = *catalog.Find("c").value();
  EXPECT_EQ(copy.expr->ToString(), (*catalog.Find("c"))->expr->ToString());
  EXPECT_NE(copy.expr.get(), (*catalog.Find("c"))->expr.get());
}

// ------------------------------------------------------------ Linear form


// ------------------------------------------------------------ Parser fuzz

// Seeded grammar fuzzer: generates random well-formed constraint texts,
// then checks the printer/parser fixed point (parse -> ToString -> parse ->
// ToString is stable) and that both ASTs evaluate identically against a
// populated database. Free-text round-trip cases above pin known shapes;
// this sweeps the combinatorial space of nestings the hand-written cases
// miss.
class ParserFuzz {
 public:
  explicit ParserFuzz(uint64_t seed) : rng_(seed) {}

  std::string GenBool(int depth) {
    if (depth <= 0) {
      return rng_.NextBelow(2) ? GenComparison() : GenLeafBool();
    }
    switch (rng_.NextBelow(6)) {
      case 0:
        return GenBool(depth - 1) + " AND " + GenBool(depth - 1);
      case 1:
        return GenBool(depth - 1) + " OR " + GenBool(depth - 1);
      case 2:
        return "NOT (" + GenBool(depth - 1) + ")";
      case 3:
        return "EXISTS(worklog WHERE " + GenRowPredicate() + ")";
      case 4:
        return "FORALL(worklog.worker : " + GenGroupBody(depth - 1) + ")";
      default:
        return GenComparison();
    }
  }

 private:
  std::string GenComparison() {
    static const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
    return GenArith(1) + " " + kOps[rng_.NextBelow(6)] + " " + GenArith(1);
  }

  std::string GenLeafBool() { return rng_.NextBelow(2) ? "true" : "false"; }

  std::string GenArith(int depth) {
    if (depth <= 0) return GenTerm();
    static const char* kOps[] = {"+", "-", "*"};
    switch (rng_.NextBelow(4)) {
      case 0:
        return "(" + GenArith(depth - 1) + " " + kOps[rng_.NextBelow(3)] +
               " " + GenArith(depth - 1) + ")";
      default:
        return GenTerm();
    }
  }

  std::string GenTerm() {
    switch (rng_.NextBelow(4)) {
      case 0:
        return std::to_string(rng_.NextInRange(0, 99));
      case 1:
        return "update.hours";
      case 2:
        return GenAggregate();
      default:
        return "COUNT(worklog)";
    }
  }

  std::string GenAggregate() {
    static const char* kAggs[] = {"SUM", "AVG", "MIN", "MAX"};
    std::string s = std::string(kAggs[rng_.NextBelow(4)]) + "(worklog.hours";
    if (rng_.NextBelow(2)) s += " WHERE " + GenRowPredicate();
    if (rng_.NextBelow(2)) {
      s += " WINDOW " + std::to_string(rng_.NextInRange(1, 9)) +
           (rng_.NextBelow(2) ? "d" : "h");
    }
    return s + ")";
  }

  std::string GenRowPredicate() {
    if (rng_.NextBelow(2)) {
      return std::string("worker = 'w") +
             std::to_string(rng_.NextInRange(1, 3)) + "'";
    }
    return "hours > " + std::to_string(rng_.NextInRange(0, 40));
  }

  // FORALL bodies may reference the bound `group` identifier.
  std::string GenGroupBody(int depth) {
    if (rng_.NextBelow(2)) {
      return "SUM(worklog.hours WHERE worker = group) <= " +
             std::to_string(rng_.NextInRange(0, 200));
    }
    return GenBool(depth);
  }

  prever::Rng rng_;
};

TEST_F(EvalTest, FuzzedConstraintsRoundTripAndEvaluateStably) {
  update_["hours"] = Value::Int64(12);
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    ParserFuzz fuzz(seed);
    std::string text = fuzz.GenBool(3);
    auto e1 = ParseConstraint(text);
    ASSERT_TRUE(e1.ok()) << "seed " << seed << ": " << text;
    std::string printed = (*e1)->ToString();
    auto e2 = ParseConstraint(printed);
    ASSERT_TRUE(e2.ok()) << "seed " << seed << ": " << printed;
    EXPECT_EQ(printed, (*e2)->ToString()) << "seed " << seed;

    EvalContext ctx{&db_, &update_, now_};
    auto v1 = Evaluate(**e1, ctx);
    auto v2 = Evaluate(**e2, ctx);
    ASSERT_EQ(v1.ok(), v2.ok()) << "seed " << seed << ": " << text;
    if (v1.ok()) {
      EXPECT_TRUE(*v1 == *v2) << "seed " << seed << ": " << text;
    } else {
      EXPECT_EQ(v1.status().code(), v2.status().code())
          << "seed " << seed << ": " << text;
    }
  }
}

TEST(LinearTest, ExtractsFlsaShape) {
  auto e = ParseConstraint(
      "SUM(worklog.hours WHERE worker = update.worker WINDOW 7d) + "
      "update.hours <= 40");
  ASSERT_TRUE(e.ok());
  auto form = ExtractLinearBound(**e);
  ASSERT_TRUE(form.ok());
  EXPECT_EQ(form->direction, BoundDirection::kUpper);
  EXPECT_EQ(form->bound, 40);
  EXPECT_EQ(form->update_terms, std::vector<std::string>{"hours"});
  EXPECT_EQ(form->aggregate->agg_kind, AggregateKind::kSum);
}

TEST(LinearTest, StrictUpperTightensBound) {
  auto e = ParseConstraint("COUNT(attendees) < 500");
  ASSERT_TRUE(e.ok());
  auto form = ExtractLinearBound(**e);
  ASSERT_TRUE(form.ok());
  EXPECT_EQ(form->bound, 499);
  EXPECT_EQ(form->direction, BoundDirection::kUpper);
  EXPECT_TRUE(form->update_terms.empty());
}

TEST(LinearTest, LowerBoundForms) {
  auto ge = ParseConstraint("SUM(worklog.hours) >= 10");
  auto gt = ParseConstraint("SUM(worklog.hours) > 10");
  ASSERT_TRUE(ge.ok() && gt.ok());
  EXPECT_EQ(ExtractLinearBound(**ge)->bound, 10);
  EXPECT_EQ(ExtractLinearBound(**ge)->direction, BoundDirection::kLower);
  EXPECT_EQ(ExtractLinearBound(**gt)->bound, 11);
}

TEST(LinearTest, FlippedComparisonNormalized) {
  auto e = ParseConstraint("40 >= SUM(worklog.hours) + update.hours");
  ASSERT_TRUE(e.ok());
  auto form = ExtractLinearBound(**e);
  ASSERT_TRUE(form.ok());
  EXPECT_EQ(form->direction, BoundDirection::kUpper);
  EXPECT_EQ(form->bound, 40);
}

TEST(LinearTest, RejectsNonLinearShapes) {
  const char* cases[] = {
      "update.hours = 40",                     // Equality, not a bound.
      "SUM(a.b) * 2 <= 40",                    // Scaled aggregate.
      "MIN(a.b) <= 40",                        // MIN has no linear form.
      "SUM(a.b) + SUM(c.d) <= 40",             // Two aggregates.
      "SUM(a.b) <= update.limit",              // Non-literal bound.
      "true",                                  // Not a comparison.
  };
  for (const char* text : cases) {
    auto e = ParseConstraint(text);
    ASSERT_TRUE(e.ok()) << text;
    EXPECT_FALSE(ExtractLinearBound(**e).ok()) << text;
  }
}

TEST(LinearTest, ConjunctionExtraction) {
  auto e = ParseConstraint(
      "SUM(w.h WHERE x = update.x) + update.h <= 40 AND COUNT(w) < 100");
  ASSERT_TRUE(e.ok());
  auto forms = ExtractLinearConjunction(**e);
  ASSERT_TRUE(forms.ok());
  ASSERT_EQ(forms->size(), 2u);
  EXPECT_EQ((*forms)[0].bound, 40);
  EXPECT_EQ((*forms)[1].bound, 99);
}

TEST(LinearTest, ConjunctionRejectsDisjunction) {
  auto e = ParseConstraint("SUM(w.h) <= 40 OR COUNT(w) < 100");
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(ExtractLinearConjunction(**e).ok());
}

}  // namespace
}  // namespace prever::constraint
