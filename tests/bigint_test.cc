#include "crypto/bigint.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace prever::crypto {
namespace {

TEST(BigIntTest, ZeroProperties) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_FALSE(z.IsNegative());
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToDecimalString(), "0");
  EXPECT_EQ(*z.ToInt64(), 0);
}

TEST(BigIntTest, Int64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42},
                    int64_t{-37}, INT64_MAX, INT64_MIN, int64_t{1} << 40}) {
    BigInt b(v);
    auto back = b.ToInt64();
    ASSERT_TRUE(back.ok()) << v;
    EXPECT_EQ(*back, v);
  }
}

TEST(BigIntTest, DecimalRoundTrip) {
  const char* cases[] = {"0", "1", "-1", "123456789012345678901234567890",
                         "-999999999999999999999999999999999"};
  for (const char* s : cases) {
    auto v = BigInt::FromDecimal(s);
    ASSERT_TRUE(v.ok()) << s;
    EXPECT_EQ(v->ToDecimalString(), s);
  }
}

TEST(BigIntTest, DecimalParseErrors) {
  EXPECT_FALSE(BigInt::FromDecimal("").ok());
  EXPECT_FALSE(BigInt::FromDecimal("-").ok());
  EXPECT_FALSE(BigInt::FromDecimal("12a").ok());
}

TEST(BigIntTest, HexRoundTrip) {
  auto v = BigInt::FromHex("0xdeadbeefcafebabe0123456789");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToHexString(), "deadbeefcafebabe0123456789");
}

TEST(BigIntTest, HexIgnoresWhitespace) {
  auto v = BigInt::FromHex("de ad\nbe\tef");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToHexString(), "deadbeef");
}

TEST(BigIntTest, BytesRoundTrip) {
  Bytes be = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09};
  BigInt v = BigInt::FromBytes(be);
  EXPECT_EQ(v.ToBytes(), be);
}

TEST(BigIntTest, BytesLeadingZerosDropped) {
  Bytes be = {0x00, 0x00, 0x7f};
  BigInt v = BigInt::FromBytes(be);
  EXPECT_EQ(v.ToBytes(), Bytes{0x7f});
  EXPECT_EQ(*v.ToInt64(), 0x7f);
}

TEST(BigIntTest, ToBytesPadded) {
  BigInt v(0x1234);
  auto padded = v.ToBytesPadded(4);
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(*padded, (Bytes{0x00, 0x00, 0x12, 0x34}));
  EXPECT_FALSE(v.ToBytesPadded(1).ok());
}

TEST(BigIntTest, BitAccess) {
  BigInt v(0b101101);
  EXPECT_TRUE(v.Bit(0));
  EXPECT_FALSE(v.Bit(1));
  EXPECT_TRUE(v.Bit(2));
  EXPECT_TRUE(v.Bit(3));
  EXPECT_FALSE(v.Bit(4));
  EXPECT_TRUE(v.Bit(5));
  EXPECT_FALSE(v.Bit(100));
  EXPECT_EQ(v.BitLength(), 6u);
}

TEST(BigIntTest, ShiftRoundTrip) {
  auto v = *BigInt::FromDecimal("987654321987654321");
  for (size_t s : {1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ((v << s) >> s, v) << s;
  }
}

TEST(BigIntTest, CompareOrdering) {
  BigInt a(-5), b(-2), c(0), d(3), e(100);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  EXPECT_LT(d, e);
  EXPECT_GT(e, a);
  EXPECT_EQ(BigInt(7), BigInt(7));
}

// Property sweep: BigInt arithmetic must agree with __int128 reference
// semantics on random 64-bit operands (including negatives).
class BigIntArithmeticProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BigIntArithmeticProperty, MatchesInt128Reference) {
  prever::Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    int64_t x = static_cast<int64_t>(rng.NextU64() >> (rng.NextBelow(40)));
    int64_t y = static_cast<int64_t>(rng.NextU64() >> (rng.NextBelow(40)));
    if (rng.NextBool(0.5)) x = -x;
    if (rng.NextBool(0.5)) y = -y;
    BigInt bx(x), by(y);

    __int128 sum = static_cast<__int128>(x) + y;
    __int128 diff = static_cast<__int128>(x) - y;
    __int128 prod = static_cast<__int128>(x) * y;
    // Compare through int64 when the result fits:
    if (sum >= INT64_MIN && sum <= INT64_MAX) {
      EXPECT_EQ(*(bx + by).ToInt64(), static_cast<int64_t>(sum));
    }
    if (diff >= INT64_MIN && diff <= INT64_MAX) {
      EXPECT_EQ(*(bx - by).ToInt64(), static_cast<int64_t>(diff));
    }
    if (prod >= INT64_MIN && prod <= INT64_MAX) {
      EXPECT_EQ(*(bx * by).ToInt64(), static_cast<int64_t>(prod));
    }
    if (y != 0) {
      EXPECT_EQ(*(bx / by).ToInt64(), x / y);
      EXPECT_EQ(*(bx % by).ToInt64(), x % y);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntArithmeticProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Property: for random big operands, (a/b)*b + a%b == a and |a%b| < |b|.
class BigIntDivModProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BigIntDivModProperty, EuclideanIdentity) {
  prever::Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    size_t abits = 1 + rng.NextBelow(512);
    size_t bbits = 1 + rng.NextBelow(256);
    BigInt a = BigInt::FromBytes(rng.NextBytes((abits + 7) / 8));
    BigInt b = BigInt::FromBytes(rng.NextBytes((bbits + 7) / 8));
    if (b.IsZero()) continue;
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
    EXPECT_FALSE(r.IsNegative());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntDivModProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

// Property: Karatsuba (large operands) agrees with schoolbook on random
// inputs spanning the threshold, and the Euclidean identity still holds.
class BigIntKaratsubaProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BigIntKaratsubaProperty, LargeProductsConsistent) {
  prever::Rng rng(GetParam());
  for (int iter = 0; iter < 10; ++iter) {
    // 600-4000 bit operands: well above the 24-limb Karatsuba threshold.
    size_t abytes = 75 + rng.NextBelow(425);
    size_t bbytes = 75 + rng.NextBelow(425);
    BigInt a = BigInt::FromBytes(rng.NextBytes(abytes));
    BigInt b = BigInt::FromBytes(rng.NextBytes(bbytes));
    BigInt product = a * b;
    if (b.IsZero()) continue;
    // product / b == a exactly (division is independent of Karatsuba).
    BigInt q, r;
    BigInt::DivMod(product, b, &q, &r);
    EXPECT_EQ(q, a);
    EXPECT_TRUE(r.IsZero());
    // Distributivity spot check: (a+1)*b == a*b + b.
    EXPECT_EQ((a + BigInt(1)) * b, product + b);
    // Sign handling.
    EXPECT_EQ((-a) * b, -product);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntKaratsubaProperty,
                         ::testing::Values(21, 22, 23, 24));

TEST(BigIntTest, KnownLargeMultiplication) {
  // 2^128 * 2^128 = 2^256.
  BigInt a = BigInt(1) << 128;
  BigInt sq = a * a;
  EXPECT_EQ(sq, BigInt(1) << 256);
  EXPECT_EQ(sq.BitLength(), 257u);
}

TEST(BigIntTest, KnownDecimalMultiplication) {
  auto a = *BigInt::FromDecimal("123456789123456789123456789");
  auto b = *BigInt::FromDecimal("987654321987654321");
  EXPECT_EQ((a * b).ToDecimalString(),
            "121932631356500531469135800347203169112635269");
}

TEST(BigIntTest, ModAlwaysNonNegative) {
  BigInt m(7);
  EXPECT_EQ(*BigInt(-1).Mod(m).ToInt64(), 6);
  EXPECT_EQ(*BigInt(-7).Mod(m).ToInt64(), 0);
  EXPECT_EQ(*BigInt(-8).Mod(m).ToInt64(), 6);
  EXPECT_EQ(*BigInt(15).Mod(m).ToInt64(), 1);
}

TEST(BigIntTest, PowModSmallReference) {
  prever::Rng rng(99);
  for (int iter = 0; iter < 100; ++iter) {
    uint64_t base = rng.NextBelow(1000);
    uint64_t exp = rng.NextBelow(50);
    uint64_t mod = 2 + rng.NextBelow(1000);
    // Reference by repeated multiplication.
    uint64_t expected = 1 % mod;
    for (uint64_t i = 0; i < exp; ++i) expected = expected * base % mod;
    BigInt got = BigInt(static_cast<int64_t>(base))
                     .PowMod(BigInt(static_cast<int64_t>(exp)),
                             BigInt(static_cast<int64_t>(mod)));
    EXPECT_EQ(*got.ToUint64(), expected) << base << "^" << exp << " % " << mod;
  }
}

TEST(BigIntTest, PowModFermat) {
  // a^(p-1) = 1 mod p for prime p and gcd(a,p)=1.
  auto p = *BigInt::FromDecimal("1000000007");
  for (int64_t a : {2, 3, 12345, 999999999}) {
    EXPECT_EQ(BigInt(a).PowMod(p - BigInt(1), p), BigInt(1));
  }
}

TEST(BigIntTest, GcdLcm) {
  EXPECT_EQ(*BigInt::Gcd(BigInt(12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(*BigInt::Gcd(BigInt(-12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(*BigInt::Gcd(BigInt(0), BigInt(5)).ToInt64(), 5);
  EXPECT_EQ(*BigInt::Lcm(BigInt(4), BigInt(6)).ToInt64(), 12);
  EXPECT_TRUE(BigInt::Lcm(BigInt(0), BigInt(6)).IsZero());
}

TEST(BigIntTest, InvModCorrect) {
  BigInt m(101);  // Prime.
  for (int64_t a = 1; a < 101; ++a) {
    auto inv = BigInt(a).InvMod(m);
    ASSERT_TRUE(inv.ok()) << a;
    EXPECT_EQ(BigInt(a).MulMod(*inv, m), BigInt(1));
  }
}

TEST(BigIntTest, InvModFailsWhenNotCoprime) {
  EXPECT_FALSE(BigInt(6).InvMod(BigInt(9)).ok());
  EXPECT_FALSE(BigInt(0).InvMod(BigInt(7)).ok());
}

TEST(BigIntTest, AddSubMulModConsistency) {
  prever::Rng rng(7);
  BigInt m = (BigInt(1) << 130) + BigInt(7);
  for (int iter = 0; iter < 50; ++iter) {
    BigInt a = BigInt::FromBytes(rng.NextBytes(20)).Mod(m);
    BigInt b = BigInt::FromBytes(rng.NextBytes(20)).Mod(m);
    EXPECT_EQ(a.AddMod(b, m), (a + b).Mod(m));
    EXPECT_EQ(a.SubMod(b, m), (a - b).Mod(m));
    EXPECT_EQ(a.MulMod(b, m), (a * b).Mod(m));
  }
}

}  // namespace
}  // namespace prever::crypto
