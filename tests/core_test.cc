#include <gtest/gtest.h>

#include "core/prever.h"
#include "test_util.h"

namespace prever::core {
namespace {

using storage::Mutation;
using storage::Schema;
using storage::Value;
using storage::ValueType;

// ------------------------------------------------------------ Participants

TEST(ParticipantTest, RegistryBasics) {
  ParticipantRegistry registry;
  ASSERT_TRUE(registry
                  .Add(Participant{"uber",
                                   {Role::kDataManager, Role::kDataOwner},
                                   TrustLevel::kCovert})
                  .ok());
  ASSERT_TRUE(registry
                  .Add(Participant{"dol", {Role::kAuthority},
                                   TrustLevel::kHonest})
                  .ok());
  EXPECT_FALSE(registry.Add(Participant{"uber", {}, {}}).ok());
  EXPECT_FALSE(registry.Add(Participant{"", {}, {}}).ok());
  EXPECT_TRUE(registry.HasRole("uber", Role::kDataManager));
  EXPECT_FALSE(registry.HasRole("uber", Role::kAuthority));
  EXPECT_FALSE(registry.HasRole("nobody", Role::kAuthority));
  EXPECT_EQ((*registry.Find("dol"))->trust, TrustLevel::kHonest);
}

TEST(ParticipantTest, Names) {
  EXPECT_STREQ(RoleName(Role::kDataProducer), "data-producer");
  EXPECT_STREQ(TrustLevelName(TrustLevel::kCovert), "covert");
}

// ----------------------------------------------------------------- Update

TEST(UpdateTest, EncodeDecodeRoundTrip) {
  Update u = MakeWorklogUpdate("t1", "w1", 8, 500);
  auto decoded = Update::Decode(u.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, "t1");
  EXPECT_EQ(decoded->producer, "w1");
  EXPECT_EQ(decoded->timestamp, 500u);
  EXPECT_EQ(decoded->fields.at("hours"), Value::Int64(8));
  EXPECT_EQ(decoded->mutation.table, "worklog");
}

TEST(UpdateTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Update::Decode(ToBytes("nonsense")).ok());
}

// --------------------------------------------------------------- Ordering

TEST(OrderingTest, CentralizedAppends) {
  CentralizedOrdering ordering;
  ASSERT_TRUE(ordering.Append(ToBytes("a"), 1).ok());
  ASSERT_TRUE(ordering.Append(ToBytes("b"), 2).ok());
  EXPECT_EQ(ordering.CommittedCount(), 2u);
  EXPECT_TRUE(IntegrityAuditor::AuditLedger(ordering.Ledger()).ok());
}

TEST(OrderingTest, PbftReplicatesToAllReplicaLedgers) {
  PbftOrdering ordering(4, net::SimNetConfig{});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ordering.Append(ToBytes("u" + std::to_string(i)), i).ok());
  }
  EXPECT_EQ(ordering.CommittedCount(), 5u);
  // Drain in-flight commits on the remaining replicas.
  ordering.network().RunUntilIdle();
  std::vector<const ledger::LedgerDb*> replicas;
  for (size_t i = 0; i < ordering.num_replicas(); ++i) {
    replicas.push_back(&ordering.ReplicaLedger(i));
  }
  EXPECT_TRUE(IntegrityAuditor::CheckReplicaAgreement(replicas).ok());
  EXPECT_EQ(ordering.ReplicaLedger(3).size(), 5u);
}

TEST(OrderingTest, RaftCommits) {
  RaftOrdering ordering(3, net::SimNetConfig{});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ordering.Append(ToBytes("u" + std::to_string(i)), i).ok());
  }
  EXPECT_EQ(ordering.CommittedCount(), 5u);
}

// ------------------------------------------------- Plaintext engine (base)

class PlaintextEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema worklog({{"id", ValueType::kString},
                    {"worker", ValueType::kString},
                    {"hours", ValueType::kInt64},
                    {"at", ValueType::kTimestamp}});
    ASSERT_TRUE(db_.CreateTable("worklog", worklog).ok());
    ASSERT_TRUE(catalog_
                    .Add("flsa", constraint::ConstraintScope::kRegulation,
                         constraint::ConstraintVisibility::kPublic,
                         "SUM(worklog.hours WHERE worker = update.worker "
                         "WINDOW 7d) + update.hours <= 40")
                    .ok());
    engine_ = std::make_unique<PlaintextEngine>(&db_, &catalog_, &ordering_);
  }

  storage::Database db_;
  constraint::ConstraintCatalog catalog_;
  CentralizedOrdering ordering_;
  std::unique_ptr<PlaintextEngine> engine_;
};

TEST_F(PlaintextEngineTest, AcceptsCompliantUpdates) {
  ASSERT_TRUE(engine_->SubmitUpdate(MakeWorklogUpdate("t1", "w1", 30, kDay)).ok());
  ASSERT_TRUE(
      engine_->SubmitUpdate(MakeWorklogUpdate("t2", "w1", 10, 2 * kDay)).ok());
  EXPECT_EQ(engine_->stats().accepted, 2u);
  EXPECT_EQ((*db_.GetTable("worklog"))->size(), 2u);
  EXPECT_EQ(ordering_.CommittedCount(), 2u);
}

TEST_F(PlaintextEngineTest, RejectsRegulationViolation) {
  ASSERT_TRUE(engine_->SubmitUpdate(MakeWorklogUpdate("t1", "w1", 38, kDay)).ok());
  Status s = engine_->SubmitUpdate(MakeWorklogUpdate("t2", "w1", 5, 2 * kDay));
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(engine_->stats().rejected_constraint, 1u);
  // The rejected update touched neither the database nor the ledger.
  EXPECT_EQ((*db_.GetTable("worklog"))->size(), 1u);
  EXPECT_EQ(ordering_.CommittedCount(), 1u);
}

TEST_F(PlaintextEngineTest, WindowExpiryReadmitsWorker) {
  ASSERT_TRUE(engine_->SubmitUpdate(MakeWorklogUpdate("t1", "w1", 40, kDay)).ok());
  EXPECT_FALSE(
      engine_->SubmitUpdate(MakeWorklogUpdate("t2", "w1", 1, 2 * kDay)).ok());
  // Nine days later the first entry left the 7d window.
  EXPECT_TRUE(
      engine_->SubmitUpdate(MakeWorklogUpdate("t3", "w1", 40, 10 * kDay)).ok());
}

TEST_F(PlaintextEngineTest, PerWorkerIsolation) {
  ASSERT_TRUE(engine_->SubmitUpdate(MakeWorklogUpdate("t1", "w1", 40, kDay)).ok());
  // A different worker is unaffected by w1's total.
  EXPECT_TRUE(engine_->SubmitUpdate(MakeWorklogUpdate("t2", "w2", 40, kDay)).ok());
}

TEST_F(PlaintextEngineTest, ApplyFailureReported) {
  ASSERT_TRUE(engine_->SubmitUpdate(MakeWorklogUpdate("t1", "w1", 1, kDay)).ok());
  // Duplicate primary key: verification passes, apply fails.
  Status s = engine_->SubmitUpdate(MakeWorklogUpdate("t1", "w1", 1, 2 * kDay));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(engine_->stats().rejected_error, 1u);
}

// ----------------------------------------------------- RC1 encrypted engine

class EncryptedEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    owner_ = new DataOwner(256, crypto::PedersenParams::Test256(), 77);
  }
  void SetUp() override {
    std::vector<RegulatedBound> bounds = {
        {constraint::BoundDirection::kUpper, 40, kWeek, 8}};
    engine_ = std::make_unique<EncryptedEngine>(
        owner_, &ordering_, "worker", "hours", bounds, /*value_bits=*/8,
        /*seed=*/5);
  }

  static DataOwner* owner_;
  CentralizedOrdering ordering_;
  std::unique_ptr<EncryptedEngine> engine_;
};
DataOwner* EncryptedEngineTest::owner_ = nullptr;

TEST_F(EncryptedEngineTest, AcceptsCompliantSealedUpdates) {
  ASSERT_TRUE(engine_->SubmitUpdate(MakeWorklogUpdate("t1", "w1", 20, kDay)).ok());
  ASSERT_TRUE(
      engine_->SubmitUpdate(MakeWorklogUpdate("t2", "w1", 20, 2 * kDay)).ok());
  EXPECT_EQ(engine_->stats().accepted, 2u);
  EXPECT_EQ(engine_->NumRows("w1"), 2u);
  EXPECT_EQ(ordering_.CommittedCount(), 2u);
}

TEST_F(EncryptedEngineTest, RejectsBoundViolationWithoutSeeingValues) {
  ASSERT_TRUE(engine_->SubmitUpdate(MakeWorklogUpdate("t1", "w1", 38, kDay)).ok());
  Status s = engine_->SubmitUpdate(MakeWorklogUpdate("t2", "w1", 5, 2 * kDay));
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(engine_->NumRows("w1"), 1u);
}

TEST_F(EncryptedEngineTest, WindowExpiryWorks) {
  ASSERT_TRUE(engine_->SubmitUpdate(MakeWorklogUpdate("t1", "w1", 40, kDay)).ok());
  EXPECT_FALSE(
      engine_->SubmitUpdate(MakeWorklogUpdate("t2", "w1", 1, 2 * kDay)).ok());
  EXPECT_TRUE(
      engine_->SubmitUpdate(MakeWorklogUpdate("t3", "w1", 40, 10 * kDay)).ok());
}

TEST_F(EncryptedEngineTest, GroupsAreIndependent) {
  ASSERT_TRUE(engine_->SubmitUpdate(MakeWorklogUpdate("t1", "w1", 40, kDay)).ok());
  EXPECT_TRUE(engine_->SubmitUpdate(MakeWorklogUpdate("t2", "w2", 40, kDay)).ok());
}

TEST_F(EncryptedEngineTest, RejectsValueOutsideProducerRange) {
  // value_bits = 8: 300 does not fit, sealing refuses.
  Status s = engine_->SubmitUpdate(MakeWorklogUpdate("t1", "w1", 300, kDay));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(engine_->stats().rejected_error, 1u);
}

TEST_F(EncryptedEngineTest, RejectsNegativeValues) {
  EXPECT_FALSE(
      engine_->SubmitUpdate(MakeWorklogUpdate("t1", "w1", -3, kDay)).ok());
}

TEST_F(EncryptedEngineTest, ManagerDetectsTamperedSeal) {
  Update u = MakeWorklogUpdate("t1", "w1", 10, kDay);
  auto sealed = engine_->Seal(u);
  ASSERT_TRUE(sealed.ok());
  // A malicious producer swaps in a ciphertext of a different value while
  // keeping the old commitment: the owner's binding check must catch it.
  crypto::Drbg drbg(uint64_t{123});
  auto other =
      crypto::PaillierEncrypt(owner_->paillier_pub(), crypto::BigInt(1), drbg);
  ASSERT_TRUE(other.ok());
  sealed->sealed.value_ct = *other;
  Status s = engine_->SubmitSealed(*sealed);
  EXPECT_EQ(s.code(), StatusCode::kIntegrityViolation);
}

TEST_F(EncryptedEngineTest, MissingFieldsRejected) {
  Update u;
  u.id = "t1";
  u.timestamp = kDay;
  EXPECT_FALSE(engine_->SubmitUpdate(u).ok());
}

// --------------------------------------------------- RC2 federated engines

class FederatedMpcEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) {
      auto platform = std::make_unique<FederatedPlatform>();
      platform->id = "platform-" + std::to_string(i);
      ASSERT_TRUE(platform->db.CreateTable("worklog", WorklogSchema()).ok());
      platforms_.push_back(std::move(platform));
    }
    ASSERT_TRUE(regulations_
                    .Add("flsa", constraint::ConstraintScope::kRegulation,
                         constraint::ConstraintVisibility::kPublic,
                         "SUM(worklog.hours WHERE worker = update.worker "
                         "WINDOW 7d) + update.hours <= 40")
                    .ok());
    std::vector<FederatedPlatform*> raw;
    for (auto& p : platforms_) raw.push_back(p.get());
    engine_ = std::make_unique<FederatedMpcEngine>(raw, &regulations_,
                                                   &ordering_, 99);
  }

  std::vector<std::unique_ptr<FederatedPlatform>> platforms_;
  constraint::ConstraintCatalog regulations_;
  CentralizedOrdering ordering_;
  std::unique_ptr<FederatedMpcEngine> engine_;
};

TEST_F(FederatedMpcEngineTest, ValidatesLinearRegulations) {
  EXPECT_TRUE(engine_->ValidateRegulations().ok());
  constraint::ConstraintCatalog bad;
  ASSERT_TRUE(bad.Add("weird", constraint::ConstraintScope::kRegulation,
                      constraint::ConstraintVisibility::kPublic,
                      "MIN(worklog.hours) <= 2")
                  .ok());
  std::vector<FederatedPlatform*> raw = {platforms_[0].get()};
  FederatedMpcEngine unsupported(raw, &bad, &ordering_, 1);
  EXPECT_EQ(unsupported.ValidateRegulations().code(),
            StatusCode::kNotSupported);
}

TEST_F(FederatedMpcEngineTest, EnforcesCrossPlatformCap) {
  // Worker w1 logs 18h on platform 0 and 15h on platform 1.
  ASSERT_TRUE(engine_->SubmitVia(0, MakeWorklogUpdate("t1", "w1", 18, kDay)).ok());
  ASSERT_TRUE(engine_->SubmitVia(1, MakeWorklogUpdate("t2", "w1", 15, 2 * kDay)).ok());
  // 6 more hours on platform 2 → 39 total: fine.
  ASSERT_TRUE(engine_->SubmitVia(2, MakeWorklogUpdate("t3", "w1", 6, 3 * kDay)).ok());
  // 2 more anywhere → 41 > 40: rejected even though each platform's local
  // view (18, 15, 6+2) is far below the cap.
  Status s = engine_->SubmitVia(1, MakeWorklogUpdate("t4", "w1", 2, 3 * kDay));
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  // Local databases only hold their own accepted tasks.
  EXPECT_EQ((*platforms_[0]->db.GetTable("worklog"))->size(), 1u);
  EXPECT_EQ((*platforms_[1]->db.GetTable("worklog"))->size(), 1u);
  EXPECT_EQ((*platforms_[2]->db.GetTable("worklog"))->size(), 1u);
  EXPECT_EQ(ordering_.CommittedCount(), 3u);
}

TEST_F(FederatedMpcEngineTest, WindowExpiryAcrossPlatforms) {
  ASSERT_TRUE(engine_->SubmitVia(0, MakeWorklogUpdate("t1", "w1", 40, kDay)).ok());
  EXPECT_FALSE(engine_->SubmitVia(1, MakeWorklogUpdate("t2", "w1", 1, 2 * kDay)).ok());
  EXPECT_TRUE(
      engine_->SubmitVia(1, MakeWorklogUpdate("t3", "w1", 40, 10 * kDay)).ok());
}

TEST_F(FederatedMpcEngineTest, InternalConstraintsCheckedFirst) {
  ASSERT_TRUE(platforms_[0]
                  ->internal_constraints
                  .Add("max-shift", constraint::ConstraintScope::kInternal,
                       constraint::ConstraintVisibility::kPrivate,
                       "update.hours <= 12")
                  .ok());
  Status s = engine_->SubmitVia(0, MakeWorklogUpdate("t1", "w1", 14, kDay));
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  // The same update via platform 1 (no such internal constraint) passes.
  EXPECT_TRUE(engine_->SubmitVia(1, MakeWorklogUpdate("t2", "w1", 14, kDay)).ok());
}

TEST_F(FederatedMpcEngineTest, TranscriptAccumulates) {
  ASSERT_TRUE(engine_->SubmitVia(0, MakeWorklogUpdate("t1", "w1", 5, kDay)).ok());
  EXPECT_GT(engine_->transcript().rounds, 0u);
  EXPECT_GT(engine_->transcript().messages, 0u);
}

class FederatedTokenEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    authority_ = new token::TokenAuthority(512, 40, kWeek, 7);
  }
  void SetUp() override {
    for (int i = 0; i < 2; ++i) {
      auto platform = std::make_unique<FederatedPlatform>();
      platform->id = "platform-" + std::to_string(i);
      ASSERT_TRUE(platform->db.CreateTable("worklog", WorklogSchema()).ok());
      platforms_.push_back(std::move(platform));
    }
    std::vector<FederatedPlatform*> raw;
    for (auto& p : platforms_) raw.push_back(p.get());
    engine_ = std::make_unique<FederatedTokenEngine>(raw, authority_,
                                                     &ordering_, "hours");
  }

  static token::TokenAuthority* authority_;
  std::vector<std::unique_ptr<FederatedPlatform>> platforms_;
  CentralizedOrdering ordering_;
  std::unique_ptr<FederatedTokenEngine> engine_;
};
token::TokenAuthority* FederatedTokenEngineTest::authority_ = nullptr;

TEST_F(FederatedTokenEngineTest, EnforcesBudgetAcrossPlatforms) {
  // Unique worker per test (the authority is shared across tests).
  ASSERT_TRUE(
      engine_->SubmitVia(0, MakeWorklogUpdate("a1", "alice", 25, kDay)).ok());
  ASSERT_TRUE(
      engine_->SubmitVia(1, MakeWorklogUpdate("a2", "alice", 15, 2 * kDay)).ok());
  // Budget (40) exhausted: next task rejected regardless of platform.
  Status s = engine_->SubmitVia(0, MakeWorklogUpdate("a3", "alice", 1, 3 * kDay));
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(engine_->tokens_spent(), 40u);
  EXPECT_EQ(ordering_.CommittedCount(), 40u);  // One entry per burned token.
}

TEST_F(FederatedTokenEngineTest, BudgetRenewsNextPeriod) {
  ASSERT_TRUE(
      engine_->SubmitVia(0, MakeWorklogUpdate("b1", "bob", 40, kDay)).ok());
  EXPECT_FALSE(
      engine_->SubmitVia(0, MakeWorklogUpdate("b2", "bob", 1, 2 * kDay)).ok());
  EXPECT_TRUE(
      engine_->SubmitVia(0, MakeWorklogUpdate("b3", "bob", 40, kWeek + kDay))
          .ok());
}

TEST_F(FederatedTokenEngineTest, RejectsMalformedCost) {
  Update u = MakeWorklogUpdate("c1", "carol", 5, kDay);
  u.fields.erase("hours");
  EXPECT_FALSE(engine_->SubmitVia(0, u).ok());
  Update neg = MakeWorklogUpdate("c2", "carol", -2, kDay);
  EXPECT_FALSE(engine_->SubmitVia(0, neg).ok());
}

TEST_F(FederatedTokenEngineTest, SpentSerialIndexRebuiltFromLedgerAfterRestart) {
  // Spend tokens through the first engine instance, then simulate a platform
  // restart: a fresh engine over the SAME ordering ledger rebuilds its
  // spent-serial index through SyncSpentFromLedger, and a replayed token —
  // spent before the restart, presented again after it — is still caught.
  auto& wallet = engine_->WalletOf("dave");
  ASSERT_TRUE(wallet.Withdraw(*authority_, "dave", 1, kDay).ok());
  auto replayed = wallet.Take();
  ASSERT_TRUE(replayed.ok());
  // Put it back: the 1-hour task below draws exactly this token.
  wallet.PutForTest(*replayed);
  ASSERT_TRUE(
      engine_->SubmitVia(0, MakeWorklogUpdate("d1", "dave", 1, kDay)).ok());
  ASSERT_TRUE(
      engine_->SubmitVia(1, MakeWorklogUpdate("d2", "dave", 4, 2 * kDay)).ok());
  uint64_t committed = ordering_.CommittedCount();
  ASSERT_EQ(committed, 5u);  // One ledger entry per burned token.

  // "Restart": a new engine instance over the same platforms and ledger,
  // with an empty in-memory spent-serial set until it syncs.
  std::vector<FederatedPlatform*> raw;
  for (auto& p : platforms_) raw.push_back(p.get());
  FederatedTokenEngine restarted(raw, authority_, &ordering_, "hours");
  ASSERT_TRUE(restarted.SyncSpentFromLedger().ok());

  // Wallet seeds are engine-local and deterministic; without this skew the
  // restarted dave wallet would regenerate the original wallet's serials
  // verbatim (a fixture artifact — real producers keep their wallet state).
  restarted.WalletOf("seed-skew");

  // The double-spend attempt straddles the restart: the token was burned by
  // the old instance, the replay hits the new one.
  restarted.WalletOf("dave").PutForTest(*replayed);
  Status s =
      restarted.SubmitVia(1, MakeWorklogUpdate("d3", "dave", 1, 3 * kDay));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ordering_.CommittedCount(), committed);  // Nothing burned.

  // Fresh tokens still spend through the restarted engine.
  EXPECT_TRUE(
      restarted.SubmitVia(0, MakeWorklogUpdate("d4", "dave", 2, 4 * kDay))
          .ok());
  EXPECT_EQ(ordering_.CommittedCount(), committed + 2);
}

// ------------------------------------------------- RC3 public-data engine

class PublicDataEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema attendees({{"name", ValueType::kString},
                      {"mode", ValueType::kString}});
    ASSERT_TRUE(db_.CreateTable("attendees", attendees).ok());
    ASSERT_TRUE(catalog_
                    .Add("capacity", constraint::ConstraintScope::kInternal,
                         constraint::ConstraintVisibility::kPublic,
                         "COUNT(attendees) + 1 <= 2")
                    .ok());
    std::vector<AttestationRequirement> reqs = {
        {"doses", constraint::BoundDirection::kLower, 2, 8}};
    engine_ = std::make_unique<PublicDataEngine>(
        &db_, &catalog_, reqs, &ordering_, crypto::PedersenParams::Test256());
  }

  PublicDataEngine::Submission MakeRegistration(const std::string& name,
                                                int64_t doses) {
    PublicDataEngine::Submission s;
    s.update.id = "reg-" + name;
    s.update.producer = name;
    s.update.timestamp = kDay;
    s.update.fields = {{"name", Value::String(name)}};
    s.update.mutation.op = Mutation::Op::kInsert;
    s.update.mutation.table = "attendees";
    s.update.mutation.row = {Value::String(name),
                             Value::String("in-person")};
    auto att = engine_->Attest(engine_->requirements()[0], doses, drbg_);
    if (att.ok()) s.attestations.push_back(std::move(*att));
    return s;
  }

  storage::Database db_;
  constraint::ConstraintCatalog catalog_;
  CentralizedOrdering ordering_;
  crypto::Drbg drbg_{uint64_t{11}};
  std::unique_ptr<PublicDataEngine> engine_;
};

TEST_F(PublicDataEngineTest, AcceptsVaccinatedRegistrant) {
  ASSERT_TRUE(engine_->Submit(MakeRegistration("ada", 2)).ok());
  ASSERT_TRUE(engine_->Submit(MakeRegistration("bob", 3)).ok());
  EXPECT_EQ((*db_.GetTable("attendees"))->size(), 2u);
  EXPECT_EQ(ordering_.CommittedCount(), 2u);
}

TEST_F(PublicDataEngineTest, UnvaccinatedCannotEvenAttest) {
  // With 1 dose, the producer cannot create a valid >= 2 attestation…
  auto att = engine_->Attest(engine_->requirements()[0], 1, drbg_);
  EXPECT_EQ(att.status().code(), StatusCode::kConstraintViolation);
  // …and a submission without one is rejected.
  PublicDataEngine::Submission s = MakeRegistration("eve", 1);
  EXPECT_TRUE(s.attestations.empty());
  EXPECT_EQ(engine_->Submit(s).code(), StatusCode::kConstraintViolation);
}

TEST_F(PublicDataEngineTest, ForeignAttestationRejected) {
  // Reusing someone else's attestation under a different requirement bound
  // fails verification (proof is bound to the commitment).
  PublicDataEngine::Submission s = MakeRegistration("mallory", 2);
  s.attestations[0].commitment.c =
      s.attestations[0].commitment.c + crypto::BigInt(1);
  EXPECT_EQ(engine_->Submit(s).code(), StatusCode::kConstraintViolation);
}

TEST_F(PublicDataEngineTest, PublicCapacityConstraintEnforced) {
  ASSERT_TRUE(engine_->Submit(MakeRegistration("a", 2)).ok());
  ASSERT_TRUE(engine_->Submit(MakeRegistration("b", 2)).ok());
  // Capacity 2: COUNT(attendees) + 1 <= 2 blocks the third registration.
  EXPECT_EQ(engine_->Submit(MakeRegistration("c", 2)).code(),
            StatusCode::kConstraintViolation);
}

TEST_F(PublicDataEngineTest, PirSnapshotServesRows) {
  ASSERT_TRUE(engine_->Submit(MakeRegistration("ada", 2)).ok());
  ASSERT_TRUE(engine_->Submit(MakeRegistration("bob", 2)).ok());
  auto snapshot = engine_->BuildPirSnapshot("attendees", 64);
  ASSERT_TRUE(snapshot.ok());
  pir::XorPirClient client(3);
  auto rec = client.Fetch(0, *snapshot->server0, *snapshot->server1);
  ASSERT_TRUE(rec.ok());
  // First row (key order) is "ada"; decode and check.
  BinaryReader r(*rec);
  auto name = storage::Value::DecodeFrom(r);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, Value::String("ada"));
}

TEST_F(PublicDataEngineTest, SubmitUpdateRequiresNoRequirements) {
  Update u;
  u.id = "x";
  EXPECT_EQ(engine_->SubmitUpdate(u).code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------- RC4 auditing

TEST(AuditorTest, DetectsHistoryRewriteBetweenAudits) {
  ledger::LedgerDb honest;
  for (int i = 0; i < 8; ++i) honest.Append(ToBytes("e" + std::to_string(i)), i);
  ledger::LedgerDigest observed = honest.Digest();
  for (int i = 8; i < 12; ++i) honest.Append(ToBytes("e" + std::to_string(i)), i);
  auto proof = honest.ProveConsistency(8, 12);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(
      IntegrityAuditor::CheckExtension(observed, honest.Digest(), *proof).ok());

  // A manager that rewrote history cannot produce a valid extension proof.
  ledger::LedgerDb rewritten;
  for (int i = 0; i < 12; ++i) {
    rewritten.Append(ToBytes("fake" + std::to_string(i)), i);
  }
  auto bad_proof = rewritten.ProveConsistency(8, 12);
  ASSERT_TRUE(bad_proof.ok());
  EXPECT_EQ(IntegrityAuditor::CheckExtension(observed, rewritten.Digest(),
                                             *bad_proof)
                .code(),
            StatusCode::kIntegrityViolation);
}

TEST(AuditorTest, DetectsShrunkLedger) {
  ledger::LedgerDb l;
  for (int i = 0; i < 5; ++i) l.Append(ToBytes("e"), i);
  ledger::LedgerDigest before = l.Digest();
  ledger::LedgerDigest shrunk{3, before.root};
  EXPECT_EQ(
      IntegrityAuditor::CheckExtension(before, shrunk, {}).code(),
      StatusCode::kIntegrityViolation);
}

TEST(AuditorTest, ReplicaAgreementAndDivergence) {
  ledger::LedgerDb a, b, c;
  for (int i = 0; i < 6; ++i) {
    Bytes e = ToBytes("e" + std::to_string(i));
    a.Append(e, i);
    b.Append(e, i);
    c.Append(e, i);
  }
  b.Append(ToBytes("extra"), 7);  // Lagging prefix is fine.
  EXPECT_TRUE(IntegrityAuditor::CheckReplicaAgreement({&a, &b, &c}).ok());
  ledger::LedgerDb diverged;
  for (int i = 0; i < 6; ++i) diverged.Append(ToBytes("evil"), i);
  EXPECT_EQ(
      IntegrityAuditor::CheckReplicaAgreement({&a, &diverged}).code(),
      StatusCode::kIntegrityViolation);
  EXPECT_FALSE(IntegrityAuditor::CheckReplicaAgreement({}).ok());
}

// --------------------------------------------------------------- DP index

TEST(DpIndexTest, RefusePolicyStopsAtBudget) {
  DpAggregateIndex index(1.0, 0.1, 1.0, DpExhaustionPolicy::kRefuse, 1);
  int successes = 0;
  for (int i = 0; i < 20; ++i) {
    if (index.Update(1).ok()) ++successes;
  }
  EXPECT_EQ(successes, 10);  // 1.0 / 0.1 releases, then refusal.
  EXPECT_TRUE(index.exhausted());
  EXPECT_EQ(index.true_value(), 20.0);  // Truth keeps moving; releases stop.
}

TEST(DpIndexTest, DegradePolicyNoiseExplodes) {
  DpAggregateIndex index(1.0, 0.1, 1.0, DpExhaustionPolicy::kDegrade, 2);
  double first_scale = 0, last_scale = 0;
  for (int i = 0; i < 40; ++i) {
    auto release = index.Update(1);
    ASSERT_TRUE(release.ok()) << i;
    if (i == 0) first_scale = release->noise_scale;
    last_scale = release->noise_scale;
  }
  // Geometric budget splitting: noise scale grows without bound.
  EXPECT_GT(last_scale, first_scale * 1000);
  EXPECT_LT(index.epsilon_remaining(), 1e-6);
}

TEST(DpIndexTest, NoisyValueTracksTruthEarly) {
  DpAggregateIndex index(10.0, 1.0, 1.0, DpExhaustionPolicy::kRefuse, 3);
  auto release = index.Update(100);
  ASSERT_TRUE(release.ok());
  // With eps=1, sensitivity 1, noise is O(1): the release is close to 100.
  EXPECT_NEAR(release->noisy_value, 100.0, 30.0);
}

}  // namespace
}  // namespace prever::core
