// End-to-end scenario tests: condensed, assertion-checked versions of the
// §2 application examples, exercising full engine pipelines the way the
// runnable examples do.

#include <gtest/gtest.h>

#include "core/prever.h"
#include "workload/crowdworking.h"
#include "workload/supplychain.h"
#include "workload/ycsb.h"

namespace prever::core {
namespace {

using storage::Mutation;
using storage::Value;

// --------------------------------------------------- §2.1 sustainability

TEST(ScenarioTest, SustainabilityCertificationRc1) {
  DataOwner owner(256, crypto::PedersenParams::Test256(), 61);
  CentralizedOrdering ordering;
  std::vector<RegulatedBound> bounds = {
      {constraint::BoundDirection::kUpper, 100, 30 * kDay, 8}};
  EncryptedEngine authority(&owner, &ordering, "metric", "tons", bounds, 8,
                            62);
  auto report = [&](const char* id, const char* metric, int64_t tons,
                    SimTime at) {
    Update u;
    u.id = id;
    u.producer = "acme";
    u.timestamp = at;
    u.fields = {{"metric", Value::String(metric)},
                {"tons", Value::Int64(tons)}};
    return authority.SubmitUpdate(u);
  };
  EXPECT_TRUE(report("r1", "co2", 40, 1 * kDay).ok());
  EXPECT_TRUE(report("r2", "co2", 35, 10 * kDay).ok());
  EXPECT_EQ(report("r3", "co2", 30, 20 * kDay).code(),
            StatusCode::kConstraintViolation);  // 105 > 100.
  EXPECT_TRUE(report("r4", "water", 90, 20 * kDay).ok());  // Other metric.
  EXPECT_TRUE(report("r5", "co2", 20, 45 * kDay).ok());    // Window slid.
  EXPECT_TRUE(IntegrityAuditor::AuditLedger(ordering.Ledger()).ok());
  EXPECT_EQ(authority.stats().accepted, 4u);
}

// ------------------------------------------------------ §2.2 conference

TEST(ScenarioTest, ConferenceRegistrationRc3) {
  storage::Database db;
  storage::Schema attendees({{"name", storage::ValueType::kString},
                             {"mode", storage::ValueType::kString}});
  ASSERT_TRUE(db.CreateTable("attendees", attendees).ok());
  constraint::ConstraintCatalog catalog;
  ASSERT_TRUE(catalog
                  .Add("capacity", constraint::ConstraintScope::kInternal,
                       constraint::ConstraintVisibility::kPublic,
                       "COUNT(attendees) + 1 <= 2")
                  .ok());
  std::vector<AttestationRequirement> reqs = {
      {"doses", constraint::BoundDirection::kLower, 2, 8}};
  CentralizedOrdering ordering;
  PublicDataEngine desk(&db, &catalog, reqs, &ordering,
                        crypto::PedersenParams::Test256());
  crypto::Drbg drbg(uint64_t{63});
  auto submit = [&](const char* name, int64_t doses) {
    PublicDataEngine::Submission s;
    s.update.id = std::string("reg-") + name;
    s.update.producer = name;
    s.update.timestamp = kDay;
    s.update.fields = {{"name", Value::String(name)}};
    s.update.mutation.op = Mutation::Op::kInsert;
    s.update.mutation.table = "attendees";
    s.update.mutation.row = {Value::String(name), Value::String("in-person")};
    auto att = desk.Attest(desk.requirements()[0], doses, drbg);
    if (!att.ok()) return att.status();
    s.attestations.push_back(std::move(*att));
    return desk.Submit(s);
  };
  EXPECT_TRUE(submit("ada", 3).ok());
  EXPECT_EQ(submit("eve", 1).code(), StatusCode::kConstraintViolation);
  EXPECT_TRUE(submit("bob", 2).ok());
  EXPECT_EQ(submit("carol", 2).code(), StatusCode::kConstraintViolation);
  EXPECT_EQ((*db.GetTable("attendees"))->size(), 2u);
}

// --------------------------------------------- §2.3 crowdworking (3-way)

TEST(ScenarioTest, AllThreeRc2EnginesAgreeOnTheCap) {
  workload::CrowdworkingConfig config;
  config.num_workers = 6;
  config.num_platforms = 3;
  config.num_weeks = 1;
  config.seed = 64;
  auto trace = workload::CrowdworkingWorkload(config).Generate();
  ASSERT_FALSE(trace.empty());

  auto make_platforms = [] {
    std::vector<std::unique_ptr<FederatedPlatform>> out;
    for (int i = 0; i < 3; ++i) {
      auto p = std::make_unique<FederatedPlatform>();
      p->id = "p" + std::to_string(i);
      (void)p->db.CreateTable(workload::CrowdworkingWorkload::kTableName,
                              workload::CrowdworkingWorkload::WorklogSchema());
      out.push_back(std::move(p));
    }
    return out;
  };
  constraint::ConstraintCatalog regulations;
  ASSERT_TRUE(regulations
                  .Add("flsa", constraint::ConstraintScope::kRegulation,
                       constraint::ConstraintVisibility::kPublic,
                       "SUM(worklog.hours WHERE worker = update.worker "
                       "WINDOW 7d) + update.hours <= 40")
                  .ok());

  // MPC engine.
  auto mpc_platforms = make_platforms();
  std::vector<FederatedPlatform*> mpc_raw;
  for (auto& p : mpc_platforms) mpc_raw.push_back(p.get());
  CentralizedOrdering mpc_ordering;
  FederatedMpcEngine mpc(mpc_raw, &regulations, &mpc_ordering, 65);

  // Threshold-ElGamal engine.
  auto teg_platforms = make_platforms();
  std::vector<FederatedPlatform*> teg_raw;
  for (auto& p : teg_platforms) teg_raw.push_back(p.get());
  CentralizedOrdering teg_ordering;
  FederatedThresholdEngine teg(teg_raw, &regulations, &teg_ordering,
                               crypto::PedersenParams::Test256(), 66);

  uint64_t idx = 0;
  for (const auto& e : trace) {
    Update u = e.ToUpdate(idx++);
    Status a = mpc.SubmitVia(e.platform, u);
    Status b = teg.SubmitVia(e.platform, u);
    // Identical decisions on the identical stream: the mechanism differs,
    // the regulation semantics must not.
    EXPECT_EQ(a.ok(), b.ok()) << u.id;
  }
  EXPECT_EQ(mpc.stats().accepted, teg.stats().accepted);
  EXPECT_EQ(mpc.stats().rejected_constraint, teg.stats().rejected_constraint);
}

// ---------------------------------------------------- §2.4 supply chain

TEST(ScenarioTest, SupplyChainSlaOverPbft) {
  storage::Database db;
  ASSERT_TRUE(db.CreateTable(workload::SupplyChainWorkload::kTableName,
                             workload::SupplyChainWorkload::EventSchema())
                  .ok());
  constraint::ConstraintCatalog sla;
  ASSERT_TRUE(sla.Add("no-overshipping",
                      constraint::ConstraintScope::kInternal,
                      constraint::ConstraintVisibility::kPublic,
                      workload::SupplyChainWorkload::ShipmentConstraint())
                  .ok());
  PbftOrdering ordering(4, net::SimNetConfig{});
  PlaintextEngine engine(&db, &sla, &ordering);

  workload::SupplyChainConfig config;
  config.num_events = 60;
  config.violation_rate = 0.2;
  config.seed = 67;
  auto events = workload::SupplyChainWorkload(config).Generate();
  uint64_t idx = 0, rejected = 0, accepted = 0;
  for (const auto& e : events) {
    Update u = e.ToUpdate(idx++);
    if (e.kind == workload::SupplyEventKind::kProduce) {
      ASSERT_TRUE(db.Apply(u.mutation).ok());
      continue;
    }
    if (engine.SubmitUpdate(u).ok()) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);  // violation_rate must surface as rejections.
  ordering.network().RunUntilIdle();
  std::vector<const ledger::LedgerDb*> replicas;
  for (size_t i = 0; i < ordering.num_replicas(); ++i) {
    replicas.push_back(&ordering.ReplicaLedger(i));
  }
  EXPECT_TRUE(IntegrityAuditor::CheckReplicaAgreement(replicas).ok());
  EXPECT_EQ(ordering.ReplicaLedger(0).size(), accepted);
}

// ---------------------------------------- YCSB across ordering services

TEST(ScenarioTest, YcsbThroughRaftOrderedPlaintextEngine) {
  workload::YcsbConfig config;
  config.record_count = 20;
  config.operation_count = 15;
  config.seed = 68;
  workload::YcsbWorkload ycsb(config);
  storage::Database db;
  ASSERT_TRUE(db.CreateTable(workload::YcsbWorkload::kTableName,
                             workload::YcsbWorkload::TableSchema())
                  .ok());
  auto* table = *db.GetMutableTable(workload::YcsbWorkload::kTableName);
  for (const auto& row : ycsb.InitialLoad()) ASSERT_TRUE(table->Insert(row).ok());
  constraint::ConstraintCatalog catalog;
  RaftOrdering ordering(3, net::SimNetConfig{});
  PlaintextEngine engine(&db, &catalog, &ordering);
  for (int i = 0; i < 15; ++i) {
    core::Update u = ycsb.Next();
    u.mutation.op = Mutation::Op::kUpsert;
    ASSERT_TRUE(engine.SubmitUpdate(u).ok()) << i;
  }
  EXPECT_EQ(ordering.CommittedCount(), 15u);
  EXPECT_TRUE(IntegrityAuditor::AuditLedger(ordering.Ledger()).ok());
}

}  // namespace
}  // namespace prever::core
