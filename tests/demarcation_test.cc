#include "core/demarcation_engine.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace prever::core {
namespace {

using storage::Mutation;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class DemarcationEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) {
      auto platform = std::make_unique<FederatedPlatform>();
      platform->id = "platform-" + std::to_string(i);
      ASSERT_TRUE(platform->db.CreateTable("worklog", WorklogSchema()).ok());
      platforms_.push_back(std::move(platform));
    }
    // 39-hour weekly cap splits evenly into 13 per platform.
    ASSERT_TRUE(regulations_
                    .Add("cap", constraint::ConstraintScope::kRegulation,
                         constraint::ConstraintVisibility::kPublic,
                         "SUM(worklog.hours WHERE worker = update.worker "
                         "WINDOW 7d) + update.hours <= 39")
                    .ok());
    std::vector<FederatedPlatform*> raw;
    for (auto& p : platforms_) raw.push_back(p.get());
    engine_ = std::make_unique<DemarcationEngine>(raw, &regulations_,
                                                  &ordering_);
  }

  std::vector<std::unique_ptr<FederatedPlatform>> platforms_;
  constraint::ConstraintCatalog regulations_;
  CentralizedOrdering ordering_;
  std::unique_ptr<DemarcationEngine> engine_;
};

TEST_F(DemarcationEngineTest, ValidatesRegulations) {
  EXPECT_TRUE(engine_->ValidateRegulations().ok());
  constraint::ConstraintCatalog lower;
  ASSERT_TRUE(lower
                  .Add("min", constraint::ConstraintScope::kRegulation,
                       constraint::ConstraintVisibility::kPublic,
                       "SUM(worklog.hours) >= 5")
                  .ok());
  std::vector<FederatedPlatform*> raw = {platforms_[0].get()};
  DemarcationEngine bad(raw, &lower, &ordering_);
  EXPECT_EQ(bad.ValidateRegulations().code(), StatusCode::kNotSupported);
}

TEST_F(DemarcationEngineTest, LocalAdmissionsNeedNoCommunication) {
  // 13 hours per platform fit the local limits exactly: zero transfers.
  ASSERT_TRUE(engine_->SubmitVia(0, MakeWorklogUpdate("t1", "w1", 13, kDay)).ok());
  ASSERT_TRUE(engine_->SubmitVia(1, MakeWorklogUpdate("t2", "w1", 13, kDay)).ok());
  ASSERT_TRUE(engine_->SubmitVia(2, MakeWorklogUpdate("t3", "w1", 13, kDay)).ok());
  EXPECT_EQ(engine_->transfers(), 0u);
  EXPECT_EQ(engine_->local_admissions(), 3u);
}

TEST_F(DemarcationEngineTest, TransfersSlackWhenLocalLimitExceeded) {
  // 20 hours on platform 0 exceeds its 13-limit; it pulls slack from peers.
  ASSERT_TRUE(engine_->SubmitVia(0, MakeWorklogUpdate("t1", "w1", 20, kDay)).ok());
  EXPECT_EQ(engine_->transfers(), 1u);
  // Global budget still enforced: total may reach 39 but not 40.
  ASSERT_TRUE(engine_->SubmitVia(1, MakeWorklogUpdate("t2", "w1", 19, kDay)).ok());
  Status s = engine_->SubmitVia(2, MakeWorklogUpdate("t3", "w1", 1, kDay));
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
}

TEST_F(DemarcationEngineTest, GlobalBoundNeverExceeded) {
  // Adversarial-ish stream: many small tasks from every platform; accepted
  // total must never exceed the 39-hour bound within one bucket.
  int64_t accepted_hours = 0;
  for (int i = 0; i < 30; ++i) {
    Update u = MakeWorklogUpdate("t" + std::to_string(i), "w1", 3, kDay);
    if (engine_->SubmitVia(i % 3, u).ok()) accepted_hours += 3;
  }
  EXPECT_LE(accepted_hours, 39);
  EXPECT_GE(accepted_hours, 37);  // And it does not under-admit badly.
}

TEST_F(DemarcationEngineTest, GroupsHaveIndependentBudgets) {
  ASSERT_TRUE(engine_->SubmitVia(0, MakeWorklogUpdate("t1", "w1", 20, kDay)).ok());
  ASSERT_TRUE(engine_->SubmitVia(0, MakeWorklogUpdate("t2", "w2", 20, kDay)).ok());
}

TEST_F(DemarcationEngineTest, TumblingBucketsReset) {
  ASSERT_TRUE(engine_->SubmitVia(0, MakeWorklogUpdate("t1", "w1", 39, kDay)).ok());
  EXPECT_FALSE(engine_->SubmitVia(0, MakeWorklogUpdate("t2", "w1", 1, 2 * kDay)).ok());
  // Next tumbling bucket (the following week): budget is fresh.
  EXPECT_TRUE(
      engine_->SubmitVia(0, MakeWorklogUpdate("t3", "w1", 39, kWeek + kDay)).ok());
}

TEST_F(DemarcationEngineTest, StatsAndLedger) {
  ASSERT_TRUE(engine_->SubmitVia(0, MakeWorklogUpdate("t1", "w1", 5, kDay)).ok());
  EXPECT_EQ(engine_->stats().accepted, 1u);
  EXPECT_EQ(ordering_.CommittedCount(), 1u);
}

}  // namespace
}  // namespace prever::core
