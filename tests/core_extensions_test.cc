// Tests for the extension features: producer-signed updates, ledger
// persistence, batched and sharded PBFT ordering, string-escape round
// trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "constraint/parser.h"
#include "core/prever.h"

namespace prever::core {
namespace {

using storage::Mutation;
using storage::Schema;
using storage::Value;
using storage::ValueType;

// ------------------------------------------------------- Signed updates --

class SignedUpdateTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::Drbg drbg(uint64_t{55});
    alice_key_ = new crypto::RsaKeyPair(
        crypto::RsaGenerateKey(512, drbg).value());
    mallory_key_ = new crypto::RsaKeyPair(
        crypto::RsaGenerateKey(512, drbg).value());
  }
  void SetUp() override {
    Schema schema({{"id", ValueType::kString},
                   {"worker", ValueType::kString},
                   {"hours", ValueType::kInt64},
                   {"at", ValueType::kTimestamp}});
    ASSERT_TRUE(db_.CreateTable("worklog", schema).ok());
    ASSERT_TRUE(directory_.Register("alice", alice_key_->pub).ok());
    engine_ = std::make_unique<PlaintextEngine>(&db_, &catalog_, &ordering_);
    auth_ = std::make_unique<AuthenticatingEngine>(engine_.get(), &directory_);
  }

  Update MakeUpdate(const std::string& producer, const std::string& id) {
    Update u;
    u.id = id;
    u.producer = producer;
    u.timestamp = kDay;
    u.fields = {{"hours", Value::Int64(5)}};
    u.mutation.op = Mutation::Op::kInsert;
    u.mutation.table = "worklog";
    u.mutation.row = {Value::String(id), Value::String(producer),
                      Value::Int64(5), Value::Timestamp(kDay)};
    return u;
  }

  static crypto::RsaKeyPair* alice_key_;
  static crypto::RsaKeyPair* mallory_key_;
  storage::Database db_;
  constraint::ConstraintCatalog catalog_;
  CentralizedOrdering ordering_;
  ProducerKeyDirectory directory_;
  std::unique_ptr<PlaintextEngine> engine_;
  std::unique_ptr<AuthenticatingEngine> auth_;
};
crypto::RsaKeyPair* SignedUpdateTest::alice_key_ = nullptr;
crypto::RsaKeyPair* SignedUpdateTest::mallory_key_ = nullptr;

TEST_F(SignedUpdateTest, ValidSignatureAccepted) {
  SignedUpdate s = SignUpdate(MakeUpdate("alice", "t1"), *alice_key_);
  EXPECT_TRUE(auth_->SubmitSigned(s).ok());
  EXPECT_EQ((*db_.GetTable("worklog"))->size(), 1u);
}

TEST_F(SignedUpdateTest, ImpersonationRejected) {
  // Mallory signs an update claiming to be alice: alice's registered key
  // does not verify it.
  SignedUpdate s = SignUpdate(MakeUpdate("alice", "t1"), *mallory_key_);
  EXPECT_EQ(auth_->SubmitSigned(s).code(), StatusCode::kIntegrityViolation);
  EXPECT_EQ(auth_->rejected_signatures(), 1u);
  EXPECT_EQ((*db_.GetTable("worklog"))->size(), 0u);
}

TEST_F(SignedUpdateTest, UnknownProducerRejected) {
  SignedUpdate s = SignUpdate(MakeUpdate("mallory", "t1"), *mallory_key_);
  EXPECT_EQ(auth_->SubmitSigned(s).code(), StatusCode::kPermissionDenied);
}

TEST_F(SignedUpdateTest, TamperedUpdateBodyRejected) {
  SignedUpdate s = SignUpdate(MakeUpdate("alice", "t1"), *alice_key_);
  s.update.fields["hours"] = Value::Int64(500);  // Inflate after signing.
  EXPECT_EQ(auth_->SubmitSigned(s).code(), StatusCode::kIntegrityViolation);
}

TEST_F(SignedUpdateTest, UnsignedPathRefused) {
  EXPECT_EQ(auth_->SubmitUpdate(MakeUpdate("alice", "t1")).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(SignedUpdateTest, DirectoryRejectsDuplicateRegistration) {
  EXPECT_EQ(directory_.Register("alice", alice_key_->pub).code(),
            StatusCode::kAlreadyExists);
}

// ---------------------------------------------------- Ledger persistence --

class LedgerPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "prever_ledger_persist.bin";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(LedgerPersistenceTest, SaveLoadRoundTrip) {
  ledger::LedgerDb original;
  for (int i = 0; i < 25; ++i) {
    original.Append(ToBytes("entry" + std::to_string(i)), i * 10);
  }
  ASSERT_TRUE(original.SaveToFile(path_).ok());
  auto loaded = ledger::LedgerDb::LoadFromFile(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 25u);
  EXPECT_EQ(loaded->Digest(), original.Digest());
  EXPECT_TRUE(loaded->Audit().ok());
  EXPECT_EQ(loaded->GetEntry(7)->timestamp, 70u);
}

TEST_F(LedgerPersistenceTest, LoadDetectsReorderedEntries) {
  ledger::LedgerDb original;
  original.Append(ToBytes("a"), 0);
  original.Append(ToBytes("b"), 1);
  ASSERT_TRUE(original.SaveToFile(path_).ok());
  // Rewrite the file with the records swapped (valid CRCs, wrong order).
  auto records = storage::WriteAheadLog::Recover(path_);
  ASSERT_TRUE(records.ok());
  std::swap((*records)[0], (*records)[1]);
  std::remove(path_.c_str());
  storage::WriteAheadLog log;
  ASSERT_TRUE(log.Open(path_).ok());
  for (const Bytes& r : *records) ASSERT_TRUE(log.Append(r).ok());
  log.Close();
  EXPECT_EQ(ledger::LedgerDb::LoadFromFile(path_).status().code(),
            StatusCode::kIntegrityViolation);
}

TEST_F(LedgerPersistenceTest, LoadRejectsCorruptTail) {
  ledger::LedgerDb original;
  original.Append(ToBytes("a"), 0);
  ASSERT_TRUE(original.SaveToFile(path_).ok());
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  uint8_t junk[5] = {1, 2, 3, 4, 5};
  std::fwrite(junk, 1, 5, f);
  std::fclose(f);
  EXPECT_EQ(ledger::LedgerDb::LoadFromFile(path_).status().code(),
            StatusCode::kIntegrityViolation);
}

TEST_F(LedgerPersistenceTest, MissingFileIsEmptyLedger) {
  auto loaded = ledger::LedgerDb::LoadFromFile(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
}

// ------------------------------------------- Batched / sharded ordering --

TEST(BatchedOrderingTest, BatchYieldsOneEntryPerPayload) {
  PbftOrdering ordering(4, net::SimNetConfig{});
  std::vector<Bytes> batch = {ToBytes("u1"), ToBytes("u2"), ToBytes("u3")};
  ASSERT_TRUE(ordering.AppendBatch(batch, 0).ok());
  EXPECT_EQ(ordering.CommittedCount(), 3u);
  EXPECT_EQ(ToString(ordering.Ledger().GetEntry(0)->payload), "u1");
  EXPECT_EQ(ToString(ordering.Ledger().GetEntry(2)->payload), "u3");
  EXPECT_FALSE(ordering.AppendBatch({}, 0).ok());
}

TEST(BatchedOrderingTest, IdenticalBatchesBothCommit) {
  // The batch counter makes equal payload sets distinct consensus commands
  // (PBFT dedups by digest).
  PbftOrdering ordering(4, net::SimNetConfig{});
  ASSERT_TRUE(ordering.AppendBatch({ToBytes("same")}, 0).ok());
  ASSERT_TRUE(ordering.AppendBatch({ToBytes("same")}, 0).ok());
  EXPECT_EQ(ordering.CommittedCount(), 2u);
}

TEST(BatchedOrderingTest, ReplicasAgreeAfterBatches) {
  PbftOrdering ordering(4, net::SimNetConfig{});
  ASSERT_TRUE(ordering.AppendBatch({ToBytes("a"), ToBytes("b")}, 0).ok());
  ASSERT_TRUE(ordering.AppendBatch({ToBytes("c")}, 1).ok());
  ordering.network().RunUntilIdle();
  std::vector<const ledger::LedgerDb*> replicas;
  for (size_t i = 0; i < ordering.num_replicas(); ++i) {
    replicas.push_back(&ordering.ReplicaLedger(i));
  }
  EXPECT_TRUE(IntegrityAuditor::CheckReplicaAgreement(replicas).ok());
}

TEST(ShardedOrderingTest, RoutesDeterministicallyAndCommits) {
  ShardedPbftOrdering ordering(3, 4, net::SimNetConfig{});
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(ordering
                    .AppendRouted("key" + std::to_string(i),
                                  ToBytes("u" + std::to_string(i)), i)
                    .ok());
  }
  EXPECT_EQ(ordering.CommittedCount(), 12u);
  // Same key always lands on the same shard: re-appending key0's payload
  // grows only one shard.
  std::vector<uint64_t> before;
  for (size_t s = 0; s < 3; ++s) {
    before.push_back(ordering.Shard(s).CommittedCount());
  }
  ASSERT_TRUE(ordering.AppendRouted("key0", ToBytes("u0-again"), 99).ok());
  int grown = 0;
  for (size_t s = 0; s < 3; ++s) {
    if (ordering.Shard(s).CommittedCount() > before[s]) ++grown;
  }
  EXPECT_EQ(grown, 1);
  EXPECT_GT(ordering.MaxShardTime(), 0u);
}

// --------------------------------------------------- Pipelined ordering --

// Regression: the old commit stamp (seq * 1000 + i) collided once a batch
// held >= 1000 payloads — entry 1000 of batch seq stamped identically to
// entry 0 of batch seq+1. BatchEntryStamp packs (position, index) into
// disjoint bit ranges, so every entry of a 1100-payload batch plus a
// follow-up batch must carry a distinct stamp on every replica.
TEST(PipelinedOrderingTest, LargeBatchStampsAreUniqueAcrossBatches) {
  PbftOrdering ordering(4, net::SimNetConfig{}, "pbft-stamp-test");
  std::vector<Bytes> big;
  for (int i = 0; i < 1100; ++i) big.push_back(ToBytes("p" + std::to_string(i)));
  ASSERT_TRUE(ordering.AppendBatch(big, 0).ok());
  ASSERT_TRUE(ordering.AppendBatch({ToBytes("q0"), ToBytes("q1")}, 0).ok());
  ordering.network().RunUntilIdle();
  ASSERT_EQ(ordering.CommittedCount(), 1102u);

  for (size_t r = 0; r < ordering.num_replicas(); ++r) {
    const ledger::LedgerDb& db = ordering.ReplicaLedger(r);
    ASSERT_EQ(db.size(), 1102u) << r;
    std::set<SimTime> stamps;
    for (uint64_t i = 0; i < db.size(); ++i) {
      stamps.insert(db.GetEntry(i)->timestamp);
    }
    EXPECT_EQ(stamps.size(), 1102u) << "stamp collision on replica " << r;
  }
  std::vector<const ledger::LedgerDb*> replicas;
  for (size_t i = 0; i < ordering.num_replicas(); ++i) {
    replicas.push_back(&ordering.ReplicaLedger(i));
  }
  EXPECT_TRUE(IntegrityAuditor::CheckReplicaAgreement(replicas).ok());
}

TEST(PipelinedOrderingTest, SubmitAsyncFlushCommitsEverything) {
  OrderingPipelineConfig pipeline;
  pipeline.max_batch = 8;
  pipeline.max_inflight = 4;
  PbftOrdering ordering(4, net::SimNetConfig{}, "pbft-async-test", pipeline);
  for (int i = 0; i < 30; ++i) {
    auto ticket = ordering.SubmitAsync(ToBytes("a" + std::to_string(i)), i);
    ASSERT_TRUE(ticket.ok());
    EXPECT_EQ(*ticket, static_cast<OrderingService::Ticket>(i));
  }
  ASSERT_TRUE(ordering.Flush().ok());
  EXPECT_EQ(ordering.CommittedCount(), 30u);
  // Ledger order matches submission order: batching must not reorder.
  for (uint64_t i = 0; i < 30; ++i) {
    EXPECT_EQ(ToString(ordering.Ledger().GetEntry(i)->payload),
              "a" + std::to_string(i));
  }
  // Flush with nothing pending is a no-op.
  EXPECT_TRUE(ordering.Flush().ok());
}

TEST(PipelinedOrderingTest, AdaptiveDelayClosesPartialBatch) {
  OrderingPipelineConfig pipeline;
  pipeline.max_batch = 64;  // Never filled by this test.
  pipeline.max_delay = 2 * kMillisecond;
  PbftOrdering ordering(4, net::SimNetConfig{}, "pbft-delay-test", pipeline);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ordering.SubmitAsync(ToBytes("d" + std::to_string(i)), i).ok());
  }
  // No Flush: the max_delay timer alone must seal and commit the batch.
  ordering.network().RunUntilIdle();
  EXPECT_EQ(ordering.CommittedCount(), 3u);
}


TEST(PipelinedOrderingTest, SinglePayloadBatchesSealPerEnqueue) {
  // max_batch = 1 degenerates the batcher to one envelope per payload:
  // every enqueue seals immediately, so no close timer and no Flush are
  // needed for commitment, and submission order must survive the window.
  OrderingPipelineConfig pipeline;
  pipeline.max_batch = 1;
  pipeline.max_inflight = 2;
  PbftOrdering ordering(4, net::SimNetConfig{}, "pbft-batch1-test", pipeline);
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(ordering.SubmitAsync(ToBytes("s" + std::to_string(i)), i).ok());
  }
  ordering.network().RunUntilIdle();
  EXPECT_EQ(ordering.CommittedCount(), 9u);
  for (uint64_t i = 0; i < 9; ++i) {
    EXPECT_EQ(ToString(ordering.Ledger().GetEntry(i)->payload),
              "s" + std::to_string(i));
  }
}

TEST(PipelinedOrderingTest, ZeroDelayDisablesTimerButFlushStillDrains) {
  // max_delay = 0 arms no close timer: a partial batch stays open
  // indefinitely (draining the network commits nothing), and only Flush
  // seals and commits it. Guards the `max_delay > 0` condition around the
  // timer arm — a mutant arming a zero-delay timer would commit early.
  OrderingPipelineConfig pipeline;
  pipeline.max_batch = 64;
  pipeline.max_delay = 0;
  PbftOrdering ordering(4, net::SimNetConfig{}, "pbft-zerodelay-test",
                        pipeline);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ordering.SubmitAsync(ToBytes("z" + std::to_string(i)), i).ok());
  }
  ordering.network().RunUntilIdle();
  EXPECT_EQ(ordering.CommittedCount(), 0u) << "open batch sealed early";
  ASSERT_TRUE(ordering.Flush().ok());
  EXPECT_EQ(ordering.CommittedCount(), 5u);
}

TEST(PipelinedOrderingTest, FlushRecoversEnvelopesLostToLeaderCrash) {
  // Envelopes accepted by the leader but lost when it crash-stops must be
  // recovered by Flush's periodic re-submission, and the batch-id dedup
  // must keep the recovered payloads single-copy in every ledger.
  OrderingPipelineConfig pipeline;
  pipeline.max_batch = 4;
  pipeline.max_inflight = 2;
  RaftOrdering ordering(3, net::SimNetConfig{}, pipeline);
  ASSERT_TRUE(ordering.Append(ToBytes("warmup"), 0).ok());  // Elects a leader.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(ordering.SubmitAsync(ToBytes("c" + std::to_string(i)), i).ok());
  }
  auto leader = ordering.cluster().Leader();
  ASSERT_TRUE(leader.ok());
  (*leader)->Crash();  // In-flight envelopes on the wire die with it.
  (*leader)->Restart();
  ASSERT_TRUE(ordering.Flush().ok());
  EXPECT_EQ(ordering.CommittedCount(), 13u);
  EXPECT_EQ(ordering.Ledger().size(), 13u) << "crash recovery duplicated";
}

TEST(PipelinedOrderingTest, RaftPipelineCommitsAndReplicasAgree) {
  OrderingPipelineConfig pipeline;
  pipeline.max_batch = 4;
  pipeline.max_inflight = 8;
  RaftOrdering ordering(3, net::SimNetConfig{}, pipeline);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(ordering.SubmitAsync(ToBytes("r" + std::to_string(i)), i).ok());
  }
  ASSERT_TRUE(ordering.Flush().ok());
  EXPECT_EQ(ordering.CommittedCount(), 25u);
  // Followers catch up on subsequent heartbeats; Raft timers re-arm forever,
  // so step a bounded number of events rather than draining to idle.
  auto all_caught_up = [&] {
    for (size_t i = 0; i < 3; ++i) {
      if (ordering.ReplicaLedger(i).size() < 25) return false;
    }
    return true;
  };
  for (int i = 0; i < 20000 && !all_caught_up() && ordering.network().Step();
       ++i) {
  }
  std::vector<const ledger::LedgerDb*> replicas;
  for (size_t i = 0; i < 3; ++i) replicas.push_back(&ordering.ReplicaLedger(i));
  EXPECT_TRUE(IntegrityAuditor::CheckReplicaAgreement(replicas).ok());
}

TEST(PipelinedOrderingTest, RaftAppendBatchCommitsInOrder) {
  RaftOrdering ordering(3, net::SimNetConfig{});
  ASSERT_TRUE(
      ordering.AppendBatch({ToBytes("x"), ToBytes("y"), ToBytes("z")}, 5).ok());
  EXPECT_EQ(ordering.CommittedCount(), 3u);
  EXPECT_EQ(ToString(ordering.Ledger().GetEntry(0)->payload), "x");
  EXPECT_EQ(ToString(ordering.Ledger().GetEntry(2)->payload), "z");
  EXPECT_FALSE(ordering.AppendBatch({}, 0).ok());
}

TEST(PipelinedOrderingTest, BlockingAppendIsStopAndWait) {
  // Append through a deep pipeline config still commits before returning —
  // the blocking API keeps its semantics for the seven engines.
  OrderingPipelineConfig pipeline;
  pipeline.max_batch = 64;
  pipeline.max_inflight = 8;
  PbftOrdering ordering(4, net::SimNetConfig{}, "pbft-blocking-test", pipeline);
  ASSERT_TRUE(ordering.Append(ToBytes("first"), 1).ok());
  EXPECT_EQ(ordering.CommittedCount(), 1u);
  ASSERT_TRUE(ordering.Append(ToBytes("second"), 2).ok());
  EXPECT_EQ(ordering.CommittedCount(), 2u);
}

TEST(PipelinedOrderingTest, ShardedAsyncRoutesAndFlushes) {
  OrderingPipelineConfig pipeline;
  pipeline.max_batch = 4;
  pipeline.max_inflight = 2;
  ShardedPbftOrdering ordering(3, 4, net::SimNetConfig{}, pipeline);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ordering
                    .SubmitRoutedAsync("key" + std::to_string(i),
                                       ToBytes("v" + std::to_string(i)), i)
                    .ok());
  }
  ASSERT_TRUE(ordering.Flush().ok());
  EXPECT_EQ(ordering.CommittedCount(), 20u);
}

// ------------------------------------------------ String escape round trip

TEST(StringEscapeTest, QuotesAndBackslashesRoundTrip) {
  const std::string nasty_cases[] = {
      "with \"double\" quotes", "with 'single' quotes",
      "back\\slash",            "tab\tand\nnewline",
      "trailing backslash\\",
  };
  for (const std::string& s : nasty_cases) {
    storage::Value v = storage::Value::String(s);
    // The rendered literal must parse back to an equal literal expression.
    auto expr = constraint::ParseConstraint(v.ToString() + " = " + v.ToString());
    ASSERT_TRUE(expr.ok()) << v.ToString();
    constraint::EvalContext ctx;
    auto result = constraint::EvaluateBool(**expr, ctx);
    ASSERT_TRUE(result.ok()) << v.ToString();
    EXPECT_TRUE(*result);
    // And the parsed literal equals the original string.
    EXPECT_EQ(*(*expr)->lhs->literal.AsString(), s);
  }
}

}  // namespace
}  // namespace prever::core
