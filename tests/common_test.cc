#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/serial.h"
#include "common/sim_clock.h"
#include "common/status.h"

namespace prever {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ConstraintViolation("hours exceed 40");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(s.ToString(), "ConstraintViolation: hours exceed 40");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusNormalizedToInternalError) {
  Result<int> r = Status::Ok();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Doubled(Result<int> in) {
  PREVER_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(Status::NotFound("x")).status().code(),
            StatusCode::kNotFound);
}

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0x00, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(HexEncode(b), "00deadbeefff");
  auto decoded = HexDecode("00deadbeefff");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, b);
}

TEST(BytesTest, HexDecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").ok());
}

TEST(BytesTest, HexDecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").ok());
}

TEST(BytesTest, HexDecodeAcceptsUppercase) {
  auto decoded = HexDecode("DEADBEEF");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(HexEncode(*decoded), "deadbeef");
}

TEST(BytesTest, ConstantTimeEqual) {
  EXPECT_TRUE(ConstantTimeEqual({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(ConstantTimeEqual({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(ConstantTimeEqual({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

TEST(BytesTest, StringRoundTrip) {
  EXPECT_EQ(ToString(ToBytes("hello")), "hello");
  EXPECT_TRUE(ToBytes("").empty());
}

TEST(SerialTest, RoundTripAllTypes) {
  BinaryWriter w;
  w.WriteU8(0xab);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefULL);
  w.WriteI64(-42);
  w.WriteBool(true);
  w.WriteBytes({9, 8, 7});
  w.WriteString("prever");

  BinaryReader r(w.bytes());
  EXPECT_EQ(*r.ReadU8(), 0xab);
  EXPECT_EQ(*r.ReadU16(), 0x1234);
  EXPECT_EQ(*r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*r.ReadI64(), -42);
  EXPECT_EQ(*r.ReadBool(), true);
  EXPECT_EQ(*r.ReadBytes(), (Bytes{9, 8, 7}));
  EXPECT_EQ(*r.ReadString(), "prever");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerialTest, TruncatedBufferIsCorruption) {
  BinaryWriter w;
  w.WriteU32(7);
  Bytes data = w.bytes();
  data.pop_back();
  BinaryReader r(data);
  EXPECT_EQ(r.ReadU32().status().code(), StatusCode::kCorruption);
}

TEST(SerialTest, BytesLengthPrefixValidated) {
  BinaryWriter w;
  w.WriteU32(1000);  // Claims 1000 bytes follow; none do.
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.ReadBytes().status().code(), StatusCode::kCorruption);
}

TEST(SerialTest, InvalidBoolRejected) {
  Bytes data = {2};
  BinaryReader r(data);
  EXPECT_EQ(r.ReadBool().status().code(), StatusCode::kCorruption);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBytesLength) {
  Rng rng(13);
  EXPECT_EQ(rng.NextBytes(0).size(), 0u);
  EXPECT_EQ(rng.NextBytes(7).size(), 7u);
  EXPECT_EQ(rng.NextBytes(16).size(), 16u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(ZipfianTest, StaysInRange) {
  Rng rng(21);
  ZipfianGenerator zipf(100);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.Next(rng), 100u);
}

TEST(ZipfianTest, SkewsTowardHead) {
  Rng rng(23);
  ZipfianGenerator zipf(1000, 0.99);
  int head = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next(rng) < 10) ++head;
  }
  // With theta=0.99 the top-1% of items should receive far more than 1% of
  // draws (YCSB-style hot set).
  EXPECT_GT(head, kDraws / 10);
}

TEST(SimClockTest, AdvanceMonotonic) {
  SimClock clock;
  EXPECT_EQ(clock.Now(), 0u);
  clock.Advance(5);
  EXPECT_EQ(clock.Now(), 5u);
  clock.AdvanceTo(3);  // Backwards: ignored.
  EXPECT_EQ(clock.Now(), 5u);
  clock.AdvanceTo(10);
  EXPECT_EQ(clock.Now(), 10u);
}

TEST(SimClockTest, TimeUnitConstants) {
  EXPECT_EQ(kSecond, 1000000u);
  EXPECT_EQ(kWeek, 7ull * 24 * 60 * 60 * 1000000);
}

}  // namespace
}  // namespace prever
