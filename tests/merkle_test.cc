#include "crypto/merkle.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace prever::crypto {
namespace {

Bytes Leaf(int i) { return ToBytes("entry-" + std::to_string(i)); }

MerkleTree BuildTree(int n) {
  MerkleTree tree;
  for (int i = 0; i < n; ++i) tree.Append(Leaf(i));
  return tree;
}

TEST(MerkleTest, EmptyTreeRoot) {
  MerkleTree tree;
  EXPECT_EQ(tree.Root(), MerkleTree::EmptyRoot());
  EXPECT_EQ(HexEncode(tree.Root()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(MerkleTest, SingleLeafRootIsLeafHash) {
  MerkleTree tree;
  tree.Append(Leaf(0));
  EXPECT_EQ(tree.Root(), MerkleTree::HashLeaf(Leaf(0)));
}

TEST(MerkleTest, RootChangesOnAppend) {
  MerkleTree tree;
  Bytes prev = tree.Root();
  for (int i = 0; i < 20; ++i) {
    tree.Append(Leaf(i));
    Bytes cur = tree.Root();
    EXPECT_NE(cur, prev);
    prev = cur;
  }
}

TEST(MerkleTest, RootAtMatchesIncrementalRoots) {
  MerkleTree tree;
  std::vector<Bytes> roots;
  for (int i = 0; i < 17; ++i) {
    tree.Append(Leaf(i));
    roots.push_back(tree.Root());
  }
  for (int i = 0; i < 17; ++i) {
    auto historic = tree.RootAt(i + 1);
    ASSERT_TRUE(historic.ok());
    EXPECT_EQ(*historic, roots[i]) << i;
  }
}

// AppendBatch is a pure optimization: any split of a leaf sequence into
// batches must yield the same tree as one Append per leaf — same roots
// (current and historic) and same inclusion proofs.
TEST(MerkleTest, AppendBatchMatchesSerialAppends) {
  for (size_t total : {1u, 2u, 3u, 7u, 16u, 33u, 100u}) {
    std::vector<Bytes> leaves;
    for (size_t i = 0; i < total; ++i) leaves.push_back(Leaf(static_cast<int>(i)));

    MerkleTree serial;
    for (const Bytes& l : leaves) serial.Append(l);
    MerkleTree batched;
    batched.AppendBatch(leaves);

    ASSERT_EQ(batched.LeafCount(), serial.LeafCount()) << total;
    EXPECT_EQ(batched.Root(), serial.Root()) << total;
    for (size_t n = 1; n <= total; ++n) {
      EXPECT_EQ(*batched.RootAt(n), *serial.RootAt(n)) << total << "@" << n;
    }
    for (size_t i = 0; i < total; ++i) {
      auto a = batched.InclusionProof(i, total);
      auto b = serial.InclusionProof(i, total);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(*a, *b) << total << "#" << i;
    }
  }
}

TEST(MerkleTest, AppendBatchComposesWithSingleAppends) {
  MerkleTree serial;
  MerkleTree mixed;
  int next = 0;
  auto feed_serial = [&](int n) {
    for (int i = 0; i < n; ++i) serial.Append(Leaf(next + i));
  };
  // Odd-sized batches landing on odd tree sizes stress the level-fold logic.
  for (int n : {3, 1, 5, 2, 8, 1, 13}) {
    feed_serial(n);
    std::vector<Bytes> batch;
    for (int i = 0; i < n; ++i) batch.push_back(Leaf(next + i));
    if (n == 1) {
      mixed.Append(batch[0]);
    } else {
      mixed.AppendBatch(batch);
    }
    next += n;
    ASSERT_EQ(mixed.Root(), serial.Root()) << "after +" << n;
  }
}

TEST(MerkleTest, AppendBatchEmptyIsNoOp) {
  MerkleTree tree = BuildTree(5);
  Bytes before = tree.Root();
  tree.AppendBatch({});
  EXPECT_EQ(tree.LeafCount(), 5u);
  EXPECT_EQ(tree.Root(), before);
}

TEST(MerkleTest, RootAtRejectsOversize) {
  MerkleTree tree = BuildTree(3);
  EXPECT_FALSE(tree.RootAt(4).ok());
}

TEST(MerkleTest, InclusionProofsVerifyForAllLeavesAndSizes) {
  // Exhaustive over tree sizes 1..33 and every leaf — covers both balanced
  // and skewed shapes.
  for (int n : {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33}) {
    MerkleTree tree = BuildTree(n);
    Bytes root = tree.Root();
    for (int i = 0; i < n; ++i) {
      auto proof = tree.InclusionProof(i, n);
      ASSERT_TRUE(proof.ok()) << n << "/" << i;
      EXPECT_TRUE(MerkleTree::VerifyInclusion(Leaf(i), i, n, *proof, root))
          << n << "/" << i;
    }
  }
}

TEST(MerkleTest, InclusionProofForHistoricSize) {
  MerkleTree tree = BuildTree(20);
  Bytes root_at_12 = *tree.RootAt(12);
  auto proof = tree.InclusionProof(5, 12);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(MerkleTree::VerifyInclusion(Leaf(5), 5, 12, *proof, root_at_12));
}

TEST(MerkleTest, InclusionProofRejectsWrongLeaf) {
  MerkleTree tree = BuildTree(10);
  auto proof = tree.InclusionProof(3, 10);
  ASSERT_TRUE(proof.ok());
  EXPECT_FALSE(
      MerkleTree::VerifyInclusion(Leaf(4), 3, 10, *proof, tree.Root()));
}

TEST(MerkleTest, InclusionProofRejectsWrongIndex) {
  MerkleTree tree = BuildTree(10);
  auto proof = tree.InclusionProof(3, 10);
  ASSERT_TRUE(proof.ok());
  EXPECT_FALSE(
      MerkleTree::VerifyInclusion(Leaf(3), 4, 10, *proof, tree.Root()));
}

TEST(MerkleTest, InclusionProofRejectsTamperedPath) {
  MerkleTree tree = BuildTree(10);
  auto proof = tree.InclusionProof(3, 10);
  ASSERT_TRUE(proof.ok());
  (*proof)[0][0] ^= 1;
  EXPECT_FALSE(
      MerkleTree::VerifyInclusion(Leaf(3), 3, 10, *proof, tree.Root()));
}

TEST(MerkleTest, InclusionProofRejectsTruncatedPath) {
  MerkleTree tree = BuildTree(10);
  auto proof = tree.InclusionProof(3, 10);
  ASSERT_TRUE(proof.ok());
  proof->pop_back();
  EXPECT_FALSE(
      MerkleTree::VerifyInclusion(Leaf(3), 3, 10, *proof, tree.Root()));
}

TEST(MerkleTest, InclusionProofOutOfRangeErrors) {
  MerkleTree tree = BuildTree(5);
  EXPECT_FALSE(tree.InclusionProof(5, 5).ok());
  EXPECT_FALSE(tree.InclusionProof(0, 6).ok());
}

TEST(MerkleTest, ConsistencyProofsVerifyAcrossSizes) {
  MerkleTree tree = BuildTree(33);
  for (size_t old_size : {0u, 1u, 2u, 3u, 4u, 7u, 8u, 9u, 16u, 20u, 32u, 33u}) {
    for (size_t new_size : {1u, 2u, 4u, 8u, 9u, 16u, 17u, 32u, 33u}) {
      if (old_size > new_size) continue;
      auto proof = tree.ConsistencyProof(old_size, new_size);
      ASSERT_TRUE(proof.ok()) << old_size << "->" << new_size;
      Bytes old_root = *tree.RootAt(old_size);
      Bytes new_root = *tree.RootAt(new_size);
      EXPECT_TRUE(MerkleTree::VerifyConsistency(old_size, new_size, old_root,
                                                new_root, *proof))
          << old_size << "->" << new_size;
    }
  }
}

TEST(MerkleTest, ConsistencyRejectsForkedHistory) {
  // Two ledgers agree on the first 8 entries then diverge: the forked
  // ledger's newer root must fail consistency against the honest old root.
  MerkleTree honest = BuildTree(8);
  MerkleTree forked = BuildTree(8);
  for (int i = 8; i < 12; ++i) honest.Append(Leaf(i));
  for (int i = 8; i < 12; ++i) forked.Append(ToBytes("forged-" + std::to_string(i)));
  Bytes old_root = *honest.RootAt(8);
  auto proof = forked.ConsistencyProof(8, 12);
  ASSERT_TRUE(proof.ok());
  // Proof from the forked tree proves forked root, not honest continuation…
  EXPECT_TRUE(MerkleTree::VerifyConsistency(8, 12, old_root, forked.Root(),
                                            *proof));
  // …but a *rewritten history* (different first 8 entries) cannot produce a
  // proof matching the honest old root:
  MerkleTree rewritten;
  for (int i = 0; i < 12; ++i) rewritten.Append(ToBytes("rewrite-" + std::to_string(i)));
  auto bad_proof = rewritten.ConsistencyProof(8, 12);
  ASSERT_TRUE(bad_proof.ok());
  EXPECT_FALSE(MerkleTree::VerifyConsistency(8, 12, old_root,
                                             rewritten.Root(), *bad_proof));
}

TEST(MerkleTest, ConsistencyRejectsTamperedProof) {
  MerkleTree tree = BuildTree(20);
  auto proof = tree.ConsistencyProof(7, 20);
  ASSERT_TRUE(proof.ok());
  ASSERT_FALSE(proof->empty());
  (*proof)[0][5] ^= 0xff;
  EXPECT_FALSE(MerkleTree::VerifyConsistency(7, 20, *tree.RootAt(7),
                                             tree.Root(), *proof));
}

TEST(MerkleTest, ConsistencySameSizeRequiresEqualRoots) {
  MerkleTree a = BuildTree(6);
  MerkleTree b = BuildTree(7);
  EXPECT_TRUE(MerkleTree::VerifyConsistency(6, 6, a.Root(), a.Root(), {}));
  EXPECT_FALSE(MerkleTree::VerifyConsistency(6, 6, a.Root(), b.Root(), {}));
}

TEST(MerkleTest, ConsistencyProofErrorCases) {
  MerkleTree tree = BuildTree(5);
  EXPECT_FALSE(tree.ConsistencyProof(3, 6).ok());  // Beyond tree.
  EXPECT_FALSE(tree.ConsistencyProof(4, 3).ok());  // old > new.
}

// Property: random mutation of any proof element breaks verification.
class MerkleMutationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MerkleMutationProperty, AnyBitFlipInvalidatesInclusion) {
  prever::Rng rng(GetParam());
  int n = 2 + static_cast<int>(rng.NextBelow(60));
  MerkleTree tree = BuildTree(n);
  int index = static_cast<int>(rng.NextBelow(n));
  auto proof = tree.InclusionProof(index, n);
  ASSERT_TRUE(proof.ok());
  if (proof->empty()) return;
  size_t which = rng.NextBelow(proof->size());
  size_t byte = rng.NextBelow(32);
  uint8_t bit = static_cast<uint8_t>(1u << rng.NextBelow(8));
  (*proof)[which][byte] ^= bit;
  EXPECT_FALSE(MerkleTree::VerifyInclusion(Leaf(index), index, n, *proof,
                                           tree.Root()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MerkleMutationProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace prever::crypto
