#include "crypto/zkp.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "token/token.h"

namespace prever::crypto {
namespace {

class ZkpTest : public ::testing::Test {
 protected:
  const PedersenParams& params_ = PedersenParams::Test256();
  Drbg drbg_{uint64_t{1234}};
};

TEST_F(ZkpTest, OpeningProofVerifies) {
  auto opening = PedersenCommitFresh(params_, BigInt(40), drbg_);
  OpeningProof proof = ProveOpening(params_, opening.commitment, BigInt(40),
                                    opening.randomness, drbg_);
  EXPECT_TRUE(VerifyOpening(params_, opening.commitment, proof));
}

TEST_F(ZkpTest, OpeningProofRejectsWrongCommitment) {
  auto o1 = PedersenCommitFresh(params_, BigInt(40), drbg_);
  auto o2 = PedersenCommitFresh(params_, BigInt(41), drbg_);
  OpeningProof proof =
      ProveOpening(params_, o1.commitment, BigInt(40), o1.randomness, drbg_);
  EXPECT_FALSE(VerifyOpening(params_, o2.commitment, proof));
}

TEST_F(ZkpTest, OpeningProofRejectsTamperedResponse) {
  auto o = PedersenCommitFresh(params_, BigInt(7), drbg_);
  OpeningProof proof =
      ProveOpening(params_, o.commitment, BigInt(7), o.randomness, drbg_);
  proof.z1 = proof.z1.AddMod(BigInt(1), params_.q);
  EXPECT_FALSE(VerifyOpening(params_, o.commitment, proof));
}

TEST_F(ZkpTest, BitProofVerifiesForZeroAndOne) {
  for (int bit : {0, 1}) {
    auto o = PedersenCommitFresh(params_, BigInt(bit), drbg_);
    auto proof = ProveBit(params_, o.commitment, bit, o.randomness, drbg_);
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(VerifyBit(params_, o.commitment, *proof)) << bit;
  }
}

TEST_F(ZkpTest, BitProofRejectsNonBitValue) {
  EXPECT_FALSE(
      ProveBit(params_, PedersenCommitment{BigInt(1)}, 2, BigInt(0), drbg_)
          .ok());
}

TEST_F(ZkpTest, BitProofCannotBeForgedForTwo) {
  // A commitment to 2 with an honest bit proof structure must not verify.
  auto o = PedersenCommitFresh(params_, BigInt(2), drbg_);
  // Try to prove it is a bit by lying (claim bit=0 with the real randomness).
  auto proof = ProveBit(params_, o.commitment, 0, o.randomness, drbg_);
  ASSERT_TRUE(proof.ok());
  EXPECT_FALSE(VerifyBit(params_, o.commitment, *proof));
}

TEST_F(ZkpTest, BitProofRejectsChallengeSplitTampering) {
  auto o = PedersenCommitFresh(params_, BigInt(1), drbg_);
  auto proof = ProveBit(params_, o.commitment, 1, o.randomness, drbg_);
  ASSERT_TRUE(proof.ok());
  proof->e0 = proof->e0.AddMod(BigInt(1), params_.q);
  EXPECT_FALSE(VerifyBit(params_, o.commitment, *proof));
}

TEST_F(ZkpTest, RangeProofVerifies) {
  // 40 fits in 6 bits.
  auto o = PedersenCommitFresh(params_, BigInt(40), drbg_);
  auto proof =
      ProveRange(params_, o.commitment, BigInt(40), o.randomness, 6, drbg_);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(VerifyRange(params_, o.commitment, *proof, 6));
}

TEST_F(ZkpTest, RangeProofBoundaries) {
  for (int64_t m : {int64_t{0}, int64_t{1}, int64_t{63}}) {
    auto o = PedersenCommitFresh(params_, BigInt(m), drbg_);
    auto proof =
        ProveRange(params_, o.commitment, BigInt(m), o.randomness, 6, drbg_);
    ASSERT_TRUE(proof.ok()) << m;
    EXPECT_TRUE(VerifyRange(params_, o.commitment, *proof, 6)) << m;
  }
}

TEST_F(ZkpTest, RangeProofRejectsValueTooLarge) {
  auto o = PedersenCommitFresh(params_, BigInt(64), drbg_);
  EXPECT_FALSE(
      ProveRange(params_, o.commitment, BigInt(64), o.randomness, 6, drbg_)
          .ok());
}

TEST_F(ZkpTest, RangeProofRejectsWrongOpening)  {
  auto o = PedersenCommitFresh(params_, BigInt(10), drbg_);
  EXPECT_FALSE(
      ProveRange(params_, o.commitment, BigInt(11), o.randomness, 6, drbg_)
          .ok());
}

TEST_F(ZkpTest, RangeProofRejectsMismatchedCommitment) {
  auto o1 = PedersenCommitFresh(params_, BigInt(10), drbg_);
  auto o2 = PedersenCommitFresh(params_, BigInt(10), drbg_);
  auto proof =
      ProveRange(params_, o1.commitment, BigInt(10), o1.randomness, 6, drbg_);
  ASSERT_TRUE(proof.ok());
  // Same value, different randomness: weighted product check must fail.
  EXPECT_FALSE(VerifyRange(params_, o2.commitment, *proof, 6));
}

TEST_F(ZkpTest, RangeProofRejectsWrongBitWidth) {
  auto o = PedersenCommitFresh(params_, BigInt(40), drbg_);
  auto proof =
      ProveRange(params_, o.commitment, BigInt(40), o.randomness, 6, drbg_);
  ASSERT_TRUE(proof.ok());
  EXPECT_FALSE(VerifyRange(params_, o.commitment, *proof, 7));
}

TEST_F(ZkpTest, RangeProofRejectsSwappedBitCommitments) {
  auto o = PedersenCommitFresh(params_, BigInt(5), drbg_);  // 101b.
  auto proof =
      ProveRange(params_, o.commitment, BigInt(5), o.randomness, 3, drbg_);
  ASSERT_TRUE(proof.ok());
  std::swap(proof->bit_commitments[0], proof->bit_commitments[1]);
  std::swap(proof->bit_proofs[0], proof->bit_proofs[1]);
  EXPECT_FALSE(VerifyRange(params_, o.commitment, *proof, 3));
}

// The canonical PReVer regulation: committed weekly hours <= 40.
TEST_F(ZkpTest, UpperBoundProofAcceptsCompliantValue) {
  const BigInt kBound(40);
  auto o = PedersenCommitFresh(params_, BigInt(38), drbg_);
  auto proof = ProveUpperBound(params_, o.commitment, BigInt(38),
                               o.randomness, kBound, 8, drbg_);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(VerifyUpperBound(params_, o.commitment, *proof, kBound, 8));
}

TEST_F(ZkpTest, UpperBoundProofExactlyAtBound) {
  const BigInt kBound(40);
  auto o = PedersenCommitFresh(params_, BigInt(40), drbg_);
  auto proof = ProveUpperBound(params_, o.commitment, BigInt(40),
                               o.randomness, kBound, 8, drbg_);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(VerifyUpperBound(params_, o.commitment, *proof, kBound, 8));
}

TEST_F(ZkpTest, UpperBoundProofCannotBeProducedWhenViolating) {
  const BigInt kBound(40);
  auto o = PedersenCommitFresh(params_, BigInt(41), drbg_);
  EXPECT_FALSE(ProveUpperBound(params_, o.commitment, BigInt(41),
                               o.randomness, kBound, 8, drbg_)
                   .ok());
}

TEST_F(ZkpTest, UpperBoundProofDoesNotTransferToOtherCommitment) {
  const BigInt kBound(40);
  auto o1 = PedersenCommitFresh(params_, BigInt(10), drbg_);
  auto o2 = PedersenCommitFresh(params_, BigInt(50), drbg_);
  auto proof = ProveUpperBound(params_, o1.commitment, BigInt(10),
                               o1.randomness, kBound, 8, drbg_);
  ASSERT_TRUE(proof.ok());
  EXPECT_FALSE(VerifyUpperBound(params_, o2.commitment, *proof, kBound, 8));
}

// Property sweep over random values and widths.

// ------------------------------------------------- negative-path transcripts

// Walks EVERY scalar of an honest range-proof transcript and perturbs one
// field at a time: any single-field tamper must be rejected. This is the
// adversarial complement of the round-trip property above — a verifier
// that ignores one equation passes round-trips but fails here.
TEST_F(ZkpTest, RangeProofRejectsEveryScalarTamper) {
  constexpr size_t kBits = 4;
  auto o = PedersenCommitFresh(params_, BigInt(9), drbg_);
  auto honest =
      ProveRange(params_, o.commitment, BigInt(9), o.randomness, kBits, drbg_);
  ASSERT_TRUE(honest.ok());
  ASSERT_TRUE(VerifyRange(params_, o.commitment, *honest, kBits));

  for (size_t i = 0; i < honest->bit_proofs.size(); ++i) {
    using FieldRef = BigInt BitProof::*;
    struct Field {
      const char* name;
      FieldRef ref;
      bool mod_p;  // Nonce commitments live mod p, responses mod q.
    };
    const Field kFields[] = {
        {"t0", &BitProof::t0, true},  {"t1", &BitProof::t1, true},
        {"e0", &BitProof::e0, false}, {"e1", &BitProof::e1, false},
        {"z0", &BitProof::z0, false}, {"z1", &BitProof::z1, false},
    };
    for (const Field& f : kFields) {
      RangeProof tampered = *honest;
      BigInt& v = tampered.bit_proofs[i].*f.ref;
      v = f.mod_p ? v.MulMod(params_.g, params_.p)
                  : v.AddMod(BigInt(1), params_.q);
      EXPECT_FALSE(VerifyRange(params_, o.commitment, tampered, kBits))
          << "bit " << i << " field " << f.name;
    }
    RangeProof tampered = *honest;
    tampered.bit_commitments[i].c =
        tampered.bit_commitments[i].c.MulMod(params_.g, params_.p);
    EXPECT_FALSE(VerifyRange(params_, o.commitment, tampered, kBits))
        << "bit commitment " << i;
  }
}

// A token whose FDH-RSA signature (or serial) was perturbed after issuance
// must be refused by the manager-side verifier with IntegrityViolation —
// the spent-serial set must stay untouched so the honest original still
// spends afterwards.
TEST_F(ZkpTest, TamperedRsaTokenIsRejected) {
  token::TokenAuthority authority(512, 4, 1000, 555);
  token::TokenWallet wallet(authority.public_key(), 556);
  auto got = wallet.Withdraw(authority, "alice", 1, 10);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(wallet.NumTokens(), 1u);
  auto tok = wallet.Take();
  ASSERT_TRUE(tok.ok());

  token::TokenVerifier verifier(authority.public_key(), nullptr);
  token::Token bad_sig = *tok;
  bad_sig.signature.front() ^= 0x01;
  EXPECT_EQ(verifier.Spend(bad_sig, 10).code(),
            StatusCode::kIntegrityViolation);
  token::Token bad_serial = *tok;
  bad_serial.serial.push_back(0x00);
  EXPECT_EQ(verifier.Spend(bad_serial, 10).code(),
            StatusCode::kIntegrityViolation);
  EXPECT_EQ(verifier.num_spent(), 0u);
  EXPECT_TRUE(verifier.Spend(*tok, 10).ok());
}

class RangeProofProperty : public ::testing::TestWithParam<int> {};

TEST_P(RangeProofProperty, RandomValuesRoundTrip) {
  const auto& params = PedersenParams::Test256();
  Drbg drbg(static_cast<uint64_t>(GetParam()) * 1000 + 7);
  prever::Rng rng(static_cast<uint64_t>(GetParam()));
  size_t bits = 4 + rng.NextBelow(6);  // 4..9 bits.
  int64_t m = static_cast<int64_t>(rng.NextBelow(1ULL << bits));
  auto o = PedersenCommitFresh(params, BigInt(m), drbg);
  auto proof = ProveRange(params, o.commitment, BigInt(m), o.randomness, bits,
                          drbg);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(VerifyRange(params, o.commitment, *proof, bits));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeProofProperty,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace prever::crypto
