#include <gtest/gtest.h>

#include "mpc/compare.h"
#include "mpc/secure_agg.h"

namespace prever::mpc {
namespace {

TEST(SecureAggTest, SumMatchesPlainSum) {
  Rng rng(1);
  std::vector<uint64_t> inputs = {10, 20, 30, 40};
  auto sum = SecureAggregation::Sum(inputs, rng);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 100u);
}

TEST(SecureAggTest, SingleParty) {
  Rng rng(2);
  auto sum = SecureAggregation::Sum({42}, rng);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 42u);
}

TEST(SecureAggTest, EmptyFails) {
  Rng rng(3);
  EXPECT_FALSE(SecureAggregation::Sum({}, rng).ok());
}

TEST(SecureAggTest, WrapsModulo64) {
  Rng rng(4);
  auto sum = SecureAggregation::Sum({UINT64_MAX, 2}, rng);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 1u);
}

TEST(SecureAggTest, TranscriptCountsTraffic) {
  Rng rng(5);
  MpcTranscript t;
  ASSERT_TRUE(SecureAggregation::Sum({1, 2, 3}, rng, &t).ok());
  EXPECT_EQ(t.rounds, 2u);
  EXPECT_EQ(t.messages, 2u * 3 * 2);
}

TEST(SecureCompareTest, BasicDecisions) {
  Rng rng(7);
  // 10 + 20 + 5 = 35.
  auto le40 = SecureComparison::SumLessEqual({10, 20, 5}, 40, 16, rng);
  ASSERT_TRUE(le40.ok());
  EXPECT_TRUE(*le40);
  auto le34 = SecureComparison::SumLessEqual({10, 20, 5}, 34, 16, rng);
  ASSERT_TRUE(le34.ok());
  EXPECT_FALSE(*le34);
  auto le35 = SecureComparison::SumLessEqual({10, 20, 5}, 35, 16, rng);
  ASSERT_TRUE(le35.ok());
  EXPECT_TRUE(*le35);  // Inclusive bound.
}

TEST(SecureCompareTest, FlsaScenario) {
  // Worker's hours across three platforms this week: 18 + 15 + 6 = 39.
  Rng rng(11);
  EXPECT_TRUE(*SecureComparison::SumLessEqual({18, 15, 6}, 40, 16, rng));
  // One more 2-hour task would exceed the cap: 41 > 40.
  EXPECT_FALSE(*SecureComparison::SumLessEqual({18, 15, 6 + 2}, 40, 16, rng));
}

TEST(SecureCompareTest, ZeroAndBoundaryValues) {
  Rng rng(13);
  EXPECT_TRUE(*SecureComparison::SumLessEqual({0, 0, 0}, 0, 8, rng));
  EXPECT_TRUE(*SecureComparison::SumLessEqual({0}, 255, 8, rng));
  EXPECT_FALSE(*SecureComparison::SumLessEqual({1}, 0, 8, rng));
  EXPECT_TRUE(*SecureComparison::SumLessEqual({255}, 255, 8, rng));
}

TEST(SecureCompareTest, InvalidParameters) {
  Rng rng(17);
  EXPECT_FALSE(SecureComparison::SumLessEqual({}, 10, 16, rng).ok());
  EXPECT_FALSE(SecureComparison::SumLessEqual({1}, 10, 0, rng).ok());
  EXPECT_FALSE(SecureComparison::SumLessEqual({1}, 10, 63, rng).ok());
  // Sum exceeds the 2^k domain.
  EXPECT_FALSE(SecureComparison::SumLessEqual({200, 200}, 10, 8, rng).ok());
}

TEST(SecureCompareTest, BoundAboveDomainIsTriviallyTrue) {
  Rng rng(19);
  auto r = SecureComparison::SumLessEqual({5}, 1ULL << 10, 8, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(SecureCompareTest, TranscriptShowsConstantRoundsPerBit) {
  Rng rng(23);
  MpcTranscript t8, t16;
  ASSERT_TRUE(
      SecureComparison::SumLessEqual({1, 2}, 10, 8, rng, &t8).ok());
  ASSERT_TRUE(
      SecureComparison::SumLessEqual({1, 2}, 10, 16, rng, &t16).ok());
  // 2 AND gates per bit, 2 openings per AND, plus the c-opening and the
  // final-bit opening: communication scales linearly with bit width.
  EXPECT_GT(t16.rounds, t8.rounds);
  EXPECT_LE(t16.rounds, 2 + 2 * 2 * 16 + 2);
}

// Property: decision equals the plaintext comparison over random instances
// with varying party counts and bit widths.
class SecureCompareProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SecureCompareProperty, MatchesPlaintextDecision) {
  Rng rng(GetParam());
  Rng dealer(GetParam() + 1000);
  for (int iter = 0; iter < 25; ++iter) {
    size_t parties = 1 + rng.NextBelow(6);
    size_t k = 4 + rng.NextBelow(28);
    uint64_t domain = 1ULL << k;
    std::vector<uint64_t> inputs(parties);
    uint64_t sum = 0;
    for (auto& x : inputs) {
      x = rng.NextBelow(domain / parties);
      sum += x;
    }
    uint64_t bound = rng.NextBelow(domain);
    auto got = SecureComparison::SumLessEqual(inputs, bound, k, dealer);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, sum <= bound)
        << "parties=" << parties << " k=" << k << " sum=" << sum
        << " bound=" << bound;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SecureCompareProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace prever::mpc
