// Tests for the causal tracing subsystem (src/obs/tracing.h): flight
// recorder semantics (wrap-around, concurrent writers vs snapshot readers),
// deterministic sampling, context propagation, Chrome trace-event export
// round-trip, and the zero-overhead contract from src/obs/trace.h.
//
// Suite names start with ObsTracing so the TSan job's gtest filter (Obs*)
// picks up the 8-thread stress test.

#include "obs/tracing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "obs/json.h"

namespace prever::obs {
namespace {

TracerConfig EnabledConfig(size_t ring_capacity = 4096,
                           uint64_t sample_period = 1,
                           uint64_t sample_seed = 0) {
  TracerConfig cfg;
  cfg.enabled = true;
  cfg.sample_period = sample_period;
  cfg.sample_seed = sample_seed;
  cfg.ring_capacity = ring_capacity;
  return cfg;
}

/// Every test leaves the process-wide tracer the way benches and the sim
/// harness expect to find it: runtime-disabled.
class ObsTracing : public ::testing::Test {
 protected:
  void TearDown() override {
    Tracer::Get().SetEnabled(false);
    Tracer::SetThreadSimClock(nullptr);
  }
};

#if !defined(PREVER_TRACING_DISABLED)

TEST_F(ObsTracing, DisabledRecordsNothing) {
  Tracer& tracer = Tracer::Get();
  TracerConfig cfg = EnabledConfig();
  cfg.enabled = false;
  tracer.Configure(cfg);
  EXPECT_FALSE(tracer.MintTrace().sampled());
  {
    TraceSpan root(TraceStage::kSubmit, 0, /*root=*/true);
    TraceSpan child(TraceStage::kVerify);
    tracer.Instant(Tracer::CurrentContext(), TraceStage::kBatchSeal);
  }
  EXPECT_EQ(tracer.events_recorded(), 0u);
  EXPECT_EQ(tracer.traces_minted(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST_F(ObsTracing, SpanTreeIsConnectedAndNested) {
  Tracer& tracer = Tracer::Get();
  tracer.Configure(EnabledConfig());
  {
    TraceSpan root(TraceStage::kSubmit, 7, /*root=*/true);
    TraceContext root_ctx = Tracer::CurrentContext();
    ASSERT_TRUE(root_ctx.sampled());
    {
      TraceSpan verify(TraceStage::kVerify);
      EXPECT_EQ(Tracer::CurrentContext().trace_id, root_ctx.trace_id);
      EXPECT_NE(Tracer::CurrentContext().span_id, root_ctx.span_id);
    }
    // Leaving the child restores the parent as current.
    EXPECT_EQ(Tracer::CurrentContext().span_id, root_ctx.span_id);
  }
  // Outside the root no context remains installed.
  EXPECT_FALSE(Tracer::CurrentContext().sampled());

  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);  // 2 begins + 2 ends.
  uint64_t root_span = 0;
  uint64_t child_parent = 0;
  std::set<uint64_t> trace_ids;
  for (const TraceEvent& e : events) {
    trace_ids.insert(e.trace_id);
    if (e.kind == TraceEventKind::kBegin) {
      if (e.stage == TraceStage::kSubmit) {
        root_span = e.span_id;
        EXPECT_EQ(e.parent_span_id, 0u);
        EXPECT_EQ(e.arg, 7u);
      } else {
        child_parent = e.parent_span_id;
      }
    }
  }
  EXPECT_EQ(trace_ids.size(), 1u);       // One connected trace...
  EXPECT_EQ(child_parent, root_span);    // ...with the child under the root.
}

TEST_F(ObsTracing, UnsampledContextStaysSilentEndToEnd) {
  Tracer& tracer = Tracer::Get();
  tracer.Configure(EnabledConfig());
  TraceContext null_ctx;  // An unsampled transaction's context.
  // Child-only API must not resurrect a dropped trace as a fresh root.
  TraceContext child = tracer.BeginChild(TraceStage::kLedgerAppend, null_ctx);
  EXPECT_FALSE(child.sampled());
  tracer.EndSpan(child, TraceStage::kLedgerAppend);
  tracer.Instant(null_ctx, TraceStage::kBatchJoin);
  EXPECT_EQ(tracer.events_recorded(), 0u);
  // Non-root TraceSpan with no current context is silent too.
  {
    TraceSpan orphan(TraceStage::kVerify);
  }
  EXPECT_EQ(tracer.events_recorded(), 0u);
}

TEST_F(ObsTracing, RingWrapAroundKeepsMostRecentEvents) {
  Tracer& tracer = Tracer::Get();
  tracer.Configure(EnabledConfig(/*ring_capacity=*/16));
  TraceContext ctx = tracer.MintTrace();
  ASSERT_TRUE(ctx.sampled());
  constexpr uint64_t kTotal = 100;
  for (uint64_t i = 0; i < kTotal; ++i) {
    tracer.Instant(ctx, TraceStage::kNetSend, /*arg=*/i);
  }
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 16u);  // Capacity, not total.
  // The surviving window is exactly the newest records, oldest first.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, kTotal - 16 + i);
  }
  EXPECT_EQ(tracer.events_recorded(), kTotal);
}

TEST_F(ObsTracing, SamplingIsDeterministicUnderFixedSeed) {
  Tracer& tracer = Tracer::Get();
  auto sampled_pattern = [&] {
    tracer.Configure(EnabledConfig(4096, /*sample_period=*/4,
                                   /*sample_seed=*/1234));
    std::vector<bool> pattern;
    for (int i = 0; i < 256; ++i) {
      pattern.push_back(tracer.MintTrace().sampled());
    }
    return pattern;
  };
  std::vector<bool> first = sampled_pattern();
  std::vector<bool> second = sampled_pattern();
  EXPECT_EQ(first, second);  // Same seed + same mint order -> same keeps.
  size_t kept = 0;
  for (bool b : first) kept += b ? 1 : 0;
  EXPECT_GT(kept, 0u);       // Period 4 keeps roughly a quarter...
  EXPECT_LT(kept, first.size());  // ...and drops the rest.
  EXPECT_EQ(tracer.traces_minted(), 256u);
  EXPECT_EQ(tracer.traces_sampled(), kept);

  // A different seed picks a different subset (overwhelmingly likely for
  // 256 draws; both runs are deterministic either way).
  tracer.Configure(EnabledConfig(4096, 4, /*sample_seed=*/99));
  std::vector<bool> reseeded;
  for (int i = 0; i < 256; ++i) {
    reseeded.push_back(tracer.MintTrace().sampled());
  }
  EXPECT_NE(first, reseeded);
}

TEST_F(ObsTracing, EightThreadWritersWithConcurrentSnapshots) {
  Tracer& tracer = Tracer::Get();
  tracer.Configure(EnabledConfig(/*ring_capacity=*/256));
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 2000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan root(TraceStage::kSubmit, static_cast<uint64_t>(t),
                       /*root=*/true);
        TraceSpan child(TraceStage::kVerify);
        tracer.Instant(Tracer::CurrentContext(), TraceStage::kNetSend,
                       static_cast<uint64_t>(i));
      }
    });
  }
  // Concurrent readers: the ring is single-writer/any-reader by contract.
  for (int i = 0; i < 50; ++i) {
    std::vector<TraceEvent> snap = tracer.Snapshot();
    EXPECT_LE(snap.size(), static_cast<size_t>(kThreads + 1) * 256);
    (void)tracer.TailString(8);
  }
  for (std::thread& w : writers) w.join();
  // 5 events per iteration (2 begins, 2 ends, 1 instant) across all lanes.
  EXPECT_EQ(tracer.events_recorded(),
            static_cast<uint64_t>(kThreads) * kSpansPerThread * 5);
  EXPECT_EQ(tracer.traces_minted(),
            static_cast<uint64_t>(kThreads) * kSpansPerThread);
}

TEST_F(ObsTracing, ChromeJsonRoundTrip) {
  Tracer& tracer = Tracer::Get();
  tracer.Configure(EnabledConfig());
  {
    TraceSpan root(TraceStage::kSubmit, 0, /*root=*/true);
    { TraceSpan verify(TraceStage::kVerify); }
    tracer.Instant(Tracer::CurrentContext(), TraceStage::kBatchSeal, 3);
  }
  // One dangling begin: must be dropped from X events and counted.
  TraceContext dangling = tracer.BeginSpan(TraceStage::kConsensus);
  ASSERT_TRUE(dangling.sampled());

  std::string text = tracer.ChromeTraceDoc().Dump();
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& doc = *parsed;

  const Json* meta = doc.Find("prever");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->Find("schema")->AsString(), "prever.trace.v1");
  EXPECT_EQ(meta->Find("spans_exported")->AsUint64(), 2u);
  EXPECT_EQ(meta->Find("unmatched_begins_dropped")->AsUint64(), 1u);
  EXPECT_EQ(meta->Find("orphan_ends_dropped")->AsUint64(), 0u);

  const Json* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  size_t x_events = 0, instants = 0;
  uint64_t root_span = 0, child_parent = 0;
  for (size_t i = 0; i < events->size(); ++i) {
    const Json& ev = events->at(i);
    const std::string& ph = ev.Find("ph")->AsString();
    const Json* args = ev.Find("args");
    ASSERT_NE(args, nullptr);
    if (ph == "X") {
      ++x_events;
      EXPECT_NE(ev.Find("dur"), nullptr);
      EXPECT_NE(args->Find("dur_ns"), nullptr);
      if (ev.Find("name")->AsString() == "submit") {
        root_span = args->Find("span_id")->AsUint64();
      } else {
        child_parent = args->Find("parent_span_id")->AsUint64();
      }
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(ev.Find("name")->AsString(), "batch_seal");
      EXPECT_EQ(args->Find("arg")->AsUint64(), 3u);
    }
  }
  EXPECT_EQ(x_events, 2u);
  EXPECT_EQ(instants, 1u);
  EXPECT_EQ(child_parent, root_span);  // Tree survives the round trip.
}

TEST_F(ObsTracing, TailStringNamesStagesForFailureReports) {
  Tracer& tracer = Tracer::Get();
  tracer.Configure(EnabledConfig());
  {
    TraceSpan root(TraceStage::kSubmit, 0, /*root=*/true);
    tracer.Instant(Tracer::CurrentContext(), TraceStage::kPbftPrepare, 42);
  }
  std::string tail = tracer.TailString(8);
  EXPECT_NE(tail.find("submit"), std::string::npos);
  EXPECT_NE(tail.find("pbft_prepare"), std::string::npos);
  EXPECT_NE(tail.find("arg=42"), std::string::npos);
  // Capped tail: asking for 1 returns exactly one line.
  std::string one = tracer.TailString(1);
  EXPECT_EQ(std::count(one.begin(), one.end(), '\n'), 1);
}

// The sim harness sets trace_unrooted_messages so SimNetwork mints a root
// per contextless message (consensus-only scenarios would otherwise record
// nothing). The flag must follow Configure and gate on the master switch.
TEST_F(ObsTracing, UnrootedMessageFlagFollowsConfigAndEnable) {
  Tracer& tracer = Tracer::Get();
  TracerConfig cfg = EnabledConfig();
  EXPECT_FALSE(tracer.trace_unrooted_messages());  // Default-off.
  cfg.trace_unrooted_messages = true;
  tracer.Configure(cfg);
  EXPECT_TRUE(tracer.trace_unrooted_messages());
  tracer.SetEnabled(false);  // Disabled tracer never asks for message roots.
  EXPECT_FALSE(tracer.trace_unrooted_messages());
  tracer.SetEnabled(true);
  EXPECT_TRUE(tracer.trace_unrooted_messages());
}

TEST_F(ObsTracing, ScopedContextInstallsAndRestores) {
  Tracer& tracer = Tracer::Get();
  tracer.Configure(EnabledConfig());
  TraceContext outer = tracer.MintTrace();
  ASSERT_TRUE(outer.sampled());
  {
    ScopedTraceContext scope(outer);
    EXPECT_EQ(Tracer::CurrentContext().span_id, outer.span_id);
    TraceContext inner = tracer.MintTrace();
    {
      ScopedTraceContext nested(inner);
      EXPECT_EQ(Tracer::CurrentContext().span_id, inner.span_id);
    }
    EXPECT_EQ(Tracer::CurrentContext().span_id, outer.span_id);
  }
  EXPECT_FALSE(Tracer::CurrentContext().sampled());
}

#endif  // !PREVER_TRACING_DISABLED

// Zero-overhead contract (src/obs/trace.h): with the tracer runtime-
// disabled, a begin/end span pair is one relaxed atomic load and a branch.
// Compared against an empty loop over the same volatile sink, the disabled
// path must stay within an order of magnitude — generous enough for CI
// noise, tight enough to catch an accidental allocation, lock, or ring
// write on the disabled path (each of which costs 10-100x more). Also
// compiled (trivially) in the PREVER_TRACING_DISABLED build, where the
// span is an empty struct.
TEST_F(ObsTracing, DisabledSpanIsBranchCheap) {
  TracerConfig off;
  off.enabled = false;
  Tracer::Get().Configure(off);  // Reset counters; leave tracing disabled.
  constexpr int kIters = 200000;
  volatile uint64_t sink = 0;

  auto timed = [&](auto&& body) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      body();
      sink = sink + 1;
    }
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  // Warm up both paths, then measure; take the best of 3 to shed scheduler
  // noise on shared machines.
  int64_t base = INT64_MAX, traced = INT64_MAX;
  for (int round = 0; round < 3; ++round) {
    base = std::min(base, timed([] {}));
    traced = std::min(traced, timed([] {
      TraceSpan span(TraceStage::kSubmit);
      (void)span;
    }));
  }
  double per_span_ns =
      static_cast<double>(traced - base) / static_cast<double>(kIters);
  // One relaxed load + branch is ~1-3 ns; a ring write or allocation on
  // the disabled path would blow well past this bound. Sanitizer builds
  // instrument every atomic access (~100 ns under TSan), so they get a
  // ceiling that still catches a lock or allocation but not the
  // instrumentation itself.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  constexpr double kCeilingNs = 5000.0;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  constexpr double kCeilingNs = 5000.0;
#else
  constexpr double kCeilingNs = 50.0;
#endif
#else
  constexpr double kCeilingNs = 50.0;
#endif
  EXPECT_LT(per_span_ns, kCeilingNs)
      << "disabled TraceSpan costs " << per_span_ns << " ns (base "
      << base << " ns, traced " << traced << " ns for " << kIters
      << " iters)";
  EXPECT_EQ(Tracer::Get().events_recorded(), 0u);
}

}  // namespace
}  // namespace prever::obs
