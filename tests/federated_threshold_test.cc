#include "core/federated_threshold_engine.h"

#include <gtest/gtest.h>

#include "core/auditor.h"
#include "test_util.h"

namespace prever::core {
namespace {

using storage::Mutation;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class FederatedThresholdEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) {
      auto platform = std::make_unique<FederatedPlatform>();
      platform->id = "platform-" + std::to_string(i);
      ASSERT_TRUE(platform->db.CreateTable("worklog", WorklogSchema()).ok());
      platforms_.push_back(std::move(platform));
    }
    ASSERT_TRUE(regulations_
                    .Add("flsa", constraint::ConstraintScope::kRegulation,
                         constraint::ConstraintVisibility::kPublic,
                         "SUM(worklog.hours WHERE worker = update.worker "
                         "WINDOW 7d) + update.hours <= 40")
                    .ok());
    std::vector<FederatedPlatform*> raw;
    for (auto& p : platforms_) raw.push_back(p.get());
    engine_ = std::make_unique<FederatedThresholdEngine>(
        raw, &regulations_, &ordering_,
        crypto::PedersenParams::Test256(), 2024);
  }

  std::vector<std::unique_ptr<FederatedPlatform>> platforms_;
  constraint::ConstraintCatalog regulations_;
  CentralizedOrdering ordering_;
  std::unique_ptr<FederatedThresholdEngine> engine_;
};

TEST_F(FederatedThresholdEngineTest, EnforcesCrossPlatformCapWithoutDealer) {
  ASSERT_TRUE(engine_->SubmitVia(0, MakeWorklogUpdate("t1", "w1", 18, kDay)).ok());
  ASSERT_TRUE(engine_->SubmitVia(1, MakeWorklogUpdate("t2", "w1", 15, 2 * kDay)).ok());
  ASSERT_TRUE(engine_->SubmitVia(2, MakeWorklogUpdate("t3", "w1", 6, 3 * kDay)).ok());
  // Total 39; two more hours would breach 40 even though every platform's
  // local view is small.
  Status s = engine_->SubmitVia(1, MakeWorklogUpdate("t4", "w1", 2, 3 * kDay));
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(engine_->stats().accepted, 3u);
  EXPECT_EQ(ordering_.CommittedCount(), 3u);
  // One joint decryption per regulation check.
  EXPECT_EQ(engine_->totals_opened(), 4u);
}

TEST_F(FederatedThresholdEngineTest, WindowExpiryWorks) {
  ASSERT_TRUE(engine_->SubmitVia(0, MakeWorklogUpdate("t1", "w1", 40, kDay)).ok());
  EXPECT_FALSE(engine_->SubmitVia(1, MakeWorklogUpdate("t2", "w1", 1, 2 * kDay)).ok());
  EXPECT_TRUE(
      engine_->SubmitVia(1, MakeWorklogUpdate("t3", "w1", 40, 10 * kDay)).ok());
}

TEST_F(FederatedThresholdEngineTest, WorkersIndependent) {
  ASSERT_TRUE(engine_->SubmitVia(0, MakeWorklogUpdate("t1", "w1", 40, kDay)).ok());
  EXPECT_TRUE(engine_->SubmitVia(2, MakeWorklogUpdate("t2", "w2", 40, kDay)).ok());
}

TEST_F(FederatedThresholdEngineTest, LocalDataStaysLocal) {
  ASSERT_TRUE(engine_->SubmitVia(0, MakeWorklogUpdate("t1", "w1", 10, kDay)).ok());
  ASSERT_TRUE(engine_->SubmitVia(1, MakeWorklogUpdate("t2", "w1", 10, kDay)).ok());
  EXPECT_EQ((*platforms_[0]->db.GetTable("worklog"))->size(), 1u);
  EXPECT_EQ((*platforms_[1]->db.GetTable("worklog"))->size(), 1u);
  EXPECT_EQ((*platforms_[2]->db.GetTable("worklog"))->size(), 0u);
}

TEST_F(FederatedThresholdEngineTest, InternalConstraintsStillLocal) {
  ASSERT_TRUE(platforms_[0]
                  ->internal_constraints
                  .Add("max-shift", constraint::ConstraintScope::kInternal,
                       constraint::ConstraintVisibility::kPrivate,
                       "update.hours <= 12")
                  .ok());
  EXPECT_EQ(engine_->SubmitVia(0, MakeWorklogUpdate("t1", "w1", 14, kDay)).code(),
            StatusCode::kConstraintViolation);
  EXPECT_TRUE(engine_->SubmitVia(1, MakeWorklogUpdate("t2", "w1", 14, kDay)).ok());
}

TEST_F(FederatedThresholdEngineTest, InvalidPlatformRejected) {
  EXPECT_FALSE(engine_->SubmitVia(9, MakeWorklogUpdate("t1", "w1", 1, kDay)).ok());
}

}  // namespace
}  // namespace prever::core
