#include <gtest/gtest.h>

#include <cstdlib>

#include "testing/sim_runner.h"

namespace prever::simtest {
namespace {

// Seeds per protocol. Every seed derives a distinct fault schedule
// (partitions, crashes, latency spikes, drop spikes, timer skew); the same
// seed always produces a byte-identical event trace, so any failure printed
// by these tests reproduces with:
//   PREVER_SIM_SEED=<seed> ./tests/sim_consensus_test
constexpr uint64_t kNumSeeds = 200;

/// PREVER_SIM_SEED narrows a sweep to one seed (replay/debug mode).
bool SingleSeed(uint64_t* seed) {
  const char* env = std::getenv("PREVER_SIM_SEED");
  if (env == nullptr || *env == '\0') return false;
  *seed = std::strtoull(env, nullptr, 10);
  return true;
}

ConsensusSimOptions RaftOptions() {
  ConsensusSimOptions o;
  o.num_nodes = 5;
  o.max_concurrent_crashed = 2;  // Leaves a 3/5 quorum.
  return o;
}

ConsensusSimOptions PbftOptions() {
  ConsensusSimOptions o;
  o.num_nodes = 4;               // f = 1.
  o.max_concurrent_crashed = 1;  // Silent + equivocator must stay <= f… each.
  o.allow_equivocation = true;
  o.num_commands = 10;
  return o;
}

TEST(SimConsensusTest, RaftSweep) {
  ConsensusSimOptions o = RaftOptions();
  uint64_t only = 0;
  if (SingleSeed(&only)) {
    SimReport r = RunRaftScenario(only, o);
    EXPECT_TRUE(r.ok) << r.Summary("Raft");
    std::fputs(r.trace.c_str(), stderr);
    return;
  }
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    SimReport r = RunRaftScenario(seed, o);
    ASSERT_TRUE(r.ok) << r.Summary("Raft");
  }
}

TEST(SimConsensusTest, PbftSweep) {
  ConsensusSimOptions o = PbftOptions();
  uint64_t only = 0;
  if (SingleSeed(&only)) {
    SimReport r = RunPbftScenario(only, o);
    EXPECT_TRUE(r.ok) << r.Summary("Pbft");
    std::fputs(r.trace.c_str(), stderr);
    return;
  }
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    SimReport r = RunPbftScenario(seed, o);
    ASSERT_TRUE(r.ok) << r.Summary("Pbft");
  }
}

// Same seed -> byte-identical event trace. This is what makes the replay
// line in failure reports trustworthy.
TEST(SimConsensusTest, RaftTraceIsDeterministic) {
  ConsensusSimOptions o = RaftOptions();
  for (uint64_t seed : {3u, 42u, 117u}) {
    SimReport a = RunRaftScenario(seed, o);
    SimReport b = RunRaftScenario(seed, o);
    ASSERT_TRUE(a.ok) << a.Summary("Raft");
    EXPECT_FALSE(a.trace.empty());
    EXPECT_EQ(a.trace, b.trace) << "seed " << seed;
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.committed, b.committed);
  }
}

TEST(SimConsensusTest, PbftTraceIsDeterministic) {
  ConsensusSimOptions o = PbftOptions();
  for (uint64_t seed : {3u, 42u, 117u}) {
    SimReport a = RunPbftScenario(seed, o);
    SimReport b = RunPbftScenario(seed, o);
    ASSERT_TRUE(a.ok) << a.Summary("Pbft");
    EXPECT_FALSE(a.trace.empty());
    EXPECT_EQ(a.trace, b.trace) << "seed " << seed;
  }
}

// ---------------------------------------------- Pipelined ordering sweeps
//
// These drive core::RaftOrdering / core::PbftOrdering (SubmitAsync + the
// adaptive batcher + the in-flight window) through randomized fault
// schedules. Seeds also vary the pipeline shape (batch {1,4,16,64} x
// window {1,2,4,8} x delay {1,3,10}ms), so the sweep covers stop-and-wait
// through deep pipelining. Replay one seed with PREVER_SIM_SEED.

constexpr uint64_t kNumOrderingSeeds = 60;

OrderingSimOptions RaftOrderingOptions() {
  OrderingSimOptions o;
  o.num_replicas = 5;
  o.max_concurrent_crashed = 2;  // Leaves a 3/5 quorum.
  o.base_drop_rate = 0.01;
  return o;
}

OrderingSimOptions PbftOrderingOptions() {
  OrderingSimOptions o;
  o.num_replicas = 4;  // f = 1.
  o.max_concurrent_crashed = 1;
  return o;
}

TEST(SimConsensusTest, RaftOrderingSweep) {
  OrderingSimOptions o = RaftOrderingOptions();
  uint64_t only = 0;
  if (SingleSeed(&only)) {
    SimReport r = RunRaftOrderingScenario(only, o);
    EXPECT_TRUE(r.ok) << r.Summary("RaftOrdering");
    std::fputs(r.trace.c_str(), stderr);
    return;
  }
  for (uint64_t seed = 1; seed <= kNumOrderingSeeds; ++seed) {
    SimReport r = RunRaftOrderingScenario(seed, o);
    ASSERT_TRUE(r.ok) << r.Summary("RaftOrdering");
  }
}

TEST(SimConsensusTest, PbftOrderingSweep) {
  OrderingSimOptions o = PbftOrderingOptions();
  uint64_t only = 0;
  if (SingleSeed(&only)) {
    SimReport r = RunPbftOrderingScenario(only, o);
    EXPECT_TRUE(r.ok) << r.Summary("PbftOrdering");
    std::fputs(r.trace.c_str(), stderr);
    return;
  }
  for (uint64_t seed = 1; seed <= kNumOrderingSeeds; ++seed) {
    SimReport r = RunPbftOrderingScenario(seed, o);
    ASSERT_TRUE(r.ok) << r.Summary("PbftOrdering");
  }
}

TEST(SimConsensusTest, OrderingTraceIsDeterministic) {
  OrderingSimOptions o = RaftOrderingOptions();
  for (uint64_t seed : {5u, 23u}) {
    SimReport a = RunRaftOrderingScenario(seed, o);
    SimReport b = RunRaftOrderingScenario(seed, o);
    ASSERT_TRUE(a.ok) << a.Summary("RaftOrdering");
    EXPECT_FALSE(a.trace.empty());
    EXPECT_EQ(a.trace, b.trace) << "seed " << seed;
    EXPECT_EQ(a.committed, b.committed);
  }
}

// Distinct seeds must explore distinct schedules — a generator collapsing to
// one schedule would make the sweep an expensive no-op.
TEST(SimConsensusTest, SeedsExploreDistinctSchedules) {
  ScenarioGenerator gen(ScenarioOptions{});
  std::set<std::string> shapes;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    FaultSchedule s = gen.Generate(seed);
    std::string shape;
    for (const FaultAction& a : s.actions) shape += a.ToString() + "\n";
    shapes.insert(shape);
  }
  EXPECT_GT(shapes.size(), 40u);
}

}  // namespace
}  // namespace prever::simtest
