#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/ordering.h"
#include "testing/crash_recovery.h"
#include "testing/sim_runner.h"

namespace prever::simtest {
namespace {

// Seeds per protocol. Every seed derives a distinct fault schedule
// (partitions, crashes, latency spikes, drop spikes, timer skew); the same
// seed always produces a byte-identical event trace, so any failure printed
// by these tests reproduces with:
//   PREVER_SIM_SEED=<seed> ./tests/sim_consensus_test
constexpr uint64_t kNumSeeds = 200;

/// PREVER_SIM_SEED narrows a sweep to one seed (replay/debug mode).
bool SingleSeed(uint64_t* seed) {
  const char* env = std::getenv("PREVER_SIM_SEED");
  if (env == nullptr || *env == '\0') return false;
  *seed = std::strtoull(env, nullptr, 10);
  return true;
}

ConsensusSimOptions RaftOptions() {
  ConsensusSimOptions o;
  o.num_nodes = 5;
  o.max_concurrent_crashed = 2;  // Leaves a 3/5 quorum.
  return o;
}

ConsensusSimOptions PbftOptions() {
  ConsensusSimOptions o;
  o.num_nodes = 4;               // f = 1.
  o.max_concurrent_crashed = 1;  // Silent + equivocator must stay <= f… each.
  o.allow_equivocation = true;
  o.num_commands = 10;
  return o;
}

TEST(SimConsensusTest, RaftSweep) {
  ConsensusSimOptions o = RaftOptions();
  uint64_t only = 0;
  if (SingleSeed(&only)) {
    SimReport r = RunRaftScenario(only, o);
    EXPECT_TRUE(r.ok) << r.Summary("Raft");
    std::fputs(r.trace.c_str(), stderr);
    return;
  }
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    SimReport r = RunRaftScenario(seed, o);
    ASSERT_TRUE(r.ok) << r.Summary("Raft");
  }
}

TEST(SimConsensusTest, PbftSweep) {
  ConsensusSimOptions o = PbftOptions();
  uint64_t only = 0;
  if (SingleSeed(&only)) {
    SimReport r = RunPbftScenario(only, o);
    EXPECT_TRUE(r.ok) << r.Summary("Pbft");
    std::fputs(r.trace.c_str(), stderr);
    return;
  }
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    SimReport r = RunPbftScenario(seed, o);
    ASSERT_TRUE(r.ok) << r.Summary("Pbft");
  }
}

// Same seed -> byte-identical event trace. This is what makes the replay
// line in failure reports trustworthy.
TEST(SimConsensusTest, RaftTraceIsDeterministic) {
  ConsensusSimOptions o = RaftOptions();
  for (uint64_t seed : {3u, 42u, 117u}) {
    SimReport a = RunRaftScenario(seed, o);
    SimReport b = RunRaftScenario(seed, o);
    ASSERT_TRUE(a.ok) << a.Summary("Raft");
    EXPECT_FALSE(a.trace.empty());
    EXPECT_EQ(a.trace, b.trace) << "seed " << seed;
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.committed, b.committed);
  }
}

TEST(SimConsensusTest, PbftTraceIsDeterministic) {
  ConsensusSimOptions o = PbftOptions();
  for (uint64_t seed : {3u, 42u, 117u}) {
    SimReport a = RunPbftScenario(seed, o);
    SimReport b = RunPbftScenario(seed, o);
    ASSERT_TRUE(a.ok) << a.Summary("Pbft");
    EXPECT_FALSE(a.trace.empty());
    EXPECT_EQ(a.trace, b.trace) << "seed " << seed;
  }
}

// ---------------------------------------------- Pipelined ordering sweeps
//
// These drive core::RaftOrdering / core::PbftOrdering (SubmitAsync + the
// adaptive batcher + the in-flight window) through randomized fault
// schedules. Seeds also vary the pipeline shape (batch {1,4,16,64} x
// window {1,2,4,8} x delay {1,3,10}ms), so the sweep covers stop-and-wait
// through deep pipelining. Replay one seed with PREVER_SIM_SEED.

constexpr uint64_t kNumOrderingSeeds = 60;

OrderingSimOptions RaftOrderingOptions() {
  OrderingSimOptions o;
  o.num_replicas = 5;
  o.max_concurrent_crashed = 2;  // Leaves a 3/5 quorum.
  o.base_drop_rate = 0.01;
  return o;
}

OrderingSimOptions PbftOrderingOptions() {
  OrderingSimOptions o;
  o.num_replicas = 4;  // f = 1.
  o.max_concurrent_crashed = 1;
  return o;
}

TEST(SimConsensusTest, RaftOrderingSweep) {
  OrderingSimOptions o = RaftOrderingOptions();
  uint64_t only = 0;
  if (SingleSeed(&only)) {
    SimReport r = RunRaftOrderingScenario(only, o);
    EXPECT_TRUE(r.ok) << r.Summary("RaftOrdering");
    std::fputs(r.trace.c_str(), stderr);
    return;
  }
  for (uint64_t seed = 1; seed <= kNumOrderingSeeds; ++seed) {
    SimReport r = RunRaftOrderingScenario(seed, o);
    ASSERT_TRUE(r.ok) << r.Summary("RaftOrdering");
  }
}

TEST(SimConsensusTest, PbftOrderingSweep) {
  OrderingSimOptions o = PbftOrderingOptions();
  uint64_t only = 0;
  if (SingleSeed(&only)) {
    SimReport r = RunPbftOrderingScenario(only, o);
    EXPECT_TRUE(r.ok) << r.Summary("PbftOrdering");
    std::fputs(r.trace.c_str(), stderr);
    return;
  }
  for (uint64_t seed = 1; seed <= kNumOrderingSeeds; ++seed) {
    SimReport r = RunPbftOrderingScenario(seed, o);
    ASSERT_TRUE(r.ok) << r.Summary("PbftOrdering");
  }
}

TEST(SimConsensusTest, OrderingTraceIsDeterministic) {
  OrderingSimOptions o = RaftOrderingOptions();
  for (uint64_t seed : {5u, 23u}) {
    SimReport a = RunRaftOrderingScenario(seed, o);
    SimReport b = RunRaftOrderingScenario(seed, o);
    ASSERT_TRUE(a.ok) << a.Summary("RaftOrdering");
    EXPECT_FALSE(a.trace.empty());
    EXPECT_EQ(a.trace, b.trace) << "seed " << seed;
    EXPECT_EQ(a.committed, b.committed);
  }
}

// ---------------------------------------------- Crash-recovery sweeps
//
// End-to-end durability: replicas are killed at seed-chosen crash points —
// including mid-checkpoint-write and mid-WAL-append (the harness mutilates
// the on-disk files exactly as an interrupted write would) — then restarted
// through the real recovery path: CheckpointStore::LoadLatest (quarantining
// corrupt finals) + commit-journal suffix replay + consensus-level catch-up
// (Raft snapshot/log re-delivery, PBFT stable-checkpoint install + state
// transfer). Each scenario asserts digest-identical replica prefixes,
// exactly-once commits post-Flush, and checkpoint-root == recomputed Merkle
// root. Replay one seed with PREVER_SIM_SEED.

constexpr uint64_t kNumCrashRecoverySeeds = 60;

CrashRecoveryOptions CrashRecoveryOptionsFor(const char* proto,
                                             uint64_t seed) {
  CrashRecoveryOptions o;
  o.work_dir = ::testing::TempDir() + "prever_crashrec_" + proto + "_" +
               std::to_string(seed);
  return o;
}

TEST(SimConsensusTest, RaftCrashRecoverySweep) {
  uint64_t only = 0;
  if (SingleSeed(&only)) {
    CrashRecoveryReport r = RunRaftCrashRecoveryScenario(
        only, CrashRecoveryOptionsFor("raft", only));
    EXPECT_TRUE(r.ok) << r.Summary("Raft");
    std::fputs(r.trace.c_str(), stderr);
    return;
  }
  size_t total_crashes = 0;
  size_t total_quarantined = 0;
  for (uint64_t seed = 1; seed <= kNumCrashRecoverySeeds; ++seed) {
    CrashRecoveryOptions o = CrashRecoveryOptionsFor("raft", seed);
    o.num_replicas = 5;
    CrashRecoveryReport r = RunRaftCrashRecoveryScenario(seed, o);
    ASSERT_TRUE(r.ok) << r.Summary("Raft");
    EXPECT_EQ(r.crashes, r.recoveries) << r.Summary("Raft");
    total_crashes += r.crashes;
    total_quarantined += r.checkpoints_quarantined;
  }
  // The sweep must actually exercise kills and the corrupt-checkpoint
  // fallback — a quiet sweep would be an expensive no-op.
  EXPECT_GT(total_crashes, kNumCrashRecoverySeeds / 2);
  EXPECT_GT(total_quarantined, 0u);
}

TEST(SimConsensusTest, PbftCrashRecoverySweep) {
  uint64_t only = 0;
  if (SingleSeed(&only)) {
    CrashRecoveryReport r = RunPbftCrashRecoveryScenario(
        only, CrashRecoveryOptionsFor("pbft", only));
    EXPECT_TRUE(r.ok) << r.Summary("Pbft");
    std::fputs(r.trace.c_str(), stderr);
    return;
  }
  size_t total_crashes = 0;
  for (uint64_t seed = 1; seed <= kNumCrashRecoverySeeds; ++seed) {
    CrashRecoveryOptions o = CrashRecoveryOptionsFor("pbft", seed);
    o.num_replicas = 4;  // f = 1.
    CrashRecoveryReport r = RunPbftCrashRecoveryScenario(seed, o);
    ASSERT_TRUE(r.ok) << r.Summary("Pbft");
    EXPECT_EQ(r.crashes, r.recoveries) << r.Summary("Pbft");
    total_crashes += r.crashes;
  }
  EXPECT_GT(total_crashes, kNumCrashRecoverySeeds / 2);
}

// Log compaction keeps memory bounded by the checkpoint interval, not the
// history length: under a long run, the PBFT message log and the physical
// Raft log must stay within a constant factor of the interval.
TEST(SimConsensusTest, RaftLogBoundedByCheckpointInterval) {
  net::SimNetConfig net_config;
  net_config.seed = 7;
  core::OrderingPipelineConfig pipeline;
  pipeline.max_batch = 64;
  pipeline.max_inflight = 8;
  core::RaftOrdering ordering(3, net_config, pipeline);
  constexpr uint64_t kPayloads = 100000;
  constexpr uint64_t kInterval = 256;  // Applied entries between compactions.
  size_t max_physical = 0;
  std::vector<uint64_t> last_compact(3, 0);
  std::vector<Bytes> batch;
  for (uint64_t k = 0; k < kPayloads; ++k) {
    batch.push_back(Bytes{static_cast<uint8_t>(k), static_cast<uint8_t>(k >> 8),
                          static_cast<uint8_t>(k >> 16)});
    if (batch.size() == 512 || k + 1 == kPayloads) {
      ASSERT_TRUE(ordering.AppendBatch(batch, 0).ok());
      batch.clear();
      for (size_t i = 0; i < 3; ++i) {
        auto& replica = ordering.cluster().replica(i);
        uint64_t floor = ordering.replica_applied_floor(i);
        if (floor >= last_compact[i] + kInterval) {
          ASSERT_TRUE(
              replica.CompactTo(floor, ordering.EncodeReplicaState(i)).ok());
          last_compact[i] = floor;
        }
        max_physical = std::max(max_physical, replica.physical_log_entries());
      }
    }
  }
  EXPECT_EQ(ordering.ReplicaLedger(0).size(), kPayloads);
  // Between compactions at most kInterval applied entries accumulate, plus
  // the in-flight window of uncompacted batches.
  EXPECT_LE(max_physical, kInterval + 2 * pipeline.max_inflight + 16)
      << "Raft physical log grew unboundedly";
}

TEST(SimConsensusTest, PbftMessageLogBoundedByCheckpointInterval) {
  net::SimNetConfig net_config;
  net_config.seed = 11;
  core::OrderingPipelineConfig pipeline;
  pipeline.max_batch = 64;
  pipeline.max_inflight = 8;
  core::OrderingRecoveryConfig recovery;
  recovery.checkpoint_interval = 16;  // Executions between stable checkpoints.
  core::PbftOrdering ordering(4, net_config, "pbft-bounded", pipeline,
                              recovery);
  constexpr uint64_t kPayloads = 100000;
  size_t max_slots = 0;
  std::vector<Bytes> batch;
  for (uint64_t k = 0; k < kPayloads; ++k) {
    batch.push_back(Bytes{static_cast<uint8_t>(k), static_cast<uint8_t>(k >> 8),
                          static_cast<uint8_t>(k >> 16)});
    if (batch.size() == 512 || k + 1 == kPayloads) {
      ASSERT_TRUE(ordering.AppendBatch(batch, 0).ok());
      batch.clear();
      for (size_t i = 0; i < 4; ++i) {
        max_slots =
            std::max(max_slots, ordering.cluster().replica(i).log_slots());
      }
    }
  }
  EXPECT_EQ(ordering.ReplicaLedger(0).size(), kPayloads);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_GT(ordering.cluster().replica(i).stable_checkpoint_seq(), 0u);
  }
  // 2f+1 checkpoint certificates advance the low watermark and GC the log
  // below it: occupancy is bounded by interval + the watermark window, never
  // by the 100k history.
  EXPECT_LE(max_slots,
            recovery.checkpoint_interval + 2 * pipeline.max_inflight + 16)
      << "PBFT message log grew unboundedly";
}

TEST(SimConsensusTest, CrashRecoveryTraceIsDeterministic) {
  for (uint64_t seed : {9u, 31u}) {
    CrashRecoveryOptions o = CrashRecoveryOptionsFor("raftdet", seed);
    CrashRecoveryReport a = RunRaftCrashRecoveryScenario(seed, o);
    CrashRecoveryReport b = RunRaftCrashRecoveryScenario(seed, o);
    ASSERT_TRUE(a.ok) << a.Summary("Raft");
    EXPECT_EQ(a.trace, b.trace) << "seed " << seed;
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.checkpoints_saved, b.checkpoints_saved);
  }
}

// Distinct seeds must explore distinct schedules — a generator collapsing to
// one schedule would make the sweep an expensive no-op.
TEST(SimConsensusTest, SeedsExploreDistinctSchedules) {
  ScenarioGenerator gen(ScenarioOptions{});
  std::set<std::string> shapes;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    FaultSchedule s = gen.Generate(seed);
    std::string shape;
    for (const FaultAction& a : s.actions) shape += a.ToString() + "\n";
    shapes.insert(shape);
  }
  EXPECT_GT(shapes.size(), 40u);
}

}  // namespace
}  // namespace prever::simtest
