#include <gtest/gtest.h>

#include <cstdlib>

#include "testing/engine_diff.h"

namespace prever::simtest {
namespace {

// Seeds for the differential sweep. Each seed derives a fresh signed-update
// stream (seed-qualified workers, mixed compliant/violating hours) that is
// replayed through the plaintext reference engine and all four private
// engines. Failures reproduce with:
//   PREVER_SIM_SEED=<seed> ./tests/sim_engine_diff_test
constexpr uint64_t kNumSeeds = 200;

class SimEngineDiffTest : public ::testing::Test {
 protected:
  // Key material (Paillier owner, token authority, producer RSA keys) is
  // independent of per-seed determinism — decisions never depend on it —
  // so generate it once for the whole sweep.
  static void SetUpTestSuite() {
    fixtures_ = EngineDiffFixtures::Create(EngineDiffOptions{}.bound,
                                           /*seed=*/271828)
                    .release();
  }

  static EngineDiffFixtures* fixtures_;
};
EngineDiffFixtures* SimEngineDiffTest::fixtures_ = nullptr;

TEST_F(SimEngineDiffTest, Sweep) {
  EngineDiffOptions o;
  const char* env = std::getenv("PREVER_SIM_SEED");
  if (env != nullptr && *env != '\0') {
    uint64_t seed = std::strtoull(env, nullptr, 10);
    EngineDiffReport r = RunEngineDifferential(seed, o, *fixtures_);
    EXPECT_TRUE(r.ok) << r.Summary();
    std::fputs(r.trace.c_str(), stderr);
    return;
  }
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    EngineDiffReport r = RunEngineDifferential(seed, o, *fixtures_);
    ASSERT_TRUE(r.ok) << r.Summary();
    // Every stream must exercise both outcomes at least once overall; a
    // stream that only ever accepts would not test the reject paths. Not
    // required per seed (a lucky stream may accept everything), so assert
    // on aggregate below.
  }
}

TEST_F(SimEngineDiffTest, SweepCoversAcceptAndReject) {
  EngineDiffOptions o;
  size_t accepted = 0, rejected = 0;
  for (uint64_t seed = 1000; seed < 1020; ++seed) {
    EngineDiffReport r = RunEngineDifferential(seed, o, *fixtures_);
    ASSERT_TRUE(r.ok) << r.Summary();
    accepted += r.accepted;
    rejected += r.updates - r.accepted;
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
}

// Data-aware boundary workload: every update is planned from the reference
// table's live aggregate state to sit exactly on a regulation edge
// (bound-1 / bound / bound+1, window first/last slot, duplicate timestamps,
// zero hours at the cap). A correct implementation shows zero divergence;
// off-by-one mutants in window or comparison logic die here long before a
// random sweep would find them.
TEST_F(SimEngineDiffTest, BoundaryWorkloadZeroDivergence) {
  EngineDiffOptions o;
  o.boundary = true;
  const char* env = std::getenv("PREVER_SIM_SEED");
  if (env != nullptr && *env != '\0') {
    uint64_t seed = std::strtoull(env, nullptr, 10);
    EngineDiffReport r = RunEngineDifferential(seed, o, *fixtures_);
    EXPECT_TRUE(r.ok) << r.Summary();
    std::fputs(r.trace.c_str(), stderr);
    return;
  }
  for (uint64_t seed = 2000; seed < 2040; ++seed) {
    EngineDiffReport r = RunEngineDifferential(seed, o, *fixtures_);
    ASSERT_TRUE(r.ok) << r.Summary();
    // The scripted ladder always exercises both outcomes.
    EXPECT_GT(r.accepted, 0u) << r.trace;
    EXPECT_GT(r.updates - r.accepted, 0u) << r.trace;
  }
}

TEST_F(SimEngineDiffTest, BoundaryWorkloadHitsEveryEdgeKind) {
  EngineDiffOptions o;
  o.boundary = true;
  EngineDiffReport r = RunEngineDifferential(42, o, *fixtures_);
  ASSERT_TRUE(r.ok) << r.Summary();
  for (const char* kind :
       {"kind=window_first", "kind=cap_minus_one", "kind=cap_exact",
        "kind=cap_over", "kind=zero_at_cap", "kind=dup_ts",
        "kind=single_over", "kind=window_last"}) {
    EXPECT_NE(r.trace.find(kind), std::string::npos)
        << "boundary trace never exercised " << kind << "\n"
        << r.trace;
  }
}

TEST_F(SimEngineDiffTest, TraceIsDeterministic) {
  EngineDiffOptions o;
  // Same seed, same fixtures -> byte-identical decision trace, even though
  // ciphertexts and proofs differ per run (decisions are what we compare).
  EngineDiffReport a = RunEngineDifferential(7, o, *fixtures_);
  EngineDiffReport b = RunEngineDifferential(7, o, *fixtures_);
  ASSERT_TRUE(a.ok) << a.Summary();
  ASSERT_TRUE(b.ok) << b.Summary();
  EXPECT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
}

}  // namespace
}  // namespace prever::simtest
