// Differential fuzz for the compiled constraint path: the bytecode
// evaluator + incremental aggregate cache must be observationally identical
// to the tree-walking interpreter — same values when both succeed, same
// status codes when either fails. The sweep covers the edges the compiled
// path is most likely to get wrong:
//   - WINDOW boundaries (rows pinned exactly at now - w and now, plus
//     one-microsecond neighbors on each side),
//   - NULL/absent update fields (the update sometimes lacks `hours`),
//   - int64 overflow edges (INT64_MAX-scale literals under wrapping + - *),
//   - zero divisors (/ and % by a literal 0),
//   - mixed-type comparisons (string vs numeric → identical error codes),
//   - incremental maintenance (commits folded through OnCommitted, then
//     re-compared against a fresh interpreter evaluation).
// scripts/check.sh runs this binary explicitly in the ASan+UBSan
// configuration, so any divergence or UB in either path fails the gate.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "constraint/agg_cache.h"
#include "constraint/eval.h"
#include "constraint/parser.h"
#include "constraint/program.h"
#include "storage/column_batch.h"
#include "storage/database.h"

namespace prever::constraint {
namespace {

using storage::Mutation;
using storage::Schema;
using storage::Value;
using storage::ValueType;

Status InsertRow(storage::Database& db, const std::string& id,
                 const std::string& worker, int64_t hours, SimTime at) {
  Mutation m;
  m.op = Mutation::Op::kInsert;
  m.table = "worklog";
  m.row = {Value::String(id), Value::String(worker), Value::Int64(hours),
           Value::Timestamp(at)};
  return db.Apply(m);
}

Result<Value> RegValToValue(const RegVal& r) {
  switch (r.tag) {
    case RegVal::Tag::kNum:
      return Value::Int64(r.num);
    case RegVal::Tag::kBool:
      return Value::Bool(r.b);
    case RegVal::Tag::kStr:
      return Value::String(*r.str);
  }
  return Status::Internal("unreachable register tag");
}

/// Evaluates a compiled constraint the way CompiledVerifier does: RunScalar
/// over the top program with aggregates served by the (incremental) cache.
Result<Value> EvalCompiled(const CompiledConstraint& cc, const EvalContext& ctx,
                           AggregateCache& cache,
                           storage::ColumnBatchCache& batches) {
  AggFn agg_fn = [&](size_t i) {
    return cache.Evaluate(*cc.aggs[i], ctx, &batches);
  };
  PREVER_ASSIGN_OR_RETURN(RegVal top,
                          RunScalar(cc.top, ctx, /*row=*/nullptr, &agg_fn));
  return RegValToValue(top);
}

/// Seeded grammar fuzzer biased toward the divergence-prone edges.
class DiffFuzz {
 public:
  explicit DiffFuzz(uint64_t seed) : rng_(seed) {}

  std::string GenBool(int depth) {
    if (depth <= 0) {
      return rng_.NextBelow(3) ? GenComparison() : GenLeafBool();
    }
    switch (rng_.NextBelow(8)) {
      case 0:
        return GenBool(depth - 1) + " AND " + GenBool(depth - 1);
      case 1:
        return GenBool(depth - 1) + " OR " + GenBool(depth - 1);
      case 2:
        return "NOT (" + GenBool(depth - 1) + ")";
      case 3:
        return "EXISTS(worklog WHERE " + GenRowPredicate() + ")";
      case 4:  // Rare: exercises the interpreter-fallback (ok=false) path.
        return "FORALL(worklog.worker : SUM(worklog.hours WHERE worker = "
               "group) <= " +
               std::to_string(rng_.NextInRange(0, 200)) + ")";
      default:
        return GenComparison();
    }
  }

 private:
  std::string GenComparison() {
    static const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
    const char* op = kOps[rng_.NextBelow(6)];
    if (rng_.NextBelow(8) == 0) {
      // Mixed / string comparisons: worker fields vs literals or numbers.
      std::string lhs =
          rng_.NextBelow(2) ? "update.worker"
                            : "'w" + std::to_string(rng_.NextInRange(1, 3)) +
                                  "'";
      std::string rhs = rng_.NextBelow(3) == 0
                            ? GenArith(0)
                            : "'w" + std::to_string(rng_.NextInRange(1, 3)) +
                                  "'";
      return lhs + " " + op + " " + rhs;
    }
    return GenArith(1) + " " + op + " " + GenArith(1);
  }

  std::string GenLeafBool() { return rng_.NextBelow(2) ? "true" : "false"; }

  std::string GenArith(int depth) {
    if (depth <= 0) return GenTerm();
    static const char* kOps[] = {"+", "-", "*", "/", "%"};
    switch (rng_.NextBelow(4)) {
      case 0:
        return "(" + GenArith(depth - 1) + " " + kOps[rng_.NextBelow(5)] +
               " " + GenArith(depth - 1) + ")";
      default:
        return GenTerm();
    }
  }

  std::string GenTerm() {
    switch (rng_.NextBelow(8)) {
      case 0:
        return std::to_string(rng_.NextInRange(0, 99));
      case 1:  // Zero divisors and additive identities.
        return "0";
      case 2:  // Wrapping-arithmetic edges.
        return rng_.NextBelow(2) ? "9223372036854775807"
                                 : "4611686018427387904";
      case 3:
        return "update.hours";  // Sometimes absent from the update.
      case 4:
        return GenAggregate();
      case 5:
        return "COUNT(worklog)";
      default:
        return std::to_string(rng_.NextInRange(0, 40));
    }
  }

  std::string GenAggregate() {
    static const char* kAggs[] = {"SUM", "AVG", "MIN", "MAX", "COUNT"};
    std::string s = std::string(kAggs[rng_.NextBelow(5)]) + "(worklog.hours";
    if (rng_.NextBelow(2)) s += " WHERE " + GenRowPredicate();
    if (rng_.NextBelow(2)) {
      s += " WINDOW " + std::to_string(rng_.NextInRange(1, 9)) +
           (rng_.NextBelow(2) ? "d" : "h");
    }
    return s + ")";
  }

  std::string GenRowPredicate() {
    switch (rng_.NextBelow(4)) {
      case 0:
        return "worker = 'w" + std::to_string(rng_.NextInRange(1, 3)) + "'";
      case 1:  // Cacheable group selector keyed off the update.
        return "worker = update.worker";
      case 2:
        return "hours > " + std::to_string(rng_.NextInRange(0, 40)) +
               " AND worker = 'w" + std::to_string(rng_.NextInRange(1, 3)) +
               "'";
      default:
        return "hours > " + std::to_string(rng_.NextInRange(0, 40));
    }
  }

  prever::Rng rng_;
};

struct Comparison {
  bool compiled = false;  ///< False when the compiler fell back (ok=false).
};

/// One interpreter-vs-compiled comparison; `label` contextualizes failures.
Comparison CompareOnce(const Expr& expr, const CompiledConstraint& cc,
                       const EvalContext& ctx, AggregateCache& cache,
                       storage::ColumnBatchCache& batches, uint64_t seed,
                       const std::string& text, const char* label) {
  if (!cc.ok) return {false};
  auto vi = Evaluate(expr, ctx);
  auto vc = EvalCompiled(cc, ctx, cache, batches);
  EXPECT_EQ(vi.ok(), vc.ok())
      << label << " seed " << seed << ": " << text << "\n interpreter: "
      << (vi.ok() ? "ok" : vi.status().message())
      << "\n compiled: " << (vc.ok() ? "ok" : vc.status().message());
  if (vi.ok() && vc.ok()) {
    EXPECT_TRUE(*vi == *vc) << label << " seed " << seed << ": " << text;
  } else if (!vi.ok() && !vc.ok()) {
    EXPECT_EQ(vi.status().code(), vc.status().code())
        << label << " seed " << seed << ": " << text << "\n interpreter: "
        << vi.status().message() << "\n compiled: " << vc.status().message();
  }
  return {true};
}

TEST(CompiledDiffFuzz, MatchesInterpreterAcrossSeeds) {
  constexpr uint64_t kSeeds = 260;
  constexpr SimTime kNow = 10 * kDay;
  uint64_t compiled_cases = 0;
  uint64_t fallback_cases = 0;

  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    prever::Rng rng(seed * 7919 + 17);
    storage::Database db;
    Schema worklog({{"id", ValueType::kString},
                    {"worker", ValueType::kString},
                    {"hours", ValueType::kInt64},
                    {"at", ValueType::kTimestamp}});
    ASSERT_TRUE(db.CreateTable("worklog", worklog).ok());

    // Rows pinned to every window boundary the grammar can generate
    // (1..9 d/h behind now), each with ±1 microsecond neighbors, plus a
    // few random fills. Hours include negatives and INT64_MAX.
    int id = 0;
    auto add = [&](int64_t hours, SimTime at) {
      ASSERT_TRUE(InsertRow(db, "r" + std::to_string(id++),
                            "w" + std::to_string(rng.NextInRange(1, 3)), hours,
                            at)
                      .ok());
    };
    for (int k = 1; k <= 9; ++k) {
      if (rng.NextBelow(3) == 0) {
        SimTime unit = rng.NextBelow(2) ? kDay : kHour;
        SimTime edge = kNow - static_cast<SimTime>(k) * unit;
        add(rng.NextInRange(-20, 60), edge);
        if (rng.NextBelow(2)) add(rng.NextInRange(-20, 60), edge + 1);
        if (rng.NextBelow(2)) add(rng.NextInRange(-20, 60), edge - 1);
      }
    }
    add(rng.NextInRange(0, 40), kNow);  // ts == now exactly (in-window).
    if (rng.NextBelow(2)) {
      add(INT64_MAX, kNow - rng.NextInRange(1, 5) * kHour);  // Wrap edge.
    }
    for (int i = 0; i < 4; ++i) {
      add(rng.NextInRange(-10, 50),
          kNow - static_cast<SimTime>(rng.NextInRange(0, 9 * 24)) * kHour);
    }

    UpdateFields update = {{"worker", Value::String(
                                          "w" + std::to_string(
                                                    rng.NextInRange(1, 3)))}};
    if (rng.NextBelow(4) != 0) {  // Sometimes absent: unknown-field errors.
      update["hours"] = Value::Int64(rng.NextInRange(-5, 60));
    }

    DiffFuzz fuzz(seed);
    std::string text = fuzz.GenBool(3);
    auto parsed = ParseConstraint(text);
    ASSERT_TRUE(parsed.ok()) << "seed " << seed << ": " << text;
    CompiledConstraint cc = CompileConstraint(**parsed);

    AggregateCache cache;
    storage::ColumnBatchCache batches;
    EvalContext ctx{&db, &update, kNow};
    Comparison first =
        CompareOnce(**parsed, cc, ctx, cache, batches, seed, text, "build");
    if (!first.compiled) {
      ++fallback_cases;
      continue;
    }
    ++compiled_cases;

    // Incremental phase: commit random inserts through the cache's delta
    // path and advance `now`, then demand the cache still matches a fresh
    // interpreter evaluation (which always rescans).
    SimTime now2 = kNow;
    for (int step = 0; step < 3; ++step) {
      Mutation m;
      m.op = Mutation::Op::kInsert;
      m.table = "worklog";
      m.row = {Value::String("c" + std::to_string(step) + "_" +
                             std::to_string(seed)),
               Value::String("w" + std::to_string(rng.NextInRange(1, 3))),
               Value::Int64(rng.NextInRange(-15, 55)),
               Value::Timestamp(now2 - static_cast<SimTime>(
                                           rng.NextInRange(0, 48)) *
                                           kHour)};
      ASSERT_TRUE(db.Apply(m).ok());
      cache.OnCommitted(m, db);
      switch (rng.NextBelow(4)) {
        case 0:
          now2 += 1;  // One-microsecond window slide.
          break;
        case 1:
          now2 += kHour;
          break;
        case 2:
          now2 += kDay;
          break;
        default:
          break;  // Same instant: pure delta, no cursor motion.
      }
      EvalContext ctx2{&db, &update, now2};
      CompareOnce(**parsed, cc, ctx2, cache, batches, seed, text,
                  "incremental");
    }
  }

  // The sweep is only meaningful if the compiler actually handles the bulk
  // of the generated space; fallbacks should be the FORALL-shaped minority.
  EXPECT_GE(compiled_cases, kSeeds / 2)
      << "compiled " << compiled_cases << ", fallback " << fallback_cases;
}

// ------------------------------------------------------------------
// Targeted goldens: the exact boundary semantics the fuzzer samples,
// pinned deterministically so a regression names the rule it broke.
// ------------------------------------------------------------------

class CompiledGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema worklog({{"id", ValueType::kString},
                    {"worker", ValueType::kString},
                    {"hours", ValueType::kInt64},
                    {"at", ValueType::kTimestamp}});
    ASSERT_TRUE(db_.CreateTable("worklog", worklog).ok());
    ASSERT_TRUE(InsertRow(db_, "t1", "w1", 10, 2 * kDay).ok());    // == start
    ASSERT_TRUE(InsertRow(db_, "t2", "w1", 20, 2 * kDay + 1).ok()); // first in
    ASSERT_TRUE(InsertRow(db_, "t3", "w1", 30, 7 * kDay).ok());    // == now
    ASSERT_TRUE(InsertRow(db_, "t4", "w2", 40, 3 * kDay).ok());
  }

  Result<Value> Both(const std::string& text, bool* compiled_out = nullptr) {
    auto parsed = ParseConstraint(text);
    if (!parsed.ok()) return parsed.status();
    // cache_ keys its state by AggregateSpec address and its commit
    // observer dereferences those keys, so every constraint the
    // fixture-lived cache has seen must outlive the cache — the same
    // ownership the CompiledVerifier gives its catalog entries.
    exprs_.push_back(std::move(*parsed));
    const Expr& expr = *exprs_.back();
    ccs_.push_back(CompileConstraint(expr));
    CompiledConstraint& cc = ccs_.back();
    EvalContext ctx{&db_, &update_, now_};
    auto vi = Evaluate(expr, ctx);
    if (compiled_out) *compiled_out = cc.ok;
    if (!cc.ok) return vi;
    auto vc = EvalCompiled(cc, ctx, cache_, batches_);
    EXPECT_EQ(vi.ok(), vc.ok()) << text;
    if (vi.ok() && vc.ok()) {
      EXPECT_TRUE(*vi == *vc) << text;
    }
    if (!vi.ok() && !vc.ok()) {
      EXPECT_EQ(vi.status().code(), vc.status().code()) << text;
    }
    return vc;
  }

  /// Re-evaluates the most recent Both() constraint through the SAME
  /// compiled form — the production shape, where one compiled constraint
  /// is verified again and again across commits. A fresh Both() would
  /// compile a new spec and the cache would (correctly) rebuild for it.
  Result<Value> Recheck() {
    const Expr& expr = *exprs_.back();
    CompiledConstraint& cc = ccs_.back();
    EvalContext ctx{&db_, &update_, now_};
    auto vi = Evaluate(expr, ctx);
    auto vc = EvalCompiled(cc, ctx, cache_, batches_);
    EXPECT_EQ(vi.ok(), vc.ok());
    if (vi.ok() && vc.ok()) {
      EXPECT_TRUE(*vi == *vc);
    }
    return vc;
  }

  storage::Database db_;
  std::vector<std::unique_ptr<Expr>> exprs_;
  std::deque<CompiledConstraint> ccs_;
  AggregateCache cache_;
  storage::ColumnBatchCache batches_;
  UpdateFields update_ = {{"worker", Value::String("w1")},
                          {"hours", Value::Int64(5)}};
  SimTime now_ = 7 * kDay;
};

TEST_F(CompiledGoldenTest, WindowStartExclusiveEndInclusive) {
  auto v = Both("SUM(worklog.hours WHERE worker = 'w1' WINDOW 5d)");
  ASSERT_TRUE(v.ok()) << v.status().message();
  EXPECT_TRUE(*v == Value::Int64(50));  // t2 + t3; t1 sits ON the start edge.
}

TEST_F(CompiledGoldenTest, WrappingArithmeticMatchesInterpreter) {
  auto v = Both("9223372036854775807 + 1 < 0");
  ASSERT_TRUE(v.ok()) << v.status().message();
  EXPECT_TRUE(*v == Value::Bool(true));  // Wraps to INT64_MIN in both paths.
}

TEST_F(CompiledGoldenTest, ZeroDivisorErrorsIdentically) {
  auto v = Both("(update.hours / 0) = 1");
  EXPECT_FALSE(v.ok());
}

TEST_F(CompiledGoldenTest, AbsentUpdateFieldErrorsIdentically) {
  auto v = Both("update.missing = 1");
  EXPECT_FALSE(v.ok());
}

TEST_F(CompiledGoldenTest, EmptyMinErrorsEmptyAvgIsZero) {
  auto v1 = Both("MIN(worklog.hours WHERE worker = 'zz') = 0");
  EXPECT_FALSE(v1.ok());
  auto v2 = Both("AVG(worklog.hours WHERE worker = 'zz')");
  ASSERT_TRUE(v2.ok()) << v2.status().message();
  EXPECT_TRUE(*v2 == Value::Int64(0));
}

TEST_F(CompiledGoldenTest, DeltaCommitsKeepCacheExact) {
  const std::string text = "SUM(worklog.hours WHERE worker = update.worker)";
  auto v1 = Both(text);
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(*v1 == Value::Int64(60));
  uint64_t builds_before = cache_.stats().cache_builds;
  Mutation m;
  m.op = Mutation::Op::kInsert;
  m.table = "worklog";
  m.row = {Value::String("t5"), Value::String("w1"), Value::Int64(7),
           Value::Timestamp(6 * kDay)};
  ASSERT_TRUE(db_.Apply(m).ok());
  cache_.OnCommitted(m, db_);
  auto v2 = Recheck();
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(*v2 == Value::Int64(67));
  // The second evaluation must ride the delta, not a rebuild.
  EXPECT_EQ(cache_.stats().cache_builds, builds_before);
  EXPECT_GE(cache_.stats().delta_applies, 1u);
}

TEST_F(CompiledGoldenTest, NonInsertCommitsInvalidate) {
  const std::string text = "SUM(worklog.hours)";
  auto v1 = Both(text);
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(*v1 == Value::Int64(100));
  Mutation del;
  del.op = Mutation::Op::kDelete;
  del.table = "worklog";
  del.key = Value::String("t4");
  ASSERT_TRUE(db_.Apply(del).ok());
  cache_.OnCommitted(del, db_);
  auto v2 = Recheck();
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(*v2 == Value::Int64(60));
  EXPECT_GE(cache_.stats().invalidations, 1u);
}

}  // namespace
}  // namespace prever::constraint
