#include <gtest/gtest.h>

#include "ledger/block.h"
#include "ledger/ledger_db.h"

namespace prever::ledger {
namespace {

// --------------------------------------------------------------- LedgerDb

TEST(LedgerDbTest, AppendAssignsDenseSequences) {
  LedgerDb ledger;
  EXPECT_EQ(ledger.Append(ToBytes("a"), 1), 0u);
  EXPECT_EQ(ledger.Append(ToBytes("b"), 2), 1u);
  EXPECT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ToString(ledger.GetEntry(0)->payload), "a");
  EXPECT_EQ(ledger.GetEntry(1)->timestamp, 2u);
  EXPECT_FALSE(ledger.GetEntry(2).ok());
}

TEST(LedgerDbTest, DigestChangesWithEveryAppend) {
  LedgerDb ledger;
  LedgerDigest prev = ledger.Digest();
  for (int i = 0; i < 10; ++i) {
    ledger.Append(ToBytes("e" + std::to_string(i)), i);
    LedgerDigest cur = ledger.Digest();
    EXPECT_NE(cur.root, prev.root);
    EXPECT_EQ(cur.size, static_cast<uint64_t>(i + 1));
    prev = cur;
  }
}

// AppendBatch must leave the ledger in exactly the state serial Appends
// would: same entries, same digests at every size, same proofs.
TEST(LedgerDbTest, AppendBatchMatchesSerialAppends) {
  std::vector<Bytes> payloads;
  std::vector<SimTime> stamps;
  for (int i = 0; i < 33; ++i) {
    payloads.push_back(ToBytes("e" + std::to_string(i)));
    stamps.push_back(static_cast<SimTime>(100 + i));
  }
  LedgerDb serial;
  for (size_t i = 0; i < payloads.size(); ++i) {
    serial.Append(payloads[i], stamps[i]);
  }
  LedgerDb batched;
  ASSERT_TRUE(batched.AppendBatch(payloads, stamps).ok());

  ASSERT_EQ(batched.size(), serial.size());
  EXPECT_EQ(batched.Digest(), serial.Digest());
  for (uint64_t n = 1; n <= batched.size(); ++n) {
    EXPECT_EQ(*batched.DigestAt(n), *serial.DigestAt(n)) << n;
  }
  for (uint64_t seq = 0; seq < batched.size(); ++seq) {
    auto entry = batched.GetEntry(seq);
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(entry->sequence, seq);
    EXPECT_EQ(entry->timestamp, stamps[seq]);
    auto proof = batched.ProveInclusion(seq, batched.size());
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(LedgerDb::VerifyInclusion(*entry, *proof, serial.Digest()));
  }
  EXPECT_TRUE(batched.Audit().ok());
}

TEST(LedgerDbTest, AppendBatchRejectsLengthMismatch) {
  LedgerDb ledger;
  EXPECT_FALSE(ledger.AppendBatch({ToBytes("a"), ToBytes("b")}, {1}).ok());
  EXPECT_EQ(ledger.size(), 0u);
}

TEST(LedgerDbTest, InclusionProofVerifies) {
  LedgerDb ledger;
  for (int i = 0; i < 20; ++i) ledger.Append(ToBytes("e" + std::to_string(i)), i);
  LedgerDigest digest = ledger.Digest();
  for (uint64_t seq = 0; seq < 20; ++seq) {
    auto proof = ledger.ProveInclusion(seq, 20);
    ASSERT_TRUE(proof.ok());
    auto entry = ledger.GetEntry(seq);
    ASSERT_TRUE(entry.ok());
    EXPECT_TRUE(LedgerDb::VerifyInclusion(*entry, *proof, digest)) << seq;
  }
}

TEST(LedgerDbTest, InclusionProofAgainstHistoricDigest) {
  LedgerDb ledger;
  for (int i = 0; i < 20; ++i) ledger.Append(ToBytes("e" + std::to_string(i)), i);
  auto digest12 = ledger.DigestAt(12);
  ASSERT_TRUE(digest12.ok());
  auto proof = ledger.ProveInclusion(5, 12);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(LedgerDb::VerifyInclusion(*ledger.GetEntry(5), *proof, *digest12));
}

TEST(LedgerDbTest, InclusionProofRejectsForgedEntry) {
  LedgerDb ledger;
  for (int i = 0; i < 10; ++i) ledger.Append(ToBytes("e" + std::to_string(i)), i);
  auto proof = ledger.ProveInclusion(3, 10);
  ASSERT_TRUE(proof.ok());
  LedgerEntry forged = *ledger.GetEntry(3);
  forged.payload = ToBytes("forged");
  EXPECT_FALSE(LedgerDb::VerifyInclusion(forged, *proof, ledger.Digest()));
}

TEST(LedgerDbTest, InclusionProofRejectsDigestMismatch) {
  LedgerDb ledger;
  for (int i = 0; i < 10; ++i) ledger.Append(ToBytes("e" + std::to_string(i)), i);
  auto proof = ledger.ProveInclusion(3, 10);
  ASSERT_TRUE(proof.ok());
  LedgerDigest wrong = ledger.Digest();
  wrong.size = 11;
  EXPECT_FALSE(LedgerDb::VerifyInclusion(*ledger.GetEntry(3), *proof, wrong));
}

TEST(LedgerDbTest, ConsistencyAcrossGrowth) {
  LedgerDb ledger;
  for (int i = 0; i < 8; ++i) ledger.Append(ToBytes("e" + std::to_string(i)), i);
  LedgerDigest old_digest = ledger.Digest();
  for (int i = 8; i < 21; ++i) ledger.Append(ToBytes("e" + std::to_string(i)), i);
  LedgerDigest new_digest = ledger.Digest();
  auto proof = ledger.ProveConsistency(8, 21);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(LedgerDb::VerifyConsistency(old_digest, new_digest, *proof));
}

TEST(LedgerDbTest, AuditDetectsTamperedEntry) {
  LedgerDb ledger;
  for (int i = 0; i < 10; ++i) ledger.Append(ToBytes("e" + std::to_string(i)), i);
  EXPECT_TRUE(ledger.Audit().ok());
  ASSERT_TRUE(ledger.TamperWithEntryForTest(4, ToBytes("evil")).ok());
  Status s = ledger.Audit();
  EXPECT_EQ(s.code(), StatusCode::kIntegrityViolation);
}

TEST(LedgerDbTest, EntryEncodeDecodeRoundTrip) {
  LedgerEntry e;
  e.sequence = 7;
  e.timestamp = 12345;
  e.payload = ToBytes("payload");
  auto decoded = LedgerEntry::Decode(e.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->sequence, 7u);
  EXPECT_EQ(decoded->timestamp, 12345u);
  EXPECT_EQ(ToString(decoded->payload), "payload");
}

// ------------------------------------------------------------- Blockchain

std::vector<Bytes> Txs(std::initializer_list<const char*> names) {
  std::vector<Bytes> out;
  for (const char* n : names) out.push_back(ToBytes(n));
  return out;
}

TEST(BlockchainTest, GenesisExists) {
  Blockchain chain;
  EXPECT_EQ(chain.height(), 0u);
  EXPECT_EQ(chain.num_blocks(), 1u);
  EXPECT_TRUE(chain.Validate().ok());
}

TEST(BlockchainTest, BuildAppendValidate) {
  Blockchain chain;
  Block b1 = chain.BuildNext(Txs({"tx1", "tx2"}), 100);
  ASSERT_TRUE(chain.Append(b1).ok());
  Block b2 = chain.BuildNext(Txs({"tx3"}), 200);
  ASSERT_TRUE(chain.Append(b2).ok());
  EXPECT_EQ(chain.height(), 2u);
  EXPECT_EQ(chain.TotalTransactions(), 3u);
  EXPECT_TRUE(chain.Validate().ok());
}

TEST(BlockchainTest, AppendRejectsWrongHeight) {
  Blockchain chain;
  Block b = chain.BuildNext(Txs({"tx"}), 100);
  b.height = 5;
  EXPECT_FALSE(chain.Append(b).ok());
}

TEST(BlockchainTest, AppendRejectsBrokenLink) {
  Blockchain chain;
  Block b = chain.BuildNext(Txs({"tx"}), 100);
  b.prev_hash[0] ^= 1;
  EXPECT_EQ(chain.Append(b).code(), StatusCode::kIntegrityViolation);
}

TEST(BlockchainTest, AppendRejectsTamperedTransactions) {
  Blockchain chain;
  Block b = chain.BuildNext(Txs({"tx"}), 100);
  b.transactions[0] = ToBytes("evil");  // tx_root now stale.
  EXPECT_EQ(chain.Append(b).code(), StatusCode::kIntegrityViolation);
}

TEST(BlockchainTest, HashCoversHeader) {
  Blockchain chain;
  Block b = chain.BuildNext(Txs({"tx"}), 100);
  Bytes h1 = b.Hash();
  b.timestamp = 101;
  EXPECT_NE(b.Hash(), h1);
}

TEST(BlockchainTest, GetBlock) {
  Blockchain chain;
  ASSERT_TRUE(chain.Append(chain.BuildNext(Txs({"a"}), 1)).ok());
  EXPECT_TRUE(chain.GetBlock(0).ok());
  EXPECT_TRUE(chain.GetBlock(1).ok());
  EXPECT_FALSE(chain.GetBlock(2).ok());
}

}  // namespace
}  // namespace prever::ledger
