#include "crypto/elgamal.h"

#include <gtest/gtest.h>

namespace prever::crypto {
namespace {

class ElGamalTest : public ::testing::Test {
 protected:
  const PedersenParams& params_ = PedersenParams::Test256();
  Drbg drbg_{uint64_t{77}};
};

TEST_F(ElGamalTest, EncryptDecryptRoundTrip) {
  ElGamal eg(params_, drbg_);
  for (int64_t m : {int64_t{0}, int64_t{1}, int64_t{40}, int64_t{999}}) {
    auto ct = eg.Encrypt(m, drbg_);
    ASSERT_TRUE(ct.ok());
    EXPECT_EQ(*eg.Decrypt(*ct, 1000), m);
  }
}

TEST_F(ElGamalTest, EncryptionIsProbabilistic) {
  ElGamal eg(params_, drbg_);
  auto c1 = eg.Encrypt(5, drbg_);
  auto c2 = eg.Encrypt(5, drbg_);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_FALSE(*c1 == *c2);
}

TEST_F(ElGamalTest, HomomorphicAddition) {
  ElGamal eg(params_, drbg_);
  auto c1 = eg.Encrypt(18, drbg_);
  auto c2 = eg.Encrypt(24, drbg_);
  ASSERT_TRUE(c1.ok() && c2.ok());
  auto sum = ElGamal::Add(params_, *c1, *c2);
  EXPECT_EQ(*eg.Decrypt(sum, 100), 42);
}

TEST_F(ElGamalTest, DecryptFailsBeyondScanBound) {
  ElGamal eg(params_, drbg_);
  auto ct = eg.Encrypt(50, drbg_);
  ASSERT_TRUE(ct.ok());
  EXPECT_FALSE(eg.Decrypt(*ct, 49).ok());
}

TEST_F(ElGamalTest, NegativePlaintextRejected) {
  ElGamal eg(params_, drbg_);
  EXPECT_FALSE(eg.Encrypt(-1, drbg_).ok());
}

TEST_F(ElGamalTest, ZeroPlaintextBoundary) {
  // m = 0 means b = y^r with no g^m factor; the dlog scan must find it even
  // with the tightest possible bound.
  ElGamal eg(params_, drbg_);
  auto ct = eg.Encrypt(0, drbg_);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(*eg.Decrypt(*ct, 0), 0);
}

TEST_F(ElGamalTest, PlaintextAtExactScanBoundDecrypts) {
  // The bound is inclusive: m == max_plaintext is the last value the
  // recovery scan tries.
  ElGamal eg(params_, drbg_);
  auto ct = eg.Encrypt(200, drbg_);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(*eg.Decrypt(*ct, 200), 200);
  EXPECT_FALSE(eg.Decrypt(*ct, 199).ok());
}

TEST_F(ElGamalTest, DiscreteLogRecovery) {
  EXPECT_EQ(*RecoverDiscreteLog(params_, BigInt(1), 10), 0);
  EXPECT_EQ(*RecoverDiscreteLog(params_, params_.g, 10), 1);
  BigInt g7 = params_.g.PowMod(BigInt(7), params_.p);
  EXPECT_EQ(*RecoverDiscreteLog(params_, g7, 10), 7);
  EXPECT_FALSE(RecoverDiscreteLog(params_, g7, 6).ok());
  EXPECT_FALSE(RecoverDiscreteLog(params_, g7, -1).ok());
}

TEST_F(ElGamalTest, DiscreteLogBsgsPathMatchesScanPath) {
  // Exercise the baby-step giant-step branch (max > 1024) at boundaries
  // and interior points, including the not-found case.
  for (int64_t m : {int64_t{0}, int64_t{1}, int64_t{1024}, int64_t{1025},
                    int64_t{31337}, int64_t{99999}, int64_t{100000}}) {
    BigInt gm = params_.g.PowMod(BigInt(m), params_.p);
    auto found = RecoverDiscreteLog(params_, gm, 100000);
    ASSERT_TRUE(found.ok()) << m;
    EXPECT_EQ(*found, m);
  }
  BigInt beyond = params_.g.PowMod(BigInt(100001), params_.p);
  EXPECT_FALSE(RecoverDiscreteLog(params_, beyond, 100000).ok());
}

class ThresholdElGamalTest : public ::testing::Test {
 protected:
  const PedersenParams& params_ = PedersenParams::Test256();
  Drbg drbg_{uint64_t{88}};
};

TEST_F(ThresholdElGamalTest, AllPartiesTogetherDecrypt) {
  ThresholdElGamal teg(params_, 4, drbg_);
  auto ct = teg.Encrypt(33, drbg_);
  ASSERT_TRUE(ct.ok());
  std::vector<BigInt> partials;
  for (size_t i = 0; i < 4; ++i) {
    partials.push_back(*teg.PartialDecrypt(i, *ct));
  }
  EXPECT_EQ(*teg.Combine(*ct, partials, 100), 33);
}

TEST_F(ThresholdElGamalTest, MissingPartyBlocksDecryption) {
  ThresholdElGamal teg(params_, 3, drbg_);
  auto ct = teg.Encrypt(5, drbg_);
  ASSERT_TRUE(ct.ok());
  std::vector<BigInt> two = {*teg.PartialDecrypt(0, *ct),
                             *teg.PartialDecrypt(1, *ct)};
  EXPECT_FALSE(teg.Combine(*ct, two, 100).ok());
}

TEST_F(ThresholdElGamalTest, ForgedPartialYieldsGarbageNotPlaintext) {
  ThresholdElGamal teg(params_, 3, drbg_);
  auto ct = teg.Encrypt(5, drbg_);
  ASSERT_TRUE(ct.ok());
  std::vector<BigInt> partials = {*teg.PartialDecrypt(0, *ct),
                                  *teg.PartialDecrypt(1, *ct),
                                  drbg_.RandomNonZeroBelow(params_.p)};
  // Combination either errors (dlog out of range) or yields a wrong value;
  // it must never silently return the true plaintext.
  auto result = teg.Combine(*ct, partials, 1000);
  if (result.ok()) {
    EXPECT_NE(*result, 5);
  }
}

TEST_F(ThresholdElGamalTest, FederatedAggregationWithoutAuthority) {
  // The RC2 dealer-free pattern: 3 platforms each encrypt their private
  // local aggregate under the JOINT key; anyone sums homomorphically; only
  // all three together can open the total — no trusted third party, and no
  // platform learns another's contribution (only the total is opened).
  ThresholdElGamal teg(params_, 3, drbg_);
  int64_t locals[3] = {18, 15, 6};
  auto total_ct = teg.Encrypt(0, drbg_);
  ASSERT_TRUE(total_ct.ok());
  for (int64_t local : locals) {
    auto ct = teg.Encrypt(local, drbg_);
    ASSERT_TRUE(ct.ok());
    *total_ct = ThresholdElGamal::Add(params_, *total_ct, *ct);
  }
  std::vector<BigInt> partials;
  for (size_t i = 0; i < 3; ++i) {
    partials.push_back(*teg.PartialDecrypt(i, *total_ct));
  }
  EXPECT_EQ(*teg.Combine(*total_ct, partials, 200), 39);
}

TEST_F(ThresholdElGamalTest, PartialDecryptBoundsChecked) {
  ThresholdElGamal teg(params_, 2, drbg_);
  auto ct = teg.Encrypt(1, drbg_);
  ASSERT_TRUE(ct.ok());
  EXPECT_FALSE(teg.PartialDecrypt(2, *ct).ok());
}

}  // namespace
}  // namespace prever::crypto
