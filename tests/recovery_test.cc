// Unit tests for the durable-checkpoint and commit-journal layer
// (src/recovery): CRC-framed checkpoint round-trips, corrupt-final
// quarantine + fallback to the previous checkpoint, database image
// round-trips, journal append/recover/truncate, and ledger suffix replay.
// The concurrent state-transfer test at the bottom runs under the TSan
// stage of scripts/check.sh.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/sim_clock.h"
#include "ledger/ledger_db.h"
#include "recovery/checkpoint.h"
#include "recovery/journal.h"
#include "storage/database.h"

namespace prever::recovery {
namespace {

namespace fs = std::filesystem;
using storage::Mutation;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "prever_recovery_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
};

ledger::LedgerDb MakeLedger(size_t n, uint64_t salt = 0) {
  ledger::LedgerDb ledger;
  for (size_t i = 0; i < n; ++i) {
    ledger.Append(ToBytes("entry-" + std::to_string(salt) + "-" +
                          std::to_string(i)),
                  static_cast<SimTime>(i + 1));
  }
  return ledger;
}

/// Encoded LedgerEntry records for entries [from, ledger.size()).
std::vector<Bytes> EncodedSuffix(const ledger::LedgerDb& ledger,
                                 uint64_t from) {
  std::vector<Bytes> out;
  for (uint64_t seq = from; seq < ledger.size(); ++seq) {
    auto entry = ledger.GetEntry(seq);
    EXPECT_TRUE(entry.ok());
    out.push_back(entry->Encode());
  }
  return out;
}

void FlipByteInNewest(const CheckpointStore& store) {
  auto files = store.ListFiles();
  ASSERT_FALSE(files.empty());
  std::string path = store.dir() + "/" + files.back();
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  // Flip a byte in the middle: lands in a record body, so the CRC check
  // (not the frame parser) must catch it.
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, size / 2, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(c ^ 0x5a, f);
  std::fclose(f);
}

TEST_F(RecoveryTest, CheckpointRoundTrip) {
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.Init().ok());

  ledger::LedgerDb ledger = MakeLedger(5);
  storage::Database db;
  ASSERT_TRUE(
      db.CreateTable("t", Schema({{"id", ValueType::kString},
                                  {"n", ValueType::kInt64}}))
          .ok());
  Mutation m;
  m.op = Mutation::Op::kInsert;
  m.table = "t";
  m.row = {Value::String("a"), Value::Int64(7)};
  ASSERT_TRUE(db.Apply(m).ok());

  CheckpointContents contents;
  contents.ledger = &ledger;
  contents.consensus_seq = 42;
  contents.spent_serials = {ToBytes("s1"), ToBytes("s2")};
  contents.db_image = EncodeDatabaseImage(db);
  contents.app_state = ToBytes("opaque-consensus-blob");
  contents.db_version = db.version();
  contents.catalog_revision = 3;
  auto id = store.Save(contents);
  ASSERT_TRUE(id.ok());

  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->manifest.checkpoint_id, *id);
  EXPECT_EQ(loaded->manifest.consensus_seq, 42u);
  EXPECT_EQ(loaded->manifest.ledger_size, 5u);
  EXPECT_EQ(loaded->manifest.db_version, db.version());
  EXPECT_EQ(loaded->manifest.catalog_revision, 3u);
  // The rebuilt ledger is digest-identical to the source.
  EXPECT_TRUE(loaded->ledger.Digest() == ledger.Digest());
  EXPECT_EQ(loaded->manifest.ledger_root, ledger.Digest().root);
  EXPECT_EQ(loaded->spent_serials,
            (std::vector<Bytes>{ToBytes("s1"), ToBytes("s2")}));
  EXPECT_EQ(loaded->app_state, ToBytes("opaque-consensus-blob"));

  storage::Database restored;
  auto version = RestoreDatabaseImage(loaded->db_image, &restored);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, db.version());
  auto table = restored.GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->size(), 1u);
}

TEST_F(RecoveryTest, LoadLatestWithoutCheckpointsIsNotFound) {
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.Init().ok());
  EXPECT_EQ(store.LoadLatest().status().code(), StatusCode::kNotFound);
}

TEST_F(RecoveryTest, CorruptFinalQuarantinedWithFallbackToPrevious) {
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.Init().ok());

  // Checkpoint A at 3 entries, checkpoint B at 6 — then corrupt B.
  ledger::LedgerDb ledger = MakeLedger(3);
  CheckpointContents a;
  a.ledger = &ledger;
  a.consensus_seq = 3;
  ASSERT_TRUE(store.Save(a).ok());
  for (size_t i = 3; i < 6; ++i) {
    ledger.Append(ToBytes("entry-0-" + std::to_string(i)),
                  static_cast<SimTime>(i + 1));
  }
  CheckpointContents b;
  b.ledger = &ledger;
  b.consensus_seq = 6;
  ASSERT_TRUE(store.Save(b).ok());

  FlipByteInNewest(store);

  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  // The corrupt newest was quarantined; the previous checkpoint serves.
  EXPECT_EQ(loaded->manifest.consensus_seq, 3u);
  EXPECT_EQ(loaded->ledger.size(), 3u);
  EXPECT_EQ(store.quarantined(), 1u);
  EXPECT_EQ(store.ListFiles().size(), 1u);
  size_t quarantined_files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().string().find(".quarantined") != std::string::npos) {
      ++quarantined_files;
    }
  }
  EXPECT_EQ(quarantined_files, 1u);

  // The journal suffix covers the difference: a LONGER replay (from seq 3
  // instead of 6) lands on the same final ledger state.
  auto appended = ReplayLedgerSuffix(EncodedSuffix(ledger, 3), &loaded->ledger);
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(*appended, 3u);
  EXPECT_TRUE(loaded->ledger.Digest() == ledger.Digest());
}

TEST_F(RecoveryTest, TruncatedFinalQuarantinedWithFallbackToPrevious) {
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.Init().ok());
  ledger::LedgerDb ledger = MakeLedger(2);
  CheckpointContents a;
  a.ledger = &ledger;
  a.consensus_seq = 2;
  ASSERT_TRUE(store.Save(a).ok());
  ledger.Append(ToBytes("entry-0-2"), 3);
  CheckpointContents b;
  b.ledger = &ledger;
  b.consensus_seq = 3;
  ASSERT_TRUE(store.Save(b).ok());

  // Truncate the newest file's tail — a crash mid-write of the final file
  // (e.g. a torn rename target on a non-atomic filesystem).
  auto files = store.ListFiles();
  std::string path = store.dir() + "/" + files.back();
  fs::resize_file(path, fs::file_size(path) - 5);

  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->manifest.consensus_seq, 2u);
  EXPECT_EQ(store.quarantined(), 1u);

  // With EVERY checkpoint corrupt, recovery reports NotFound and callers
  // fall back to full journal replay.
  FlipByteInNewest(store);
  EXPECT_EQ(store.LoadLatest().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.quarantined(), 2u);
}

TEST_F(RecoveryTest, GarbageCollectKeepsNewest) {
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.Init().ok());
  ledger::LedgerDb ledger = MakeLedger(1);
  for (int i = 0; i < 4; ++i) {
    CheckpointContents c;
    c.ledger = &ledger;
    c.consensus_seq = static_cast<uint64_t>(i + 1);
    ASSERT_TRUE(store.Save(c).ok());
  }
  EXPECT_EQ(store.ListFiles().size(), 4u);
  uint64_t reclaimed = store.GarbageCollect(2);
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(store.ListFiles().size(), 2u);
  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->manifest.consensus_seq, 4u);
}

TEST_F(RecoveryTest, DatabaseImageRoundTripMultipleTables) {
  storage::Database db;
  ASSERT_TRUE(db.CreateTable("x", Schema({{"id", ValueType::kString},
                                          {"v", ValueType::kInt64}}))
                  .ok());
  ASSERT_TRUE(db.CreateTable("y", Schema({{"id", ValueType::kString},
                                          {"at", ValueType::kTimestamp}}))
                  .ok());
  for (int i = 0; i < 5; ++i) {
    Mutation m;
    m.op = Mutation::Op::kInsert;
    m.table = "x";
    m.row = {Value::String("k" + std::to_string(i)), Value::Int64(i * 10)};
    ASSERT_TRUE(db.Apply(m).ok());
  }
  Mutation m;
  m.op = Mutation::Op::kInsert;
  m.table = "y";
  m.row = {Value::String("t"), Value::Timestamp(kHour)};
  ASSERT_TRUE(db.Apply(m).ok());

  Bytes image = EncodeDatabaseImage(db);
  storage::Database restored;
  auto version = RestoreDatabaseImage(image, &restored);
  ASSERT_TRUE(version.ok()) << version.status().message();
  EXPECT_EQ(*version, db.version());
  EXPECT_EQ(restored.TableNames(), db.TableNames());
  auto x = restored.GetTable("x");
  ASSERT_TRUE(x.ok());
  EXPECT_EQ((*x)->size(), 5u);
  // Restored rows are value-identical (spot check one).
  (*x)->Scan([&](const storage::Row& row) {
    auto id = row[0].AsString();
    auto v = row[1].AsInt64();
    EXPECT_TRUE(id.ok() && v.ok());
    if (id.ok() && *id == "k3") EXPECT_EQ(*v, 30);
    return true;
  });

  // Restoring into a database that already has a table of the same name
  // must fail instead of merging.
  storage::Database occupied;
  ASSERT_TRUE(occupied.CreateTable("x", Schema({{"id", ValueType::kString}}))
                  .ok());
  EXPECT_FALSE(RestoreDatabaseImage(image, &occupied).ok());
}

TEST_F(RecoveryTest, JournalAppendRecoverTruncate) {
  ASSERT_TRUE(fs::create_directories(dir_));
  std::string path = dir_ + "/journal.wal";
  CommitJournal journal;
  ASSERT_TRUE(journal.Open(path).ok());
  for (uint64_t pos = 1; pos <= 4; ++pos) {
    JournalEvent e;
    e.position = pos;
    e.batch_id = 100 + pos;
    e.entries = {ToBytes("p" + std::to_string(pos))};
    ASSERT_TRUE(journal.Append(e).ok());
  }

  bool truncated = false;
  auto events = CommitJournal::Recover(path, &truncated);
  ASSERT_TRUE(events.ok());
  EXPECT_FALSE(truncated);
  ASSERT_EQ(events->size(), 4u);
  EXPECT_EQ((*events)[2].position, 3u);
  EXPECT_EQ((*events)[2].batch_id, 103u);
  EXPECT_EQ((*events)[2].entries,
            (std::vector<Bytes>{ToBytes("p3")}));

  // Torn tail: the last record loses bytes; recovery keeps the clean prefix.
  journal.Close();
  fs::resize_file(path, fs::file_size(path) - 3);
  events = CommitJournal::Recover(path, &truncated);
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(truncated);
  ASSERT_EQ(events->size(), 3u);

  // TruncateBelow drops the checkpoint-covered prefix and reclaims bytes.
  ASSERT_TRUE(journal.Open(path).ok());
  auto reclaimed = journal.TruncateBelow(2);
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_GT(*reclaimed, 0u);
  events = CommitJournal::Recover(path, &truncated);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ((*events)[0].position, 3u);

  // A missing file is an empty journal, not an error.
  auto empty = CommitJournal::Recover(dir_ + "/nonexistent.wal", &truncated);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_F(RecoveryTest, ReplayLedgerSuffixSkipsCoveredAndRejectsGaps) {
  ledger::LedgerDb source = MakeLedger(4);
  // Restored checkpoint covers the first 2 entries.
  ledger::LedgerDb restored = MakeLedger(2);

  // Records overlap the checkpoint (0..3): covered entries skip, the rest
  // extend, final state digest-identical.
  auto appended = ReplayLedgerSuffix(EncodedSuffix(source, 0), &restored);
  ASSERT_TRUE(appended.ok()) << appended.status().message();
  EXPECT_EQ(*appended, 2u);
  EXPECT_TRUE(restored.Digest() == source.Digest());

  // A gap (records starting past the ledger's size) is Corruption.
  ledger::LedgerDb more = MakeLedger(6);
  auto gap = ReplayLedgerSuffix(EncodedSuffix(more, 5), &restored);
  EXPECT_EQ(gap.status().code(), StatusCode::kCorruption);
}

// Concurrent state transfer: replicas encode, ship, and rebuild state in
// parallel — per-thread checkpoint stores and ledgers, with the SOURCE
// ledger and database image shared read-only across every thread. Runs
// under the TSan stage of scripts/check.sh.
TEST_F(RecoveryTest, ConcurrentStateTransferRebuildsIdenticalState) {
  ledger::LedgerDb source = MakeLedger(64);
  storage::Database db;
  ASSERT_TRUE(db.CreateTable("t", Schema({{"id", ValueType::kString},
                                          {"n", ValueType::kInt64}}))
                  .ok());
  for (int i = 0; i < 16; ++i) {
    Mutation m;
    m.op = Mutation::Op::kInsert;
    m.table = "t";
    m.row = {Value::String("k" + std::to_string(i)), Value::Int64(i)};
    ASSERT_TRUE(db.Apply(m).ok());
  }
  const Bytes image = EncodeDatabaseImage(db);
  const ledger::LedgerDigest want = source.Digest();

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<std::string> errors(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto fail = [&](const std::string& why) { errors[t] = why; };
      CheckpointStore store(dir_ + "/r" + std::to_string(t));
      if (!store.Init().ok()) return fail("init");
      // Checkpoint the shared source at 32 entries, replay the rest from
      // the "journal" — the state-transfer shape: snapshot + suffix.
      ledger::LedgerDb prefix;
      for (uint64_t seq = 0; seq < 32; ++seq) {
        auto entry = source.GetEntry(seq);
        if (!entry.ok()) return fail("get entry");
        prefix.Append(entry->payload, entry->timestamp);
      }
      CheckpointContents contents;
      contents.ledger = &prefix;
      contents.consensus_seq = 32;
      contents.db_image = image;
      if (!store.Save(contents).ok()) return fail("save");
      auto loaded = store.LoadLatest();
      if (!loaded.ok()) return fail("load");
      std::vector<Bytes> suffix;
      for (uint64_t seq = 32; seq < source.size(); ++seq) {
        auto entry = source.GetEntry(seq);
        if (!entry.ok()) return fail("get suffix entry");
        suffix.push_back(entry->Encode());
      }
      auto appended = ReplayLedgerSuffix(suffix, &loaded->ledger);
      if (!appended.ok() || *appended != 32) return fail("replay");
      if (!(loaded->ledger.Digest() == want)) return fail("digest mismatch");
      storage::Database rebuilt;
      if (!RestoreDatabaseImage(loaded->db_image, &rebuilt).ok()) {
        return fail("restore image");
      }
      auto table = rebuilt.GetTable("t");
      if (!table.ok() || (*table)->size() != 16) return fail("table rows");
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(errors[t], "") << "thread " << t;
  }
}

}  // namespace
}  // namespace prever::recovery
