#include "crypto/montgomery.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/drbg.h"
#include "crypto/prime.h"

namespace prever::crypto {
namespace {

TEST(MontgomeryTest, RejectsBadModuli) {
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(8)).ok());   // Even.
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(1)).ok());   // Too small.
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(0)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(-7)).ok());  // Negative.
  EXPECT_TRUE(MontgomeryContext::Create(BigInt(7)).ok());
}

TEST(MontgomeryTest, DomainRoundTrip) {
  auto m = *BigInt::FromDecimal("1000000000000000000000000000057");
  auto ctx = MontgomeryContext::Create(m);
  ASSERT_TRUE(ctx.ok());
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{42}, int64_t{1} << 60}) {
    BigInt x(v);
    EXPECT_EQ(ctx->FromMontgomery(ctx->ToMontgomery(x)), x) << v;
  }
}

TEST(MontgomeryTest, MulMontMatchesMulMod) {
  prever::Rng rng(3);
  auto m = *BigInt::FromDecimal("123456789123456789123456789123456789123");
  auto ctx = MontgomeryContext::Create(m);
  ASSERT_TRUE(ctx.ok());
  for (int i = 0; i < 100; ++i) {
    BigInt a = BigInt::FromBytes(rng.NextBytes(16)).Mod(m);
    BigInt b = BigInt::FromBytes(rng.NextBytes(16)).Mod(m);
    BigInt got = ctx->FromMontgomery(
        ctx->MulMont(ctx->ToMontgomery(a), ctx->ToMontgomery(b)));
    EXPECT_EQ(got, a.MulMod(b, m));
  }
}

// Property: Montgomery PowMod agrees with the classic square-and-multiply
// over random moduli of many limb widths.
class MontgomeryPowProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MontgomeryPowProperty, MatchesClassicPowMod) {
  prever::Rng rng(GetParam());
  for (int iter = 0; iter < 10; ++iter) {
    size_t mod_bytes = 4 + rng.NextBelow(48);
    BigInt m = BigInt::FromBytes(rng.NextBytes(mod_bytes));
    if (m.IsEven()) m = m + BigInt(1);
    if (m <= BigInt(1)) continue;
    BigInt base = BigInt::FromBytes(rng.NextBytes(mod_bytes + 4));
    BigInt exp = BigInt::FromBytes(rng.NextBytes(8));
    auto ctx = MontgomeryContext::Create(m);
    ASSERT_TRUE(ctx.ok());
    BigInt fast = ctx->PowMod(base, exp);
    // Classic reference: square-and-multiply with MulMod.
    BigInt b = base.Mod(m);
    BigInt ref(1);
    for (size_t i = exp.BitLength(); i-- > 0;) {
      ref = ref.MulMod(ref, m);
      if (exp.Bit(i)) ref = ref.MulMod(b, m);
    }
    EXPECT_EQ(fast, ref) << "m=" << m.ToDecimalString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MontgomeryPowProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

TEST(MontgomeryTest, FermatWithLargePrime) {
  Drbg drbg(uint64_t{5});
  BigInt p = GeneratePrime(256, drbg);
  auto ctx = MontgomeryContext::Create(p);
  ASSERT_TRUE(ctx.ok());
  BigInt a = drbg.RandomBelow(p - BigInt(2)) + BigInt(2);
  EXPECT_EQ(ctx->PowMod(a, p - BigInt(1)), BigInt(1));
}

TEST(MontgomeryTest, ZeroAndOneExponents) {
  auto m = *BigInt::FromDecimal("99999999999999999999999999977");
  auto ctx = MontgomeryContext::Create(m);
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ(ctx->PowMod(BigInt(12345), BigInt(0)), BigInt(1));
  EXPECT_EQ(ctx->PowMod(BigInt(12345), BigInt(1)), BigInt(12345));
  EXPECT_EQ(ctx->PowMod(BigInt(0), BigInt(5)), BigInt(0));
}

}  // namespace
}  // namespace prever::crypto
