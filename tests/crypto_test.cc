#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/paillier.h"
#include "crypto/pedersen.h"
#include "crypto/prime.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "crypto/shamir.h"

namespace prever::crypto {
namespace {

// ---------------------------------------------------------------- SHA-256

TEST(Sha256Test, Fips180Vectors) {
  // NIST FIPS 180-4 test vectors.
  EXPECT_EQ(HexEncode(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(HexEncode(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      HexEncode(Sha256::Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(HexEncode(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Bytes data = ToBytes("the quick brown fox jumps over the lazy dog");
  for (size_t split = 0; split <= data.size(); ++split) {
    Sha256 h;
    h.Update(data.data(), split);
    h.Update(data.data() + split, data.size() - split);
    EXPECT_EQ(h.Finish(), Sha256::Hash(data)) << split;
  }
}

// ------------------------------------------------------------------ HMAC

TEST(HmacTest, Rfc4231Vector1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(HexEncode(HmacSha256(key, ToBytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Vector2) {
  EXPECT_EQ(
      HexEncode(HmacSha256(ToBytes("Jefe"),
                           ToBytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  Bytes key(131, 0xaa);
  EXPECT_EQ(HexEncode(HmacSha256(
                key, ToBytes("Test Using Larger Than Block-Size Key - "
                             "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HkdfTest, ProducesRequestedLengthAndIsDeterministic) {
  Bytes out1 = Hkdf(ToBytes("salt"), ToBytes("ikm"), ToBytes("info"), 77);
  Bytes out2 = Hkdf(ToBytes("salt"), ToBytes("ikm"), ToBytes("info"), 77);
  EXPECT_EQ(out1.size(), 77u);
  EXPECT_EQ(out1, out2);
  Bytes out3 = Hkdf(ToBytes("salt"), ToBytes("ikm"), ToBytes("other"), 77);
  EXPECT_NE(out1, out3);
}

// ------------------------------------------------------------------ DRBG

TEST(DrbgTest, DeterministicForSeed) {
  Drbg a(uint64_t{42}), b(uint64_t{42});
  EXPECT_EQ(a.Generate(64), b.Generate(64));
}

TEST(DrbgTest, DifferentSeedsDiverge) {
  Drbg a(uint64_t{1}), b(uint64_t{2});
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(DrbgTest, ReseedChangesStream) {
  Drbg a(uint64_t{42}), b(uint64_t{42});
  b.Reseed(ToBytes("extra entropy"));
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(DrbgTest, RandomBitsExactWidth) {
  Drbg d(uint64_t{7});
  for (size_t bits : {1u, 7u, 8u, 9u, 64u, 127u, 256u}) {
    EXPECT_EQ(d.RandomBits(bits).BitLength(), bits);
  }
}

TEST(DrbgTest, RandomBelowInRange) {
  Drbg d(uint64_t{9});
  BigInt bound(1000);
  for (int i = 0; i < 200; ++i) {
    BigInt v = d.RandomBelow(bound);
    EXPECT_LT(v, bound);
    EXPECT_FALSE(v.IsNegative());
  }
}

TEST(DrbgTest, RandomNonZeroBelowNeverZero) {
  Drbg d(uint64_t{11});
  BigInt bound(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(d.RandomNonZeroBelow(bound), BigInt(1));
  }
}

// ----------------------------------------------------------------- Primes

TEST(PrimeTest, KnownPrimesAndComposites) {
  Drbg d(uint64_t{13});
  EXPECT_TRUE(IsProbablePrime(BigInt(2), d));
  EXPECT_TRUE(IsProbablePrime(BigInt(3), d));
  EXPECT_TRUE(IsProbablePrime(BigInt(65537), d));
  EXPECT_TRUE(IsProbablePrime(*BigInt::FromDecimal("1000000007"), d));
  EXPECT_FALSE(IsProbablePrime(BigInt(1), d));
  EXPECT_FALSE(IsProbablePrime(BigInt(561), d));    // Carmichael number.
  EXPECT_FALSE(IsProbablePrime(BigInt(41041), d));  // Carmichael number.
  EXPECT_FALSE(IsProbablePrime(BigInt(1) << 64, d));
}

TEST(PrimeTest, GeneratedPrimeHasExactBitsAndIsOdd) {
  Drbg d(uint64_t{17});
  for (size_t bits : {64u, 128u, 256u}) {
    BigInt p = GeneratePrime(bits, d);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(p.IsOdd());
    EXPECT_TRUE(IsProbablePrime(p, d));
  }
}

TEST(PrimeTest, DistinctPrimeAvoidsGiven) {
  Drbg d(uint64_t{19});
  BigInt p = GeneratePrime(64, d);
  BigInt q = GenerateDistinctPrime(64, p, d);
  EXPECT_NE(p, q);
}

// -------------------------------------------------------------------- RSA

class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    drbg_ = new Drbg(uint64_t{21});
    key_ = new RsaKeyPair(RsaGenerateKey(512, *drbg_).value());
  }
  static Drbg* drbg_;
  static RsaKeyPair* key_;
};
Drbg* RsaTest::drbg_ = nullptr;
RsaKeyPair* RsaTest::key_ = nullptr;

TEST_F(RsaTest, SignVerifyRoundTrip) {
  Bytes msg = ToBytes("update: worker w1 completed task t9");
  Bytes sig = RsaSign(*key_, msg);
  EXPECT_TRUE(RsaVerify(key_->pub, msg, sig));
}

TEST_F(RsaTest, VerifyRejectsTamperedMessage) {
  Bytes msg = ToBytes("original");
  Bytes sig = RsaSign(*key_, msg);
  EXPECT_FALSE(RsaVerify(key_->pub, ToBytes("tampered"), sig));
}

TEST_F(RsaTest, VerifyRejectsTamperedSignature) {
  Bytes msg = ToBytes("msg");
  Bytes sig = RsaSign(*key_, msg);
  sig[0] ^= 1;
  EXPECT_FALSE(RsaVerify(key_->pub, msg, sig));
}

TEST_F(RsaTest, VerifyRejectsWrongLengthSignature) {
  Bytes msg = ToBytes("msg");
  Bytes sig = RsaSign(*key_, msg);
  sig.pop_back();
  EXPECT_FALSE(RsaVerify(key_->pub, msg, sig));
}

TEST_F(RsaTest, BlindSignatureVerifiesLikeDirectSignature) {
  Bytes token = ToBytes("token-serial-123456");
  auto blinded = RsaBlind(key_->pub, token, *drbg_);
  ASSERT_TRUE(blinded.ok());
  // The signer sees only the blinded value.
  EXPECT_NE(blinded->blinded_message, RsaFdh(key_->pub, token));
  BigInt blind_sig = RsaBlindSign(*key_, blinded->blinded_message);
  Bytes sig = RsaUnblind(key_->pub, blind_sig, blinded->unblinder);
  EXPECT_TRUE(RsaVerify(key_->pub, token, sig));
  // And it is byte-identical to a direct signature (deterministic FDH).
  EXPECT_EQ(sig, RsaSign(*key_, token));
}

TEST_F(RsaTest, BlindingIsRandomized) {
  Bytes token = ToBytes("token");
  auto b1 = RsaBlind(key_->pub, token, *drbg_);
  auto b2 = RsaBlind(key_->pub, token, *drbg_);
  ASSERT_TRUE(b1.ok() && b2.ok());
  // Two blindings of the same token look unrelated to the signer: this is
  // what makes issued tokens unlinkable to spent tokens (Separ §5).
  EXPECT_NE(b1->blinded_message, b2->blinded_message);
}

TEST(RsaKeygenTest, RejectsBadModulusBits) {
  Drbg d(uint64_t{23});
  EXPECT_FALSE(RsaGenerateKey(100, d).ok());  // Below minimum.
  EXPECT_FALSE(RsaGenerateKey(513, d).ok());  // Odd.
}

// --------------------------------------------------------------- Paillier

class PaillierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    drbg_ = new Drbg(uint64_t{31});
    key_ = new PaillierKeyPair(PaillierGenerateKey(512, *drbg_).value());
  }
  static Drbg* drbg_;
  static PaillierKeyPair* key_;
};
Drbg* PaillierTest::drbg_ = nullptr;
PaillierKeyPair* PaillierTest::key_ = nullptr;

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  for (int64_t m : {int64_t{0}, int64_t{1}, int64_t{40}, int64_t{123456789}}) {
    auto ct = PaillierEncrypt(key_->pub, BigInt(m), *drbg_);
    ASSERT_TRUE(ct.ok());
    EXPECT_EQ(*PaillierDecrypt(*key_, *ct), BigInt(m));
  }
}

TEST_F(PaillierTest, SignedRoundTrip) {
  for (int64_t m : {int64_t{0}, int64_t{-1}, int64_t{-40}, int64_t{7},
                    int64_t{-123456789}}) {
    auto ct = PaillierEncryptSigned(key_->pub, m, *drbg_);
    ASSERT_TRUE(ct.ok());
    EXPECT_EQ(*PaillierDecryptSigned(*key_, *ct), m);
  }
}

TEST_F(PaillierTest, EncryptionIsProbabilistic) {
  auto c1 = PaillierEncrypt(key_->pub, BigInt(5), *drbg_);
  auto c2 = PaillierEncrypt(key_->pub, BigInt(5), *drbg_);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(c1->c, c2->c);  // Same plaintext, different ciphertexts.
}

TEST_F(PaillierTest, HomomorphicAdd) {
  auto ca = PaillierEncrypt(key_->pub, BigInt(17), *drbg_);
  auto cb = PaillierEncrypt(key_->pub, BigInt(25), *drbg_);
  ASSERT_TRUE(ca.ok() && cb.ok());
  auto sum = PaillierAdd(key_->pub, *ca, *cb);
  EXPECT_EQ(*PaillierDecrypt(*key_, sum), BigInt(42));
}

TEST_F(PaillierTest, AddPlain) {
  auto ca = PaillierEncrypt(key_->pub, BigInt(30), *drbg_);
  ASSERT_TRUE(ca.ok());
  auto sum = PaillierAddPlain(key_->pub, *ca, BigInt(12));
  EXPECT_EQ(*PaillierDecrypt(*key_, sum), BigInt(42));
}

TEST_F(PaillierTest, AddPlainNegative) {
  auto ca = PaillierEncrypt(key_->pub, BigInt(50), *drbg_);
  ASSERT_TRUE(ca.ok());
  auto sum = PaillierAddPlain(key_->pub, *ca, BigInt(-8));
  EXPECT_EQ(*PaillierDecryptSigned(*key_, sum), 42);
}

TEST_F(PaillierTest, MulPlain) {
  auto ca = PaillierEncrypt(key_->pub, BigInt(6), *drbg_);
  ASSERT_TRUE(ca.ok());
  auto prod = PaillierMulPlain(key_->pub, *ca, BigInt(7));
  EXPECT_EQ(*PaillierDecrypt(*key_, prod), BigInt(42));
}

TEST_F(PaillierTest, RerandomizePreservesPlaintextChangesCiphertext) {
  auto ct = PaillierEncrypt(key_->pub, BigInt(99), *drbg_);
  ASSERT_TRUE(ct.ok());
  auto rr = PaillierRerandomize(key_->pub, *ct, *drbg_);
  ASSERT_TRUE(rr.ok());
  EXPECT_NE(rr->c, ct->c);
  EXPECT_EQ(*PaillierDecrypt(*key_, *rr), BigInt(99));
}

TEST_F(PaillierTest, RejectsOutOfRangePlaintext) {
  EXPECT_FALSE(PaillierEncrypt(key_->pub, key_->pub.n, *drbg_).ok());
  EXPECT_FALSE(PaillierEncrypt(key_->pub, BigInt(-1), *drbg_).ok());
}

TEST_F(PaillierTest, BoundaryPlaintextNMinusOne) {
  // n - 1 is the largest valid plaintext and the signed embedding of -1.
  BigInt n_minus_1 = key_->pub.n - BigInt(1);
  auto ct = PaillierEncrypt(key_->pub, n_minus_1, *drbg_);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(*PaillierDecrypt(*key_, *ct), n_minus_1);
  EXPECT_EQ(*PaillierDecryptSigned(*key_, *ct), -1);
}

TEST_F(PaillierTest, HomomorphicAddWrapsAtModulus) {
  // Enc(n-1) + Enc(1) must wrap to Enc(0): plaintexts live in Z_n.
  auto cmax = PaillierEncrypt(key_->pub, key_->pub.n - BigInt(1), *drbg_);
  auto cone = PaillierEncrypt(key_->pub, BigInt(1), *drbg_);
  ASSERT_TRUE(cmax.ok() && cone.ok());
  auto sum = PaillierAdd(key_->pub, *cmax, *cone);
  EXPECT_EQ(*PaillierDecrypt(*key_, sum), BigInt(0));
}

TEST_F(PaillierTest, RejectsModulusSizedAndLargerPlaintexts) {
  // Everything from n upward is out of range, including n^2-sized values a
  // confused caller might pass after mixing up plaintext and ciphertext
  // spaces.
  EXPECT_FALSE(PaillierEncrypt(key_->pub, key_->pub.n + BigInt(1), *drbg_).ok());
  EXPECT_FALSE(PaillierEncrypt(key_->pub, key_->pub.n2, *drbg_).ok());
}

TEST_F(PaillierTest, RejectsOutOfRangeCiphertext) {
  EXPECT_FALSE(PaillierDecrypt(*key_, PaillierCiphertext{key_->pub.n2}).ok());
  EXPECT_FALSE(PaillierDecrypt(*key_, PaillierCiphertext{BigInt(0)}).ok());
}

// Property: sum of k random encrypted values decrypts to the plaintext sum —
// exactly the linear-aggregate constraint path of the RC1 engine.
class PaillierLinearityProperty : public ::testing::TestWithParam<int> {};

TEST_P(PaillierLinearityProperty, EncryptedAggregatesMatchPlain) {
  Drbg drbg(static_cast<uint64_t>(100 + GetParam()));
  auto key = PaillierGenerateKey(256, drbg).value();
  prever::Rng rng(GetParam());
  int64_t expected = 0;
  auto acc = PaillierEncrypt(key.pub, BigInt(0), drbg).value();
  for (int i = 0; i < 10; ++i) {
    int64_t v = rng.NextInRange(0, 1000);
    int64_t w = rng.NextInRange(1, 5);
    expected += v * w;
    auto ct = PaillierEncrypt(key.pub, BigInt(v), drbg).value();
    acc = PaillierAdd(key.pub, acc, PaillierMulPlain(key.pub, ct, BigInt(w)));
  }
  EXPECT_EQ(*PaillierDecryptSigned(key, acc), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaillierLinearityProperty,
                         ::testing::Values(1, 2, 3, 4));

// --------------------------------------------------------------- Pedersen

TEST(PedersenTest, ParamsAreWellFormed) {
  const auto& params = PedersenParams::Test256();
  Drbg d(uint64_t{1});
  EXPECT_TRUE(IsProbablePrime(params.p, d));
  EXPECT_TRUE(IsProbablePrime(params.q, d));
  EXPECT_EQ(params.p, params.q * BigInt(2) + BigInt(1));
  // Generators are in the order-q subgroup.
  EXPECT_EQ(params.g.PowMod(params.q, params.p), BigInt(1));
  EXPECT_EQ(params.h.PowMod(params.q, params.p), BigInt(1));
  EXPECT_NE(params.g, params.h);
}

TEST(PedersenTest, Standard1536GroupOrderChecks) {
  const auto& params = PedersenParams::Standard1536();
  EXPECT_EQ(params.p.BitLength(), 1536u);
  EXPECT_EQ(params.g.PowMod(params.q, params.p), BigInt(1));
  EXPECT_EQ(params.h.PowMod(params.q, params.p), BigInt(1));
}

TEST(PedersenTest, CommitVerifyRoundTrip) {
  const auto& params = PedersenParams::Test256();
  Drbg drbg(uint64_t{41});
  auto opening = PedersenCommitFresh(params, BigInt(40), drbg);
  EXPECT_TRUE(PedersenVerify(params, opening.commitment, BigInt(40),
                             opening.randomness));
  EXPECT_FALSE(PedersenVerify(params, opening.commitment, BigInt(41),
                              opening.randomness));
}

TEST(PedersenTest, HidingDifferentRandomness) {
  const auto& params = PedersenParams::Test256();
  Drbg drbg(uint64_t{43});
  auto o1 = PedersenCommitFresh(params, BigInt(5), drbg);
  auto o2 = PedersenCommitFresh(params, BigInt(5), drbg);
  EXPECT_NE(o1.commitment.c, o2.commitment.c);
}

TEST(PedersenTest, HomomorphicAdd) {
  const auto& params = PedersenParams::Test256();
  Drbg drbg(uint64_t{47});
  auto o1 = PedersenCommitFresh(params, BigInt(30), drbg);
  auto o2 = PedersenCommitFresh(params, BigInt(12), drbg);
  auto sum = PedersenAdd(params, o1.commitment, o2.commitment);
  BigInt r = o1.randomness.AddMod(o2.randomness, params.q);
  EXPECT_TRUE(PedersenVerify(params, sum, BigInt(42), r));
}

TEST(PedersenTest, Scale) {
  const auto& params = PedersenParams::Test256();
  Drbg drbg(uint64_t{53});
  auto o = PedersenCommitFresh(params, BigInt(6), drbg);
  auto scaled = PedersenScale(params, o.commitment, BigInt(7));
  BigInt r = o.randomness.MulMod(BigInt(7), params.q);
  EXPECT_TRUE(PedersenVerify(params, scaled, BigInt(42), r));
}

// ----------------------------------------------------------------- Shamir

TEST(Field61Test, BasicOps) {
  EXPECT_EQ(Field61::Add(Field61::kPrime - 1, 1), 0u);
  EXPECT_EQ(Field61::Sub(0, 1), Field61::kPrime - 1);
  EXPECT_EQ(Field61::Mul(3, 5), 15u);
  EXPECT_EQ(Field61::Pow(2, 61), 1u);  // 2^61 = p + 1 ≡ 1 (mod p).
}

TEST(Field61Test, MulMatchesInt128Reference) {
  prever::Rng rng(61);
  for (int i = 0; i < 1000; ++i) {
    uint64_t a = rng.NextBelow(Field61::kPrime);
    uint64_t b = rng.NextBelow(Field61::kPrime);
    unsigned __int128 expected =
        static_cast<unsigned __int128>(a) * b % Field61::kPrime;
    EXPECT_EQ(Field61::Mul(a, b), static_cast<uint64_t>(expected));
  }
}

TEST(Field61Test, InverseIsCorrect) {
  prever::Rng rng(67);
  for (int i = 0; i < 100; ++i) {
    uint64_t a = 1 + rng.NextBelow(Field61::kPrime - 1);
    EXPECT_EQ(Field61::Mul(a, Field61::Inv(a)), 1u);
  }
}

TEST(ShamirTest, ShareReconstructRoundTrip) {
  prever::Rng rng(71);
  auto shares = ShamirShareSecret(123456789, 5, 3, rng);
  ASSERT_TRUE(shares.ok());
  EXPECT_EQ(shares->size(), 5u);
  EXPECT_EQ(*ShamirReconstruct(*shares), 123456789u);
}

TEST(ShamirTest, AnyThresholdSubsetReconstructs) {
  prever::Rng rng(73);
  auto shares = ShamirShareSecret(40, 5, 3, rng);
  ASSERT_TRUE(shares.ok());
  // All C(5,3) subsets.
  for (size_t i = 0; i < 5; ++i)
    for (size_t j = i + 1; j < 5; ++j)
      for (size_t k = j + 1; k < 5; ++k) {
        std::vector<ShamirShare> subset = {(*shares)[i], (*shares)[j],
                                           (*shares)[k]};
        EXPECT_EQ(*ShamirReconstruct(subset), 40u);
      }
}

TEST(ShamirTest, BelowThresholdRevealsNothingStructural) {
  // With t-1 shares the reconstruction is *wrong* (not an error — any value
  // is consistent), demonstrating the threshold property mechanically.
  prever::Rng rng(79);
  auto shares = ShamirShareSecret(40, 5, 3, rng);
  ASSERT_TRUE(shares.ok());
  std::vector<ShamirShare> two = {(*shares)[0], (*shares)[1]};
  auto value = ShamirReconstruct(two);
  ASSERT_TRUE(value.ok());
  EXPECT_NE(*value, 40u);  // Interpolating a deg-2 poly from 2 points.
}

TEST(ShamirTest, HomomorphicAddition) {
  prever::Rng rng(83);
  auto a = ShamirShareSecret(30, 4, 2, rng);
  auto b = ShamirShareSecret(12, 4, 2, rng);
  ASSERT_TRUE(a.ok() && b.ok());
  auto sum = ShamirAddShares(*a, *b);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*ShamirReconstruct(*sum), 42u);
}

TEST(ShamirTest, ScaleShares) {
  prever::Rng rng(89);
  auto a = ShamirShareSecret(6, 4, 2, rng);
  ASSERT_TRUE(a.ok());
  auto scaled = ShamirScaleShares(*a, 7);
  EXPECT_EQ(*ShamirReconstruct(scaled), 42u);
}

TEST(ShamirTest, ExactlyThresholdSharesSuffice) {
  // t == n: every share is needed; exactly t shares reconstruct, and
  // removing any single one yields a wrong value.
  prever::Rng rng(103);
  auto shares = ShamirShareSecret(777, 4, 4, rng);
  ASSERT_TRUE(shares.ok());
  EXPECT_EQ(*ShamirReconstruct(*shares), 777u);
  for (size_t drop = 0; drop < 4; ++drop) {
    std::vector<ShamirShare> three;
    for (size_t i = 0; i < 4; ++i) {
      if (i != drop) three.push_back((*shares)[i]);
    }
    auto value = ShamirReconstruct(three);
    ASSERT_TRUE(value.ok());
    EXPECT_NE(*value, 777u) << "dropped share " << drop;
  }
}

TEST(ShamirTest, ThresholdOneMeansEveryShareIsTheSecret) {
  // t == 1 degenerates to replication: the polynomial is constant.
  prever::Rng rng(107);
  auto shares = ShamirShareSecret(42, 3, 1, rng);
  ASSERT_TRUE(shares.ok());
  for (const ShamirShare& s : *shares) {
    EXPECT_EQ(*ShamirReconstruct({s}), 42u);
  }
}

TEST(ShamirTest, BoundarySecretsRoundTrip) {
  prever::Rng rng(109);
  for (uint64_t secret : {uint64_t{0}, Field61::kPrime - 1}) {
    auto shares = ShamirShareSecret(secret, 5, 3, rng);
    ASSERT_TRUE(shares.ok());
    EXPECT_EQ(*ShamirReconstruct(*shares), secret);
  }
}

TEST(ShamirTest, InvalidParameters) {
  prever::Rng rng(97);
  EXPECT_FALSE(ShamirShareSecret(1, 3, 0, rng).ok());
  EXPECT_FALSE(ShamirShareSecret(1, 3, 4, rng).ok());
  EXPECT_FALSE(ShamirShareSecret(Field61::kPrime, 3, 2, rng).ok());
}

TEST(ShamirTest, ReconstructRejectsDuplicatePoints) {
  prever::Rng rng(101);
  auto shares = ShamirShareSecret(5, 3, 2, rng);
  ASSERT_TRUE(shares.ok());
  std::vector<ShamirShare> dup = {(*shares)[0], (*shares)[0]};
  EXPECT_FALSE(ShamirReconstruct(dup).ok());
}

TEST(AdditiveShareTest, RoundTrip) {
  prever::Rng rng(103);
  for (size_t n : {1u, 2u, 5u, 16u}) {
    auto shares = AdditiveShare(0xdeadbeefcafebabeULL, n, rng);
    EXPECT_EQ(shares.size(), n);
    EXPECT_EQ(AdditiveReconstruct(shares), 0xdeadbeefcafebabeULL);
  }
}

TEST(AdditiveShareTest, SharesLookRandom) {
  prever::Rng rng(107);
  auto s1 = AdditiveShare(42, 3, rng);
  auto s2 = AdditiveShare(42, 3, rng);
  EXPECT_NE(s1, s2);
}

// Property sweep: share/reconstruct identity across (n, t) grid.
class ShamirGridProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ShamirGridProperty, RoundTrips) {
  auto [n, t] = GetParam();
  prever::Rng rng(static_cast<uint64_t>(n * 100 + t));
  for (int iter = 0; iter < 10; ++iter) {
    uint64_t secret = rng.NextBelow(Field61::kPrime);
    auto shares = ShamirShareSecret(secret, n, t, rng);
    ASSERT_TRUE(shares.ok());
    // Reconstruct from the first t shares.
    std::vector<ShamirShare> subset(shares->begin(), shares->begin() + t);
    EXPECT_EQ(*ShamirReconstruct(subset), secret);
    // And from all n.
    EXPECT_EQ(*ShamirReconstruct(*shares), secret);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShamirGridProperty,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(3, 2),
                      std::make_tuple(4, 4), std::make_tuple(7, 3),
                      std::make_tuple(10, 7), std::make_tuple(16, 9)));

}  // namespace
}  // namespace prever::crypto
