#include <gtest/gtest.h>

#include <set>

#include "constraint/linear.h"
#include "constraint/parser.h"
#include "workload/crowdworking.h"
#include "workload/supplychain.h"
#include "workload/tpc_lite.h"
#include "workload/ycsb.h"

namespace prever::workload {
namespace {

// ------------------------------------------------------------------ YCSB

TEST(YcsbTest, InitialLoadMatchesSchemaAndCount) {
  YcsbConfig config;
  config.record_count = 100;
  YcsbWorkload ycsb(config);
  auto rows = ycsb.InitialLoad();
  ASSERT_EQ(rows.size(), 100u);
  storage::Schema schema = YcsbWorkload::TableSchema();
  std::set<storage::Value> keys;
  for (const auto& row : rows) {
    EXPECT_TRUE(schema.ValidateRow(row).ok());
    keys.insert(row[0]);
  }
  EXPECT_EQ(keys.size(), 100u);  // Distinct keys.
}

TEST(YcsbTest, UpdatesConformToSchemaAndConfig) {
  YcsbConfig config;
  config.record_count = 50;
  config.max_amount = 10;
  config.insert_proportion = 0.5;
  YcsbWorkload ycsb(config);
  storage::Schema schema = YcsbWorkload::TableSchema();
  int inserts = 0;
  for (int i = 0; i < 500; ++i) {
    core::Update u = ycsb.Next();
    EXPECT_TRUE(schema.ValidateRow(u.mutation.row).ok());
    EXPECT_EQ(u.mutation.table, YcsbWorkload::kTableName);
    int64_t amount = *u.fields.at("amount").AsInt64();
    EXPECT_GE(amount, 0);
    EXPECT_LE(amount, 10);
    if (u.mutation.op == storage::Mutation::Op::kInsert) ++inserts;
  }
  // Roughly half inserts.
  EXPECT_GT(inserts, 150);
  EXPECT_LT(inserts, 350);
  EXPECT_EQ(ycsb.generated(), 500u);
}

TEST(YcsbTest, DeterministicForSeed) {
  YcsbConfig config;
  config.seed = 9;
  YcsbWorkload a(config), b(config);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Next().Encode(), b.Next().Encode());
  }
}

TEST(YcsbTest, InsertsUseFreshKeys) {
  YcsbConfig config;
  config.record_count = 10;
  config.insert_proportion = 1.0;
  YcsbWorkload ycsb(config);
  std::set<std::string> keys;
  for (int i = 0; i < 100; ++i) {
    core::Update u = ycsb.Next();
    std::string key = *u.fields.at("key").AsString();
    EXPECT_TRUE(keys.insert(key).second) << key;  // Never repeats.
  }
}

TEST(YcsbTest, TimestampsAdvanceMonotonically) {
  YcsbWorkload ycsb(YcsbConfig{});
  SimTime prev = 0;
  for (int i = 0; i < 20; ++i) {
    core::Update u = ycsb.Next();
    EXPECT_GT(u.timestamp, prev);
    prev = u.timestamp;
  }
}

// ---------------------------------------------------------- Crowdworking

TEST(CrowdworkingTest, TraceIsTimeOrderedAndInRange) {
  CrowdworkingConfig config;
  config.num_workers = 5;
  config.num_platforms = 3;
  config.num_weeks = 2;
  config.min_task_hours = 2;
  config.max_task_hours = 6;
  CrowdworkingWorkload gen(config);
  auto trace = gen.Generate();
  ASSERT_FALSE(trace.empty());
  SimTime prev = 0;
  for (const TaskEvent& e : trace) {
    EXPECT_GE(e.at, prev);
    prev = e.at;
    EXPECT_LT(e.platform, 3u);
    EXPECT_GE(e.hours, 2);
    EXPECT_LE(e.hours, 6);
    EXPECT_LT(e.at, 2 * kWeek);
  }
}

TEST(CrowdworkingTest, ToUpdateConformsToSchema) {
  CrowdworkingWorkload gen(CrowdworkingConfig{});
  auto trace = gen.Generate();
  ASSERT_FALSE(trace.empty());
  storage::Schema schema = CrowdworkingWorkload::WorklogSchema();
  core::Update u = trace[0].ToUpdate(7);
  EXPECT_TRUE(schema.ValidateRow(u.mutation.row).ok());
  EXPECT_EQ(u.id, "task7");
  EXPECT_EQ(*u.fields.at("hours").AsInt64(), trace[0].hours);
  EXPECT_EQ(u.producer, trace[0].worker);
}

TEST(CrowdworkingTest, DeterministicForSeed) {
  CrowdworkingConfig config;
  config.seed = 4;
  auto t1 = CrowdworkingWorkload(config).Generate();
  auto t2 = CrowdworkingWorkload(config).Generate();
  ASSERT_EQ(t1.size(), t2.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].worker, t2[i].worker);
    EXPECT_EQ(t1[i].at, t2[i].at);
  }
}

// ------------------------------------------------------------ Supply chain

TEST(SupplyChainTest, HonestPrefixNeverOverships) {
  SupplyChainConfig config;
  config.violation_rate = 0.0;
  config.num_events = 300;
  SupplyChainWorkload gen(config);
  auto events = gen.Generate();
  std::map<std::string, int64_t> balance;
  for (const SupplyEvent& e : events) {
    if (e.kind == SupplyEventKind::kProduce) {
      balance[e.product] += e.quantity;
    } else {
      // With violation_rate 0, ship events may still be "forced violations"
      // when stock is empty (available <= 0); those are intentional.
      if (balance[e.product] >= e.quantity) {
        balance[e.product] -= e.quantity;
        EXPECT_GE(balance[e.product], 0);
      }
    }
    EXPECT_GT(e.quantity, 0);
  }
}

TEST(SupplyChainTest, ViolationRateProducesRejections) {
  SupplyChainConfig config;
  config.violation_rate = 1.0;  // Every ship event oversized.
  config.num_events = 100;
  SupplyChainWorkload gen(config);
  auto events = gen.Generate();
  std::map<std::string, int64_t> produced, shipped;
  int violations = 0;
  for (const SupplyEvent& e : events) {
    if (e.kind == SupplyEventKind::kProduce) {
      produced[e.product] += e.quantity;
    } else if (shipped[e.product] + e.quantity > produced[e.product]) {
      ++violations;
    }
  }
  EXPECT_GT(violations, 0);
}

TEST(SupplyChainTest, ConstraintTextParses) {
  auto expr =
      constraint::ParseConstraint(SupplyChainWorkload::ShipmentConstraint());
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
}

TEST(SupplyChainTest, ToUpdateConformsToSchema) {
  SupplyChainWorkload gen(SupplyChainConfig{});
  auto events = gen.Generate();
  ASSERT_FALSE(events.empty());
  storage::Schema schema = SupplyChainWorkload::EventSchema();
  core::Update u = events[0].ToUpdate(3);
  EXPECT_TRUE(schema.ValidateRow(u.mutation.row).ok());
}

// -------------------------------------------------------------- TPC-lite

TEST(TpcLiteTest, OrdersConformAndConstraintParses) {
  TpcLiteConfig config;
  config.num_customers = 10;
  config.max_order_amount = 20;
  TpcLiteWorkload gen(config);
  storage::Schema schema = TpcLiteWorkload::OrdersSchema();
  for (int i = 0; i < 100; ++i) {
    core::Update u = gen.NextOrder();
    EXPECT_TRUE(schema.ValidateRow(u.mutation.row).ok());
    int64_t amount = *u.fields.at("amount").AsInt64();
    EXPECT_GE(amount, 1);
    EXPECT_LE(amount, 20);
  }
  auto expr = constraint::ParseConstraint(gen.CreditConstraint());
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
}

TEST(TpcLiteTest, CreditLimitShapeIsLinear) {
  TpcLiteWorkload gen(TpcLiteConfig{});
  auto expr = constraint::ParseConstraint(gen.CreditConstraint());
  ASSERT_TRUE(expr.ok());
  auto form = constraint::ExtractLinearBound(**expr);
  ASSERT_TRUE(form.ok());
  EXPECT_EQ(form->direction, constraint::BoundDirection::kUpper);
  EXPECT_EQ(form->bound, 1000);
}

}  // namespace
}  // namespace prever::workload
