// Concurrency contract of CompiledVerifier: any number of threads may call
// VerifyAll / EvaluateAggregate on one verifier concurrently — the steady
// state rides a shared lock over the incremental aggregate cache, cache
// misses (first touch, window slides) upgrade to the unique-lock slow path
// through double-checked locking. scripts/check.sh runs this suite under
// ThreadSanitizer (filter: *AggCacheConcurrency*), so a data race between
// the read path and the maintenance path fails the gate, not just a flaky
// assertion here.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "constraint/constraint.h"
#include "constraint/eval.h"
#include "constraint/parser.h"
#include "constraint/verifier.h"
#include "storage/database.h"

namespace prever {
namespace {

using storage::Mutation;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class AggCacheConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema worklog({{"id", ValueType::kString},
                    {"worker", ValueType::kString},
                    {"hours", ValueType::kInt64},
                    {"at", ValueType::kTimestamp}});
    ASSERT_TRUE(db_.CreateTable("worklog", worklog).ok());
    for (int i = 0; i < 64; ++i) {
      Mutation m;
      m.op = Mutation::Op::kInsert;
      m.table = "worklog";
      m.row = {Value::String("r" + std::to_string(i)),
               Value::String("w" + std::to_string(i % 4)),
               Value::Int64(i % 7),
               Value::Timestamp(static_cast<SimTime>(i) * kHour)};
      ASSERT_TRUE(db_.Apply(m).ok());
    }
    ASSERT_TRUE(catalog_
                    .Add("cap", constraint::ConstraintScope::kInternal,
                         constraint::ConstraintVisibility::kPublic,
                         "SUM(worklog.hours WHERE worker = update.worker "
                         "WINDOW 2d) + update.hours <= 100000")
                    .ok());
    ASSERT_TRUE(catalog_
                    .Add("floor", constraint::ConstraintScope::kInternal,
                         constraint::ConstraintVisibility::kPublic,
                         "update.hours >= 0")
                    .ok());
  }

  storage::Database db_;
  constraint::ConstraintCatalog catalog_;
};

TEST_F(AggCacheConcurrencyTest, ParallelVerifyAllSharesTheCache) {
  constraint::CompiledVerifier verifier(&catalog_, &db_);
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        constraint::UpdateFields update = {
            {"worker", Value::String("w" + std::to_string((t + i) % 4))},
            {"hours", Value::Int64(1)}};
        // Occasional `now` advances force window-cursor maintenance (the
        // unique-lock path) interleaved with fast-path readers.
        SimTime now = 64 * kHour + static_cast<SimTime>(i / 50) * kHour;
        constraint::EvalContext ctx{&db_, &update, now};
        if (!verifier.VerifyAll(ctx).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // Two settled calls at one instant: the first parks the window cursor,
  // the second must ride the shared-lock fast path deterministically.
  constraint::UpdateFields update = {{"worker", Value::String("w0")},
                                     {"hours", Value::Int64(1)}};
  constraint::EvalContext settled{&db_, &update, 70 * kHour};
  EXPECT_TRUE(verifier.VerifyAll(settled).ok());
  EXPECT_TRUE(verifier.VerifyAll(settled).ok());
  auto stats = verifier.stats();
  // The steady state must actually exercise the shared-lock fast path; if
  // every call fell through to the slow path the contract being tested
  // here (concurrent cache READS) would be vacuous.
  EXPECT_GT(stats.fast_path_verifies, 0u);
  EXPECT_GT(stats.compiled_constraints, 0u);
}

TEST_F(AggCacheConcurrencyTest, ParallelAdhocAggregatesShareTheCache) {
  constraint::CompiledVerifier verifier(&catalog_, &db_);
  auto parsed = constraint::ParseConstraint(
      "SUM(worklog.hours WHERE worker = update.worker WINDOW 2d)");
  ASSERT_TRUE(parsed.ok());
  const constraint::Expr& agg = **parsed;
  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        constraint::UpdateFields update = {
            {"worker", Value::String("w" + std::to_string((t + i) % 4))}};
        constraint::EvalContext ctx{&db_, &update, 64 * kHour};
        auto v = verifier.EvaluateAggregate(agg, ctx);
        if (!v.ok() || *v < 0) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace prever
