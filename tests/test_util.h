#ifndef PREVER_TESTS_TEST_UTIL_H_
#define PREVER_TESTS_TEST_UTIL_H_

#include <string>

#include "common/sim_clock.h"
#include "core/update.h"
#include "storage/database.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace prever::core {

/// The crowdworking worklog table every engine test submits against
/// (PReVer's running example: regulated gig-work hour caps).
inline storage::Schema WorklogSchema() {
  return storage::Schema({{"id", storage::ValueType::kString},
                          {"worker", storage::ValueType::kString},
                          {"hours", storage::ValueType::kInt64},
                          {"at", storage::ValueType::kTimestamp}});
}

/// An insert of `hours` worked by `worker` at time `at`, with the public
/// routing fields (`worker`, `hours`) mirrored into `fields` the way every
/// engine expects.
inline Update MakeWorklogUpdate(const std::string& id,
                                const std::string& worker, int64_t hours,
                                SimTime at) {
  Update u;
  u.id = id;
  u.producer = worker;
  u.timestamp = at;
  u.fields = {{"worker", storage::Value::String(worker)},
              {"hours", storage::Value::Int64(hours)}};
  u.mutation.op = storage::Mutation::Op::kInsert;
  u.mutation.table = "worklog";
  u.mutation.row = {storage::Value::String(id), storage::Value::String(worker),
                    storage::Value::Int64(hours),
                    storage::Value::Timestamp(at)};
  return u;
}

}  // namespace prever::core

#endif  // PREVER_TESTS_TEST_UTIL_H_
