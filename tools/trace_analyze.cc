// trace_analyze: critical-path analyzer for PReVer causal traces.
//
// Reads a Chrome trace-event JSON file produced by `--trace=FILE` (schema
// "prever.trace.v1", see src/obs/tracing.h), reconstructs the span tree of
// every sampled transaction, and prints per-stage latency attribution:
// queue-wait vs consensus vs durability vs verify, with exact p50/p99 from
// the nanosecond durations carried in event args.
//
// Usage: trace_analyze [--strict] [--tree] FILE.json
//   --strict  exit nonzero when the trace is structurally broken (a span
//             references a parent that is not in the file, or no spans at
//             all). Without it such spans are reported as orphans only —
//             ring wrap-around can legitimately drop ancestors.
//   --tree    additionally print the span tree of the largest trace.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/json.h"

namespace {

using prever::obs::Json;

struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  uint64_t dur_ns = 0;
  uint64_t sim_dur_us = 0;
  uint64_t ts_us = 0;
  std::string stage;
  std::vector<size_t> children;
};

uint64_t ArgU64(const Json& ev, const char* key) {
  const Json* args = ev.Find("args");
  if (args == nullptr) return 0;
  const Json* v = args->Find(key);
  return v != nullptr && v->is_number() ? v->AsUint64() : 0;
}

std::string ReadFile(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return {};
  std::string text;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return text;
}

// The four attribution buckets of the paper's transaction path. Phase spans
// recorded inside engines (verify/crypto/token) are all verification work;
// ledger/WAL appends are durability; queue-wait and consensus come from the
// ordering pipeline. "submit" spans are whole-transaction roots and are
// reported separately as end-to-end time, not attributed to a bucket.
const char* Bucket(const std::string& stage) {
  if (stage == "queue_wait") return "queue-wait";
  if (stage == "consensus") return "consensus";
  if (stage == "ledger_append" || stage == "wal_append" ||
      stage == "ledger_phase") {
    return "durability";
  }
  if (stage == "verify" || stage == "crypto" || stage == "token" ||
      stage == "verify_compile" || stage == "verify_eval" ||
      stage == "verify_agg_update") {
    return "verify";
  }
  return nullptr;
}

uint64_t Percentile(std::vector<uint64_t>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

void PrintTree(const std::vector<Span>& spans, size_t i, int depth) {
  const Span& s = spans[i];
  std::printf("%*s%s span=%llu dur=%.3fus sim=%lluus\n", 2 * depth, "",
              s.stage.c_str(), static_cast<unsigned long long>(s.span_id),
              static_cast<double>(s.dur_ns) / 1000.0,
              static_cast<unsigned long long>(s.sim_dur_us));
  for (size_t c : spans[i].children) PrintTree(spans, c, depth + 1);
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  bool tree = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--tree") == 0) {
      tree = true;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: trace_analyze [--strict] [--tree] FILE\n");
    return 2;
  }
  std::string text = ReadFile(path);
  if (text.empty()) {
    std::fprintf(stderr, "trace_analyze: cannot read %s\n", path);
    return 2;
  }
  auto parsed = Json::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "trace_analyze: JSON parse failed: %s\n",
                 parsed.status().message().c_str());
    return 2;
  }
  const Json& doc = *parsed;
  const Json* meta = doc.Find("prever");
  if (meta != nullptr) {
    const Json* schema = meta->Find("schema");
    if (schema != nullptr && schema->AsString() != "prever.trace.v1") {
      std::fprintf(stderr, "trace_analyze: unknown schema %s\n",
                   schema->AsString().c_str());
      return 2;
    }
  }
  const Json* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "trace_analyze: no traceEvents array\n");
    return 2;
  }

  std::vector<Span> spans;
  std::map<std::string, uint64_t> instants;
  for (size_t i = 0; i < events->size(); ++i) {
    const Json& ev = events->at(i);
    const Json* ph = ev.Find("ph");
    const Json* name = ev.Find("name");
    if (ph == nullptr || name == nullptr) continue;
    if (ph->AsString() == "i") {
      ++instants[name->AsString()];
      continue;
    }
    if (ph->AsString() != "X") continue;
    Span s;
    s.stage = name->AsString();
    s.trace_id = ArgU64(ev, "trace_id");
    s.span_id = ArgU64(ev, "span_id");
    s.parent_span_id = ArgU64(ev, "parent_span_id");
    s.dur_ns = ArgU64(ev, "dur_ns");
    s.sim_dur_us = ArgU64(ev, "sim_dur_us");
    const Json* ts = ev.Find("ts");
    s.ts_us = ts != nullptr ? ts->AsUint64() : 0;
    spans.push_back(std::move(s));
  }

  // Rebuild trees: span_id -> index, then attach children to parents.
  std::unordered_map<uint64_t, size_t> by_id;
  by_id.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) by_id[spans[i].span_id] = i;
  std::vector<size_t> roots;
  size_t orphans = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent_span_id == 0) {
      roots.push_back(i);
      continue;
    }
    auto it = by_id.find(spans[i].parent_span_id);
    if (it == by_id.end()) {
      ++orphans;  // Ancestor lost to ring wrap-around (or a bug: --strict).
      roots.push_back(i);
    } else {
      spans[it->second].children.push_back(i);
    }
  }
  std::unordered_map<uint64_t, size_t> spans_per_trace;
  for (const Span& s : spans) ++spans_per_trace[s.trace_id];

  std::printf("trace: %s\n", path);
  std::printf("  spans=%zu traces=%zu roots=%zu orphan_parents=%zu\n",
              spans.size(), spans_per_trace.size(), roots.size(), orphans);
  if (meta != nullptr) {
    const Json* minted = meta->Find("traces_minted");
    const Json* sampled = meta->Find("traces_sampled");
    if (minted != nullptr && sampled != nullptr) {
      std::printf("  traces_minted=%llu traces_sampled=%llu\n",
                  static_cast<unsigned long long>(minted->AsUint64()),
                  static_cast<unsigned long long>(sampled->AsUint64()));
    }
  }

  // Per-stage latency table with exact percentiles.
  std::map<std::string, std::vector<uint64_t>> by_stage;
  for (const Span& s : spans) by_stage[s.stage].push_back(s.dur_ns);
  std::printf("\n  %-16s %8s %12s %12s %12s\n", "stage", "count", "p50_us",
              "p99_us", "total_ms");
  for (auto& [stage, durs] : by_stage) {
    uint64_t total = 0;
    for (uint64_t d : durs) total += d;
    std::vector<uint64_t> sorted = durs;
    uint64_t p50 = Percentile(sorted, 0.50);
    uint64_t p99 = Percentile(sorted, 0.99);
    std::printf("  %-16s %8zu %12.3f %12.3f %12.3f\n", stage.c_str(),
                durs.size(), static_cast<double>(p50) / 1e3,
                static_cast<double>(p99) / 1e3,
                static_cast<double>(total) / 1e6);
  }

  // Critical-path attribution: share of bucketed time per bucket. Stages
  // nest (verify inside submit), so buckets are computed over leaf-phase
  // stages only — Bucket() excludes the "submit" roots.
  std::map<std::string, uint64_t> bucket_total;
  uint64_t attributed = 0;
  for (const Span& s : spans) {
    const char* b = Bucket(s.stage);
    if (b == nullptr) continue;
    bucket_total[b] += s.dur_ns;
    attributed += s.dur_ns;
  }
  std::printf("\n  critical-path attribution (share of attributed time):\n");
  for (const auto& [bucket, total] : bucket_total) {
    double share = attributed == 0
                       ? 0.0
                       : 100.0 * static_cast<double>(total) /
                             static_cast<double>(attributed);
    std::printf("  %-12s %10.3f ms  %6.2f%%\n", bucket.c_str(),
                static_cast<double>(total) / 1e6, share);
  }

  if (!instants.empty()) {
    std::printf("\n  instants:\n");
    for (const auto& [name, count] : instants) {
      std::printf("  %-20s %8llu\n", name.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }

  if (tree && !roots.empty()) {
    // Largest trace = the one with the most spans; print its whole forest.
    uint64_t best_trace = 0;
    size_t best_count = 0;
    for (const auto& [tid, count] : spans_per_trace) {
      if (count > best_count) {
        best_count = count;
        best_trace = tid;
      }
    }
    std::printf("\n  span tree (trace %llu, %zu spans):\n",
                static_cast<unsigned long long>(best_trace), best_count);
    for (size_t r : roots) {
      if (spans[r].trace_id == best_trace) PrintTree(spans, r, 2);
    }
  }

  if (strict && (spans.empty() || orphans != 0)) {
    std::fprintf(stderr,
                 "trace_analyze: --strict failure (spans=%zu orphans=%zu)\n",
                 spans.size(), orphans);
    return 1;
  }
  return 0;
}
