// Environmental sustainability certification (§2.1, Research Challenge 1):
// an organization outsources its emissions ledger to a certifying
// authority's infrastructure. The authority (the untrusted data manager)
// verifies every report against the PUBLIC cap without ever seeing the
// PRIVATE values — Paillier ciphertexts for aggregation, Pedersen
// commitments + zero-knowledge bound proofs for verification.
//
// Build & run:  ./build/examples/sustainability

#include <cstdio>

#include "core/prever.h"

using namespace prever;

namespace {

core::Update EmissionReport(const std::string& id, const std::string& metric,
                            int64_t tons, SimTime at) {
  core::Update u;
  u.id = id;
  u.producer = "acme-corp";
  u.timestamp = at;
  u.fields = {{"metric", storage::Value::String(metric)},
              {"tons", storage::Value::Int64(tons)}};
  // The mutation is irrelevant to the RC1 engine (it keeps its own sealed
  // store); updates are identified by id/metric/timestamp.
  return u;
}

}  // namespace

int main() {
  std::printf("== RC1: private sustainability reports, public cap ==\n\n");

  // The data owner (the organization) generates its keys. Research-scale
  // parameters: 256-bit Paillier modulus, 256-bit commitment group.
  core::DataOwner owner(256, crypto::PedersenParams::Test256(), /*seed=*/2024);

  // Public regulation (ISO-style): at most 100 tons CO2 per metric per
  // 30-day window. The certifying authority never sees individual reports.
  std::vector<core::RegulatedBound> bounds = {
      {constraint::BoundDirection::kUpper, /*bound=*/100,
       /*window=*/30 * kDay, /*slack_bits=*/8}};

  core::CentralizedOrdering ordering;  // The authority's verifiable ledger.
  core::EncryptedEngine authority(&owner, &ordering, "metric", "tons", bounds,
                                  /*value_bits=*/8, /*seed=*/7);

  struct Report {
    const char* id;
    const char* metric;
    int64_t tons;
    SimTime at;
  };
  const Report reports[] = {
      {"r1", "co2-scope1", 40, 1 * kDay},
      {"r2", "co2-scope1", 35, 10 * kDay},
      {"r3", "co2-scope1", 30, 20 * kDay},  // 105 > 100: REJECTED.
      {"r4", "co2-scope2", 90, 20 * kDay},  // Different metric: fine.
      {"r5", "co2-scope1", 20, 45 * kDay},  // Old reports out of window.
  };
  for (const Report& r : reports) {
    Status s =
        authority.SubmitUpdate(EmissionReport(r.id, r.metric, r.tons, r.at));
    std::printf("  report %-3s %-11s %3ld t, day %2llu -> %s\n", r.id,
                r.metric, static_cast<long>(r.tons),
                static_cast<unsigned long long>(r.at / kDay),
                s.ok() ? "CERTIFIED" : s.ToString().c_str());
  }

  std::printf(
      "\nwhat the certifying authority learned: %llu sealed rows for "
      "'co2-scope1', %llu owner attestations, and accept/reject bits — "
      "no plaintext.\n",
      static_cast<unsigned long long>(authority.NumRows("co2-scope1")),
      static_cast<unsigned long long>(owner.attestations()));

  std::printf("ledger audit (any participant): %s\n",
              core::IntegrityAuditor::AuditLedger(ordering.Ledger())
                  .ToString()
                  .c_str());
  std::printf("engine stats: accepted=%llu rejected=%llu\n",
              static_cast<unsigned long long>(authority.stats().accepted),
              static_cast<unsigned long long>(
                  authority.stats().rejected_constraint));
  return 0;
}
