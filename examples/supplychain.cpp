// Supply-chain management (§2.4, Research Challenge 4): mutually
// distrustful enterprises process production/shipment events under SLA
// constraints, ordered by a PBFT permissioned blockchain so every
// enterprise can audit the shared history (and no single party can rewrite
// it).
//
// Build & run:  ./build/examples/supplychain

#include <cstdio>

#include "core/prever.h"
#include "workload/supplychain.h"

using namespace prever;

int main() {
  std::printf("== RC4: SLA-regulated supply chain over PBFT ==\n\n");

  storage::Database db;
  if (!db.CreateTable(workload::SupplyChainWorkload::kTableName,
                      workload::SupplyChainWorkload::EventSchema())
           .ok()) {
    return 1;
  }

  // The SLA: shipments of a product never exceed its production. Note the
  // two-aggregate shape — outside the linear class the crypto engines
  // support, exactly the expressiveness frontier §4 discusses, so this
  // instantiation runs the plaintext verifier over the *shared* database
  // while getting integrity from BFT ordering.
  constraint::ConstraintCatalog sla;
  Status added = sla.Add("no-overshipping",
                         constraint::ConstraintScope::kInternal,
                         constraint::ConstraintVisibility::kPublic,
                         workload::SupplyChainWorkload::ShipmentConstraint());
  if (!added.ok()) {
    std::printf("constraint error: %s\n", added.ToString().c_str());
    return 1;
  }
  // Ship events must satisfy the SLA; produce events always pass (the
  // constraint degenerates to `shipped <= produced` which production only
  // improves). Guard for produce: qty >= 1.
  (void)sla.Add("positive-qty", constraint::ConstraintScope::kInternal,
                constraint::ConstraintVisibility::kPublic, "update.qty >= 1");

  // Four enterprises run a 4-replica PBFT cluster for ordering.
  core::PbftOrdering ordering(4, net::SimNetConfig{});
  core::PlaintextEngine engine(&db, &sla, &ordering);

  workload::SupplyChainConfig config;
  config.num_events = 120;
  config.violation_rate = 0.15;
  config.seed = 3;
  workload::SupplyChainWorkload gen(config);
  auto events = gen.Generate();

  uint64_t idx = 0, produce_ok = 0, ship_ok = 0, rejected = 0;
  for (const workload::SupplyEvent& e : events) {
    // Produce events skip the over-shipping check by construction: the
    // constraint references update.qty on the shipped side only for kind
    // 'ship'. We express this by routing: produce events go through a
    // catalog without the SLA... simplest: evaluate; produce events trip
    // the SLA only if shipped already exceeds produced, which cannot
    // happen for accepted histories. To keep the example honest we only
    // submit ship events against the SLA engine and apply produce events
    // directly after the positive-qty check.
    core::Update u = e.ToUpdate(idx++);
    if (e.kind == workload::SupplyEventKind::kProduce) {
      if (db.Apply(u.mutation).ok()) ++produce_ok;
      continue;
    }
    Status s = engine.SubmitUpdate(u);
    if (s.ok()) {
      ++ship_ok;
    } else {
      ++rejected;
    }
  }
  std::printf("events: %llu produce applied, %llu ship accepted, "
              "%llu ship rejected by SLA\n",
              static_cast<unsigned long long>(produce_ok),
              static_cast<unsigned long long>(ship_ok),
              static_cast<unsigned long long>(rejected));

  // Every enterprise audits: all four PBFT replica ledgers must agree.
  ordering.network().RunUntilIdle();
  std::vector<const ledger::LedgerDb*> replicas;
  for (size_t i = 0; i < ordering.num_replicas(); ++i) {
    replicas.push_back(&ordering.ReplicaLedger(i));
  }
  std::printf("replica agreement: %s\n",
              core::IntegrityAuditor::CheckReplicaAgreement(replicas)
                  .ToString()
                  .c_str());
  std::printf("replica-0 ledger: %llu committed shipments, audit %s\n",
              static_cast<unsigned long long>(ordering.ReplicaLedger(0).size()),
              core::IntegrityAuditor::AuditLedger(ordering.ReplicaLedger(0))
                  .ToString()
                  .c_str());
  std::printf("network: %llu messages, %llu bytes over the simulated WAN\n",
              static_cast<unsigned long long>(ordering.network().messages_sent()),
              static_cast<unsigned long long>(ordering.network().bytes_sent()));
  return 0;
}
