// Quickstart: the Fig. 2 pipeline end to end on the plaintext baseline.
//
//   (0) an authority registers a regulation,
//   (1) data producers submit updates,
//   (2) PReVer verifies them against the regulation,
//   (3) verified updates land in the database and on the verifiable ledger,
//   and finally any participant audits the ledger (RC4).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/prever.h"

using namespace prever;  // Example code; library code never does this.

namespace {

core::Update MakeTask(const std::string& id, const std::string& worker,
                      int64_t hours, SimTime at) {
  core::Update u;
  u.id = id;
  u.producer = worker;
  u.timestamp = at;
  u.fields = {{"worker", storage::Value::String(worker)},
              {"hours", storage::Value::Int64(hours)}};
  u.mutation.op = storage::Mutation::Op::kInsert;
  u.mutation.table = "worklog";
  u.mutation.row = {storage::Value::String(id), storage::Value::String(worker),
                    storage::Value::Int64(hours), storage::Value::Timestamp(at)};
  return u;
}

}  // namespace

int main() {
  std::printf("== PReVer quickstart ==\n\n");

  // The regulated table.
  storage::Database db;
  storage::Schema worklog({{"id", storage::ValueType::kString},
                           {"worker", storage::ValueType::kString},
                           {"hours", storage::ValueType::kInt64},
                           {"at", storage::ValueType::kTimestamp}});
  if (!db.CreateTable("worklog", worklog).ok()) return 1;

  // (0) The external authority registers the FLSA regulation: at most 40
  // hours per worker per sliding week, counting the incoming update.
  constraint::ConstraintCatalog catalog;
  Status added = catalog.Add(
      "flsa-40h", constraint::ConstraintScope::kRegulation,
      constraint::ConstraintVisibility::kPublic,
      "SUM(worklog.hours WHERE worker = update.worker WINDOW 7d) "
      "+ update.hours <= 40");
  if (!added.ok()) {
    std::printf("constraint error: %s\n", added.ToString().c_str());
    return 1;
  }
  std::printf("regulation registered: %s\n",
              (*catalog.Find("flsa-40h"))->expr->ToString().c_str());

  // The integrity layer (RC4): a centralized verifiable ledger.
  core::CentralizedOrdering ordering;
  core::PlaintextEngine engine(&db, &catalog, &ordering);

  // (1)-(3) Submit updates.
  struct Case {
    const char* id;
    const char* worker;
    int64_t hours;
    SimTime at;
  };
  const Case cases[] = {
      {"t1", "ada", 30, 1 * kDay},
      {"t2", "ada", 8, 2 * kDay},
      {"t3", "ada", 5, 3 * kDay},   // Would make 43h this week: rejected.
      {"t4", "bob", 40, 3 * kDay},  // Different worker: fine.
      {"t5", "ada", 5, 10 * kDay},  // A week later: window expired, fine.
  };
  for (const Case& c : cases) {
    Status s = engine.SubmitUpdate(MakeTask(c.id, c.worker, c.hours, c.at));
    std::printf("  submit %-3s %-4s %2ldh on day %2llu -> %s\n", c.id,
                c.worker, static_cast<long>(c.hours),
                static_cast<unsigned long long>(c.at / kDay),
                s.ToString().c_str());
  }

  const core::EngineStats& stats = engine.stats();
  std::printf("\nstats: submitted=%llu accepted=%llu rejected=%llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.rejected_constraint));

  // (RC4) Any participant audits the ledger and verifies one entry.
  const ledger::LedgerDb& led = ordering.Ledger();
  std::printf("\nledger: %llu entries, digest root %s...\n",
              static_cast<unsigned long long>(led.size()),
              HexEncode(led.Digest().root).substr(0, 16).c_str());
  Status audit = core::IntegrityAuditor::AuditLedger(led);
  std::printf("full audit: %s\n", audit.ToString().c_str());

  auto entry = led.GetEntry(0);
  auto proof = led.ProveInclusion(0, led.size());
  if (entry.ok() && proof.ok()) {
    bool included = ledger::LedgerDb::VerifyInclusion(*entry, *proof,
                                                      led.Digest());
    std::printf("inclusion proof for entry 0: %s\n",
                included ? "VALID" : "INVALID");
    auto update = core::Update::Decode(entry->payload);
    if (update.ok()) {
      std::printf("entry 0 is update '%s' by '%s'\n", update->id.c_str(),
                  update->producer.c_str());
    }
  }
  return 0;
}
