// In-person conference participation (§2.2, Research Challenge 3):
// the attendee list is PUBLIC; the vaccination record in the update is
// PRIVATE. Registrants prove "doses >= 2" in zero knowledge, and can
// consult the public list through two-server PIR without revealing what
// they looked at.
//
// Build & run:  ./build/examples/conference

#include <cstdio>

#include "core/prever.h"

using namespace prever;

int main() {
  std::printf("== RC3: public attendee list, private vaccine records ==\n\n");

  storage::Database db;
  storage::Schema attendees({{"name", storage::ValueType::kString},
                             {"mode", storage::ValueType::kString}});
  if (!db.CreateTable("attendees", attendees).ok()) return 1;

  // Public constraint: venue capacity (counting the incoming registrant).
  constraint::ConstraintCatalog catalog;
  if (!catalog
           .Add("capacity", constraint::ConstraintScope::kInternal,
                constraint::ConstraintVisibility::kPublic,
                "COUNT(attendees) + 1 <= 3")
           .ok()) {
    return 1;
  }
  // Private requirement: at least two vaccine doses, proven in ZK.
  std::vector<core::AttestationRequirement> requirements = {
      {"doses", constraint::BoundDirection::kLower, 2, /*slack_bits=*/8}};

  core::CentralizedOrdering ordering;
  core::PublicDataEngine desk(&db, &catalog, requirements, &ordering,
                              crypto::PedersenParams::Test256());
  crypto::Drbg registrant_rng(uint64_t{99});

  struct Registrant {
    const char* name;
    int64_t doses;
  };
  const Registrant people[] = {
      {"ada", 3}, {"bob", 2}, {"eve", 1}, {"carol", 2}};
  for (const Registrant& p : people) {
    core::PublicDataEngine::Submission s;
    s.update.id = std::string("reg-") + p.name;
    s.update.producer = p.name;
    s.update.timestamp = kDay;
    s.update.fields = {{"name", storage::Value::String(p.name)}};
    s.update.mutation.op = storage::Mutation::Op::kInsert;
    s.update.mutation.table = "attendees";
    s.update.mutation.row = {storage::Value::String(p.name),
                             storage::Value::String("in-person")};
    auto attestation =
        desk.Attest(desk.requirements()[0], p.doses, registrant_rng);
    if (attestation.ok()) s.attestations.push_back(std::move(*attestation));
    Status verdict = attestation.ok()
                         ? desk.Submit(s)
                         : attestation.status();
    std::printf("  %-6s (doses hidden) -> %s\n", p.name,
                verdict.ok() ? "REGISTERED" : verdict.ToString().c_str());
  }
  // eve was rejected (1 dose), carol hit the capacity limit.

  std::printf("\npublic attendee list (%llu rows):\n",
              static_cast<unsigned long long>((*db.GetTable("attendees"))->size()));
  (*db.GetTable("attendees"))->Scan([](const storage::Row& row) {
    std::printf("  %s\n", (*row[0].AsString()).c_str());
    return true;
  });

  // A registrant privately checks row 1 of the list via two-server PIR —
  // neither server learns which entry was read.
  auto snapshot = desk.BuildPirSnapshot("attendees", /*record_size=*/64);
  if (snapshot.ok()) {
    pir::XorPirClient reader(uint64_t{5});
    auto record = reader.Fetch(1, *snapshot->server0, *snapshot->server1);
    if (record.ok()) {
      BinaryReader r(*record);
      auto name = storage::Value::DecodeFrom(r);
      std::printf("\nPIR read of row 1 (servers learned nothing): %s\n",
                  name.ok() ? name->ToString().c_str() : "?");
    }
    std::printf("server scan work per query: %llu records (linear — the "
                "RC3 cost the paper flags)\n",
                static_cast<unsigned long long>(snapshot->server0->records_scanned()));
  }
  std::printf("\nledger audit: %s\n",
              core::IntegrityAuditor::AuditLedger(ordering.Ledger())
                  .ToString()
                  .c_str());
  return 0;
}
