// Auditor tour (Research Challenge 4 in depth): everything "any
// participant" can verify about a PReVer deployment without privileged
// access — plus the two integrity extensions: producer-signed updates and
// update-pattern shaping.
//
// Build & run:  ./build/examples/auditor_tour

#include <cstdio>

#include "core/prever.h"

using namespace prever;

namespace {

core::Update MakeEvent(const std::string& id, SimTime at) {
  core::Update u;
  u.id = id;
  u.producer = "sensor-1";
  u.timestamp = at;
  u.mutation.op = storage::Mutation::Op::kUpsert;
  u.mutation.table = "readings";
  u.mutation.row = {storage::Value::String(id), storage::Value::Timestamp(at)};
  return u;
}

void Show(const char* what, const Status& s) {
  std::printf("  %-46s %s\n", what, s.ToString().c_str());
}

}  // namespace

int main() {
  std::printf("== RC4 auditor tour ==\n\n");

  // --- 1. A manager's ledger, audited and persisted -------------------
  std::printf("[1] centralized ledger: digests, proofs, persistence\n");
  ledger::LedgerDb ledger;
  for (int i = 0; i < 10; ++i) {
    ledger.Append(ToBytes("reading-" + std::to_string(i)), i * kMinute);
  }
  ledger::LedgerDigest observed = ledger.Digest();  // Auditor's checkpoint.
  Show("full audit", core::IntegrityAuditor::AuditLedger(ledger));

  // The manager keeps appending; the auditor later verifies the extension.
  for (int i = 10; i < 16; ++i) {
    ledger.Append(ToBytes("reading-" + std::to_string(i)), i * kMinute);
  }
  auto proof = ledger.ProveConsistency(observed.size, ledger.size());
  Show("append-only extension proof",
       core::IntegrityAuditor::CheckExtension(observed, ledger.Digest(),
                                              *proof));

  // Restart: persist and reload, digest must be identical.
  std::string path = "/tmp/prever_auditor_tour_ledger.bin";
  (void)ledger.SaveToFile(path);
  auto reloaded = ledger::LedgerDb::LoadFromFile(path);
  std::printf("  reload after restart: %s (digest %s)\n",
              reloaded.ok() ? "OK" : reloaded.status().ToString().c_str(),
              reloaded.ok() && reloaded->Digest() == ledger.Digest()
                  ? "matches"
                  : "MISMATCH");
  std::remove(path.c_str());

  // A manager that rewrites history cannot fake the extension proof.
  ledger::LedgerDb rewritten;
  for (int i = 0; i < 16; ++i) rewritten.Append(ToBytes("forged"), i);
  auto forged_proof = rewritten.ProveConsistency(observed.size, 16);
  Show("history rewrite detected",
       core::IntegrityAuditor::CheckExtension(observed, rewritten.Digest(),
                                              *forged_proof));

  // --- 2. Federated replicas must agree --------------------------------
  std::printf("\n[2] PBFT-replicated ledgers: replica agreement\n");
  core::PbftOrdering pbft(4, net::SimNetConfig{});
  for (int i = 0; i < 6; ++i) (void)pbft.Append(ToBytes("tx" + std::to_string(i)), i);
  pbft.network().RunUntilIdle();
  std::vector<const ledger::LedgerDb*> replicas;
  for (size_t i = 0; i < pbft.num_replicas(); ++i) {
    replicas.push_back(&pbft.ReplicaLedger(i));
  }
  Show("4 replicas, committed prefix",
       core::IntegrityAuditor::CheckReplicaAgreement(replicas));

  // --- 3. Sharded deployment -------------------------------------------
  std::printf("\n[3] sharded PBFT (SharPer/Qanaat-style)\n");
  core::ShardedPbftOrdering sharded(3, 4, net::SimNetConfig{});
  for (int i = 0; i < 9; ++i) {
    (void)sharded.AppendRouted("device" + std::to_string(i),
                               ToBytes("m" + std::to_string(i)), i);
  }
  std::printf("  9 updates over 3 shards: committed=%llu, slowest shard at "
              "%.1f ms simulated\n",
              static_cast<unsigned long long>(sharded.CommittedCount()),
              static_cast<double>(sharded.MaxShardTime()) / kMillisecond);

  // --- 4. Producer-signed updates --------------------------------------
  std::printf("\n[4] update authentication (who really sent this?)\n");
  storage::Database db;
  storage::Schema schema({{"id", storage::ValueType::kString},
                          {"at", storage::ValueType::kTimestamp}});
  (void)db.CreateTable("readings", schema);
  constraint::ConstraintCatalog catalog;
  core::CentralizedOrdering ordering;
  core::PlaintextEngine inner(&db, &catalog, &ordering);
  crypto::Drbg drbg(uint64_t{12});
  auto sensor_key = crypto::RsaGenerateKey(512, drbg).value();
  auto attacker_key = crypto::RsaGenerateKey(512, drbg).value();
  core::ProducerKeyDirectory directory;
  (void)directory.Register("sensor-1", sensor_key.pub);
  core::AuthenticatingEngine authenticated(&inner, &directory);
  Show("genuine signed update",
       authenticated.SubmitSigned(
           core::SignUpdate(MakeEvent("r1", kMinute), sensor_key)));
  Show("impersonation attempt",
       authenticated.SubmitSigned(
           core::SignUpdate(MakeEvent("r2", kMinute), attacker_key)));

  // --- 5. Update-pattern shaping ----------------------------------------
  std::printf("\n[5] hiding update timing (the DP-Sync concern, §4)\n");
  int dummy_n = 0;
  core::UpdatePatternShaper shaper(
      &inner, kSecond, [&](SimTime tick) {
        return MakeEvent("pad-" + std::to_string(dummy_n++), tick);
      });
  // A bursty secret arrival pattern: 4 readings in the first 100 ms.
  for (int i = 0; i < 4; ++i) shaper.Enqueue(MakeEvent("burst" + std::to_string(i), 100));
  shaper.AdvanceTo(8 * kSecond);
  std::printf("  observer saw %llu perfectly periodic submissions "
              "(%llu real, %llu padding); added latency %.2f s total\n",
              static_cast<unsigned long long>(shaper.real_submitted() +
                                              shaper.dummies_submitted()),
              static_cast<unsigned long long>(shaper.real_submitted()),
              static_cast<unsigned long long>(shaper.dummies_submitted()),
              static_cast<double>(shaper.total_added_latency()) / kSecond);

  std::printf("\nAll integrity checks behaved as RC4 requires.\n");
  return 0;
}
