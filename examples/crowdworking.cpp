// Multi-platform crowdworking (§2.3 / §5, Research Challenge 2): a worker
// drives for several competing platforms; the FLSA caps the weekly total
// across ALL of them. Two PReVer instantiations are run side by side:
//
//   * decentralized  — FederatedMpcEngine: the platforms jointly evaluate
//     "total hours <= 40" via secure multi-party comparison; nobody learns
//     anyone's local totals;
//   * centralized    — FederatedTokenEngine (the Separ architecture): a
//     trusted authority issues 40 blind-signed hour-tokens per worker per
//     week; platforms only check signatures and double spends.
//
// Build & run:  ./build/examples/crowdworking

#include <cstdio>

#include "core/prever.h"
#include "workload/crowdworking.h"

using namespace prever;

namespace {

std::vector<std::unique_ptr<core::FederatedPlatform>> MakePlatforms(int n) {
  std::vector<std::unique_ptr<core::FederatedPlatform>> platforms;
  for (int i = 0; i < n; ++i) {
    auto p = std::make_unique<core::FederatedPlatform>();
    p->id = "platform-" + std::to_string(i);
    p->db.CreateTable(workload::CrowdworkingWorkload::kTableName,
                      workload::CrowdworkingWorkload::WorklogSchema());
    platforms.push_back(std::move(p));
  }
  return platforms;
}

}  // namespace

int main() {
  std::printf("== RC2: FLSA 40h/week across mutually distrustful platforms ==\n\n");

  workload::CrowdworkingConfig config;
  config.num_workers = 10;
  config.num_platforms = 3;
  config.num_weeks = 2;
  config.seed = 11;
  workload::CrowdworkingWorkload workload_gen(config);
  std::vector<workload::TaskEvent> trace = workload_gen.Generate();
  std::printf("generated %zu task events for %zu workers on %zu platforms\n\n",
              trace.size(), config.num_workers, config.num_platforms);

  // --- Decentralized: secure multi-party comparison --------------------
  {
    auto platforms = MakePlatforms(3);
    std::vector<core::FederatedPlatform*> raw;
    for (auto& p : platforms) raw.push_back(p.get());
    constraint::ConstraintCatalog regulations;
    regulations.Add("flsa", constraint::ConstraintScope::kRegulation,
                    constraint::ConstraintVisibility::kPublic,
                    "SUM(worklog.hours WHERE worker = update.worker "
                    "WINDOW 7d) + update.hours <= 40");
    core::CentralizedOrdering ordering;
    core::FederatedMpcEngine engine(raw, &regulations, &ordering, 17);

    uint64_t idx = 0;
    for (const workload::TaskEvent& e : trace) {
      (void)engine.SubmitVia(e.platform, e.ToUpdate(idx++));
    }
    const core::EngineStats& s = engine.stats();
    std::printf("[mpc]   accepted %llu / %llu tasks (%llu capped by FLSA)\n",
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.submitted),
                static_cast<unsigned long long>(s.rejected_constraint));
    std::printf("[mpc]   MPC traffic: %llu rounds, %llu messages, %llu bytes\n",
                static_cast<unsigned long long>(engine.transcript().rounds),
                static_cast<unsigned long long>(engine.transcript().messages),
                static_cast<unsigned long long>(engine.transcript().bytes));
    for (size_t i = 0; i < raw.size(); ++i) {
      std::printf("[mpc]   %s holds %zu private rows\n",
                  raw[i]->id.c_str(),
                  (*raw[i]->db.GetTable("worklog"))->size());
    }
  }

  // --- Centralized: Separ-style tokens ---------------------------------
  {
    auto platforms = MakePlatforms(3);
    std::vector<core::FederatedPlatform*> raw;
    for (auto& p : platforms) raw.push_back(p.get());
    token::TokenAuthority authority(/*rsa_bits=*/512, /*budget=*/40, kWeek,
                                    /*seed=*/23);
    core::CentralizedOrdering ordering;  // The shared spent-token ledger.
    core::FederatedTokenEngine engine(raw, &authority, &ordering, "hours");

    uint64_t idx = 0;
    for (const workload::TaskEvent& e : trace) {
      (void)engine.SubmitVia(e.platform, e.ToUpdate(idx++));
    }
    const core::EngineStats& s = engine.stats();
    std::printf("\n[token] accepted %llu / %llu tasks (%llu capped by budget)\n",
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.submitted),
                static_cast<unsigned long long>(s.rejected_constraint));
    std::printf("[token] %llu hour-tokens burned onto the shared ledger\n",
                static_cast<unsigned long long>(engine.tokens_spent()));
    std::printf("[token] shared ledger audit: %s\n",
                core::IntegrityAuditor::AuditLedger(ordering.Ledger())
                    .ToString()
                    .c_str());
  }

  // --- Dealer-free: threshold ElGamal -----------------------------------
  {
    auto platforms = MakePlatforms(3);
    std::vector<core::FederatedPlatform*> raw;
    for (auto& p : platforms) raw.push_back(p.get());
    constraint::ConstraintCatalog regulations;
    regulations.Add("flsa", constraint::ConstraintScope::kRegulation,
                    constraint::ConstraintVisibility::kPublic,
                    "SUM(worklog.hours WHERE worker = update.worker "
                    "WINDOW 7d) + update.hours <= 40");
    core::CentralizedOrdering ordering;
    core::FederatedThresholdEngine engine(
        raw, &regulations, &ordering, crypto::PedersenParams::Test256(), 29);

    uint64_t idx = 0;
    for (const workload::TaskEvent& e : trace) {
      (void)engine.SubmitVia(e.platform, e.ToUpdate(idx++));
    }
    const core::EngineStats& s = engine.stats();
    std::printf("\n[teg]   accepted %llu / %llu tasks (%llu capped by FLSA) "
                "— no dealer, no authority (joint-key DKG)\n",
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.submitted),
                static_cast<unsigned long long>(s.rejected_constraint));
    std::printf("[teg]   %llu aggregate totals jointly opened (and nothing "
                "else)\n",
                static_cast<unsigned long long>(engine.totals_opened()));
  }

  std::printf(
      "\nAll three instantiations enforce the same cross-platform "
      "regulation. Trade-offs: tokens need a trusted authority (Separ's "
      "stated shortcoming) but no per-update multi-party round; MPC opens "
      "only the compliance bit but uses a semi-honest offline dealer; "
      "threshold ElGamal needs neither dealer nor authority but opens the "
      "aggregate total.\n");
  return 0;
}
