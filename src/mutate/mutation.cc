#include "mutate/mutation.h"

#ifdef PREVER_MUTATIONS

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace prever::mutate {

namespace {

constexpr SiteInfo kSites[] = {
#define PREVER_MUTATION_SITE(id, category, location, description, detector) \
  {MutationSite::id, #id, MutationCategory::category, location, description, \
   detector},
#include "mutate/sites.def"
#undef PREVER_MUTATION_SITE
};
static_assert(sizeof(kSites) / sizeof(kSites[0]) == kNumMutationSites);

// kNumSites == no active mutant.
std::atomic<int> g_active{static_cast<int>(MutationSite::kNumSites)};
std::atomic<bool> g_reached[kNumMutationSites];

/// One-time PREVER_MUTATION=<name> environment selection. An unknown name
/// aborts loudly: silently running unmutated would report a fake kill.
bool InitFromEnv() {
  const char* env = std::getenv("PREVER_MUTATION");
  if (env == nullptr || *env == '\0') return true;
  const SiteInfo* info = FindSiteByName(env);
  if (info == nullptr) {
    std::fprintf(stderr, "PREVER_MUTATION: unknown site '%s'\n", env);
    std::abort();
  }
  g_active.store(static_cast<int>(info->site), std::memory_order_relaxed);
  std::fprintf(stderr, "PREVER_MUTATION: %s active (%s: %s)\n", info->name,
               info->location, info->description);
  return true;
}

}  // namespace

const SiteInfo* AllSites() {
  static const bool env_init = InitFromEnv();
  (void)env_init;
  return kSites;
}

const SiteInfo& GetSiteInfo(MutationSite site) {
  return kSites[static_cast<size_t>(site)];
}

const SiteInfo* FindSiteByName(std::string_view name) {
  for (const SiteInfo& info : kSites) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

const char* CategoryName(MutationCategory category) {
  switch (category) {
    case MutationCategory::kConstraint:
      return "constraint";
    case MutationCategory::kCrypto:
      return "crypto";
    case MutationCategory::kLedger:
      return "ledger";
    case MutationCategory::kConsensus:
      return "consensus";
    case MutationCategory::kEngine:
      return "engine";
  }
  return "unknown";
}

bool MutationActive(MutationSite site) {
  static const bool env_init = InitFromEnv();
  (void)env_init;
  int idx = static_cast<int>(site);
  g_reached[idx].store(true, std::memory_order_relaxed);
  return g_active.load(std::memory_order_relaxed) == idx;
}

void ActivateSite(MutationSite site) {
  g_active.store(static_cast<int>(site), std::memory_order_relaxed);
}

void ClearActiveSite() {
  g_active.store(static_cast<int>(MutationSite::kNumSites),
                 std::memory_order_relaxed);
}

MutationSite ActiveSite() {
  return static_cast<MutationSite>(g_active.load(std::memory_order_relaxed));
}

bool SiteReached(MutationSite site) {
  return g_reached[static_cast<size_t>(site)].load(std::memory_order_relaxed);
}

void ResetReachedFlags() {
  for (auto& flag : g_reached) flag.store(false, std::memory_order_relaxed);
}

}  // namespace prever::mutate

#else  // !PREVER_MUTATIONS

// The harness compiles to nothing in regular builds; this anchor keeps the
// library non-empty for linkers that reject archives with no symbols.
namespace prever::mutate {
void MutationHarnessDisabledAnchor() {}
}  // namespace prever::mutate

#endif  // PREVER_MUTATIONS
