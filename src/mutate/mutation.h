#ifndef PREVER_MUTATE_MUTATION_H_
#define PREVER_MUTATE_MUTATION_H_

// Runtime mutation harness for the verification layer (mull-inspired).
//
// Verification-critical decision points are annotated in place:
//
//   if (PREVER_MUTATION(RSA_VERIFY_ACCEPT, recovered == expected, true)) ...
//
// In the default build (PREVER_MUTATIONS undefined) the macro expands to
// `(original)` — the mutant expression never enters the token stream, so
// hot paths are byte-for-byte identical to an uninstrumented build; there
// is no branch, no registry, no symbol dependency.
//
// Under -DPREVER_MUTATIONS=ON the macro evaluates the mutant expression
// iff its site is the single active mutation, and records that the site
// was reached. Exactly one mutant is active at a time — either selected
// in-process by the mutation_kill_test driver, or via the environment:
//
//   PREVER_MUTATION=EVAL_CMP_LE_EXCLUSIVE ./tests/sim_engine_diff_test
//
// The full site table lives in mutate/sites.def; a site id used here but
// absent from the table is a compile error.

#if !defined(PREVER_MUTATIONS)

#define PREVER_MUTATION(site, original, mutant) (original)

#else  // PREVER_MUTATIONS

#include <cstddef>
#include <string_view>

namespace prever::mutate {

enum class MutationSite : int {
#define PREVER_MUTATION_SITE(id, category, location, description, detector) \
  id,
#include "mutate/sites.def"
#undef PREVER_MUTATION_SITE
  kNumSites,
};

enum class MutationCategory {
  kConstraint,
  kCrypto,
  kLedger,
  kConsensus,
  kEngine,
};

struct SiteInfo {
  MutationSite site;
  const char* name;        // Activation name, e.g. "EVAL_CMP_LE_EXCLUSIVE".
  MutationCategory category;
  const char* location;    // Source file hosting the decision point.
  const char* description; // What the mutant does.
  const char* detector;    // Suite expected to kill it first.
};

inline constexpr size_t kNumMutationSites =
    static_cast<size_t>(MutationSite::kNumSites);

/// The full registry, indexed by MutationSite value.
const SiteInfo* AllSites();

const SiteInfo& GetSiteInfo(MutationSite site);

/// Looks up a site by its activation name; nullptr if unknown.
const SiteInfo* FindSiteByName(std::string_view name);

const char* CategoryName(MutationCategory category);

/// Hot-path hook behind PREVER_MUTATION(): marks the site reached and
/// reports whether it is the active mutant. Thread-safe (the engines run
/// verification on thread pools).
bool MutationActive(MutationSite site);

/// Selects the single active mutant (driver use). Overrides any
/// PREVER_MUTATION environment selection.
void ActivateSite(MutationSite site);
void ClearActiveSite();

/// The active mutant, or kNumSites when running unmutated.
MutationSite ActiveSite();

/// Reached-tracking: a mutant whose site never executes cannot be killed;
/// the driver reports such sites separately instead of calling them killed.
bool SiteReached(MutationSite site);
void ResetReachedFlags();

}  // namespace prever::mutate

#define PREVER_MUTATION(site, original, mutant)                           \
  (::prever::mutate::MutationActive(::prever::mutate::MutationSite::site) \
       ? (mutant)                                                         \
       : (original))

#endif  // PREVER_MUTATIONS
#endif  // PREVER_MUTATE_MUTATION_H_
