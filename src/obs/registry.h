#ifndef PREVER_OBS_REGISTRY_H_
#define PREVER_OBS_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace prever::obs {

/// Label set attached to one metric instance within a family. std::map keeps
/// labels sorted, so the dedup key and renderings are order-independent.
using Labels = std::map<std::string, std::string>;

/// Process-wide home for labeled metric families. Registration takes a mutex
/// (cold path); the returned pointers are stable for the registry's lifetime,
/// so hot paths record through them lock-free. Instantiable so tests get
/// isolated registries; production code shares Default().
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Default();

  /// Returns the metric for (name, labels), creating it on first use.
  /// Repeated calls with equal name+labels return the same instance.
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  /// Prometheus-style plain-text exposition (one line per metric; histograms
  /// render count/sum/min/max/percentile lines).
  std::string RenderText() const;

  /// Structured exposition:
  /// {"counters":[{"name","labels","value"}],
  ///  "gauges":[...],
  ///  "histograms":[{"name","labels","count","sum","min","max","mean",
  ///                 "p50","p90","p99","p999"}]}
  Json RenderJsonDoc() const;
  std::string RenderJson() const { return RenderJsonDoc().Dump(); }

 private:
  template <typename M>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<M> metric;
  };

  static std::string Key(const std::string& name, const Labels& labels);

  mutable std::mutex mu_;
  // Insertion-ordered storage (stable rendering) + key index for dedup.
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
  std::map<std::string, size_t> counter_index_;
  std::map<std::string, size_t> gauge_index_;
  std::map<std::string, size_t> histogram_index_;
};

}  // namespace prever::obs

#endif  // PREVER_OBS_REGISTRY_H_
