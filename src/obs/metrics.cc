#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace prever::obs {

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

HistogramSnapshot HistogramSnapshot::Delta(const HistogramSnapshot& earlier) const {
  HistogramSnapshot d;
  if (count <= earlier.count) return d;  // Nothing recorded in the window.
  d.count = count - earlier.count;
  d.sum = sum - earlier.sum;
  // Exact min/max of just the window are unknowable from cumulative state;
  // the cumulative extremes are the tightest safe bounds.
  d.min = min;
  d.max = max;
  d.buckets.resize(buckets.size(), 0);
  for (size_t i = 0; i < buckets.size(); ++i) {
    uint64_t before = i < earlier.buckets.size() ? earlier.buckets[i] : 0;
    d.buckets[i] = buckets[i] - before;
  }
  return d;
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // 1-based rank of the selected sample under the nearest-rank definition.
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank >= count) return max;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      uint64_t lo = Histogram::BucketLower(static_cast<int>(i));
      uint64_t hi = Histogram::BucketUpper(static_cast<int>(i));
      uint64_t mid = lo + (hi - lo) / 2;
      return std::clamp(mid, min, max);
    }
  }
  return max;
}

Histogram::Histogram() : buckets_(kNumBuckets) {}

int Histogram::BucketIndex(uint64_t value) {
  if (value < kSub) return static_cast<int>(value);
  int e = std::bit_width(value) - 1;  // Highest set bit; e >= kSubBits here.
  uint64_t sub = (value >> (e - kSubBits)) & (kSub - 1);
  return (e - kSubBits) * static_cast<int>(kSub) + static_cast<int>(kSub) +
         static_cast<int>(sub);
}

uint64_t Histogram::BucketLower(int i) {
  if (i < static_cast<int>(kSub)) return static_cast<uint64_t>(i);
  int e = kSubBits + (i - static_cast<int>(kSub)) / static_cast<int>(kSub);
  uint64_t sub = static_cast<uint64_t>((i - static_cast<int>(kSub)) %
                                       static_cast<int>(kSub));
  return (kSub + sub) << (e - kSubBits);
}

uint64_t Histogram::BucketUpper(int i) {
  if (i < static_cast<int>(kSub)) return static_cast<uint64_t>(i);
  int e = kSubBits + (i - static_cast<int>(kSub)) / static_cast<int>(kSub);
  uint64_t width = 1ull << (e - kSubBits);
  return BucketLower(i) + width - 1;
}

void Histogram::Record(uint64_t value) {
  buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  // Count last: a reader that sees the new count also sees this sample's
  // bucket under typical schedules; snapshots are statistical, not linearized.
  count_.fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  uint64_t mn = min_.load(std::memory_order_relaxed);
  s.min = (s.count == 0 || mn == ~0ull) ? 0 : mn;
  s.max = max_.load(std::memory_order_relaxed);
  s.buckets.resize(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace prever::obs
