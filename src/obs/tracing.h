#ifndef PREVER_OBS_TRACING_H_
#define PREVER_OBS_TRACING_H_

// Causal tracing: per-transaction span trees over the full PReVer pipeline
// (engine submit -> group-commit batching -> consensus -> ledger/WAL
// durability -> per-phase verification), recorded into a lock-free
// per-thread ring-buffer flight recorder and exportable as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Design (see DESIGN.md "Causal tracing"):
//  - A TraceContext (trace_id / span_id / parent_span_id) is minted at the
//    root of a transaction (engine SubmitUpdate, or pipeline Enqueue for raw
//    ordering payloads) and propagated through a thread-local current-context
//    slot. net::Message carries the context across simulated hops, so spans
//    opened on one replica parent spans recorded while another replica's
//    handler runs.
//  - Events are fixed-size binary records with DUAL timestamps: wall-clock
//    monotonic nanoseconds and (when a SimClock is installed for the thread)
//    simulated-time microseconds.
//  - Sampling is deterministic: trace ids are a process-wide counter and the
//    keep/drop decision is a seeded hash of the id, so a fixed (seed, period)
//    pair samples the same transactions on every run.
//  - Cost model: compiled out (PREVER_TRACING=OFF -> PREVER_TRACING_DISABLED)
//    every class below is an empty stub and calls fold to nothing; compiled
//    in but runtime-disabled (the default), every entry point is one relaxed
//    atomic load and a branch. See trace.h for the zero-overhead contract.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "obs/json.h"

namespace prever::obs {

/// Propagated causal identity of one span. trace_id == 0 means "not part of
/// a sampled trace": all recording against such a context is skipped, which
/// is also how the sampling decision propagates (unsampled roots mint a
/// null context and the whole downstream pipeline stays silent).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;

  bool sampled() const { return trace_id != 0; }
};

/// Span/instant taxonomy. Stages mirror the EngineMetrics phase histograms
/// (submit/verify/crypto/token/ledger) plus the ordering pipeline and
/// consensus hops the histograms cannot attribute per-transaction.
enum class TraceStage : uint8_t {
  kNone = 0,
  // Engine phases (span kind; taxonomy shared with EngineMetrics).
  kSubmit = 1,        ///< Whole SubmitUpdate (transaction root).
  kVerify = 2,        ///< Constraint / proof verification.
  kCrypto = 3,        ///< Commitment / encryption work.
  kToken = 4,         ///< Token acquisition & checks.
  kLedgerPhase = 5,   ///< Engine-side ledger phase (ordering call).
  // Ordering pipeline (span kind).
  kQueueWait = 6,     ///< Enqueue -> batch seal (open-batch residency).
  kConsensus = 7,     ///< Envelope submit -> quorum commit.
  kLedgerAppend = 8,  ///< Replica-0 ledger append of a committed batch.
  kWalAppend = 9,     ///< Write-ahead-log append + flush.
  // Instants.
  kBatchSeal = 10,       ///< Batch sealed; arg = payload count.
  kBatchJoin = 11,       ///< Payload joined a batch; arg = batch span id.
  kNetSend = 12,         ///< Message enqueued; arg = protocol msg type.
  kNetDeliver = 13,      ///< Message delivered; arg = protocol msg type.
  kRaftAppendEntries = 14,  ///< Follower processed AppendEntries; arg = n.
  kPbftPrePrepare = 15,     ///< Replica processed pre-prepare; arg = seq.
  kPbftPrepare = 16,        ///< Replica processed prepare; arg = seq.
  kPbftCommit = 17,         ///< Replica processed commit; arg = seq.
  // Verification sub-phases (span kind; children of kVerify).
  kVerifyCompile = 18,      ///< Constraint → bytecode compilation.
  kVerifyEval = 19,         ///< Compiled/interpreted constraint evaluation.
  kVerifyAggUpdate = 20,    ///< Incremental aggregate-cache delta on commit.
  // Crash recovery (span kind; see src/recovery/ and DESIGN.md).
  kRecoverLoad = 21,        ///< Checkpoint locate + CRC validate + decode.
  kRecoverReplay = 22,      ///< WAL/journal suffix replay past the checkpoint.
  kStateTransfer = 23,      ///< Peer checkpoint fetch/install; arg = bytes.
};

const char* TraceStageName(TraceStage stage);

enum class TraceEventKind : uint8_t { kBegin = 1, kEnd = 2, kInstant = 3 };

/// One decoded flight-recorder record (the in-ring representation packs the
/// same fields into atomic words; see tracing.cc).
struct TraceEvent {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  uint64_t wall_ns = 0;  ///< MonotonicNanos() at record time.
  uint64_t sim_us = 0;   ///< Thread SimClock at record time (0 if none).
  uint64_t arg = 0;      ///< Stage-specific payload (batch id, msg type...).
  uint32_t lane = 0;     ///< Flight-recorder lane (one per writer thread).
  TraceEventKind kind = TraceEventKind::kInstant;
  TraceStage stage = TraceStage::kNone;
};

struct TracerConfig {
  bool enabled = false;        ///< Master switch (runtime; default off).
  uint64_t sample_period = 1;  ///< Keep 1 in N minted traces (1 = all).
  uint64_t sample_seed = 0;    ///< Seed of the deterministic keep/drop hash.
  size_t ring_capacity = 4096; ///< Events per writer-thread ring (pow2-ceil).
  /// Forensics mode for the sim harness: when a message is sent with no
  /// sampled context current (pure consensus scenarios have no engine
  /// submit roots), SimNetwork mints a per-message root so net/consensus
  /// hop instants still reach the flight recorder. Off by default —
  /// benches and production paths keep strict transaction-rooted traces.
  bool trace_unrooted_messages = false;
};

#if !defined(PREVER_TRACING_DISABLED)

/// Process-wide trace collector. All mutating entry points are safe to call
/// from any thread: records go to a per-thread single-writer ring buffer
/// (every slot field is a relaxed atomic; the ring head is published with
/// release order), so concurrent Snapshot() readers are race-free — at worst
/// they observe a torn record that a wrap-around is overwriting, which a
/// best-effort flight recorder tolerates by design.
class Tracer {
 public:
  struct Ring;  // Per-thread flight-recorder ring (defined in tracing.cc).

  static Tracer& Get();

  /// Applies `config` and clears all rings + counters. Not safe concurrently
  /// with recording (call from a quiesced point: test setup, bench main).
  void Configure(const TracerConfig& config);
  void SetEnabled(bool enabled);
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  bool trace_unrooted_messages() const {
    return enabled() &&
           trace_unrooted_messages_.load(std::memory_order_relaxed);
  }
  const TracerConfig& config() const { return config_; }

  /// Mints a new root context; returns a null context when disabled or when
  /// the deterministic sampler drops the trace.
  TraceContext MintTrace();

  /// Thread-local current context (null when no span is open on this
  /// thread). ScopedTraceContext / TraceSpan maintain it.
  static const TraceContext& CurrentContext();

  /// Opens a span: child of `parent` when sampled, otherwise a freshly
  /// minted root. Records the kBegin event; returns the span's context
  /// (null when nothing was recorded). Does NOT touch the thread-local
  /// current context — that is TraceSpan's job.
  TraceContext BeginSpan(TraceStage stage, const TraceContext& parent,
                         uint64_t arg = 0);
  /// Convenience: child of the thread-current context (or a new root).
  TraceContext BeginSpan(TraceStage stage, uint64_t arg = 0);
  /// Child-only variant: null (silent) when `parent` is unsampled, so an
  /// unsampled transaction stays unsampled end to end.
  TraceContext BeginChild(TraceStage stage, const TraceContext& parent,
                          uint64_t arg = 0);
  void EndSpan(const TraceContext& ctx, TraceStage stage, uint64_t arg = 0);
  void Instant(const TraceContext& ctx, TraceStage stage, uint64_t arg = 0);

  /// Installs the simulated clock used for this thread's sim timestamps
  /// (nullptr to clear). SimNetwork installs itself while stepping.
  static void SetThreadSimClock(const SimClock* clock);

  /// Counters (process lifetime since last Configure).
  uint64_t traces_minted() const;
  uint64_t traces_sampled() const;
  uint64_t events_recorded() const;

  /// All recorded events, per-lane ring order concatenated lane by lane
  /// (within a lane, oldest first). Safe concurrently with writers.
  std::vector<TraceEvent> Snapshot() const;
  /// The `n` most recent events across all lanes (by wall clock).
  std::vector<TraceEvent> Tail(size_t n) const;
  /// Human-readable tail for failure reports, one "    stage ..." line per
  /// event (indent matches sim-report formatting); empty when no events.
  std::string TailString(size_t n) const;

  /// Chrome trace-event document: matched begin/end pairs become "X"
  /// complete events, instants become "i"; a "prever" metadata object
  /// carries schema + drop counters. Loadable in Perfetto as-is.
  Json ChromeTraceDoc() const;
  /// Writes ChromeTraceDoc() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  Tracer() = default;

  Ring* ThreadRing();
  void Record(TraceEventKind kind, TraceStage stage, const TraceContext& ctx,
              uint64_t arg);

  std::atomic<bool> enabled_{false};
  std::atomic<bool> trace_unrooted_messages_{false};
  TracerConfig config_{};
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint64_t> traces_minted_{0};
  std::atomic<uint64_t> traces_sampled_{0};
};

/// Installs `ctx` as the thread-current context for the scope (restores the
/// previous one on exit). Used to adopt a propagated context — e.g. around
/// message delivery or a consensus submit — without opening a span.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// RAII span: opens a child of the thread-current context (or a new root
/// when `root` is true or nothing is current), installs itself as current,
/// and closes + restores on destruction. When the tracer is disabled or the
/// trace is unsampled this is one relaxed load + branch.
class TraceSpan {
 public:
  explicit TraceSpan(TraceStage stage, uint64_t arg = 0, bool root = false);
  ~TraceSpan() { End(); }
  void End();

  const TraceContext& context() const { return ctx_; }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceContext ctx_;
  TraceContext saved_;
  TraceStage stage_ = TraceStage::kNone;
  bool open_ = false;
};

#else  // PREVER_TRACING_DISABLED

// Compiled-out stubs: same API surface, empty bodies. Call sites need no
// #ifdefs and the optimizer erases every use (the classes are empty and all
// methods are constexpr-foldable no-ops).
class Tracer {
 public:
  static Tracer& Get() {
    static Tracer t;
    return t;
  }
  void Configure(const TracerConfig&) {}
  void SetEnabled(bool) {}
  bool enabled() const { return false; }
  bool trace_unrooted_messages() const { return false; }
  TracerConfig config() const { return TracerConfig{}; }
  TraceContext MintTrace() { return {}; }
  static const TraceContext& CurrentContext() {
    static const TraceContext kNull{};
    return kNull;
  }
  TraceContext BeginSpan(TraceStage, const TraceContext&, uint64_t = 0) {
    return {};
  }
  TraceContext BeginSpan(TraceStage, uint64_t = 0) { return {}; }
  TraceContext BeginChild(TraceStage, const TraceContext&, uint64_t = 0) {
    return {};
  }
  void EndSpan(const TraceContext&, TraceStage, uint64_t = 0) {}
  void Instant(const TraceContext&, TraceStage, uint64_t = 0) {}
  static void SetThreadSimClock(const SimClock*) {}
  uint64_t traces_minted() const { return 0; }
  uint64_t traces_sampled() const { return 0; }
  uint64_t events_recorded() const { return 0; }
  std::vector<TraceEvent> Snapshot() const { return {}; }
  std::vector<TraceEvent> Tail(size_t) const { return {}; }
  std::string TailString(size_t) const { return {}; }
  Json ChromeTraceDoc() const { return Json::Object(); }
  Status WriteChromeTrace(const std::string&) const { return Status::Ok(); }
};

class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext&) {}
};

class TraceSpan {
 public:
  explicit TraceSpan(TraceStage, uint64_t = 0, bool = false) {}
  void End() {}
  const TraceContext& context() const { return Tracer::CurrentContext(); }
};

// Proof of the compile-out contract: the stubs carry no state.
static_assert(sizeof(TraceSpan) <= 1, "disabled TraceSpan must be empty");
static_assert(sizeof(ScopedTraceContext) <= 1,
              "disabled ScopedTraceContext must be empty");

#endif  // PREVER_TRACING_DISABLED

}  // namespace prever::obs

/// Causal-span macros (compile to nothing under PREVER_TRACING_DISABLED;
/// one relaxed load + branch when runtime-disabled — see trace.h for the
/// documented zero-overhead contract shared with the histogram spans).
#define PREVER_CAUSAL_SPAN(name, stage) \
  ::prever::obs::TraceSpan name(stage)
#define PREVER_CAUSAL_ROOT_SPAN(name, stage, arg) \
  ::prever::obs::TraceSpan name(stage, arg, /*root=*/true)
#define PREVER_CAUSAL_INSTANT(stage, arg)        \
  ::prever::obs::Tracer::Get().Instant(          \
      ::prever::obs::Tracer::CurrentContext(), stage, arg)

#endif  // PREVER_OBS_TRACING_H_
