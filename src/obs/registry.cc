#include "obs/registry.h"

#include <cstdio>

namespace prever::obs {

namespace {

std::string LabelsToText(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += "\"";
  }
  out += "}";
  return out;
}

Json LabelsToJson(const Labels& labels) {
  Json obj = Json::Object();
  for (const auto& [k, v] : labels) obj.Set(k, Json::Str(v));
  return obj;
}

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

Registry& Registry::Default() {
  static Registry* r = new Registry();  // Leaked: outlives static destructors.
  return *r;
}

std::string Registry::Key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Counter* Registry::GetCounter(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = Key(name, labels);
  auto it = counter_index_.find(key);
  if (it != counter_index_.end()) return counters_[it->second].metric.get();
  counter_index_[key] = counters_.size();
  counters_.push_back({name, labels, std::make_unique<Counter>()});
  return counters_.back().metric.get();
}

Gauge* Registry::GetGauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = Key(name, labels);
  auto it = gauge_index_.find(key);
  if (it != gauge_index_.end()) return gauges_[it->second].metric.get();
  gauge_index_[key] = gauges_.size();
  gauges_.push_back({name, labels, std::make_unique<Gauge>()});
  return gauges_.back().metric.get();
}

Histogram* Registry::GetHistogram(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = Key(name, labels);
  auto it = histogram_index_.find(key);
  if (it != histogram_index_.end()) return histograms_[it->second].metric.get();
  histogram_index_[key] = histograms_.size();
  histograms_.push_back({name, labels, std::make_unique<Histogram>()});
  return histograms_.back().metric.get();
}

std::string Registry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& e : counters_) {
    out += e.name + LabelsToText(e.labels) + " " +
           std::to_string(e.metric->value()) + "\n";
  }
  for (const auto& e : gauges_) {
    out += e.name + LabelsToText(e.labels) + " " +
           FormatDouble(e.metric->value()) + "\n";
  }
  for (const auto& e : histograms_) {
    HistogramSnapshot s = e.metric->snapshot();
    std::string id = e.name + LabelsToText(e.labels);
    out += id + "_count " + std::to_string(s.count) + "\n";
    out += id + "_sum " + std::to_string(s.sum) + "\n";
    if (s.count > 0) {
      out += id + "_min " + std::to_string(s.min) + "\n";
      out += id + "_max " + std::to_string(s.max) + "\n";
      out += id + "_p50 " + std::to_string(s.Percentile(50)) + "\n";
      out += id + "_p99 " + std::to_string(s.Percentile(99)) + "\n";
    }
  }
  return out;
}

Json Registry::RenderJsonDoc() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json doc = Json::Object();
  Json counters = Json::Array();
  for (const auto& e : counters_) {
    Json m = Json::Object();
    m.Set("name", Json::Str(e.name));
    m.Set("labels", LabelsToJson(e.labels));
    m.Set("value", Json::Int(e.metric->value()));
    counters.Append(std::move(m));
  }
  doc.Set("counters", std::move(counters));
  Json gauges = Json::Array();
  for (const auto& e : gauges_) {
    Json m = Json::Object();
    m.Set("name", Json::Str(e.name));
    m.Set("labels", LabelsToJson(e.labels));
    m.Set("value", Json::Number(e.metric->value()));
    gauges.Append(std::move(m));
  }
  doc.Set("gauges", std::move(gauges));
  Json histograms = Json::Array();
  for (const auto& e : histograms_) {
    HistogramSnapshot s = e.metric->snapshot();
    Json m = Json::Object();
    m.Set("name", Json::Str(e.name));
    m.Set("labels", LabelsToJson(e.labels));
    m.Set("count", Json::Int(s.count));
    m.Set("sum", Json::Int(s.sum));
    m.Set("min", Json::Int(s.min));
    m.Set("max", Json::Int(s.max));
    m.Set("mean", Json::Number(s.mean()));
    m.Set("p50", Json::Int(s.Percentile(50)));
    m.Set("p90", Json::Int(s.Percentile(90)));
    m.Set("p99", Json::Int(s.Percentile(99)));
    m.Set("p999", Json::Int(s.Percentile(99.9)));
    histograms.Append(std::move(m));
  }
  doc.Set("histograms", std::move(histograms));
  return doc;
}

}  // namespace prever::obs
