#ifndef PREVER_OBS_JSON_H_
#define PREVER_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace prever::obs {

/// Minimal JSON document model for metric exposition: enough to render
/// registry snapshots and parse them back (round-trip tests, bench tooling).
/// Zero external dependencies (repo rule); not a general-purpose library —
/// objects preserve insertion order and key lookup is a linear scan.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;

  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double v);
  /// Integer-valued number: rendered without a decimal point and preserved
  /// exactly through Parse (counters are uint64).
  static Json Int(uint64_t v);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  /// True for Int-constructed (or integral-parsed) numbers, whose uint64
  /// value survives Dump/Parse exactly even above 2^53.
  bool is_int() const { return kind_ == Kind::kNumber && int_valued_; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const;
  uint64_t AsUint64() const;
  const std::string& AsString() const { return str_; }

  /// Array/object size; 0 for scalars.
  size_t size() const;
  /// Array element access (unchecked beyond bounds -> Null reference).
  const Json& at(size_t i) const;
  /// Object member lookup; nullptr when absent (or not an object).
  const Json* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }

  void Append(Json v);
  void Set(const std::string& key, Json v);

  /// Compact single-line rendering (valid JSON).
  std::string Dump() const;

  static Result<Json> Parse(const std::string& text);

  static void EscapeTo(const std::string& s, std::string* out);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  bool int_valued_ = false;
  uint64_t int_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace prever::obs

#endif  // PREVER_OBS_JSON_H_
