#ifndef PREVER_OBS_TRACE_H_
#define PREVER_OBS_TRACE_H_

// Zero-overhead contract for PReVer instrumentation (this header's
// histogram spans AND the causal spans in obs/tracing.h):
//
//  1. Compiled out: configuring with -DPREVER_TRACING=OFF defines
//     PREVER_TRACING_DISABLED, under which every tracing.h class is an
//     empty stub (static_assert'd to carry no state) and the causal-span
//     macros expand to objects the optimizer erases entirely — the hot
//     path is byte-for-byte free of tracing work.
//  2. Compiled in, runtime-disabled (the default): every instrumentation
//     point costs exactly one relaxed atomic load and one predictable
//     branch before bailing out. No allocation, no ring write, no
//     thread-local context mutation happens while Tracer::enabled() is
//     false.
//  3. Enabled but unsampled: minting a root costs two relaxed RMWs (trace
//     id + minted counter) plus one hash; a dropped trace propagates a
//     null context, so every downstream span/instant on that transaction
//     falls back to the mode-2 cost.
//
// The contract is enforced by TEST(ObsTracingOverhead, ...) in
// tests/tracing_test.cc and the BM_TraceDisabledOverhead case in
// bench/bench_e2_consensus.cpp (asserted loosely by scripts/bench_smoke.sh
// so a regression to per-op allocation or locking cannot land silently).
//
// The histogram spans below follow the same discipline: a null histogram
// pointer disarms a ScopedSpan at construction time with no clock read.

#include <chrono>
#include <cstdint>

#include "common/sim_clock.h"
#include "obs/metrics.h"

namespace prever::obs {

/// Wall-clock monotonic nanoseconds (steady_clock, immune to NTP steps).
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// RAII span: records elapsed wall-clock nanoseconds into `hist` at scope
/// exit. A null histogram disables the span (zero-cost guard for optional
/// instrumentation).
class ScopedSpan {
 public:
  explicit ScopedSpan(Histogram* hist)
      : hist_(hist), start_(hist != nullptr ? MonotonicNanos() : 0) {}
  ~ScopedSpan() { End(); }

  /// Records and disarms early, for spans that end before scope exit.
  void End() {
    if (hist_ != nullptr) {
      hist_->Record(MonotonicNanos() - start_);
      hist_ = nullptr;
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Histogram* hist_;
  uint64_t start_;
};

/// RAII span against simulated time: records elapsed SimTime microseconds.
/// Useful inside discrete-event runs where wall time is meaningless — e.g.
/// commit latency of a consensus round driven by SimNetwork.
class SimScopedSpan {
 public:
  SimScopedSpan(Histogram* hist, const SimClock* clock)
      : hist_(hist), clock_(clock),
        start_(clock != nullptr ? clock->Now() : 0) {}
  ~SimScopedSpan() { End(); }

  void End() {
    if (hist_ != nullptr && clock_ != nullptr) {
      hist_->Record(clock_->Now() - start_);
    }
    hist_ = nullptr;
  }
  SimScopedSpan(const SimScopedSpan&) = delete;
  SimScopedSpan& operator=(const SimScopedSpan&) = delete;

 private:
  Histogram* hist_;
  const SimClock* clock_;
  uint64_t start_;
};

}  // namespace prever::obs

#define PREVER_TRACE_CONCAT_IMPL_(a, b) a##b
#define PREVER_TRACE_CONCAT_(a, b) PREVER_TRACE_CONCAT_IMPL_(a, b)

/// Times the rest of the enclosing scope into `hist_ptr` (wall clock, ns).
#define PREVER_TRACE_SPAN(hist_ptr) \
  ::prever::obs::ScopedSpan PREVER_TRACE_CONCAT_(_span_, __LINE__)(hist_ptr)

/// Times the rest of the enclosing scope into `hist_ptr` (sim time, us).
#define PREVER_TRACE_SIM_SPAN(hist_ptr, clock_ptr)                  \
  ::prever::obs::SimScopedSpan PREVER_TRACE_CONCAT_(_simspan_,      \
                                                    __LINE__)(hist_ptr, \
                                                              clock_ptr)

#endif  // PREVER_OBS_TRACE_H_
