#include "obs/tracing.h"

#if !defined(PREVER_TRACING_DISABLED)

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <unordered_map>

#include "obs/trace.h"

// Ring generations dropped by Tracer::Configure are leaked by design (a
// racing writer may still hold a pointer); tell LeakSanitizer so real leaks
// stay visible instead of drowning in per-scenario reconfigure noise.
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(leak_sanitizer)
#define PREVER_LSAN_AVAILABLE 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define PREVER_LSAN_AVAILABLE 1
#endif
#if defined(PREVER_LSAN_AVAILABLE)
#include <sanitizer/lsan_interface.h>
#define PREVER_LSAN_IGNORE(ptr) __lsan_ignore_object(ptr)
#else
#define PREVER_LSAN_IGNORE(ptr) (void)(ptr)
#endif

namespace prever::obs {

namespace {

thread_local TraceContext t_current_context;
thread_local const SimClock* t_sim_clock = nullptr;

/// SplitMix64 finalizer: the deterministic sampling hash. Seeded, so a
/// fixed (seed, period) pair keeps the same trace ids on every run.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t CeilPow2(size_t n) {
  size_t p = 1;
  while (p < n && p < (size_t{1} << 30)) p <<= 1;
  return p;
}

}  // namespace

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kNone: return "none";
    case TraceStage::kSubmit: return "submit";
    case TraceStage::kVerify: return "verify";
    case TraceStage::kCrypto: return "crypto";
    case TraceStage::kToken: return "token";
    case TraceStage::kLedgerPhase: return "ledger_phase";
    case TraceStage::kQueueWait: return "queue_wait";
    case TraceStage::kConsensus: return "consensus";
    case TraceStage::kLedgerAppend: return "ledger_append";
    case TraceStage::kWalAppend: return "wal_append";
    case TraceStage::kBatchSeal: return "batch_seal";
    case TraceStage::kBatchJoin: return "batch_join";
    case TraceStage::kNetSend: return "net_send";
    case TraceStage::kNetDeliver: return "net_deliver";
    case TraceStage::kRaftAppendEntries: return "raft_append_entries";
    case TraceStage::kPbftPrePrepare: return "pbft_pre_prepare";
    case TraceStage::kPbftPrepare: return "pbft_prepare";
    case TraceStage::kPbftCommit: return "pbft_commit";
    case TraceStage::kVerifyCompile: return "verify_compile";
    case TraceStage::kVerifyEval: return "verify_eval";
    case TraceStage::kVerifyAggUpdate: return "verify_agg_update";
    case TraceStage::kRecoverLoad: return "recover_load";
    case TraceStage::kRecoverReplay: return "recover_replay";
    case TraceStage::kStateTransfer: return "state_transfer";
  }
  return "unknown";
}

/// Single-writer ring of fixed-size records. Every slot word is a relaxed
/// atomic (clean under TSan even with concurrent snapshots); `head` counts
/// records ever written and is published with release order so a reader
/// that acquires it sees the slots the count covers — modulo wrap-around
/// overwrites, which a flight recorder accepts.
struct Tracer::Ring {
  struct Slot {
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_span_id{0};
    std::atomic<uint64_t> wall_ns{0};
    std::atomic<uint64_t> sim_us{0};
    std::atomic<uint64_t> arg{0};
    std::atomic<uint64_t> packed{0};  // kind<<40 | stage<<32 | lane
  };

  explicit Ring(uint32_t lane_id, size_t capacity)
      : lane(lane_id), mask(capacity - 1), slots(capacity) {}

  void Push(TraceEventKind kind, TraceStage stage, const TraceContext& ctx,
            uint64_t arg, uint64_t wall_ns, uint64_t sim_us) {
    uint64_t h = head.load(std::memory_order_relaxed);
    Slot& s = slots[h & mask];
    s.trace_id.store(ctx.trace_id, std::memory_order_relaxed);
    s.span_id.store(ctx.span_id, std::memory_order_relaxed);
    s.parent_span_id.store(ctx.parent_span_id, std::memory_order_relaxed);
    s.wall_ns.store(wall_ns, std::memory_order_relaxed);
    s.sim_us.store(sim_us, std::memory_order_relaxed);
    s.arg.store(arg, std::memory_order_relaxed);
    s.packed.store((uint64_t{static_cast<uint8_t>(kind)} << 40) |
                       (uint64_t{static_cast<uint8_t>(stage)} << 32) | lane,
                   std::memory_order_relaxed);
    head.store(h + 1, std::memory_order_release);
  }

  /// Oldest-first decode of the currently retained window.
  void Drain(std::vector<TraceEvent>* out) const {
    uint64_t h = head.load(std::memory_order_acquire);
    uint64_t n = std::min<uint64_t>(h, slots.size());
    for (uint64_t i = h - n; i < h; ++i) {
      const Slot& s = slots[i & mask];
      TraceEvent e;
      e.trace_id = s.trace_id.load(std::memory_order_relaxed);
      e.span_id = s.span_id.load(std::memory_order_relaxed);
      e.parent_span_id = s.parent_span_id.load(std::memory_order_relaxed);
      e.wall_ns = s.wall_ns.load(std::memory_order_relaxed);
      e.sim_us = s.sim_us.load(std::memory_order_relaxed);
      e.arg = s.arg.load(std::memory_order_relaxed);
      uint64_t packed = s.packed.load(std::memory_order_relaxed);
      e.lane = static_cast<uint32_t>(packed & 0xffffffffu);
      e.stage = static_cast<TraceStage>((packed >> 32) & 0xff);
      e.kind = static_cast<TraceEventKind>((packed >> 40) & 0xff);
      out->push_back(e);
    }
  }

  const uint32_t lane;
  const uint64_t mask;
  std::atomic<uint64_t> head{0};
  std::vector<Slot> slots;
};

namespace {

/// Ring registry: rings are allocated once per writer thread and never
/// freed (lanes are few and bounded by thread count; leaking them keeps
/// Snapshot() safe against thread exit). Guarded by a mutex that only the
/// slow paths (first record on a thread, snapshot, reconfigure) take.
struct RingRegistry {
  std::mutex mu;
  std::vector<Tracer::Ring*> rings;
  uint32_t next_lane = 0;
  // Bumped by Configure to invalidate thread-local ring caches; atomic so
  // the lock-free fast path in ThreadRing can read it.
  std::atomic<uint64_t> generation{0};
  size_t capacity = 4096;
};

RingRegistry& Registry() {
  static RingRegistry* r = new RingRegistry();
  return *r;
}

thread_local Tracer::Ring* t_ring = nullptr;
thread_local uint64_t t_ring_generation = ~uint64_t{0};

}  // namespace

Tracer& Tracer::Get() {
  static Tracer* t = new Tracer();
  return *t;
}

void Tracer::Configure(const TracerConfig& config) {
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  config_ = config;
  if (config_.sample_period == 0) config_.sample_period = 1;
  config_.ring_capacity = CeilPow2(std::max<size_t>(config_.ring_capacity, 8));
  // Drop the old rings from the registry (the thread-local pointers are
  // invalidated via the generation counter; the Ring objects themselves are
  // leaked intentionally — a racing writer may still hold one).
  reg.rings.clear();
  reg.next_lane = 0;
  reg.capacity = config_.ring_capacity;
  reg.generation.fetch_add(1, std::memory_order_release);
  next_trace_id_.store(1, std::memory_order_relaxed);
  next_span_id_.store(1, std::memory_order_relaxed);
  traces_minted_.store(0, std::memory_order_relaxed);
  traces_sampled_.store(0, std::memory_order_relaxed);
  trace_unrooted_messages_.store(config_.trace_unrooted_messages,
                                 std::memory_order_relaxed);
  enabled_.store(config_.enabled, std::memory_order_relaxed);
}

void Tracer::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

Tracer::Ring* Tracer::ThreadRing() {
  RingRegistry& reg = Registry();
  // Fast path: cached ring from the current generation.
  uint64_t gen = reg.generation.load(std::memory_order_acquire);
  if (t_ring != nullptr && t_ring_generation == gen) return t_ring;
  std::lock_guard<std::mutex> lock(reg.mu);
  auto* ring = new Ring(reg.next_lane++, reg.capacity);
  PREVER_LSAN_IGNORE(ring);
  PREVER_LSAN_IGNORE(ring->slots.data());
  reg.rings.push_back(ring);
  t_ring = ring;
  t_ring_generation = reg.generation.load(std::memory_order_relaxed);
  return ring;
}

TraceContext Tracer::MintTrace() {
  if (!enabled()) return {};
  traces_minted_.fetch_add(1, std::memory_order_relaxed);
  uint64_t id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  if (config_.sample_period > 1 &&
      Mix64(id ^ config_.sample_seed) % config_.sample_period != 0) {
    return {};
  }
  traces_sampled_.fetch_add(1, std::memory_order_relaxed);
  TraceContext ctx;
  ctx.trace_id = id;
  return ctx;
}

const TraceContext& Tracer::CurrentContext() { return t_current_context; }

void Tracer::SetThreadSimClock(const SimClock* clock) { t_sim_clock = clock; }

void Tracer::Record(TraceEventKind kind, TraceStage stage,
                    const TraceContext& ctx, uint64_t arg) {
  uint64_t sim_us = t_sim_clock != nullptr ? t_sim_clock->Now() : 0;
  ThreadRing()->Push(kind, stage, ctx, arg, MonotonicNanos(), sim_us);
}

TraceContext Tracer::BeginChild(TraceStage stage, const TraceContext& parent,
                                uint64_t arg) {
  if (!enabled() || !parent.sampled()) return {};
  TraceContext ctx;
  ctx.trace_id = parent.trace_id;
  ctx.parent_span_id = parent.span_id;
  ctx.span_id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  Record(TraceEventKind::kBegin, stage, ctx, arg);
  return ctx;
}

TraceContext Tracer::BeginSpan(TraceStage stage, const TraceContext& parent,
                               uint64_t arg) {
  if (!enabled()) return {};
  if (parent.sampled()) return BeginChild(stage, parent, arg);
  TraceContext minted = MintTrace();
  if (!minted.sampled()) return {};
  TraceContext ctx;
  ctx.trace_id = minted.trace_id;
  ctx.span_id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  Record(TraceEventKind::kBegin, stage, ctx, arg);
  return ctx;
}

TraceContext Tracer::BeginSpan(TraceStage stage, uint64_t arg) {
  return BeginSpan(stage, t_current_context, arg);
}

void Tracer::EndSpan(const TraceContext& ctx, TraceStage stage, uint64_t arg) {
  if (!enabled() || !ctx.sampled()) return;
  Record(TraceEventKind::kEnd, stage, ctx, arg);
}

void Tracer::Instant(const TraceContext& ctx, TraceStage stage, uint64_t arg) {
  if (!enabled() || !ctx.sampled()) return;
  Record(TraceEventKind::kInstant, stage, ctx, arg);
}

uint64_t Tracer::traces_minted() const {
  return traces_minted_.load(std::memory_order_relaxed);
}
uint64_t Tracer::traces_sampled() const {
  return traces_sampled_.load(std::memory_order_relaxed);
}
uint64_t Tracer::events_recorded() const {
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  uint64_t total = 0;
  for (const Ring* ring : reg.rings) {
    total += ring->head.load(std::memory_order_acquire);
  }
  return total;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  RingRegistry& reg = Registry();
  std::vector<Ring*> rings;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    rings = reg.rings;
  }
  std::vector<TraceEvent> events;
  for (const Ring* ring : rings) ring->Drain(&events);
  return events;
}

std::vector<TraceEvent> Tracer::Tail(size_t n) const {
  std::vector<TraceEvent> events = Snapshot();
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.wall_ns < b.wall_ns;
            });
  if (events.size() > n) {
    events.erase(events.begin(),
                 events.end() - static_cast<ptrdiff_t>(n));
  }
  return events;
}

std::string Tracer::TailString(size_t n) const {
  std::string out;
  for (const TraceEvent& e : Tail(n)) {
    const char* kind = e.kind == TraceEventKind::kBegin  ? "B"
                       : e.kind == TraceEventKind::kEnd  ? "E"
                                                         : "I";
    out += "    " + std::string(kind) + " " + TraceStageName(e.stage) +
           " trace=" + std::to_string(e.trace_id) +
           " span=" + std::to_string(e.span_id) +
           " parent=" + std::to_string(e.parent_span_id) +
           " sim_us=" + std::to_string(e.sim_us) +
           " lane=" + std::to_string(e.lane) +
           " arg=" + std::to_string(e.arg) + "\n";
  }
  return out;
}

Json Tracer::ChromeTraceDoc() const {
  std::vector<TraceEvent> events = Snapshot();
  // Pair begins with ends by span id (two passes: a span's end can land in
  // a lane drained before its begin's lane). A span whose begin was
  // overwritten by ring wrap-around, or that never ended, is dropped and
  // counted — keeping the export's "every X event is a matched pair"
  // guarantee.
  struct Open {
    TraceEvent begin;
    bool matched = false;
    TraceEvent end;
  };
  std::vector<Open> spans;  // Ordered by begin-record sight.
  std::unordered_map<uint64_t, size_t> span_index;
  std::vector<const TraceEvent*> instants;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kBegin) {
      span_index.emplace(e.span_id, spans.size());
      spans.push_back(Open{e, false, {}});
    } else if (e.kind == TraceEventKind::kInstant) {
      instants.push_back(&e);
    }
  }
  size_t orphan_ends = 0;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEventKind::kEnd) continue;
    auto it = span_index.find(e.span_id);
    if (it == span_index.end() || spans[it->second].matched) {
      ++orphan_ends;
    } else {
      spans[it->second].matched = true;
      spans[it->second].end = e;
    }
  }

  Json trace_events = Json::Array();
  size_t unmatched_begins = 0;
  size_t exported_spans = 0;
  auto base = [](const TraceEvent& e, const char* ph) {
    Json ev = Json::Object();
    ev.Set("name", Json::Str(TraceStageName(e.stage)));
    ev.Set("ph", Json::Str(ph));
    ev.Set("ts", Json::Int(e.wall_ns / 1000));
    ev.Set("pid", Json::Int(1));
    ev.Set("tid", Json::Int(e.lane));
    return ev;
  };
  auto make_args = [](const TraceEvent& e) {
    Json args = Json::Object();
    args.Set("trace_id", Json::Int(e.trace_id));
    args.Set("span_id", Json::Int(e.span_id));
    args.Set("parent_span_id", Json::Int(e.parent_span_id));
    args.Set("sim_us", Json::Int(e.sim_us));
    args.Set("lane", Json::Int(e.lane));
    args.Set("arg", Json::Int(e.arg));
    return args;
  };
  for (const Open& open : spans) {
    if (!open.matched) {
      ++unmatched_begins;
      continue;
    }
    Json ev = base(open.begin, "X");
    uint64_t dur_ns = open.end.wall_ns - open.begin.wall_ns;
    ev.Set("dur", Json::Int(dur_ns / 1000));
    // Exact figures for tooling: Chrome's ts/dur are microseconds, which
    // quantizes sub-us spans to zero; sim-time duration rides in args.
    Json args = make_args(open.begin);
    args.Set("dur_ns", Json::Int(dur_ns));
    args.Set("sim_dur_us", Json::Int(open.end.sim_us - open.begin.sim_us));
    ev.Set("args", std::move(args));
    trace_events.Append(std::move(ev));
    ++exported_spans;
  }
  for (const TraceEvent* e : instants) {
    Json ev = base(*e, "i");
    ev.Set("s", Json::Str("t"));
    ev.Set("args", make_args(*e));
    trace_events.Append(std::move(ev));
  }

  Json doc = Json::Object();
  doc.Set("traceEvents", std::move(trace_events));
  doc.Set("displayTimeUnit", Json::Str("ms"));
  Json meta = Json::Object();
  meta.Set("schema", Json::Str("prever.trace.v1"));
  meta.Set("traces_minted", Json::Int(traces_minted()));
  meta.Set("traces_sampled", Json::Int(traces_sampled()));
  meta.Set("events_snapshot", Json::Int(events.size()));
  meta.Set("spans_exported", Json::Int(exported_spans));
  meta.Set("unmatched_begins_dropped", Json::Int(unmatched_begins));
  meta.Set("orphan_ends_dropped", Json::Int(orphan_ends));
  doc.Set("prever", std::move(meta));
  return doc;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::string text = ChromeTraceDoc().Dump();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file " + path);
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    return Status::Internal("short write to trace file " + path);
  }
  return Status::Ok();
}

// ----------------------------------------------------- ScopedTraceContext

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : saved_(t_current_context) {
  t_current_context = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { t_current_context = saved_; }

// --------------------------------------------------------------- TraceSpan

TraceSpan::TraceSpan(TraceStage stage, uint64_t arg, bool root)
    : stage_(stage) {
  Tracer& tracer = Tracer::Get();
  if (!tracer.enabled()) return;
  // Non-root spans are child-only: with no sampled context on the thread
  // they stay silent, so a dropped transaction never fragments into
  // orphan phase roots.
  ctx_ = root ? tracer.BeginSpan(stage, TraceContext{}, arg)
              : tracer.BeginChild(stage, t_current_context, arg);
  if (!ctx_.sampled()) return;
  saved_ = t_current_context;
  t_current_context = ctx_;
  open_ = true;
}

void TraceSpan::End() {
  if (!open_) return;
  open_ = false;
  Tracer::Get().EndSpan(ctx_, stage_);
  t_current_context = saved_;
}

}  // namespace prever::obs

#endif  // !PREVER_TRACING_DISABLED
