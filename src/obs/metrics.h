#ifndef PREVER_OBS_METRICS_H_
#define PREVER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace prever::obs {

/// Monotonic event counter. All mutation is lock-free (relaxed atomics):
/// counters are aggregated, never used for cross-thread ordering.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, view numbers, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Atomic add via CAS loop (atomic<double>::fetch_add is C++20 and spotty
  /// across toolchains; CAS is portable and the gauge path is never hot).
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Immutable copy of a Histogram's state, cheap to merge and diff. Produced
/// by Histogram::snapshot(); all percentile math happens here so the live
/// histogram never needs a lock.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< Exact smallest recorded value (0 when count == 0).
  uint64_t max = 0;  ///< Exact largest recorded value.
  std::vector<uint64_t> buckets;

  /// Adds `other`'s samples into this snapshot (same bucket layout).
  void Merge(const HistogramSnapshot& other);

  /// Samples recorded after `earlier` was taken, assuming `earlier` is a
  /// previous snapshot of the same histogram. Used by benches to isolate one
  /// repetition's samples from a process-lifetime histogram.
  HistogramSnapshot Delta(const HistogramSnapshot& earlier) const;

  /// Value at percentile `p` in [0, 100]. Returns 0 when empty; returns the
  /// exact max for p high enough to select the last sample. Bucketed values
  /// use the bucket midpoint clamped to [min, max], so relative error is
  /// bounded by the bucket width (< ~1/32 with 16 sub-buckets per octave).
  uint64_t Percentile(double p) const;

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Fixed-layout log-linear histogram for non-negative integer samples
/// (latencies in ns/us, sizes in bytes). Each power-of-two octave is split
/// into 16 linear sub-buckets, giving <= ~3% relative bucketing error over
/// the full uint64 range with 976 buckets. Recording is wait-free except for
/// the min/max CAS, which loops only while new extremes race.
class Histogram {
 public:
  static constexpr int kSubBits = 4;                 ///< log2(sub-buckets).
  static constexpr uint64_t kSub = 1ull << kSubBits; ///< 16 sub-buckets/octave.
  static constexpr int kNumBuckets = 16 + (64 - kSubBits) * static_cast<int>(kSub);

  Histogram();

  void Record(uint64_t value);

  HistogramSnapshot snapshot() const;

  /// Bucket index for `value`; values < 16 map to exact unit buckets.
  static int BucketIndex(uint64_t value);
  /// Inclusive lower bound of bucket `i`.
  static uint64_t BucketLower(int i);
  /// Inclusive upper bound of bucket `i`.
  static uint64_t BucketUpper(int i);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~0ull};
  std::atomic<uint64_t> max_{0};
  std::vector<std::atomic<uint64_t>> buckets_;
};

}  // namespace prever::obs

#endif  // PREVER_OBS_METRICS_H_
