#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace prever::obs {

Json Json::Bool(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = v;
  return j;
}

Json Json::Int(uint64_t v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.int_valued_ = true;
  j.int_ = v;
  j.num_ = static_cast<double>(v);
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

double Json::AsDouble() const { return int_valued_ ? static_cast<double>(int_) : num_; }

uint64_t Json::AsUint64() const {
  if (int_valued_) return int_;
  return num_ < 0 ? 0 : static_cast<uint64_t>(num_);
}

size_t Json::size() const {
  if (kind_ == Kind::kArray) return arr_.size();
  if (kind_ == Kind::kObject) return obj_.size();
  return 0;
}

const Json& Json::at(size_t i) const {
  static const Json kNull;
  if (kind_ != Kind::kArray || i >= arr_.size()) return kNull;
  return arr_[i];
}

const Json* Json::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::Append(Json v) {
  kind_ = Kind::kArray;
  arr_.push_back(std::move(v));
}

void Json::Set(const std::string& key, Json v) {
  kind_ = Kind::kObject;
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

void Json::EscapeTo(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

namespace {

void DumpTo(const Json& j, std::string* out) {
  switch (j.kind()) {
    case Json::Kind::kNull:
      *out += "null";
      break;
    case Json::Kind::kBool:
      *out += j.AsBool() ? "true" : "false";
      break;
    case Json::Kind::kNumber: {
      if (j.is_int()) {
        // Exact uint64 path: doubles round above 2^53, so Int-constructed
        // values must never go through AsDouble.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(j.AsUint64()));
        *out += buf;
        break;
      }
      double d = j.AsDouble();
      if (d == std::floor(d) && std::abs(d) < 1e18 && std::isfinite(d)) {
        // Integer-valued double: no decimal point.
        if (d >= 0) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(j.AsUint64()));
          *out += buf;
        } else {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(d));
          *out += buf;
        }
      } else if (std::isfinite(d)) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        *out += buf;
      } else {
        *out += "null";  // JSON has no Inf/NaN.
      }
      break;
    }
    case Json::Kind::kString:
      *out += '"';
      Json::EscapeTo(j.AsString(), out);
      *out += '"';
      break;
    case Json::Kind::kArray: {
      *out += '[';
      for (size_t i = 0; i < j.size(); ++i) {
        if (i > 0) *out += ',';
        DumpTo(j.at(i), out);
      }
      *out += ']';
      break;
    }
    case Json::Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [k, v] : j.members()) {
        if (!first) *out += ',';
        first = false;
        *out += '"';
        Json::EscapeTo(k, out);
        *out += "\":";
        DumpTo(v, out);
      }
      *out += '}';
      break;
    }
  }
}

/// Recursive-descent parser over a bounds-checked cursor.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<Json> Run() {
    PREVER_ASSIGN_OR_RETURN(Json v, ParseValue());
    SkipWs();
    if (pos_ != s_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::InvalidArgument(std::string("expected '") + c +
                                     "' at offset " + std::to_string(pos_));
    }
    return Status::Ok();
  }

  Result<Json> ParseValue() {
    SkipWs();
    if (pos_ >= s_.size()) return Status::InvalidArgument("unexpected end of JSON");
    char c = s_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        PREVER_ASSIGN_OR_RETURN(std::string str, ParseString());
        return Json::Str(std::move(str));
      }
      case 't':
        if (s_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          return Json::Bool(true);
        }
        break;
      case 'f':
        if (s_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          return Json::Bool(false);
        }
        break;
      case 'n':
        if (s_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return Json::Null();
        }
        break;
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
          return ParseNumber();
        }
    }
    return Status::InvalidArgument("unexpected character at offset " +
                                   std::to_string(pos_));
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    bool integral = true;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    std::string token = s_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      return Status::InvalidArgument("malformed number");
    }
    if (integral && token[0] != '-') {
      char* end = nullptr;
      unsigned long long u = std::strtoull(token.c_str(), &end, 10);
      if (end != nullptr && *end == '\0') return Json::Int(u);
    }
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("malformed number '" + token + "'");
    }
    return Json::Number(d);
  }

  Result<std::string> ParseString() {
    PREVER_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) break;
      char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            return Status::InvalidArgument("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Status::InvalidArgument("bad \\u escape digit");
          }
          // Metric names/labels are ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Status::InvalidArgument("unknown escape");
      }
    }
    return Status::InvalidArgument("unterminated string");
  }

  Result<Json> ParseArray() {
    PREVER_RETURN_IF_ERROR(Expect('['));
    Json arr = Json::Array();
    SkipWs();
    if (Consume(']')) return arr;
    for (;;) {
      PREVER_ASSIGN_OR_RETURN(Json v, ParseValue());
      arr.Append(std::move(v));
      if (Consume(']')) return arr;
      PREVER_RETURN_IF_ERROR(Expect(','));
    }
  }

  Result<Json> ParseObject() {
    PREVER_RETURN_IF_ERROR(Expect('{'));
    Json obj = Json::Object();
    SkipWs();
    if (Consume('}')) return obj;
    for (;;) {
      SkipWs();
      PREVER_ASSIGN_OR_RETURN(std::string key, ParseString());
      PREVER_RETURN_IF_ERROR(Expect(':'));
      PREVER_ASSIGN_OR_RETURN(Json v, ParseValue());
      obj.Set(key, std::move(v));
      if (Consume('}')) return obj;
      PREVER_RETURN_IF_ERROR(Expect(','));
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

std::string Json::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Result<Json> Json::Parse(const std::string& text) { return Parser(text).Run(); }

}  // namespace prever::obs
