#include "testing/sim_runner.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "core/ordering.h"
#include "obs/tracing.h"
#include "testing/invariants.h"

namespace prever::simtest {

namespace {

std::string Preview(const Bytes& b) {
  std::string s;
  for (size_t i = 0; i < b.size() && i < 24; ++i) {
    char c = static_cast<char>(b[i]);
    s += (c >= 32 && c < 127) ? c : '?';
  }
  return s;
}

std::string T(SimTime t) { return std::to_string(t); }

struct RunOutcome {
  bool ok = true;
  std::string violation;
  size_t events = 0;
  uint64_t committed = 0;
  std::string trace;
  std::string net_stats;
};

ScenarioOptions ScenarioOptionsFor(const ConsensusSimOptions& o) {
  ScenarioOptions s;
  s.num_nodes = o.num_nodes;
  s.horizon = o.horizon;
  s.max_actions = o.max_actions;
  s.max_concurrent_crashed = o.max_concurrent_crashed;
  s.base_drop_rate = o.base_drop_rate;
  return s;
}

Bytes CommandBytes(size_t i) {
  return ToBytes("cmd-" + std::to_string(i));
}

// ------------------------------------------------------------------- Raft

RunOutcome RunRaftOnce(uint64_t seed, const FaultSchedule& schedule,
                       const ConsensusSimOptions& o, bool record_trace) {
  RunOutcome out;
  std::string* tr = record_trace ? &out.trace : nullptr;

  net::SimNetConfig ncfg;
  ncfg.drop_rate = o.base_drop_rate;
  ncfg.seed = seed ^ 0xC0FFEEULL;
  net::SimNetwork net(ncfg);

  consensus::RaftConfig rcfg;
  rcfg.num_replicas = o.num_nodes;
  rcfg.seed = seed * 31 + 7;
  consensus::RaftCluster cluster(rcfg, &net);

  RaftInvariantChecker checker(&cluster);
  SingleCopyChecker applies(o.num_nodes);
  std::set<Bytes> submitted;
  std::set<Bytes> applied_cmds;
  std::string async_violation;

  for (size_t i = 0; i < o.num_nodes; ++i) {
    cluster.replica(i).SetApplyCallback(
        [&, i](uint64_t index, const Bytes& cmd) {
          applied_cmds.insert(cmd);
          Status s = applies.Observe(i, index - 1, cmd);
          if (!s.ok() && async_violation.empty()) {
            async_violation = s.message();
          }
          if (tr != nullptr) {
            *tr += "t=" + T(net.Now()) + " apply r=" + std::to_string(i) +
                   " idx=" + std::to_string(index) + " cmd=" + Preview(cmd) +
                   "\n";
          }
        });
  }

  FaultHooks hooks;
  hooks.crash = [&](net::NodeId id) { cluster.replica(id).Crash(); };
  hooks.restart = [&](net::NodeId id) { cluster.replica(id).Restart(); };
  InstallSchedule(&net, schedule, hooks, tr);

  // Client: submits the next command whenever a leader accepts it. Once all
  // commands were accepted, it keeps re-driving the lowest unapplied command
  // — an entry accepted by a deposed leader only commits once a
  // current-term entry lands on top of it (Raft §5.4.2), so the pump must
  // not go quiet before everything applied.
  size_t next_cmd = 0;
  std::function<void()> pump = [&] {
    if (net.Now() > o.horizon) return;
    Bytes cmd;
    if (next_cmd < o.num_commands) {
      cmd = CommandBytes(next_cmd);
    } else {
      for (size_t i = 0; i < o.num_commands; ++i) {
        Bytes candidate = CommandBytes(i);
        if (applied_cmds.count(candidate) == 0) {
          cmd = candidate;
          break;
        }
      }
      if (cmd.empty()) return;  // Everything applied; client done.
    }
    auto leader = cluster.Leader();
    if (leader.ok() && (*leader)->Submit(cmd).ok()) {
      submitted.insert(cmd);
      if (tr != nullptr) {
        *tr += "t=" + T(net.Now()) + " submit " + Preview(cmd) + " via r=" +
               std::to_string((*leader)->id()) + "\n";
      }
      if (next_cmd < o.num_commands) ++next_cmd;
    }
    net.ScheduleAfter(o.submit_interval, pump);
  };
  net.ScheduleAfter(o.submit_interval, pump);

  auto fail = [&](const std::string& why) {
    out.ok = false;
    out.violation = why;
    if (tr != nullptr) {
      *tr += "t=" + T(net.Now()) + " VIOLATION " + why + "\n";
    }
  };

  while (net.Step()) {
    if (net.Now() > o.horizon) break;
    ++out.events;
    if (!async_violation.empty()) {
      fail(async_violation);
      break;
    }
    Status s = checker.CheckStep();
    if (s.ok() && o.deep_check_every != 0 &&
        out.events % o.deep_check_every == 0) {
      s = checker.CheckLogMatching();
    }
    if (!s.ok()) {
      fail(s.message());
      break;
    }
  }

  if (out.ok) {
    Status s = checker.CheckStep();
    if (s.ok()) s = checker.CheckLogMatching();
    if (s.ok()) s = applies.CheckProvenance(submitted);
    if (!s.ok()) fail(s.message());
  }
  out.committed = checker.max_commit_index();
  if (out.ok && out.committed == 0) {
    fail("liveness stall: no command committed over the whole horizon");
  }
  if (out.ok && applies.history().size() != out.committed) {
    fail("apply/commit mismatch: " +
         std::to_string(applies.history().size()) + " applied vs commit " +
         "index " + std::to_string(out.committed));
  }

  if (tr != nullptr) {
    for (size_t i = 0; i < o.num_nodes; ++i) {
      consensus::RaftReplica& r = cluster.replica(i);
      *tr += "final r=" + std::to_string(i) +
             " role=" + std::to_string(static_cast<int>(r.role())) +
             " term=" + std::to_string(r.term()) +
             " commit=" + std::to_string(r.commit_index()) +
             " log=" + std::to_string(r.log_size()) +
             " applied=" + std::to_string(applies.executed(i)) + "\n";
    }
    *tr += "final events=" + std::to_string(out.events) +
           " sent=" + std::to_string(net.messages_sent()) +
           " dropped=" + std::to_string(net.messages_dropped()) + "\n";
  }
  out.net_stats = net.StatsJson();
  return out;
}

// ------------------------------------------------------------------- PBFT

RunOutcome RunPbftOnce(uint64_t seed, const FaultSchedule& schedule,
                       const ConsensusSimOptions& o, bool record_trace) {
  RunOutcome out;
  std::string* tr = record_trace ? &out.trace : nullptr;

  net::SimNetConfig ncfg;
  ncfg.drop_rate = o.base_drop_rate;
  ncfg.seed = seed ^ 0xFACADEULL;
  net::SimNetwork net(ncfg);

  consensus::PbftConfig pcfg;
  pcfg.num_replicas = o.num_nodes;
  pcfg.view_change_timeout = 150 * kMillisecond;
  consensus::PbftCluster cluster(pcfg, &net);

  // A seed-chosen replica may equivocate when it holds the primary role —
  // at most one, i.e. within the f = (n-1)/3 fault budget for n >= 4.
  const bool equivocate = o.allow_equivocation && (seed % 3 == 0);
  const net::NodeId equivocator =
      static_cast<net::NodeId>(seed / 3 % o.num_nodes);
  if (equivocate) {
    cluster.replica(equivocator)
        .SetFaultMode(consensus::PbftFaultMode::kEquivocate);
    if (tr != nullptr) {
      *tr += "equivocator r=" + std::to_string(equivocator) + "\n";
    }
  }

  PbftInvariantChecker checker(&cluster, equivocate);
  std::set<Bytes> submitted;
  std::set<Bytes> executed_cmds;
  cluster.SetCommitCallback(
      [&](net::NodeId replica, uint64_t seq, const Bytes& cmd) {
        checker.OnCommit(replica, seq, cmd);
        executed_cmds.insert(cmd);
        if (tr != nullptr) {
          *tr += "t=" + T(net.Now()) + " commit r=" + std::to_string(replica) +
                 " seq=" + std::to_string(seq) + " cmd=" + Preview(cmd) + "\n";
        }
      });

  FaultHooks hooks;
  hooks.crash = [&](net::NodeId id) {
    cluster.replica(id).SetFaultMode(consensus::PbftFaultMode::kSilent);
  };
  hooks.restart = [&](net::NodeId id) {
    cluster.replica(id).SetFaultMode(
        equivocate && id == equivocator
            ? consensus::PbftFaultMode::kEquivocate
            : consensus::PbftFaultMode::kHonest);
  };
  InstallSchedule(&net, schedule, hooks, tr);

  // Client: submit each command once, then keep re-broadcasting the lowest
  // unexecuted command (executed-digest dedup makes this safe) so the run
  // makes progress once the quiet tail begins.
  size_t sent = 0;
  std::function<void()> pump = [&] {
    if (net.Now() > o.horizon) return;
    if (sent < o.num_commands) {
      Bytes cmd = CommandBytes(sent);
      submitted.insert(cmd);
      cluster.Submit(cmd);
      if (tr != nullptr) {
        *tr += "t=" + T(net.Now()) + " submit " + Preview(cmd) + "\n";
      }
      ++sent;
    } else {
      for (size_t i = 0; i < o.num_commands; ++i) {
        Bytes cmd = CommandBytes(i);
        if (executed_cmds.count(cmd) == 0) {
          cluster.Submit(cmd);
          break;
        }
      }
    }
    net.ScheduleAfter(o.submit_interval, pump);
  };
  net.ScheduleAfter(o.submit_interval, pump);

  auto fail = [&](const std::string& why) {
    out.ok = false;
    out.violation = why;
    if (tr != nullptr) {
      *tr += "t=" + T(net.Now()) + " VIOLATION " + why + "\n";
    }
  };

  while (net.Step()) {
    if (net.Now() > o.horizon) break;
    ++out.events;
    Status s = checker.CheckStep();
    if (!s.ok()) {
      fail(s.message());
      break;
    }
  }

  if (out.ok) {
    Status s = checker.CheckStep();
    if (s.ok()) s = checker.CheckProvenance(submitted);
    if (!s.ok()) fail(s.message());
  }
  out.committed = checker.single_copy().history().size();
  // The liveness floor only applies to honest-primary scenarios: this PBFT's
  // simplified view change has no null-request gap filling, so a cluster
  // whose primary equivocates can wedge on a stale never-prepared slot.
  // Safety (agreement, total order, no rollback) is still fully checked
  // above; see DESIGN.md "Simulation testing" for the limitation.
  if (out.ok && out.committed == 0 && !equivocate) {
    fail("liveness stall: no command executed over the whole horizon");
  }

  if (tr != nullptr) {
    for (size_t i = 0; i < o.num_nodes; ++i) {
      consensus::PbftReplica& r = cluster.replica(i);
      *tr += "final r=" + std::to_string(i) +
             " view=" + std::to_string(r.view()) +
             " executed=" + std::to_string(r.num_executed()) + "\n";
    }
    *tr += "final events=" + std::to_string(out.events) +
           " sent=" + std::to_string(net.messages_sent()) +
           " dropped=" + std::to_string(net.messages_dropped()) + "\n";
  }
  out.net_stats = net.StatsJson();
  return out;
}

// ------------------------------------------- Pipelined ordering scenarios

ScenarioOptions ScenarioOptionsFor(const OrderingSimOptions& o) {
  ScenarioOptions s;
  s.num_nodes = o.num_replicas;
  s.horizon = o.horizon;
  s.max_actions = o.max_actions;
  s.max_concurrent_crashed = o.max_concurrent_crashed;
  s.base_drop_rate = o.base_drop_rate;
  return s;
}

Bytes PayloadBytes(size_t i) { return ToBytes("pay-" + std::to_string(i)); }

/// Seed-derived pipeline knobs: the sweep explores batch x window x delay.
core::OrderingPipelineConfig PipelineFor(uint64_t seed) {
  static constexpr size_t kBatches[] = {1, 4, 16, 64};
  static constexpr size_t kWindows[] = {1, 2, 4, 8};
  static constexpr SimTime kDelays[] = {1 * kMillisecond, 3 * kMillisecond,
                                        10 * kMillisecond};
  core::OrderingPipelineConfig p;
  p.max_batch = kBatches[seed % 4];
  p.max_inflight = kWindows[(seed / 4) % 4];
  p.max_delay = kDelays[(seed / 16) % 3];
  return p;
}

/// Post-Flush ledger invariants shared by the Raft and PBFT ordering runs:
/// every submitted payload exactly once in the replica-0 ledger, no
/// duplicates in any replica ledger, and digest-identical common prefixes.
template <typename LedgerAt>
Status CheckOrderingLedgers(size_t num_replicas, size_t num_payloads,
                            uint64_t committed, const LedgerAt& ledger_at) {
  if (committed != num_payloads) {
    return Status::Internal("committed " + std::to_string(committed) +
                            " != submitted " + std::to_string(num_payloads));
  }
  const ledger::LedgerDb& first = ledger_at(0);
  if (first.size() != num_payloads) {
    return Status::Internal("replica-0 ledger has " +
                            std::to_string(first.size()) + " entries, want " +
                            std::to_string(num_payloads));
  }
  std::map<Bytes, size_t> counts;
  for (uint64_t i = 0; i < first.size(); ++i) {
    PREVER_ASSIGN_OR_RETURN(ledger::LedgerEntry e, first.GetEntry(i));
    ++counts[e.payload];
  }
  for (size_t i = 0; i < num_payloads; ++i) {
    auto it = counts.find(PayloadBytes(i));
    size_t n = it == counts.end() ? 0 : it->second;
    if (n != 1) {
      return Status::Internal("payload " + std::to_string(i) + " appears " +
                              std::to_string(n) + " times in replica-0 "
                              "ledger (double execution or loss)");
    }
  }
  uint64_t prefix = first.size();
  for (size_t r = 1; r < num_replicas; ++r) {
    prefix = std::min<uint64_t>(prefix, ledger_at(r).size());
  }
  PREVER_ASSIGN_OR_RETURN(ledger::LedgerDigest want, first.DigestAt(prefix));
  for (size_t r = 1; r < num_replicas; ++r) {
    const ledger::LedgerDb& db = ledger_at(r);
    std::set<Bytes> seen;
    for (uint64_t i = 0; i < db.size(); ++i) {
      PREVER_ASSIGN_OR_RETURN(ledger::LedgerEntry e, db.GetEntry(i));
      if (!seen.insert(e.payload).second) {
        return Status::Internal("replica " + std::to_string(r) +
                                " ledger holds a duplicate payload");
      }
    }
    PREVER_ASSIGN_OR_RETURN(ledger::LedgerDigest got, db.DigestAt(prefix));
    if (!(got == want)) {
      return Status::Internal(
          "replica " + std::to_string(r) +
          " ledger digest diverges from replica 0 at prefix " +
          std::to_string(prefix));
    }
  }
  return Status::Ok();
}

/// Drives one ordering service through a fault schedule: paced SubmitAsync
/// submissions over the horizon, then full repair, then Flush + invariants.
template <typename Ordering, typename LedgerAt>
RunOutcome RunOrderingOnce(Ordering& ordering, net::SimNetwork& net,
                           const FaultSchedule& schedule,
                           const FaultHooks& hooks,
                           const OrderingSimOptions& o,
                           const std::set<net::NodeId>* crashed,
                           const std::function<void(net::NodeId)>& revive,
                           const LedgerAt& ledger_at, bool record_trace) {
  RunOutcome out;
  std::string* tr = record_trace ? &out.trace : nullptr;
  InstallSchedule(&net, schedule, hooks, tr);

  const SimTime start = net.Now();
  size_t sent = 0;
  std::function<void()> pump = [&] {
    if (sent >= o.num_payloads || net.Now() > start + o.horizon) return;
    (void)ordering.SubmitAsync(PayloadBytes(sent), net.Now());
    if (tr != nullptr) {
      *tr += "t=" + T(net.Now()) + " submit pay-" + std::to_string(sent) +
             "\n";
    }
    ++sent;
    net.ScheduleAfter(o.submit_interval, pump);
  };
  net.ScheduleAfter(o.submit_interval, pump);

  while (net.Step()) {
    if (net.Now() > start + o.horizon) break;
    ++out.events;
  }
  // Submit any payloads the horizon cut off, then repair the world so Flush
  // measures recovery, not a dead cluster (shrinking can orphan an opening
  // fault from its closing action).
  for (; sent < o.num_payloads; ++sent) {
    (void)ordering.SubmitAsync(PayloadBytes(sent), net.Now());
  }
  net.HealAll();
  net.ClearLinkLatencies();
  net.set_drop_rate(o.base_drop_rate);
  net.SetTimerScale(1.0);
  for (net::NodeId id : *crashed) {
    net.RestartNode(id);
    revive(id);
  }
  Status flushed = ordering.Flush();
  if (!flushed.ok()) {
    out.ok = false;
    out.violation = "Flush failed: " + flushed.message();
  } else {
    Status s = CheckOrderingLedgers(o.num_replicas, o.num_payloads,
                                    ordering.CommittedCount(), ledger_at);
    if (!s.ok()) {
      out.ok = false;
      out.violation = s.message();
    }
  }
  out.committed = ordering.CommittedCount();
  if (tr != nullptr) {
    *tr += "final committed=" + std::to_string(out.committed) +
           " events=" + std::to_string(out.events) + "\n";
    if (!out.ok) *tr += "VIOLATION " + out.violation + "\n";
  }
  out.net_stats = net.StatsJson();
  return out;
}

RunOutcome RunRaftOrderingOnce(uint64_t seed, const FaultSchedule& schedule,
                               const OrderingSimOptions& o,
                               bool record_trace) {
  net::SimNetConfig ncfg;
  ncfg.drop_rate = o.base_drop_rate;
  ncfg.seed = seed ^ 0xC0FFEEULL;
  core::RaftOrdering ordering(o.num_replicas, ncfg, PipelineFor(seed));

  std::set<net::NodeId> crashed;
  FaultHooks hooks;
  hooks.crash = [&](net::NodeId id) {
    ordering.cluster().replica(id).Crash();
    crashed.insert(id);
  };
  hooks.restart = [&](net::NodeId id) {
    ordering.cluster().replica(id).Restart();
    crashed.erase(id);
  };
  auto revive = [&](net::NodeId id) {
    ordering.cluster().replica(id).Restart();
  };
  auto ledger_at = [&](size_t r) -> const ledger::LedgerDb& {
    return ordering.ReplicaLedger(r);
  };
  return RunOrderingOnce(ordering, ordering.network(), schedule, hooks, o,
                         &crashed, revive, ledger_at, record_trace);
}

RunOutcome RunPbftOrderingOnce(uint64_t seed, const FaultSchedule& schedule,
                               const OrderingSimOptions& o,
                               bool record_trace) {
  net::SimNetConfig ncfg;
  ncfg.drop_rate = 0.0;  // No retransmission layer: see header comment.
  ncfg.seed = seed ^ 0xFACADEULL;
  core::PbftOrdering ordering(o.num_replicas, ncfg, "pbft-sim",
                              PipelineFor(seed));

  // Replica 0 is the commit counter Flush waits on; without state transfer
  // it must see every instance, so faults touching it are filtered.
  FaultSchedule filtered = schedule;
  filtered.actions.erase(
      std::remove_if(filtered.actions.begin(), filtered.actions.end(),
                     [](const FaultAction& a) {
                       switch (a.kind) {
                         case FaultKind::kCrash:
                         case FaultKind::kRestart:
                           return a.a == 0;
                         case FaultKind::kPartition:
                         case FaultKind::kHeal:
                         case FaultKind::kLatencySpike:
                         case FaultKind::kLatencyClear:
                           return a.a == 0 || a.b == 0;
                         case FaultKind::kDropSpike:
                           return true;  // Drops hit replica 0 like any other.
                         default:
                           return false;
                       }
                     }),
      filtered.actions.end());

  std::set<net::NodeId> crashed;
  FaultHooks hooks;
  hooks.crash = [&](net::NodeId id) {
    ordering.cluster().replica(id).SetFaultMode(
        consensus::PbftFaultMode::kSilent);
    crashed.insert(id);
  };
  hooks.restart = [&](net::NodeId id) {
    ordering.cluster().replica(id).SetFaultMode(
        consensus::PbftFaultMode::kHonest);
    crashed.erase(id);
  };
  auto revive = [&](net::NodeId id) {
    ordering.cluster().replica(id).SetFaultMode(
        consensus::PbftFaultMode::kHonest);
  };
  auto ledger_at = [&](size_t r) -> const ledger::LedgerDb& {
    return ordering.ReplicaLedger(r);
  };
  return RunOrderingOnce(ordering, ordering.network(), filtered, hooks, o,
                         &crashed, revive, ledger_at, record_trace);
}

// ------------------------------------------------------- Shrink + report

using RunFn = std::function<RunOutcome(const FaultSchedule&, bool record)>;

/// Scenario-scoped causal tracing: sample every transaction into a small
/// flight-recorder ring so a failing run's report can show the last events
/// (which payloads were mid-flight and at which stage when the invariant
/// broke). Disabled again on scope exit so surrounding tests pay nothing.
class ScopedScenarioTracing {
 public:
  ScopedScenarioTracing() {
    obs::TracerConfig cfg;
    cfg.enabled = true;
    cfg.sample_period = 1;
    cfg.ring_capacity = 512;
    // Consensus-only scenarios never mint engine submit roots, so let the
    // sim network root each message — the tail stays populated either way.
    cfg.trace_unrooted_messages = true;
    obs::Tracer::Get().Configure(cfg);
  }
  ~ScopedScenarioTracing() { obs::Tracer::Get().SetEnabled(false); }
  std::string Tail() const { return obs::Tracer::Get().TailString(32); }
};

SimReport RunWithShrink(uint64_t seed, const ConsensusSimOptions& o,
                        const RunFn& run_once) {
  ScenarioGenerator generator(ScenarioOptionsFor(o));
  SimReport report;
  report.seed = seed;
  report.schedule = generator.Generate(seed);
  report.reduced = report.schedule;

  ScopedScenarioTracing tracing;
  RunOutcome out = run_once(report.schedule, o.record_trace);
  report.ok = out.ok;
  report.violation = out.violation;
  report.trace = out.trace;
  report.events = out.events;
  report.committed = out.committed;
  report.net_stats = out.net_stats;
  if (!out.ok) report.trace_tail = tracing.Tail();
  if (out.ok || !o.shrink_on_failure) return report;

  // Greedy delta-debugging: drop one action at a time while the violation
  // persists. Deterministic replays make this sound.
  bool improved = true;
  while (improved) {
    improved = false;
    for (size_t i = 0; i < report.reduced.actions.size(); ++i) {
      FaultSchedule candidate = report.reduced;
      candidate.actions.erase(candidate.actions.begin() +
                              static_cast<ptrdiff_t>(i));
      RunOutcome r = run_once(candidate, false);
      if (!r.ok) {
        report.reduced = candidate;
        report.violation = r.violation;
        improved = true;
        break;
      }
    }
  }
  return report;
}

}  // namespace

std::string SimReport::Summary(const char* protocol) const {
  if (ok) {
    return std::string(protocol) + " seed=" + std::to_string(seed) +
           " ok events=" + std::to_string(events) +
           " committed=" + std::to_string(committed);
  }
  std::string s = std::string(protocol) + " scenario FAILED\n";
  s += "  seed: " + std::to_string(seed) + "\n";
  s += "  violation: " + violation + "\n";
  if (!net_stats.empty()) s += "  net: " + net_stats + "\n";
  s += "  reduced schedule (" + std::to_string(reduced.actions.size()) +
       " of " + std::to_string(schedule.actions.size()) + " actions):\n";
  for (const FaultAction& a : reduced.actions) {
    s += "    " + a.ToString() + "\n";
  }
  if (!trace_tail.empty()) {
    s += "  flight recorder tail (last causal events before the violation):\n";
    s += trace_tail;
  }
  s += "  replay: PREVER_SIM_SEED=" + std::to_string(seed) +
       " ./tests/sim_consensus_test --gtest_filter='*" + protocol + "*'\n";
  return s;
}

namespace {

SimReport RunOrderingWithShrink(uint64_t seed, const OrderingSimOptions& o,
                                const RunFn& run_once) {
  ScenarioGenerator generator(ScenarioOptionsFor(o));
  SimReport report;
  report.seed = seed;
  report.schedule = generator.Generate(seed);
  report.reduced = report.schedule;

  ScopedScenarioTracing tracing;
  RunOutcome out = run_once(report.schedule, o.record_trace);
  report.ok = out.ok;
  report.violation = out.violation;
  report.trace = out.trace;
  report.events = out.events;
  report.committed = out.committed;
  report.net_stats = out.net_stats;
  if (!out.ok) report.trace_tail = tracing.Tail();
  if (out.ok || !o.shrink_on_failure) return report;

  bool improved = true;
  while (improved) {
    improved = false;
    for (size_t i = 0; i < report.reduced.actions.size(); ++i) {
      FaultSchedule candidate = report.reduced;
      candidate.actions.erase(candidate.actions.begin() +
                              static_cast<ptrdiff_t>(i));
      RunOutcome r = run_once(candidate, false);
      if (!r.ok) {
        report.reduced = candidate;
        report.violation = r.violation;
        improved = true;
        break;
      }
    }
  }
  return report;
}

}  // namespace

SimReport RunRaftOrderingScenario(uint64_t seed,
                                  const OrderingSimOptions& options) {
  return RunOrderingWithShrink(
      seed, options, [&](const FaultSchedule& schedule, bool record) {
        return RunRaftOrderingOnce(seed, schedule, options, record);
      });
}

SimReport RunPbftOrderingScenario(uint64_t seed,
                                  const OrderingSimOptions& options) {
  return RunOrderingWithShrink(
      seed, options, [&](const FaultSchedule& schedule, bool record) {
        return RunPbftOrderingOnce(seed, schedule, options, record);
      });
}

SimReport RunRaftScenario(uint64_t seed, const ConsensusSimOptions& options) {
  return RunWithShrink(seed, options,
                       [&](const FaultSchedule& schedule, bool record) {
                         return RunRaftOnce(seed, schedule, options, record);
                       });
}

SimReport RunPbftScenario(uint64_t seed, const ConsensusSimOptions& options) {
  return RunWithShrink(seed, options,
                       [&](const FaultSchedule& schedule, bool record) {
                         return RunPbftOnce(seed, schedule, options, record);
                       });
}

}  // namespace prever::simtest
