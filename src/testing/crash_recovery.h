#ifndef PREVER_TESTING_CRASH_RECOVERY_H_
#define PREVER_TESTING_CRASH_RECOVERY_H_

#include <string>

#include "common/sim_clock.h"

namespace prever::simtest {

/// Where in the durability pipeline a seed-chosen crash lands. Beyond the
/// clean crash-stop, the damaging kinds model a kill in the middle of a
/// durable write: the harness mutilates the on-disk state exactly as an
/// interrupted write would, then restarts through the real recovery path.
enum class CrashPoint : uint8_t {
  kClean = 0,           ///< Crash between durable operations; files intact.
  kMidWalAppend,        ///< Torn commit-journal tail (partial last record).
  kMidCheckpointTmp,    ///< Torn checkpoint .tmp left in the store directory.
  kMidCheckpointFinal,  ///< Newest final checkpoint corrupted (flipped byte):
                        ///< must be quarantined, previous checkpoint + longer
                        ///< journal replay must cover.
};

const char* CrashPointName(CrashPoint point);

/// Configuration for one randomized end-to-end crash/recovery scenario: an
/// ordering service commits payloads while seed-chosen replicas are killed
/// at seed-chosen crash points, durably checkpointed state is damaged per
/// the crash point, and every victim restarts through checkpoint load +
/// journal replay + consensus-level recovery (Raft snapshot/log replay,
/// PBFT checkpoint install + state transfer).
struct CrashRecoveryOptions {
  size_t num_replicas = 4;
  size_t num_payloads = 48;
  /// Commit events per replica between durable checkpoints (also drives
  /// Raft log compaction and journal truncation).
  uint64_t checkpoint_every = 6;
  size_t max_crashes = 3;
  /// Max payloads committed by the survivors while a victim is down — forces
  /// the restarted replica to catch up past its own durable state.
  size_t max_gap = 4;
  /// PBFT stable-checkpoint interval (protocol-level; enables message-log GC
  /// and state transfer). Ignored by the Raft scenario.
  uint64_t pbft_checkpoint_interval = 4;
  /// Root directory for per-replica durable state (checkpoints + journal);
  /// the harness creates `<work_dir>/r<i>/` under it and removes the tree at
  /// scenario end. Must be writable and unique per concurrent scenario.
  std::string work_dir;
};

struct CrashRecoveryReport {
  bool ok = true;
  uint64_t seed = 0;
  std::string violation;  ///< First failed check; empty when ok.
  std::string trace;      ///< Deterministic event trace (crashes, recoveries).
  size_t crashes = 0;
  size_t recoveries = 0;
  uint64_t checkpoints_saved = 0;
  uint64_t checkpoints_quarantined = 0;
  uint64_t journal_entries_replayed = 0;
  uint64_t committed = 0;  ///< Replica-0 ledger size at scenario end.

  /// Human-readable failure report with the seed for replay.
  std::string Summary(const char* protocol) const;
};

/// Raft: crashes (including replica 0 and mid-checkpoint / mid-WAL-append
/// points), restarts through CheckpointStore::LoadLatest + commit-journal
/// replay + RaftReplica::Recover; periodic checkpoints drive CompactTo (log
/// truncation below the snapshot) and journal truncation. Final checks:
/// every payload committed exactly once on replica 0, all replica ledgers
/// digest-identical on their common prefix, checkpoint manifests match the
/// recomputed Merkle root, and the physical Raft log stays bounded.
CrashRecoveryReport RunRaftCrashRecoveryScenario(
    uint64_t seed, const CrashRecoveryOptions& options);

/// PBFT: same shape; victims are backups (replica 0 is the commit counter
/// the pipeline waits on). Restart installs the durably saved stable
/// checkpoint blob, then fetches peer state (2f+1-certified checkpoint +
/// f+1-certified suffix) to cover the gap. Also checks the message log is
/// garbage-collected below the stable checkpoint.
CrashRecoveryReport RunPbftCrashRecoveryScenario(
    uint64_t seed, const CrashRecoveryOptions& options);

}  // namespace prever::simtest

#endif  // PREVER_TESTING_CRASH_RECOVERY_H_
