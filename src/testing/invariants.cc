#include "testing/invariants.h"

namespace prever::simtest {

namespace {

std::string Preview(const Bytes& b) {
  std::string s;
  for (size_t i = 0; i < b.size() && i < 24; ++i) {
    char c = static_cast<char>(b[i]);
    s += (c >= 32 && c < 127) ? c : '?';
  }
  return s;
}

}  // namespace

// ------------------------------------------------------- SingleCopyChecker

SingleCopyChecker::SingleCopyChecker(size_t num_replicas)
    : next_(num_replicas, 0) {}

Status SingleCopyChecker::Observe(size_t replica, uint64_t pos,
                                  const Bytes& command) {
  if (replica >= next_.size()) {
    return Status::InvalidArgument("unknown replica");
  }
  if (pos != next_[replica]) {
    return Status::IntegrityViolation(
        "replica " + std::to_string(replica) + " executed position " +
        std::to_string(pos) + " but its next contiguous position is " +
        std::to_string(next_[replica]) + " (gap or re-execution)");
  }
  if (pos < history_.size()) {
    if (history_[pos] != command) {
      return Status::IntegrityViolation(
          "divergence at position " + std::to_string(pos) + ": replica " +
          std::to_string(replica) + " executed \"" + Preview(command) +
          "\" but the committed history holds \"" + Preview(history_[pos]) +
          "\"");
    }
  } else {
    history_.push_back(command);
  }
  ++next_[replica];
  return Status::Ok();
}

Status SingleCopyChecker::CheckProvenance(
    const std::set<Bytes>& submitted) const {
  for (size_t i = 0; i < history_.size(); ++i) {
    if (submitted.count(history_[i]) == 0) {
      return Status::IntegrityViolation(
          "committed command at position " + std::to_string(i) + " (\"" +
          Preview(history_[i]) + "\") was never submitted");
    }
  }
  return Status::Ok();
}

// --------------------------------------------------- RaftInvariantChecker

RaftInvariantChecker::RaftInvariantChecker(consensus::RaftCluster* cluster)
    : cluster_(cluster), verified_commit_(cluster->size(), 0) {}

uint64_t RaftInvariantChecker::max_commit_index() const {
  uint64_t max_commit = 0;
  for (size_t i = 0; i < cluster_->size(); ++i) {
    max_commit = std::max(max_commit, cluster_->replica(i).commit_index());
  }
  return max_commit;
}

Status RaftInvariantChecker::CheckStep() {
  // Election safety: at most one leader per term.
  for (size_t i = 0; i < cluster_->size(); ++i) {
    consensus::RaftReplica& r = cluster_->replica(i);
    if (r.crashed() || r.role() != consensus::RaftReplica::Role::kLeader) {
      continue;
    }
    auto [it, inserted] = leader_by_term_.emplace(r.term(), r.id());
    if (!inserted && it->second != r.id()) {
      return Status::IntegrityViolation(
          "election safety violated: term " + std::to_string(r.term()) +
          " has two leaders (" + std::to_string(it->second) + " and " +
          std::to_string(r.id()) + ")");
    }
  }
  // Committed-prefix agreement: each entry is pinned (term, command) at the
  // first commit observation; every replica's newly committed entries must
  // match the pinned record.
  for (size_t i = 0; i < cluster_->size(); ++i) {
    consensus::RaftReplica& r = cluster_->replica(i);
    for (uint64_t k = verified_commit_[i] + 1; k <= r.commit_index(); ++k) {
      if (k <= r.snapshot_index()) continue;  // Compacted; command is gone.
      const Bytes* cmd = r.CommandAt(k);
      if (cmd == nullptr) {
        return Status::IntegrityViolation(
            "replica " + std::to_string(i) + " committed index " +
            std::to_string(k) + " beyond its log (length " +
            std::to_string(r.log_size()) + ")");
      }
      uint64_t term = r.TermAt(k);
      auto [it, inserted] = committed_.emplace(
          k, std::make_pair(term, *cmd));
      if (!inserted &&
          (it->second.first != term || it->second.second != *cmd)) {
        return Status::IntegrityViolation(
            "commit agreement violated at index " + std::to_string(k) +
            ": replica " + std::to_string(i) + " committed term " +
            std::to_string(term) + " \"" + Preview(*cmd) +
            "\" but the entry was first committed as term " +
            std::to_string(it->second.first) + " \"" +
            Preview(it->second.second) + "\"");
      }
    }
    verified_commit_[i] = r.commit_index();
  }
  return Status::Ok();
}

Status RaftInvariantChecker::CheckLogMatching() const {
  for (size_t i = 0; i < cluster_->size(); ++i) {
    for (size_t j = i + 1; j < cluster_->size(); ++j) {
      consensus::RaftReplica& a = cluster_->replica(i);
      consensus::RaftReplica& b = cluster_->replica(j);
      uint64_t len = std::min<uint64_t>(a.log_size(), b.log_size());
      // Find the highest shared (index, term) agreement point…
      uint64_t agree = 0;
      for (uint64_t k = len; k >= 1; --k) {
        if (a.TermAt(k) == b.TermAt(k)) {
          agree = k;
          break;
        }
      }
      // …then everything at or below it must be identical. Entries either
      // replica compacted away have no command to compare; agreement there
      // is implied (snapshots cover only committed, hence agreed, prefixes).
      uint64_t floor =
          std::max<uint64_t>(a.snapshot_index(), b.snapshot_index());
      for (uint64_t k = floor + 1; k <= agree; ++k) {
        if (a.TermAt(k) != b.TermAt(k) ||
            *a.CommandAt(k) != *b.CommandAt(k)) {
          return Status::IntegrityViolation(
              "log matching violated between replicas " + std::to_string(i) +
              " and " + std::to_string(j) + ": they agree at index " +
              std::to_string(agree) + " (term " + std::to_string(a.TermAt(agree)) +
              ") but differ at index " + std::to_string(k));
        }
      }
    }
  }
  return Status::Ok();
}

// --------------------------------------------------- PbftInvariantChecker

PbftInvariantChecker::PbftInvariantChecker(consensus::PbftCluster* cluster,
                                           bool byzantine_primary_possible)
    : cluster_(cluster),
      byzantine_primary_possible_(byzantine_primary_possible),
      checker_(cluster->size()),
      last_executed_(cluster->size(), 0),
      last_seq_(cluster->size(), 0) {}

Status PbftInvariantChecker::OnCommit(net::NodeId replica, uint64_t seq,
                                      const Bytes& command) {
  if (replica >= last_seq_.size()) {
    return Status::InvalidArgument("unknown replica");
  }
  // Sequence numbers are 1-based and must strictly increase per replica;
  // gaps are allowed (execution-level dedup skips re-assigned slots).
  if (seq <= last_seq_[replica]) {
    Status bad = Status::IntegrityViolation(
        "replica " + std::to_string(replica) + " executed seq " +
        std::to_string(seq) + " after seq " +
        std::to_string(last_seq_[replica]));
    if (first_violation_.empty()) first_violation_ = bad.message();
    return bad;
  }
  last_seq_[replica] = seq;
  size_t history_before = checker_.history().size();
  Status s = checker_.Observe(replica, checker_.executed(replica), command);
  if (!s.ok()) {
    if (first_violation_.empty()) first_violation_ = s.message();
    return s;
  }
  if (!byzantine_primary_possible_ &&
      checker_.history().size() > history_before) {
    // New history entry: an honest primary never proposes a command twice.
    if (!seen_commands_.insert(command).second) {
      Status dup = Status::IntegrityViolation(
          "command \"" + Preview(command) +
          "\" executed at two different sequence numbers");
      if (first_violation_.empty()) first_violation_ = dup.message();
      return dup;
    }
  }
  return Status::Ok();
}

Status PbftInvariantChecker::CheckStep() {
  for (size_t i = 0; i < cluster_->size(); ++i) {
    uint64_t executed = cluster_->replica(i).num_executed();
    if (executed < last_executed_[i]) {
      return Status::IntegrityViolation(
          "replica " + std::to_string(i) + " rolled back execution: " +
          std::to_string(last_executed_[i]) + " -> " +
          std::to_string(executed));
    }
    last_executed_[i] = executed;
  }
  if (!first_violation_.empty()) {
    return Status::IntegrityViolation(first_violation_);
  }
  return Status::Ok();
}

Status PbftInvariantChecker::CheckProvenance(
    const std::set<Bytes>& submitted) const {
  if (byzantine_primary_possible_) {
    // A Byzantine primary may fabricate commands; provenance is not a
    // safety property in that regime (real deployments pin it with client
    // signatures, which this simulation does not model).
    return Status::Ok();
  }
  return checker_.CheckProvenance(submitted);
}

}  // namespace prever::simtest
