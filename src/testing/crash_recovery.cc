#include "testing/crash_recovery.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <system_error>
#include <vector>

#include "common/rng.h"
#include "common/serial.h"
#include "core/ordering.h"
#include "obs/registry.h"
#include "recovery/checkpoint.h"
#include "recovery/journal.h"

namespace prever::simtest {

namespace {

namespace fs = std::filesystem;

obs::Histogram& RecoveryTimeHistogram() {
  static obs::Histogram* h =
      obs::Registry::Default().GetHistogram("prever_recovery_time_us");
  return *h;
}

/// Per-replica durable state: a checkpoint store and a commit journal, both
/// living under the scenario's work directory. This is the state a real
/// deployment would have on disk when the process is killed.
struct DurableReplica {
  std::unique_ptr<recovery::CheckpointStore> store;
  std::unique_ptr<recovery::CommitJournal> journal;
  std::string journal_path;
  uint64_t events_since_ckpt = 0;
  /// consensus_seq of the newest and second-newest durable checkpoints. The
  /// journal is only truncated below the *previous* checkpoint, so a corrupt
  /// newest checkpoint still recovers from the previous one plus a longer
  /// replay.
  uint64_t last_ckpt_seq = 0;
  uint64_t prev_ckpt_seq = 0;
  bool crashed = false;
};

/// One scheduled kill: after committing payload `at`, replica `victim` dies
/// at `point`; it restarts once `recover_at` payloads have been submitted.
struct CrashEvent {
  size_t at = 0;
  size_t recover_at = 0;
  size_t victim = 0;
  CrashPoint point = CrashPoint::kClean;
};

Status InitDurable(const CrashRecoveryOptions& options,
                   std::vector<DurableReplica>* durable) {
  durable->resize(options.num_replicas);
  for (size_t i = 0; i < options.num_replicas; ++i) {
    std::string dir = options.work_dir + "/r" + std::to_string(i);
    DurableReplica& d = (*durable)[i];
    d.store = std::make_unique<recovery::CheckpointStore>(dir + "/ckpt");
    PREVER_RETURN_IF_ERROR(d.store->Init());
    d.journal_path = dir + "/journal.wal";
    d.journal = std::make_unique<recovery::CommitJournal>();
    PREVER_RETURN_IF_ERROR(d.journal->Open(d.journal_path));
  }
  return Status::Ok();
}

/// Mutilates the victim's durable files exactly as a kill at `point` would.
void ApplyCrashDamage(DurableReplica& d, CrashPoint point, Rng& rng,
                      std::string* trace) {
  std::error_code ec;
  switch (point) {
    case CrashPoint::kClean:
      break;
    case CrashPoint::kMidWalAppend: {
      // A torn final journal record: the kill landed mid-fwrite. Recovery
      // must keep the clean prefix and the consensus layer re-delivers the
      // lost tail.
      auto size = fs::file_size(d.journal_path, ec);
      if (!ec && size > 0) {
        uint64_t cut = 1 + rng.NextBelow(std::min<uint64_t>(8, size));
        fs::resize_file(d.journal_path, size - cut, ec);
        if (trace) {
          *trace += "  torn journal tail: -" + std::to_string(cut) + "B\n";
        }
      }
      break;
    }
    case CrashPoint::kMidCheckpointTmp: {
      // A kill mid-checkpoint-write leaves a partial .tmp the loader must
      // never consider.
      std::string tmp = d.store->dir() + "/ckpt-ffffffffffffffff.ckpt.tmp";
      if (FILE* f = std::fopen(tmp.c_str(), "wb")) {
        Bytes garbage = rng.NextBytes(64 + rng.NextBelow(192));
        std::fwrite(garbage.data(), 1, garbage.size(), f);
        std::fclose(f);
        if (trace) *trace += "  torn checkpoint .tmp left behind\n";
      }
      break;
    }
    case CrashPoint::kMidCheckpointFinal: {
      // Bit-rot / partial rename on the newest final checkpoint: CRC must
      // catch it, the loader must quarantine and fall back.
      std::vector<std::string> files = d.store->ListFiles();
      if (!files.empty()) {
        std::string path = d.store->dir() + "/" + files.back();
        auto size = fs::file_size(path, ec);
        if (!ec && size > 0) {
          uint64_t offset = rng.NextBelow(size);
          if (FILE* f = std::fopen(path.c_str(), "r+b")) {
            std::fseek(f, static_cast<long>(offset), SEEK_SET);
            int c = std::fgetc(f);
            std::fseek(f, static_cast<long>(offset), SEEK_SET);
            std::fputc((c ^ 0x5a) & 0xff, f);
            std::fclose(f);
            if (trace) {
              *trace += "  flipped byte " + std::to_string(offset) +
                        " of newest checkpoint\n";
            }
          }
        }
      }
      break;
    }
  }
}

/// Durable state rebuilt at restart, before the consensus layer is involved.
struct RebuiltState {
  ledger::LedgerDb ledger;
  uint64_t floor = 0;  ///< Highest consensus position the ledger covers.
  uint64_t checkpoint_seq = 0;  ///< Floor covered by the checkpoint alone.
  uint64_t replayed = 0;        ///< Journal entries appended past it.
  Bytes app_state;              ///< Checkpoint's opaque consensus blob.
  std::vector<uint64_t> batch_ids;  ///< From checkpoint app blob + journal.
  /// Journal events actually replayed; the journal is rewritten to exactly
  /// these at restart (dropping torn tails, pre-checkpoint events, and any
  /// post-gap events consensus will re-deliver anyway).
  std::vector<recovery::JournalEvent> kept;
};

/// The real recovery read path: newest intact checkpoint (corrupt ones
/// quarantined inside LoadLatest) + commit-journal suffix replay. Records
/// wall-clock recovery time into prever_recovery_time_us.
Result<RebuiltState> RebuildFromDurable(DurableReplica& d,
                                        bool decode_raft_batch_ids) {
  auto t0 = std::chrono::steady_clock::now();
  RebuiltState out;
  auto ckpt = d.store->LoadLatest();
  if (ckpt.ok()) {
    out.ledger = std::move(ckpt->ledger);
    out.floor = ckpt->manifest.consensus_seq;
    out.checkpoint_seq = ckpt->manifest.consensus_seq;
    out.app_state = std::move(ckpt->app_state);
    if (decode_raft_batch_ids && !out.app_state.empty()) {
      // Raft app blobs are EncodeReplicaState: [floor][n_ids][ids...][...].
      BinaryReader r(out.app_state);
      PREVER_ASSIGN_OR_RETURN(uint64_t floor, r.ReadU64());
      PREVER_ASSIGN_OR_RETURN(uint64_t n_ids, r.ReadU64());
      (void)floor;
      out.batch_ids.reserve(n_ids);
      for (uint64_t k = 0; k < n_ids; ++k) {
        PREVER_ASSIGN_OR_RETURN(uint64_t id, r.ReadU64());
        out.batch_ids.push_back(id);
      }
    }
  } else if (ckpt.status().code() != StatusCode::kNotFound) {
    return ckpt.status();
  }
  bool torn = false;
  PREVER_ASSIGN_OR_RETURN(std::vector<recovery::JournalEvent> events,
                          recovery::CommitJournal::Recover(d.journal_path,
                                                           &torn));
  for (const recovery::JournalEvent& event : events) {
    if (event.position <= out.checkpoint_seq) continue;
    auto appended = recovery::ReplayLedgerSuffix(event.entries, &out.ledger);
    if (!appended.ok()) {
      // A replay gap here means the bridge between journal epochs — a
      // checkpoint persisted when consensus-level state transfer replaced
      // the ledger wholesale — was itself lost to corruption. The journal
      // cannot cover entries this replica never committed locally; recover
      // from the longest contiguous durable prefix and let consensus
      // (snapshot install / state transfer) re-deliver the rest.
      break;
    }
    out.replayed += *appended;
    out.batch_ids.push_back(event.batch_id);
    out.floor = std::max(out.floor, event.position);
    out.kept.push_back(event);
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t0);
  RecoveryTimeHistogram().Record(static_cast<uint64_t>(elapsed.count()));
  return out;
}

/// Rewrites the journal at restart to exactly the events recovery consumed:
/// torn tails, events below the surviving checkpoint, and events past a
/// replay gap (which consensus re-delivers) are all dropped.
Status ResetJournal(DurableReplica& d,
                    const std::vector<recovery::JournalEvent>& kept) {
  d.journal->Close();
  std::remove(d.journal_path.c_str());
  PREVER_RETURN_IF_ERROR(d.journal->Open(d.journal_path));
  for (const recovery::JournalEvent& event : kept) {
    PREVER_RETURN_IF_ERROR(d.journal->Append(event));
  }
  return Status::Ok();
}

/// A consensus-level state install (Raft InstallSnapshot, PBFT checkpoint
/// install) replaces the replica's ledger wholesale, bypassing the commit
/// journal — the journal would have a hole between its last event and the
/// installed state. Persist the installed state as a durable checkpoint so
/// the on-disk chain stays contiguous; the journal keeps only what the new
/// checkpoint does not cover.
template <typename OrderingT>
void PersistInstalledState(OrderingT& ordering, size_t replica, uint64_t floor,
                           Bytes app_state, DurableReplica& d,
                           CrashRecoveryReport* report) {
  if (d.crashed || !d.journal->is_open()) return;
  if (floor <= d.last_ckpt_seq) return;  // Existing chain already covers.
  recovery::CheckpointContents contents;
  contents.ledger = &ordering.ReplicaLedger(replica);
  contents.consensus_seq = floor;
  contents.app_state = std::move(app_state);
  if (d.store->Save(contents).ok()) {
    ++report->checkpoints_saved;
    d.prev_ckpt_seq = d.last_ckpt_seq;
    d.last_ckpt_seq = floor;
    d.events_since_ckpt = 0;
    d.store->GarbageCollect(2);
    (void)d.journal->TruncateBelow(d.prev_ckpt_seq);
  }
}

Bytes MakePayload(uint64_t seed, size_t index) {
  std::string s = "pay-" + std::to_string(seed) + "-" + std::to_string(index);
  return Bytes(s.begin(), s.end());
}

/// Seed-derived kill schedule: non-overlapping crash windows, victims and
/// crash points uniform. `allow_replica0` is false for PBFT (replica 0 is
/// the commit counter the flush loop waits on).
std::vector<CrashEvent> PlanCrashes(uint64_t seed,
                                    const CrashRecoveryOptions& options,
                                    bool allow_replica0) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
  size_t n_crashes = 1 + rng.NextBelow(std::max<size_t>(options.max_crashes, 1));
  std::vector<CrashEvent> plan;
  size_t cursor = 2 + rng.NextBelow(4);
  for (size_t c = 0; c < n_crashes && cursor + 2 < options.num_payloads; ++c) {
    CrashEvent ev;
    ev.at = cursor;
    ev.victim = allow_replica0 ? rng.NextBelow(options.num_replicas)
                               : 1 + rng.NextBelow(options.num_replicas - 1);
    ev.point = static_cast<CrashPoint>(rng.NextBelow(4));
    size_t gap = rng.NextBelow(options.max_gap + 1);
    ev.recover_at = std::min(ev.at + gap, options.num_payloads - 1);
    plan.push_back(ev);
    cursor = ev.recover_at + 1 + rng.NextBelow(6);
  }
  return plan;
}

/// Digest-identical common prefix across all replica ledgers.
template <typename OrderingT>
Status CheckLedgerPrefixes(const OrderingT& ordering, size_t num_replicas) {
  for (size_t i = 1; i < num_replicas; ++i) {
    const ledger::LedgerDb& a = ordering.ReplicaLedger(0);
    const ledger::LedgerDb& b = ordering.ReplicaLedger(i);
    uint64_t common = std::min(a.size(), b.size());
    for (uint64_t s = 0; s < common; ++s) {
      auto ea = a.GetEntry(s);
      auto eb = b.GetEntry(s);
      PREVER_RETURN_IF_ERROR(ea.status());
      PREVER_RETURN_IF_ERROR(eb.status());
      if (ea->payload != eb->payload || ea->timestamp != eb->timestamp) {
        return Status::IntegrityViolation(
            "replica " + std::to_string(i) + " diverges from replica 0 at " +
            std::to_string(s));
      }
    }
  }
  return Status::Ok();
}

/// Exactly-once: replica 0's post-Flush ledger holds every submitted payload
/// exactly once and nothing else.
Status CheckExactlyOnce(const ledger::LedgerDb& ledger,
                        const std::vector<Bytes>& submitted) {
  std::map<Bytes, size_t> counts;
  for (uint64_t s = 0; s < ledger.size(); ++s) {
    auto entry = ledger.GetEntry(s);
    PREVER_RETURN_IF_ERROR(entry.status());
    ++counts[entry->payload];
  }
  if (ledger.size() != submitted.size()) {
    return Status::IntegrityViolation(
        "ledger size " + std::to_string(ledger.size()) + " != submitted " +
        std::to_string(submitted.size()));
  }
  for (const Bytes& payload : submitted) {
    auto it = counts.find(payload);
    if (it == counts.end()) {
      return Status::IntegrityViolation("payload missing from ledger");
    }
    if (it->second != 1) {
      return Status::IntegrityViolation(
          "payload committed " + std::to_string(it->second) + " times");
    }
  }
  return Status::Ok();
}

/// Save-then-reload: a final checkpoint must survive its own validation and
/// carry the recomputed Merkle root of the live ledger.
template <typename OrderingT>
Status CheckCheckpointRoot(OrderingT& ordering, DurableReplica& d) {
  recovery::CheckpointContents contents;
  contents.ledger = &ordering.ReplicaLedger(0);
  contents.consensus_seq = ~uint64_t{0};  // Sentinel: newest by id anyway.
  PREVER_RETURN_IF_ERROR(d.store->Save(contents).status());
  PREVER_ASSIGN_OR_RETURN(recovery::Checkpoint reloaded, d.store->LoadLatest());
  auto live = ordering.ReplicaLedger(0).Digest();
  if (reloaded.manifest.ledger_root != live.root ||
      reloaded.ledger.Digest().root != live.root) {
    return Status::IntegrityViolation(
        "final checkpoint root != recomputed ledger Merkle root");
  }
  return Status::Ok();
}

void CleanupWorkDir(const std::string& dir) {
  std::error_code ec;
  fs::remove_all(dir, ec);
}

std::string DefaultWorkDir(const char* proto, uint64_t seed) {
  std::error_code ec;
  fs::path base = fs::temp_directory_path(ec);
  if (ec) base = ".";
  return (base / ("prever_crashrec_" + std::string(proto) + "_" +
                  std::to_string(seed)))
      .string();
}

}  // namespace

const char* CrashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kClean: return "clean";
    case CrashPoint::kMidWalAppend: return "mid-wal-append";
    case CrashPoint::kMidCheckpointTmp: return "mid-checkpoint-tmp";
    case CrashPoint::kMidCheckpointFinal: return "mid-checkpoint-final";
  }
  return "?";
}

std::string CrashRecoveryReport::Summary(const char* protocol) const {
  std::string s = std::string(protocol) + " crash-recovery seed=" +
                  std::to_string(seed) + (ok ? " OK" : " FAILED");
  if (!ok) s += "\nviolation: " + violation;
  s += "\ncrashes=" + std::to_string(crashes) +
       " recoveries=" + std::to_string(recoveries) +
       " checkpoints=" + std::to_string(checkpoints_saved) +
       " quarantined=" + std::to_string(checkpoints_quarantined) +
       " replayed=" + std::to_string(journal_entries_replayed) +
       " committed=" + std::to_string(committed);
  if (!ok && !trace.empty()) s += "\ntrace:\n" + trace;
  return s;
}

// --------------------------------------------------------------------- Raft

CrashRecoveryReport RunRaftCrashRecoveryScenario(
    uint64_t seed, const CrashRecoveryOptions& options) {
  CrashRecoveryReport report;
  report.seed = seed;
  CrashRecoveryOptions opts = options;
  if (opts.work_dir.empty()) opts.work_dir = DefaultWorkDir("raft", seed);
  CleanupWorkDir(opts.work_dir);

  auto fail = [&](const Status& status) {
    report.ok = false;
    report.violation = status.message().empty()
                           ? std::string(StatusCodeName(status.code()))
                           : status.message();
    CleanupWorkDir(opts.work_dir);
    return report;
  };

  std::vector<DurableReplica> durable;
  if (Status s = InitDurable(opts, &durable); !s.ok()) return fail(s);

  net::SimNetConfig net_config;
  net_config.seed = seed;
  core::OrderingPipelineConfig pipeline;
  pipeline.max_batch = 4;
  pipeline.max_inflight = 2;
  core::RaftOrdering ordering(opts.num_replicas, net_config, pipeline);

  Rng rng(seed);
  // Journal every commit; every checkpoint_every events, checkpoint + compact
  // the Raft log below the applied floor + truncate the journal below the
  // previous checkpoint.
  ordering.SetReplicaCommitObserver([&](size_t replica, uint64_t position,
                                        uint64_t batch_id,
                                        const std::vector<Bytes>& entries) {
    DurableReplica& d = durable[replica];
    if (d.crashed || !d.journal->is_open()) return;
    (void)d.journal->Append({position, batch_id, entries});
    if (++d.events_since_ckpt < opts.checkpoint_every) return;
    d.events_since_ckpt = 0;
    recovery::CheckpointContents contents;
    contents.ledger = &ordering.ReplicaLedger(replica);
    contents.consensus_seq = position;
    contents.app_state = ordering.EncodeReplicaState(replica);
    if (d.store->Save(contents).ok()) {
      ++report.checkpoints_saved;
      d.prev_ckpt_seq = d.last_ckpt_seq;
      d.last_ckpt_seq = position;
      d.store->GarbageCollect(2);
      (void)ordering.cluster().replica(replica).CompactTo(
          ordering.replica_applied_floor(replica), contents.app_state);
      (void)d.journal->TruncateBelow(d.prev_ckpt_seq);
    }
  });

  // Override the ordering's stock snapshot installer so installed state is
  // also made durable (see PersistInstalledState).
  for (size_t i = 0; i < opts.num_replicas; ++i) {
    ordering.cluster().replica(i).SetSnapshotInstaller(
        [&, i](uint64_t /*snap_index*/, const Bytes& blob) {
          if (blob.empty()) return;
          if (!ordering.RestoreReplicaState(i, blob).ok()) return;
          PersistInstalledState(ordering, i,
                                ordering.replica_applied_floor(i),
                                ordering.EncodeReplicaState(i), durable[i],
                                &report);
        });
  }

  std::vector<CrashEvent> plan = PlanCrashes(seed, opts, /*allow_replica0=*/true);
  std::vector<Bytes> submitted;
  size_t next_crash = 0;
  std::set<size_t> down;

  auto recover_replica = [&](size_t victim) -> Status {
    DurableReplica& d = durable[victim];
    report.trace += "recover r" + std::to_string(victim) + "\n";
    auto rebuilt = RebuildFromDurable(d, /*decode_raft_batch_ids=*/true);
    PREVER_RETURN_IF_ERROR(rebuilt.status());
    report.journal_entries_replayed += rebuilt->replayed;
    // Re-anchor the checkpoint chain on what actually survived (the newest
    // file may have been quarantined); prev = 0 keeps the journal
    // conservatively long until the next save re-establishes a chain.
    d.last_ckpt_seq = rebuilt->checkpoint_seq;
    d.prev_ckpt_seq = 0;
    PREVER_RETURN_IF_ERROR(ResetJournal(d, rebuilt->kept));
    d.crashed = false;
    d.events_since_ckpt = 0;
    ordering.network().RestartNode(static_cast<net::NodeId>(victim));
    auto& rep = ordering.cluster().replica(victim);
    if (rep.snapshot_index() > rebuilt->floor && !rep.snapshot_blob().empty()) {
      // The (durable) Raft log was compacted past the journal coverage —
      // entries below the snapshot are gone from the log, so a rewind to
      // the durable floor could never re-deliver them. The snapshot blob
      // embedded in the log carries the app state; install it, then persist
      // so the on-disk chain is anchored again.
      PREVER_RETURN_IF_ERROR(
          ordering.RestoreReplicaState(victim, rep.snapshot_blob()));
      rep.Recover(ordering.replica_applied_floor(victim));
      PersistInstalledState(ordering, victim,
                            ordering.replica_applied_floor(victim),
                            ordering.EncodeReplicaState(victim), d, &report);
    } else {
      // RestoreReplica re-enters RaftReplica::Recover: rewind to the durable
      // floor and re-deliver the committed suffix through the apply callback
      // (batch-id dedup absorbs anything the ledger already holds).
      PREVER_RETURN_IF_ERROR(ordering.RestoreReplica(
          victim, std::move(rebuilt->ledger), rebuilt->floor,
          rebuilt->batch_ids));
    }
    ++report.recoveries;
    return Status::Ok();
  };

  for (size_t k = 0; k < opts.num_payloads; ++k) {
    // Restart any victim whose outage window ended.
    for (size_t c = 0; c < plan.size(); ++c) {
      if (plan[c].recover_at == k && down.count(plan[c].victim)) {
        down.erase(plan[c].victim);
        if (Status s = recover_replica(plan[c].victim); !s.ok()) {
          return fail(s);
        }
      }
    }
    Bytes payload = MakePayload(seed, k);
    submitted.push_back(payload);
    // While replica 0 (the commit counter) is down, enqueue without waiting:
    // commitment is driven after its recovery.
    if (down.count(0)) {
      if (auto t = ordering.SubmitAsync(payload, 0); !t.ok()) {
        return fail(t.status());
      }
    } else {
      if (Status s = ordering.Append(payload, 0); !s.ok()) return fail(s);
    }
    if (next_crash < plan.size() && plan[next_crash].at == k) {
      const CrashEvent& ev = plan[next_crash++];
      if (!down.count(ev.victim) && down.size() < (opts.num_replicas - 1) / 2) {
        down.insert(ev.victim);
        ++report.crashes;
        report.trace += "crash r" + std::to_string(ev.victim) + " @" +
                        std::to_string(k) + " " + CrashPointName(ev.point) +
                        "\n";
        ordering.network().CrashNode(static_cast<net::NodeId>(ev.victim));
        ordering.cluster().replica(ev.victim).Crash();
        durable[ev.victim].crashed = true;
        durable[ev.victim].journal->Close();
        ApplyCrashDamage(durable[ev.victim], ev.point, rng, &report.trace);
      }
    }
  }
  for (size_t victim : std::set<size_t>(down)) {
    down.erase(victim);
    if (Status s = recover_replica(victim); !s.ok()) return fail(s);
  }
  if (Status s = ordering.Flush(); !s.ok()) return fail(s);
  // Quiet tail: let followers drain replication traffic.
  ordering.network().RunUntil(ordering.network().Now() + 5 * kSecond);

  report.committed = ordering.ReplicaLedger(0).size();
  for (const DurableReplica& d : durable) {
    report.checkpoints_quarantined += d.store->quarantined();
  }
  if (Status s = CheckExactlyOnce(ordering.ReplicaLedger(0), submitted);
      !s.ok()) {
    return fail(s);
  }
  if (Status s = CheckLedgerPrefixes(ordering, opts.num_replicas); !s.ok()) {
    return fail(s);
  }
  if (Status s = CheckCheckpointRoot(ordering, durable[0]); !s.ok()) {
    return fail(s);
  }
  CleanupWorkDir(opts.work_dir);
  return report;
}

// --------------------------------------------------------------------- PBFT

CrashRecoveryReport RunPbftCrashRecoveryScenario(
    uint64_t seed, const CrashRecoveryOptions& options) {
  CrashRecoveryReport report;
  report.seed = seed;
  CrashRecoveryOptions opts = options;
  if (opts.work_dir.empty()) opts.work_dir = DefaultWorkDir("pbft", seed);
  CleanupWorkDir(opts.work_dir);

  auto fail = [&](const Status& status) {
    report.ok = false;
    report.violation = status.message().empty()
                           ? std::string(StatusCodeName(status.code()))
                           : status.message();
    CleanupWorkDir(opts.work_dir);
    return report;
  };

  std::vector<DurableReplica> durable;
  if (Status s = InitDurable(opts, &durable); !s.ok()) return fail(s);

  net::SimNetConfig net_config;
  net_config.seed = seed;
  core::OrderingPipelineConfig pipeline;
  pipeline.max_batch = 4;
  pipeline.max_inflight = 2;
  core::OrderingRecoveryConfig recovery_config;
  recovery_config.checkpoint_interval = opts.pbft_checkpoint_interval;
  recovery_config.enable_state_transfer = true;
  core::PbftOrdering ordering(opts.num_replicas, net_config, "pbft-crashrec",
                              pipeline, recovery_config);

  Rng rng(seed);
  ordering.SetReplicaCommitObserver([&](size_t replica, uint64_t position,
                                        uint64_t batch_id,
                                        const std::vector<Bytes>& entries) {
    DurableReplica& d = durable[replica];
    if (d.crashed || !d.journal->is_open()) return;
    (void)d.journal->Append({position, batch_id, entries});
    if (++d.events_since_ckpt < opts.checkpoint_every) return;
    d.events_since_ckpt = 0;
    recovery::CheckpointContents contents;
    contents.ledger = &ordering.ReplicaLedger(replica);
    contents.consensus_seq = position;
    // The durable app blob is the protocol-level stable checkpoint: on
    // restart it re-anchors the replica's low watermark; state transfer
    // covers executions past it.
    contents.app_state =
        ordering.cluster().replica(replica).stable_checkpoint_blob();
    if (d.store->Save(contents).ok()) {
      ++report.checkpoints_saved;
      d.prev_ckpt_seq = d.last_ckpt_seq;
      d.last_ckpt_seq = position;
      d.store->GarbageCollect(2);
      (void)d.journal->TruncateBelow(d.prev_ckpt_seq);
    }
  });

  // Override the ordering's stock install callback so transferred state is
  // also made durable (see PersistInstalledState). The snapshot side must
  // stay EncodeReplicaState: it is what peers embed in checkpoint blobs.
  for (size_t i = 0; i < opts.num_replicas; ++i) {
    ordering.cluster().replica(i).SetStateCallbacks(
        [&, i] { return ordering.EncodeReplicaState(i); },
        [&, i](uint64_t /*seq*/, const Bytes& app) {
          if (app.empty()) return;
          if (!ordering.RestoreReplicaState(i, app).ok()) return;
          PersistInstalledState(
              ordering, i, ordering.replica_applied_seq(i),
              ordering.cluster().replica(i).stable_checkpoint_blob(),
              durable[i], &report);
        });
  }

  std::vector<CrashEvent> plan =
      PlanCrashes(seed, opts, /*allow_replica0=*/false);
  std::vector<Bytes> submitted;
  size_t next_crash = 0;
  std::set<size_t> down;

  auto recover_replica = [&](size_t victim) -> Status {
    DurableReplica& d = durable[victim];
    report.trace += "recover r" + std::to_string(victim) + "\n";
    auto rebuilt = RebuildFromDurable(d, /*decode_raft_batch_ids=*/false);
    PREVER_RETURN_IF_ERROR(rebuilt.status());
    report.journal_entries_replayed += rebuilt->replayed;
    d.last_ckpt_seq = rebuilt->checkpoint_seq;
    d.prev_ckpt_seq = 0;
    PREVER_RETURN_IF_ERROR(ResetJournal(d, rebuilt->kept));
    d.crashed = false;
    d.events_since_ckpt = 0;
    ordering.network().RestartNode(static_cast<net::NodeId>(victim));
    // Protocol restart first (installs the stable blob, broadcasts a
    // fetch-state request), then overlay the fuller journal-replayed ledger
    // so commits at or below the durable floor are not re-appended.
    ordering.cluster().replica(victim).Restart(rebuilt->app_state);
    PREVER_RETURN_IF_ERROR(ordering.RestoreReplica(
        victim, std::move(rebuilt->ledger), rebuilt->floor));
    ++report.recoveries;
    return Status::Ok();
  };

  for (size_t k = 0; k < opts.num_payloads; ++k) {
    for (size_t c = 0; c < plan.size(); ++c) {
      if (plan[c].recover_at == k && down.count(plan[c].victim)) {
        down.erase(plan[c].victim);
        if (Status s = recover_replica(plan[c].victim); !s.ok()) {
          return fail(s);
        }
      }
    }
    Bytes payload = MakePayload(seed, k);
    submitted.push_back(payload);
    if (Status s = ordering.Append(payload, 0); !s.ok()) return fail(s);
    if (next_crash < plan.size() && plan[next_crash].at == k) {
      const CrashEvent& ev = plan[next_crash++];
      size_t f = (opts.num_replicas - 1) / 3;
      if (!down.count(ev.victim) && down.size() < std::max<size_t>(f, 1)) {
        down.insert(ev.victim);
        ++report.crashes;
        report.trace += "crash r" + std::to_string(ev.victim) + " @" +
                        std::to_string(k) + " " + CrashPointName(ev.point) +
                        "\n";
        ordering.network().CrashNode(static_cast<net::NodeId>(ev.victim));
        ordering.cluster().replica(ev.victim).Crash();
        durable[ev.victim].crashed = true;
        durable[ev.victim].journal->Close();
        ApplyCrashDamage(durable[ev.victim], ev.point, rng, &report.trace);
      }
    }
  }
  for (size_t victim : std::set<size_t>(down)) {
    down.erase(victim);
    if (Status s = recover_replica(victim); !s.ok()) return fail(s);
  }
  if (Status s = ordering.Flush(); !s.ok()) return fail(s);
  // Quiet tail: state transfer rounds (fetch -> responses -> certified
  // suffix execution) need network time past the last flush.
  ordering.network().RunUntil(ordering.network().Now() + 10 * kSecond);

  report.committed = ordering.ReplicaLedger(0).size();
  for (const DurableReplica& d : durable) {
    report.checkpoints_quarantined += d.store->quarantined();
  }
  if (Status s = CheckExactlyOnce(ordering.ReplicaLedger(0), submitted);
      !s.ok()) {
    return fail(s);
  }
  if (Status s = CheckLedgerPrefixes(ordering, opts.num_replicas); !s.ok()) {
    return fail(s);
  }
  if (Status s = CheckCheckpointRoot(ordering, durable[0]); !s.ok()) {
    return fail(s);
  }
  // Message-log GC: every live replica's log must be bounded by the
  // protocol checkpoint interval plus the watermark window.
  for (size_t i = 0; i < opts.num_replicas; ++i) {
    size_t bound = opts.pbft_checkpoint_interval +
                   2 * pipeline.max_inflight * pipeline.max_batch + 64;
    size_t slots = ordering.cluster().replica(i).log_slots();
    if (slots > bound * 4) {
      return fail(Status::IntegrityViolation(
          "replica " + std::to_string(i) + " message log unbounded: " +
          std::to_string(slots) + " slots"));
    }
  }
  CleanupWorkDir(opts.work_dir);
  return report;
}

}  // namespace prever::simtest
