#include "testing/boundary_mutator.h"

#include <algorithm>
#include <string_view>

namespace prever::simtest {

BoundaryMutator::BoundaryMutator(int64_t bound, SimTime window,
                                 SimTime period_start,
                                 std::vector<std::string> workers,
                                 uint64_t seed)
    : bound_(bound),
      window_(window),
      period_start_(period_start),
      workers_(std::move(workers)),
      rng_(seed * 0xD1B54A32D192ED03ULL + 41),
      now_(period_start) {
  // The script walks two workers through the full threshold ladder
  // (fill -> bound-1 -> bound -> bound+1 -> zero-at-cap -> same-timestamp
  // retry), then probes the individually-oversized and window-edge cases.
  // Worker 0 opens the period in its first slot and closes it in its last.
  const size_t w0 = 0;
  const size_t w1 = workers_.size() > 1 ? 1 : 0;
  const size_t wz = workers_.size() - 1;  // Fresh-ish worker for single_over.
  script_.push_back({"window_first", w0});
  for (size_t k : {w0, w1}) {
    script_.push_back({"fill", k});
    script_.push_back({"cap_minus_one", k});
    script_.push_back({"cap_exact", k});
    script_.push_back({"cap_over", k});
    script_.push_back({"zero_at_cap", k});
    script_.push_back({"dup_ts", k});
  }
  script_.push_back({"single_over", wz});
  script_.push_back({"fill", wz});
  script_.push_back({"dup_ts", wz});
  script_.push_back({"window_last", w0});
  script_.push_back({"window_last", wz});
  // Leave the last slot for the window_last probes; everything else steps
  // evenly through the period so duplicate-timestamp pairs stay distinct
  // from their neighbours.
  time_step_ = (window_ - 2) / (script_.size() + 1);
}

int64_t BoundaryMutator::WindowSum(const storage::Database& db,
                                   const std::string& worker,
                                   SimTime now) const {
  int64_t sum = 0;
  auto table = db.GetTable("worklog");
  if (!table.ok()) return 0;
  // Half-open window (now - window, now], clamped at zero the same way the
  // evaluator clamps it (a clamped window excludes timestamp 0; the mutator
  // never emits ts = 0, so the clamp is only about matching semantics).
  SimTime window_start = window_ >= now ? 0 : now - window_;
  (*table)->Scan([&](const storage::Row& row) {
    auto w = row[1].AsString();
    auto hours = row[2].AsInt64();
    auto ts = row[3].AsTimestamp();
    if (w.ok() && hours.ok() && ts.ok() && *w == worker && *ts <= now &&
        *ts > window_start) {
      sum += *hours;
    }
    return true;
  });
  return sum;
}

BoundaryPlan BoundaryMutator::Next(const storage::Database& db) {
  const Step& step = script_[step_++];
  BoundaryPlan plan;
  plan.kind = step.kind;
  plan.worker = workers_[step.worker];
  plan.worker_index = step.worker;

  // Timestamp rules first: most kinds advance the clock one slot, dup_ts
  // reuses the previous timestamp exactly, and the window probes pin to the
  // period edges.
  if (std::string_view(step.kind) == "window_first") {
    // Timestamp 0 sits outside every clamped window, so the first usable
    // slot of period 0 is 1; later periods start exactly at period_start.
    plan.at = period_start_ == 0 ? 1 : period_start_;
  } else if (std::string_view(step.kind) == "dup_ts") {
    plan.at = prev_at_;
  } else if (std::string_view(step.kind) == "window_last") {
    plan.at = period_start_ + window_ - 1;
  } else {
    now_ += time_step_;
    plan.at = now_;
  }

  const int64_t sum = WindowSum(db, plan.worker, plan.at);
  const int64_t room = std::max<int64_t>(0, bound_ - sum);
  std::string_view kind(step.kind);
  if (kind == "window_first") {
    plan.hours = std::min<int64_t>(3, bound_);
  } else if (kind == "fill") {
    plan.hours = 1 + static_cast<int64_t>(
                         rng_.NextBelow(static_cast<uint64_t>(
                             std::max<int64_t>(1, bound_ / 4))));
  } else if (kind == "cap_minus_one") {
    plan.hours = std::max<int64_t>(0, room - 1);
  } else if (kind == "cap_exact") {
    plan.hours = room;
  } else if (kind == "cap_over") {
    plan.hours = room + 1;
  } else if (kind == "zero_at_cap") {
    plan.hours = 0;
  } else if (kind == "dup_ts") {
    plan.hours = 1;
  } else if (kind == "single_over") {
    plan.hours = bound_ + 1;
  } else {  // window_last
    plan.hours = std::min<int64_t>(room, 2);
  }

  plan.expect_accept = sum + plan.hours <= bound_;
  prev_at_ = plan.at;
  return plan;
}

}  // namespace prever::simtest
