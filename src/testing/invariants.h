#ifndef PREVER_TESTING_INVARIANTS_H_
#define PREVER_TESTING_INVARIANTS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "consensus/pbft.h"
#include "consensus/raft.h"

namespace prever::simtest {

/// Generic linearizability-style checker for state-machine replication:
/// validates every committed (position, command) observation against a
/// single-copy model of the log. Catches divergence (two replicas execute
/// different commands at one position), gaps, and duplicate execution of a
/// position — for any protocol that claims total-order delivery.
class SingleCopyChecker {
 public:
  explicit SingleCopyChecker(size_t num_replicas);

  /// Replica `replica` executed `command` at 0-based log position `pos`.
  /// Positions must be observed contiguously per replica.
  Status Observe(size_t replica, uint64_t pos, const Bytes& command);

  /// The single-copy history all replicas must follow.
  const std::vector<Bytes>& history() const { return history_; }

  /// Every committed command must come from `submitted` (no fabrication).
  Status CheckProvenance(const std::set<Bytes>& submitted) const;

  /// Positions executed by replica `replica` so far.
  uint64_t executed(size_t replica) const { return next_[replica]; }

 private:
  std::vector<Bytes> history_;
  std::vector<uint64_t> next_;
};

/// Raft safety invariants, checked incrementally so CheckStep is cheap
/// enough to run after every drained network event.
class RaftInvariantChecker {
 public:
  explicit RaftInvariantChecker(consensus::RaftCluster* cluster);

  /// Election safety (at most one leader per term) + committed-prefix
  /// agreement for entries newly committed since the last call.
  Status CheckStep();

  /// Full Log Matching Property over all replica pairs: if two logs agree
  /// on (index, term) then they are identical up to that index. O(n^2 * len);
  /// run periodically and at the end of a scenario.
  Status CheckLogMatching() const;

  uint64_t max_commit_index() const;

 private:
  consensus::RaftCluster* cluster_;
  std::map<uint64_t, net::NodeId> leader_by_term_;
  /// index -> (term, command) fixed at first commit observation.
  std::map<uint64_t, std::pair<uint64_t, Bytes>> committed_;
  std::vector<uint64_t> verified_commit_;  ///< Per replica.
};

/// PBFT safety: agreement + total order are delegated to a SingleCopyChecker
/// fed from the commit callback; this wrapper adds view-change sanity
/// (executed sequences only grow) and a no-duplicate-command check that is
/// valid when no replica equivocates.
class PbftInvariantChecker {
 public:
  explicit PbftInvariantChecker(consensus::PbftCluster* cluster,
                                bool byzantine_primary_possible);

  /// Wire this into PbftCluster::SetCommitCallback. Positions come from
  /// per-replica execution order, not raw sequence numbers: execution-level
  /// dedup may skip a slot (see PbftReplica::TryExecute), which leaves a
  /// legitimate gap in the callback's sequence numbers. Sequence numbers
  /// are still required to be strictly increasing per replica.
  Status OnCommit(net::NodeId replica, uint64_t seq, const Bytes& command);

  /// Executed counters must never move backwards (view changes must not
  /// roll back execution).
  Status CheckStep();

  Status CheckProvenance(const std::set<Bytes>& submitted) const;

  const SingleCopyChecker& single_copy() const { return checker_; }
  const std::string& first_violation() const { return first_violation_; }

 private:
  consensus::PbftCluster* cluster_;
  bool byzantine_primary_possible_;
  SingleCopyChecker checker_;
  std::vector<uint64_t> last_executed_;
  std::vector<uint64_t> last_seq_;  ///< Last callback seq per replica.
  std::set<Bytes> seen_commands_;
  std::string first_violation_;
};

}  // namespace prever::simtest

#endif  // PREVER_TESTING_INVARIANTS_H_
