#ifndef PREVER_TESTING_SIM_RUNNER_H_
#define PREVER_TESTING_SIM_RUNNER_H_

#include <string>

#include "testing/scenario.h"

namespace prever::simtest {

/// Shared configuration for one randomized consensus scenario.
struct ConsensusSimOptions {
  size_t num_nodes = 5;
  size_t num_commands = 14;
  SimTime submit_interval = 250 * kMillisecond;
  SimTime horizon = 30 * kSecond;
  size_t max_actions = 12;
  size_t max_concurrent_crashed = 2;
  double base_drop_rate = 0.01;
  /// PBFT only: a seed-chosen replica may equivocate as primary.
  bool allow_equivocation = false;
  /// On violation, greedily minimize the fault schedule before reporting.
  bool shrink_on_failure = true;
  /// Events between expensive full-log invariant checks (cheap incremental
  /// checks still run after every event).
  size_t deep_check_every = 64;
  /// Record per-event detail (faults, submissions, applies, final state)
  /// into SimReport::trace.
  bool record_trace = true;
};

/// Outcome of one scenario (possibly after shrinking).
struct SimReport {
  bool ok = true;
  uint64_t seed = 0;
  std::string violation;    ///< First invariant violation; empty when ok.
  FaultSchedule schedule;   ///< As generated from the seed.
  FaultSchedule reduced;    ///< Minimized failing schedule (== schedule if ok).
  std::string trace;        ///< Deterministic event trace.
  size_t events = 0;        ///< Drained simulation events.
  uint64_t committed = 0;   ///< Committed/executed entries observed.
  /// SimNetwork::StatsJson() at run end: traffic totals plus fault-event
  /// counts (drops, partitions, crashes, ...) for failure triage.
  std::string net_stats;
  /// Last-N causal flight-recorder events at the failing run's end (empty
  /// when ok): which transactions were mid-flight and where they were when
  /// the invariant broke. See src/obs/tracing.h.
  std::string trace_tail;

  /// Human-readable failure report: seed, violation, reduced schedule, and
  /// the one-command repro line.
  std::string Summary(const char* protocol) const;
};

/// Runs one seed-derived Raft scenario: randomized faults, a submitting
/// client, and invariant checks (election safety, commit agreement, log
/// matching, single-copy applies) after every drained event.
SimReport RunRaftScenario(uint64_t seed, const ConsensusSimOptions& options);

/// Runs one seed-derived PBFT scenario: agreement / total order / view
/// change safety via the commit stream, with optional primary equivocation.
SimReport RunPbftScenario(uint64_t seed, const ConsensusSimOptions& options);

/// Configuration for one randomized PIPELINED-ORDERING scenario: payloads
/// flow through core::RaftOrdering / core::PbftOrdering (SubmitAsync +
/// adaptive batching + the in-flight window) while faults fire, then a
/// final Flush must commit everything. The pipeline knobs (batch size,
/// window depth, close delay) are themselves seed-derived, so a sweep
/// explores the batch x window x delay space.
struct OrderingSimOptions {
  size_t num_replicas = 5;
  size_t num_payloads = 40;
  SimTime submit_interval = 25 * kMillisecond;
  /// Fault + submission phase length (measured from scenario start, which
  /// is after initial leader election for Raft); Flush then gets the
  /// pipeline's own flush_timeout on a fully healed network.
  SimTime horizon = 15 * kSecond;
  size_t max_actions = 8;
  size_t max_concurrent_crashed = 1;
  double base_drop_rate = 0.0;
  bool shrink_on_failure = true;
  bool record_trace = true;
};

/// Raft ordering under faults (crashes, partitions, latency/drop spikes,
/// timer skew). Checks: Flush commits every submitted payload; the
/// replica-0 ledger holds each payload exactly once (no double-execution
/// from Flush's re-submissions); all replica ledgers are digest-identical
/// on their common prefix.
SimReport RunRaftOrderingScenario(uint64_t seed,
                                  const OrderingSimOptions& options);

/// PBFT ordering under faults. Same invariants. Faults touching replica 0
/// are filtered from the schedule and the base drop rate is forced to zero:
/// this PBFT has no state transfer, so a replica cut off while others
/// execute can lag forever — acceptable for backups (the prefix-digest
/// check still covers them) but replica 0 is the commit counter Flush
/// waits on. See DESIGN.md "Simulation testing".
SimReport RunPbftOrderingScenario(uint64_t seed,
                                  const OrderingSimOptions& options);

}  // namespace prever::simtest

#endif  // PREVER_TESTING_SIM_RUNNER_H_
