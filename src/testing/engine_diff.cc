#include "testing/engine_diff.h"

#include <atomic>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "constraint/constraint.h"
#include "constraint/program_cache.h"
#include "core/federated_threshold_engine.h"
#include "core/federated_token_engine.h"
#include "core/ordering.h"
#include "core/plaintext_engine.h"
#include "crypto/pedersen.h"
#include "obs/registry.h"
#include "obs/tracing.h"
#include "testing/boundary_mutator.h"

namespace prever::simtest {

namespace {

using core::Update;
using storage::Value;

storage::Schema WorklogSchema() {
  return storage::Schema({{"id", storage::ValueType::kString},
                          {"worker", storage::ValueType::kString},
                          {"hours", storage::ValueType::kInt64},
                          {"at", storage::ValueType::kTimestamp}});
}

Update MakeWorklogUpdate(const std::string& id, const std::string& worker,
                         int64_t hours, SimTime at) {
  Update u;
  u.id = id;
  u.producer = worker;
  u.timestamp = at;
  u.fields = {{"worker", Value::String(worker)},
              {"hours", Value::Int64(hours)}};
  u.mutation.op = storage::Mutation::Op::kInsert;
  u.mutation.table = "worklog";
  u.mutation.row = {Value::String(id), Value::String(worker),
                    Value::Int64(hours), Value::Timestamp(at)};
  return u;
}

const char* Bit(bool b) { return b ? "1" : "0"; }

/// Per-worker (sum of hours, row count) extracted from a worklog table.
void AccumulateWorklog(const storage::Database& db,
                       std::map<std::string, int64_t>* sums,
                       std::map<std::string, uint64_t>* counts) {
  auto table = db.GetTable("worklog");
  if (!table.ok()) return;
  (*table)->Scan([&](const storage::Row& row) {
    auto worker = row[1].AsString();
    auto hours = row[2].AsInt64();
    if (worker.ok() && hours.ok()) {
      (*sums)[*worker] += *hours;
      ++(*counts)[*worker];
    }
    return true;
  });
}

}  // namespace

std::unique_ptr<EngineDiffFixtures> EngineDiffFixtures::Create(int64_t bound,
                                                               uint64_t seed) {
  auto f = std::make_unique<EngineDiffFixtures>();
  f->owned_owner = std::make_unique<core::DataOwner>(
      256, crypto::PedersenParams::Test256(), seed);
  f->owned_authority = std::make_unique<token::TokenAuthority>(
      512, static_cast<uint64_t>(bound), kWeek, seed + 1);
  crypto::Drbg drbg(seed + 2);
  for (int i = 0; i < 3; ++i) {
    f->owned_keys.push_back(crypto::RsaGenerateKey(512, drbg).value());
  }
  f->owner = f->owned_owner.get();
  f->authority = f->owned_authority.get();
  f->producer_keys = &f->owned_keys;
  return f;
}

std::string EngineDiffReport::Summary() const {
  std::string s = "engine differential failed\n  seed: " +
                  std::to_string(seed) + "\n  divergence: " + divergence +
                  "\n  replay: PREVER_SIM_SEED=" + std::to_string(seed) +
                  " ./tests/sim_engine_diff_test\n";
  // Process-lifetime engine counters from the default registry: which
  // engine family diverged is usually visible from the accept/reject mix.
  std::string metrics = obs::Registry::Default().RenderText();
  std::string engine_lines;
  size_t start = 0;
  while (start < metrics.size()) {
    size_t end = metrics.find('\n', start);
    if (end == std::string::npos) end = metrics.size();
    if (metrics.compare(start, 27, "prever_engine_updates_total") == 0) {
      engine_lines += "    " + metrics.substr(start, end - start) + "\n";
    }
    start = end + 1;
  }
  if (!engine_lines.empty()) s += "  engine counters:\n" + engine_lines;
  if (!trace_tail.empty()) {
    s += "  flight recorder tail (last causal events at the divergence):\n";
    s += trace_tail;
  }
  if (!trace.empty()) s += "  trace:\n" + trace;
  return s;
}

EngineDiffReport RunEngineDifferential(uint64_t seed,
                                       const EngineDiffOptions& o,
                                       const EngineDiffFixtures& fixtures) {
  EngineDiffReport report;
  report.seed = seed;
  // Sample every transaction into a small flight-recorder ring for the
  // run; the first divergence snapshots the tail into the report so the
  // failure summary shows which engine/stage the update was in.
  obs::TracerConfig tcfg;
  tcfg.enabled = true;
  tcfg.sample_period = 1;
  tcfg.ring_capacity = 512;
  tcfg.trace_unrooted_messages = true;
  obs::Tracer::Get().Configure(tcfg);
  struct DisableTracingOnExit {
    ~DisableTracingOnExit() { obs::Tracer::Get().SetEnabled(false); }
  } tracing_off;
  auto fail = [&](std::string why) {
    report.ok = false;
    if (report.divergence.empty()) {
      report.divergence = std::move(why);
      report.trace_tail = obs::Tracer::Get().TailString(32);
    }
  };

  if (fixtures.authority->budget_per_period() !=
      static_cast<uint64_t>(o.bound)) {
    fail("fixture mismatch: authority budget " +
         std::to_string(fixtures.authority->budget_per_period()) +
         " != bound " + std::to_string(o.bound));
    return report;
  }

  // ---- Deterministic signed-update stream. All timestamps live inside one
  // regulation window [kHour, kWeek), so the catalog's sliding 7d WINDOW,
  // the encrypted engine's kWeek bound window, and the token authority's
  // per-period budget all constrain exactly the same set of updates.
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 17);
  core::ProducerKeyDirectory directory;
  std::vector<std::string> producers;
  for (size_t i = 0; i < o.num_producers; ++i) {
    // Seed-qualified names: the shared TokenAuthority tracks budgets per
    // (participant, period), so reusing a name across seeds would leak
    // budget state between scenarios.
    std::string name =
        "w" + std::to_string(seed) + "n" + std::to_string(i);
    producers.push_back(name);
    const auto& key = (*fixtures.producer_keys)[i % fixtures.producer_keys->size()];
    Status reg = directory.Register(name, key.pub);
    if (!reg.ok()) {
      fail("producer registration failed: " + reg.message());
      return report;
    }
  }

  // Every engine but the token one gets fresh state per run, and the shared
  // TokenAuthority budgets by (participant, period). Re-running a seed in
  // one process (determinism checks, replay after a sweep) must not see the
  // previous run's spent budget, so each run lands in its own period. The
  // offset shifts all timestamps equally: window contents, period totals,
  // and hence every accept/reject decision — and the trace — are unchanged.
  static std::atomic<uint64_t> run_counter{0};
  SimTime period_offset = run_counter.fetch_add(1) * kWeek;

  std::vector<core::SignedUpdate> stream;
  if (!o.boundary) {
    SimTime step = (kWeek - 2 * kHour) / (o.num_updates + 1);
    for (size_t j = 0; j < o.num_updates; ++j) {
      size_t pi = rng.NextBelow(o.num_producers);
      // Mix: mostly modest shifts that accumulate toward the cap, some that
      // individually exceed it, some mid-size ones whose fate depends on the
      // worker's running total.
      uint64_t roll = rng.NextBelow(10);
      int64_t hours;
      if (roll < 6) {
        hours = static_cast<int64_t>(rng.NextBelow(13));  // 0..12
      } else if (roll < 8) {
        hours = o.bound + 1 + static_cast<int64_t>(rng.NextBelow(20));
      } else {
        hours = 13 + static_cast<int64_t>(rng.NextBelow(28));  // 13..40
      }
      SimTime at = period_offset + kHour + j * step + rng.NextBelow(step / 2);
      Update u = MakeWorklogUpdate(
          "u" + std::to_string(seed) + "-" + std::to_string(j), producers[pi],
          hours, at);
      const auto& key =
          (*fixtures.producer_keys)[pi % fixtures.producer_keys->size()];
      stream.push_back(core::SignUpdate(std::move(u), key));
    }
  }

  // ---- One instance of every engine, each with its own storage and ledger.
  std::string regulation =
      "SUM(worklog.hours WHERE worker = update.worker WINDOW 7d) + "
      "update.hours <= " +
      std::to_string(o.bound);

  storage::Database plain_db;
  constraint::ConstraintCatalog catalog;
  if (!plain_db.CreateTable("worklog", WorklogSchema()).ok() ||
      !catalog
           .Add("flsa", constraint::ConstraintScope::kRegulation,
                constraint::ConstraintVisibility::kPublic, regulation)
           .ok()) {
    fail("plaintext setup failed");
    return report;
  }
  core::CentralizedOrdering ord_plain, ord_enc, ord_tok, ord_thr, ord_mpc;
  core::PlaintextEngine plain(&plain_db, &catalog, &ord_plain);

  std::vector<core::RegulatedBound> bounds = {
      {constraint::BoundDirection::kUpper, o.bound, kWeek, 8}};
  core::EncryptedEngine encrypted(fixtures.owner, &ord_enc, "worker", "hours",
                                  bounds, o.value_bits, seed | 1);

  auto make_platforms = [&](const char* tag) {
    std::vector<std::unique_ptr<core::FederatedPlatform>> ps;
    for (size_t i = 0; i < o.num_platforms; ++i) {
      auto p = std::make_unique<core::FederatedPlatform>();
      p->id = std::string(tag) + "-" + std::to_string(i);
      (void)p->db.CreateTable("worklog", WorklogSchema());
      ps.push_back(std::move(p));
    }
    return ps;
  };
  auto raw = [](auto& ps) {
    std::vector<core::FederatedPlatform*> r;
    for (auto& p : ps) r.push_back(p.get());
    return r;
  };

  auto tok_platforms = make_platforms("tok");
  auto thr_platforms = make_platforms("thr");
  auto mpc_platforms = make_platforms("mpc");
  core::FederatedTokenEngine token_engine(raw(tok_platforms),
                                          fixtures.authority, &ord_tok,
                                          "hours");
  // The paired federated engines evaluate structurally identical regulation
  // aggregates over their (independent) platform databases: one shared
  // ProgramCache compiles each distinct expression once across both engines
  // and all their platform verifiers. Aggregate caches stay per-verifier.
  constraint::ProgramCache shared_programs;
  core::FederatedThresholdEngine threshold_engine(
      raw(thr_platforms), &catalog, &ord_thr,
      crypto::PedersenParams::Test256(), seed * 5 + 3, &shared_programs);
  core::FederatedMpcEngine mpc_engine(raw(mpc_platforms), &catalog, &ord_mpc,
                                      seed * 7 + 5, &shared_programs);

  // ---- Replay the stream through all five engines. The body is shared by
  // the random-stream and boundary-mutator modes; `expect` (when non-null)
  // is the mutator's independent prediction of the reference decision.
  std::map<std::string, int64_t> expect_sum;
  std::map<std::string, uint64_t> expect_count;
  int64_t accepted_hours = 0;
  auto process = [&](const core::SignedUpdate& su, const char* kind,
                     const bool* expect) {
    const Update& u = su.update;
    Status sig = core::VerifyUpdateSignature(su, directory);
    if (!sig.ok()) {
      fail("update " + u.id + ": valid signature rejected: " + sig.message());
      return false;
    }
    auto hours_v = u.fields.at("hours").AsInt64();
    int64_t hours = hours_v.ok() ? *hours_v : -1;
    bool plain_ok = plain.SubmitUpdate(u).ok();
    bool enc_ok = encrypted.SubmitUpdate(u).ok();
    size_t platform = report.updates % o.num_platforms;
    bool tok_ok = token_engine.SubmitVia(platform, u).ok();
    bool thr_ok = threshold_engine.SubmitVia(platform, u).ok();
    bool mpc_ok = mpc_engine.SubmitVia(platform, u).ok();
    report.trace += u.id + " worker=" + u.producer +
                    " hours=" + std::to_string(hours) + " via=" +
                    std::to_string(platform) + " plain=" + Bit(plain_ok) +
                    " enc=" + Bit(enc_ok) + " tok=" + Bit(tok_ok) + " thr=" +
                    Bit(thr_ok) + " mpc=" + Bit(mpc_ok) +
                    (kind != nullptr ? std::string(" kind=") + kind : "") +
                    "\n";
    ++report.updates;
    if (plain_ok) {
      ++report.accepted;
      expect_sum[u.producer] += hours;
      ++expect_count[u.producer];
      accepted_hours += hours;
    }
    auto diverged = [&](const char* engine, bool got) {
      fail("update " + u.id + " (worker " + u.producer + ", hours " +
           std::to_string(hours) + "): " + engine + " engine " +
           (got ? "accepted" : "rejected") + " but plaintext reference " +
           (plain_ok ? "accepted" : "rejected"));
    };
    if (expect != nullptr && plain_ok != *expect) {
      fail("update " + u.id + " (worker " + u.producer + ", hours " +
           std::to_string(hours) + ", kind " + (kind ? kind : "?") +
           "): boundary mutator's windowed-sum model predicted " +
           (*expect ? "accept" : "reject") + " but plaintext engine " +
           (plain_ok ? "accepted" : "rejected"));
    }
    if (enc_ok != plain_ok) diverged("encrypted", enc_ok);
    if (tok_ok != plain_ok) diverged("token", tok_ok);
    if (thr_ok != plain_ok) diverged("threshold", thr_ok);
    if (mpc_ok != plain_ok) diverged("mpc", mpc_ok);
    return report.ok;
  };
  if (o.boundary) {
    BoundaryMutator mutator(o.bound, kWeek, period_offset, producers,
                            seed * 3 + 1);
    size_t j = 0;
    while (!mutator.Done()) {
      BoundaryPlan plan = mutator.Next(plain_db);
      Update u = MakeWorklogUpdate(
          "b" + std::to_string(seed) + "-" + std::to_string(j), plan.worker,
          plan.hours, plan.at);
      const auto& key = (*fixtures.producer_keys)[plan.worker_index %
                                                  fixtures.producer_keys->size()];
      if (!process(core::SignUpdate(std::move(u), key), plan.kind,
                   &plan.expect_accept)) {
        return report;
      }
      ++j;
    }
  } else {
    for (const core::SignedUpdate& su : stream) {
      if (!process(su, nullptr, nullptr)) return report;
    }
  }
  if (!report.ok) return report;

  // ---- Final decrypted state must agree with the plaintext reference.
  std::map<std::string, int64_t> plain_sum;
  std::map<std::string, uint64_t> plain_count;
  AccumulateWorklog(plain_db, &plain_sum, &plain_count);
  if (plain_sum != expect_sum || plain_count != expect_count) {
    fail("plaintext database disagrees with its own accept decisions");
    return report;
  }
  for (const auto& [worker, count] : expect_count) {
    size_t enc_rows = encrypted.NumRows(worker);
    if (enc_rows != count) {
      fail("encrypted engine holds " + std::to_string(enc_rows) +
           " sealed rows for " + worker + ", expected " +
           std::to_string(count));
      return report;
    }
  }
  std::map<std::string, int64_t> tok_sum, thr_sum, mpc_sum;
  std::map<std::string, uint64_t> tok_count, thr_count, mpc_count;
  for (auto& p : tok_platforms) AccumulateWorklog(p->db, &tok_sum, &tok_count);
  for (auto& p : thr_platforms) AccumulateWorklog(p->db, &thr_sum, &thr_count);
  for (auto& p : mpc_platforms) AccumulateWorklog(p->db, &mpc_sum, &mpc_count);
  struct Fed {
    const char* name;
    const std::map<std::string, int64_t>* sum;
    const std::map<std::string, uint64_t>* count;
  };
  for (const Fed& fed : {Fed{"token", &tok_sum, &tok_count},
                         Fed{"threshold", &thr_sum, &thr_count},
                         Fed{"mpc", &mpc_sum, &mpc_count}}) {
    if (*fed.sum != expect_sum || *fed.count != expect_count) {
      fail(std::string(fed.name) +
           " engine's federated databases disagree with the plaintext "
           "reference state");
      return report;
    }
  }
  if (token_engine.tokens_spent() != static_cast<uint64_t>(accepted_hours)) {
    fail("token engine spent " + std::to_string(token_engine.tokens_spent()) +
         " tokens but accepted updates total " +
         std::to_string(accepted_hours) + " hours");
    return report;
  }
  // Ledger commit counts: one entry per accepted update, except the token
  // engine which burns one ledger entry per spent token.
  struct Led {
    const char* name;
    const core::OrderingService* ord;
    uint64_t expect;
  };
  for (const Led& led :
       {Led{"plaintext", &ord_plain, report.accepted},
        Led{"encrypted", &ord_enc, report.accepted},
        Led{"threshold", &ord_thr, report.accepted},
        Led{"mpc", &ord_mpc, report.accepted},
        Led{"token", &ord_tok, static_cast<uint64_t>(accepted_hours)}}) {
    if (led.ord->CommittedCount() != led.expect) {
      fail(std::string(led.name) + " ledger committed " +
           std::to_string(led.ord->CommittedCount()) + " entries, expected " +
           std::to_string(led.expect));
      return report;
    }
  }
  // Engine stats must tell the same acceptance story.
  const std::vector<const core::UpdateEngine*> engines = {
      &plain, &encrypted, &token_engine, &threshold_engine, &mpc_engine};
  for (const core::UpdateEngine* e : engines) {
    if (e->stats().accepted != report.accepted ||
        e->stats().submitted != report.updates) {
      fail(std::string(e->name()) + " stats report " +
           std::to_string(e->stats().accepted) + "/" +
           std::to_string(e->stats().submitted) +
           " accepted/submitted, expected " +
           std::to_string(report.accepted) + "/" +
           std::to_string(report.updates));
      return report;
    }
  }

  // Shared compiled-program cache: the regulation aggregate must have
  // compiled once between the paired engines, with every later verifier
  // served from cache — and the second (MPC) engine's verifiers must have
  // stayed on the incremental delta path, never the per-query rescan.
  constraint::ProgramCache::Stats pc = shared_programs.stats();
  if (pc.hits + pc.compiles != pc.lookups) {
    fail("program cache accounting broken: " + std::to_string(pc.hits) +
         " hits + " + std::to_string(pc.compiles) + " compiles != " +
         std::to_string(pc.lookups) + " lookups");
    return report;
  }
  if (report.updates > 0 && pc.hits == 0) {
    fail("paired engines recompiled every constraint: shared program cache "
         "saw " + std::to_string(pc.lookups) + " lookups but no hits");
    return report;
  }
  for (size_t i = 0; i < o.num_platforms; ++i) {
    constraint::CompiledVerifier::Stats vs = mpc_engine.verifier_stats(i);
    if (vs.agg.scan_evals != 0) {
      fail("mpc platform " + std::to_string(i) + " verifier fell off the "
           "incremental path: " + std::to_string(vs.agg.scan_evals) +
           " per-query rescans");
      return report;
    }
    if (report.updates >= 2 &&
        vs.agg.cache_hits + vs.agg.delta_applies == 0) {
      fail("mpc platform " + std::to_string(i) + " verifier never served "
           "from incremental aggregate state (" +
           std::to_string(vs.agg.cache_builds) + " builds)");
      return report;
    }
  }

  report.trace += "final:";
  for (const auto& [worker, sum] : expect_sum) {
    report.trace += " " + worker + "=" + std::to_string(sum) + "h/" +
                    std::to_string(expect_count[worker]) + "rows";
  }
  report.trace += " tokens=" + std::to_string(token_engine.tokens_spent()) +
                  " accepted=" + std::to_string(report.accepted) + "/" +
                  std::to_string(report.updates) + "\n";
  return report;
}

}  // namespace prever::simtest
