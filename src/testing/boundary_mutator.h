#ifndef PREVER_TESTING_BOUNDARY_MUTATOR_H_
#define PREVER_TESTING_BOUNDARY_MUTATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "storage/database.h"

namespace prever::simtest {

/// One planned update from the boundary mutator: who, how much, when, and
/// what the regulation reference must decide. `kind` tags the boundary the
/// update targets so a divergence report says *which* edge broke.
struct BoundaryPlan {
  const char* kind = "";
  std::string worker;
  size_t worker_index = 0;  ///< Index into the constructor's worker list.
  int64_t hours = 0;
  SimTime at = 0;
  /// Reference decision predicted from the current table state by an
  /// independent reimplementation of the windowed-sum rule. A mismatch
  /// against the plaintext engine means either the mutator's model or the
  /// constraint evaluator is wrong — both are bugs worth a loud failure.
  bool expect_accept = false;
};

/// Data-aware workload mutator for the engine differential. Instead of
/// drawing hours blindly, each call scans the reference database's current
/// per-worker aggregate state and emits the update that lands *exactly* on a
/// regulation boundary:
///
///   - `window_first`   row in the very first slot of the period,
///   - `cap_minus_one`  running sum to bound-1 (last accepting value - 1),
///   - `cap_exact`      running sum to exactly the bound,
///   - `cap_over`       bound+1 by one hour — the first rejecting value,
///   - `zero_at_cap`    a zero-hours update while sitting at the bound,
///   - `dup_ts`         a second update at the *same* timestamp (exercises
///                      the window's inclusive `ts == now` end),
///   - `single_over`    one update individually exceeding the bound,
///   - `window_last`    probe in the last slot of the period/window.
///
/// Random sweeps hit these edges rarely (a uniform draw lands on "exactly
/// bound" with probability ~1/bound per update); the mutator hits every one
/// of them every run, which is what makes off-by-one mutants in the window
/// and comparison logic die in seconds instead of surviving a 200-seed
/// sweep.
class BoundaryMutator {
 public:
  /// `workers` are the producer names to target (>= 2 recommended);
  /// `period_start` is the first valid timestamp, and every emitted
  /// timestamp stays within [period_start, period_start + window).
  BoundaryMutator(int64_t bound, SimTime window, SimTime period_start,
                  std::vector<std::string> workers, uint64_t seed);

  bool Done() const { return step_ >= script_.size(); }
  size_t NumSteps() const { return script_.size(); }

  /// Plans the next update from `db`'s current "worklog" table contents.
  /// Call exactly once per submission, after the previous plan was applied
  /// (or rejected) by the reference engine.
  BoundaryPlan Next(const storage::Database& db);

 private:
  struct Step {
    const char* kind;
    size_t worker;
  };

  /// Sum of accepted hours for `worker` whose timestamps fall inside the
  /// half-open window (now - window, now]. Deliberately NOT implemented via
  /// constraint::Evaluate — this is the independent oracle.
  int64_t WindowSum(const storage::Database& db, const std::string& worker,
                    SimTime now) const;

  int64_t bound_;
  SimTime window_;
  SimTime period_start_;
  std::vector<std::string> workers_;
  Rng rng_;
  std::vector<Step> script_;
  size_t step_ = 0;
  SimTime now_;
  SimTime time_step_;
  SimTime prev_at_ = 0;
};

}  // namespace prever::simtest

#endif  // PREVER_TESTING_BOUNDARY_MUTATOR_H_
