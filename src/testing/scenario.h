#ifndef PREVER_TESTING_SCENARIO_H_
#define PREVER_TESTING_SCENARIO_H_

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "net/sim_net.h"

namespace prever::simtest {

/// One fault injected into a running simulation at a fixed simulated time.
/// Schedules are plain data so a failing schedule can be printed, shrunk,
/// and replayed verbatim.
enum class FaultKind : uint8_t {
  kPartition,     ///< Cut link a <-> b.
  kHeal,          ///< Restore link a <-> b.
  kHealAll,       ///< Restore all partitioned links.
  kCrash,         ///< Crash-stop node a (network + protocol state).
  kRestart,       ///< Restart node a.
  kLatencySpike,  ///< Override link a <-> b latency to [lat_min, lat_max].
  kLatencyClear,  ///< Remove the a <-> b latency override.
  kDropSpike,     ///< Raise the global drop probability to `rate`.
  kDropClear,     ///< Restore the baseline drop probability.
  kTimerSkew,     ///< Scale protocol timer delays by `rate`.
  kTimerClear,    ///< Restore nominal timer scale (1.0).
};

const char* FaultKindName(FaultKind kind);

struct FaultAction {
  SimTime at = 0;
  FaultKind kind = FaultKind::kHealAll;
  net::NodeId a = 0;
  net::NodeId b = 0;
  SimTime lat_min = 0;
  SimTime lat_max = 0;
  double rate = 0.0;

  /// One-line replayable form, e.g. "@2.150s crash node=3".
  std::string ToString() const;
};

struct FaultSchedule {
  uint64_t seed = 0;
  std::vector<FaultAction> actions;  ///< Sorted by `at`.

  std::string ToString() const;
};

/// Tuning knobs for randomized schedule generation.
struct ScenarioOptions {
  size_t num_nodes = 3;
  SimTime horizon = 30 * kSecond;   ///< Simulation end time.
  size_t max_actions = 16;          ///< Fault actions (excluding closers).
  size_t max_concurrent_crashed = 1;
  double base_drop_rate = 0.0;      ///< Restored by kDropClear.
  /// All outages are closed (healed / restarted / cleared) by this fraction
  /// of the horizon, leaving a quiet tail for the protocol to converge.
  double quiesce_fraction = 0.7;
};

/// Derives a randomized-but-deterministic fault schedule from a single
/// uint64 seed: same seed + options -> identical schedule. Every opening
/// fault (crash, partition, spike, skew) gets a matching closing action, so
/// a generated scenario always ends with a fully connected, fully live
/// cluster.
class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(ScenarioOptions options);

  FaultSchedule Generate(uint64_t seed) const;

 private:
  ScenarioOptions options_;
};

/// Protocol-level crash hooks (the network-level part is handled by
/// SimNetwork::CrashNode/RestartNode).
struct FaultHooks {
  std::function<void(net::NodeId)> crash;
  std::function<void(net::NodeId)> restart;
};

/// Schedules every action of `schedule` onto `net` (call once, before
/// running the event loop). Each applied action appends one line to
/// `trace` if non-null — part of the deterministic event trace.
void InstallSchedule(net::SimNetwork* net, const FaultSchedule& schedule,
                     const FaultHooks& hooks, std::string* trace);

}  // namespace prever::simtest

#endif  // PREVER_TESTING_SCENARIO_H_
