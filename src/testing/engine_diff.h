#ifndef PREVER_TESTING_ENGINE_DIFF_H_
#define PREVER_TESTING_ENGINE_DIFF_H_

#include <memory>
#include <string>
#include <vector>

#include "core/encrypted_engine.h"
#include "core/signed_update.h"
#include "token/token.h"

namespace prever::simtest {

/// Heavyweight key material shared across seeds of a differential sweep —
/// key generation is independent of scenario determinism (decisions do not
/// depend on randomness, only proof bytes do), so regenerating it per seed
/// would only burn time.
struct EngineDiffFixtures {
  /// RC1 data owner (Paillier + Pedersen). >= |bound| + slack bits.
  core::DataOwner* owner = nullptr;
  /// Separ-style token authority; budget_per_period must equal
  /// EngineDiffOptions::bound, period must be >= the stream's time span.
  token::TokenAuthority* authority = nullptr;
  /// Producer signing keys, assigned round-robin to generated producers.
  std::vector<crypto::RsaKeyPair>* producer_keys = nullptr;

  /// Builds a self-owned fixture set (expensive; do once per process).
  static std::unique_ptr<EngineDiffFixtures> Create(int64_t bound,
                                                    uint64_t seed);

  std::unique_ptr<core::DataOwner> owned_owner;
  std::unique_ptr<token::TokenAuthority> owned_authority;
  std::vector<crypto::RsaKeyPair> owned_keys;
};

struct EngineDiffOptions {
  size_t num_producers = 3;
  size_t num_updates = 10;
  size_t num_platforms = 2;   ///< Federated engines.
  int64_t bound = 40;         ///< Weekly cap (FLSA-style regulation).
  size_t value_bits = 8;      ///< Producer range-proof width (RC1).
  /// Replace the random stream with the data-aware BoundaryMutator: every
  /// update is planned from the reference table's current aggregate state to
  /// land exactly on a regulation boundary (bound-1 / bound / bound+1,
  /// window first/last slot, duplicate timestamps, zero at the cap), and the
  /// mutator's independent windowed-sum prediction is checked against the
  /// plaintext engine's decision on every update. `num_updates` is ignored.
  bool boundary = false;
};

/// Outcome of replaying one seed-derived signed-update stream through the
/// plaintext reference engine and every private engine.
struct EngineDiffReport {
  bool ok = true;
  uint64_t seed = 0;
  std::string divergence;  ///< First mismatch; empty when ok.
  /// Deterministic decision trace: one line per update with every engine's
  /// accept/reject bit, plus a final-state section.
  std::string trace;
  size_t updates = 0;
  size_t accepted = 0;     ///< Reference (plaintext) accept count.
  /// Last-N causal flight-recorder events captured at the first divergence
  /// (empty when ok): which engine/stage the diverging update was in. See
  /// src/obs/tracing.h.
  std::string trace_tail;

  std::string Summary() const;
};

/// Generates a signed-update stream from `seed` (mixed compliant /
/// violating / oversized values, all timestamps within one regulation
/// window so sliding-window and per-period semantics coincide), verifies
/// every signature, replays the stream through PlaintextEngine,
/// EncryptedEngine, FederatedTokenEngine, FederatedThresholdEngine and
/// FederatedMpcEngine, and checks that (1) each private engine's
/// accept/reject decision matches the plaintext reference on every update
/// and (2) the engines' final (decrypted) states agree: per-producer
/// accepted totals across platform databases, sealed-row counts, spent
/// tokens, and ledger commit counts.
EngineDiffReport RunEngineDifferential(uint64_t seed,
                                       const EngineDiffOptions& options,
                                       const EngineDiffFixtures& fixtures);

}  // namespace prever::simtest

#endif  // PREVER_TESTING_ENGINE_DIFF_H_
