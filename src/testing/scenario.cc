#include "testing/scenario.h"

#include <algorithm>

namespace prever::simtest {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHeal: return "heal";
    case FaultKind::kHealAll: return "heal-all";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kLatencySpike: return "latency-spike";
    case FaultKind::kLatencyClear: return "latency-clear";
    case FaultKind::kDropSpike: return "drop-spike";
    case FaultKind::kDropClear: return "drop-clear";
    case FaultKind::kTimerSkew: return "timer-skew";
    case FaultKind::kTimerClear: return "timer-clear";
  }
  return "?";
}

namespace {

std::string TimeString(SimTime t) {
  // Fixed-point seconds with millisecond resolution: deterministic, no
  // locale-dependent floating formatting.
  return std::to_string(t / kSecond) + "." +
         std::to_string((t % kSecond) / kMillisecond / 100) +
         std::to_string((t % kSecond) / kMillisecond / 10 % 10) +
         std::to_string((t % kSecond) / kMillisecond % 10) + "s";
}

std::string RateString(double rate) {
  // Two decimal places, deterministic.
  int hundredths = static_cast<int>(rate * 100.0 + 0.5);
  return std::to_string(hundredths / 100) + "." +
         std::to_string(hundredths / 10 % 10) +
         std::to_string(hundredths % 10);
}

}  // namespace

std::string FaultAction::ToString() const {
  std::string s = "@" + TimeString(at) + " " + FaultKindName(kind);
  switch (kind) {
    case FaultKind::kPartition:
    case FaultKind::kHeal:
      s += " link=" + std::to_string(a) + "<->" + std::to_string(b);
      break;
    case FaultKind::kCrash:
    case FaultKind::kRestart:
      s += " node=" + std::to_string(a);
      break;
    case FaultKind::kLatencySpike:
      s += " link=" + std::to_string(a) + "<->" + std::to_string(b) +
           " range=[" + TimeString(lat_min) + "," + TimeString(lat_max) + "]";
      break;
    case FaultKind::kLatencyClear:
      s += " link=" + std::to_string(a) + "<->" + std::to_string(b);
      break;
    case FaultKind::kDropSpike:
    case FaultKind::kTimerSkew:
      s += " rate=" + RateString(rate);
      break;
    case FaultKind::kHealAll:
    case FaultKind::kDropClear:
    case FaultKind::kTimerClear:
      break;
  }
  return s;
}

std::string FaultSchedule::ToString() const {
  std::string s = "schedule seed=" + std::to_string(seed) + " actions=" +
                  std::to_string(actions.size()) + "\n";
  for (const FaultAction& action : actions) {
    s += "  " + action.ToString() + "\n";
  }
  return s;
}

ScenarioGenerator::ScenarioGenerator(ScenarioOptions options)
    : options_(options) {}

FaultSchedule ScenarioGenerator::Generate(uint64_t seed) const {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);  // Decorrelate nearby seeds.
  FaultSchedule schedule;
  schedule.seed = seed;

  const SimTime quiesce = static_cast<SimTime>(
      static_cast<double>(options_.horizon) * options_.quiesce_fraction);
  const SimTime start = quiesce / 10;
  size_t crashed = 0;
  std::vector<net::NodeId> crashed_nodes;

  SimTime t = start;
  for (size_t i = 0; i < options_.max_actions && t < quiesce; ++i) {
    t += rng.NextBelow((quiesce - start) / options_.max_actions + 1);
    if (t >= quiesce) break;
    // Closing actions land between the opener and the quiesce point.
    SimTime close_at =
        t + 1 + rng.NextBelow(std::max<SimTime>(quiesce - t, 2) - 1);
    FaultAction open;
    FaultAction close;
    open.at = t;
    close.at = close_at;
    switch (rng.NextBelow(5)) {
      case 0: {  // Crash + restart.
        if (crashed >= options_.max_concurrent_crashed) continue;
        open.kind = FaultKind::kCrash;
        open.a = static_cast<net::NodeId>(rng.NextBelow(options_.num_nodes));
        if (std::find(crashed_nodes.begin(), crashed_nodes.end(), open.a) !=
            crashed_nodes.end()) {
          continue;
        }
        // The restart must precede any later crash accounting; simplest
        // sound bookkeeping: treat the node as crashed for the rest of the
        // generation pass.
        ++crashed;
        crashed_nodes.push_back(open.a);
        close.kind = FaultKind::kRestart;
        close.a = open.a;
        break;
      }
      case 1: {  // Partition + heal.
        open.kind = FaultKind::kPartition;
        open.a = static_cast<net::NodeId>(rng.NextBelow(options_.num_nodes));
        open.b = static_cast<net::NodeId>(rng.NextBelow(options_.num_nodes));
        if (open.a == open.b) continue;
        close.kind = rng.NextBool(0.3) ? FaultKind::kHealAll : FaultKind::kHeal;
        close.a = open.a;
        close.b = open.b;
        break;
      }
      case 2: {  // Latency spike + clear.
        open.kind = FaultKind::kLatencySpike;
        open.a = static_cast<net::NodeId>(rng.NextBelow(options_.num_nodes));
        open.b = static_cast<net::NodeId>(rng.NextBelow(options_.num_nodes));
        if (open.a == open.b) continue;
        open.lat_min = (5 + rng.NextBelow(45)) * kMillisecond;
        open.lat_max = open.lat_min + rng.NextBelow(100) * kMillisecond;
        close.kind = FaultKind::kLatencyClear;
        close.a = open.a;
        close.b = open.b;
        break;
      }
      case 3: {  // Drop-rate spike + clear.
        open.kind = FaultKind::kDropSpike;
        open.rate = 0.05 + 0.01 * static_cast<double>(rng.NextBelow(25));
        close.kind = FaultKind::kDropClear;
        break;
      }
      default: {  // Timer skew + clear.
        open.kind = FaultKind::kTimerSkew;
        open.rate = 0.5 + 0.125 * static_cast<double>(rng.NextBelow(13));
        close.kind = FaultKind::kTimerClear;
        break;
      }
    }
    schedule.actions.push_back(open);
    schedule.actions.push_back(close);
  }

  std::stable_sort(schedule.actions.begin(), schedule.actions.end(),
                   [](const FaultAction& x, const FaultAction& y) {
                     return x.at < y.at;
                   });
  return schedule;
}

void InstallSchedule(net::SimNetwork* net, const FaultSchedule& schedule,
                     const FaultHooks& hooks, std::string* trace) {
  // All actions are installed up-front at t=0 with the nominal timer scale,
  // so kTimerSkew cannot retroactively move fault times.
  const double base_drop = net->drop_rate();
  for (const FaultAction& action : schedule.actions) {
    net->ScheduleAfter(action.at, [net, action, hooks, base_drop, trace] {
      if (trace != nullptr) {
        *trace += "fault " + action.ToString() + "\n";
      }
      switch (action.kind) {
        case FaultKind::kPartition:
          net->Partition(action.a, action.b);
          break;
        case FaultKind::kHeal:
          net->Heal(action.a, action.b);
          break;
        case FaultKind::kHealAll:
          net->HealAll();
          break;
        case FaultKind::kCrash:
          net->CrashNode(action.a);
          if (hooks.crash) hooks.crash(action.a);
          break;
        case FaultKind::kRestart:
          net->RestartNode(action.a);
          if (hooks.restart) hooks.restart(action.a);
          break;
        case FaultKind::kLatencySpike:
          net->SetLinkLatency(action.a, action.b, action.lat_min,
                              action.lat_max);
          break;
        case FaultKind::kLatencyClear:
          net->ClearLinkLatency(action.a, action.b);
          break;
        case FaultKind::kDropSpike:
          net->set_drop_rate(action.rate);
          break;
        case FaultKind::kDropClear:
          net->set_drop_rate(base_drop);
          break;
        case FaultKind::kTimerSkew:
          net->SetTimerScale(action.rate);
          break;
        case FaultKind::kTimerClear:
          net->SetTimerScale(1.0);
          break;
      }
    });
  }
}

}  // namespace prever::simtest
