#ifndef PREVER_CONSTRAINT_AGG_CACHE_H_
#define PREVER_CONSTRAINT_AGG_CACHE_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "constraint/program.h"
#include "storage/database.h"

namespace prever::constraint {

/// Incrementally maintained aggregate state for compiled constraints.
///
/// The cacheable class is AGG(table.col [WHERE rowpred AND col = update.f]
/// [WINDOW w]): one GroupState per distinct selector value, holding
///   - all-time running COUNT/SUM/MIN/MAX (O(1) per committed insert), and
///   - for windowed aggregates, a ts-sorted entry list with a [lo, hi)
///     cursor over the half-open window (now - w, now], win_count/win_sum
///     running totals and monotonic min/max deques. Monotone `now` and
///     append-order timestamps advance the cursor in O(1) amortized; a
///     regression (time moving backwards, out-of-order insert) rebuilds the
///     cursor from the sorted entries instead of corrupting it.
///
/// Deltas arrive through Database commit observers: inserts fold into the
/// group state directly; updates/upserts/deletes epoch-invalidate every
/// spec on that table (lazy rebuild on next query). Anything outside the
/// cacheable class evaluates per query through the vectorized columnar
/// scan, with the scalar row loop as the exact-semantics fallback.
///
/// Lifetime: state is keyed by AggregateSpec address and OnCommitted
/// dereferences those keys, so every spec ever passed to Evaluate /
/// TryReadEvaluate must outlive the cache (or the cache must be dropped
/// with the spec's CompiledConstraint, as the CompiledVerifier does on
/// catalog refresh).
///
/// Not internally synchronized: the CompiledVerifier serializes mutating
/// access and uses TryReadEvaluate under a shared lock for the steady-state
/// read path.
class AggregateCache {
 public:
  struct Stats {
    uint64_t cache_hits = 0;      ///< Served from incremental state.
    uint64_t cache_builds = 0;    ///< Full-scan (re)builds of a spec cache.
    uint64_t delta_applies = 0;   ///< Committed inserts folded in.
    uint64_t invalidations = 0;   ///< Epoch invalidations (rollback path).
    uint64_t scan_evals = 0;      ///< Non-cacheable specs evaluated by scan.
  };

  /// Evaluates `spec` with full maintenance rights: binds on first use,
  /// (re)builds the group states when stale, advances window cursors.
  Result<storage::Value> Evaluate(const AggregateSpec& spec,
                                  const EvalContext& ctx,
                                  storage::ColumnBatchCache* batches);

  /// Read-only fast path (safe under a shared lock): succeeds only when the
  /// spec is bound, built, in sync with the table, and — for windowed
  /// aggregates — the cursor already sits exactly at (now - w, now].
  bool TryReadEvaluate(const AggregateSpec& spec, const EvalContext& ctx,
                       Result<storage::Value>* out) const;

  /// Commit observer: folds an insert delta into every affected spec, or
  /// epoch-invalidates on anything that is not a plain insert.
  void OnCommitted(const storage::Mutation& mutation,
                   const storage::Database& db);

  /// Drops every cached group state (epoch bump); lazily rebuilt.
  void InvalidateAll();

  const Stats& stats() const { return stats_; }

 private:
  struct GroupState {
    FoldState all;  ///< All-time fold.
    /// (ts, value) sorted by ts; only populated for windowed specs.
    std::vector<std::pair<SimTime, int64_t>> entries;
    bool cursor_valid = false;
    SimTime cur_start = 0;
    SimTime cur_now = 0;
    size_t lo = 0, hi = 0;  ///< entries[lo, hi) is inside (cur_start, cur_now].
    int64_t win_count = 0;
    int64_t win_sum = 0;
    std::deque<size_t> min_dq, max_dq;  ///< Monotonic index deques.
  };

  struct SpecCache {
    BoundSpec bound;
    Status bind_status;     ///< Returned verbatim on every query if !ok.
    bool bound_ok = false;
    bool cacheable = false;
    bool has_group = false;  ///< Selector present (else one global group).
    size_t group_col_idx = 0;
    storage::ValueType group_col_type = storage::ValueType::kInt64;
    bool needs_value = false;
    bool built = false;
    uint64_t synced_mod = 0;  ///< Table mod_count the cache reflects.
    std::map<storage::Value, GroupState> groups;
    GroupState global;
  };

  SpecCache& GetOrBind(const AggregateSpec& spec, const storage::Schema& schema);
  Status BuildSpec(SpecCache& sc, const AggregateSpec& spec,
                   const storage::Table& table);
  /// Folds one row into a spec cache (applying the row predicate). Build
  /// scans pass is_delta=false (entries sorted once afterwards); commit
  /// deltas pass true and keep the window cursor incrementally correct.
  Status FoldRow(SpecCache& sc, const AggregateSpec& spec,
                 const storage::Row& row, bool is_delta);
  void AdvanceCursor(GroupState& g, SimTime start, SimTime now) const;
  static void PushWindowIndex(GroupState& g, size_t idx);
  Result<storage::Value> FinishGroup(const SpecCache& sc,
                                     const AggregateSpec& spec,
                                     const GroupState* g, SimTime start,
                                     SimTime now, bool* needs_write) const;

  std::map<const AggregateSpec*, std::unique_ptr<SpecCache>> specs_;
  Stats stats_;
};

}  // namespace prever::constraint

#endif  // PREVER_CONSTRAINT_AGG_CACHE_H_
