#ifndef PREVER_CONSTRAINT_CONSTRAINT_H_
#define PREVER_CONSTRAINT_CONSTRAINT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "constraint/ast.h"
#include "constraint/eval.h"

namespace prever::constraint {

/// Who authored the constraint (§3.1/§3.2): internal constraints come from
/// the data owner and scope a single database; regulations come from an
/// external authority and may span the databases of multiple owners.
enum class ConstraintScope : uint8_t { kInternal = 0, kRegulation = 1 };

/// Privacy of the constraint text itself (§1: managers may "not necessarily
/// [be] aware of the constraints"). Private constraints are only evaluable
/// by engines that support hidden predicates.
enum class ConstraintVisibility : uint8_t { kPublic = 0, kPrivate = 1 };

/// A named, parsed constraint.
struct Constraint {
  std::string name;
  ConstraintScope scope = ConstraintScope::kInternal;
  ConstraintVisibility visibility = ConstraintVisibility::kPublic;
  ExprPtr expr;

  Constraint() = default;
  Constraint(std::string name, ConstraintScope scope,
             ConstraintVisibility visibility, ExprPtr expr)
      : name(std::move(name)),
        scope(scope),
        visibility(visibility),
        expr(std::move(expr)) {}

  Constraint(const Constraint& o)
      : name(o.name),
        scope(o.scope),
        visibility(o.visibility),
        expr(o.expr ? o.expr->Clone() : nullptr) {}
  Constraint& operator=(const Constraint& o) {
    name = o.name;
    scope = o.scope;
    visibility = o.visibility;
    expr = o.expr ? o.expr->Clone() : nullptr;
    return *this;
  }
  Constraint(Constraint&&) = default;
  Constraint& operator=(Constraint&&) = default;
};

/// The set of constraints an engine must enforce. Authorities add to it
/// (step 0 of Fig. 2); the verification step evaluates every applicable
/// entry against each incoming update.
class ConstraintCatalog {
 public:
  /// Parses and registers a constraint; fails on parse error or name clash.
  Status Add(const std::string& name, ConstraintScope scope,
             ConstraintVisibility visibility, std::string_view text);

  /// Registers a pre-built constraint.
  Status AddParsed(Constraint constraint);

  Status Remove(const std::string& name);

  const std::vector<Constraint>& constraints() const { return constraints_; }
  size_t size() const { return constraints_.size(); }

  Result<const Constraint*> Find(const std::string& name) const;

  /// Monotone counter bumped by every successful Add/AddParsed/Remove.
  /// Compiled-verifier caches key their validity on it, so constraints
  /// added after the first verification are picked up lazily.
  uint64_t revision() const { return revision_; }

  /// Evaluates every constraint against (db, update, now). Returns OK if all
  /// pass, ConstraintViolation naming the first failed constraint otherwise,
  /// or the evaluation error for ill-typed constraints.
  Status CheckAll(const EvalContext& ctx) const;

 private:
  std::vector<Constraint> constraints_;
  uint64_t revision_ = 0;
};

}  // namespace prever::constraint

#endif  // PREVER_CONSTRAINT_CONSTRAINT_H_
