#include "constraint/linear.h"

#include "mutate/mutation.h"

namespace prever::constraint {

namespace {

/// Collects `agg (+ update.field)*` from a sum tree. Returns false if the
/// shape does not match.
bool CollectLinearSide(const Expr& e, const Expr** agg,
                       std::vector<std::string>* update_terms) {
  if (e.kind == ExprKind::kAggregate) {
    if (*agg != nullptr) return false;  // At most one aggregate.
    *agg = &e;
    return true;
  }
  if (e.kind == ExprKind::kField) {
    // Bare or update-qualified fields are update terms at top level.
    if (!e.qualifier.empty() && e.qualifier != "update") return false;
    update_terms->push_back(e.field);
    return true;
  }
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kAdd) {
    return CollectLinearSide(*e.lhs, agg, update_terms) &&
           CollectLinearSide(*e.rhs, agg, update_terms);
  }
  return false;
}

}  // namespace

Result<LinearBoundForm> ExtractLinearBound(const Expr& expr) {
  if (expr.kind != ExprKind::kBinary) {
    return Status::NotSupported("not a comparison");
  }
  BinaryOp op = expr.binary_op;
  if (op != BinaryOp::kLe && op != BinaryOp::kLt && op != BinaryOp::kGe &&
      op != BinaryOp::kGt) {
    return Status::NotSupported("not an ordering comparison");
  }
  const Expr* lhs = expr.lhs.get();
  const Expr* rhs = expr.rhs.get();
  // Normalize so the linear side is on the left.
  bool flipped = false;
  if (rhs->kind != ExprKind::kLiteral && lhs->kind == ExprKind::kLiteral) {
    std::swap(lhs, rhs);
    flipped = true;
  }
  if (rhs->kind != ExprKind::kLiteral || !rhs->literal.is_int64()) {
    return Status::NotSupported("bound side is not an integer literal");
  }
  int64_t bound = rhs->literal.AsInt64().value();

  const Expr* agg = nullptr;
  std::vector<std::string> update_terms;
  if (!CollectLinearSide(*lhs, &agg, &update_terms) || agg == nullptr) {
    return Status::NotSupported(
        "left side is not `aggregate (+ update.field)*`");
  }
  if (agg->agg_kind != AggregateKind::kSum &&
      agg->agg_kind != AggregateKind::kCount) {
    return Status::NotSupported(
        "only SUM/COUNT aggregates have a linear form");
  }

  // Normalize the operator, accounting for a flipped comparison.
  if (flipped) {
    switch (op) {
      case BinaryOp::kLe:
        op = BinaryOp::kGe;
        break;
      case BinaryOp::kLt:
        op = BinaryOp::kGt;
        break;
      case BinaryOp::kGe:
        op = BinaryOp::kLe;
        break;
      case BinaryOp::kGt:
        op = BinaryOp::kLt;
        break;
      default:
        break;
    }
  }
  LinearBoundForm form;
  form.aggregate = agg->Clone();
  form.update_terms = std::move(update_terms);
  switch (op) {
    case BinaryOp::kLe:
      form.direction = BoundDirection::kUpper;
      form.bound = bound;
      break;
    case BinaryOp::kLt:
      form.direction = BoundDirection::kUpper;
      form.bound = PREVER_MUTATION(LINEAR_LT_BOUND_OFFBYONE, bound - 1, bound);
      break;
    case BinaryOp::kGe:
      form.direction = BoundDirection::kLower;
      form.bound = bound;
      break;
    case BinaryOp::kGt:
      form.direction = BoundDirection::kLower;
      form.bound = PREVER_MUTATION(LINEAR_GT_BOUND_OFFBYONE, bound + 1, bound);
      break;
    default:
      return Status::Internal("unreachable");
  }
  return form;
}

Result<std::vector<LinearBoundForm>> ExtractLinearConjunction(
    const Expr& expr) {
  if (expr.kind == ExprKind::kBinary && expr.binary_op == BinaryOp::kAnd) {
    PREVER_ASSIGN_OR_RETURN(std::vector<LinearBoundForm> left,
                            ExtractLinearConjunction(*expr.lhs));
    PREVER_ASSIGN_OR_RETURN(std::vector<LinearBoundForm> right,
                            ExtractLinearConjunction(*expr.rhs));
    for (auto& f : right) left.push_back(std::move(f));
    return left;
  }
  PREVER_ASSIGN_OR_RETURN(LinearBoundForm form, ExtractLinearBound(expr));
  std::vector<LinearBoundForm> out;
  out.push_back(std::move(form));
  return out;
}

}  // namespace prever::constraint
