#ifndef PREVER_CONSTRAINT_PARSER_H_
#define PREVER_CONSTRAINT_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "constraint/ast.h"

namespace prever::constraint {

/// Parses the PReVer constraint language into an AST.
///
/// Grammar (keywords are case-insensitive; `update.` prefixes update fields):
///
///   expr       := and_expr (OR and_expr)*
///   and_expr   := not_expr (AND not_expr)*
///   not_expr   := NOT not_expr | comparison
///   comparison := sum (('='|'!='|'<'|'<='|'>'|'>=') sum)?
///   sum        := term (('+'|'-') term)*
///   term       := factor (('*'|'/'|'%') factor)*
///   factor     := '-' factor | primary
///   primary    := INT | DURATION | STRING | TRUE | FALSE
///               | AGG '(' target [WHERE expr] [WINDOW DURATION] ')'
///               | IDENT ('.' IDENT)?
///               | '(' expr ')'
///   AGG        := COUNT | SUM | MIN | MAX | AVG
///   target     := IDENT ('.' IDENT)?          -- table or table.column
///   DURATION   := INT ('s'|'m'|'h'|'d'|'w')   -- e.g. 7d, 40h
///
/// Examples:
///   SUM(worklog.hours WHERE worker = update.worker WINDOW 7d)
///       + update.hours <= 40
///   COUNT(attendees) < 500 AND update.vaccinated = true
Result<ExprPtr> ParseConstraint(std::string_view input);

}  // namespace prever::constraint

#endif  // PREVER_CONSTRAINT_PARSER_H_
