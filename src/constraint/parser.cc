#include "constraint/parser.h"

#include <cctype>
#include <vector>

namespace prever::constraint {

namespace {

enum class TokenKind {
  kInt,
  kDuration,
  kString,
  kIdent,     // Includes keywords; resolved by spelling.
  kSymbol,    // Operators and punctuation, stored in `text`.
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;      // Identifier spelling / symbol / string contents.
  int64_t int_value = 0;  // For kInt.
  SimTime duration = 0;   // For kDuration.
  size_t pos = 0;         // Byte offset, for error messages.
};

std::string UpperCased(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        PREVER_ASSIGN_OR_RETURN(Token t, LexNumber());
        tokens.push_back(std::move(t));
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdent());
        continue;
      }
      if (c == '\'' || c == '"') {
        PREVER_ASSIGN_OR_RETURN(Token t, LexString());
        tokens.push_back(std::move(t));
        continue;
      }
      PREVER_ASSIGN_OR_RETURN(Token t, LexSymbol());
      tokens.push_back(std::move(t));
    }
    tokens.push_back(Token{TokenKind::kEnd, "", 0, 0, pos_});
    return tokens;
  }

 private:
  Result<Token> LexNumber() {
    size_t start = pos_;
    int64_t value = 0;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      int digit = input_[pos_] - '0';
      if (value > (INT64_MAX - digit) / 10) {
        return Status::InvalidArgument("integer literal overflows int64");
      }
      value = value * 10 + digit;
      ++pos_;
    }
    // Duration suffix: s/m/h/d/w not followed by an identifier character.
    if (pos_ < input_.size()) {
      char suffix = input_[pos_];
      bool next_is_ident =
          pos_ + 1 < input_.size() &&
          (std::isalnum(static_cast<unsigned char>(input_[pos_ + 1])) ||
           input_[pos_ + 1] == '_');
      if (!next_is_ident) {
        SimTime unit = 0;
        switch (suffix) {
          case 's':
            unit = kSecond;
            break;
          case 'm':
            unit = kMinute;
            break;
          case 'h':
            unit = kHour;
            break;
          case 'd':
            unit = kDay;
            break;
          case 'w':
            unit = kWeek;
            break;
          default:
            break;
        }
        if (unit != 0) {
          ++pos_;
          Token t{TokenKind::kDuration, "", 0, 0, start};
          t.duration = static_cast<SimTime>(value) * unit;
          return t;
        }
      }
    }
    Token t{TokenKind::kInt, "", 0, 0, start};
    t.int_value = value;
    return t;
  }

  Token LexIdent() {
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    return Token{TokenKind::kIdent, std::string(input_.substr(start, pos_ - start)),
                 0, 0, start};
  }

  Result<Token> LexString() {
    char quote = input_[pos_];
    size_t start = pos_++;
    std::string contents;
    while (pos_ < input_.size() && input_[pos_] != quote) {
      char c = input_[pos_++];
      if (c == '\\') {
        if (pos_ >= input_.size()) {
          return Status::InvalidArgument("dangling escape in string literal");
        }
        char esc = input_[pos_++];
        switch (esc) {
          case 'n':
            contents.push_back('\n');
            break;
          case 't':
            contents.push_back('\t');
            break;
          default:
            contents.push_back(esc);  // \", \', \\ and friends.
        }
      } else {
        contents.push_back(c);
      }
    }
    if (pos_ >= input_.size()) {
      return Status::InvalidArgument("unterminated string literal");
    }
    ++pos_;  // Closing quote.
    return Token{TokenKind::kString, std::move(contents), 0, 0, start};
  }

  Result<Token> LexSymbol() {
    size_t start = pos_;
    char c = input_[pos_];
    // Two-character operators first.
    if (pos_ + 1 < input_.size()) {
      std::string two = std::string(input_.substr(pos_, 2));
      if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
        pos_ += 2;
        if (two == "<>") two = "!=";
        return Token{TokenKind::kSymbol, two, 0, 0, start};
      }
    }
    switch (c) {
      case '(':
      case ')':
      case '.':
      case ',':
      case '+':
      case '-':
      case '*':
      case '/':
      case '%':
      case '<':
      case '>':
      case '=':
      case ':':
        ++pos_;
        return Token{TokenKind::kSymbol, std::string(1, c), 0, 0, start};
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at offset " +
                                       std::to_string(pos_));
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprPtr> Parse() {
    PREVER_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
    if (!AtEnd()) {
      return Status::InvalidArgument("trailing input at offset " +
                                     std::to_string(Peek().pos));
    }
    return e;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  const Token& Advance() { return tokens_[index_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool MatchSymbol(std::string_view symbol) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == symbol) {
      ++index_;
      return true;
    }
    return false;
  }

  bool MatchKeyword(std::string_view keyword) {
    if (Peek().kind == TokenKind::kIdent &&
        UpperCased(Peek().text) == keyword) {
      ++index_;
      return true;
    }
    return false;
  }

  Status ExpectSymbol(std::string_view symbol) {
    if (!MatchSymbol(symbol)) {
      return Status::InvalidArgument("expected '" + std::string(symbol) +
                                     "' at offset " + std::to_string(Peek().pos));
    }
    return Status::Ok();
  }

  Result<ExprPtr> ParseOr() {
    PREVER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (MatchKeyword("OR")) {
      PREVER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    PREVER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (MatchKeyword("AND")) {
      PREVER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      PREVER_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    PREVER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseSum());
    struct CmpOp {
      const char* symbol;
      BinaryOp op;
    };
    constexpr CmpOp kOps[] = {{"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                              {"!=", BinaryOp::kNe}, {"<", BinaryOp::kLt},
                              {">", BinaryOp::kGt},  {"=", BinaryOp::kEq}};
    for (const CmpOp& c : kOps) {
      if (MatchSymbol(c.symbol)) {
        PREVER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseSum());
        return Expr::Binary(c.op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseSum() {
    PREVER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseTerm());
    for (;;) {
      if (MatchSymbol("+")) {
        PREVER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseTerm());
        lhs = Expr::Binary(BinaryOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (MatchSymbol("-")) {
        PREVER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseTerm());
        lhs = Expr::Binary(BinaryOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseTerm() {
    PREVER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseFactor());
    for (;;) {
      if (MatchSymbol("*")) {
        PREVER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseFactor());
        lhs = Expr::Binary(BinaryOp::kMul, std::move(lhs), std::move(rhs));
      } else if (MatchSymbol("/")) {
        PREVER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseFactor());
        lhs = Expr::Binary(BinaryOp::kDiv, std::move(lhs), std::move(rhs));
      } else if (MatchSymbol("%")) {
        PREVER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseFactor());
        lhs = Expr::Binary(BinaryOp::kMod, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseFactor() {
    if (MatchSymbol("-")) {
      PREVER_ASSIGN_OR_RETURN(ExprPtr operand, ParseFactor());
      return Expr::Unary(UnaryOp::kNegate, std::move(operand));
    }
    return ParsePrimary();
  }

  static Result<AggregateKind> AggregateKindFor(const std::string& upper) {
    if (upper == "COUNT") return AggregateKind::kCount;
    if (upper == "SUM") return AggregateKind::kSum;
    if (upper == "MIN") return AggregateKind::kMin;
    if (upper == "MAX") return AggregateKind::kMax;
    if (upper == "AVG") return AggregateKind::kAvg;
    return Status::InvalidArgument("not an aggregate: " + upper);
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInt: {
        Advance();
        return Expr::Literal(storage::Value::Int64(t.int_value));
      }
      case TokenKind::kDuration: {
        Advance();
        return Expr::Literal(
            storage::Value::Int64(static_cast<int64_t>(t.duration)));
      }
      case TokenKind::kString: {
        Advance();
        return Expr::Literal(storage::Value::String(t.text));
      }
      case TokenKind::kSymbol:
        if (t.text == "(") {
          Advance();
          PREVER_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
          PREVER_RETURN_IF_ERROR(ExpectSymbol(")"));
          return inner;
        }
        return Status::InvalidArgument("unexpected symbol '" + t.text +
                                       "' at offset " + std::to_string(t.pos));
      case TokenKind::kIdent: {
        std::string upper = UpperCased(t.text);
        if (upper == "TRUE") {
          Advance();
          return Expr::Literal(storage::Value::Bool(true));
        }
        if (upper == "FALSE") {
          Advance();
          return Expr::Literal(storage::Value::Bool(false));
        }
        // Aggregate, EXISTS or FORALL call?
        bool is_exists = upper == "EXISTS";
        bool is_forall = upper == "FORALL";
        auto agg = AggregateKindFor(upper);
        if ((agg.ok() || is_exists || is_forall) &&
            index_ + 1 < tokens_.size() &&
            tokens_[index_ + 1].kind == TokenKind::kSymbol &&
            tokens_[index_ + 1].text == "(") {
          Advance();  // Call name.
          Advance();  // '('.
          if (is_exists) return ParseExistsBody();
          if (is_forall) return ParseForAllBody();
          return ParseAggregateBody(*agg);
        }
        // Plain or qualified field reference.
        Advance();
        std::string first = t.text;
        if (MatchSymbol(".")) {
          if (Peek().kind != TokenKind::kIdent) {
            return Status::InvalidArgument("expected identifier after '.'");
          }
          std::string second = Advance().text;
          return Expr::Field(first, second);
        }
        return Expr::Field("", first);
      }
      case TokenKind::kEnd:
        return Status::InvalidArgument("unexpected end of input");
    }
    return Status::Internal("unreachable");
  }

  Result<ExprPtr> ParseAggregateBody(AggregateKind kind) {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected table name in aggregate");
    }
    std::string table = Advance().text;
    std::string column;
    if (MatchSymbol(".")) {
      if (Peek().kind != TokenKind::kIdent) {
        return Status::InvalidArgument("expected column name after '.'");
      }
      column = Advance().text;
    }
    if (kind != AggregateKind::kCount && column.empty()) {
      return Status::InvalidArgument(
          std::string(AggregateKindName(kind)) + " requires a column");
    }
    ExprPtr where;
    if (MatchKeyword("WHERE")) {
      PREVER_ASSIGN_OR_RETURN(where, ParseOr());
    }
    SimTime window = 0;
    if (MatchKeyword("WINDOW")) {
      if (Peek().kind != TokenKind::kDuration) {
        return Status::InvalidArgument(
            "WINDOW requires a duration literal (e.g. 7d)");
      }
      window = Advance().duration;
    }
    PREVER_RETURN_IF_ERROR(ExpectSymbol(")"));
    return Expr::Aggregate(kind, std::move(table), std::move(column),
                           std::move(where), window);
  }

  Result<ExprPtr> ParseExistsBody() {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected table name in EXISTS");
    }
    std::string table = Advance().text;
    ExprPtr where;
    if (MatchKeyword("WHERE")) {
      PREVER_ASSIGN_OR_RETURN(where, ParseOr());
    }
    SimTime window = 0;
    if (MatchKeyword("WINDOW")) {
      if (Peek().kind != TokenKind::kDuration) {
        return Status::InvalidArgument(
            "WINDOW requires a duration literal (e.g. 7d)");
      }
      window = Advance().duration;
    }
    PREVER_RETURN_IF_ERROR(ExpectSymbol(")"));
    return Expr::Exists(std::move(table), std::move(where), window);
  }

  Result<ExprPtr> ParseForAllBody() {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected table name in FORALL");
    }
    std::string table = Advance().text;
    PREVER_RETURN_IF_ERROR(ExpectSymbol("."));
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected column name in FORALL");
    }
    std::string column = Advance().text;
    PREVER_RETURN_IF_ERROR(ExpectSymbol(":"));
    PREVER_ASSIGN_OR_RETURN(ExprPtr body, ParseOr());
    PREVER_RETURN_IF_ERROR(ExpectSymbol(")"));
    return Expr::ForAll(std::move(table), std::move(column), std::move(body));
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

}  // namespace

Result<ExprPtr> ParseConstraint(std::string_view input) {
  Lexer lexer(input);
  PREVER_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace prever::constraint
