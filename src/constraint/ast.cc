#include "constraint/ast.h"

namespace prever::constraint {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
  }
  return "?";
}

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
      return "COUNT";
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kMax:
      return "MAX";
    case AggregateKind::kAvg:
      return "AVG";
  }
  return "?";
}

ExprPtr Expr::Literal(storage::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Field(std::string qualifier, std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kField;
  e->qualifier = std::move(qualifier);
  e->field = std::move(name);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->operand = std::move(operand);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Expr::Aggregate(AggregateKind kind, std::string table,
                        std::string column, ExprPtr where, SimTime window) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAggregate;
  e->agg_kind = kind;
  e->table = std::move(table);
  e->column = std::move(column);
  e->where = std::move(where);
  e->window = window;
  return e;
}

ExprPtr Expr::Exists(std::string table, ExprPtr where, SimTime window) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kExists;
  e->table = std::move(table);
  e->where = std::move(where);
  e->window = window;
  return e;
}

ExprPtr Expr::ForAll(std::string table, std::string column, ExprPtr body) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kForAll;
  e->table = std::move(table);
  e->column = std::move(column);
  e->operand = std::move(body);
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->qualifier = qualifier;
  e->field = field;
  e->unary_op = unary_op;
  if (operand) e->operand = operand->Clone();
  e->binary_op = binary_op;
  if (lhs) e->lhs = lhs->Clone();
  if (rhs) e->rhs = rhs->Clone();
  e->agg_kind = agg_kind;
  e->table = table;
  e->column = column;
  if (where) e->where = where->Clone();
  e->window = window;
  return e;
}

namespace {
std::string WindowToString(SimTime window) {
  // Render in the largest unit that divides evenly.
  struct Unit {
    SimTime micros;
    char suffix;
  };
  constexpr Unit kUnits[] = {
      {kWeek, 'w'}, {kDay, 'd'}, {kHour, 'h'}, {kMinute, 'm'}, {kSecond, 's'}};
  for (const Unit& u : kUnits) {
    if (window % u.micros == 0) {
      return std::to_string(window / u.micros) + u.suffix;
    }
  }
  return std::to_string(window / kSecond) + "s";
}
}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kField:
      return qualifier.empty() ? field : qualifier + "." + field;
    case ExprKind::kUnary:
      if (unary_op == UnaryOp::kNot) return "NOT (" + operand->ToString() + ")";
      return "-(" + operand->ToString() + ")";
    case ExprKind::kBinary:
      return "(" + lhs->ToString() + " " + BinaryOpName(binary_op) + " " +
             rhs->ToString() + ")";
    case ExprKind::kAggregate:
    case ExprKind::kExists: {
      std::string s =
          kind == ExprKind::kExists ? "EXISTS" : AggregateKindName(agg_kind);
      s += "(";
      s += table;
      if (!column.empty()) s += "." + column;
      if (where) s += " WHERE " + where->ToString();
      if (window != 0) s += " WINDOW " + WindowToString(window);
      s += ")";
      return s;
    }
    case ExprKind::kForAll:
      return "FORALL(" + table + "." + column + " : " + operand->ToString() +
             ")";
  }
  return "?";
}

}  // namespace prever::constraint
