#ifndef PREVER_CONSTRAINT_EVAL_H_
#define PREVER_CONSTRAINT_EVAL_H_

#include <map>
#include <string>

#include "common/sim_clock.h"
#include "common/status.h"
#include "constraint/ast.h"
#include "storage/database.h"

namespace prever::constraint {

/// Named fields of the incoming update visible to constraints as
/// `update.<name>` (or bare `<name>` at top level).
using UpdateFields = std::map<std::string, storage::Value>;

/// Everything a constraint evaluation can see: current database state, the
/// candidate update's fields, and the current (simulated) time for WINDOW
/// aggregates.
struct EvalContext {
  const storage::Database* db = nullptr;
  const UpdateFields* update = nullptr;
  SimTime now = 0;
  /// Bound by FORALL evaluation: the current group value, visible in the
  /// body as the reserved identifier `group`.
  const storage::Value* group = nullptr;
};

/// Evaluates an arbitrary expression to a Value.
Result<storage::Value> Evaluate(const Expr& expr, const EvalContext& ctx);

/// Evaluates a constraint; error if the expression is not Boolean-typed.
Result<bool> EvaluateBool(const Expr& expr, const EvalContext& ctx);

/// Evaluates just an aggregate node to its int64 value (used by the crypto
/// engines that need the aggregate separately from the comparison).
Result<int64_t> EvaluateAggregate(const Expr& agg, const EvalContext& ctx);

}  // namespace prever::constraint

#endif  // PREVER_CONSTRAINT_EVAL_H_
