#ifndef PREVER_CONSTRAINT_LINEAR_H_
#define PREVER_CONSTRAINT_LINEAR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "constraint/ast.h"

namespace prever::constraint {

/// Bound direction after normalization.
enum class BoundDirection : uint8_t {
  kUpper,  ///< value <= bound (e.g. weekly hours <= 40).
  kLower,  ///< value >= bound (e.g. Separ lower-bound regulations).
};

/// The linear normal form recognized by PReVer's cryptographic engines:
///
///   AGG(table.column [WHERE pred] [WINDOW w]) (+ update.f)* {<=,<,>=,>} K
///
/// Paillier evaluates exactly this class homomorphically; the token engine
/// encodes the bound as a per-participant budget; the MPC engine evaluates
/// the aggregate share-wise. Constraints outside this class fall back to the
/// plaintext engine (or are rejected by privacy-preserving engines — the
/// paper's RC2 discussion of token-mechanism expressiveness limits).
struct LinearBoundForm {
  /// The aggregate side (cloned subtree, never null).
  ExprPtr aggregate;
  /// Update fields added to the aggregate (unit coefficients).
  std::vector<std::string> update_terms;
  BoundDirection direction = BoundDirection::kUpper;
  /// Normalized inclusive bound: aggregate + terms <= bound (kUpper) or
  /// >= bound (kLower). Strict comparisons are tightened by one.
  int64_t bound = 0;

  LinearBoundForm() = default;
  LinearBoundForm(const LinearBoundForm& o)
      : aggregate(o.aggregate ? o.aggregate->Clone() : nullptr),
        update_terms(o.update_terms),
        direction(o.direction),
        bound(o.bound) {}
  LinearBoundForm& operator=(const LinearBoundForm& o) {
    aggregate = o.aggregate ? o.aggregate->Clone() : nullptr;
    update_terms = o.update_terms;
    direction = o.direction;
    bound = o.bound;
    return *this;
  }
  LinearBoundForm(LinearBoundForm&&) = default;
  LinearBoundForm& operator=(LinearBoundForm&&) = default;
};

/// Attempts to put `expr` into linear bound form. NotSupported if the
/// constraint is outside the class.
Result<LinearBoundForm> ExtractLinearBound(const Expr& expr);

/// True if the whole expression is a conjunction of linear bound forms;
/// fills `forms` with all of them.
Result<std::vector<LinearBoundForm>> ExtractLinearConjunction(
    const Expr& expr);

}  // namespace prever::constraint

#endif  // PREVER_CONSTRAINT_LINEAR_H_
