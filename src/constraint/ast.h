#ifndef PREVER_CONSTRAINT_AST_H_
#define PREVER_CONSTRAINT_AST_H_

#include <memory>
#include <string>

#include "common/sim_clock.h"
#include "storage/value.h"

namespace prever::constraint {

/// Expression kinds in the PReVer constraint language. A constraint is a
/// Boolean expression over (a) the fields of the incoming update and (b)
/// aggregates over the current database state — exactly the model of §3.2:
/// "a Boolean function computed over the database and an incoming update".
enum class ExprKind : uint8_t {
  kLiteral,
  kField,
  kUnary,
  kBinary,
  kAggregate,
  kExists,  ///< EXISTS(table [WHERE pred] [WINDOW dur]) — boolean.
  kForAll,  ///< FORALL(table.column : body) — body must hold for every
            ///< distinct value of the column; the value is visible in the
            ///< body as the reserved identifier `group` (GROUP BY-style
            ///< quantification, §5's expressiveness future work).
};

enum class UnaryOp : uint8_t { kNot, kNegate };

enum class BinaryOp : uint8_t {
  kAnd,
  kOr,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
};

enum class AggregateKind : uint8_t { kCount, kSum, kMin, kMax, kAvg };

const char* BinaryOpName(BinaryOp op);
const char* AggregateKindName(AggregateKind kind);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Single AST node (tagged union kept as one struct for cache friendliness
/// and easy recursive visitation).
struct Expr {
  ExprKind kind;

  // kLiteral.
  storage::Value literal;

  // kField: `qualifier.name`; qualifier "update" refers to update fields,
  // empty qualifier refers to the row being scanned inside an aggregate
  // predicate (and to update fields at top level).
  std::string qualifier;
  std::string field;

  // kUnary.
  UnaryOp unary_op = UnaryOp::kNot;
  ExprPtr operand;

  // kBinary.
  BinaryOp binary_op = BinaryOp::kAnd;
  ExprPtr lhs;
  ExprPtr rhs;

  // kAggregate / kExists: AGG(table.column [WHERE pred] [WINDOW dur]);
  // column empty for COUNT(table) and EXISTS(table). The window applies to
  // the table's timestamp column. Inside a nested predicate, `outer.<col>`
  // refers to the enclosing scan's row — enabling correlated, join-style
  // constraints (the SQL expressiveness §5 lists as future work).
  AggregateKind agg_kind = AggregateKind::kCount;
  std::string table;
  std::string column;
  ExprPtr where;           ///< May be null.
  SimTime window = 0;      ///< 0 means no window.

  static ExprPtr Literal(storage::Value v);
  static ExprPtr Field(std::string qualifier, std::string name);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Aggregate(AggregateKind kind, std::string table,
                           std::string column, ExprPtr where, SimTime window);
  static ExprPtr Exists(std::string table, ExprPtr where, SimTime window);
  /// body is stored in `operand`.
  static ExprPtr ForAll(std::string table, std::string column, ExprPtr body);

  /// Deep copy.
  ExprPtr Clone() const;

  /// Canonical textual form (parseable back by the parser).
  std::string ToString() const;
};

}  // namespace prever::constraint

#endif  // PREVER_CONSTRAINT_AST_H_
