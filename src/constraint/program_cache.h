#ifndef PREVER_CONSTRAINT_PROGRAM_CACHE_H_
#define PREVER_CONSTRAINT_PROGRAM_CACHE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "constraint/ast.h"
#include "constraint/program.h"

namespace prever::constraint {

/// Process-wide (or harness-wide) cache of compiled constraint bytecode,
/// shared across CompiledVerifier instances. Compilation is pure — the
/// bytecode depends only on the expression — so the cache keys on the
/// expression's canonical text: structurally identical expressions compile
/// once even when they are distinct clones (each engine's RegulationForms
/// clones the aggregate subtree, so pointer identity would never share
/// across paired engines).
///
/// The returned CompiledConstraint is immutable after compilation and safe
/// to share: per-verifier AggregateCaches key on the contained
/// AggregateSpec addresses independently, and execution only reads the
/// programs. Verifiers keep shared_ptr references, so entries stay alive
/// across catalog refreshes on either side.
///
/// Thread-safe; a single mutex guards the map (compilation is cheap and
/// happens once per distinct expression).
class ProgramCache {
 public:
  struct Stats {
    uint64_t lookups = 0;
    uint64_t hits = 0;      ///< Served an existing compilation.
    uint64_t compiles = 0;  ///< First sight of the expression text.
  };

  /// Returns the compiled form of `expr`, compiling on first sight.
  std::shared_ptr<const CompiledConstraint> Get(const Expr& expr);

  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const CompiledConstraint>> entries_;
  Stats stats_;
};

}  // namespace prever::constraint

#endif  // PREVER_CONSTRAINT_PROGRAM_CACHE_H_
