#include "constraint/agg_cache.h"

#include <algorithm>

#include "mutate/mutation.h"

namespace prever::constraint {

namespace {

using storage::Mutation;
using storage::Row;
using storage::Value;
using storage::ValueType;

int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}
int64_t WrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}

bool IsNumericType(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kTimestamp;
}

/// Group keys are normalized through the comparison's coercion rules so a
/// timestamp column matched against an int64 update field (or vice versa)
/// lands in the same group the interpreter's `=` would select.
bool NormalizeGroupKey(const Value& v, ValueType column_type, Value* out) {
  Value key;
  if (IsNumericType(column_type)) {
    auto n = v.AsNumeric();
    if (!n.ok()) return false;
    key = Value::Int64(*n);
  } else if (column_type == ValueType::kString) {
    if (!v.is_string()) return false;
    key = v;
  } else {  // kBool: the interpreter only supports = / != on bools.
    if (!v.is_bool()) return false;
    key = v;
  }
  *out = PREVER_MUTATION(AGG_CACHE_GROUP_COLLAPSE, key, Value::Int64(0));
  return true;
}

}  // namespace

AggregateCache::SpecCache& AggregateCache::GetOrBind(
    const AggregateSpec& spec, const storage::Schema& schema) {
  auto& up = specs_[&spec];
  if (up) return *up;
  up = std::make_unique<SpecCache>();
  SpecCache& sc = *up;
  auto bound = BindSpec(spec, schema);
  if (!bound.ok()) {
    sc.bind_status = bound.status();
    return sc;
  }
  sc.bound = std::move(*bound);
  sc.bound_ok = true;
  sc.needs_value = !spec.exists && spec.agg != AggregateKind::kCount;
  sc.cacheable = spec.cache_candidate && !sc.bound.row_pred_reads_update;
  if (sc.needs_value && !IsNumericType(sc.bound.column_type)) {
    sc.cacheable = false;  // Scan path owns the per-row AsNumeric error.
  }
  if (!spec.group_column.empty()) {
    auto idx = schema.ColumnIndex(spec.group_column);
    if (!idx.ok()) {
      // The "column" in the selector is actually an update-field alias;
      // the scan path resolves it dynamically.
      sc.cacheable = false;
    } else {
      sc.has_group = true;
      sc.group_col_idx = *idx;
      sc.group_col_type = schema.columns()[*idx].type;
    }
  }
  return sc;
}

Status AggregateCache::FoldRow(SpecCache& sc, const AggregateSpec& spec,
                               const Row& row, bool is_delta) {
  if (!sc.bound.row_pred.insns.empty()) {
    EvalContext pred_ctx;
    // Row predicates in the cacheable class are update-free by
    // construction; the schema is only needed for row loads.
    RowView rv{nullptr, &row};
    PREVER_ASSIGN_OR_RETURN(RegVal pred,
                            RunScalar(sc.bound.row_pred, pred_ctx, &rv, nullptr));
    if (pred.tag != RegVal::Tag::kBool) {
      return Status::InvalidArgument("row predicate is not boolean");
    }
    if (!pred.b) return Status::Ok();
  }
  GroupState* g = &sc.global;
  if (sc.has_group) {
    Value key;
    if (!NormalizeGroupKey(row[sc.group_col_idx], sc.group_col_type, &key)) {
      // Schema-validated rows always match the column type; treat a
      // mismatch as poison so the scan path takes over.
      return Status::Internal("group key type mismatch");
    }
    g = &sc.groups[key];
  }
  int64_t v = 0;
  if (sc.needs_value) {
    PREVER_ASSIGN_OR_RETURN(v, row[sc.bound.column_idx].AsNumeric());
  }
  g->all.Add(v);
  if (spec.window != 0) {
    PREVER_ASSIGN_OR_RETURN(SimTime ts, row[sc.bound.ts_idx].AsTimestamp());
    if (!is_delta) {
      g->entries.emplace_back(ts, v);  // Sorted once after the build scan.
      return Status::Ok();
    }
    const size_t idx = g->entries.size();
    if (g->entries.empty() || ts >= g->entries.back().first) {
      g->entries.emplace_back(ts, v);
      if (g->cursor_valid) {
        if (ts > g->cur_now) {
          // Beyond the cursor's hi edge; picked up when `now` advances.
        } else if (ts > g->cur_start) {
          if (idx != g->hi) {
            g->cursor_valid = false;  // Future rows already beyond hi.
          } else {
            ++g->win_count;
            g->win_sum = WrapAdd(g->win_sum, v);
            PushWindowIndex(*g, idx);
            g->hi = idx + 1;
          }
        } else {
          // Older than the window; only reachable when the window is empty
          // (sorted append ⇒ every in-window entry would precede it).
          if (g->lo == g->hi && g->hi == idx) {
            g->lo = g->hi = idx + 1;
          } else {
            g->cursor_valid = false;
          }
        }
      }
    } else {
      // Out-of-order timestamp: sorted insert, cursor rebuilt on demand.
      auto it = std::upper_bound(
          g->entries.begin(), g->entries.end(), std::make_pair(ts, v),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      g->entries.insert(it, {ts, v});
      g->cursor_valid = false;
      g->min_dq.clear();
      g->max_dq.clear();
    }
  }
  return Status::Ok();
}

void AggregateCache::PushWindowIndex(GroupState& g, size_t idx) {
  const int64_t v = g.entries[idx].second;
  while (!g.min_dq.empty() && g.entries[g.min_dq.back()].second >= v) {
    g.min_dq.pop_back();
  }
  g.min_dq.push_back(idx);
  while (!g.max_dq.empty() && g.entries[g.max_dq.back()].second <= v) {
    g.max_dq.pop_back();
  }
  g.max_dq.push_back(idx);
}

void AggregateCache::AdvanceCursor(GroupState& g, SimTime start,
                                   SimTime now) const {
  if (g.cursor_valid && g.cur_start == start && g.cur_now == now) return;
  if (g.cursor_valid && start >= g.cur_start && now >= g.cur_now) {
    // Monotone advancement: O(1) amortized — each entry enters and leaves
    // the window at most once over the cursor's lifetime.
    while (g.hi < g.entries.size() && g.entries[g.hi].first <= now) {
      ++g.win_count;
      g.win_sum = WrapAdd(g.win_sum, g.entries[g.hi].second);
      PushWindowIndex(g, g.hi);
      ++g.hi;
    }
    while (g.lo < g.hi && g.entries[g.lo].first <= start) {
      --g.win_count;
      g.win_sum = PREVER_MUTATION(AGG_CACHE_EVICT_SKIP,
                                  WrapSub(g.win_sum, g.entries[g.lo].second),
                                  g.win_sum);
      ++g.lo;
    }
    while (!g.min_dq.empty() && g.min_dq.front() < g.lo) g.min_dq.pop_front();
    while (!g.max_dq.empty() && g.max_dq.front() < g.lo) g.max_dq.pop_front();
    g.cur_start = start;
    g.cur_now = now;
    return;
  }
  // Regression (time moved backwards or an out-of-order insert landed):
  // reposition both edges against the sorted entries and refold.
  auto first_after = [&](SimTime t) {
    return static_cast<size_t>(
        std::upper_bound(g.entries.begin(), g.entries.end(), t,
                         [](SimTime lhs, const auto& e) {
                           return lhs < e.first;
                         }) -
        g.entries.begin());
  };
  g.lo = first_after(start);
  g.hi = first_after(now);
  if (g.hi < g.lo) g.hi = g.lo;
  g.win_count = 0;
  g.win_sum = 0;
  g.min_dq.clear();
  g.max_dq.clear();
  for (size_t i = g.lo; i < g.hi; ++i) {
    ++g.win_count;
    g.win_sum = WrapAdd(g.win_sum, g.entries[i].second);
    PushWindowIndex(g, i);
  }
  g.cursor_valid = true;
  g.cur_start = start;
  g.cur_now = now;
}

Result<Value> AggregateCache::FinishGroup(const SpecCache& sc,
                                          const AggregateSpec& spec,
                                          const GroupState* g, SimTime start,
                                          SimTime now,
                                          bool* needs_write) const {
  if (needs_write != nullptr) *needs_write = false;
  if (g == nullptr) return FoldState{}.Finish(spec);
  if (spec.window == 0) return g->all.Finish(spec);
  if (!g->cursor_valid || g->cur_start != start || g->cur_now != now) {
    if (needs_write != nullptr) {
      *needs_write = true;
      return Status::Internal("cursor not positioned");
    }
  }
  FoldState f;
  f.count = g->win_count;
  f.sum = g->win_sum;
  if (g->win_count > 0) {
    f.min = g->entries[g->min_dq.front()].second;
    f.max = g->entries[g->max_dq.front()].second;
  }
  return f.Finish(spec);
}

Status AggregateCache::BuildSpec(SpecCache& sc, const AggregateSpec& spec,
                                 const storage::Table& table) {
  sc.groups.clear();
  sc.global = GroupState{};
  Status err;
  table.Scan([&](const Row& row) {
    Status s = FoldRow(sc, spec, row, /*is_delta=*/false);
    if (!s.ok()) {
      err = s;
      return false;
    }
    return true;
  });
  if (!err.ok()) {
    // Poison: a row predicate errored on some (possibly out-of-window) row.
    // The scan path reproduces the interpreter's exact behavior, including
    // *not* erroring when that row never enters any window.
    sc.cacheable = false;
    sc.groups.clear();
    sc.global = GroupState{};
    return err;
  }
  auto sort_entries = [](GroupState& g) {
    std::stable_sort(g.entries.begin(), g.entries.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    g.cursor_valid = false;
  };
  sort_entries(sc.global);
  for (auto& [key, g] : sc.groups) sort_entries(g);
  sc.built = true;
  sc.synced_mod = table.mod_count();
  ++stats_.cache_builds;
  return Status::Ok();
}

Result<Value> AggregateCache::Evaluate(const AggregateSpec& spec,
                                       const EvalContext& ctx,
                                       storage::ColumnBatchCache* batches) {
  if (ctx.db == nullptr) {
    return Status::InvalidArgument("no database bound for aggregate");
  }
  PREVER_ASSIGN_OR_RETURN(const storage::Table* table,
                          ctx.db->GetTable(spec.table));
  SpecCache& sc = GetOrBind(spec, table->schema());
  if (!sc.bound_ok) return sc.bind_status;
  auto scan = [&]() {
    ++stats_.scan_evals;
    return EvaluateSpecByScan(sc.bound, ctx, batches);
  };
  if (!sc.cacheable) return scan();

  // Resolve the group key first: an absent or type-incompatible update
  // field has per-row error semantics only the scan path reproduces.
  Value key;
  if (sc.has_group) {
    if (ctx.update == nullptr) return scan();
    auto it = ctx.update->find(spec.group_update_field);
    if (it == ctx.update->end()) return scan();
    if (!NormalizeGroupKey(it->second, sc.group_col_type, &key)) return scan();
  }

  if (!sc.built || sc.synced_mod != table->mod_count()) {
    Status built = BuildSpec(sc, spec, *table);
    if (!built.ok()) return scan();  // Poisoned: scan from now on.
  }

  GroupState* g = nullptr;
  if (sc.has_group) {
    auto it = sc.groups.find(key);
    g = it == sc.groups.end() ? nullptr : &it->second;
  } else {
    g = &sc.global;
  }
  const SimTime start = WindowStart(spec.window, ctx.now);
  if (g != nullptr && spec.window != 0) AdvanceCursor(*g, start, ctx.now);
  ++stats_.cache_hits;
  return FinishGroup(sc, spec, g, start, ctx.now, nullptr);
}

bool AggregateCache::TryReadEvaluate(const AggregateSpec& spec,
                                     const EvalContext& ctx,
                                     Result<Value>* out) const {
  // NOTE: runs under a shared lock — no stats updates, no mutation.
  auto it = specs_.find(&spec);
  if (it == specs_.end()) return false;
  const SpecCache& sc = *it->second;
  if (!sc.bound_ok) {
    *out = sc.bind_status;
    return true;
  }
  if (!sc.cacheable || !sc.built) return false;
  if (ctx.db == nullptr) return false;
  auto table = ctx.db->GetTable(spec.table);
  if (!table.ok() || sc.synced_mod != (*table)->mod_count()) return false;

  const GroupState* g = nullptr;
  if (sc.has_group) {
    if (ctx.update == nullptr) return false;
    auto field = ctx.update->find(spec.group_update_field);
    if (field == ctx.update->end()) return false;
    Value key;
    if (!NormalizeGroupKey(field->second, sc.group_col_type, &key)) {
      return false;
    }
    auto git = sc.groups.find(key);
    g = git == sc.groups.end() ? nullptr : &git->second;
  } else {
    g = &sc.global;
  }
  const SimTime start = WindowStart(spec.window, ctx.now);
  bool needs_write = false;
  Result<Value> r = FinishGroup(sc, spec, g, start, ctx.now, &needs_write);
  if (needs_write) return false;
  *out = std::move(r);
  return true;
}

void AggregateCache::OnCommitted(const Mutation& mutation,
                                 const storage::Database& db) {
  (void)db;
  for (auto& [spec, sc] : specs_) {
    if (spec->table != mutation.table) continue;
    if (!sc->bound_ok || !sc->cacheable || !sc->built) continue;
    // The observer fires once per successful Apply, so the synced counter
    // stays in lock-step with the table's mod_count without re-reading it.
    ++sc->synced_mod;
    if (mutation.op == Mutation::Op::kInsert) {
      if (PREVER_MUTATION(AGG_CACHE_DELTA_SKIP, true, false)) {
        Status folded = FoldRow(*sc, *spec, mutation.row, /*is_delta=*/true);
        if (!folded.ok()) {
          sc->cacheable = false;
          sc->built = false;
          sc->groups.clear();
          sc->global = GroupState{};
          continue;
        }
        ++stats_.delta_applies;
      }
    } else {
      // Update/upsert/delete mutate or remove existing rows: running
      // MIN/MAX (and group membership) cannot be decremented, so bump the
      // epoch — the next query rebuilds from a fresh scan.
      if (PREVER_MUTATION(AGG_CACHE_EPOCH_SKIP, true, false)) {
        sc->built = false;
        sc->groups.clear();
        sc->global = GroupState{};
        ++stats_.invalidations;
      }
    }
  }
}

void AggregateCache::InvalidateAll() {
  for (auto& [spec, sc] : specs_) {
    (void)spec;
    sc->built = false;
    sc->groups.clear();
    sc->global = GroupState{};
  }
  ++stats_.invalidations;
}

}  // namespace prever::constraint
