#ifndef PREVER_CONSTRAINT_PROGRAM_H_
#define PREVER_CONSTRAINT_PROGRAM_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "constraint/ast.h"
#include "constraint/eval.h"
#include "storage/column_batch.h"

namespace prever::constraint {

/// Flat register-based bytecode for one constraint expression, compiled
/// once at DefineConstraint time. The AST's recursive tree walk becomes a
/// linear instruction stream over a small register file; short-circuit
/// AND/OR lower to forward jumps; aggregates become references into a side
/// table of AggregateSpec entries evaluated through the AggregateCache (or
/// a vectorized columnar scan when the shape is not cacheable).
///
/// The compiler is deliberately partial: FORALL, `outer.`-correlated
/// predicates, and aggregates nested inside aggregate predicates stay on
/// the tree-walking interpreter, which is also retained as the differential
/// oracle for everything the compiler does accept.
enum class OpCode : uint8_t {
  kLoadConst,   ///< dst = consts[a]
  kLoadUpdate,  ///< dst = update[names[a]]; b != 0 → bare-name lookup
  kLoadRow,     ///< dst = row[a] (row mode, post-Bind; a = column index)
  kLoadName,    ///< unresolved bare name (row mode, pre-Bind; a = names idx)
  kNot,         ///< dst = !a (bool)
  kNeg,         ///< dst = -a (numeric, wrapping)
  kCoerceBool,  ///< dst = a, which must be bool
  kJumpIfFalse, ///< if !reg[a] → pc = imm (reg[a] must be bool)
  kJumpIfTrue,  ///< if reg[a] → pc = imm
  kCmpEq, kCmpNe, kCmpLt, kCmpLe, kCmpGt, kCmpGe,  ///< dst = a <op> b
  kAdd, kSub, kMul,  ///< dst = a <op> b (wrapping int64)
  kDiv, kMod,        ///< dst = a <op> b; error on zero divisor
  kAnd, kOr,    ///< eager logical ops (vectorized variant only)
  kAggregate,   ///< dst = value of aggregate spec a (top-level mode)
  kReturn,      ///< result = reg[a]
};

struct Insn {
  OpCode op;
  uint16_t dst = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  int32_t imm = 0;
};

/// Tagged scalar register. Timestamps ride in the numeric tag — exactly the
/// coercion Value::AsNumeric applies — and strings are borrowed pointers
/// into stable storage (constant pool, update fields, or the scanned row).
struct RegVal {
  enum class Tag : uint8_t { kNum, kBool, kStr };
  Tag tag = Tag::kNum;
  int64_t num = 0;
  bool b = false;
  const std::string* str = nullptr;

  static RegVal Num(int64_t v) { return RegVal{Tag::kNum, v, false, nullptr}; }
  static RegVal Bool(bool v) { return RegVal{Tag::kBool, 0, v, nullptr}; }
  static RegVal Str(const std::string* s) {
    return RegVal{Tag::kStr, 0, false, s};
  }
  static Result<RegVal> FromValue(const storage::Value& v);
};

struct Program {
  std::vector<Insn> insns;
  std::vector<storage::Value> consts;
  std::vector<std::string> names;
  uint16_t num_regs = 0;
  /// True once every kLoadName has been resolved against a schema.
  bool bound = false;

  /// Resolves bare names against `schema`: names that are columns become
  /// kLoadRow, the rest fall back to update-field lookups — the same
  /// resolution order the interpreter applies per row, hoisted out of the
  /// scan because schemas are static configuration.
  Program Bind(const storage::Schema& schema) const;
};

/// One aggregate (or EXISTS) subexpression of a compiled constraint.
struct AggregateSpec {
  bool exists = false;
  AggregateKind agg = AggregateKind::kCount;
  std::string table;
  std::string column;  ///< Empty for COUNT(table) / EXISTS(table).
  SimTime window = 0;
  /// Full WHERE predicate in row mode (scalar, short-circuit); null if none.
  std::unique_ptr<Program> where;
  /// Eager (jump-free) variant of `where` for vectorized evaluation.
  std::unique_ptr<Program> where_eager;
  /// Original AST node (borrowed from the owning constraint).
  const Expr* expr = nullptr;

  // --- incremental-cache classification (structural part; the schema-
  // dependent half happens at bind time inside the AggregateCache) ---
  /// Candidate group selector `group_column = update.<group_update_field>`
  /// pulled out of the WHERE conjunction. Empty column → no selector.
  std::string group_column;
  std::string group_update_field;
  /// Conjunction of the remaining row-only conjuncts (row mode), or null.
  std::unique_ptr<Program> row_pred;
  /// False when the WHERE shape rules out incremental maintenance (update
  /// references outside the single equality selector, etc.).
  bool cache_candidate = false;
};

/// A constraint lowered to bytecode. `ok == false` means the expression
/// uses a shape the compiler does not accept — callers keep the interpreter.
struct CompiledConstraint {
  bool ok = false;
  Program top;
  std::vector<std::unique_ptr<AggregateSpec>> aggs;
};

/// Compiles `expr`; never fails hard — unsupported shapes yield ok=false.
CompiledConstraint CompileConstraint(const Expr& expr);

/// Row view for scalar row-mode execution.
struct RowView {
  const storage::Schema* schema = nullptr;
  const storage::Row* row = nullptr;
};

/// Lazy aggregate resolver: called when execution reaches a kAggregate op
/// (and only then — short-circuit jumps skip aggregates exactly like the
/// interpreter would, including their errors).
using AggFn = std::function<Result<storage::Value>(size_t spec_index)>;

/// Executes a program to its final register. Top-level programs pass
/// row == nullptr and an AggFn; row-mode programs pass the row.
Result<RegVal> RunScalar(const Program& program, const EvalContext& ctx,
                         const RowView* row, const AggFn* agg_fn);

/// Executes an eager row-mode program over a columnar batch, producing one
/// predicate bit per row. Returns false when the batch path cannot promise
/// interpreter-identical results (type errors, zero divisors, unsupported
/// ops) — the caller must fall back to the scalar row loop, which
/// reproduces the interpreter's row order and error behavior exactly.
bool RunBatchMask(const Program& program, const storage::ColumnBatch& batch,
                  const EvalContext& ctx, std::vector<uint8_t>* mask);

/// Running aggregate accumulator shared by the scalar scan, the vectorized
/// fold, and the incremental cache — one definition of SUM/COUNT/MIN/MAX
/// (wrapping sum, so cache eviction subtraction is an exact inverse).
struct FoldState {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;

  void Add(int64_t v);
  /// Folds the terminal aggregate value out of the accumulated state,
  /// applying the interpreter's empty-set rules (AVG → 0, MIN/MAX → error).
  Result<storage::Value> Finish(const AggregateSpec& spec) const;
};

/// Window start for (now - window, now]: the interpreter's exact rule.
SimTime WindowStart(SimTime window, SimTime now);
/// True when ts lies inside the half-open window (start, now].
bool InWindow(SimTime ts, SimTime start, SimTime now);

/// An AggregateSpec resolved against its table's schema: column indices
/// fixed, bare names in the WHERE programs rewritten to row loads or
/// update lookups. Schemas are static configuration, so this happens once
/// per spec instead of once per scanned row.
struct BoundSpec {
  const AggregateSpec* spec = nullptr;
  Program where_scalar;  ///< Bound copy; empty when the spec has no WHERE.
  Program where_eager;
  size_t column_idx = 0;
  storage::ValueType column_type = storage::ValueType::kInt64;
  size_t ts_idx = 0;  ///< Valid when spec->window != 0.
  /// True when the bound row_pred reads update fields (bare names that did
  /// not resolve to columns) — which rules out insert-time evaluation.
  bool row_pred_reads_update = false;
  Program row_pred;  ///< Bound copy; empty when the spec has none.
};

Result<BoundSpec> BindSpec(const AggregateSpec& spec,
                           const storage::Schema& schema);

/// Evaluates one aggregate spec by scanning the table — the non-cached
/// path. Tries the vectorized batch evaluator first when `batches` is
/// given, falling back to a scalar row loop with interpreter-identical
/// semantics (scan order, early EXISTS stop, first-error reporting).
Result<storage::Value> EvaluateSpecByScan(const BoundSpec& bound,
                                          const EvalContext& ctx,
                                          storage::ColumnBatchCache* batches);

}  // namespace prever::constraint

#endif  // PREVER_CONSTRAINT_PROGRAM_H_
