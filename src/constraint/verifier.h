#ifndef PREVER_CONSTRAINT_VERIFIER_H_
#define PREVER_CONSTRAINT_VERIFIER_H_

#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "constraint/agg_cache.h"
#include "constraint/constraint.h"
#include "constraint/program.h"
#include "constraint/program_cache.h"
#include "storage/column_batch.h"
#include "storage/database.h"

namespace prever::constraint {

/// Catalog-level compiled verification: every constraint is lowered to
/// bytecode once (at first use, and again whenever the catalog's revision
/// moves), aggregate subexpressions are served from the incremental
/// AggregateCache, and the tree-walking interpreter remains both the
/// fallback for shapes the compiler rejects and the differential oracle.
///
/// Verdicts, error codes, and messages are interpreter-identical — engines
/// swap `catalog->CheckAll(ctx)` for `verifier.VerifyAll(ctx)` with no
/// observable behavior change except throughput.
///
/// Concurrency: VerifyAll first tries a read-only pass under a shared lock
/// (bytecode + warm cache state, O(1) amortized per update); anything that
/// needs maintenance — first compile, catalog drift, cold or stale caches,
/// window-cursor movement — retries under the exclusive lock. The commit
/// observer (registered against `db` when given) applies insert deltas and
/// epoch-invalidates on rollback-shaped mutations, also exclusively.
class CompiledVerifier {
 public:
  struct Stats {
    uint64_t compiled_constraints = 0;     ///< On the bytecode path.
    uint64_t interpreted_constraints = 0;  ///< Compiler rejected the shape.
    uint64_t recompiles = 0;               ///< Catalog revisions compiled.
    uint64_t fast_path_verifies = 0;       ///< VerifyAll under shared lock.
    uint64_t slow_path_verifies = 0;       ///< VerifyAll needing the writer.
    AggregateCache::Stats agg;
  };

  /// `catalog` must outlive the verifier. `db` may be null (no incremental
  /// deltas; caches invalidate through table mod-count staleness instead) —
  /// when given, a commit observer keeps the aggregate caches in sync and
  /// is removed again in the destructor. `programs` (optional) is a shared
  /// compiled-bytecode cache: verifiers on the same catalog — or evaluating
  /// structurally identical ad-hoc aggregates, as paired engines in the
  /// differential harness do — then compile each expression once between
  /// them. Aggregate caches stay per-verifier (they mirror this verifier's
  /// database); only the pure compilation step is shared. `programs` must
  /// outlive the verifier.
  CompiledVerifier(const ConstraintCatalog* catalog, storage::Database* db,
                   ProgramCache* programs = nullptr);
  ~CompiledVerifier();

  CompiledVerifier(const CompiledVerifier&) = delete;
  CompiledVerifier& operator=(const CompiledVerifier&) = delete;

  /// Drop-in replacement for ConstraintCatalog::CheckAll.
  Status VerifyAll(const EvalContext& ctx);

  /// Drop-in replacement for constraint::EvaluateAggregate, with the spec
  /// compiled once (keyed by the expression's identity) and served from the
  /// aggregate cache. `agg` must stay alive as long as the verifier; engines
  /// satisfy this by extracting linear forms from catalog-owned constraints
  /// once and reusing them.
  Result<int64_t> EvaluateAggregate(const Expr& agg, const EvalContext& ctx);

  /// Drops all cached aggregate state (lazily rebuilt on next use).
  void InvalidateCaches();

  Stats stats() const;

 private:
  struct Entry {
    const Constraint* constraint = nullptr;
    /// compiled->ok == false → interpreter. Shared with other verifiers
    /// when a ProgramCache is attached (immutable after compilation).
    std::shared_ptr<const CompiledConstraint> compiled;
  };
  struct AdhocAgg {
    std::shared_ptr<const CompiledConstraint> compiled;
    bool usable = false;  ///< Single-spec aggregate the cache can serve.
  };

  /// Compiles through the shared cache when attached, privately otherwise.
  std::shared_ptr<const CompiledConstraint> Compile(const Expr& expr) const;

  /// Recompiles against the current catalog revision. Caller holds mu_
  /// exclusively. Invalidates every AggregateSpec pointer, so the aggregate
  /// cache is reset alongside.
  void RefreshLocked();
  /// One constraint under the exclusive lock (full maintenance rights).
  Status CheckOneLocked(const Entry& entry, const EvalContext& ctx);
  /// Read-only fast path; returns false when maintenance is needed.
  bool TryVerifyAllShared(const EvalContext& ctx, Status* out) const;

  const ConstraintCatalog* catalog_;
  storage::Database* db_;
  ProgramCache* programs_;
  uint64_t observer_id_ = 0;

  mutable std::shared_mutex mu_;
  uint64_t compiled_revision_ = 0;
  bool compiled_once_ = false;
  std::vector<Entry> entries_;
  std::map<const Expr*, std::unique_ptr<AdhocAgg>> adhoc_;
  AggregateCache agg_cache_;
  storage::ColumnBatchCache batches_;
  Stats stats_;
  mutable std::atomic<uint64_t> fast_path_verifies_{0};
};

}  // namespace prever::constraint

#endif  // PREVER_CONSTRAINT_VERIFIER_H_
