#include "constraint/eval.h"

#include <limits>
#include <set>

#include "mutate/mutation.h"

namespace prever::constraint {

namespace {

using storage::Row;
using storage::Value;

/// Row-scoped context used inside aggregate predicates: bare fields resolve
/// against the scanned row, `update.` fields against the update, and
/// `outer.` fields against the enclosing scan's row (correlated nesting).
struct RowContext {
  const EvalContext* outer;
  const storage::Schema* schema;
  const Row* row;
  const RowContext* parent = nullptr;
};

Result<Value> EvaluateImpl(const Expr& expr, const EvalContext& ctx,
                           const RowContext* row_ctx);

Result<Value> LookupField(const Expr& expr, const EvalContext& ctx,
                          const RowContext* row_ctx) {
  // `outer.x`: the enclosing scan's row in a correlated nested predicate.
  if (expr.qualifier == "outer") {
    if (row_ctx == nullptr || row_ctx->parent == nullptr) {
      return Status::InvalidArgument("outer." + expr.field +
                                     " used without an enclosing scan");
    }
    const RowContext* parent = row_ctx->parent;
    PREVER_ASSIGN_OR_RETURN(size_t idx,
                            parent->schema->ColumnIndex(expr.field));
    return (*parent->row)[idx];
  }
  // `update.x` (the incoming update's fields).
  if (expr.qualifier == "update") {
    if (ctx.update == nullptr) {
      return Status::InvalidArgument("no update bound for update." +
                                     expr.field);
    }
    auto it = ctx.update->find(expr.field);
    if (it == ctx.update->end()) {
      return Status::InvalidArgument("update has no field '" + expr.field +
                                     "'");
    }
    return it->second;
  }
  if (!expr.qualifier.empty()) {
    return Status::InvalidArgument("unknown qualifier '" + expr.qualifier +
                                   "'");
  }
  // Bare identifier: row column inside an aggregate, then the FORALL group
  // binding, then update fields.
  if (row_ctx != nullptr) {
    auto idx = row_ctx->schema->ColumnIndex(expr.field);
    if (idx.ok()) return (*row_ctx->row)[*idx];
    // Fall through so predicates can omit the prefix when the name is
    // unambiguous with the scanned table.
  }
  if (expr.field == "group" && ctx.group != nullptr) return *ctx.group;
  if (ctx.update != nullptr) {
    auto it = ctx.update->find(expr.field);
    if (it != ctx.update->end()) return it->second;
  }
  return Status::InvalidArgument("unresolved identifier '" + expr.field + "'");
}

Result<Value> EvaluateComparison(BinaryOp op, const Value& a, const Value& b) {
  int cmp;
  if (a.is_string() && b.is_string()) {
    const std::string sa = a.AsString().value();
    const std::string sb = b.AsString().value();
    cmp = sa < sb ? -1 : (sa == sb ? 0 : 1);
  } else if (a.is_bool() && b.is_bool()) {
    if (op != BinaryOp::kEq && op != BinaryOp::kNe) {
      return Status::InvalidArgument("bools only support = and !=");
    }
    cmp = a == b ? 0 : 1;
  } else {
    PREVER_ASSIGN_OR_RETURN(int64_t na, a.AsNumeric());
    PREVER_ASSIGN_OR_RETURN(int64_t nb, b.AsNumeric());
    cmp = na < nb ? -1 : (na == nb ? 0 : 1);
  }
  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(PREVER_MUTATION(EVAL_CMP_EQ_WIDENED,  //
                                         cmp == 0, cmp >= 0));
    case BinaryOp::kNe:
      return Value::Bool(PREVER_MUTATION(EVAL_CMP_NE_NARROWED,  //
                                         cmp != 0, cmp > 0));
    case BinaryOp::kLt:
      return Value::Bool(PREVER_MUTATION(EVAL_CMP_LT_INCLUSIVE,  //
                                         cmp < 0, cmp <= 0));
    case BinaryOp::kLe:
      return Value::Bool(PREVER_MUTATION(EVAL_CMP_LE_EXCLUSIVE,  //
                                         cmp <= 0, cmp < 0));
    case BinaryOp::kGt:
      return Value::Bool(PREVER_MUTATION(EVAL_CMP_GT_INCLUSIVE,  //
                                         cmp > 0, cmp >= 0));
    case BinaryOp::kGe:
      return Value::Bool(PREVER_MUTATION(EVAL_CMP_GE_EXCLUSIVE,  //
                                         cmp >= 0, cmp > 0));
    default:
      return Status::Internal("not a comparison op");
  }
}

// Arithmetic wraps (two's complement via unsigned casts): int64 overflow is
// defined behavior, identical between this interpreter and the compiled
// bytecode path, so the differential fuzz can probe overflow edges and both
// stay clean under UBSan.
int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}

Result<Value> EvaluateArithmetic(BinaryOp op, const Value& a, const Value& b) {
  PREVER_ASSIGN_OR_RETURN(int64_t na, a.AsNumeric());
  PREVER_ASSIGN_OR_RETURN(int64_t nb, b.AsNumeric());
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Int64(WrapAdd(na, nb));
    case BinaryOp::kSub:
      return Value::Int64(static_cast<int64_t>(static_cast<uint64_t>(na) -
                                               static_cast<uint64_t>(nb)));
    case BinaryOp::kMul:
      return Value::Int64(static_cast<int64_t>(static_cast<uint64_t>(na) *
                                               static_cast<uint64_t>(nb)));
    case BinaryOp::kDiv:
      if (nb == 0) return Status::InvalidArgument("division by zero");
      if (na == kMin && nb == -1) return Value::Int64(kMin);  // UB otherwise.
      return Value::Int64(na / nb);
    case BinaryOp::kMod:
      if (nb == 0) return Status::InvalidArgument("modulo by zero");
      if (na == kMin && nb == -1) return Value::Int64(0);
      return Value::Int64(na % nb);
    default:
      return Status::Internal("not an arithmetic op");
  }
}

Result<Value> EvaluateAggregateImpl(const Expr& expr, const EvalContext& ctx,
                                    const RowContext* enclosing) {
  if (ctx.db == nullptr) {
    return Status::InvalidArgument("no database bound for aggregate");
  }
  PREVER_ASSIGN_OR_RETURN(const storage::Table* table,
                          ctx.db->GetTable(expr.table));
  const storage::Schema& schema = table->schema();

  size_t column_idx = 0;
  if (!expr.column.empty()) {
    PREVER_ASSIGN_OR_RETURN(column_idx, schema.ColumnIndex(expr.column));
  }

  // Resolve the table's timestamp column for WINDOW filtering.
  size_t ts_idx = schema.num_columns();
  if (expr.window != 0) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      if (schema.columns()[i].type == storage::ValueType::kTimestamp) {
        ts_idx = i;
        break;
      }
    }
    if (ts_idx == schema.num_columns()) {
      return Status::InvalidArgument("table '" + expr.table +
                                     "' has no timestamp column for WINDOW");
    }
  }
  SimTime window_start =
      expr.window >= ctx.now
          ? 0
          : PREVER_MUTATION(EVAL_WINDOW_START_OFFBYONE, ctx.now - expr.window,
                            ctx.now - expr.window + 1);

  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = std::numeric_limits<int64_t>::max();
  int64_t max = std::numeric_limits<int64_t>::min();
  Status scan_error;

  table->Scan([&](const Row& row) {
    if (expr.window != 0) {
      auto ts = row[ts_idx].AsTimestamp();
      if (!ts.ok()) {
        scan_error = ts.status();
        return false;
      }
      // Window is the half-open interval (now - window, now].
      if (PREVER_MUTATION(EVAL_WINDOW_START_INCLUSIVE, *ts <= window_start,
                          *ts < window_start) ||
          PREVER_MUTATION(EVAL_WINDOW_END_EXCLUSIVE, *ts > ctx.now,
                          *ts >= ctx.now)) {
        return true;
      }
    }
    if (expr.where) {
      RowContext row_ctx{&ctx, &schema, &row, enclosing};
      auto pred = EvaluateImpl(*expr.where, ctx, &row_ctx);
      if (!pred.ok()) {
        scan_error = pred.status();
        return false;
      }
      auto keep = pred->AsBool();
      if (!keep.ok()) {
        scan_error = keep.status();
        return false;
      }
      if (PREVER_MUTATION(EVAL_WHERE_INVERTED, !*keep, *keep)) return true;
    }
    ++count;
    if (expr.kind == ExprKind::kExists) return false;  // One match suffices.
    if (expr.agg_kind != AggregateKind::kCount) {
      auto v = row[column_idx].AsNumeric();
      if (!v.ok()) {
        scan_error = v.status();
        return false;
      }
      sum = WrapAdd(sum, *v);
      if (PREVER_MUTATION(EVAL_MIN_UPDATE_SKIP, *v < min, false)) min = *v;
      if (PREVER_MUTATION(EVAL_MAX_UPDATE_SKIP, *v > max, false)) max = *v;
    }
    return true;
  });
  if (!scan_error.ok()) return scan_error;

  if (expr.kind == ExprKind::kExists) {
    return Value::Bool(PREVER_MUTATION(EVAL_EXISTS_ALWAYS,  //
                                       count > 0, count >= 0));
  }

  switch (expr.agg_kind) {
    case AggregateKind::kCount:
      return Value::Int64(PREVER_MUTATION(EVAL_COUNT_OFFBYONE,  //
                                          count, count + 1));
    case AggregateKind::kSum:
      return Value::Int64(PREVER_MUTATION(EVAL_SUM_OFFBYONE, sum, sum + 1));
    case AggregateKind::kAvg:
      return Value::Int64(
          PREVER_MUTATION(EVAL_AVG_EMPTY_GUARD, count == 0, count <= 1)
              ? 0
              : sum / count);
    case AggregateKind::kMin:
      if (count == 0) {
        return Status::InvalidArgument("MIN over empty set");
      }
      return Value::Int64(min);
    case AggregateKind::kMax:
      if (count == 0) {
        return Status::InvalidArgument("MAX over empty set");
      }
      return Value::Int64(max);
  }
  return Status::Internal("unreachable");
}

Result<Value> EvaluateImpl(const Expr& expr, const EvalContext& ctx,
                           const RowContext* row_ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kField:
      return LookupField(expr, ctx, row_ctx);
    case ExprKind::kUnary: {
      PREVER_ASSIGN_OR_RETURN(Value v, EvaluateImpl(*expr.operand, ctx, row_ctx));
      if (expr.unary_op == UnaryOp::kNot) {
        PREVER_ASSIGN_OR_RETURN(bool b, v.AsBool());
        return Value::Bool(PREVER_MUTATION(EVAL_NOT_DROPPED, !b, b));
      }
      PREVER_ASSIGN_OR_RETURN(int64_t n, v.AsNumeric());
      // Wrapping negation: -INT64_MIN is UB in plain C++.
      return Value::Int64(
          static_cast<int64_t>(uint64_t{0} - static_cast<uint64_t>(n)));
    }
    case ExprKind::kBinary: {
      // Short-circuit logical operators.
      if (expr.binary_op == BinaryOp::kAnd || expr.binary_op == BinaryOp::kOr) {
        PREVER_ASSIGN_OR_RETURN(Value lv, EvaluateImpl(*expr.lhs, ctx, row_ctx));
        PREVER_ASSIGN_OR_RETURN(bool lb, lv.AsBool());
        if (PREVER_MUTATION(EVAL_AND_SHORTCIRCUIT_SKIP,
                            expr.binary_op == BinaryOp::kAnd && !lb, false)) {
          return Value::Bool(false);
        }
        if (PREVER_MUTATION(EVAL_OR_SHORTCIRCUIT_SKIP,
                            expr.binary_op == BinaryOp::kOr && lb, false)) {
          return Value::Bool(true);
        }
        PREVER_ASSIGN_OR_RETURN(Value rv, EvaluateImpl(*expr.rhs, ctx, row_ctx));
        PREVER_ASSIGN_OR_RETURN(bool rb, rv.AsBool());
        return Value::Bool(rb);
      }
      PREVER_ASSIGN_OR_RETURN(Value lv, EvaluateImpl(*expr.lhs, ctx, row_ctx));
      PREVER_ASSIGN_OR_RETURN(Value rv, EvaluateImpl(*expr.rhs, ctx, row_ctx));
      switch (expr.binary_op) {
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return EvaluateComparison(expr.binary_op, lv, rv);
        default:
          return EvaluateArithmetic(expr.binary_op, lv, rv);
      }
    }
    case ExprKind::kAggregate:
    case ExprKind::kExists:
      // A nested aggregate's predicate can reach the enclosing scan's row
      // via `outer.` — pass the current row context down as the parent.
      return EvaluateAggregateImpl(expr, ctx, row_ctx);
    case ExprKind::kForAll: {
      if (ctx.db == nullptr) {
        return Status::InvalidArgument("no database bound for FORALL");
      }
      PREVER_ASSIGN_OR_RETURN(const storage::Table* table,
                              ctx.db->GetTable(expr.table));
      PREVER_ASSIGN_OR_RETURN(size_t column_idx,
                              table->schema().ColumnIndex(expr.column));
      // Distinct group values in deterministic (key) order.
      std::set<Value> groups;
      table->Scan([&](const Row& row) {
        groups.insert(row[column_idx]);
        return true;
      });
      for (const Value& group : groups) {
        EvalContext group_ctx = ctx;
        group_ctx.group = &group;
        PREVER_ASSIGN_OR_RETURN(Value verdict,
                                EvaluateImpl(*expr.operand, group_ctx, row_ctx));
        PREVER_ASSIGN_OR_RETURN(bool holds, verdict.AsBool());
        if (PREVER_MUTATION(EVAL_FORALL_IGNORE_VIOLATION, !holds, false)) {
          return Value::Bool(false);
        }
      }
      return Value::Bool(true);  // Vacuously true over an empty table.
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<storage::Value> Evaluate(const Expr& expr, const EvalContext& ctx) {
  return EvaluateImpl(expr, ctx, nullptr);
}

Result<bool> EvaluateBool(const Expr& expr, const EvalContext& ctx) {
  PREVER_ASSIGN_OR_RETURN(storage::Value v, Evaluate(expr, ctx));
  return v.AsBool();
}

Result<int64_t> EvaluateAggregate(const Expr& agg, const EvalContext& ctx) {
  if (agg.kind != ExprKind::kAggregate) {
    return Status::InvalidArgument("expression is not an aggregate");
  }
  PREVER_ASSIGN_OR_RETURN(storage::Value v, Evaluate(agg, ctx));
  return v.AsInt64();
}

}  // namespace prever::constraint
