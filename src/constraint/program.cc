#include "constraint/program.h"

#include <algorithm>
#include <limits>

#include "mutate/mutation.h"

namespace prever::constraint {

namespace {

using storage::ColumnBatch;
using storage::Row;
using storage::Value;
using storage::ValueType;

// Wrapping int64 arithmetic: both the interpreter and the compiled path use
// two's-complement semantics so the differential fuzz can probe overflow
// edges without tripping UBSan, and so the aggregate cache's eviction
// subtraction is an exact inverse of its insertion addition.
int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}
int64_t WrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}
int64_t WrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}
int64_t WrapNeg(int64_t a) {
  return static_cast<int64_t>(uint64_t{0} - static_cast<uint64_t>(a));
}
constexpr int64_t kI64Min = std::numeric_limits<int64_t>::min();

int64_t WrapDiv(int64_t a, int64_t b) {
  if (a == kI64Min && b == -1) return kI64Min;  // UB in plain C++ division.
  return a / b;
}
int64_t WrapMod(int64_t a, int64_t b) {
  if (a == kI64Min && b == -1) return 0;
  return a % b;
}

/// The comparison verdict for a three-way cmp, shared by the scalar and the
/// vectorized kernels (and by the aggregate cache's group-selector match).
bool CmpVerdict(OpCode op, int cmp) {
  switch (op) {
    case OpCode::kCmpEq:
      return cmp == 0;
    case OpCode::kCmpNe:
      return cmp != 0;
    case OpCode::kCmpLt:
      return cmp < 0;
    case OpCode::kCmpLe:
      return PREVER_MUTATION(PROG_CMP_LE_EXCLUSIVE, cmp <= 0, cmp < 0);
    case OpCode::kCmpGt:
      return cmp > 0;
    case OpCode::kCmpGe:
      return cmp >= 0;
    default:
      return false;
  }
}

/// Three-way comparison with the interpreter's coercion rules: strings with
/// strings, bools only under =/!= , everything else through AsNumeric.
Result<int> CompareRegs(OpCode op, const RegVal& a, const RegVal& b) {
  if (a.tag == RegVal::Tag::kStr && b.tag == RegVal::Tag::kStr) {
    const std::string& sa = *a.str;
    const std::string& sb = *b.str;
    return sa < sb ? -1 : (sa == sb ? 0 : 1);
  }
  if (a.tag == RegVal::Tag::kBool && b.tag == RegVal::Tag::kBool) {
    if (op != OpCode::kCmpEq && op != OpCode::kCmpNe) {
      return Status::InvalidArgument("bools only support = and !=");
    }
    return a.b == b.b ? 0 : 1;
  }
  if (a.tag != RegVal::Tag::kNum || b.tag != RegVal::Tag::kNum) {
    return Status::InvalidArgument("operand is not numeric");
  }
  return a.num < b.num ? -1 : (a.num == b.num ? 0 : 1);
}

// ------------------------------------------------------------- Compiler

class Compiler {
 public:
  Compiler(bool row_mode, bool eager_logic,
           std::vector<std::unique_ptr<AggregateSpec>>* aggs)
      : row_mode_(row_mode), eager_logic_(eager_logic), aggs_(aggs) {}

  bool ok() const { return ok_; }

  Program Take() {
    prog_.num_regs = next_reg_;
    prog_.bound = !has_names_;
    return std::move(prog_);
  }

  uint16_t CompileExpr(const Expr& e) {
    if (!ok_) return 0;
    switch (e.kind) {
      case ExprKind::kLiteral: {
        uint16_t dst = NewReg();
        uint16_t idx = static_cast<uint16_t>(prog_.consts.size());
        prog_.consts.push_back(e.literal);
        Emit({OpCode::kLoadConst, dst, idx, 0, 0});
        return dst;
      }
      case ExprKind::kField:
        return CompileField(e);
      case ExprKind::kUnary: {
        uint16_t src = CompileExpr(*e.operand);
        uint16_t dst = NewReg();
        Emit({e.unary_op == UnaryOp::kNot ? OpCode::kNot : OpCode::kNeg, dst,
              src, 0, 0});
        return dst;
      }
      case ExprKind::kBinary:
        return CompileBinary(e);
      case ExprKind::kAggregate:
      case ExprKind::kExists:
        return CompileAggregate(e);
      case ExprKind::kForAll:
        // Group quantification stays on the interpreter.
        ok_ = false;
        return 0;
    }
    ok_ = false;
    return 0;
  }

 private:
  uint16_t NewReg() {
    if (next_reg_ == std::numeric_limits<uint16_t>::max()) ok_ = false;
    return next_reg_++;
  }

  void Emit(Insn insn) { prog_.insns.push_back(insn); }

  uint16_t NameIndex(const std::string& name) {
    for (size_t i = 0; i < prog_.names.size(); ++i) {
      if (prog_.names[i] == name) return static_cast<uint16_t>(i);
    }
    prog_.names.push_back(name);
    return static_cast<uint16_t>(prog_.names.size() - 1);
  }

  uint16_t CompileField(const Expr& e) {
    uint16_t dst = NewReg();
    if (e.qualifier == "update") {
      Emit({OpCode::kLoadUpdate, dst, NameIndex(e.field), 0, 0});
      return dst;
    }
    if (!e.qualifier.empty()) {
      // `outer.` (correlated) and unknown qualifiers keep the interpreter.
      ok_ = false;
      return 0;
    }
    if (row_mode_) {
      // Bare name: row column vs update field is schema-dependent —
      // resolved once at Bind time instead of per scanned row.
      has_names_ = true;
      Emit({OpCode::kLoadName, dst, NameIndex(e.field), 0, 0});
      return dst;
    }
    if (e.field == "group") {
      // Only bound inside FORALL bodies, which are interpreted.
      ok_ = false;
      return 0;
    }
    Emit({OpCode::kLoadUpdate, dst, NameIndex(e.field), 1, 0});
    return dst;
  }

  uint16_t CompileBinary(const Expr& e) {
    if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
      if (eager_logic_) {
        uint16_t ra = CompileExpr(*e.lhs);
        uint16_t rb = CompileExpr(*e.rhs);
        uint16_t dst = NewReg();
        Emit({e.binary_op == BinaryOp::kAnd ? OpCode::kAnd : OpCode::kOr, dst,
              ra, rb, 0});
        return dst;
      }
      // Short-circuit lowering: the lhs register doubles as the result.
      uint16_t ra = CompileExpr(*e.lhs);
      size_t jump_at = prog_.insns.size();
      Emit({e.binary_op == BinaryOp::kAnd ? OpCode::kJumpIfFalse
                                          : OpCode::kJumpIfTrue,
            0, ra, 0, 0});
      uint16_t rb = CompileExpr(*e.rhs);
      Emit({OpCode::kCoerceBool, ra, rb, 0, 0});
      if (ok_) {
        prog_.insns[jump_at].imm = static_cast<int32_t>(prog_.insns.size());
      }
      return ra;
    }
    uint16_t ra = CompileExpr(*e.lhs);
    uint16_t rb = CompileExpr(*e.rhs);
    uint16_t dst = NewReg();
    OpCode op;
    switch (e.binary_op) {
      case BinaryOp::kEq: op = OpCode::kCmpEq; break;
      case BinaryOp::kNe: op = OpCode::kCmpNe; break;
      case BinaryOp::kLt: op = OpCode::kCmpLt; break;
      case BinaryOp::kLe: op = OpCode::kCmpLe; break;
      case BinaryOp::kGt: op = OpCode::kCmpGt; break;
      case BinaryOp::kGe: op = OpCode::kCmpGe; break;
      case BinaryOp::kAdd: op = OpCode::kAdd; break;
      case BinaryOp::kSub: op = OpCode::kSub; break;
      case BinaryOp::kMul: op = OpCode::kMul; break;
      case BinaryOp::kDiv: op = OpCode::kDiv; break;
      case BinaryOp::kMod: op = OpCode::kMod; break;
      default:
        ok_ = false;
        return 0;
    }
    Emit({op, dst, ra, rb, 0});
    return dst;
  }

  uint16_t CompileAggregate(const Expr& e);

  bool row_mode_;
  bool eager_logic_;
  std::vector<std::unique_ptr<AggregateSpec>>* aggs_;
  Program prog_;
  uint16_t next_reg_ = 0;
  bool has_names_ = false;
  bool ok_ = true;
};

/// Compiles a row-mode predicate program; null result means unsupported.
std::unique_ptr<Program> CompileRowProgram(const Expr& expr, bool eager) {
  Compiler c(/*row_mode=*/true, eager, /*aggs=*/nullptr);
  uint16_t result = c.CompileExpr(expr);
  if (!c.ok()) return nullptr;
  Program prog = c.Take();
  prog.insns.push_back({OpCode::kReturn, 0, result, 0, 0});
  return std::make_unique<Program>(std::move(prog));
}

/// True when every field reference in `e` is a bare name or a literal —
/// i.e. the conjunct never names `update.` explicitly. (A bare name can
/// still resolve to an update field; Bind() detects that case.)
bool IsUpdateFree(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kField:
      return e.qualifier.empty();
    case ExprKind::kUnary:
      return IsUpdateFree(*e.operand);
    case ExprKind::kBinary:
      return IsUpdateFree(*e.lhs) && IsUpdateFree(*e.rhs);
    default:
      return false;  // Aggregates/EXISTS/FORALL: not a cache-friendly shape.
  }
}

void FlattenConjunction(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kAnd) {
    FlattenConjunction(*e.lhs, out);
    FlattenConjunction(*e.rhs, out);
    return;
  }
  out->push_back(&e);
}

/// Detects `col = update.f` / `update.f = col` group selectors.
bool IsSelectorForm(const Expr& e, std::string* column, std::string* field) {
  if (e.kind != ExprKind::kBinary || e.binary_op != BinaryOp::kEq) return false;
  const Expr* l = e.lhs.get();
  const Expr* r = e.rhs.get();
  if (l->kind != ExprKind::kField || r->kind != ExprKind::kField) return false;
  if (l->qualifier.empty() && r->qualifier == "update") {
    *column = l->field;
    *field = r->field;
    return true;
  }
  if (r->qualifier.empty() && l->qualifier == "update") {
    *column = r->field;
    *field = l->field;
    return true;
  }
  return false;
}

/// Structural half of the cacheability analysis: pull out at most one
/// group selector; everything else must be update-free row predicates.
void ClassifyWhere(const Expr& where, AggregateSpec* spec) {
  std::vector<const Expr*> conjuncts;
  FlattenConjunction(where, &conjuncts);
  std::vector<const Expr*> row_only;
  bool have_selector = false;
  for (const Expr* c : conjuncts) {
    std::string column, field;
    if (!have_selector && IsSelectorForm(*c, &column, &field)) {
      have_selector = true;
      spec->group_column = column;
      spec->group_update_field = field;
      continue;
    }
    if (!IsUpdateFree(*c)) return;  // Not cacheable; spec stays scan-only.
    row_only.push_back(c);
  }
  if (!row_only.empty()) {
    // Rebuild the residual conjunction (clone + fold) and compile it.
    ExprPtr residual = row_only[0]->Clone();
    for (size_t i = 1; i < row_only.size(); ++i) {
      residual = Expr::Binary(BinaryOp::kAnd, std::move(residual),
                              row_only[i]->Clone());
    }
    spec->row_pred = CompileRowProgram(*residual, /*eager=*/false);
    if (!spec->row_pred) return;
  }
  spec->cache_candidate = true;
}

uint16_t Compiler::CompileAggregate(const Expr& e) {
  if (row_mode_ || aggs_ == nullptr) {
    // Aggregates nested inside aggregate predicates keep the interpreter
    // (they are O(n^2) under any execution strategy anyway).
    ok_ = false;
    return 0;
  }
  auto spec = std::make_unique<AggregateSpec>();
  spec->exists = e.kind == ExprKind::kExists;
  spec->agg = e.agg_kind;
  spec->table = e.table;
  spec->column = e.column;
  spec->window = e.window;
  spec->expr = &e;
  if (e.where) {
    spec->where = CompileRowProgram(*e.where, /*eager=*/false);
    spec->where_eager = CompileRowProgram(*e.where, /*eager=*/true);
    if (!spec->where || !spec->where_eager) {
      ok_ = false;
      return 0;
    }
    ClassifyWhere(*e.where, spec.get());
  } else {
    spec->cache_candidate = true;  // Unfiltered aggregate: one global group.
  }
  uint16_t dst = NewReg();
  Emit({OpCode::kAggregate, dst, static_cast<uint16_t>(aggs_->size()), 0, 0});
  aggs_->push_back(std::move(spec));
  return dst;
}

}  // namespace

// ----------------------------------------------------------------- RegVal

Result<RegVal> RegVal::FromValue(const Value& v) {
  if (const std::string* s = v.StringRef()) return RegVal::Str(s);
  if (v.is_bool()) return RegVal::Bool(*v.AsBool());
  PREVER_ASSIGN_OR_RETURN(int64_t n, v.AsNumeric());
  return RegVal::Num(n);
}

// ---------------------------------------------------------------- Program

Program Program::Bind(const storage::Schema& schema) const {
  Program out = *this;
  for (Insn& insn : out.insns) {
    if (insn.op != OpCode::kLoadName) continue;
    auto idx = schema.ColumnIndex(out.names[insn.a]);
    if (idx.ok()) {
      insn.op = OpCode::kLoadRow;
      insn.a = static_cast<uint16_t>(*idx);
    } else {
      insn.op = OpCode::kLoadUpdate;
      insn.b = 1;  // Bare-name lookup: fall through to update fields.
    }
  }
  out.bound = true;
  return out;
}

CompiledConstraint CompileConstraint(const Expr& expr) {
  CompiledConstraint out;
  Compiler c(/*row_mode=*/false, /*eager_logic=*/false, &out.aggs);
  uint16_t result = c.CompileExpr(expr);
  if (!c.ok()) {
    out.aggs.clear();
    return out;
  }
  out.top = c.Take();
  out.top.insns.push_back({OpCode::kReturn, 0, result, 0, 0});
  out.ok = true;
  return out;
}

// ------------------------------------------------------------ Scalar run

Result<RegVal> RunScalar(const Program& program, const EvalContext& ctx,
                         const RowView* row, const AggFn* agg_fn) {
  constexpr size_t kInlineRegs = 16;
  RegVal inline_regs[kInlineRegs];
  std::vector<RegVal> heap_regs;
  RegVal* regs = inline_regs;
  if (program.num_regs > kInlineRegs) {
    heap_regs.resize(program.num_regs);
    regs = heap_regs.data();
  }

  size_t pc = 0;
  const size_t n = program.insns.size();
  while (pc < n) {
    const Insn& insn = program.insns[pc];
    switch (insn.op) {
      case OpCode::kLoadConst: {
        PREVER_ASSIGN_OR_RETURN(regs[insn.dst],
                                RegVal::FromValue(program.consts[insn.a]));
        break;
      }
      case OpCode::kLoadUpdate: {
        const std::string& name = program.names[insn.a];
        if (ctx.update == nullptr) {
          if (insn.b != 0) {
            return Status::InvalidArgument("unresolved identifier '" + name +
                                           "'");
          }
          return Status::InvalidArgument("no update bound for update." + name);
        }
        auto it = ctx.update->find(name);
        if (it == ctx.update->end()) {
          if (insn.b != 0) {
            return Status::InvalidArgument("unresolved identifier '" + name +
                                           "'");
          }
          return Status::InvalidArgument("update has no field '" + name + "'");
        }
        PREVER_ASSIGN_OR_RETURN(regs[insn.dst], RegVal::FromValue(it->second));
        break;
      }
      case OpCode::kLoadRow: {
        if (row == nullptr || row->row == nullptr) {
          return Status::Internal("row load outside a scan");
        }
        PREVER_ASSIGN_OR_RETURN(regs[insn.dst],
                                RegVal::FromValue((*row->row)[insn.a]));
        break;
      }
      case OpCode::kLoadName:
        return Status::Internal("unbound name in compiled program");
      case OpCode::kNot: {
        const RegVal& v = regs[insn.a];
        if (v.tag != RegVal::Tag::kBool) {
          return Status::InvalidArgument("NOT of a non-bool");
        }
        regs[insn.dst] = RegVal::Bool(!v.b);
        break;
      }
      case OpCode::kNeg: {
        const RegVal& v = regs[insn.a];
        if (v.tag != RegVal::Tag::kNum) {
          return Status::InvalidArgument("negation of a non-numeric");
        }
        regs[insn.dst] = RegVal::Num(WrapNeg(v.num));
        break;
      }
      case OpCode::kCoerceBool: {
        const RegVal& v = regs[insn.a];
        if (v.tag != RegVal::Tag::kBool) {
          return Status::InvalidArgument("expected a boolean operand");
        }
        regs[insn.dst] = v;
        break;
      }
      case OpCode::kJumpIfFalse: {
        const RegVal& v = regs[insn.a];
        if (v.tag != RegVal::Tag::kBool) {
          return Status::InvalidArgument("expected a boolean operand");
        }
        if (PREVER_MUTATION(PROG_AND_SHORTCIRCUIT_SKIP, !v.b, false)) {
          pc = static_cast<size_t>(insn.imm);
          continue;
        }
        break;
      }
      case OpCode::kJumpIfTrue: {
        const RegVal& v = regs[insn.a];
        if (v.tag != RegVal::Tag::kBool) {
          return Status::InvalidArgument("expected a boolean operand");
        }
        if (v.b) {
          pc = static_cast<size_t>(insn.imm);
          continue;
        }
        break;
      }
      case OpCode::kCmpEq:
      case OpCode::kCmpNe:
      case OpCode::kCmpLt:
      case OpCode::kCmpLe:
      case OpCode::kCmpGt:
      case OpCode::kCmpGe: {
        PREVER_ASSIGN_OR_RETURN(
            int cmp, CompareRegs(insn.op, regs[insn.a], regs[insn.b]));
        regs[insn.dst] = RegVal::Bool(CmpVerdict(insn.op, cmp));
        break;
      }
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv:
      case OpCode::kMod: {
        const RegVal& a = regs[insn.a];
        const RegVal& b = regs[insn.b];
        if (a.tag != RegVal::Tag::kNum || b.tag != RegVal::Tag::kNum) {
          return Status::InvalidArgument("operand is not numeric");
        }
        int64_t r;
        switch (insn.op) {
          case OpCode::kAdd: r = WrapAdd(a.num, b.num); break;
          case OpCode::kSub: r = WrapSub(a.num, b.num); break;
          case OpCode::kMul: r = WrapMul(a.num, b.num); break;
          case OpCode::kDiv:
            if (b.num == 0) {
              return Status::InvalidArgument("division by zero");
            }
            r = WrapDiv(a.num, b.num);
            break;
          default:
            if (b.num == 0) {
              return Status::InvalidArgument("modulo by zero");
            }
            r = WrapMod(a.num, b.num);
            break;
        }
        regs[insn.dst] = RegVal::Num(r);
        break;
      }
      case OpCode::kAnd:
      case OpCode::kOr: {
        const RegVal& a = regs[insn.a];
        const RegVal& b = regs[insn.b];
        if (a.tag != RegVal::Tag::kBool || b.tag != RegVal::Tag::kBool) {
          return Status::InvalidArgument("expected a boolean operand");
        }
        regs[insn.dst] = RegVal::Bool(insn.op == OpCode::kAnd ? (a.b && b.b)
                                                              : (a.b || b.b));
        break;
      }
      case OpCode::kAggregate: {
        if (agg_fn == nullptr) {
          return Status::Internal("aggregate op without a resolver");
        }
        PREVER_ASSIGN_OR_RETURN(Value v, (*agg_fn)(insn.a));
        PREVER_ASSIGN_OR_RETURN(regs[insn.dst], RegVal::FromValue(v));
        break;
      }
      case OpCode::kReturn:
        return regs[insn.a];
    }
    ++pc;
  }
  return Status::Internal("compiled program fell off the end");
}

// ------------------------------------------------------------- Batch run

namespace {

/// One register of the vectorized evaluator: a uniform scalar (constants,
/// update fields) or a column of values. Column loads borrow the batch's
/// vectors; computed results own theirs. Because column types are uniform,
/// type checks happen once per instruction, never per row.
struct BReg {
  RegVal::Tag tag = RegVal::Tag::kNum;
  bool uniform = true;
  RegVal u;
  std::vector<int64_t> nums;
  std::vector<uint8_t> bools;
  const std::vector<int64_t>* nums_src = nullptr;
  const std::vector<uint8_t>* bools_src = nullptr;
  const std::vector<std::string>* strs_src = nullptr;

  const int64_t* NumPtr(size_t* stride) const {
    if (uniform) {
      *stride = 0;
      return &u.num;
    }
    *stride = 1;
    return nums_src ? nums_src->data() : nums.data();
  }
  const uint8_t* BoolPtr(size_t* stride, uint8_t* scratch) const {
    if (uniform) {
      *stride = 0;
      *scratch = u.b ? 1 : 0;
      return scratch;
    }
    *stride = 1;
    return bools_src ? bools_src->data() : bools.data();
  }
  const std::string& StrAt(size_t i) const {
    return uniform ? *u.str : (*strs_src)[i];
  }
};

}  // namespace

bool RunBatchMask(const Program& program, const ColumnBatch& batch,
                  const EvalContext& ctx, std::vector<uint8_t>* mask) {
  const size_t n = batch.num_rows();
  std::vector<BReg> regs(program.num_regs);
  for (const Insn& insn : program.insns) {
    switch (insn.op) {
      case OpCode::kLoadConst: {
        auto v = RegVal::FromValue(program.consts[insn.a]);
        if (!v.ok()) return false;
        regs[insn.dst] = BReg{};
        regs[insn.dst].tag = v->tag;
        regs[insn.dst].u = *v;
        break;
      }
      case OpCode::kLoadUpdate: {
        if (ctx.update == nullptr) return false;
        auto it = ctx.update->find(program.names[insn.a]);
        if (it == ctx.update->end()) return false;
        auto v = RegVal::FromValue(it->second);
        if (!v.ok()) return false;
        regs[insn.dst] = BReg{};
        regs[insn.dst].tag = v->tag;
        regs[insn.dst].u = *v;
        break;
      }
      case OpCode::kLoadRow: {
        const ColumnBatch::ColumnData& col = batch.column(insn.a);
        BReg r;
        r.uniform = false;
        switch (col.type) {
          case ValueType::kInt64:
          case ValueType::kTimestamp:
            r.tag = RegVal::Tag::kNum;
            r.nums_src = &col.nums;
            break;
          case ValueType::kBool:
            r.tag = RegVal::Tag::kBool;
            r.bools_src = &col.bools;
            break;
          case ValueType::kString:
            r.tag = RegVal::Tag::kStr;
            r.strs_src = &col.strs;
            break;
        }
        regs[insn.dst] = std::move(r);
        break;
      }
      case OpCode::kNot: {
        BReg& a = regs[insn.a];
        if (a.tag != RegVal::Tag::kBool) return false;
        BReg r;
        r.tag = RegVal::Tag::kBool;
        if (a.uniform) {
          r.u = RegVal::Bool(!a.u.b);
        } else {
          r.uniform = false;
          size_t sa;
          uint8_t scratch;
          const uint8_t* pa = a.BoolPtr(&sa, &scratch);
          r.bools.resize(n);
          for (size_t i = 0; i < n; ++i) r.bools[i] = pa[i * sa] ? 0 : 1;
        }
        regs[insn.dst] = std::move(r);
        break;
      }
      case OpCode::kNeg: {
        BReg& a = regs[insn.a];
        if (a.tag != RegVal::Tag::kNum) return false;
        BReg r;
        r.tag = RegVal::Tag::kNum;
        if (a.uniform) {
          r.u = RegVal::Num(WrapNeg(a.u.num));
        } else {
          r.uniform = false;
          size_t sa;
          const int64_t* pa = a.NumPtr(&sa);
          r.nums.resize(n);
          for (size_t i = 0; i < n; ++i) r.nums[i] = WrapNeg(pa[i * sa]);
        }
        regs[insn.dst] = std::move(r);
        break;
      }
      case OpCode::kCoerceBool: {
        if (regs[insn.a].tag != RegVal::Tag::kBool) return false;
        if (insn.dst != insn.a) regs[insn.dst] = regs[insn.a];
        break;
      }
      case OpCode::kCmpEq:
      case OpCode::kCmpNe:
      case OpCode::kCmpLt:
      case OpCode::kCmpLe:
      case OpCode::kCmpGt:
      case OpCode::kCmpGe: {
        BReg& a = regs[insn.a];
        BReg& b = regs[insn.b];
        BReg r;
        r.tag = RegVal::Tag::kBool;
        if (a.uniform && b.uniform) {
          auto cmp = CompareRegs(insn.op, a.u, b.u);
          if (!cmp.ok()) return false;
          r.u = RegVal::Bool(CmpVerdict(insn.op, *cmp));
        } else if (a.tag == RegVal::Tag::kStr && b.tag == RegVal::Tag::kStr) {
          r.uniform = false;
          r.bools.resize(n);
          for (size_t i = 0; i < n; ++i) {
            const std::string& sa = a.StrAt(i);
            const std::string& sb = b.StrAt(i);
            int cmp = sa < sb ? -1 : (sa == sb ? 0 : 1);
            r.bools[i] = CmpVerdict(insn.op, cmp) ? 1 : 0;
          }
        } else if (a.tag == RegVal::Tag::kBool && b.tag == RegVal::Tag::kBool) {
          if (insn.op != OpCode::kCmpEq && insn.op != OpCode::kCmpNe) {
            return false;
          }
          r.uniform = false;
          size_t sa, sb;
          uint8_t wa, wb;
          const uint8_t* pa = a.BoolPtr(&sa, &wa);
          const uint8_t* pb = b.BoolPtr(&sb, &wb);
          r.bools.resize(n);
          for (size_t i = 0; i < n; ++i) {
            int cmp = pa[i * sa] == pb[i * sb] ? 0 : 1;
            r.bools[i] = CmpVerdict(insn.op, cmp) ? 1 : 0;
          }
        } else if (a.tag == RegVal::Tag::kNum && b.tag == RegVal::Tag::kNum) {
          r.uniform = false;
          size_t sa, sb;
          const int64_t* pa = a.NumPtr(&sa);
          const int64_t* pb = b.NumPtr(&sb);
          r.bools.resize(n);
          for (size_t i = 0; i < n; ++i) {
            int64_t x = pa[i * sa];
            int64_t y = pb[i * sb];
            int cmp = x < y ? -1 : (x == y ? 0 : 1);
            r.bools[i] = CmpVerdict(insn.op, cmp) ? 1 : 0;
          }
        } else {
          return false;  // Mixed types: the scalar path owns the error.
        }
        regs[insn.dst] = std::move(r);
        break;
      }
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul: {
        BReg& a = regs[insn.a];
        BReg& b = regs[insn.b];
        if (a.tag != RegVal::Tag::kNum || b.tag != RegVal::Tag::kNum) {
          return false;
        }
        BReg r;
        r.tag = RegVal::Tag::kNum;
        if (a.uniform && b.uniform) {
          int64_t v = insn.op == OpCode::kAdd   ? WrapAdd(a.u.num, b.u.num)
                      : insn.op == OpCode::kSub ? WrapSub(a.u.num, b.u.num)
                                                : WrapMul(a.u.num, b.u.num);
          r.u = RegVal::Num(v);
        } else {
          r.uniform = false;
          size_t sa, sb;
          const int64_t* pa = a.NumPtr(&sa);
          const int64_t* pb = b.NumPtr(&sb);
          r.nums.resize(n);
          switch (insn.op) {
            case OpCode::kAdd:
              for (size_t i = 0; i < n; ++i)
                r.nums[i] = WrapAdd(pa[i * sa], pb[i * sb]);
              break;
            case OpCode::kSub:
              for (size_t i = 0; i < n; ++i)
                r.nums[i] = WrapSub(pa[i * sa], pb[i * sb]);
              break;
            default:
              for (size_t i = 0; i < n; ++i)
                r.nums[i] = WrapMul(pa[i * sa], pb[i * sb]);
              break;
          }
        }
        regs[insn.dst] = std::move(r);
        break;
      }
      case OpCode::kDiv:
      case OpCode::kMod: {
        BReg& a = regs[insn.a];
        BReg& b = regs[insn.b];
        if (a.tag != RegVal::Tag::kNum || b.tag != RegVal::Tag::kNum) {
          return false;
        }
        BReg r;
        r.tag = RegVal::Tag::kNum;
        size_t sa, sb;
        const int64_t* pa = a.NumPtr(&sa);
        const int64_t* pb = b.NumPtr(&sb);
        if (a.uniform && b.uniform) {
          if (b.u.num == 0) return false;  // Scalar path owns the error.
          r.u = RegVal::Num(insn.op == OpCode::kDiv
                                ? WrapDiv(a.u.num, b.u.num)
                                : WrapMod(a.u.num, b.u.num));
        } else {
          r.uniform = false;
          r.nums.resize(n);
          for (size_t i = 0; i < n; ++i) {
            int64_t d = pb[i * sb];
            // A zero divisor anywhere in the batch may or may not be an
            // interpreter error depending on scan order and short-circuit
            // guards — only the scalar loop can tell, so defer to it.
            if (d == 0) return false;
            r.nums[i] = insn.op == OpCode::kDiv ? WrapDiv(pa[i * sa], d)
                                                : WrapMod(pa[i * sa], d);
          }
        }
        regs[insn.dst] = std::move(r);
        break;
      }
      case OpCode::kAnd:
      case OpCode::kOr: {
        BReg& a = regs[insn.a];
        BReg& b = regs[insn.b];
        if (a.tag != RegVal::Tag::kBool || b.tag != RegVal::Tag::kBool) {
          return false;
        }
        BReg r;
        r.tag = RegVal::Tag::kBool;
        if (a.uniform && b.uniform) {
          r.u = RegVal::Bool(insn.op == OpCode::kAnd ? (a.u.b && b.u.b)
                                                     : (a.u.b || b.u.b));
        } else {
          r.uniform = false;
          size_t sa, sb;
          uint8_t wa, wb;
          const uint8_t* pa = a.BoolPtr(&sa, &wa);
          const uint8_t* pb = b.BoolPtr(&sb, &wb);
          r.bools.resize(n);
          if (insn.op == OpCode::kAnd) {
            for (size_t i = 0; i < n; ++i)
              r.bools[i] = (pa[i * sa] & pb[i * sb]) ? 1 : 0;
          } else {
            for (size_t i = 0; i < n; ++i)
              r.bools[i] = (pa[i * sa] | pb[i * sb]) ? 1 : 0;
          }
        }
        regs[insn.dst] = std::move(r);
        break;
      }
      case OpCode::kReturn: {
        BReg& r = regs[insn.a];
        if (r.tag != RegVal::Tag::kBool) return false;
        mask->assign(n, 0);
        if (r.uniform) {
          if (r.u.b) mask->assign(n, 1);
        } else {
          size_t sr;
          uint8_t wr;
          const uint8_t* pr = r.BoolPtr(&sr, &wr);
          for (size_t i = 0; i < n; ++i) (*mask)[i] = pr[i * sr] ? 1 : 0;
        }
        return true;
      }
      case OpCode::kLoadName:
      case OpCode::kJumpIfFalse:
      case OpCode::kJumpIfTrue:
      case OpCode::kAggregate:
        return false;  // Not representable in the vectorized variant.
    }
  }
  return false;
}

// --------------------------------------------------------------- Folding

void FoldState::Add(int64_t v) {
  if (count == 0) {
    min = v;
    max = v;
  } else {
    if (PREVER_MUTATION(PROG_MIN_UPDATE_SKIP, v < min, false)) min = v;
    if (v > max) max = v;
  }
  ++count;
  sum = WrapAdd(sum, v);
}

Result<Value> FoldState::Finish(const AggregateSpec& spec) const {
  if (spec.exists) {
    return Value::Bool(PREVER_MUTATION(PROG_EXISTS_ALWAYS,  //
                                       count > 0, count >= 0));
  }
  switch (spec.agg) {
    case AggregateKind::kCount:
      return Value::Int64(count);
    case AggregateKind::kSum:
      return Value::Int64(PREVER_MUTATION(PROG_SUM_OFFBYONE, sum, sum + 1));
    case AggregateKind::kAvg:
      return Value::Int64(count == 0 ? 0 : WrapDiv(sum, count));
    case AggregateKind::kMin:
      if (count == 0) return Status::InvalidArgument("MIN over empty set");
      return Value::Int64(min);
    case AggregateKind::kMax:
      if (count == 0) return Status::InvalidArgument("MAX over empty set");
      return Value::Int64(max);
  }
  return Status::Internal("unreachable");
}

SimTime WindowStart(SimTime window, SimTime now) {
  return window >= now ? 0 : now - window;
}

bool InWindow(SimTime ts, SimTime start, SimTime now) {
  // Window is the half-open interval (start, now].
  if (PREVER_MUTATION(PROG_WINDOW_START_INCLUSIVE, ts <= start, ts < start)) {
    return false;
  }
  return ts <= now;
}

// ----------------------------------------------------------- Spec binding

Result<BoundSpec> BindSpec(const AggregateSpec& spec,
                           const storage::Schema& schema) {
  BoundSpec out;
  out.spec = &spec;
  if (!spec.column.empty()) {
    PREVER_ASSIGN_OR_RETURN(out.column_idx, schema.ColumnIndex(spec.column));
  }
  out.column_type = schema.num_columns() > out.column_idx
                        ? schema.columns()[out.column_idx].type
                        : ValueType::kInt64;
  if (spec.window != 0) {
    size_t ts_idx = schema.num_columns();
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      if (schema.columns()[i].type == ValueType::kTimestamp) {
        ts_idx = i;
        break;
      }
    }
    if (ts_idx == schema.num_columns()) {
      return Status::InvalidArgument("table '" + spec.table +
                                     "' has no timestamp column for WINDOW");
    }
    out.ts_idx = ts_idx;
  }
  if (spec.where) {
    out.where_scalar = spec.where->Bind(schema);
    out.where_eager = spec.where_eager->Bind(schema);
  }
  if (spec.row_pred) {
    out.row_pred = spec.row_pred->Bind(schema);
    for (const Insn& insn : out.row_pred.insns) {
      if (insn.op == OpCode::kLoadUpdate) out.row_pred_reads_update = true;
    }
  }
  return out;
}

// --------------------------------------------------------------- Scanning

namespace {

/// Exact-semantics scalar scan: the same row order, window filter, early
/// EXISTS stop, and first-error reporting as the tree-walking interpreter,
/// minus the per-row tree walk.
Result<Value> ScalarSpecScan(const BoundSpec& bound, const EvalContext& ctx,
                             const storage::Table& table) {
  const AggregateSpec& spec = *bound.spec;
  const storage::Schema& schema = table.schema();
  const SimTime start = WindowStart(spec.window, ctx.now);
  const bool needs_value =
      !spec.exists && spec.agg != AggregateKind::kCount;
  FoldState fold;
  Status scan_error;
  table.Scan([&](const Row& row) {
    if (spec.window != 0) {
      auto ts = row[bound.ts_idx].AsTimestamp();
      if (!ts.ok()) {
        scan_error = ts.status();
        return false;
      }
      if (!InWindow(*ts, start, ctx.now)) return true;
    }
    if (spec.where) {
      RowView rv{&schema, &row};
      auto pred = RunScalar(bound.where_scalar, ctx, &rv, nullptr);
      if (!pred.ok()) {
        scan_error = pred.status();
        return false;
      }
      if (pred->tag != RegVal::Tag::kBool) {
        scan_error = Status::InvalidArgument("WHERE predicate is not boolean");
        return false;
      }
      if (!pred->b) return true;
    }
    if (spec.exists) {
      fold.Add(0);
      return false;  // One match suffices.
    }
    if (!needs_value) {
      fold.Add(0);
      return true;
    }
    auto v = row[bound.column_idx].AsNumeric();
    if (!v.ok()) {
      scan_error = v.status();
      return false;
    }
    fold.Add(*v);
    return true;
  });
  if (!scan_error.ok()) return scan_error;
  return fold.Finish(spec);
}

}  // namespace

Result<Value> EvaluateSpecByScan(const BoundSpec& bound,
                                 const EvalContext& ctx,
                                 storage::ColumnBatchCache* batches) {
  const AggregateSpec& spec = *bound.spec;
  if (ctx.db == nullptr) {
    return Status::InvalidArgument("no database bound for aggregate");
  }
  PREVER_ASSIGN_OR_RETURN(const storage::Table* table,
                          ctx.db->GetTable(spec.table));

  const bool needs_value = !spec.exists && spec.agg != AggregateKind::kCount;
  const bool numeric_col = bound.column_type == ValueType::kInt64 ||
                           bound.column_type == ValueType::kTimestamp;
  if (batches != nullptr && (!needs_value || numeric_col)) {
    auto batch_or = batches->Get(*ctx.db, spec.table);
    if (batch_or.ok()) {
      const ColumnBatch& batch = **batch_or;
      const size_t n = batch.num_rows();
      std::vector<uint8_t> mask;
      bool have_mask = true;
      if (spec.where) {
        have_mask = RunBatchMask(bound.where_eager, batch, ctx, &mask);
      } else {
        mask.assign(n, 1);
      }
      if (have_mask) {
        const SimTime start = WindowStart(spec.window, ctx.now);
        const std::vector<int64_t>* ts =
            spec.window != 0 ? &batch.column(bound.ts_idx).nums : nullptr;
        const std::vector<int64_t>* vals =
            needs_value ? &batch.column(bound.column_idx).nums : nullptr;
        FoldState fold;
        for (size_t i = 0; i < n; ++i) {
          if (!mask[i]) continue;
          if (ts != nullptr &&
              !InWindow(static_cast<SimTime>((*ts)[i]), start, ctx.now)) {
            continue;
          }
          fold.Add(vals ? (*vals)[i] : 0);
          if (spec.exists) break;
        }
        return fold.Finish(spec);
      }
    }
  }
  return ScalarSpecScan(bound, ctx, *table);
}

}  // namespace prever::constraint
