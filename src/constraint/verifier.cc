#include "constraint/verifier.h"

#include <mutex>

#include "constraint/eval.h"
#include "mutate/mutation.h"
#include "obs/tracing.h"

namespace prever::constraint {

CompiledVerifier::CompiledVerifier(const ConstraintCatalog* catalog,
                                   storage::Database* db,
                                   ProgramCache* programs)
    : catalog_(catalog), db_(db), programs_(programs) {
  if (db_ != nullptr) {
    observer_id_ = db_->AddCommitObserver(
        [this](const storage::Mutation& mutation, uint64_t /*version*/) {
          PREVER_CAUSAL_SPAN(causal_agg, obs::TraceStage::kVerifyAggUpdate);
          std::unique_lock lock(mu_);
          agg_cache_.OnCommitted(mutation, *db_);
        });
  }
}

CompiledVerifier::~CompiledVerifier() {
  if (db_ != nullptr) db_->RemoveCommitObserver(observer_id_);
}

std::shared_ptr<const CompiledConstraint> CompiledVerifier::Compile(
    const Expr& expr) const {
  if (programs_ != nullptr) return programs_->Get(expr);
  return std::make_shared<const CompiledConstraint>(CompileConstraint(expr));
}

void CompiledVerifier::RefreshLocked() {
  if (compiled_once_ && compiled_revision_ == catalog_->revision()) return;
  PREVER_CAUSAL_SPAN(causal_compile, obs::TraceStage::kVerifyCompile);
  // Every AggregateSpec pointer is about to die; the cache keyed on them
  // goes with it (TryReadEvaluate is revision-gated, so readers never see
  // the stale generation).
  agg_cache_ = AggregateCache();
  entries_.clear();
  adhoc_.clear();
  stats_.compiled_constraints = 0;
  stats_.interpreted_constraints = 0;
  for (const Constraint& c : catalog_->constraints()) {
    Entry e;
    e.constraint = &c;
    e.compiled = Compile(*c.expr);
    if (e.compiled->ok) {
      ++stats_.compiled_constraints;
    } else {
      ++stats_.interpreted_constraints;
    }
    entries_.push_back(std::move(e));
  }
  compiled_revision_ = catalog_->revision();
  compiled_once_ = true;
  ++stats_.recompiles;
}

namespace {

Status Violation(const Constraint& c) {
  return Status::ConstraintViolation("update violates constraint '" + c.name +
                                     "': " + c.expr->ToString());
}

}  // namespace

bool CompiledVerifier::TryVerifyAllShared(const EvalContext& ctx,
                                          Status* out) const {
  std::shared_lock lock(mu_);
  if (!compiled_once_ || compiled_revision_ != catalog_->revision()) {
    return false;
  }
  for (const Entry& e : entries_) {
    bool ok;
    if (!e.compiled->ok) {
      auto r = EvaluateBool(*e.constraint->expr, ctx);
      if (!r.ok()) {
        *out = r.status();
        return true;
      }
      ok = *r;
    } else {
      bool miss = false;
      AggFn agg_fn = [&](size_t i) -> Result<storage::Value> {
        Result<storage::Value> v = Status::Internal("agg cache miss");
        if (!agg_cache_.TryReadEvaluate(*e.compiled->aggs[i], ctx, &v)) {
          miss = true;
          return Status::Internal("agg cache miss");
        }
        return v;
      };
      auto r = RunScalar(e.compiled->top, ctx, nullptr, &agg_fn);
      if (miss) return false;  // Cache needs maintenance: retry exclusive.
      if (!r.ok()) {
        *out = r.status();
        return true;
      }
      if (r->tag != RegVal::Tag::kBool) {
        // The interpreter owns the exact "value is not bool, is <type>"
        // message (a RegVal number cannot tell int64 from timestamp).
        auto rb = EvaluateBool(*e.constraint->expr, ctx);
        if (!rb.ok()) {
          *out = rb.status();
          return true;
        }
        ok = *rb;
      } else {
        ok = r->b;
      }
    }
    if (PREVER_MUTATION(CATALOG_IGNORE_VIOLATION, !ok, false)) {
      *out = Violation(*e.constraint);
      return true;
    }
  }
  *out = Status::Ok();
  return true;
}

Status CompiledVerifier::CheckOneLocked(const Entry& entry,
                                        const EvalContext& ctx) {
  bool ok;
  if (!entry.compiled->ok) {
    PREVER_ASSIGN_OR_RETURN(ok, EvaluateBool(*entry.constraint->expr, ctx));
  } else {
    const CompiledConstraint& cc = *entry.compiled;
    AggFn agg_fn = [&](size_t i) -> Result<storage::Value> {
      return agg_cache_.Evaluate(*cc.aggs[i], ctx, &batches_);
    };
    auto r = RunScalar(cc.top, ctx, nullptr, &agg_fn);
    if (!r.ok()) return r.status();
    if (r->tag != RegVal::Tag::kBool) {
      PREVER_ASSIGN_OR_RETURN(ok, EvaluateBool(*entry.constraint->expr, ctx));
    } else {
      ok = r->b;
    }
  }
  if (PREVER_MUTATION(CATALOG_IGNORE_VIOLATION, !ok, false)) {
    return Violation(*entry.constraint);
  }
  return Status::Ok();
}

Status CompiledVerifier::VerifyAll(const EvalContext& ctx) {
  // A foreign database (engines sharing one verifier across platforms)
  // cannot use this verifier's per-table cache state: stay stateless.
  if (db_ != nullptr && ctx.db != nullptr && ctx.db != db_) {
    return catalog_->CheckAll(ctx);
  }
  PREVER_CAUSAL_SPAN(causal_eval, obs::TraceStage::kVerifyEval);
  Status out;
  if (TryVerifyAllShared(ctx, &out)) {
    fast_path_verifies_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }
  std::unique_lock lock(mu_);
  RefreshLocked();
  ++stats_.slow_path_verifies;
  for (const Entry& e : entries_) {
    PREVER_RETURN_IF_ERROR(CheckOneLocked(e, ctx));
  }
  return Status::Ok();
}

Result<int64_t> CompiledVerifier::EvaluateAggregate(const Expr& agg,
                                                    const EvalContext& ctx) {
  if ((db_ != nullptr && ctx.db != nullptr && ctx.db != db_) ||
      agg.kind != ExprKind::kAggregate) {
    return constraint::EvaluateAggregate(agg, ctx);
  }
  {
    std::shared_lock lock(mu_);
    auto it = adhoc_.find(&agg);
    if (it != adhoc_.end()) {
      if (!it->second->usable) {
        lock.unlock();
        return constraint::EvaluateAggregate(agg, ctx);
      }
      Result<storage::Value> v = Status::Internal("agg cache miss");
      if (agg_cache_.TryReadEvaluate(*it->second->compiled->aggs[0], ctx, &v)) {
        if (!v.ok()) return v.status();
        return v->AsInt64();
      }
    }
  }
  std::unique_lock lock(mu_);
  auto& up = adhoc_[&agg];
  if (!up) {
    PREVER_CAUSAL_SPAN(causal_compile, obs::TraceStage::kVerifyCompile);
    up = std::make_unique<AdhocAgg>();
    up->compiled = Compile(agg);
    // A lone top-level aggregate always lowers to exactly one spec.
    up->usable = up->compiled->ok && up->compiled->aggs.size() == 1;
  }
  if (!up->usable) return constraint::EvaluateAggregate(agg, ctx);
  PREVER_CAUSAL_SPAN(causal_eval, obs::TraceStage::kVerifyEval);
  auto v = agg_cache_.Evaluate(*up->compiled->aggs[0], ctx, &batches_);
  if (!v.ok()) return v.status();
  return v->AsInt64();
}

void CompiledVerifier::InvalidateCaches() {
  std::unique_lock lock(mu_);
  agg_cache_.InvalidateAll();
  batches_.Clear();
}

CompiledVerifier::Stats CompiledVerifier::stats() const {
  std::shared_lock lock(mu_);
  Stats s = stats_;
  s.agg = agg_cache_.stats();
  s.fast_path_verifies = fast_path_verifies_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace prever::constraint
