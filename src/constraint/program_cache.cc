#include "constraint/program_cache.h"

#include <utility>

namespace prever::constraint {

std::shared_ptr<const CompiledConstraint> ProgramCache::Get(const Expr& expr) {
  std::string key = expr.ToString();
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.compiles;
  auto compiled =
      std::make_shared<const CompiledConstraint>(CompileConstraint(expr));
  entries_.emplace(std::move(key), compiled);
  return compiled;
}

ProgramCache::Stats ProgramCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace prever::constraint
