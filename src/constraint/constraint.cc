#include "constraint/constraint.h"

#include "constraint/parser.h"
#include "mutate/mutation.h"

namespace prever::constraint {

Status ConstraintCatalog::Add(const std::string& name, ConstraintScope scope,
                              ConstraintVisibility visibility,
                              std::string_view text) {
  PREVER_ASSIGN_OR_RETURN(ExprPtr expr, ParseConstraint(text));
  return AddParsed(Constraint(name, scope, visibility, std::move(expr)));
}

Status ConstraintCatalog::AddParsed(Constraint constraint) {
  for (const Constraint& c : constraints_) {
    if (c.name == constraint.name) {
      return Status::AlreadyExists("constraint '" + constraint.name +
                                   "' already registered");
    }
  }
  constraints_.push_back(std::move(constraint));
  ++revision_;
  return Status::Ok();
}

Status ConstraintCatalog::Remove(const std::string& name) {
  for (auto it = constraints_.begin(); it != constraints_.end(); ++it) {
    if (it->name == name) {
      constraints_.erase(it);
      ++revision_;
      return Status::Ok();
    }
  }
  return Status::NotFound("no constraint '" + name + "'");
}

Result<const Constraint*> ConstraintCatalog::Find(
    const std::string& name) const {
  for (const Constraint& c : constraints_) {
    if (c.name == name) return &c;
  }
  return Status::NotFound("no constraint '" + name + "'");
}

Status ConstraintCatalog::CheckAll(const EvalContext& ctx) const {
  for (const Constraint& c : constraints_) {
    PREVER_ASSIGN_OR_RETURN(bool ok, EvaluateBool(*c.expr, ctx));
    if (PREVER_MUTATION(CATALOG_IGNORE_VIOLATION, !ok, false)) {
      return Status::ConstraintViolation("update violates constraint '" +
                                         c.name + "': " + c.expr->ToString());
    }
  }
  return Status::Ok();
}

}  // namespace prever::constraint
