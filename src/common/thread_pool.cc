#include "common/thread_pool.h"

namespace prever::common {

ThreadPool::ThreadPool(size_t num_threads) {
  // The caller counts as worker #0; spawn the rest.
  size_t extra = num_threads > 1 ? num_threads - 1 : 0;
  threads_.reserve(extra);
  for (size_t i = 0; i < extra; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Drain(Batch* batch) {
  const std::function<void(size_t)>& fn = *batch->fn;
  for (;;) {
    size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->end) break;
    fn(i);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (current_ != nullptr && generation_ != seen);
      });
      if (shutdown_) return;
      seen = generation_;
      batch = current_;
    }
    Drain(batch);
    {
      // The exit count is written under mu_ so the batch owner cannot miss
      // the final notification (and cannot destroy the batch while a worker
      // still holds the pointer).
      std::lock_guard<std::mutex> lock(mu_);
      ++batch->exited;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Batch batch;
  batch.fn = &fn;
  batch.end = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = &batch;
    ++generation_;
  }
  work_cv_.notify_all();
  // The calling thread pulls its share of iterations too.
  Drain(&batch);
  // Every spawned worker visits each batch exactly once (the generation
  // counter makes the wakeup edge-triggered), so waiting for them all to
  // exit guarantees every claimed iteration has finished.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return batch.exited == threads_.size(); });
  current_ = nullptr;
}

}  // namespace prever::common
