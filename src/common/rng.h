#ifndef PREVER_COMMON_RNG_H_
#define PREVER_COMMON_RNG_H_

#include <cstdint>

#include "common/bytes.h"

namespace prever {

/// Deterministic pseudo-random generator (xoshiro256**) used everywhere a
/// seedable, reproducible stream is needed: workload generation, simulated
/// network jitter, and as entropy source for the crypto DRBG in tests.
///
/// NOT a CSPRNG by itself; the crypto layer wraps it in an HMAC-based DRBG.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next 64 uniform random bits.
  uint64_t NextU64();

  /// Uniform in [0, bound); bound must be > 0. Uses rejection sampling, so
  /// the result is unbiased.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Fills `n` pseudo-random bytes.
  Bytes NextBytes(size_t n);

 private:
  uint64_t s_[4];
};

/// Zipfian distribution over [0, n) with parameter theta (default 0.99 as in
/// YCSB). Heavier skew for larger theta.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99);

  /// Draws an item; item 0 is the most popular.
  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace prever

#endif  // PREVER_COMMON_RNG_H_
