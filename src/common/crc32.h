#ifndef PREVER_COMMON_CRC32_H_
#define PREVER_COMMON_CRC32_H_

#include <cstdint>

#include "common/bytes.h"

namespace prever {

/// CRC-32 (IEEE 802.3 polynomial, reflected). Used by the write-ahead log to
/// detect torn or corrupted records during recovery.
uint32_t Crc32(const uint8_t* data, size_t len);
uint32_t Crc32(const Bytes& data);

}  // namespace prever

#endif  // PREVER_COMMON_CRC32_H_
