#ifndef PREVER_COMMON_BYTES_H_
#define PREVER_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace prever {

/// Raw byte buffer used for keys, ciphertexts, digests and wire messages.
using Bytes = std::vector<uint8_t>;

/// Converts a UTF-8/ASCII string to bytes (no terminator).
Bytes ToBytes(std::string_view s);

/// Converts bytes back to a std::string (may contain NULs).
std::string ToString(const Bytes& b);

/// Lower-case hex encoding, e.g. {0xde, 0xad} -> "dead".
std::string HexEncode(const Bytes& b);

/// Parses lower/upper-case hex; fails on odd length or non-hex characters.
Result<Bytes> HexDecode(std::string_view hex);

/// Constant-time equality for secret material (digests, MACs, tokens).
bool ConstantTimeEqual(const Bytes& a, const Bytes& b);

/// Appends `src` to `dst`.
void Append(Bytes& dst, const Bytes& src);

}  // namespace prever

#endif  // PREVER_COMMON_BYTES_H_
