#ifndef PREVER_COMMON_THREAD_POOL_H_
#define PREVER_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace prever::common {

/// Minimal fixed-size worker pool for data-parallel verification work.
///
/// The engines use it to check independent ZK proofs / signatures from a
/// batch concurrently: each unit of work must be read-only with respect to
/// shared engine state (the crypto layer's caches are internally
/// synchronized, and Montgomery scratch buffers are thread_local). Anything
/// that mutates engine state — aggregation, ledger appends, Drbg draws —
/// stays on the calling thread.
///
/// A pool of size <= 1 degrades to inline serial execution with zero
/// threading overhead, so callers can pass the same code path a pool sized
/// from a --threads flag without special-casing single-core machines.
class ThreadPool {
 public:
  /// `num_threads` counts TOTAL workers including the calling thread, so a
  /// value of 1 (or 0) spawns nothing. Pass 0 to mean "decide for me":
  /// currently also serial, since the repo's benches run on fixed thread
  /// budgets and silently consuming all cores would skew them.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the caller (always >= 1).
  size_t size() const { return threads_.size() + 1; }

  /// Runs fn(i) for every i in [0, n), spreading iterations across the
  /// workers and the calling thread; blocks until all complete. fn must be
  /// safe to invoke concurrently from multiple threads. Exceptions from fn
  /// must not escape (the kernel code here is exception-free by
  /// convention); iteration order is unspecified. At most one ParallelFor
  /// may be in flight per pool — nested or concurrent dispatch is not
  /// supported.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  struct Batch {
    const std::function<void(size_t)>* fn = nullptr;
    std::atomic<size_t> next{0};
    size_t end = 0;
    size_t exited = 0;  ///< Workers done with this batch; guarded by mu_.
  };

  void WorkerLoop();
  static void Drain(Batch* batch);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Batch* current_ = nullptr;  ///< Guarded by mu_; non-null while a batch runs.
  uint64_t generation_ = 0;   ///< Bumped per batch so workers wake exactly once.
  bool shutdown_ = false;
};

}  // namespace prever::common

#endif  // PREVER_COMMON_THREAD_POOL_H_
