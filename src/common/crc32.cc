#include "common/crc32.h"

namespace prever {

namespace {
struct Crc32Table {
  uint32_t entries[256];

  constexpr Crc32Table() : entries() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};
constexpr Crc32Table kTable;
}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    c = kTable.entries[(c ^ data[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(const Bytes& data) { return Crc32(data.data(), data.size()); }

}  // namespace prever
