#include "common/bytes.h"

namespace prever {

Bytes ToBytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

std::string HexEncode(const Bytes& b) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xf]);
  }
  return out;
}

namespace {
int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ConstantTimeEqual(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

void Append(Bytes& dst, const Bytes& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace prever
