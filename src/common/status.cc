#include "common/status.h"

namespace prever {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kIntegrityViolation:
      return "IntegrityViolation";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace prever
