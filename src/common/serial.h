#ifndef PREVER_COMMON_SERIAL_H_
#define PREVER_COMMON_SERIAL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace prever {

/// Little-endian binary writer for deterministic canonical encodings.
/// All multi-byte integers are fixed-width little-endian; variable-size
/// payloads are length-prefixed with a u32. Canonical encodings are hashed
/// and signed, so writers must be deterministic.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  /// Length-prefixed byte string.
  void WriteBytes(const Bytes& b);
  /// Length-prefixed UTF-8 string.
  void WriteString(std::string_view s);
  /// Raw bytes, no length prefix (for fixed-size fields like digests).
  void WriteRaw(const Bytes& b);

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Matching reader; every accessor validates remaining length.
class BinaryReader {
 public:
  explicit BinaryReader(const Bytes& data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<bool> ReadBool();
  Result<Bytes> ReadBytes();
  Result<std::string> ReadString();
  /// Reads exactly `n` raw bytes.
  Result<Bytes> ReadRaw(size_t n);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n);

  const Bytes& data_;
  size_t pos_ = 0;
};

}  // namespace prever

#endif  // PREVER_COMMON_SERIAL_H_
