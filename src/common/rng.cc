#include "common/rng.h"

#include <cmath>

namespace prever {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four xoshiro words from splitmix64 per the reference
  // implementation's recommendation; guards against all-zero state.
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

Bytes Rng::NextBytes(size_t n) {
  Bytes out(n);
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t v = NextU64();
    for (int k = 0; k < 8; ++k) out[i + k] = static_cast<uint8_t>(v >> (8 * k));
    i += 8;
  }
  if (i < n) {
    uint64_t v = NextU64();
    for (; i < n; ++i, v >>= 8) out[i] = static_cast<uint8_t>(v);
  }
  return out;
}

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  // Gray/Jim Gray's quick zipfian algorithm as used in YCSB.
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto v = static_cast<uint64_t>(static_cast<double>(n_) *
                                 std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v >= n_) v = n_ - 1;
  return v;
}

}  // namespace prever
