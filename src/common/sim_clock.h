#ifndef PREVER_COMMON_SIM_CLOCK_H_
#define PREVER_COMMON_SIM_CLOCK_H_

#include <cstdint>

namespace prever {

/// Simulated time in microseconds since an arbitrary epoch. All timestamps in
/// PReVer (update times, sliding windows, consensus timers) use SimTime so
/// experiments are deterministic and replayable.
using SimTime = uint64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;
constexpr SimTime kDay = 24 * kHour;
constexpr SimTime kWeek = 7 * kDay;

/// Monotonic simulated clock. The network simulator advances it as events
/// fire; workload generators advance it per-arrival.
class SimClock {
 public:
  SimClock() = default;

  SimTime Now() const { return now_; }

  /// Moves time forward; ignores attempts to move backwards.
  void AdvanceTo(SimTime t) {
    if (t > now_) now_ = t;
  }
  void Advance(SimTime delta) { now_ += delta; }

 private:
  SimTime now_ = 0;
};

}  // namespace prever

#endif  // PREVER_COMMON_SIM_CLOCK_H_
