#ifndef PREVER_COMMON_STATUS_H_
#define PREVER_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace prever {

/// Error categories used across PReVer. Modeled after the RocksDB/Arrow
/// Status idiom: no exceptions cross module boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kConstraintViolation,   ///< Update rejected by a constraint/regulation.
  kIntegrityViolation,    ///< Tamper or proof-verification failure.
  kPermissionDenied,      ///< Privacy/role policy forbids the operation.
  kUnavailable,           ///< Transient failure (e.g., no quorum).
  kCorruption,            ///< Persistent state failed validation.
  kNotSupported,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value. Functions that can fail return
/// Status (or Result<T> when they also produce a value).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status IntegrityViolation(std::string msg) {
    return Status(StatusCode::kIntegrityViolation, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Never holds both.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Status status) : value_(std::move(status)) {      // NOLINT
    // An OK status without a value is a programming error; normalize it so
    // callers always observe an error.
    if (std::get<Status>(value_).ok()) {
      value_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  /// Requires ok().
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace prever

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define PREVER_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::prever::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                        \
  } while (0)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// moves the value into `lhs`.
#define PREVER_ASSIGN_OR_RETURN(lhs, expr)            \
  auto PREVER_CONCAT_(_res_, __LINE__) = (expr);      \
  if (!PREVER_CONCAT_(_res_, __LINE__).ok())          \
    return PREVER_CONCAT_(_res_, __LINE__).status();  \
  lhs = std::move(PREVER_CONCAT_(_res_, __LINE__)).value()

#define PREVER_CONCAT_(a, b) PREVER_CONCAT_IMPL_(a, b)
#define PREVER_CONCAT_IMPL_(a, b) a##b

#endif  // PREVER_COMMON_STATUS_H_
