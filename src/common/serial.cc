#include "common/serial.h"

namespace prever {

void BinaryWriter::WriteU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void BinaryWriter::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::WriteBytes(const Bytes& b) {
  WriteU32(static_cast<uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void BinaryWriter::WriteString(std::string_view s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BinaryWriter::WriteRaw(const Bytes& b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

Status BinaryReader::Need(size_t n) {
  if (remaining() < n) {
    return Status::Corruption("truncated buffer: need " + std::to_string(n) +
                              " bytes, have " + std::to_string(remaining()));
  }
  return Status::Ok();
}

Result<uint8_t> BinaryReader::ReadU8() {
  PREVER_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint16_t> BinaryReader::ReadU16() {
  PREVER_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> BinaryReader::ReadU32() {
  PREVER_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  PREVER_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<int64_t> BinaryReader::ReadI64() {
  PREVER_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<bool> BinaryReader::ReadBool() {
  PREVER_ASSIGN_OR_RETURN(uint8_t v, ReadU8());
  if (v > 1) return Status::Corruption("invalid bool encoding");
  return v == 1;
}

Result<Bytes> BinaryReader::ReadBytes() {
  PREVER_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  return ReadRaw(n);
}

Result<std::string> BinaryReader::ReadString() {
  PREVER_ASSIGN_OR_RETURN(Bytes b, ReadBytes());
  return std::string(b.begin(), b.end());
}

Result<Bytes> BinaryReader::ReadRaw(size_t n) {
  PREVER_RETURN_IF_ERROR(Need(n));
  Bytes out(data_.begin() + static_cast<long>(pos_),
            data_.begin() + static_cast<long>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace prever
