#ifndef PREVER_LEDGER_BLOCK_H_
#define PREVER_LEDGER_BLOCK_H_

#include <vector>

#include "common/bytes.h"
#include "common/sim_clock.h"
#include "common/status.h"

namespace prever::ledger {

/// A block in the permissioned blockchain used for the federated setting
/// (§4 RC4: "permissioned blockchain systems … can be used as the
/// infrastructure of PReVer"). Transactions are opaque payloads (encoded
/// PReVer updates); the Merkle root commits to them; prev_hash chains blocks.
struct Block {
  uint64_t height = 0;
  SimTime timestamp = 0;
  Bytes prev_hash;
  Bytes tx_root;
  std::vector<Bytes> transactions;

  /// Canonical header encoding (hashed to identify the block).
  Bytes EncodeHeader() const;
  Bytes Hash() const;

  /// Recomputes the Merkle root over `transactions` — must equal tx_root.
  Bytes ComputeTxRoot() const;
};

/// An in-memory chain of validated blocks, maintained by every replica.
class Blockchain {
 public:
  Blockchain();

  /// Genesis has height 0 and empty payload; user blocks start at height 1.
  uint64_t height() const { return blocks_.size() - 1; }
  size_t num_blocks() const { return blocks_.size(); }
  const Block& Tip() const { return blocks_.back(); }
  Result<const Block*> GetBlock(uint64_t height) const;

  /// Builds a valid successor block from transactions.
  Block BuildNext(std::vector<Bytes> transactions, SimTime timestamp) const;

  /// Validates linkage, height, and tx_root, then appends.
  Status Append(const Block& block);

  /// Full-chain validation (any participant can run this — RC4).
  Status Validate() const;

  /// Total transactions across all blocks.
  size_t TotalTransactions() const;

 private:
  std::vector<Block> blocks_;
};

}  // namespace prever::ledger

#endif  // PREVER_LEDGER_BLOCK_H_
