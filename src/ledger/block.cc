#include "ledger/block.h"

#include "common/serial.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace prever::ledger {

Bytes Block::EncodeHeader() const {
  BinaryWriter w;
  w.WriteU64(height);
  w.WriteU64(timestamp);
  w.WriteBytes(prev_hash);
  w.WriteBytes(tx_root);
  w.WriteU32(static_cast<uint32_t>(transactions.size()));
  return w.Take();
}

Bytes Block::Hash() const { return crypto::Sha256::Hash(EncodeHeader()); }

Bytes Block::ComputeTxRoot() const {
  crypto::MerkleTree tree;
  for (const Bytes& tx : transactions) tree.Append(tx);
  return tree.Root();
}

Blockchain::Blockchain() {
  Block genesis;
  genesis.height = 0;
  genesis.timestamp = 0;
  genesis.prev_hash = Bytes(32, 0);
  genesis.tx_root = genesis.ComputeTxRoot();
  blocks_.push_back(std::move(genesis));
}

Result<const Block*> Blockchain::GetBlock(uint64_t height) const {
  if (height >= blocks_.size()) {
    return Status::NotFound("no block at height " + std::to_string(height));
  }
  return &blocks_[height];
}

Block Blockchain::BuildNext(std::vector<Bytes> transactions,
                            SimTime timestamp) const {
  Block block;
  block.height = blocks_.size();
  block.timestamp = timestamp;
  block.prev_hash = Tip().Hash();
  block.transactions = std::move(transactions);
  block.tx_root = block.ComputeTxRoot();
  return block;
}

Status Blockchain::Append(const Block& block) {
  if (block.height != blocks_.size()) {
    return Status::InvalidArgument(
        "block height " + std::to_string(block.height) + ", expected " +
        std::to_string(blocks_.size()));
  }
  if (block.prev_hash != Tip().Hash()) {
    return Status::IntegrityViolation("block does not link to current tip");
  }
  if (block.tx_root != block.ComputeTxRoot()) {
    return Status::IntegrityViolation("block tx_root does not match payload");
  }
  blocks_.push_back(block);
  return Status::Ok();
}

Status Blockchain::Validate() const {
  for (size_t i = 0; i < blocks_.size(); ++i) {
    const Block& b = blocks_[i];
    if (b.height != i) {
      return Status::IntegrityViolation("height mismatch at block " +
                                        std::to_string(i));
    }
    if (b.tx_root != b.ComputeTxRoot()) {
      return Status::IntegrityViolation("tx_root mismatch at block " +
                                        std::to_string(i));
    }
    if (i > 0 && b.prev_hash != blocks_[i - 1].Hash()) {
      return Status::IntegrityViolation("broken hash link at block " +
                                        std::to_string(i));
    }
  }
  return Status::Ok();
}

size_t Blockchain::TotalTransactions() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.transactions.size();
  return total;
}

}  // namespace prever::ledger
