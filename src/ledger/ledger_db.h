#ifndef PREVER_LEDGER_LEDGER_DB_H_
#define PREVER_LEDGER_LEDGER_DB_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "crypto/merkle.h"

namespace prever::ledger {

/// One journal entry of the centralized ledger database (QLDB/LedgerDB
/// style, the paper's RC4 infrastructure for the single-database setting).
struct LedgerEntry {
  uint64_t sequence = 0;
  SimTime timestamp = 0;
  Bytes payload;

  /// Canonical encoding that is hashed into the Merkle tree.
  Bytes Encode() const;
  static Result<LedgerEntry> Decode(const Bytes& data);
};

/// Compact commitment to a ledger state; published by the data manager and
/// checked by any participant (RC4: "enable any participant to verify the
/// integrity of stored data").
struct LedgerDigest {
  uint64_t size = 0;
  Bytes root;

  bool operator==(const LedgerDigest& o) const {
    return size == o.size && root == o.root;
  }
};

/// Proof that a specific entry is included under a digest.
struct InclusionProof {
  uint64_t sequence = 0;
  uint64_t tree_size = 0;
  std::vector<Bytes> path;
};

/// Proof that one digest's ledger is an append-only extension of another's.
struct ConsistencyProof {
  uint64_t old_size = 0;
  uint64_t new_size = 0;
  std::vector<Bytes> path;
};

/// Append-only verifiable ledger: immutable journal + incremental Merkle
/// tree. Immutability prevents tampering; verifiability lets authorized
/// participants audit the state (§4 RC4).
class LedgerDb {
 public:
  LedgerDb() = default;

  /// Appends a payload; returns its sequence number.
  uint64_t Append(const Bytes& payload, SimTime timestamp);

  /// Appends `payloads[i]` with `timestamps[i]` as consecutive entries,
  /// hashing all leaves and folding the Merkle level cache once for the
  /// whole batch (same final state as per-entry Append, amortized cost).
  Status AppendBatch(const std::vector<Bytes>& payloads,
                     const std::vector<SimTime>& timestamps);

  uint64_t size() const { return entries_.size(); }
  Result<LedgerEntry> GetEntry(uint64_t sequence) const;

  /// Current digest (size + Merkle root).
  LedgerDigest Digest() const;
  /// Digest as of an earlier size.
  Result<LedgerDigest> DigestAt(uint64_t size) const;

  /// Inclusion proof for `sequence` under the digest at `tree_size`.
  Result<InclusionProof> ProveInclusion(uint64_t sequence,
                                        uint64_t tree_size) const;
  /// Consistency proof between two historic digests.
  Result<ConsistencyProof> ProveConsistency(uint64_t old_size,
                                            uint64_t new_size) const;

  /// Client-side checks (no ledger access needed beyond the proof).
  static bool VerifyInclusion(const LedgerEntry& entry,
                              const InclusionProof& proof,
                              const LedgerDigest& digest);
  static bool VerifyConsistency(const LedgerDigest& old_digest,
                                const LedgerDigest& new_digest,
                                const ConsistencyProof& proof);

  /// Full audit: recomputes the Merkle root from the journal and compares to
  /// the incremental tree. IntegrityViolation if the journal was mutated
  /// behind the tree's back (simulated tamper in tests).
  Status Audit() const;

  /// TEST ONLY: mutates a stored entry payload in place, simulating a
  /// malicious data manager rewriting history.
  Status TamperWithEntryForTest(uint64_t sequence, const Bytes& new_payload);

  /// TEST ONLY: rewrites a stored entry's sequence number AND rebuilds the
  /// Merkle tree from the tampered journal, simulating a data manager that
  /// renumbers history and recommits to it. The root comparison in Audit()
  /// then passes; only the dense-sequence check can flag the tamper.
  Status RenumberEntryForTest(uint64_t sequence, uint64_t new_sequence);

  /// Persists the journal to `path` (CRC-protected records) so the ledger
  /// survives restarts. LoadFromFile rebuilds the Merkle tree from the
  /// journal and audits it; a tampered file fails with IntegrityViolation
  /// (entries are self-describing, so sequence gaps are detected).
  Status SaveToFile(const std::string& path) const;
  static Result<LedgerDb> LoadFromFile(const std::string& path);

  /// Canonical encodings of all entries in sequence order — the journal
  /// image embedded in checkpoints and state-transfer blobs (src/recovery/).
  std::vector<Bytes> EncodeEntries() const;

  /// Rebuilds a ledger from encoded entries (the restore half of
  /// EncodeEntries). Entries must decode and be dense from sequence 0;
  /// the Merkle tree is rebuilt, so callers can compare the resulting
  /// Digest().root against a manifest's recorded root.
  static Result<LedgerDb> FromRecords(const std::vector<Bytes>& records);

 private:
  std::vector<LedgerEntry> entries_;
  crypto::MerkleTree tree_;
};

}  // namespace prever::ledger

#endif  // PREVER_LEDGER_LEDGER_DB_H_
