#include "ledger/ledger_db.h"

#include <cstdio>

#include "common/serial.h"
#include "mutate/mutation.h"
#include "storage/wal.h"

namespace prever::ledger {

Bytes LedgerEntry::Encode() const {
  BinaryWriter w;
  w.WriteU64(sequence);
  w.WriteU64(timestamp);
  w.WriteBytes(payload);
  return w.Take();
}

Result<LedgerEntry> LedgerEntry::Decode(const Bytes& data) {
  BinaryReader r(data);
  LedgerEntry e;
  PREVER_ASSIGN_OR_RETURN(e.sequence, r.ReadU64());
  PREVER_ASSIGN_OR_RETURN(e.timestamp, r.ReadU64());
  PREVER_ASSIGN_OR_RETURN(e.payload, r.ReadBytes());
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in ledger entry");
  return e;
}

uint64_t LedgerDb::Append(const Bytes& payload, SimTime timestamp) {
  LedgerEntry entry;
  entry.sequence = entries_.size();
  entry.timestamp = timestamp;
  entry.payload = payload;
  tree_.Append(entry.Encode());
  entries_.push_back(std::move(entry));
  return entries_.back().sequence;
}

Status LedgerDb::AppendBatch(const std::vector<Bytes>& payloads,
                             const std::vector<SimTime>& timestamps) {
  if (payloads.size() != timestamps.size()) {
    return Status::InvalidArgument("payload/timestamp count mismatch");
  }
  std::vector<Bytes> encoded;
  encoded.reserve(payloads.size());
  entries_.reserve(entries_.size() + payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    LedgerEntry entry;
    entry.sequence = entries_.size();
    entry.timestamp = timestamps[i];
    entry.payload = payloads[i];
    encoded.push_back(entry.Encode());
    entries_.push_back(std::move(entry));
  }
  tree_.AppendBatch(encoded);
  return Status::Ok();
}

Result<LedgerEntry> LedgerDb::GetEntry(uint64_t sequence) const {
  if (sequence >= entries_.size()) {
    return Status::NotFound("no ledger entry " + std::to_string(sequence));
  }
  return entries_[sequence];
}

LedgerDigest LedgerDb::Digest() const {
  return LedgerDigest{entries_.size(), tree_.Root()};
}

Result<LedgerDigest> LedgerDb::DigestAt(uint64_t size) const {
  PREVER_ASSIGN_OR_RETURN(Bytes root, tree_.RootAt(size));
  return LedgerDigest{size, std::move(root)};
}

Result<InclusionProof> LedgerDb::ProveInclusion(uint64_t sequence,
                                                uint64_t tree_size) const {
  PREVER_ASSIGN_OR_RETURN(std::vector<Bytes> path,
                          tree_.InclusionProof(sequence, tree_size));
  return InclusionProof{sequence, tree_size, std::move(path)};
}

Result<ConsistencyProof> LedgerDb::ProveConsistency(uint64_t old_size,
                                                    uint64_t new_size) const {
  PREVER_ASSIGN_OR_RETURN(std::vector<Bytes> path,
                          tree_.ConsistencyProof(old_size, new_size));
  return ConsistencyProof{old_size, new_size, std::move(path)};
}

bool LedgerDb::VerifyInclusion(const LedgerEntry& entry,
                               const InclusionProof& proof,
                               const LedgerDigest& digest) {
  if (PREVER_MUTATION(
          LEDGER_PROOF_SIZE_SKIP,
          proof.tree_size != digest.size || proof.sequence != entry.sequence,
          false)) {
    return false;
  }
  return crypto::MerkleTree::VerifyInclusion(entry.Encode(), proof.sequence,
                                             proof.tree_size, proof.path,
                                             digest.root);
}

bool LedgerDb::VerifyConsistency(const LedgerDigest& old_digest,
                                 const LedgerDigest& new_digest,
                                 const ConsistencyProof& proof) {
  if (proof.old_size != old_digest.size || proof.new_size != new_digest.size) {
    return false;
  }
  return crypto::MerkleTree::VerifyConsistency(
      proof.old_size, proof.new_size, old_digest.root, new_digest.root,
      proof.path);
}

Status LedgerDb::Audit() const {
  crypto::MerkleTree recomputed;
  for (const LedgerEntry& entry : entries_) {
    recomputed.Append(entry.Encode());
  }
  if (PREVER_MUTATION(LEDGER_AUDIT_ROOT_SKIP,
                      recomputed.Root() != tree_.Root(), false)) {
    return Status::IntegrityViolation(
        "journal does not match Merkle tree: stored entries were mutated");
  }
  // Sequence numbers must be dense and ordered.
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (PREVER_MUTATION(LEDGER_AUDIT_SEQUENCE_SKIP, entries_[i].sequence != i,
                        false)) {
      return Status::IntegrityViolation("ledger sequence gap at " +
                                        std::to_string(i));
    }
  }
  return Status::Ok();
}

Status LedgerDb::SaveToFile(const std::string& path) const {
  std::remove(path.c_str());  // Whole-journal snapshot, not an append.
  storage::WriteAheadLog log;
  PREVER_RETURN_IF_ERROR(log.Open(path));
  std::vector<Bytes> records;
  records.reserve(entries_.size());
  for (const LedgerEntry& entry : entries_) records.push_back(entry.Encode());
  return log.AppendBatch(records);  // One write + flush for the snapshot.
}

Result<LedgerDb> LedgerDb::LoadFromFile(const std::string& path) {
  bool truncated = false;
  PREVER_ASSIGN_OR_RETURN(std::vector<Bytes> records,
                          storage::WriteAheadLog::Recover(path, &truncated));
  if (truncated) {
    return Status::IntegrityViolation("ledger file has a corrupt tail");
  }
  return FromRecords(records);
}

std::vector<Bytes> LedgerDb::EncodeEntries() const {
  std::vector<Bytes> records;
  records.reserve(entries_.size());
  for (const LedgerEntry& entry : entries_) records.push_back(entry.Encode());
  return records;
}

Result<LedgerDb> LedgerDb::FromRecords(const std::vector<Bytes>& records) {
  LedgerDb ledger;
  for (const Bytes& record : records) {
    PREVER_ASSIGN_OR_RETURN(LedgerEntry entry, LedgerEntry::Decode(record));
    if (entry.sequence != ledger.entries_.size()) {
      return Status::IntegrityViolation(
          "ledger file has a sequence gap at " +
          std::to_string(ledger.entries_.size()));
    }
    ledger.tree_.Append(entry.Encode());
    ledger.entries_.push_back(std::move(entry));
  }
  return ledger;
}

Status LedgerDb::TamperWithEntryForTest(uint64_t sequence,
                                        const Bytes& new_payload) {
  if (sequence >= entries_.size()) {
    return Status::NotFound("no ledger entry " + std::to_string(sequence));
  }
  entries_[sequence].payload = new_payload;
  return Status::Ok();
}

Status LedgerDb::RenumberEntryForTest(uint64_t sequence,
                                      uint64_t new_sequence) {
  if (sequence >= entries_.size()) {
    return Status::NotFound("no ledger entry " + std::to_string(sequence));
  }
  entries_[sequence].sequence = new_sequence;
  crypto::MerkleTree rebuilt;
  for (const LedgerEntry& entry : entries_) rebuilt.Append(entry.Encode());
  tree_ = std::move(rebuilt);
  return Status::Ok();
}

}  // namespace prever::ledger
