#ifndef PREVER_WORKLOAD_TPC_LITE_H_
#define PREVER_WORKLOAD_TPC_LITE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/update.h"
#include "storage/schema.h"

namespace prever::workload {

/// TPC-C-flavoured NewOrder-lite generator (§6 mentions TPC alongside
/// YCSB). Each operation is a new order for a customer; the regulated
/// constraint is a per-customer monthly credit limit:
///   SUM(orders.amount WHERE customer = update.customer WINDOW 30d)
///     + update.amount <= credit_limit
/// — a linear bound form, so it runs on every PReVer engine.
struct TpcLiteConfig {
  size_t num_customers = 50;
  size_t num_orders = 500;
  int64_t max_order_amount = 100;
  int64_t credit_limit = 1000;
  uint64_t seed = 1;
};

class TpcLiteWorkload {
 public:
  explicit TpcLiteWorkload(const TpcLiteConfig& config);

  static storage::Schema OrdersSchema();
  static constexpr const char* kTableName = "orders";

  /// The credit-limit regulation text for this config.
  std::string CreditConstraint() const;

  core::Update NextOrder();

  uint64_t generated() const { return generated_; }

 private:
  TpcLiteConfig config_;
  Rng rng_;
  uint64_t generated_ = 0;
};

}  // namespace prever::workload

#endif  // PREVER_WORKLOAD_TPC_LITE_H_
