#ifndef PREVER_WORKLOAD_SUPPLYCHAIN_H_
#define PREVER_WORKLOAD_SUPPLYCHAIN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/update.h"
#include "storage/schema.h"

namespace prever::workload {

/// Supply-chain event trace (§2.4): a chain of mutually distrustful
/// enterprises (supplier → manufacturer → carrier → retailer) processes
/// production and shipment events under SLA constraints such as "a
/// manufacturer cannot ship more units of a product than it produced".
struct SupplyChainConfig {
  size_t num_enterprises = 4;
  size_t num_products = 5;
  size_t num_events = 200;
  int64_t max_quantity = 50;
  /// Fraction of generated ship events deliberately oversized, to exercise
  /// constraint rejection.
  double violation_rate = 0.1;
  uint64_t seed = 1;
};

/// Event kinds: produce adds stock, ship moves stock downstream.
enum class SupplyEventKind : uint8_t { kProduce = 0, kShip = 1 };

struct SupplyEvent {
  SupplyEventKind kind = SupplyEventKind::kProduce;
  size_t enterprise = 0;
  std::string product;
  int64_t quantity = 0;
  SimTime at = 0;

  core::Update ToUpdate(uint64_t event_index) const;
};

class SupplyChainWorkload {
 public:
  explicit SupplyChainWorkload(const SupplyChainConfig& config);

  /// `events` table: id, kind ("produce"/"ship"), product, qty, at.
  static storage::Schema EventSchema();
  static constexpr const char* kTableName = "events";

  /// SLA constraint text enforced per enterprise: shipments of a product
  /// never exceed production.
  static const char* ShipmentConstraint();

  std::vector<SupplyEvent> Generate();

 private:
  SupplyChainConfig config_;
  Rng rng_;
};

}  // namespace prever::workload

#endif  // PREVER_WORKLOAD_SUPPLYCHAIN_H_
