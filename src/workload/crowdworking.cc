#include "workload/crowdworking.h"

#include <algorithm>

namespace prever::workload {

using storage::Value;

CrowdworkingWorkload::CrowdworkingWorkload(const CrowdworkingConfig& config)
    : config_(config), rng_(config.seed) {}

storage::Schema CrowdworkingWorkload::WorklogSchema() {
  return storage::Schema({{"id", storage::ValueType::kString},
                          {"worker", storage::ValueType::kString},
                          {"hours", storage::ValueType::kInt64},
                          {"at", storage::ValueType::kTimestamp}});
}

core::Update TaskEvent::ToUpdate(uint64_t event_index) const {
  core::Update u;
  u.id = "task" + std::to_string(event_index);
  u.producer = worker;
  u.timestamp = at;
  u.fields = {{"worker", Value::String(worker)},
              {"hours", Value::Int64(hours)}};
  u.mutation.op = storage::Mutation::Op::kInsert;
  u.mutation.table = CrowdworkingWorkload::kTableName;
  u.mutation.row = {Value::String(u.id), Value::String(worker),
                    Value::Int64(hours), Value::Timestamp(at)};
  return u;
}

std::vector<TaskEvent> CrowdworkingWorkload::Generate() {
  std::vector<TaskEvent> events;
  for (size_t week = 0; week < config_.num_weeks; ++week) {
    for (size_t w = 0; w < config_.num_workers; ++w) {
      // Arrival count around the configured mean.
      auto tasks = static_cast<size_t>(
          rng_.NextInRange(0, static_cast<int64_t>(
                                  config_.tasks_per_worker_week * 2)));
      for (size_t t = 0; t < tasks; ++t) {
        TaskEvent e;
        e.worker = "worker" + std::to_string(w);
        e.platform = rng_.NextBelow(config_.num_platforms);
        e.hours = rng_.NextInRange(config_.min_task_hours,
                                   config_.max_task_hours);
        e.at = week * kWeek + rng_.NextBelow(kWeek);
        events.push_back(std::move(e));
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TaskEvent& a, const TaskEvent& b) { return a.at < b.at; });
  return events;
}

}  // namespace prever::workload
