#ifndef PREVER_WORKLOAD_YCSB_H_
#define PREVER_WORKLOAD_YCSB_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/update.h"
#include "storage/schema.h"

namespace prever::workload {

/// YCSB-style update workload (§6: "standardized database benchmarks like
/// TPC and YCSB"). PReVer regulates *updates*, so the generator emits the
/// write side of the YCSB mixes: inserts and updates over `usertable`,
/// zipfian- or uniform-distributed keys, plus a numeric `amount` field so
/// bound regulations have something to constrain.
struct YcsbConfig {
  uint64_t record_count = 1000;  ///< Preloaded rows.
  uint64_t operation_count = 1000;
  double insert_proportion = 0.5;  ///< Remainder are updates (upserts).
  bool zipfian = true;             ///< Key skew (theta 0.99) vs uniform.
  int64_t max_amount = 100;        ///< Per-op amount in [0, max_amount].
  uint64_t seed = 1;
};

class YcsbWorkload {
 public:
  explicit YcsbWorkload(const YcsbConfig& config);

  /// Schema of `usertable`: key (string), owner (string), amount (int64),
  /// at (timestamp).
  static storage::Schema TableSchema();
  static constexpr const char* kTableName = "usertable";

  /// Rows to preload before the timed run.
  std::vector<storage::Row> InitialLoad();

  /// The next update operation; timestamps advance one simulated second
  /// per operation.
  core::Update Next();

  uint64_t generated() const { return generated_; }

 private:
  YcsbConfig config_;
  Rng rng_;
  ZipfianGenerator zipf_;
  uint64_t next_insert_key_;
  uint64_t generated_ = 0;
};

}  // namespace prever::workload

#endif  // PREVER_WORKLOAD_YCSB_H_
