#include "workload/ycsb.h"

namespace prever::workload {

using storage::Row;
using storage::Value;

YcsbWorkload::YcsbWorkload(const YcsbConfig& config)
    : config_(config),
      rng_(config.seed),
      zipf_(config.record_count == 0 ? 1 : config.record_count),
      next_insert_key_(config.record_count) {}

storage::Schema YcsbWorkload::TableSchema() {
  return storage::Schema({{"key", storage::ValueType::kString},
                          {"owner", storage::ValueType::kString},
                          {"amount", storage::ValueType::kInt64},
                          {"at", storage::ValueType::kTimestamp}});
}

namespace {
std::string KeyName(uint64_t k) { return "user" + std::to_string(k); }
std::string OwnerName(uint64_t k) { return "owner" + std::to_string(k % 97); }
}  // namespace

std::vector<Row> YcsbWorkload::InitialLoad() {
  std::vector<Row> rows;
  rows.reserve(config_.record_count);
  for (uint64_t k = 0; k < config_.record_count; ++k) {
    rows.push_back(Row{Value::String(KeyName(k)), Value::String(OwnerName(k)),
                       Value::Int64(rng_.NextInRange(0, config_.max_amount)),
                       Value::Timestamp(0)});
  }
  return rows;
}

core::Update YcsbWorkload::Next() {
  SimTime now = (generated_ + 1) * kSecond;
  bool insert = rng_.NextBool(config_.insert_proportion);
  uint64_t key;
  if (insert) {
    key = next_insert_key_++;
  } else {
    key = config_.zipfian ? zipf_.Next(rng_)
                          : rng_.NextBelow(config_.record_count);
  }
  int64_t amount = rng_.NextInRange(0, config_.max_amount);

  core::Update u;
  u.id = "op" + std::to_string(generated_);
  u.producer = OwnerName(key);
  u.timestamp = now;
  u.fields = {{"key", Value::String(KeyName(key))},
              {"owner", Value::String(OwnerName(key))},
              {"amount", Value::Int64(amount)}};
  u.mutation.op = insert ? storage::Mutation::Op::kInsert
                         : storage::Mutation::Op::kUpsert;
  u.mutation.table = kTableName;
  u.mutation.row = Row{Value::String(KeyName(key)),
                       Value::String(OwnerName(key)), Value::Int64(amount),
                       Value::Timestamp(now)};
  ++generated_;
  return u;
}

}  // namespace prever::workload
