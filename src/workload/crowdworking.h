#ifndef PREVER_WORKLOAD_CROWDWORKING_H_
#define PREVER_WORKLOAD_CROWDWORKING_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/update.h"
#include "storage/schema.h"

namespace prever::workload {

/// Multi-platform crowdworking trace (§2.3): workers complete tasks across
/// competing platforms; the FLSA regulation caps each worker's weekly total
/// across ALL platforms. Synthetic stand-in for production Uber/Lyft traces
/// (DESIGN.md §2) — same schema, same regulation, same code path.
struct CrowdworkingConfig {
  size_t num_workers = 20;
  size_t num_platforms = 3;
  size_t num_weeks = 2;
  /// Mean tasks per worker per week (Poisson-ish via geometric arrivals).
  double tasks_per_worker_week = 8.0;
  int64_t min_task_hours = 1;
  int64_t max_task_hours = 8;
  uint64_t seed = 1;
};

/// One generated task completion event.
struct TaskEvent {
  std::string worker;
  size_t platform = 0;
  int64_t hours = 0;
  SimTime at = 0;

  /// As a PReVer update against the platform's `worklog` table.
  core::Update ToUpdate(uint64_t event_index) const;
};

class CrowdworkingWorkload {
 public:
  explicit CrowdworkingWorkload(const CrowdworkingConfig& config);

  static storage::Schema WorklogSchema();
  static constexpr const char* kTableName = "worklog";

  /// The full trace, time-ordered.
  std::vector<TaskEvent> Generate();

 private:
  CrowdworkingConfig config_;
  Rng rng_;
};

}  // namespace prever::workload

#endif  // PREVER_WORKLOAD_CROWDWORKING_H_
