#include "workload/tpc_lite.h"

namespace prever::workload {

using storage::Value;

TpcLiteWorkload::TpcLiteWorkload(const TpcLiteConfig& config)
    : config_(config), rng_(config.seed) {}

storage::Schema TpcLiteWorkload::OrdersSchema() {
  return storage::Schema({{"id", storage::ValueType::kString},
                          {"customer", storage::ValueType::kString},
                          {"amount", storage::ValueType::kInt64},
                          {"at", storage::ValueType::kTimestamp}});
}

std::string TpcLiteWorkload::CreditConstraint() const {
  return "SUM(orders.amount WHERE customer = update.customer WINDOW 4w) + "
         "update.amount <= " +
         std::to_string(config_.credit_limit);
}

core::Update TpcLiteWorkload::NextOrder() {
  SimTime now = (generated_ + 1) * kMinute;
  uint64_t customer = rng_.NextBelow(config_.num_customers);
  int64_t amount = rng_.NextInRange(1, config_.max_order_amount);
  core::Update u;
  u.id = "order" + std::to_string(generated_);
  u.producer = "customer" + std::to_string(customer);
  u.timestamp = now;
  u.fields = {{"customer", Value::String(u.producer)},
              {"amount", Value::Int64(amount)}};
  u.mutation.op = storage::Mutation::Op::kInsert;
  u.mutation.table = kTableName;
  u.mutation.row = {Value::String(u.id), Value::String(u.producer),
                    Value::Int64(amount), Value::Timestamp(now)};
  ++generated_;
  return u;
}

}  // namespace prever::workload
